package carf_test

import (
	"fmt"
	"log"
	"strings"

	"carf"
)

// Running one benchmark on the content-aware organization and comparing
// against the baseline is the library's core loop.
func Example() {
	carfRes, err := carf.Run("histo", carf.Config{
		Organization: carf.ContentAware,
		Scale:        0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := carf.Run("histo", carf.Config{
		Organization: carf.Baseline,
		Scale:        0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy saved: %v\n", carfRes.RegFileEnergy < baseRes.RegFileEnergy)
	fmt.Printf("IPC within 10%%: %v\n", carfRes.IPC > 0.9*baseRes.IPC)
	// Output:
	// energy saved: true
	// IPC within 10%: true
}

// Custom content-aware parameters explore the design space of §4.
func ExampleRun() {
	res, err := carf.Run("hashprobe", carf.Config{
		Organization: carf.ContentAware,
		DPlusN:       24,
		ShortRegs:    16,
		LongRegs:     64,
		Scale:        0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := res.WritesByType[0] + res.WritesByType[1] + res.WritesByType[2]
	fmt.Printf("classified writes: %v\n", total > 0)
	// Output:
	// classified writes: true
}

// Experiments regenerate the paper's exhibits as rendered tables.
func ExampleRunExperiment() {
	out, err := carf.RunExperiment("table3", carf.ExperimentOptions{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Contains(out, "baseline"))
	// Output:
	// true
}

// Kernels enumerates the benchmark suite.
func ExampleKernels() {
	ks := carf.Kernels()
	fmt.Println(len(ks) >= 20, ks[0])
	// Output:
	// true qsort
}
