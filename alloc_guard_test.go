package carf

// Allocation regression guard for the hot cycle loop. The pool/ring
// organization leaves only construction-time allocation: one full histo
// run (~150k committed instructions) must stay under allocBudget
// allocations per instruction — about 30× headroom over the measured
// ~0.0013, but ~500× below the ~0.66 a single per-instruction
// allocation would cost. A new allocation on the fetch, issue, commit,
// or squash path blows the budget immediately.

import (
	"testing"

	"carf/internal/batch"
	"carf/internal/core"
	"carf/internal/harden"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/workload"
)

const allocBudget = 0.04 // allocations per committed instruction

func perInstAllocs(t *testing.T, run func() uint64) float64 {
	t.Helper()
	var insts uint64
	allocs := testing.AllocsPerRun(3, func() {
		insts = run()
	})
	if insts == 0 {
		t.Fatal("run committed no instructions")
	}
	return allocs / float64(insts)
}

func TestCycleLoopAllocBudget(t *testing.T) {
	k, err := workload.ByName("histo", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkedCfg := pipeline.DefaultConfig()
	checkedCfg.Harden = harden.Options{Lockstep: true, SweepEvery: 4096, WatchdogAfter: 50000}

	cases := []struct {
		name string
		run  func() uint64
	}{
		{"baseline", func() uint64 {
			st, err := pipeline.New(pipeline.DefaultConfig(), k.Prog, regfile.Baseline()).Run()
			if err != nil {
				t.Fatal(err)
			}
			return st.Instructions
		}},
		{"checked", func() uint64 {
			cpu, err := pipeline.NewChecked(checkedCfg, k.Prog, regfile.Baseline())
			if err != nil {
				t.Fatal(err)
			}
			st, err := cpu.Run()
			if err != nil {
				t.Fatal(err)
			}
			return st.Instructions
		}},
		{"profiled", func() uint64 {
			cpu := pipeline.New(pipeline.DefaultConfig(), k.Prog, regfile.Baseline())
			cpu.InstallProfiler()
			st, err := cpu.Run()
			if err != nil {
				t.Fatal(err)
			}
			return st.Instructions
		}},
		// The content-aware model on the superblock replay path: the
		// decoded fast loop must be as allocation-free as the generic one.
		{"carf", func() uint64 {
			st, err := pipeline.New(pipeline.DefaultConfig(), k.Prog, core.New(core.DefaultParams())).Run()
			if err != nil {
				t.Fatal(err)
			}
			return st.Instructions
		}},
		// The lockstep batch engine: chunked execution through an
		// executor lane adds only the per-run lane handoff (a few
		// allocations per simulation, not per instruction).
		{"batched", func() uint64 {
			cpu := pipeline.New(pipeline.DefaultConfig(), k.Prog, regfile.Baseline())
			if err := batch.NewExecutor(1).Run(cpu); err != nil {
				t.Fatal(err)
			}
			st, err := cpu.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			return st.Instructions
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := perInstAllocs(t, c.run); got > allocBudget {
				t.Errorf("%s: %.4f allocations per committed instruction, budget %.4f — something on the cycle loop started allocating",
					c.name, got, allocBudget)
			}
		})
	}
}
