module carf

go 1.22
