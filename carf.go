// Package carf is the public API of the content-aware register file
// reproduction: it runs benchmark kernels on a cycle-level out-of-order
// superscalar processor (Table 1 of the paper) with a selectable integer
// register file organization, and regenerates the paper's evaluation.
//
// Quick start:
//
//	res, err := carf.Run("qsort", carf.Config{Organization: carf.ContentAware})
//	fmt.Printf("IPC %.3f, register file energy %.0f\n", res.IPC, res.RegFileEnergy)
//
// The organizations are the paper's three comparands: the
// unlimited-resource file (160×64b, 16R/8W), the baseline file (112×64b,
// 8R/6W), and the content-aware organization that splits the file into
// Simple/Short/Long sub-files around partial value locality. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
package carf

import (
	"context"
	"fmt"
	"math"
	"time"

	"carf/internal/core"
	"carf/internal/energy"
	"carf/internal/experiments"
	"carf/internal/harden"
	"carf/internal/metrics"
	"carf/internal/pipeline"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/sched"
	"carf/internal/workload"
)

// Organization names an integer register file organization.
type Organization string

const (
	// Unlimited is the unconstrained reference file (160 entries,
	// 16R/8W ports): the paper's normalization anchor.
	Unlimited Organization = "unlimited"
	// Baseline is the realistic conventional file (112 entries, 8R/6W).
	Baseline Organization = "baseline"
	// ContentAware is the paper's contribution: Simple/Short/Long
	// sub-files exploiting partial value locality.
	ContentAware Organization = "content-aware"
	// ContentAwareCAM is the fully-associative Short file variant
	// (higher IPC, CAM energy cost; rejected in §4).
	ContentAwareCAM Organization = "content-aware-cam"
)

// Organizations lists the selectable organizations.
func Organizations() []Organization {
	return []Organization{Unlimited, Baseline, ContentAware, ContentAwareCAM}
}

// Config selects the register file organization and its parameters.
// The zero value runs the content-aware organization at the paper's
// chosen configuration (112 simple, 8 short, 48 long, d+n = 20) on a
// standard-size workload.
type Config struct {
	// Organization defaults to ContentAware.
	Organization Organization

	// Content-aware parameters (ignored by conventional organizations);
	// zero values take the paper's defaults.
	DPlusN    int // width of the Simple value field (default 20)
	ShortRegs int // Short file entries, power of two (default 8)
	LongRegs  int // Long file entries (default 48)

	// Scale multiplies benchmark work (default 1.0: a few hundred
	// thousand dynamic instructions).
	Scale float64

	// MaxInstructions bounds the simulation (0 = run to completion).
	MaxInstructions uint64

	// MetricsInterval samples every registered metric series (pipeline
	// throughput and occupancies, sub-file occupancy, cache miss rates,
	// predictor accuracy, ...) each time this many cycles elapse,
	// collecting them into Result.Series. 0 disables sampling.
	MetricsInterval uint64

	// TraceEvents retains up to this many committed-instruction pipeline
	// trace events in Result.Trace (0 disables tracing, negative is
	// unbounded). Overflow is counted in Result.Trace.Dropped.
	TraceEvents int

	// Check enables the hardening layer for this run: lockstep
	// co-simulation of the golden model at every commit, periodic
	// invariant sweeps over the rename state and register file encodings,
	// and a watchdog that converts a zero-commit hang into a structured
	// error. Roughly doubles run time; off by default.
	Check bool

	// CheckInterval is the invariant-sweep period in cycles when Check is
	// on (0 uses a default of 4096).
	CheckInterval uint64

	// Profile attaches the attribution profiler: a CPI stack charging
	// every commit-slot deficit to one blame category, and a per-PC
	// profile of commits, mispredictions, cache misses, value classes,
	// and spills. Results land in Result.Profile. Off by default (the
	// simulation path then pays one nil check per cycle).
	Profile bool
}

// DefaultCheckInterval is the invariant-sweep period used when Check is
// on and CheckInterval is 0.
const DefaultCheckInterval = 4096

// checkWatchdogAfter is the zero-commit watchdog limit for checked runs:
// far beyond any legitimate stall (the worst §3.2 Recovery State episode
// is bounded by DeadlockSpillAfter = 200 cycles) but well under the
// pipeline's blunt 100k idle limit.
const checkWatchdogAfter = 50000

// Validate reports whether cfg describes a runnable configuration:
// a known organization, in-range content-aware parameters, and sane
// scale. Run calls it; CLIs can call it early for a better message.
func (c Config) Validate() error {
	switch c.Organization {
	case Baseline, Unlimited:
		// Conventional files have no tunable parameters.
	case ContentAware, ContentAwareCAM, "":
		if err := c.params().Validate(); err != nil {
			return fmt.Errorf("carf: %w", err)
		}
	default:
		return fmt.Errorf("carf: unknown organization %q (known: %v)", c.Organization, Organizations())
	}
	if c.Scale < 0 || math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return fmt.Errorf("carf: scale %v must be a non-negative finite number (0 means the default 1.0)", c.Scale)
	}
	return nil
}

func (c Config) params() core.Params {
	p := core.DefaultParams()
	if c.DPlusN > 0 {
		p.DPlusN = c.DPlusN
	}
	if c.ShortRegs > 0 {
		p.NumShort = c.ShortRegs
	}
	if c.LongRegs > 0 {
		p.NumLong = c.LongRegs
	}
	p.CAMShort = c.Organization == ContentAwareCAM
	return p
}

func (c Config) model() (regfile.Model, error) {
	switch c.Organization {
	case Baseline:
		return regfile.Baseline(), nil
	case Unlimited:
		return regfile.Unlimited(), nil
	case ContentAware, ContentAwareCAM, "":
		p := c.params()
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return core.New(p), nil
	default:
		return nil, fmt.Errorf("carf: unknown organization %q", c.Organization)
	}
}

// Result reports one simulation.
type Result struct {
	Kernel       string
	Organization Organization

	Cycles       uint64
	Instructions uint64
	IPC          float64

	Branches    uint64
	Mispredicts uint64

	// Integer register file operand traffic.
	IntOperands      uint64
	BypassedOperands uint64
	BypassRate       float64

	// Register file physical characterization (normalized model units;
	// meaningful relative to other Results on the same workload).
	RegFileEnergy     float64
	RegFileArea       float64
	RegFileAccessTime float64

	// Content-aware organizations only.
	ReadsByType    [3]uint64 // simple, short, long
	WritesByType   [3]uint64
	AvgLiveLong    float64
	RecoveryStalls uint64

	// Series holds the interval metric samples (Config.MetricsInterval
	// > 0 only); export it with the metrics package writers.
	Series *metrics.TimeSeries

	// Trace holds the retained pipeline trace (Config.TraceEvents != 0
	// only); convert it with pipeline.ChromeTraceEvents for Perfetto.
	Trace *pipeline.TraceBuffer

	// Profile holds the CPI stack and per-PC attribution profile
	// (Config.Profile only); export it with its Write methods.
	Profile *profile.Profiler
}

// Kernels lists the benchmark kernel names (14 integer, 8 FP).
func Kernels() []string { return workload.Names() }

// Run simulates one kernel under cfg.
func Run(kernel string, cfg Config) (Result, error) {
	return RunCtx(context.Background(), kernel, cfg)
}

// Progress is one live snapshot of a running simulation, delivered to
// the callback of RunCtxProgress (and ExperimentOptions.OnProgress).
// Progress is purely observational: a run's Result is bit-identical
// with or without a progress callback installed.
type Progress struct {
	// Label identifies the run ("sim/qsort/baseline" style for
	// experiments, the kernel name for single runs).
	Label string

	Cycles       uint64
	Instructions uint64

	// Target is the run's known dynamic-instruction budget (0 when
	// unknown); Pct is Instructions/Target in [0,1], or -1 when the
	// target is unknown.
	Target uint64
	Pct    float64

	// IntervalIPC is the throughput of the window since the previous
	// report — live phase behaviour the cumulative IPC smooths away.
	IntervalIPC float64

	// InstsPerSec is the wall-clock retirement rate; EtaSeconds the
	// remaining-work estimate from it (0 when unknowable).
	InstsPerSec float64
	EtaSeconds  float64

	// Final marks the closing report: totals equal the run's Result.
	Final bool
}

// RunCtxProgress is RunCtx with a live progress callback, invoked
// periodically from the simulation loop and once more (Final) when the
// run completes. The target instruction budget comes from a fast
// functional pre-run of the kernel (memoized per kernel and scale), so
// Pct and EtaSeconds are populated from the first frame. on runs on the
// simulating goroutine and must return quickly; a nil on makes the call
// identical to RunCtx.
func RunCtxProgress(ctx context.Context, kernel string, cfg Config, on func(Progress)) (Result, error) {
	return runCtx(ctx, kernel, cfg, on)
}

// RunCtx is Run with cancellation: the simulation polls ctx
// periodically and aborts with ctx's error once it is canceled or past
// its deadline. The partial run's statistics are discarded — a
// canceled simulation never produces a Result.
func RunCtx(ctx context.Context, kernel string, cfg Config) (Result, error) {
	return runCtx(ctx, kernel, cfg, nil)
}

func runCtx(ctx context.Context, kernel string, cfg Config, on func(Progress)) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	k, err := workload.ByName(kernel, cfg.Scale)
	if err != nil {
		return Result{}, err
	}
	model, err := cfg.model()
	if err != nil {
		return Result{}, err
	}
	pcfg := pipeline.DefaultConfig()
	pcfg.MaxInstructions = cfg.MaxInstructions
	if cfg.Check {
		interval := cfg.CheckInterval
		if interval == 0 {
			interval = DefaultCheckInterval
		}
		pcfg.Harden = harden.Options{
			Lockstep:      true,
			SweepEvery:    interval,
			WatchdogAfter: checkWatchdogAfter,
		}
	}
	cpu, err := pipeline.NewChecked(pcfg, k.Prog, model)
	if err != nil {
		return Result{}, err
	}
	var sampler *metrics.Sampler
	if cfg.MetricsInterval > 0 {
		sampler = cpu.InstallMetrics(metrics.NewRegistry(), cfg.MetricsInterval)
	}
	var trace *pipeline.TraceBuffer
	if cfg.TraceEvents != 0 {
		trace = &pipeline.TraceBuffer{Cap: max(cfg.TraceEvents, 0)}
		cpu.SetTracer(trace)
	}
	var prof *profile.Profiler
	if cfg.Profile {
		prof = cpu.InstallProfiler()
	}
	if ctx.Done() != nil {
		cpu.SetInterrupt(ctx.Err)
	}
	if on != nil {
		// Out-of-band like SetInterrupt: progress hooks never enter
		// Config, so memoization keys built from Config stay stable.
		target := workload.Budget(k, cfg.Scale)
		if cfg.MaxInstructions > 0 && (target == 0 || cfg.MaxInstructions < target) {
			target = cfg.MaxInstructions
		}
		start := time.Now()
		cpu.SetProgress(func(pp pipeline.Progress) {
			p := Progress{
				Label:        kernel,
				Cycles:       pp.Cycles,
				Instructions: pp.Instructions,
				Target:       target,
				Pct:          -1,
				IntervalIPC:  pp.IntervalIPC,
				Final:        pp.Final,
			}
			if target > 0 {
				p.Pct = math.Min(float64(pp.Instructions)/float64(target), 1)
			}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				p.InstsPerSec = float64(pp.Instructions) / elapsed
				if target > pp.Instructions && p.InstsPerSec > 0 {
					p.EtaSeconds = float64(target-pp.Instructions) / p.InstsPerSec
				}
			}
			on(p)
		})
	}
	st, err := cpu.Run()
	if err != nil {
		return Result{}, err
	}
	if st.ValueMismatches != 0 {
		return Result{}, fmt.Errorf("carf: %d register file reconstruction mismatches", st.ValueMismatches)
	}
	if cfg.MaxInstructions == 0 {
		if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
			return Result{}, fmt.Errorf("carf: %s computed %#x, expected %#x", kernel, got, k.Expected)
		}
	}

	org := cfg.Organization
	if org == "" {
		org = ContentAware
	}
	tech := energy.DefaultTech()
	rep := tech.Organization(model.Files())
	res := Result{
		Kernel:            kernel,
		Organization:      org,
		Cycles:            st.Cycles,
		Instructions:      st.Instructions,
		IPC:               st.IPC(),
		Branches:          st.Branches,
		Mispredicts:       st.Mispredicts,
		IntOperands:       st.IntOperands,
		BypassedOperands:  st.BypassedOperands,
		BypassRate:        st.BypassRate(),
		RegFileEnergy:     rep.TotalEnergy,
		RegFileArea:       rep.TotalArea,
		RegFileAccessTime: rep.WorstTime,
		RecoveryStalls:    st.RecoveryStallCycles,
		Trace:             trace,
		Profile:           prof,
	}
	if sampler != nil {
		series := sampler.Series()
		res.Series = &series
	}
	if f, ok := model.(*core.File); ok {
		cs := f.Stats()
		res.ReadsByType = cs.ReadsByType
		res.WritesByType = cs.WritesByType
		res.AvgLiveLong = cs.AvgLiveLong()
	}
	return res, nil
}

// Experiments lists the reproducible paper exhibits (figures, tables,
// sensitivity sweeps, extensions) in paper order.
func Experiments() []string { return experiments.Names() }

// DescribeExperiment returns a one-line description of an experiment id.
func DescribeExperiment(name string) string { return experiments.Describe(name) }

// ExperimentOptions tunes an experiment run.
type ExperimentOptions struct {
	// Ctx cancels the experiment: queued simulations abort before
	// starting, running ones stop cooperatively, and the experiment
	// returns ctx's error. nil means context.Background().
	Ctx context.Context

	// Scale multiplies benchmark work (default 0.25 — experiments run
	// many simulations).
	Scale float64

	// Parallel bounds the number of simulations in flight at once.
	// The bound is global: every experiment in the process shares one
	// scheduler pool, so concurrent RunExperiment calls never exceed it
	// combined. 0 leaves the current bound (initially GOMAXPROCS).
	Parallel int

	// OnProgress, when non-nil, receives live progress frames from every
	// simulation the experiment actually executes (memoized and joined
	// runs do no work and report nothing). The callback must be safe for
	// concurrent use — parallel simulations report concurrently — and is
	// purely observational: rendered experiment output is byte-identical
	// with or without it.
	OnProgress func(Progress)
}

// RunExperiment regenerates one paper exhibit and returns its rendered
// tables. Simulations run through the process-global scheduler: they
// share its bounded worker pool with every other in-flight experiment,
// and completed runs are memoized, so experiments that revisit the same
// (kernel, organization, configuration) combination — most of them do —
// reuse earlier results. Rendered output is deterministic: it does not
// depend on Parallel or on cache state.
func RunExperiment(name string, opt ExperimentOptions) (string, error) {
	rep, err := RunExperimentReport(name, opt)
	return rep.Text, err
}

// ExperimentReport is one experiment's rendered output plus the
// scheduler activity attributable to that experiment alone.
type ExperimentReport struct {
	Name string
	Text string

	// Sched counts the scheduler requests this experiment itself issued —
	// not the process-wide totals, which interleave concurrent
	// experiments. Workers and CacheEntries are pool-wide properties and
	// stay zero here; read them from GlobalSchedulerStats.
	Sched SchedulerStats
}

// RunExperimentReport is RunExperiment with per-experiment scheduler
// attribution: how many of this experiment's simulations ran fresh,
// were served from the memo cache, or joined an identical in-flight
// run. The counts are exact even when experiments run concurrently.
func RunExperimentReport(name string, opt ExperimentOptions) (ExperimentReport, error) {
	eopt := experiments.Options{Ctx: opt.Ctx, Scale: opt.Scale, Parallel: opt.Parallel}
	if opt.OnProgress != nil {
		on := opt.OnProgress
		eopt.OnProgress = func(label string, p sched.Progress) {
			on(Progress{
				Label:        label,
				Cycles:       p.Cycles,
				Instructions: p.Insts,
				Target:       p.Target,
				Pct:          p.Pct(),
				IntervalIPC:  p.IntervalIPC,
				InstsPerSec:  p.InstsPerSec,
				EtaSeconds:   p.ETASeconds,
				Final:        p.Final,
			})
		}
	}
	r, err := experiments.Run(name, eopt)
	if err != nil {
		return ExperimentReport{}, err
	}
	return ExperimentReport{
		Name: name,
		Text: r.Render(),
		Sched: SchedulerStats{
			Runs:             r.Sched.Runs,
			Misses:           r.Sched.Misses,
			Hits:             r.Sched.Hits,
			DiskHits:         r.Sched.DiskHits,
			Joins:            r.Sched.Joins,
			PeerHits:         r.Sched.PeerHits,
			Canceled:         r.Sched.Canceled,
			Errors:           r.Sched.Errors,
			QueueWaitSeconds: r.Sched.QueueWait.Seconds(),
			SimWallSeconds:   r.Sched.SimWall.Seconds(),
			LeaseWaitSeconds: r.Sched.LeaseWait.Seconds(),
		},
	}, nil
}

// SchedulerStats snapshots the process-global simulation scheduler: how
// many runs experiments requested, how many actually simulated (Misses),
// and how many were served from the memo cache (Hits) or joined an
// identical in-flight run (Joins).
type SchedulerStats struct {
	Workers      int    // worker-pool bound
	CacheEntries int    // completed runs held in the in-memory cache
	Runs         uint64 // total requests
	Misses       uint64 // requests that simulated
	Hits         uint64 // requests served from the in-memory cache
	DiskHits     uint64 // requests served from the persistent tier
	Joins        uint64 // requests that joined an in-flight run
	PeerHits     uint64 // requests served by a peer process sharing the store
	Canceled     uint64 // requests abandoned by their context
	Errors       uint64 // requests whose simulation failed

	QueueWaitSeconds float64 // cumulative worker-slot wait
	SimWallSeconds   float64 // cumulative simulation wall time
	LeaseWaitSeconds float64 // cumulative wait on peer processes' leases
}

// GlobalSchedulerStats reports the process-global scheduler's cumulative
// counters (all RunExperiment work in this process so far).
func GlobalSchedulerStats() SchedulerStats {
	st := sched.Global().Stats()
	return SchedulerStats{
		Workers:          st.Workers,
		CacheEntries:     st.CacheEntries,
		Runs:             st.Runs,
		Misses:           st.Misses,
		Hits:             st.Hits,
		DiskHits:         st.DiskHits,
		Joins:            st.Joins,
		PeerHits:         st.PeerHits,
		Canceled:         st.Canceled,
		Errors:           st.Errors,
		QueueWaitSeconds: st.QueueWait.Seconds(),
		SimWallSeconds:   st.SimWall.Seconds(),
		LeaseWaitSeconds: st.LeaseWait.Seconds(),
	}
}
