// Command carfserve is the long-running simulation service: an
// HTTP/JSON daemon that accepts kernel simulations and paper
// experiments, runs them through the process-global scheduler, and
// persists completed results in a tiered store so warm cache hits
// survive restarts.
//
// Endpoints (see EXPERIMENTS.md for the full schema):
//
//	POST   /api/v1/runs             submit {"experiment": ...} or {"kernel": ...} -> run id
//	GET    /api/v1/runs             list submitted runs
//	GET    /api/v1/runs/{id}        poll one run's status, provenance, live progress
//	GET    /api/v1/runs/{id}/stream follow one run's progress frames (SSE, ends with a done frame)
//	GET    /api/v1/runs/{id}/result fetch the rendered output
//	DELETE /api/v1/runs/{id}        cancel a run
//	/metrics /runs /events /healthz the live telemetry plane (carftop renders /runs)
//
// Robustness posture: per-client and global admission bounds shed
// overload with 429 + Retry-After; every run carries a deadline and
// cancels cooperatively; SIGINT/SIGTERM drains — in-flight runs
// finish, the store flushes, then the process exits 0. If the store
// directory is unusable the daemon degrades to memory-only caching,
// says so in the log and /healthz, and keeps serving.
//
// Usage:
//
//	carfserve -addr :8080 -store /var/lib/carf
//	carfserve -addr 127.0.0.1:0 -store ./results -job-timeout 5m
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carf/internal/experiments"
	"carf/internal/sched"
	"carf/internal/serve"
	"carf/internal/store"
	"carf/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		storeDir     = flag.String("store", "", "persistent result store directory (empty = memory-only caching)")
		workers      = flag.Int("workers", 0, "simulation worker pool bound (0 = GOMAXPROCS)")
		memCache     = flag.Int("mem-cache", 0, "decoded results held in the store's memory tier (0 = default)")
		maxJobs      = flag.Int("max-jobs", 16, "admitted-but-unfinished jobs across all clients before 429")
		maxPerClient = flag.Int("max-jobs-per-client", 4, "unfinished jobs per client before 429")
		runningJobs  = flag.Int("running-jobs", 2, "jobs executing concurrently (sims inside a job share the worker pool)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "wall-time bound per job; expiry cancels it cooperatively")
		drainWait    = flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGINT/SIGTERM drain waits for in-flight jobs before canceling them")
	)
	flag.Parse()
	logger := telemetry.NewLogger(os.Stderr, slog.LevelInfo)
	slog.SetDefault(logger)

	if *workers > 0 {
		sched.Global().SetWorkers(*workers)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{
			Dir:        *storeDir,
			Schema:     experiments.StoreSchema,
			MemEntries: *memCache,
			Logger:     logger,
		})
		if err != nil {
			logger.Error("store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		s := st.Stats()
		logger.Info("store open", "mode", s.Mode, "dir", s.Dir, "blobs", s.DiskBlobs, "degraded", s.Degraded)
	} else {
		logger.Warn("no -store directory: results will not survive restarts")
	}

	d := serve.New(serve.Options{
		Scheduler:        sched.Global(),
		Store:            st,
		MaxJobs:          *maxJobs,
		MaxJobsPerClient: *maxPerClient,
		RunningJobs:      *runningJobs,
		JobTimeout:       *jobTimeout,
		Logger:           logger,
	})
	bound, err := d.Start(*addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("carfserve listening", "addr", bound,
		"api", "/api/v1/runs", "telemetry", "/metrics /runs /events /healthz")

	// Graceful drain on SIGINT/SIGTERM: stop admitting, finish in-flight
	// jobs (up to -drain-timeout, then cancel them cooperatively), flush
	// the store, exit 0. A second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default handling: a second signal kills the process
	logger.Info("signal received, draining", "timeout", *drainWait)

	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := d.Shutdown(dctx); err != nil {
		logger.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	logger.Info("carfserve exited cleanly")
}
