// Command carfsim runs one benchmark kernel on the simulated processor
// with a chosen integer register file organization and prints the
// measurements. It can additionally export interval time-series metrics
// (JSON lines or CSV), a Perfetto-loadable Chrome-format pipeline
// trace, and Go pprof profiles of the simulator itself.
//
// Usage:
//
//	carfsim -kernel qsort -org content-aware -dplusn 20 -short 8 -long 48
//	carfsim -kernel qsort -interval 10000 -metrics-out m.jsonl -trace-out t.json
//	carfsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"carf"
	"carf/internal/experiments"
	"carf/internal/harden"
	"carf/internal/metrics"
	"carf/internal/pipeline"
	"carf/internal/sched"
	"carf/internal/telemetry"
)

func main() {
	var (
		kernel = flag.String("kernel", "qsort", "benchmark kernel (see -list)")
		org    = flag.String("org", string(carf.ContentAware), "register file organization: unlimited, baseline, content-aware, content-aware-cam")
		dplusn = flag.Int("dplusn", 0, "content-aware d+n (default 20)")
		short  = flag.Int("short", 0, "content-aware short registers (default 8)")
		long   = flag.Int("long", 0, "content-aware long registers (default 48)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		maxi   = flag.Uint64("max-instructions", 0, "stop after N instructions (0 = run to completion)")
		list   = flag.Bool("list", false, "list kernels and organizations, then exit")

		check    = flag.Bool("check", false, "run hardened: lockstep co-simulation of the golden model, invariant sweeps, watchdog")
		checkInt = flag.Uint64("check-interval", 0, "invariant-sweep period in cycles with -check (0 = default)")

		inject      = flag.String("inject", "", "fault-injection mode: fault class to inject (simple-bit, short-bit, long-bit, free-list, ref-clear)")
		injectCycle = flag.Uint64("inject-cycle", 2000, "cycle at which the injected fault lands")
		injectSeed  = flag.Uint64("inject-seed", 1, "seed selecting the injection target deterministically")

		profileOut = flag.String("profile-out", "", "write the per-PC attribution profile and CPI stack to this file (.jsonl/.json or .csv)")
		cpiStack   = flag.Bool("cpistack", false, "print the CPI stack: every commit-slot deficit charged to one blame category")
		topN       = flag.Int("top", 0, "print the N hottest static instructions with per-PC attribution")

		metricsOut = flag.String("metrics-out", "", "write interval metric samples to this file (.jsonl/.json for JSON lines, .csv for CSV)")
		interval   = flag.Uint64("interval", metrics.DefaultInterval, "metric sampling interval in cycles")
		traceOut   = flag.String("trace-out", "", "write a Chrome-trace-format (Perfetto-loadable) pipeline trace to this file")
		traceCap   = flag.Int("trace-cap", 20000, "retain at most N traced instructions (-1 = unbounded)")
		cpuProfile = flag.String("cpuprofile", "", "write a Go CPU profile of the simulator to this file")
		memProfile = flag.String("memprofile", "", "write a Go heap profile of the simulator to this file")
		telAddr    = flag.String("telemetry", "", "serve live telemetry (/metrics, /runs, /events, /healthz) on this host:port and route the run through the global scheduler")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the simulation cooperatively (the pipeline
	// polls the context between cycles); the exit path below still stops
	// and flushes an active CPU profile instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *list {
		fmt.Println("kernels:")
		for _, k := range carf.Kernels() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("organizations:")
		for _, o := range carf.Organizations() {
			fmt.Printf("  %s\n", o)
		}
		fmt.Println("fault classes (-inject):")
		for _, c := range harden.FaultClasses() {
			fmt.Printf("  %s\n", c)
		}
		return
	}

	if *inject != "" {
		runInjection(*kernel, *scale, *inject, *injectCycle, *injectSeed)
		return
	}

	// stopProf flushes and closes an active -cpuprofile; it is safe to
	// call more than once, so error paths can invoke it before os.Exit
	// (which skips the deferred call).
	stopProf := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		stopProf = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProf()
	}

	cfg := carf.Config{
		Organization:    carf.Organization(*org),
		DPlusN:          *dplusn,
		ShortRegs:       *short,
		LongRegs:        *long,
		Scale:           *scale,
		MaxInstructions: *maxi,
		Check:           *check,
		CheckInterval:   *checkInt,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *metricsOut != "" {
		if *interval == 0 {
			fatal(fmt.Errorf("-interval must be > 0 when -metrics-out is set"))
		}
		cfg.MetricsInterval = *interval
	}
	if *traceOut != "" {
		cfg.TraceEvents = *traceCap
	}
	if *profileOut != "" || *cpiStack || *topN > 0 {
		cfg.Profile = true
	}
	var profileFormat metrics.Format
	if *profileOut != "" {
		// Resolve the export format before the simulation runs so a bad
		// extension fails fast.
		var err error
		if profileFormat, err = metrics.FormatForPath(*profileOut); err != nil {
			fatal(err)
		}
	}

	run := func() (carf.Result, error) { return carf.RunCtx(ctx, *kernel, cfg) }
	if *telAddr != "" {
		// Route the run through the global scheduler so the telemetry
		// plane observes it: /runs shows it in flight, /events streams
		// its lifecycle, /metrics carries the latency histograms. The run
		// is not memoized — a CLI invocation always simulates.
		logger := telemetry.NewLogger(os.Stderr, slog.LevelInfo)
		hub := telemetry.NewHub()
		sched.Global().SetObserver(hub)
		sv := telemetry.NewServer(hub, sched.Global())
		addr, err := sv.Start(*telAddr)
		if err != nil {
			fatal(err)
		}
		defer sv.Close()
		logger.Info("telemetry serving", "addr", addr,
			"endpoints", "/metrics /runs /events /healthz")
		inner := run
		run = func() (carf.Result, error) {
			key := sched.KeyOf("carfsim", *kernel, cfg)
			label := fmt.Sprintf("carfsim/%s/%s", *kernel, *org)
			v, prov, err := sched.Global().DoCtx(ctx, key, label, false, func() (any, error) {
				return inner()
			})
			logArgs := append([]any{"kernel", *kernel, "org", *org}, telemetry.LogProvenance(prov)...)
			if err != nil {
				logger.Error("run failed", append(logArgs, "err", err)...)
				return carf.Result{}, err
			}
			logger.Info("run complete", logArgs...)
			return v.(carf.Result), nil
		}
	}
	res, err := run()
	if err != nil {
		stopProf()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "carfsim: interrupted:", err)
			os.Exit(1)
		}
		fatal(err)
	}

	fmt.Printf("kernel            %s\n", res.Kernel)
	fmt.Printf("organization      %s\n", res.Organization)
	fmt.Printf("instructions      %d\n", res.Instructions)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("IPC               %.3f\n", res.IPC)
	fmt.Printf("branches          %d (%.2f%% mispredicted)\n",
		res.Branches, 100*float64(res.Mispredicts)/float64(max(res.Branches, 1)))
	fmt.Printf("int operands      %d (%.1f%% bypassed)\n", res.IntOperands, 100*res.BypassRate)
	fmt.Printf("RF energy         %.3e (model units)\n", res.RegFileEnergy)
	fmt.Printf("RF area           %.3e (model units)\n", res.RegFileArea)
	fmt.Printf("RF access time    %.1f (model units)\n", res.RegFileAccessTime)
	if res.Organization == carf.ContentAware || res.Organization == carf.ContentAwareCAM {
		total := func(a [3]uint64) uint64 { return a[0] + a[1] + a[2] }
		fmt.Printf("reads by type     simple=%d short=%d long=%d (total %d)\n",
			res.ReadsByType[0], res.ReadsByType[1], res.ReadsByType[2], total(res.ReadsByType))
		fmt.Printf("writes by type    simple=%d short=%d long=%d (total %d)\n",
			res.WritesByType[0], res.WritesByType[1], res.WritesByType[2], total(res.WritesByType))
		fmt.Printf("avg live long     %.2f\n", res.AvgLiveLong)
		fmt.Printf("recovery stalls   %d\n", res.RecoveryStalls)
	}

	if *cpiStack {
		tab := res.Profile.Stack.Table("CPI stack (slots charged per blame category)")
		fmt.Println()
		fmt.Print(tab.Render())
		if err := res.Profile.Stack.CheckIdentity(); err != nil {
			fatal(err)
		}
	}
	if *topN > 0 {
		tab := res.Profile.PCs.Table(fmt.Sprintf("top %d static instructions", *topN), *topN)
		fmt.Println()
		fmt.Print(tab.Render())
	}
	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			fatal(err)
		}
		if err := res.Profile.Write(f, profileFormat); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("profile           CPI stack + per-PC records -> %s\n", *profileOut)
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, res.Series); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics           %d samples x %d series -> %s\n",
			len(res.Series.Samples), len(res.Series.Names), *metricsOut)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, res.Trace); err != nil {
			fatal(err)
		}
		fmt.Printf("trace             %d instructions -> %s (load in https://ui.perfetto.dev)\n",
			len(res.Trace.Events), *traceOut)
		if res.Trace.Dropped > 0 {
			fmt.Printf("                  %d events dropped (raise -trace-cap to keep more)\n", res.Trace.Dropped)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func writeMetrics(path string, ts *metrics.TimeSeries) error {
	format, err := metrics.FormatForPath(path)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.Write(f, *ts, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, buf *pipeline.TraceBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteChromeTrace(f, pipeline.ChromeTraceEvents(buf.Events)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runInjection runs one seeded fault injection on the content-aware file
// and reports what was corrupted, which checker caught it, and after how
// many cycles (the single-run version of the "faults" experiment).
func runInjection(kernel string, scale float64, class string, cycle, seed uint64) {
	fc, err := harden.ParseFaultClass(class)
	if err != nil {
		fatal(err)
	}
	out, err := experiments.RunFaultInjection(kernel, scale, harden.Fault{Class: fc, Cycle: cycle, Seed: seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kernel            %s\n", kernel)
	fmt.Printf("fault             %s (seed %d, scheduled at cycle %d)\n", fc, seed, cycle)
	if !out.Injected {
		fmt.Println("injected          no (no suitable target appeared)")
		return
	}
	fmt.Printf("injected          cycle %d: %s\n", out.InjectedAt, out.Detail)
	if !out.Detected {
		fmt.Println("detected          no (the corruption was benign for this run)")
		return
	}
	fmt.Printf("detected          by %s", out.Detector)
	if out.DetectedAt > 0 {
		fmt.Printf(" at cycle %d (latency %d cycles)", out.DetectedAt, out.Latency())
	}
	fmt.Println()
	if out.Err != nil {
		fmt.Printf("error             %v\n", out.Err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "carfsim:", err)
	os.Exit(1)
}

func max[T int | uint64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
