// Command carfsim runs one benchmark kernel on the simulated processor
// with a chosen integer register file organization and prints the
// measurements.
//
// Usage:
//
//	carfsim -kernel qsort -org content-aware -dplusn 20 -short 8 -long 48
//	carfsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"carf"
)

func main() {
	var (
		kernel = flag.String("kernel", "qsort", "benchmark kernel (see -list)")
		org    = flag.String("org", string(carf.ContentAware), "register file organization: unlimited, baseline, content-aware, content-aware-cam")
		dplusn = flag.Int("dplusn", 0, "content-aware d+n (default 20)")
		short  = flag.Int("short", 0, "content-aware short registers (default 8)")
		long   = flag.Int("long", 0, "content-aware long registers (default 48)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		maxi   = flag.Uint64("max-instructions", 0, "stop after N instructions (0 = run to completion)")
		list   = flag.Bool("list", false, "list kernels and organizations, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("kernels:")
		for _, k := range carf.Kernels() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("organizations:")
		for _, o := range carf.Organizations() {
			fmt.Printf("  %s\n", o)
		}
		return
	}

	res, err := carf.Run(*kernel, carf.Config{
		Organization:    carf.Organization(*org),
		DPlusN:          *dplusn,
		ShortRegs:       *short,
		LongRegs:        *long,
		Scale:           *scale,
		MaxInstructions: *maxi,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carfsim:", err)
		os.Exit(1)
	}

	fmt.Printf("kernel            %s\n", res.Kernel)
	fmt.Printf("organization      %s\n", res.Organization)
	fmt.Printf("instructions      %d\n", res.Instructions)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("IPC               %.3f\n", res.IPC)
	fmt.Printf("branches          %d (%.2f%% mispredicted)\n",
		res.Branches, 100*float64(res.Mispredicts)/float64(max(res.Branches, 1)))
	fmt.Printf("int operands      %d (%.1f%% bypassed)\n", res.IntOperands, 100*res.BypassRate)
	fmt.Printf("RF energy         %.3e (model units)\n", res.RegFileEnergy)
	fmt.Printf("RF area           %.3e (model units)\n", res.RegFileArea)
	fmt.Printf("RF access time    %.1f (model units)\n", res.RegFileAccessTime)
	if res.Organization == carf.ContentAware || res.Organization == carf.ContentAwareCAM {
		total := func(a [3]uint64) uint64 { return a[0] + a[1] + a[2] }
		fmt.Printf("reads by type     simple=%d short=%d long=%d (total %d)\n",
			res.ReadsByType[0], res.ReadsByType[1], res.ReadsByType[2], total(res.ReadsByType))
		fmt.Printf("writes by type    simple=%d short=%d long=%d (total %d)\n",
			res.WritesByType[0], res.WritesByType[1], res.WritesByType[2], total(res.WritesByType))
		fmt.Printf("avg live long     %.2f\n", res.AvgLiveLong)
		fmt.Printf("recovery stalls   %d\n", res.RecoveryStalls)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
