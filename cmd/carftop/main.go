// Command carftop is a plain-text live view over any carf process
// serving the telemetry plane — a carfstudy/carfbench run started with
// -telemetry, or a carfserve daemon. It polls GET /runs and redraws a
// terminal dashboard: the scheduler summary (workers, hit/miss/join
// counters, cache size), the in-flight run table with progress bars and
// ETAs, and the tail of completed runs.
//
// No TUI dependency: the screen is redrawn with ANSI clear codes, so it
// works in any terminal (and degrades to sequential snapshots when
// piped).
//
// Usage:
//
//	carftop -addr 127.0.0.1:9090
//	carftop -addr 127.0.0.1:8080 -interval 500ms
//	carftop -addr 127.0.0.1:9090 -once        # one snapshot, no clearing (CI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"carf/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "telemetry address (host:port) of a -telemetry process or carfserve daemon")
		interval = flag.Duration("interval", time.Second, "poll/redraw interval")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://" + *addr + "/runs"
	for {
		doc, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "carftop: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			// Clear screen + home; plain ANSI, no terminal library.
			fmt.Print("\x1b[2J\x1b[H")
		}
		render(os.Stdout, *addr, doc)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (telemetry.RunsDocument, error) {
	var doc telemetry.RunsDocument
	resp, err := client.Get(url)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return doc, nil
}

func render(w *os.File, addr string, doc telemetry.RunsDocument) {
	fmt.Fprintf(w, "carftop — %s — %s\n", addr, time.Now().Format("15:04:05"))
	if s := doc.Sched; s != nil {
		fmt.Fprintf(w, "sched: %d workers  runs %d  sim %d  mem-hits %d  disk-hits %d  peer-hits %d  joins %d  canceled %d  errors %d  cache %d\n",
			s.Workers, s.Runs, s.Misses, s.Hits, s.DiskHits, s.PeerHits, s.Joins, s.Canceled, s.Errors, s.CacheEntries)
	}
	fmt.Fprintf(w, "\nIN FLIGHT (%d)\n", len(doc.InFlight))
	fmt.Fprintf(w, "  %-6s %-34s %-9s %-22s %9s %8s %9s\n", "ID", "LABEL", "STATE", "PROGRESS", "MINST/S", "IIPC", "ETA")
	for _, r := range doc.InFlight {
		fmt.Fprintf(w, "  %-6d %-34s %-9s %-22s %9s %8s %9s\n",
			r.ID, clip(r.Label, 34), r.State, bar(r), rate(r.InstsPerSec), iipc(r.IntervalIPC), eta(r))
	}
	n := len(doc.Completed)
	fmt.Fprintf(w, "\nCOMPLETED (%d shown, %d total)\n", n, doc.CompletedTotal)
	fmt.Fprintf(w, "  %-6s %-34s %-9s %10s\n", "ID", "LABEL", "OUTCOME", "WALL")
	// Newest last — the natural place the eye lands after a redraw.
	const tail = 15
	start := max(0, n-tail)
	for _, r := range doc.Completed[start:] {
		wall := ""
		if r.SimWallMs > 0 {
			wall = (time.Duration(r.SimWallMs * float64(time.Millisecond))).Round(time.Millisecond).String()
		}
		out := r.Outcome
		if r.Err != "" {
			out = "error"
		}
		fmt.Fprintf(w, "  %-6d %-34s %-9s %10s\n", r.ID, clip(r.Label, 34), out, wall)
	}
}

// bar renders a 14-cell progress bar with the percentage, or the raw
// instruction count when the run's target is unknown.
func bar(r telemetry.RunRecord) string {
	if r.State != "running" {
		return ""
	}
	if r.Target == 0 || r.Pct <= 0 {
		if r.Insts > 0 {
			return fmt.Sprintf("%d insts", r.Insts)
		}
		return "starting"
	}
	pct := min(r.Pct, 1)
	const cells = 14
	filled := int(pct * cells)
	return fmt.Sprintf("[%s%s] %3.0f%%",
		strings.Repeat("#", filled), strings.Repeat(".", cells-filled), pct*100)
}

func rate(instsPerSec float64) string {
	if instsPerSec <= 0 {
		return ""
	}
	return fmt.Sprintf("%.2f", instsPerSec/1e6)
}

func iipc(v float64) string {
	if v <= 0 {
		return ""
	}
	return fmt.Sprintf("%.3f", v)
}

func eta(r telemetry.RunRecord) string {
	if r.State != "running" || r.EtaSeconds <= 0 {
		return ""
	}
	return (time.Duration(r.EtaSeconds * float64(time.Second))).Round(100 * time.Millisecond).String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
