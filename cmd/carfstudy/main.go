// Command carfstudy regenerates the paper's evaluation: every figure and
// table, the sensitivity sweeps, and the extension studies. Output goes
// to stdout or, with -out, to a file (EXPERIMENTS.md quotes such a run).
//
// Usage:
//
//	carfstudy                      # everything, standard experiment scale
//	carfstudy -exp fig5,table2     # selected experiments
//	carfstudy -scale 1.0           # full-size workloads (slower)
//	carfstudy -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"carf"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
		scale = flag.Float64("scale", 0.25, "workload scale factor")
		out   = flag.String("out", "", "write results to this file instead of stdout")
		list  = flag.Bool("list", false, "list experiments, then exit")
	)
	flag.Parse()

	if *list {
		for _, name := range carf.Experiments() {
			fmt.Printf("%-8s %s\n", name, carf.DescribeExperiment(name))
		}
		return
	}

	if err := (carf.Config{Scale: *scale}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "carfstudy:", err)
		os.Exit(1)
	}

	names := carf.Experiments()
	if *exps != "all" {
		names = strings.Split(*exps, ",")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carfstudy:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "carfstudy: content-aware register file evaluation (scale %.2f)\n\n", *scale)
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		text, err := carf.RunExperiment(name, carf.ExperimentOptions{Scale: *scale})
		if err != nil {
			fmt.Fprintln(os.Stderr, "carfstudy:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "== %s: %s (%.1fs)\n\n%s\n", name, carf.DescribeExperiment(name),
			time.Since(start).Seconds(), text)
	}
}
