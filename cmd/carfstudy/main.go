// Command carfstudy regenerates the paper's evaluation: every figure and
// table, the sensitivity sweeps, and the extension studies. Output goes
// to stdout or, with -out, to a file (EXPERIMENTS.md quotes such a run).
//
// Experiments run concurrently (-jobs) through the process-global
// simulation scheduler: the pool bound is shared across all of them,
// identical simulations are deduplicated, and completed runs are
// memoized, so the full study reuses most of its work. Output streams
// in experiment order regardless of completion order, and the rendered
// results are byte-identical at any -jobs value.
//
// Usage:
//
//	carfstudy                      # everything, standard experiment scale
//	carfstudy -exp fig5,table2     # selected experiments
//	carfstudy -jobs 4              # run up to 4 experiments concurrently
//	carfstudy -scale 1.0           # full-size workloads (slower)
//	carfstudy -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"carf"
)

// result is one experiment's rendered output (or failure).
type result struct {
	text    string
	err     error
	elapsed time.Duration
}

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
		scale = flag.Float64("scale", 0.25, "workload scale factor")
		jobs  = flag.Int("jobs", 1, "experiments to run concurrently (simulation parallelism is bounded by the shared scheduler pool)")
		out   = flag.String("out", "", "write results to this file instead of stdout")
		list  = flag.Bool("list", false, "list experiments, then exit")
	)
	flag.Parse()

	if *list {
		for _, name := range carf.Experiments() {
			fmt.Printf("%-8s %s\n", name, carf.DescribeExperiment(name))
		}
		return
	}

	if err := (carf.Config{Scale: *scale}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "carfstudy:", err)
		os.Exit(1)
	}
	if *jobs < 1 {
		*jobs = 1
	}

	names := carf.Experiments()
	if *exps != "all" {
		names = strings.Split(*exps, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carfstudy:", err)
			os.Exit(1)
		}
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "carfstudy: content-aware register file evaluation (scale %.2f)\n\n", *scale)

	// Launch up to -jobs experiments at once; each delivers into its own
	// single-slot channel so the printer below can stream results in
	// experiment order while later experiments keep running. Simulation
	// concurrency inside them stays bounded by the global scheduler pool.
	sem := make(chan struct{}, *jobs)
	done := make([]chan result, len(names))
	for i, name := range names {
		done[i] = make(chan result, 1)
		go func(name string, ch chan<- result) {
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			text, err := carf.RunExperiment(name, carf.ExperimentOptions{Scale: *scale})
			ch <- result{text: text, err: err, elapsed: time.Since(t0)}
		}(name, done[i])
	}

	for i, name := range names {
		r := <-done[i]
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "carfstudy:", r.err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "== %s: %s (%.1fs)\n\n%s\n", name, carf.DescribeExperiment(name),
			r.elapsed.Seconds(), r.text)
	}

	st := carf.GlobalSchedulerStats()
	fmt.Fprintf(w, "total: %d experiments in %.1fs (jobs %d; %d simulations: %d run, %d cached, %d joined)\n",
		len(names), time.Since(start).Seconds(), *jobs, st.Runs, st.Misses, st.Hits, st.Joins)

	if *out != "" {
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "carfstudy:", err)
			os.Exit(1)
		}
	}
}
