// Command carfstudy regenerates the paper's evaluation: every figure and
// table, the sensitivity sweeps, and the extension studies. Output goes
// to stdout or, with -out, to a file (EXPERIMENTS.md quotes such a run).
//
// Experiments run concurrently (-jobs) through the process-global
// simulation scheduler: the pool bound is shared across all of them,
// identical simulations are deduplicated, and completed runs are
// memoized, so the full study reuses most of its work. Output streams
// in experiment order regardless of completion order, and the rendered
// results are byte-identical at any -jobs value — and with telemetry on
// or off.
//
// With -telemetry the study serves its live observability plane over
// HTTP while it runs: /metrics (Prometheus), /runs (live run table),
// /events (SSE lifecycle stream), /healthz. With -trace-out it exports
// the orchestration timeline — experiment spans, per-run queue waits,
// simulation executions across the worker pool, cache hits and dedup
// joins, all correlated by run key — as a Perfetto-loadable Chrome
// trace. Progress and lifecycle lines go to stderr as structured slog
// records; rendered study output (stdout/-out) is unaffected.
//
// Usage:
//
//	carfstudy                      # everything, standard experiment scale
//	carfstudy -exp fig5,table2     # selected experiments
//	carfstudy -jobs 4              # run up to 4 experiments concurrently
//	carfstudy -scale 1.0           # full-size workloads (slower)
//	carfstudy -telemetry 127.0.0.1:9090
//	carfstudy -progress            # live per-simulation progress on stderr
//	carfstudy -trace-out study-trace.json
//	carfstudy -list
//
// A -telemetry study is watchable live from another terminal with
// carftop (plain-text dashboard over /runs) or by curling
// /runs/{id}/stream for one run's interval-level SSE frames.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"carf"
	"carf/internal/experiments"
	"carf/internal/sched"
	"carf/internal/store"
	"carf/internal/telemetry"
)

// result is one experiment's rendered output (or failure).
type result struct {
	rep     carf.ExperimentReport
	err     error
	elapsed time.Duration
}

// progressLogger returns a per-experiment progress callback that logs a
// throttled stderr line per live frame: which simulation is executing,
// how far along it is, its interval-window IPC, and its ETA. One
// throttle per experiment (not per simulation) keeps a parallel
// experiment to a line every couple of seconds. Logging is purely
// observational: stdout and -out output are byte-identical with or
// without it.
func progressLogger(logger *slog.Logger, exp string) func(carf.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p carf.Progress) {
		mu.Lock()
		if time.Since(last) < 2*time.Second {
			mu.Unlock()
			return
		}
		last = time.Now()
		mu.Unlock()
		attrs := []any{"exp", exp, "run", p.Label, "insts", p.Instructions}
		if p.Pct >= 0 {
			attrs = append(attrs, "pct", fmt.Sprintf("%.0f%%", p.Pct*100))
		}
		if p.IntervalIPC > 0 {
			attrs = append(attrs, "interval_ipc", fmt.Sprintf("%.3f", p.IntervalIPC))
		}
		if p.EtaSeconds > 0 {
			attrs = append(attrs, "eta", (time.Duration(p.EtaSeconds * float64(time.Second))).Round(100*time.Millisecond))
		}
		logger.Info("simulation progress", attrs...)
	}
}

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
		scale    = flag.Float64("scale", 0.25, "workload scale factor")
		jobs     = flag.Int("jobs", 1, "experiments to run concurrently (simulation parallelism is bounded by the shared scheduler pool)")
		out      = flag.String("out", "", "write results to this file instead of stdout")
		telAddr  = flag.String("telemetry", "", "serve live telemetry (/metrics, /runs, /events, /healthz) on this host:port while the study runs")
		progress = flag.Bool("progress", false, "log live simulation progress and suite-level ETA to stderr (rendered output is unaffected)")
		traceOut = flag.String("trace-out", "", "write the orchestration timeline (Perfetto-loadable Chrome trace) to this file")
		storeDir = flag.String("store", "", "persistent result store directory: completed runs are written as checksummed blobs and reused across invocations")
		list     = flag.Bool("list", false, "list experiments, then exit")
	)
	flag.Parse()
	logger := telemetry.NewLogger(os.Stderr, slog.LevelInfo)

	// SIGINT/SIGTERM cancel in-flight scheduler work cooperatively; the
	// shutdown path below still flushes -out/-trace-out and closes the
	// telemetry server instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *list {
		for _, name := range carf.Experiments() {
			fmt.Printf("%-8s %s\n", name, carf.DescribeExperiment(name))
		}
		return
	}

	if err := (carf.Config{Scale: *scale}).Validate(); err != nil {
		logger.Error("invalid configuration", "err", err)
		os.Exit(1)
	}
	if *jobs < 1 {
		*jobs = 1
	}

	if *storeDir != "" {
		st, err := store.Open(store.Options{Dir: *storeDir, Schema: experiments.StoreSchema, Logger: logger})
		if err != nil {
			logger.Error("store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		defer st.Close()
		sched.Global().SetTier(st)
		s := st.Stats()
		logger.Info("result store attached", "mode", s.Mode, "dir", s.Dir, "blobs", s.DiskBlobs, "degraded", s.Degraded)
	}

	// The telemetry plane is passive: the hub observes the global
	// scheduler and feeds the span tracer, the HTTP server, and the SSE
	// stream, but rendered study output is byte-identical with or
	// without it.
	var hub *telemetry.Hub
	if *telAddr != "" || *traceOut != "" {
		hub = telemetry.NewHub()
		sched.Global().SetObserver(hub)
	}
	if *telAddr != "" {
		sv := telemetry.NewServer(hub, sched.Global())
		addr, err := sv.Start(*telAddr)
		if err != nil {
			logger.Error("telemetry server failed", "err", err)
			os.Exit(1)
		}
		defer sv.Close()
		logger.Info("telemetry serving", "addr", addr,
			"endpoints", "/metrics /runs /events /healthz")
	}

	names := carf.Experiments()
	if *exps != "all" {
		names = strings.Split(*exps, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			logger.Error("cannot create output file", "path", *out, "err", err)
			os.Exit(1)
		}
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "carfstudy: content-aware register file evaluation (scale %.2f)\n\n", *scale)

	// Launch up to -jobs experiments at once; each delivers into its own
	// single-slot channel so the printer below can stream results in
	// experiment order while later experiments keep running. Simulation
	// concurrency inside them stays bounded by the global scheduler pool.
	sem := make(chan struct{}, *jobs)
	done := make([]chan result, len(names))
	for i, name := range names {
		done[i] = make(chan result, 1)
		go func(name string, ch chan<- result) {
			sem <- struct{}{}
			defer func() { <-sem }()
			sp := hub.ExperimentStart(name)
			logger.Info("experiment started", "exp", name)
			t0 := time.Now()
			opt := carf.ExperimentOptions{Ctx: ctx, Scale: *scale}
			if *progress {
				opt.OnProgress = progressLogger(logger, name)
			}
			rep, err := carf.RunExperimentReport(name, opt)
			elapsed := time.Since(t0)
			hub.ExperimentEnd(name, sp, elapsed, err)
			if err == nil {
				logger.Info("experiment finished", "exp", name,
					"elapsed", elapsed.Round(time.Millisecond),
					"runs", rep.Sched.Runs, "simulated", rep.Sched.Misses,
					"cached", rep.Sched.Hits, "disk", rep.Sched.DiskHits, "joined", rep.Sched.Joins)
			}
			ch <- result{rep: rep, err: err, elapsed: elapsed}
		}(name, done[i])
	}

	// Stream results in experiment order. On failure — including a
	// signal-driven cancellation — stop printing but fall through to the
	// flush/close path below, so partial output and the trace survive.
	exitCode := 0
	reports := make([]result, len(names))
	completed := 0
	for i, name := range names {
		r := <-done[i]
		if r.err != nil {
			if errors.Is(r.err, context.Canceled) || ctx.Err() != nil {
				logger.Error("study interrupted, flushing partial output", "exp", name)
			} else {
				logger.Error("experiment failed", "exp", name, "err", r.err)
			}
			exitCode = 1
			break
		}
		reports[i] = r
		completed++
		fmt.Fprintf(w, "== %s: %s (%.1fs)\n\n%s\n", name, carf.DescribeExperiment(name),
			r.elapsed.Seconds(), r.rep.Text)
		if *progress {
			if remaining := len(names) - completed; remaining > 0 {
				avg := time.Since(start) / time.Duration(completed)
				logger.Info("study progress",
					"completed", completed, "total", len(names),
					"pct", fmt.Sprintf("%.0f%%", 100*float64(completed)/float64(len(names))),
					"eta", (avg * time.Duration(remaining)).Round(time.Second))
			}
		}
	}

	if exitCode == 0 {
		st := carf.GlobalSchedulerStats()
		fmt.Fprintf(w, "total: %d experiments in %.1fs (jobs %d; %d simulations: %d run, %d cached, %d disk, %d joined)\n",
			len(names), time.Since(start).Seconds(), *jobs, st.Runs, st.Misses, st.Hits, st.DiskHits, st.Joins)
		fmt.Fprintf(w, "\nper-experiment scheduler activity:\n")
		for i, name := range names {
			s := reports[i].rep.Sched
			fmt.Fprintf(w, "  %-9s %4d runs: %4d simulated, %4d cached, %4d disk, %4d joined  (queue %.2fs, sim %.2fs)\n",
				name, s.Runs, s.Misses, s.Hits, s.DiskHits, s.Joins, s.QueueWaitSeconds, s.SimWallSeconds)
		}
	} else if completed > 0 {
		fmt.Fprintf(w, "(interrupted after %d of %d experiments)\n", completed, len(names))
	}

	if *out != "" {
		if err := w.Close(); err != nil {
			logger.Error("cannot close output file", "path", *out, "err", err)
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Error("cannot create trace file", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		if err := hub.Tracer().Write(f); err != nil {
			f.Close()
			logger.Error("trace export failed", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logger.Error("cannot close trace file", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		logger.Info("orchestration trace written", "path", *traceOut,
			"spans", hub.Tracer().Len(), "viewer", "https://ui.perfetto.dev")
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}
