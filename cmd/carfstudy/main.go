// Command carfstudy regenerates the paper's evaluation: every figure and
// table, the sensitivity sweeps, and the extension studies. Output goes
// to stdout or, with -out, to a file (EXPERIMENTS.md quotes such a run).
//
// Experiments run concurrently (-jobs) through the process-global
// simulation scheduler: the pool bound is shared across all of them,
// identical simulations are deduplicated, and completed runs are
// memoized, so the full study reuses most of its work. Output streams
// in experiment order regardless of completion order, and the rendered
// results are byte-identical at any -jobs value — and with telemetry on
// or off.
//
// With -telemetry the study serves its live observability plane over
// HTTP while it runs: /metrics (Prometheus), /runs (live run table),
// /events (SSE lifecycle stream), /healthz. With -trace-out it exports
// the orchestration timeline — experiment spans, per-run queue waits,
// simulation executions across the worker pool, cache hits and dedup
// joins, all correlated by run key — as a Perfetto-loadable Chrome
// trace. Progress and lifecycle lines go to stderr as structured slog
// records; rendered study output (stdout/-out) is unaffected.
//
// Usage:
//
//	carfstudy                      # everything, standard experiment scale
//	carfstudy -exp fig5,table2     # selected experiments
//	carfstudy -jobs 4              # run up to 4 experiments concurrently
//	carfstudy -scale 1.0           # full-size workloads (slower)
//	carfstudy -telemetry 127.0.0.1:9090
//	carfstudy -progress            # live per-simulation progress on stderr
//	carfstudy -trace-out study-trace.json
//	carfstudy -list
//
// A -telemetry study is watchable live from another terminal with
// carftop (plain-text dashboard over /runs) or by curling
// /runs/{id}/stream for one run's interval-level SSE frames.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"carf"
	"carf/internal/experiments"
	"carf/internal/fleet"
	"carf/internal/sched"
	"carf/internal/store"
	"carf/internal/telemetry"
)

// result is one experiment's rendered output (or failure).
type result struct {
	rep     carf.ExperimentReport
	err     error
	elapsed time.Duration
}

// progressLogger returns a per-experiment progress callback that logs a
// throttled stderr line per live frame: which simulation is executing,
// how far along it is, its interval-window IPC, and its ETA. One
// throttle per experiment (not per simulation) keeps a parallel
// experiment to a line every couple of seconds. Logging is purely
// observational: stdout and -out output are byte-identical with or
// without it.
func progressLogger(logger *slog.Logger, exp string) func(carf.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p carf.Progress) {
		mu.Lock()
		if time.Since(last) < 2*time.Second {
			mu.Unlock()
			return
		}
		last = time.Now()
		mu.Unlock()
		attrs := []any{"exp", exp, "run", p.Label, "insts", p.Instructions}
		if p.Pct >= 0 {
			attrs = append(attrs, "pct", fmt.Sprintf("%.0f%%", p.Pct*100))
		}
		if p.IntervalIPC > 0 {
			attrs = append(attrs, "interval_ipc", fmt.Sprintf("%.3f", p.IntervalIPC))
		}
		if p.EtaSeconds > 0 {
			attrs = append(attrs, "eta", (time.Duration(p.EtaSeconds * float64(time.Second))).Round(100*time.Millisecond))
		}
		logger.Info("simulation progress", attrs...)
	}
}

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids, or \"all\"")
		scale    = flag.Float64("scale", 0.25, "workload scale factor")
		jobs     = flag.Int("jobs", 1, "experiments to run concurrently (simulation parallelism is bounded by the shared scheduler pool)")
		workers  = flag.Int("workers", 1, "worker processes to shard the study across (requires -store; experiments are claimed through the store directory, simulations deduplicated across processes by leases)")
		out      = flag.String("out", "", "write results to this file instead of stdout")
		telAddr  = flag.String("telemetry", "", "serve live telemetry (/metrics, /runs, /events, /healthz) on this host:port while the study runs")
		progress = flag.Bool("progress", false, "log live simulation progress and suite-level ETA to stderr (rendered output is unaffected)")
		traceOut = flag.String("trace-out", "", "write the orchestration timeline (Perfetto-loadable Chrome trace) to this file")
		storeDir = flag.String("store", "", "persistent result store directory: completed runs are written as checksummed blobs and reused across invocations")
		list     = flag.Bool("list", false, "list experiments, then exit")

		// Internal worker-mode flags, set by the parent when it re-execs
		// this binary as a fleet worker. Not for direct use.
		fleetDir   = flag.String("fleet-dir", "", "internal: run as a fleet worker against this shard directory")
		fleetIndex = flag.Int("fleet-index", 0, "internal: this fleet worker's index")
	)
	flag.Parse()
	logger := telemetry.NewLogger(os.Stderr, slog.LevelInfo)

	// SIGINT/SIGTERM cancel in-flight scheduler work cooperatively; the
	// shutdown path below still flushes -out/-trace-out and closes the
	// telemetry server instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *list {
		for _, name := range carf.Experiments() {
			fmt.Printf("%-8s %s\n", name, carf.DescribeExperiment(name))
		}
		return
	}

	if err := (carf.Config{Scale: *scale}).Validate(); err != nil {
		logger.Error("invalid configuration", "err", err)
		os.Exit(1)
	}
	if *jobs < 1 {
		*jobs = 1
	}
	if *workers < 1 {
		*workers = 1
	}
	if *workers > 1 && *storeDir == "" {
		logger.Error("-workers needs -store: worker processes coordinate through the store directory (claims + leases)")
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, Schema: experiments.StoreSchema, Logger: logger})
		if err != nil {
			logger.Error("store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		defer st.Close()
		sched.Global().SetTier(st)
		s := st.Stats()
		logger.Info("result store attached", "mode", s.Mode, "dir", s.Dir, "blobs", s.DiskBlobs, "degraded", s.Degraded)
	}

	// The telemetry plane is passive: the hub observes the global
	// scheduler and feeds the span tracer, the HTTP server, and the SSE
	// stream, but rendered study output is byte-identical with or
	// without it.
	var hub *telemetry.Hub
	if *telAddr != "" || *traceOut != "" {
		hub = telemetry.NewHub()
		sched.Global().SetObserver(hub)
	}
	if *telAddr != "" {
		sv := telemetry.NewServer(hub, sched.Global())
		addr, err := sv.Start(*telAddr)
		if err != nil {
			logger.Error("telemetry server failed", "err", err)
			os.Exit(1)
		}
		defer sv.Close()
		logger.Info("telemetry serving", "addr", addr,
			"endpoints", "/metrics /runs /events /healthz")
	}

	names := carf.Experiments()
	if *exps != "all" {
		names = strings.Split(*exps, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	if *fleetDir != "" {
		// Fleet worker mode (internal): claim experiments from the shard,
		// run them, record results; render nothing — the parent merges.
		os.Exit(runFleetWorker(ctx, logger, *fleetDir, *fleetIndex, names, *scale, *progress, st))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			logger.Error("cannot create output file", "path", *out, "err", err)
			os.Exit(1)
		}
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "carfstudy: content-aware register file evaluation (scale %.2f)\n\n", *scale)

	exitCode := 0
	reports := make([]result, len(names))
	completed := 0
	totals := carf.SchedulerStats{}
	totalsLabel := fmt.Sprintf("jobs %d", *jobs)
	var storeAgg store.Stats // fleet: per-process store counters summed into the parent's view

	if *workers > 1 {
		// Multi-process sweep: shard the experiment list across -workers
		// re-executions of this binary over the shared store, then merge
		// in suite order so output matches the serial path.
		var fo fleetOutcome
		fo, completed = runFleetParent(ctx, logger, w, hub, names, reports, *workers, *jobs, *scale, *storeDir, *progress)
		exitCode = fo.exitCode
		totals = fo.totals
		storeAgg = fo.storeAgg
		totalsLabel = fmt.Sprintf("workers %d", *workers)
	} else {
		// Launch up to -jobs experiments at once; each delivers into its own
		// single-slot channel so the printer below can stream results in
		// experiment order while later experiments keep running. Simulation
		// concurrency inside them stays bounded by the global scheduler pool.
		sem := make(chan struct{}, *jobs)
		done := make([]chan result, len(names))
		for i, name := range names {
			done[i] = make(chan result, 1)
			go func(name string, ch chan<- result) {
				sem <- struct{}{}
				defer func() { <-sem }()
				sp := hub.ExperimentStart(name)
				logger.Info("experiment started", "exp", name)
				t0 := time.Now()
				opt := carf.ExperimentOptions{Ctx: ctx, Scale: *scale}
				if *progress {
					opt.OnProgress = progressLogger(logger, name)
				}
				rep, err := carf.RunExperimentReport(name, opt)
				elapsed := time.Since(t0)
				hub.ExperimentEnd(name, sp, elapsed, err)
				if err == nil {
					logger.Info("experiment finished", "exp", name,
						"elapsed", elapsed.Round(time.Millisecond),
						"runs", rep.Sched.Runs, "simulated", rep.Sched.Misses,
						"cached", rep.Sched.Hits, "disk", rep.Sched.DiskHits, "joined", rep.Sched.Joins)
				}
				ch <- result{rep: rep, err: err, elapsed: elapsed}
			}(name, done[i])
		}

		// Stream results in experiment order. On failure — including a
		// signal-driven cancellation — stop printing but fall through to the
		// flush/close path below, so partial output and the trace survive.
		for i, name := range names {
			r := <-done[i]
			if r.err != nil {
				if errors.Is(r.err, context.Canceled) || ctx.Err() != nil {
					logger.Error("study interrupted, flushing partial output", "exp", name)
				} else {
					logger.Error("experiment failed", "exp", name, "err", r.err)
				}
				exitCode = 1
				break
			}
			reports[i] = r
			completed++
			fmt.Fprintf(w, "== %s: %s (%.1fs)\n\n%s\n", name, carf.DescribeExperiment(name),
				r.elapsed.Seconds(), r.rep.Text)
			if *progress {
				if remaining := len(names) - completed; remaining > 0 {
					avg := time.Since(start) / time.Duration(completed)
					logger.Info("study progress",
						"completed", completed, "total", len(names),
						"pct", fmt.Sprintf("%.0f%%", 100*float64(completed)/float64(len(names))),
						"eta", (avg * time.Duration(remaining)).Round(time.Second))
				}
			}
		}
		totals = carf.GlobalSchedulerStats()
	}

	if exitCode == 0 {
		fmt.Fprintf(w, "total: %d experiments in %.1fs (%s; %d simulations: %d run, %d cached, %d disk, %d peer, %d joined)\n",
			len(names), time.Since(start).Seconds(), totalsLabel, totals.Runs, totals.Misses, totals.Hits, totals.DiskHits, totals.PeerHits, totals.Joins)
		if st != nil {
			// Store condition next to the scheduler totals, so a
			// multi-process run is diagnosable from the terminal alone.
			ss := st.Stats()
			if *workers > 1 && ss.Dir != "" {
				// The workers wrote the blobs, not this process; count
				// what is actually on disk instead of the parent's (zero)
				// increments.
				if m, err := filepath.Glob(filepath.Join(ss.Dir, "*.blob")); err == nil {
					ss.DiskBlobs = len(m)
				}
			}
			ss.DiskHits += storeAgg.DiskHits
			ss.Quarantined += storeAgg.Quarantined
			ss.LeasesAcquired += storeAgg.LeasesAcquired
			ss.LeaseLosses += storeAgg.LeaseLosses
			ss.LeaseTakeovers += storeAgg.LeaseTakeovers
			fmt.Fprintf(w, "%s\n", storeLine(ss))
		}
		fmt.Fprintf(w, "\nper-experiment scheduler activity:\n")
		for i, name := range names {
			s := reports[i].rep.Sched
			fmt.Fprintf(w, "  %-9s %4d runs: %4d simulated, %4d cached, %4d disk, %4d peer, %4d joined  (queue %.2fs, sim %.2fs)\n",
				name, s.Runs, s.Misses, s.Hits, s.DiskHits, s.PeerHits, s.Joins, s.QueueWaitSeconds, s.SimWallSeconds)
		}
	} else if completed > 0 {
		fmt.Fprintf(w, "(interrupted after %d of %d experiments)\n", completed, len(names))
	}

	if *out != "" {
		if err := w.Close(); err != nil {
			logger.Error("cannot close output file", "path", *out, "err", err)
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Error("cannot create trace file", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		if err := hub.Tracer().Write(f); err != nil {
			f.Close()
			logger.Error("trace export failed", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logger.Error("cannot close trace file", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		logger.Info("orchestration trace written", "path", *traceOut,
			"spans", hub.Tracer().Len(), "viewer", "https://ui.perfetto.dev")
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// storeLine renders the store's end-of-run condition for the trailer:
// mode, blob population, hit/quarantine counters, lease activity, and —
// loudly — degradation, so a sweep that silently fell back to
// memory-only operation is visible from the terminal.
func storeLine(ss store.Stats) string {
	line := fmt.Sprintf("store: %s; %d blobs, %d disk hits, %d quarantined", ss.Mode, ss.DiskBlobs, ss.DiskHits, ss.Quarantined)
	if ss.LeasesAcquired > 0 || ss.LeaseLosses > 0 || ss.LeaseTakeovers > 0 {
		line += fmt.Sprintf(", leases %d won / %d lost / %d taken over", ss.LeasesAcquired, ss.LeaseLosses, ss.LeaseTakeovers)
	}
	if ss.Degraded {
		line += "; DEGRADED: " + ss.Reason
	}
	return line
}

// runFleetWorker is the worker-mode main: claim experiments from the
// shard in suite order, run each through the in-process scheduler
// (which shares the store — and its cross-process leases — with every
// sibling worker), and record results for the parent's merge. Renders
// nothing to stdout.
func runFleetWorker(ctx context.Context, logger *slog.Logger, shardDir string, index int, names []string, scale float64, progress bool, st *store.Store) int {
	if st == nil {
		logger.Error("fleet worker requires -store", "worker", index)
		return 2
	}
	sh := fleet.OpenShard(shardDir)
	t0 := time.Now()
	ran, workErr := sh.Work(ctx, names, func(name string) (fleet.Result, error) {
		logger.Info("fleet experiment started", "worker", index, "exp", name)
		et := time.Now()
		opt := carf.ExperimentOptions{Ctx: ctx, Scale: scale}
		if progress {
			opt.OnProgress = progressLogger(logger, name)
		}
		rep, err := carf.RunExperimentReport(name, opt)
		elapsed := time.Since(et)
		if err != nil {
			return fleet.Result{}, err
		}
		logger.Info("fleet experiment finished", "worker", index, "exp", name,
			"elapsed", elapsed.Round(time.Millisecond),
			"runs", rep.Sched.Runs, "simulated", rep.Sched.Misses,
			"cached", rep.Sched.Hits, "disk", rep.Sched.DiskHits,
			"peer", rep.Sched.PeerHits, "joined", rep.Sched.Joins)
		sb, merr := json.Marshal(rep.Sched)
		if merr != nil {
			return fleet.Result{}, merr
		}
		return fleet.Result{Text: rep.Text, ElapsedSeconds: elapsed.Seconds(), Sched: sb}, nil
	})

	sb, _ := json.Marshal(carf.GlobalSchedulerStats())
	stb, _ := json.Marshal(st.Stats())
	sum := fleet.Summary{
		Worker:      index,
		PID:         os.Getpid(),
		Experiments: ran,
		WallSeconds: time.Since(t0).Seconds(),
		Sched:       sb,
		Store:       stb,
	}
	if err := sh.WriteSummary(sum); err != nil {
		logger.Error("fleet worker summary write failed", "worker", index, "err", err)
		return 1
	}
	if workErr != nil && !errors.Is(workErr, context.Canceled) {
		logger.Error("fleet worker stopped early", "worker", index, "err", workErr)
		return 1
	}
	return 0
}

// fleetOutcome is what the multi-process path feeds the shared trailer.
type fleetOutcome struct {
	totals   carf.SchedulerStats // combined across all workers + the parent
	storeAgg store.Stats         // summed per-process store counters (workers only)
	exitCode int
}

// runFleetParent shards names across worker processes, waits for them,
// sweeps any experiment left without a result (worker crashed after
// claiming, or none reached it) in-process, and prints merged blocks in
// suite order — byte-identical rendering with the serial path.
func runFleetParent(ctx context.Context, logger *slog.Logger, w io.Writer, hub *telemetry.Hub, names []string, reports []result, workers, jobs int, scale float64, storeDir string, progress bool) (fleetOutcome, int) {
	fo := fleetOutcome{}
	sh, err := fleet.NewShard(storeDir)
	if err != nil {
		logger.Error("fleet shard create failed", "err", err)
		fo.exitCode = 1
		return fo, 0
	}
	logger.Info("fleet sweep starting", "workers", workers, "experiments", len(names), "shard", sh.Dir)

	args := []string{
		"-fleet-dir", sh.Dir,
		"-exp", strings.Join(names, ","),
		"-scale", fmt.Sprintf("%g", scale),
		"-jobs", fmt.Sprint(jobs),
		"-store", storeDir,
	}
	if progress {
		args = append(args, "-progress")
	}
	spawnErrs := fleet.Spawn(ctx, workers, args, "-fleet-index", nil, os.Stderr)
	for i, serr := range spawnErrs {
		if serr != nil {
			// Not fatal: whatever the worker left unfinished is swept below.
			logger.Error("fleet worker exited abnormally", "worker", i, "err", serr)
		}
	}

	completed := 0
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			logger.Error("study interrupted, flushing partial output", "exp", name)
			fo.exitCode = 1
			break
		}
		fr, ok, lerr := sh.Load(name)
		if lerr != nil {
			logger.Error("experiment failed", "exp", name, "err", lerr)
			fo.exitCode = 1
			break
		}
		var r result
		if ok {
			var ss carf.SchedulerStats
			if err := json.Unmarshal(fr.Sched, &ss); err != nil {
				logger.Error("fleet result counters unreadable", "exp", name, "err", err)
			}
			r = result{
				rep:     carf.ExperimentReport{Name: name, Text: fr.Text, Sched: ss},
				elapsed: time.Duration(fr.ElapsedSeconds * float64(time.Second)),
			}
		} else {
			// Crash recovery at the experiment level: no worker recorded a
			// result, so the parent runs it here. Simulation-level recovery
			// (a crashed worker's lease) already happened below, via
			// stale-lease takeover.
			logger.Warn("fleet: experiment has no recorded result; sweeping it in-process", "exp", name)
			sp := hub.ExperimentStart(name)
			t0 := time.Now()
			opt := carf.ExperimentOptions{Ctx: ctx, Scale: scale}
			if progress {
				opt.OnProgress = progressLogger(logger, name)
			}
			rep, rerr := carf.RunExperimentReport(name, opt)
			elapsed := time.Since(t0)
			hub.ExperimentEnd(name, sp, elapsed, rerr)
			if rerr != nil {
				if errors.Is(rerr, context.Canceled) || ctx.Err() != nil {
					logger.Error("study interrupted, flushing partial output", "exp", name)
				} else {
					logger.Error("experiment failed", "exp", name, "err", rerr)
				}
				fo.exitCode = 1
				break
			}
			r = result{rep: rep, elapsed: elapsed}
		}
		reports[i] = r
		completed++
		fmt.Fprintf(w, "== %s: %s (%.1fs)\n\n%s\n", name, carf.DescribeExperiment(name),
			r.elapsed.Seconds(), r.rep.Text)
	}

	// Combined accounting: every worker's process totals plus the
	// parent's own (sweep work). The combined "simulated" count is the
	// at-most-once invariant made visible — with leases working it
	// equals a serial cold run's count.
	fo.totals = carf.GlobalSchedulerStats()
	sums, _ := sh.Summaries()
	for _, s := range sums {
		var ws carf.SchedulerStats
		if json.Unmarshal(s.Sched, &ws) == nil {
			fo.totals.Runs += ws.Runs
			fo.totals.Misses += ws.Misses
			fo.totals.Hits += ws.Hits
			fo.totals.DiskHits += ws.DiskHits
			fo.totals.PeerHits += ws.PeerHits
			fo.totals.Joins += ws.Joins
			fo.totals.Canceled += ws.Canceled
			fo.totals.Errors += ws.Errors
			fo.totals.QueueWaitSeconds += ws.QueueWaitSeconds
			fo.totals.SimWallSeconds += ws.SimWallSeconds
			fo.totals.LeaseWaitSeconds += ws.LeaseWaitSeconds
		}
		var wst store.Stats
		if s.Store != nil && json.Unmarshal(s.Store, &wst) == nil {
			fo.storeAgg.DiskHits += wst.DiskHits
			fo.storeAgg.Quarantined += wst.Quarantined
			fo.storeAgg.LeasesAcquired += wst.LeasesAcquired
			fo.storeAgg.LeaseLosses += wst.LeaseLosses
			fo.storeAgg.LeaseTakeovers += wst.LeaseTakeovers
		}
	}
	logger.Info("fleet sweep merged", "workers", workers, "experiments", completed,
		"simulated", fo.totals.Misses, "disk", fo.totals.DiskHits, "peer", fo.totals.PeerHits,
		"lease_takeovers", fo.storeAgg.LeaseTakeovers)
	if fo.exitCode == 0 {
		sh.Cleanup()
	}
	return fo, completed
}
