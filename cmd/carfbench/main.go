// Command carfbench measures simulator throughput across the standard
// configurations — baseline (conventional register file), carf
// (content-aware file), checked (full hardening layer), profiled
// (CPI-stack + per-PC attribution) — and writes the results as JSON.
// EXPERIMENTS.md documents the output schema ("carf-bench/v1"); CI runs
// it on every push and uploads the artifact so throughput trajectories
// can be compared across commits.
//
// Usage:
//
//	carfbench                        # all configs, histo at scale 0.5
//	carfbench -kernel crc64 -iters 9
//	carfbench -out BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"carf/internal/core"
	"carf/internal/harden"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/vm"
	"carf/internal/workload"
)

// report is the carf-bench/v1 document.
type report struct {
	Schema    string         `json:"schema"`
	Kernel    string         `json:"kernel"`
	Scale     float64        `json:"scale"`
	Iters     int            `json:"iters"`
	GoVersion string         `json:"go_version"`
	Configs   []configResult `json:"configs"`
}

// configResult is one configuration's steady-state measurement: totals
// over the timed iterations plus the derived per-instruction rates.
type configResult struct {
	Name          string  `json:"name"`
	Instructions  uint64  `json:"instructions"`
	WallSeconds   float64 `json:"wall_seconds"`
	InstrPerSec   float64 `json:"instr_per_sec"`
	NsPerInstr    float64 `json:"ns_per_instr"`
	AllocsPerInst float64 `json:"allocs_per_instr"`
	BytesPerInst  float64 `json:"bytes_per_instr"`
}

// runner builds and runs one simulation, returning committed instructions.
type runner func(prog *vm.Program) (uint64, error)

func configs() []struct {
	name string
	run  runner
} {
	checkedCfg := pipeline.DefaultConfig()
	checkedCfg.Harden = harden.Options{Lockstep: true, SweepEvery: 4096, WatchdogAfter: 50000}
	return []struct {
		name string
		run  runner
	}{
		{"baseline", func(prog *vm.Program) (uint64, error) {
			st, err := pipeline.New(pipeline.DefaultConfig(), prog, regfile.Baseline()).Run()
			return st.Instructions, err
		}},
		{"carf", func(prog *vm.Program) (uint64, error) {
			st, err := pipeline.New(pipeline.DefaultConfig(), prog, core.New(core.DefaultParams())).Run()
			return st.Instructions, err
		}},
		{"checked", func(prog *vm.Program) (uint64, error) {
			cpu, err := pipeline.NewChecked(checkedCfg, prog, regfile.Baseline())
			if err != nil {
				return 0, err
			}
			st, err := cpu.Run()
			return st.Instructions, err
		}},
		{"profiled", func(prog *vm.Program) (uint64, error) {
			cpu := pipeline.New(pipeline.DefaultConfig(), prog, regfile.Baseline())
			cpu.InstallProfiler()
			st, err := cpu.Run()
			return st.Instructions, err
		}},
	}
}

// measure runs fn iters times after one untimed warmup, bracketing the
// timed runs with MemStats reads so allocation rates cover exactly the
// measured work.
func measure(name string, prog *vm.Program, fn runner, iters int) (configResult, error) {
	if _, err := fn(prog); err != nil { // warmup
		return configResult{}, fmt.Errorf("%s: %v", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var insts uint64
	for i := 0; i < iters; i++ {
		n, err := fn(prog)
		if err != nil {
			return configResult{}, fmt.Errorf("%s: %v", name, err)
		}
		insts += n
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	return configResult{
		Name:          name,
		Instructions:  insts,
		WallSeconds:   wall,
		InstrPerSec:   float64(insts) / wall,
		NsPerInstr:    wall * 1e9 / float64(insts),
		AllocsPerInst: float64(allocs) / float64(insts),
		BytesPerInst:  float64(bytes) / float64(insts),
	}, nil
}

func main() {
	var (
		kernel = flag.String("kernel", "histo", "workload kernel to simulate")
		scale  = flag.Float64("scale", 0.5, "workload scale factor")
		iters  = flag.Int("iters", 5, "timed runs per configuration")
		out    = flag.String("out", "", "write JSON to this file instead of stdout")
	)
	flag.Parse()

	k, err := workload.ByName(*kernel, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carfbench:", err)
		os.Exit(1)
	}

	rep := report{
		Schema:    "carf-bench/v1",
		Kernel:    *kernel,
		Scale:     *scale,
		Iters:     *iters,
		GoVersion: runtime.Version(),
	}
	for _, c := range configs() {
		res, err := measure(c.name, k.Prog, c.run, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carfbench:", err)
			os.Exit(1)
		}
		rep.Configs = append(rep.Configs, res)
		fmt.Fprintf(os.Stderr, "carfbench: %-8s %12.0f instr/s  %6.1f ns/instr  %.4f allocs/instr\n",
			c.name, res.InstrPerSec, res.NsPerInstr, res.AllocsPerInst)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "carfbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "carfbench:", err)
		os.Exit(1)
	}
}
