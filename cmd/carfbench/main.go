// Command carfbench measures simulator throughput across the standard
// configurations — baseline (conventional register file), carf
// (content-aware file), checked (full hardening layer), profiled
// (CPI-stack + per-PC attribution) — and writes the results as JSON.
// EXPERIMENTS.md documents the output schema ("carf-bench/v2", with an
// environment provenance block so trajectories are comparable across
// machines and toolchains); CI runs it on every push and uploads the
// artifact so throughput trajectories can be compared across commits.
//
// With -study it additionally times the full experiment suite under
// three scheduler configurations: serial (one experiment at a time,
// memoization off — the pre-scheduler behaviour), scheduled-cold
// (concurrent experiments sharing one pool, empty cache), and
// scheduled-warm (same scheduler again, cache populated). The study
// block is the committed evidence for the scheduler's speedup.
//
// Usage:
//
//	carfbench                        # all configs, histo at scale 0.5
//	carfbench -kernel crc64 -iters 9
//	carfbench -study -jobs 4         # add the full-study scheduler benchmark
//	carfbench -study -telemetry 127.0.0.1:9090
//	carfbench -study -store .carfstore  # persistent result tier under the scheduled phases
//	carfbench -out BENCH.json
//	carfbench -compare BENCH_PR5.json  # ratio table; exit 1 on a >10% config regression
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"carf/internal/core"
	"carf/internal/experiments"
	"carf/internal/fleet"
	"carf/internal/harden"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/sched"
	"carf/internal/store"
	"carf/internal/telemetry"
	"carf/internal/vm"
	"carf/internal/workload"
)

// provenance records the environment a report was measured in, so
// throughput numbers are compared like with like across commits,
// machines, and toolchains.
type provenance struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitDescribe is `git describe --tags --always --dirty`, best-effort:
	// absent when the binary runs outside a checkout or without git.
	GitDescribe string `json:"git_describe,omitempty"`
}

func collectProvenance() provenance {
	p := provenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("git", "describe", "--tags", "--always", "--dirty").Output(); err == nil {
		p.GitDescribe = strings.TrimSpace(string(out))
	}
	return p
}

// report is the carf-bench/v2 document (v2 moved go_version into the
// provenance block).
type report struct {
	Schema     string         `json:"schema"`
	Kernel     string         `json:"kernel"`
	Scale      float64        `json:"scale"`
	Iters      int            `json:"iters"`
	Provenance provenance     `json:"provenance"`
	Configs    []configResult `json:"configs"`

	// Study is present with -study: full-suite wall clock under the
	// serial / scheduled-cold / scheduled-warm configurations.
	StudyScale float64       `json:"study_scale,omitempty"`
	StudyJobs  int           `json:"study_jobs,omitempty"`
	Study      []studyResult `json:"study,omitempty"`
}

// schedCounters is a scheduler's activity during one study configuration.
type schedCounters struct {
	Runs             uint64  `json:"runs"`
	Misses           uint64  `json:"misses"`
	Hits             uint64  `json:"hits"`
	Joins            uint64  `json:"joins"`
	DiskHits         uint64  `json:"disk_hits,omitempty"`
	PeerHits         uint64  `json:"peer_hits,omitempty"`
	CacheEntries     int     `json:"cache_entries"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	SimWallSeconds   float64 `json:"sim_wall_seconds"`
	LeaseWaitSeconds float64 `json:"lease_wait_seconds,omitempty"`
}

// studyResult is one full-suite timing. Multi-process phases (-fleet)
// set Workers and report Sched summed across all worker processes — so
// Sched.Misses is the total simulation count for the whole fleet, the
// number that must equal a serial cold run's for the lease protocol to
// have deduplicated every cross-process repeat.
type studyResult struct {
	Name            string        `json:"name"`
	Experiments     int           `json:"experiments"`
	Workers         int           `json:"workers,omitempty"`
	WallSeconds     float64       `json:"wall_seconds"`
	SpeedupVsSerial float64       `json:"speedup_vs_serial"`
	Sched           schedCounters `json:"sched"`
}

// configResult is one configuration's steady-state measurement: totals
// over the timed iterations plus the derived per-instruction rates.
type configResult struct {
	Name          string  `json:"name"`
	Instructions  uint64  `json:"instructions"`
	WallSeconds   float64 `json:"wall_seconds"`
	InstrPerSec   float64 `json:"instr_per_sec"`
	NsPerInstr    float64 `json:"ns_per_instr"`
	AllocsPerInst float64 `json:"allocs_per_instr"`
	BytesPerInst  float64 `json:"bytes_per_instr"`
}

// runner builds and runs one simulation, returning committed instructions.
type runner func(prog *vm.Program) (uint64, error)

func configs(ctx context.Context) []struct {
	name string
	run  runner
} {
	checkedCfg := pipeline.DefaultConfig()
	checkedCfg.Harden = harden.Options{Lockstep: true, SweepEvery: 4096, WatchdogAfter: 50000}
	// interruptible wires cooperative cancellation into a CPU before it
	// runs, so SIGINT/SIGTERM stops a measurement mid-simulation instead
	// of waiting out the kernel.
	interruptible := func(cpu *pipeline.CPU) *pipeline.CPU {
		cpu.SetInterrupt(ctx.Err)
		return cpu
	}
	return []struct {
		name string
		run  runner
	}{
		{"baseline", func(prog *vm.Program) (uint64, error) {
			st, err := interruptible(pipeline.New(pipeline.DefaultConfig(), prog, regfile.Baseline())).Run()
			return st.Instructions, err
		}},
		{"carf", func(prog *vm.Program) (uint64, error) {
			st, err := interruptible(pipeline.New(pipeline.DefaultConfig(), prog, core.New(core.DefaultParams()))).Run()
			return st.Instructions, err
		}},
		{"checked", func(prog *vm.Program) (uint64, error) {
			cpu, err := pipeline.NewChecked(checkedCfg, prog, regfile.Baseline())
			if err != nil {
				return 0, err
			}
			st, err := interruptible(cpu).Run()
			return st.Instructions, err
		}},
		{"profiled", func(prog *vm.Program) (uint64, error) {
			cpu := pipeline.New(pipeline.DefaultConfig(), prog, regfile.Baseline())
			cpu.InstallProfiler()
			st, err := interruptible(cpu).Run()
			return st.Instructions, err
		}},
	}
}

// measure runs fn iters times after one untimed warmup, bracketing the
// timed runs with MemStats reads so allocation rates cover exactly the
// measured work.
func measure(name string, prog *vm.Program, fn runner, iters int) (configResult, error) {
	if _, err := fn(prog); err != nil { // warmup
		return configResult{}, fmt.Errorf("%s: %v", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var insts uint64
	for i := 0; i < iters; i++ {
		n, err := fn(prog)
		if err != nil {
			return configResult{}, fmt.Errorf("%s: %v", name, err)
		}
		insts += n
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	return configResult{
		Name:          name,
		Instructions:  insts,
		WallSeconds:   wall,
		InstrPerSec:   float64(insts) / wall,
		NsPerInstr:    wall * 1e9 / float64(insts),
		AllocsPerInst: float64(allocs) / float64(insts),
		BytesPerInst:  float64(bytes) / float64(insts),
	}, nil
}

// counters converts a scheduler stats delta into the report shape.
func counters(st sched.Stats) schedCounters {
	return schedCounters{
		Runs:             st.Runs,
		Misses:           st.Misses,
		Hits:             st.Hits,
		Joins:            st.Joins,
		DiskHits:         st.DiskHits,
		PeerHits:         st.PeerHits,
		CacheEntries:     st.CacheEntries,
		QueueWaitSeconds: st.QueueWait.Seconds(),
		SimWallSeconds:   st.SimWall.Seconds(),
		LeaseWaitSeconds: st.LeaseWait.Seconds(),
	}
}

// runSuiteOn runs every experiment at the given scale on scheduler s,
// at most jobs at a time, and returns the wall clock. Rendered output is
// produced and discarded — rendering is part of what the study times.
func runSuiteOn(ctx context.Context, names []string, scale float64, jobs int, s *sched.Scheduler) (time.Duration, error) {
	start := time.Now()
	sem := make(chan struct{}, jobs)
	errs := make([]error, len(names))
	donech := make(chan int, len(names))
	for i, name := range names {
		go func(i int, name string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := experiments.Run(name, experiments.Options{Ctx: ctx, Scale: scale, Sched: s})
			if err == nil {
				_ = r.Render()
			}
			errs[i] = err
			donech <- i
		}(i, name)
	}
	for range names {
		<-donech
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// runStudy times the full experiment suite under the three scheduler
// configurations and returns their results in order. attach, when
// non-nil, is called with each phase's scheduler before it runs so the
// telemetry plane can follow the study across schedulers.
func runStudy(ctx context.Context, scale float64, jobs int, attach func(*sched.Scheduler), tier sched.Tier) ([]studyResult, error) {
	names := experiments.Names()
	var out []studyResult
	if attach == nil {
		attach = func(*sched.Scheduler) {}
	}

	// Serial: the pre-scheduler behaviour — one experiment at a time,
	// each on a fresh pool with memoization and deduplication off, so
	// nothing is shared between (or within) experiments.
	serialStart := time.Now()
	for _, name := range names {
		s := sched.New(0)
		s.DisableMemo()
		attach(s)
		if _, err := runSuiteOn(ctx, []string{name}, scale, 1, s); err != nil {
			return nil, fmt.Errorf("serial %s: %v", name, err)
		}
	}
	serial := time.Since(serialStart)
	out = append(out, studyResult{
		Name: "serial", Experiments: len(names),
		WallSeconds: serial.Seconds(), SpeedupVsSerial: 1,
	})

	// Scheduled, cold cache: one shared scheduler, concurrent
	// experiments, every run memoized as it completes. The persistent
	// tier (when -store is given) sits under this scheduler only — the
	// serial phase has memoization off, so a tier there would never be
	// consulted.
	s := sched.New(0)
	if tier != nil {
		s.SetTier(tier)
	}
	attach(s)
	cold, err := runSuiteOn(ctx, names, scale, jobs, s)
	if err != nil {
		return nil, fmt.Errorf("scheduled-cold: %v", err)
	}
	coldStats := s.Stats()
	out = append(out, studyResult{
		Name: "scheduled-cold", Experiments: len(names),
		WallSeconds:     cold.Seconds(),
		SpeedupVsSerial: serial.Seconds() / cold.Seconds(),
		Sched:           counters(coldStats),
	})

	// Scheduled, warm cache: the same scheduler again — every
	// simulation should now be a cache hit.
	warm, err := runSuiteOn(ctx, names, scale, jobs, s)
	if err != nil {
		return nil, fmt.Errorf("scheduled-warm: %v", err)
	}
	out = append(out, studyResult{
		Name: "scheduled-warm", Experiments: len(names),
		WallSeconds:     warm.Seconds(),
		SpeedupVsSerial: serial.Seconds() / warm.Seconds(),
		Sched:           counters(s.Stats().Delta(coldStats)),
	})
	return out, nil
}

// runFleetPhases times cold multi-process sweeps: for each worker
// count, a fresh temp store directory is shared by that many re-executed
// copies of this binary, each claiming experiments through the shard
// and deduplicating simulations through the store's leases. The phase's
// Sched block sums every worker's process totals — its Misses must
// equal the single-worker count (at-most-once simulation per key).
func runFleetPhases(ctx context.Context, logger *slog.Logger, workerCounts []int, scale float64, serialWall float64) ([]studyResult, error) {
	names := experiments.Names()
	var out []studyResult
	for _, n := range workerCounts {
		storeDir, err := os.MkdirTemp("", "carfbench-fleet-")
		if err != nil {
			return nil, err
		}
		sh, err := fleet.NewShard(storeDir)
		if err != nil {
			os.RemoveAll(storeDir)
			return nil, err
		}
		args := []string{
			"-fleet-dir", sh.Dir,
			"-fleet-store", storeDir,
			"-study-scale", fmt.Sprintf("%g", scale),
		}
		start := time.Now()
		errs := fleet.Spawn(ctx, n, args, "-fleet-index", nil, os.Stderr)
		wall := time.Since(start)
		for i, serr := range errs {
			if serr != nil {
				os.RemoveAll(storeDir)
				return nil, fmt.Errorf("fleet-cold-w%d: worker %d: %v", n, i, serr)
			}
		}
		// A benchmark phase must be complete to be comparable: every
		// experiment needs a recorded result.
		for _, name := range names {
			if _, ok, lerr := sh.Load(name); lerr != nil {
				os.RemoveAll(storeDir)
				return nil, fmt.Errorf("fleet-cold-w%d: %s: %v", n, name, lerr)
			} else if !ok {
				os.RemoveAll(storeDir)
				return nil, fmt.Errorf("fleet-cold-w%d: %s has no recorded result", n, name)
			}
		}
		sums, err := sh.Summaries()
		if err != nil || len(sums) != n {
			os.RemoveAll(storeDir)
			return nil, fmt.Errorf("fleet-cold-w%d: %d of %d worker summaries present (%v)", n, len(sums), n, err)
		}
		var agg schedCounters
		for _, s := range sums {
			var ws schedCounters
			if err := json.Unmarshal(s.Sched, &ws); err != nil {
				os.RemoveAll(storeDir)
				return nil, fmt.Errorf("fleet-cold-w%d: worker %d counters: %v", n, s.Worker, err)
			}
			agg.Runs += ws.Runs
			agg.Misses += ws.Misses
			agg.Hits += ws.Hits
			agg.Joins += ws.Joins
			agg.DiskHits += ws.DiskHits
			agg.PeerHits += ws.PeerHits
			agg.QueueWaitSeconds += ws.QueueWaitSeconds
			agg.SimWallSeconds += ws.SimWallSeconds
			agg.LeaseWaitSeconds += ws.LeaseWaitSeconds
		}
		out = append(out, studyResult{
			Name:            fmt.Sprintf("fleet-cold-w%d", n),
			Experiments:     len(names),
			Workers:         n,
			WallSeconds:     wall.Seconds(),
			SpeedupVsSerial: serialWall / wall.Seconds(),
			Sched:           agg,
		})
		logger.Info("fleet phase timed", "workers", n,
			"wall", fmt.Sprintf("%.1fs", wall.Seconds()),
			"simulated", agg.Misses, "disk", agg.DiskHits, "peer", agg.PeerHits)
		os.RemoveAll(storeDir)
	}
	return out, nil
}

// runBenchFleetWorker is the hidden worker mode behind -fleet: claim
// experiments from the shard in suite order and run each on a private
// scheduler wired to the shared store (whose leases provide the
// cross-process dedup being measured). Results and a process-total
// summary go into the shard for the parent's aggregation.
func runBenchFleetWorker(ctx context.Context, logger *slog.Logger, shardDir string, index int, scale float64, storeDir string) int {
	st, err := store.Open(store.Options{Dir: storeDir, Schema: experiments.StoreSchema, Logger: logger})
	if err != nil {
		logger.Error("fleet worker store open failed", "worker", index, "err", err)
		return 1
	}
	defer st.Close()
	s := sched.New(0)
	s.SetTier(st)
	sh := fleet.OpenShard(shardDir)
	t0 := time.Now()
	ran, workErr := sh.Work(ctx, experiments.Names(), func(name string) (fleet.Result, error) {
		et := time.Now()
		r, err := experiments.Run(name, experiments.Options{Ctx: ctx, Scale: scale, Sched: s})
		if err != nil {
			return fleet.Result{}, err
		}
		_ = r.Render() // rendering is part of what the study times
		return fleet.Result{ElapsedSeconds: time.Since(et).Seconds()}, nil
	})
	sb, _ := json.Marshal(counters(s.Stats()))
	sum := fleet.Summary{
		Worker:      index,
		PID:         os.Getpid(),
		Experiments: ran,
		WallSeconds: time.Since(t0).Seconds(),
		Sched:       sb,
	}
	if err := sh.WriteSummary(sum); err != nil {
		logger.Error("fleet worker summary write failed", "worker", index, "err", err)
		return 1
	}
	if workErr != nil {
		logger.Error("fleet worker stopped early", "worker", index, "err", workErr)
		return 1
	}
	return 0
}

func main() {
	var (
		kernel     = flag.String("kernel", "histo", "workload kernel to simulate")
		scale      = flag.Float64("scale", 0.5, "workload scale factor")
		iters      = flag.Int("iters", 5, "timed runs per configuration")
		study      = flag.Bool("study", false, "also time the full experiment suite (serial vs scheduled)")
		studyScale = flag.Float64("study-scale", 0.25, "workload scale for the -study suite")
		jobs       = flag.Int("jobs", 4, "concurrent experiments in the -study scheduled configurations")
		telAddr    = flag.String("telemetry", "", "serve live telemetry (/metrics, /runs, /events, /healthz) on this host:port; follows the -study phases across their schedulers")
		out        = flag.String("out", "", "write JSON to this file instead of stdout")
		compare    = flag.String("compare", "", "compare against a previous report (JSON file); exit non-zero on a >10% per-config throughput regression")
		storeDir   = flag.String("store", "", "attach a persistent result store under the -study scheduled phases (disk hits are counted in the report)")
		fleetSpec  = flag.String("fleet", "", "comma-separated worker counts (e.g. \"1,2,4\"): with -study, time cold multi-process sweeps, each over a fresh temp store shared by N worker processes")

		// Internal worker-mode flags, set when this binary re-executes
		// itself as a fleet worker. Not for direct use.
		fleetDir   = flag.String("fleet-dir", "", "internal: run as a fleet worker against this shard directory")
		fleetIndex = flag.Int("fleet-index", 0, "internal: this fleet worker's index")
		fleetStore = flag.String("fleet-store", "", "internal: the fleet worker's shared store directory")
	)
	flag.Parse()
	logger := telemetry.NewLogger(os.Stderr, slog.LevelInfo)

	// SIGINT/SIGTERM cancel in-flight simulations cooperatively; the
	// interrupted exit path still writes whatever was measured so far to
	// -out (valid JSON, just fewer blocks) instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *fleetDir != "" {
		os.Exit(runBenchFleetWorker(ctx, logger, *fleetDir, *fleetIndex, *studyScale, *fleetStore))
	}

	k, err := workload.ByName(*kernel, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carfbench:", err)
		os.Exit(1)
	}

	// With -telemetry the hub observes every study scheduler in turn
	// (the server's /metrics scrapes whichever phase is active), and the
	// /runs + /events views span the whole process.
	var attach func(*sched.Scheduler)
	if *telAddr != "" {
		hub := telemetry.NewHub()
		sv := telemetry.NewServer(hub, nil)
		addr, err := sv.Start(*telAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carfbench:", err)
			os.Exit(1)
		}
		defer sv.Close()
		logger.Info("telemetry serving", "addr", addr,
			"endpoints", "/metrics /runs /events /healthz")
		attach = func(s *sched.Scheduler) {
			s.SetObserver(hub)
			sv.SetScheduler(s)
		}
	}

	rep := report{
		Schema:     "carf-bench/v2",
		Kernel:     *kernel,
		Scale:      *scale,
		Iters:      *iters,
		Provenance: collectProvenance(),
	}
	for _, c := range configs(ctx) {
		res, err := measure(c.name, k.Prog, c.run, *iters)
		if err != nil {
			if ctx.Err() != nil {
				logger.Error("interrupted, flushing partial report", "config", c.name)
				writeReport(rep, *out)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "carfbench:", err)
			os.Exit(1)
		}
		rep.Configs = append(rep.Configs, res)
		logger.Info("config measured", "config", c.name,
			"instr_per_sec", fmt.Sprintf("%.0f", res.InstrPerSec),
			"ns_per_instr", fmt.Sprintf("%.1f", res.NsPerInstr),
			"allocs_per_instr", fmt.Sprintf("%.4f", res.AllocsPerInst))
	}

	if *study {
		var tier sched.Tier
		if *storeDir != "" {
			st, err := store.Open(store.Options{Dir: *storeDir, Schema: experiments.StoreSchema, Logger: logger})
			if err != nil {
				fmt.Fprintln(os.Stderr, "carfbench:", err)
				os.Exit(1)
			}
			defer st.Close()
			tier = st
			ss := st.Stats()
			logger.Info("result store attached", "mode", ss.Mode, "dir", ss.Dir, "blobs", ss.DiskBlobs)
		}
		rep.StudyScale = *studyScale
		rep.StudyJobs = *jobs
		results, err := runStudy(ctx, *studyScale, *jobs, attach, tier)
		if err != nil {
			if ctx.Err() != nil {
				logger.Error("interrupted, flushing partial report")
				writeReport(rep, *out)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "carfbench:", err)
			os.Exit(1)
		}
		rep.Study = results
		for _, r := range results {
			logger.Info("study configuration timed", "study", r.Name,
				"wall", fmt.Sprintf("%.1fs", r.WallSeconds),
				"speedup_vs_serial", fmt.Sprintf("%.2fx", r.SpeedupVsSerial),
				"simulated", r.Sched.Misses, "cached", r.Sched.Hits, "joined", r.Sched.Joins)
		}
		if *fleetSpec != "" {
			var workerCounts []int
			for _, f := range strings.Split(*fleetSpec, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "carfbench: bad -fleet worker count %q\n", f)
					os.Exit(1)
				}
				workerCounts = append(workerCounts, n)
			}
			fleetResults, err := runFleetPhases(ctx, logger, workerCounts, *studyScale, results[0].WallSeconds)
			if err != nil {
				if ctx.Err() != nil {
					logger.Error("interrupted, flushing partial report")
					writeReport(rep, *out)
					os.Exit(1)
				}
				fmt.Fprintln(os.Stderr, "carfbench:", err)
				os.Exit(1)
			}
			rep.Study = append(rep.Study, fleetResults...)
			for _, r := range fleetResults {
				logger.Info("study configuration timed", "study", r.Name,
					"wall", fmt.Sprintf("%.1fs", r.WallSeconds),
					"speedup_vs_serial", fmt.Sprintf("%.2fx", r.SpeedupVsSerial),
					"simulated", r.Sched.Misses, "disk", r.Sched.DiskHits, "peer", r.Sched.PeerHits)
			}
		}
	}

	writeReport(rep, *out)

	if *compare != "" {
		ok, err := compareReports(os.Stderr, *compare, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carfbench:", err)
			os.Exit(1)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "carfbench: throughput regressed more than 10% against "+*compare)
			os.Exit(1)
		}
	}
}

// regressionTolerance is the fractional per-config throughput loss
// -compare accepts before failing: new_rate < (1 - tol) * old_rate on
// any shared configuration makes the run exit non-zero.
const regressionTolerance = 0.10

// compareReports diffs the new report against a previous one read from
// path, writes a human-readable ratio table to w, and reports whether
// the run passes the regression gate. Configurations are gated only
// when kernel and scale match (ratios across different workloads are
// meaningless); study wall clocks are informational.
func compareReports(w *os.File, path string, rep report) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	fmt.Fprintf(w, "\ncomparison against %s (%s)\n", path, old.Schema)
	gate := old.Kernel == rep.Kernel && old.Scale == rep.Scale
	if !gate {
		fmt.Fprintf(w, "  kernel/scale differ (%s@%g vs %s@%g): ratios shown, regression gate skipped\n",
			old.Kernel, old.Scale, rep.Kernel, rep.Scale)
	}
	oldCfg := map[string]configResult{}
	for _, c := range old.Configs {
		oldCfg[c.Name] = c
	}
	pass := true
	fmt.Fprintf(w, "  %-10s %14s %14s %8s\n", "config", "old inst/s", "new inst/s", "ratio")
	for _, c := range rep.Configs {
		o, okc := oldCfg[c.Name]
		if !okc || o.InstrPerSec <= 0 {
			fmt.Fprintf(w, "  %-10s %14s %14.0f %8s\n", c.Name, "-", c.InstrPerSec, "-")
			continue
		}
		ratio := c.InstrPerSec / o.InstrPerSec
		mark := ""
		if gate && ratio < 1-regressionTolerance {
			pass = false
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "  %-10s %14.0f %14.0f %7.2fx%s\n", c.Name, o.InstrPerSec, c.InstrPerSec, ratio, mark)
	}
	if len(rep.Study) > 0 && len(old.Study) > 0 {
		if old.StudyScale == rep.StudyScale && old.StudyJobs == rep.StudyJobs {
			oldStudy := map[string]studyResult{}
			for _, s := range old.Study {
				oldStudy[s.Name] = s
			}
			fmt.Fprintf(w, "  %-16s %11s %11s %8s\n", "study", "old wall", "new wall", "speedup")
			for _, s := range rep.Study {
				o, okc := oldStudy[s.Name]
				if !okc || s.WallSeconds <= 0 {
					continue
				}
				fmt.Fprintf(w, "  %-16s %10.2fs %10.2fs %7.2fx\n",
					s.Name, o.WallSeconds, s.WallSeconds, o.WallSeconds/s.WallSeconds)
			}
		} else {
			fmt.Fprintf(w, "  study scale/jobs differ: study walls not compared\n")
		}
	}
	return pass, nil
}

// writeReport marshals rep to out (stdout when empty). It exits the
// process on failure, so interrupted paths can call it last.
func writeReport(rep report, out string) {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "carfbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "carfbench:", err)
		os.Exit(1)
	}
}
