// Command carfprof profiles a workload's value locality: the live-value
// distributions behind Figures 1–2, memory-traffic partial locality, the
// instruction mix, and the value-type classification a content-aware
// register file would apply. Point it at a built-in kernel or an R64
// assembly file to judge whether content-awareness would pay off.
//
// Usage:
//
//	carfprof -kernel hashprobe
//	carfprof prog.s
package main

import (
	"flag"
	"fmt"
	"os"

	"carf/internal/asm"
	"carf/internal/core"
	"carf/internal/isa"
	"carf/internal/metrics"
	"carf/internal/oracle"
	"carf/internal/pipeline"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/vm"
	"carf/internal/workload"
)

func main() {
	var (
		kernel     = flag.String("kernel", "", "built-in kernel to profile (alternative to a .s file argument)")
		scale      = flag.Float64("scale", 0.5, "workload scale for built-in kernels")
		period     = flag.Int("period", 64, "live-value sampling period in cycles")
		metricsOut = flag.String("metrics-out", "", "write interval metric samples of the content-aware pass to this file (.jsonl/.json for JSON lines, .csv for CSV)")
		interval   = flag.Uint64("interval", metrics.DefaultInterval, "metric sampling interval in cycles")
		topN       = flag.Int("top", 10, "merged static+dynamic report: N hottest static instructions with CPI stack (0 disables)")
	)
	flag.Parse()

	prog, err := loadProgram(*kernel, *scale, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "carfprof:", err)
		os.Exit(1)
	}
	fmt.Printf("profiling %s (%d static instructions)\n\n", prog.Name, len(prog.Code))

	if err := profileRun(prog, *period, *metricsOut, *interval, *topN); err != nil {
		fmt.Fprintln(os.Stderr, "carfprof:", err)
		os.Exit(1)
	}
}

func loadProgram(kernel string, scale float64, args []string) (*vm.Program, error) {
	switch {
	case kernel != "" && len(args) > 0:
		return nil, fmt.Errorf("give either -kernel or a file, not both")
	case kernel != "":
		k, err := workload.ByName(kernel, scale)
		if err != nil {
			return nil, err
		}
		return k.Prog, nil
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		return asm.Assemble(args[0], string(src))
	default:
		return nil, fmt.Errorf("usage: carfprof -kernel <name> | carfprof <file.s>")
	}
}

func profileRun(prog *vm.Program, period int, metricsOut string, interval uint64, topN int) error {
	// Pass 1: functional run for the instruction mix and memory streams.
	mix := map[isa.Class]uint64{}
	addrStream := oracle.NewStreamAnalyzer(16, 64)
	dataStream := oracle.NewStreamAnalyzer(16, 64)
	m := vm.New(prog)
	var total uint64
	for !m.Halted {
		inst, eff, err := m.Step()
		if err != nil {
			return err
		}
		total++
		mix[inst.Op.Class()]++
		if eff.Mem {
			addrStream.Note(eff.Addr)
			v := eff.RdValue
			if eff.Store {
				v = eff.StoreVal
			}
			dataStream.Note(v)
		}
		if total > 100_000_000 {
			return fmt.Errorf("program did not halt within 100M instructions")
		}
	}

	mixTable := stats.Table{
		Title:  "Instruction mix",
		Header: []string{"class", "share"},
	}
	classes := []struct {
		label string
		class isa.Class
	}{
		{"integer ALU", isa.ClassIntALU}, {"multiply/divide", isa.ClassIntMul},
		{"load", isa.ClassLoad}, {"store", isa.ClassStore},
		{"branch", isa.ClassBranch}, {"jump", isa.ClassJump},
		{"floating point", isa.ClassFPU},
	}
	for _, c := range classes {
		mixTable.AddRow(c.label, stats.Pct(float64(mix[c.class])/float64(total)))
	}
	mixTable.AddNote("%d dynamic instructions", total)
	fmt.Println(mixTable.Render())

	// Pass 2: pipeline run with the live-value oracle.
	exact := oracle.NewAnalyzer(0)
	sims := []*oracle.Analyzer{oracle.NewAnalyzer(8), oracle.NewAnalyzer(12), oracle.NewAnalyzer(16)}
	fan := oracle.Fanout{exact, sims[0], sims[1], sims[2]}
	cpu := pipeline.New(pipeline.DefaultConfig(), prog, regfile.Baseline())
	cpu.SetSampler(fan, period)
	if _, err := cpu.Run(); err != nil {
		return err
	}

	live := stats.Table{
		Title:  "Live integer register values (Figure 1/2 methodology)",
		Header: append([]string{"grouping"}, oracle.BucketLabels[:]...),
	}
	addDist := func(label string, a *oracle.Analyzer) {
		row := []string{label}
		for _, f := range a.Distribution() {
			row = append(row, stats.Pct(f))
		}
		live.Rows = append(live.Rows, row)
	}
	addDist("exact value", exact)
	for i, d := range []int{8, 12, 16} {
		addDist(fmt.Sprintf("(64-%d)-similar", d), sims[i])
	}
	fmt.Println(live.Render())

	mem := stats.Table{
		Title:  "Memory traffic partial locality (d=16, 64-access window)",
		Header: []string{"stream", "coverage"},
	}
	mem.AddRow("addresses", stats.Pct(addrStream.Coverage()))
	mem.AddRow("data", stats.Pct(dataStream.Coverage()))
	fmt.Println(mem.Render())

	// Pass 3: what the content-aware file would do with it, with the
	// attribution profiler watching.
	model := core.New(core.DefaultParams())
	cpu2 := pipeline.New(pipeline.DefaultConfig(), prog, model)
	var sampler *metrics.Sampler
	var metricsFormat metrics.Format
	if metricsOut != "" {
		var err error
		if metricsFormat, err = metrics.FormatForPath(metricsOut); err != nil {
			return err
		}
		sampler = cpu2.InstallMetrics(metrics.NewRegistry(), interval)
	}
	var prof *profile.Profiler
	if topN > 0 {
		prof = cpu2.InstallProfiler()
	}
	st2, err := cpu2.Run()
	if err != nil {
		return err
	}
	if sampler != nil {
		ts := sampler.Series()
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := metrics.Write(f, ts, metricsFormat); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d metric samples x %d series to %s\n\n",
			len(ts.Samples), len(ts.Names), metricsOut)
	}
	cs := model.Stats()
	carfT := stats.Table{
		Title:  "Content-aware classification at the paper's configuration (d+n=20, 8 short, 48 long)",
		Header: []string{"event", "simple", "short", "long"},
	}
	share := func(a [3]uint64) []string {
		var t uint64
		for _, v := range a {
			t += v
		}
		out := make([]string, 3)
		for i, v := range a {
			if t == 0 {
				out[i] = "-"
			} else {
				out[i] = stats.Pct(float64(v) / float64(t))
			}
		}
		return out
	}
	r := share(cs.ReadsByType)
	w := share(cs.WritesByType)
	carfT.AddRow("register reads", r[0], r[1], r[2])
	carfT.AddRow("register writes", w[0], w[1], w[2])
	carfT.AddNote("avg live long registers: %.2f of %d", cs.AvgLiveLong(), core.DefaultParams().NumLong)
	carfT.AddNote("IPC %.3f (content-aware) — long-heavy workloads benefit least", st2.IPC())
	fmt.Println(carfT.Render())

	// Merged static+dynamic attribution: where the cycles went, and
	// which static instructions the dynamic events cluster on.
	if prof != nil {
		if err := prof.Stack.CheckIdentity(); err != nil {
			return err
		}
		stackT := prof.Stack.Table("CPI stack (content-aware pass)")
		fmt.Println(stackT.Render())
		hotT := prof.PCs.Table(fmt.Sprintf("Hottest %d static instructions (content-aware pass)", topN), topN)
		fmt.Println(hotT.Render())
	}
	return nil
}
