// Command carfasm assembles an R64 assembly file and optionally executes
// it — functionally on the golden-model VM, or on the full cycle-level
// pipeline with a chosen register file organization.
//
// Usage:
//
//	carfasm prog.s                        # assemble + run on the VM
//	carfasm -listing prog.s              # print the address listing
//	carfasm -pipeline -org content-aware prog.s
//	carfasm -dump x1,x28 prog.s          # print chosen registers at halt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"carf/internal/asm"
	"carf/internal/core"
	"carf/internal/isa"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/vm"
)

func main() {
	var (
		listing  = flag.Bool("listing", false, "print the assembled listing and exit")
		pipe     = flag.Bool("pipeline", false, "run on the cycle-level pipeline instead of the VM")
		orgName  = flag.String("org", "baseline", "pipeline register file: unlimited, baseline, content-aware")
		dump     = flag.String("dump", "x28", "comma-separated registers to print at halt")
		maxInsts = flag.Uint64("max-instructions", 50_000_000, "execution budget")
		traceN   = flag.Int("trace", 0, "with -pipeline: print a pipeview of the first N instructions")
		ops      = flag.Bool("ops", false, "print the R64 opcode reference and exit")
	)
	flag.Parse()
	if *ops {
		printOps()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: carfasm [flags] <file.s>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assembled %s: %d instructions, %d bytes of code at %#x\n",
		path, len(prog.Code), prog.CodeSize(), prog.Entry())
	if *listing {
		fmt.Print(asm.Listing(prog))
		return
	}

	var machine *vm.Machine
	if *pipe {
		var model regfile.Model
		switch *orgName {
		case "baseline":
			model = regfile.Baseline()
		case "unlimited":
			model = regfile.Unlimited()
		case "content-aware":
			model = core.New(core.DefaultParams())
		default:
			fatal(fmt.Errorf("unknown organization %q", *orgName))
		}
		cfg := pipeline.DefaultConfig()
		cfg.MaxInstructions = *maxInsts
		cpu := pipeline.New(cfg, prog, model)
		var buf *pipeline.TraceBuffer
		if *traceN > 0 {
			buf = &pipeline.TraceBuffer{Cap: *traceN}
			cpu.SetTracer(buf)
		}
		st, err := cpu.Run()
		if err != nil {
			fatal(err)
		}
		machine = cpu.Machine()
		fmt.Printf("pipeline(%s): %d instructions, %d cycles, IPC %.3f\n",
			model.Name(), st.Instructions, st.Cycles, st.IPC())
		if buf != nil {
			fmt.Print(buf.Format())
		}
	} else {
		machine = vm.New(prog)
		n, err := machine.Run(*maxInsts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("vm: %d instructions executed, halted=%v\n", n, machine.Halted)
	}

	for _, name := range strings.Split(*dump, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		if strings.HasPrefix(name, "f") {
			if n, err := strconv.Atoi(name[1:]); err == nil && n >= 0 && n < 32 {
				fmt.Printf("%-4s = %#x\n", name, machine.F[n])
				continue
			}
		}
		if strings.HasPrefix(name, "x") {
			if n, err := strconv.Atoi(name[1:]); err == nil && n >= 0 && n < 32 {
				fmt.Printf("%-4s = %#x (%d)\n", name, machine.X[n], int64(machine.X[n]))
				continue
			}
		}
		fmt.Fprintf(os.Stderr, "carfasm: unknown register %q\n", name)
	}
}

// printOps emits the opcode reference straight from the ISA tables, so
// it can never drift from the implementation.
func printOps() {
	fmt.Println("R64 opcode reference (8-byte encodings; limm is 16 bytes)")
	fmt.Printf("%-10s %-10s %s\n", "mnemonic", "class", "operands")
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		fmt.Printf("%-10s %-10s %s\n", op.Name(), className(op.Class()), operandShape(op))
	}
	fmt.Println("\npseudo-instructions: li, la, mv, j, call, ret, jr, beqz, bnez")
	fmt.Println("register aliases: zero=x0, sp=x29, gp=x30, ra=x31")
	fmt.Println("directives: .org .text .data .word .byte .double .ascii .zero .reg")
}

func className(c isa.Class) string {
	switch c {
	case isa.ClassIntALU:
		return "int-alu"
	case isa.ClassIntMul:
		return "int-mul"
	case isa.ClassLoad:
		return "load"
	case isa.ClassStore:
		return "store"
	case isa.ClassBranch:
		return "branch"
	case isa.ClassJump:
		return "jump"
	case isa.ClassFPU:
		return "fp"
	case isa.ClassSys:
		return "system"
	default:
		return "nop"
	}
}

func operandShape(op isa.Op) string {
	reg := func(c isa.RegClass) string {
		switch c {
		case isa.RegInt:
			return "xN"
		case isa.RegFP:
			return "fN"
		}
		return ""
	}
	switch {
	case op == isa.NOP || op == isa.HALT:
		return "(none)"
	case op == isa.LIMM:
		return "xN, imm64"
	case op.IsLoad():
		return reg(op.RdClass()) + ", off(xN)"
	case op.IsStore():
		return reg(op.Rs2Class()) + ", off(xN)"
	case op.IsBranch():
		return "xN, xN, target"
	case op == isa.JAL:
		return "xN, target"
	case op == isa.JALR:
		return "xN, xN[, imm]"
	case op.HasImm():
		return reg(op.RdClass()) + ", " + reg(op.Rs1Class()) + ", imm"
	default:
		parts := []string{reg(op.RdClass())}
		if op.Rs1Class() != isa.RegNone {
			parts = append(parts, reg(op.Rs1Class()))
		}
		if op.Rs2Class() != isa.RegNone {
			parts = append(parts, reg(op.Rs2Class()))
		}
		return strings.Join(parts, ", ")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "carfasm:", err)
	os.Exit(1)
}
