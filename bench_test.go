package carf

// One benchmark per paper exhibit (DESIGN.md §4 maps ids to figures and
// tables): each regenerates its experiment at a reduced workload scale
// and reports the headline number as a custom metric, so
// `go test -bench=. -benchmem` exercises the entire evaluation path.
// Full-size runs are produced by cmd/carfstudy.

import (
	"strconv"
	"strings"
	"testing"

	"carf/internal/core"
	"carf/internal/experiments"
	"carf/internal/harden"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/vm"
	"carf/internal/workload"
)

const benchScale = 0.05

func benchExperiment(b *testing.B, name string) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(name, experiments.Options{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// cellPct extracts a percentage cell from a rendered experiment table.
func cellPct(b *testing.B, res experiments.Result, table, row, col int) float64 {
	b.Helper()
	cell := res.Tables[table].Rows[row][col]
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func BenchmarkFig1ValueDistribution(b *testing.B) {
	res := benchExperiment(b, "fig1")
	b.ReportMetric(cellPct(b, res, 0, 0, 1), "int-group1-%")
}

func BenchmarkFig2Similarity(b *testing.B) {
	res := benchExperiment(b, "fig2")
	b.ReportMetric(cellPct(b, res, 0, 0, 1), "d8-group1-%")
	b.ReportMetric(cellPct(b, res, 0, 2, 1), "d16-group1-%")
}

func BenchmarkFig5IPCSweep(b *testing.B) {
	res := benchExperiment(b, "fig5")
	// d+n = 20 row (index 3 in the sweep 8,12,16,20,...).
	b.ReportMetric(cellPct(b, res, 0, 3, 1), "int-relIPC-%")
	b.ReportMetric(cellPct(b, res, 0, 3, 2), "fp-relIPC-%")
}

func BenchmarkFig6AccessMix(b *testing.B) {
	res := benchExperiment(b, "fig6")
	b.ReportMetric(cellPct(b, res, 0, 4, 3), "read-long-at-dn24-%")
}

func BenchmarkFig7Energy(b *testing.B) {
	res := benchExperiment(b, "fig7")
	b.ReportMetric(cellPct(b, res, 0, 3, 1), "carf-energy-at-dn20-%")
	b.ReportMetric(cellPct(b, res, 0, 3, 2), "baseline-energy-%")
}

func BenchmarkFig8Area(b *testing.B) {
	res := benchExperiment(b, "fig8")
	b.ReportMetric(cellPct(b, res, 0, 3, 1), "carf-area-at-dn20-%")
}

func BenchmarkFig9AccessTime(b *testing.B) {
	res := benchExperiment(b, "fig9")
	b.ReportMetric(cellPct(b, res, 0, 3, 1), "simple-time-at-dn20-%")
	b.ReportMetric(cellPct(b, res, 0, 3, 4), "baseline-time-%")
}

func BenchmarkTable2Bypass(b *testing.B) {
	res := benchExperiment(b, "table2")
	b.ReportMetric(cellPct(b, res, 0, 0, 2), "carf-int-bypass-%")
}

func BenchmarkTable3AccessEnergy(b *testing.B) {
	res := benchExperiment(b, "table3")
	b.ReportMetric(cellPct(b, res, 0, 3, 4), "baseline-peracc-%")
}

func BenchmarkTable4OperandTypes(b *testing.B) {
	res := benchExperiment(b, "table4")
	b.ReportMetric(cellPct(b, res, 0, 0, 1), "only-simple-%")
}

func BenchmarkSweepShortSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []int{2, 8, 32} {
			p := core.DefaultParams()
			p.NumShort = m
			runBenchKernel(b, "listchase", core.New(p))
		}
	}
}

func BenchmarkSweepLongSize(b *testing.B) {
	var live float64
	for i := 0; i < b.N; i++ {
		for _, k := range []int{40, 48, 56, 112} {
			p := core.DefaultParams()
			p.NumLong = k
			model := core.New(p)
			runBenchKernel(b, "crc64", model)
			if k == 48 {
				live = model.Stats().AvgLiveLong()
			}
		}
	}
	b.ReportMetric(live, "avg-live-long-at-48")
}

func BenchmarkSweepPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ports := range [][2]int{{16, 8}, {8, 8}, {8, 6}} {
			model := regfile.NewConventional("sweep", 112, ports[0], ports[1])
			runBenchKernel(b, "histo", model)
		}
	}
}

func BenchmarkExtCAMShortFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		p.CAMShort = true
		runBenchKernel(b, "treeinsert", core.New(p))
	}
}

func BenchmarkExtSMT(b *testing.B) {
	ka, err := workload.ByName("qsort", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	kb, err := workload.ByName("crc64", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	var combined float64
	for i := 0; i < b.N; i++ {
		model := core.New(core.DefaultParams())
		smt := pipeline.NewSMT(pipeline.DefaultConfig(),
			[2]*vm.Program{ka.Prog, kb.Prog}, model)
		sts, err := smt.Run()
		if err != nil {
			b.Fatal(err)
		}
		combined = sts[0].IPC() + sts[1].IPC()
	}
	b.ReportMetric(combined, "combined-IPC")
}

// runBenchKernel simulates one kernel at bench scale and fails the
// benchmark on any error or wrong architectural result.
func runBenchKernel(b *testing.B, name string, model regfile.Model) pipeline.Stats {
	b.Helper()
	k, err := workload.ByName(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cpu := pipeline.New(pipeline.DefaultConfig(), k.Prog, model)
	st, err := cpu.Run()
	if err != nil {
		b.Fatal(err)
	}
	if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
		b.Fatalf("%s: result %#x, want %#x", name, got, k.Expected)
	}
	return st
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per wall-clock second appear as the custom
// metric; allocations via -benchmem).
func BenchmarkSimulatorThroughput(b *testing.B) {
	k, err := workload.ByName("histo", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := pipeline.New(pipeline.DefaultConfig(), k.Prog, regfile.Baseline())
		st, err := cpu.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-inst/s")
}

// BenchmarkCheckedThroughput is BenchmarkSimulatorThroughput with the
// full hardening layer on (lockstep co-simulation, invariant sweeps,
// watchdog); comparing sim-inst/s between the two quantifies the cost of
// -check. The unhardened benchmarks above are the no-overhead baseline:
// with Check off the harden state is never allocated.
func BenchmarkCheckedThroughput(b *testing.B) {
	k, err := workload.ByName("histo", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Harden = harden.Options{Lockstep: true, SweepEvery: 4096, WatchdogAfter: 50000}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := pipeline.NewChecked(cfg, k.Prog, regfile.Baseline())
		if err != nil {
			b.Fatal(err)
		}
		st, err := cpu.Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Instructions
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-inst/s")
}

// BenchmarkProfiledThroughput measures the attribution profiler's cost
// the same way BenchmarkCheckedThroughput measures the hardening
// layer's: identical runs with the profiler off and on, sim-inst/s as
// the comparison metric. The "off" run pays only the per-cycle nil
// check, so the two sub-benchmarks bound the opt-in overhead.
func BenchmarkProfiledThroughput(b *testing.B) {
	k, err := workload.ByName("histo", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, profiled bool) {
		var insts uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cpu := pipeline.New(pipeline.DefaultConfig(), k.Prog, regfile.Baseline())
			if profiled {
				cpu.InstallProfiler()
			}
			st, err := cpu.Run()
			if err != nil {
				b.Fatal(err)
			}
			insts += st.Instructions
		}
		b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-inst/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkCARFWritePath measures the core classification/write path in
// isolation.
func BenchmarkCARFWritePath(b *testing.B) {
	f := core.New(core.DefaultParams())
	f.NoteAddress(0x5542_1000_0000)
	values := []uint64{7, 0x5542_1000_0040, 0xDEAD_BEEF_F00D_CAFE, ^uint64(0)}
	tags := make([]int, 16)
	for i := range tags {
		tags[i], _ = f.Alloc()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := tags[i%len(tags)]
		if !f.TryWrite(tag, values[i%len(values)]) {
			f.Free(tag)
			tags[i%len(tags)], _ = f.Alloc()
		}
	}
}
