package carf

import (
	"strings"
	"testing"
)

func TestKernelsListed(t *testing.T) {
	ks := Kernels()
	if len(ks) != 22 {
		t.Errorf("kernels = %d, want 22", len(ks))
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run("histo", Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Organization != ContentAware {
		t.Errorf("default organization = %q", res.Organization)
	}
	if res.IPC <= 0 || res.Instructions == 0 || res.Cycles == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if res.ReadsByType == [3]uint64{} {
		t.Error("content-aware run reported no typed reads")
	}
}

func TestRunAllOrganizations(t *testing.T) {
	var energies = map[Organization]float64{}
	for _, org := range Organizations() {
		res, err := Run("strsearch", Config{Organization: org, Scale: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", org, err)
		}
		if res.Organization != org {
			t.Errorf("organization echoed as %q", res.Organization)
		}
		energies[org] = res.RegFileEnergy
	}
	if !(energies[ContentAware] < energies[Baseline] && energies[Baseline] < energies[Unlimited]) {
		t.Errorf("energy ordering violated: %v", energies)
	}
}

func TestRunValidatesInput(t *testing.T) {
	if _, err := Run("nosuch", Config{}); err == nil {
		t.Error("unknown kernel should error")
	}
	if _, err := Run("qsort", Config{Organization: "bogus"}); err == nil {
		t.Error("unknown organization should error")
	}
	if _, err := Run("qsort", Config{DPlusN: 2, Scale: 0.05}); err == nil {
		t.Error("invalid content-aware parameters should error")
	}
}

func TestMaxInstructionsBound(t *testing.T) {
	res, err := Run("crc64", Config{Organization: Baseline, MaxInstructions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 2000 || res.Instructions > 2100 {
		t.Errorf("instructions = %d, want ~2000", res.Instructions)
	}
}

func TestSeriesAndTraceExport(t *testing.T) {
	res, err := Run("crc64", Config{Scale: 0.1, MetricsInterval: 500, TraceEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("MetricsInterval set but Result.Series is nil")
	}
	if len(res.Series.Samples) == 0 || res.Series.Index("pipeline.ipc") < 0 {
		t.Errorf("series incomplete: %d samples, names %v",
			len(res.Series.Samples), res.Series.Names)
	}
	if last, ok := res.Series.Last(); !ok || last.Cycle != res.Cycles {
		t.Errorf("final sample at cycle %d, run ended at %d", last.Cycle, res.Cycles)
	}
	if res.Trace == nil {
		t.Fatal("TraceEvents set but Result.Trace is nil")
	}
	if len(res.Trace.Events) != 100 {
		t.Errorf("trace holds %d events, want 100", len(res.Trace.Events))
	}
	if want := res.Instructions - 100; res.Trace.Dropped != want {
		t.Errorf("trace dropped %d, want %d", res.Trace.Dropped, want)
	}

	plain, err := Run("crc64", Config{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Series != nil || plain.Trace != nil {
		t.Error("observability disabled but Series/Trace are populated")
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Errorf("experiments = %d", len(Experiments()))
	}
	if DescribeExperiment("fig5") == "" {
		t.Error("fig5 has no description")
	}
	out, err := RunExperiment("fig8", ExperimentOptions{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 8") {
		t.Errorf("unexpected experiment output: %q", out)
	}
	if _, err := RunExperiment("nosuch", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestCheckMode(t *testing.T) {
	// A hardened run must produce the same measurements as a plain one —
	// the checkers observe, they never steer.
	checked, err := Run("qsort", Config{Scale: 0.05, Check: true})
	if err != nil {
		t.Fatalf("hardened run failed: %v", err)
	}
	plain, err := Run("qsort", Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if checked.Instructions != plain.Instructions || checked.Cycles != plain.Cycles {
		t.Errorf("check mode changed the run: %d inst / %d cyc vs %d / %d",
			checked.Instructions, checked.Cycles, plain.Instructions, plain.Cycles)
	}
	if _, err := Run("qsort", Config{Scale: 0.05, Check: true, CheckInterval: 256,
		Organization: Baseline}); err != nil {
		t.Errorf("hardened baseline run failed: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Organization: ContentAware, DPlusN: 20, ShortRegs: 8, LongRegs: 48},
		{Organization: Unlimited, Scale: 1},
		{Check: true, CheckInterval: 64},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", cfg, err)
		}
	}
	for name, cfg := range map[string]Config{
		"unknown organization": {Organization: "bogus"},
		"d+n too small":        {DPlusN: 2},
		"negative scale":       {Scale: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCustomCARFParameters(t *testing.T) {
	res, err := Run("hashprobe", Config{
		Organization: ContentAware,
		DPlusN:       24, ShortRegs: 16, LongRegs: 64,
		Scale: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("custom parameters produced no result")
	}
}
