package oracle

import (
	"testing"
	"testing/quick"
)

func TestBucketOf(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 100: 5}
	for rank, want := range cases {
		if got := bucketOf(rank); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", rank, got, want)
		}
	}
}

func TestExactGrouping(t *testing.T) {
	a := NewAnalyzer(0)
	// 5 copies of 7, 3 copies of 9, 2 singletons: G1=5/10, G2=3/10,
	// G3..4 = 2/10.
	a.Sample([]uint64{7, 7, 7, 7, 7, 9, 9, 9, 1, 2})
	d := a.Distribution()
	if d[0] != 0.5 || d[1] != 0.3 || d[2] != 0.2 {
		t.Errorf("distribution = %v", d)
	}
	if d[3] != 0 || d[4] != 0 || d[5] != 0 {
		t.Errorf("unexpected tail mass: %v", d)
	}
	if a.Samples() != 1 {
		t.Errorf("samples = %d", a.Samples())
	}
}

func TestSimilarityGrouping(t *testing.T) {
	a := NewAnalyzer(16)
	base := uint64(0x5542_1000_0000)
	// Four values within the same 64KB-aligned group, two in another.
	a.Sample([]uint64{base, base + 1, base + 0xFFFF, base + 0x10,
		base + 0x10_0000, base + 0x10_0008})
	d := a.Distribution()
	if d[0] < 0.66 || d[0] > 0.67 {
		t.Errorf("group 1 fraction = %v, want 4/6", d[0])
	}
	if d[1] < 0.33 || d[1] > 0.34 {
		t.Errorf("group 2 fraction = %v, want 2/6", d[1])
	}
}

func TestUniformValuesLandInRest(t *testing.T) {
	a := NewAnalyzer(0)
	values := make([]uint64, 64)
	for i := range values {
		values[i] = uint64(i) * 0x1_0000_0001
	}
	a.Sample(values)
	d := a.Distribution()
	// 64 singleton groups: 1 in G1, 1 in G2, 2 in G3..4, 4, 8, 48 in REST.
	if d[5] != 48.0/64 {
		t.Errorf("REST fraction = %v, want 0.75", d[5])
	}
}

func TestEmptySampleIgnored(t *testing.T) {
	a := NewAnalyzer(0)
	a.Sample(nil)
	if a.Samples() != 0 {
		t.Error("empty sample counted")
	}
	d := a.Distribution()
	for _, f := range d {
		if f != 0 {
			t.Error("distribution non-zero with no samples")
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := NewAnalyzer(0), NewAnalyzer(0)
	a.Sample([]uint64{1, 1})
	b.Sample([]uint64{2, 3})
	a.Merge(b)
	if a.Samples() != 2 {
		t.Errorf("merged samples = %d", a.Samples())
	}
	d := a.Distribution()
	// a: both in G1 (2 values); b: G1=1, G2=1. Total: G1=3/4, G2=1/4.
	if d[0] != 0.75 || d[1] != 0.25 {
		t.Errorf("merged distribution = %v", d)
	}
}

func TestFanout(t *testing.T) {
	exact, sim := NewAnalyzer(0), NewAnalyzer(16)
	f := Fanout{exact, sim}
	f.Sample([]uint64{5, 5, 0x5542_1000_0000})
	if exact.Samples() != 1 || sim.Samples() != 1 {
		t.Error("fanout did not reach all analyzers")
	}
}

// Property: the distribution always sums to 1 over non-empty samples,
// and larger d never decreases the group-1 share for the same values
// (coarser grouping merges groups).
func TestDistributionProperties(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := 2 + int(n)%30
		values := make([]uint64, count)
		s := seed
		for i := range values {
			s = s*6364136223846793005 + 1442695040888963407
			values[i] = s >> uint(i%3*8)
		}
		fine, coarse := NewAnalyzer(4), NewAnalyzer(24)
		fine.Sample(values)
		coarse.Sample(values)
		var sum float64
		for _, x := range fine.Distribution() {
			sum += x
		}
		if sum < 0.999 || sum > 1.001 {
			return false
		}
		return coarse.Distribution()[0] >= fine.Distribution()[0]-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStreamAnalyzer(t *testing.T) {
	s := NewStreamAnalyzer(8, 4)
	base := uint64(0x5542_1000_0000)
	s.Note(base) // cold
	s.Note(base + 0x40)
	s.Note(base + 0x80)
	if got := s.Coverage(); got < 0.66 || got > 0.67 {
		t.Errorf("coverage = %v, want 2/3", got)
	}
	// A far address misses; returning within the window hits.
	s.Note(0x7FFF_0000_0000)
	s.Note(base + 0xC0)
	if s.Total() != 5 {
		t.Errorf("total = %d", s.Total())
	}
	if got := s.Coverage(); got != 0.6 {
		t.Errorf("coverage = %v, want 3/5", got)
	}
}

func TestStreamAnalyzerWindowEviction(t *testing.T) {
	s := NewStreamAnalyzer(0, 2)
	s.Note(1)
	s.Note(2)
	s.Note(3) // evicts 1
	s.Note(1) // miss: 1 left the window
	if s.covered != 0 {
		t.Errorf("covered = %d, want 0", s.covered)
	}
	s.Note(3) // still in window (3 was noted 2 back... window holds {1,3} now)
	if s.covered != 1 {
		t.Errorf("covered = %d, want 1", s.covered)
	}
}

func TestStreamAnalyzerMerge(t *testing.T) {
	a, b := NewStreamAnalyzer(8, 4), NewStreamAnalyzer(8, 4)
	a.Note(100)
	a.Note(100)
	b.Note(200)
	a.Merge(b)
	if a.Total() != 3 {
		t.Errorf("merged total = %d", a.Total())
	}
	if got := a.Coverage(); got < 0.33 || got > 0.34 {
		t.Errorf("merged coverage = %v", got)
	}
}

func TestStreamAnalyzerDefaults(t *testing.T) {
	s := NewStreamAnalyzer(8, 0)
	if s.Window != 64 {
		t.Errorf("default window = %d", s.Window)
	}
	if s.Coverage() != 0 {
		t.Error("idle coverage should be 0")
	}
}
