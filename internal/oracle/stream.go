package oracle

// StreamAnalyzer measures partial value locality in a value *stream*
// (memory addresses or load/store data), rather than in a live-register
// snapshot: an element is covered if its high 64−D bits match one of the
// last Window elements. This backs the paper's §6 observation that
// "both addresses and data have considerable partial value locality"
// exploitable in the memory hierarchy.
type StreamAnalyzer struct {
	// D is the number of low-order bits ignored by the similarity
	// relation; Window is how many recent elements are searched.
	D      int
	Window int

	ring    []uint64
	pos     int
	filled  bool
	total   uint64
	covered uint64
}

// NewStreamAnalyzer returns an analyzer for (64−d)-similarity over a
// sliding window of the given size.
func NewStreamAnalyzer(d, window int) *StreamAnalyzer {
	if window <= 0 {
		window = 64
	}
	return &StreamAnalyzer{D: d, Window: window, ring: make([]uint64, 0, window)}
}

// Note records one stream element.
func (s *StreamAnalyzer) Note(v uint64) {
	key := v >> uint(s.D)
	s.total++
	for _, k := range s.ring {
		if k == key {
			s.covered++
			break
		}
	}
	if len(s.ring) < s.Window {
		s.ring = append(s.ring, key)
		return
	}
	s.ring[s.pos] = key
	s.pos = (s.pos + 1) % s.Window
}

// Total returns the number of elements observed.
func (s *StreamAnalyzer) Total() uint64 { return s.total }

// Coverage returns the fraction of elements whose high bits matched a
// recent element.
func (s *StreamAnalyzer) Coverage() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.covered) / float64(s.total)
}

// Merge folds another analyzer's counts into s (window contents are not
// merged; use per-workload analyzers and merge at reporting time).
func (s *StreamAnalyzer) Merge(o *StreamAnalyzer) {
	s.total += o.total
	s.covered += o.covered
}
