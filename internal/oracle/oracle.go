// Package oracle measures value locality in the live integer register
// file, reproducing the methodology behind Figures 1 and 2 of the paper:
// each sampled cycle, all live register values are grouped — by exact
// equality for the classic frequent-value distribution (Figure 1), or by
// their high-order 64−d bits for the (64−d)-similarity distribution
// (Figure 2) — the groups are ranked by population, and the populations
// are accumulated into rank buckets (group 1, group 2, groups 3–4,
// groups 5–8, groups 9–16, REST).
package oracle

import "sort"

// NumBuckets is the number of rank buckets in a distribution.
const NumBuckets = 6

// BucketLabels names the rank buckets, matching the figures' legends.
var BucketLabels = [NumBuckets]string{
	"Group 1", "Group 2", "Group 3..4", "Group 5..8", "Group 9..16", "REST",
}

// bucketOf maps a 1-based group rank to its bucket.
func bucketOf(rank int) int {
	switch {
	case rank <= 1:
		return 0
	case rank == 2:
		return 1
	case rank <= 4:
		return 2
	case rank <= 8:
		return 3
	case rank <= 16:
		return 4
	default:
		return 5
	}
}

// Analyzer accumulates a live-value distribution. D = 0 groups by exact
// value (Figure 1); D > 0 groups values whose high 64−D bits agree
// (Figure 2). Analyzer implements the pipeline's LiveSampler interface.
type Analyzer struct {
	// D is the number of low-order bits ignored when grouping.
	D int

	buckets [NumBuckets]uint64
	total   uint64
	samples uint64
	scratch map[uint64]int
}

// NewAnalyzer returns an analyzer grouping values by their high 64−d
// bits (d = 0 for exact-value grouping).
func NewAnalyzer(d int) *Analyzer {
	return &Analyzer{D: d, scratch: make(map[uint64]int)}
}

// Sample accumulates one cycle's live register values.
func (a *Analyzer) Sample(values []uint64) {
	if len(values) == 0 {
		return
	}
	if a.scratch == nil {
		a.scratch = make(map[uint64]int)
	}
	groups := a.scratch
	for k := range groups {
		delete(groups, k)
	}
	for _, v := range values {
		groups[v>>uint(a.D)]++
	}
	sizes := make([]int, 0, len(groups))
	for _, n := range groups {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for i, n := range sizes {
		a.buckets[bucketOf(i+1)] += uint64(n)
	}
	a.total += uint64(len(values))
	a.samples++
}

// Samples returns the number of accumulated cycles.
func (a *Analyzer) Samples() uint64 { return a.samples }

// Distribution returns the fraction of live values in each rank bucket.
func (a *Analyzer) Distribution() [NumBuckets]float64 {
	var out [NumBuckets]float64
	if a.total == 0 {
		return out
	}
	for i, n := range a.buckets {
		out[i] = float64(n) / float64(a.total)
	}
	return out
}

// Merge folds another analyzer's accumulation into a (used to aggregate
// across benchmarks).
func (a *Analyzer) Merge(b *Analyzer) {
	for i := range a.buckets {
		a.buckets[i] += b.buckets[i]
	}
	a.total += b.total
	a.samples += b.samples
}

// Fanout feeds one live-value stream to several analyzers (e.g. d = 0,
// 8, 12, 16 in a single simulation).
type Fanout []*Analyzer

// Sample implements the pipeline's LiveSampler.
func (f Fanout) Sample(values []uint64) {
	for _, a := range f {
		a.Sample(values)
	}
}
