package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1.0")
	tb.AddRow("b", "123.456")
	tb.AddNote("note %d", 7)
	out := tb.Render()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, two rows, note
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[5], "  note 7") {
		t.Errorf("note line = %q", lines[5])
	}
	// Numeric column right-aligned: both data rows end at same column.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[3], lines[4])
	}
}

// TestRenderRuneAlignment checks that multi-byte UTF-8 cells ("µs",
// "±") align by display runes, not bytes: padding by byte length would
// shift every column after a non-ASCII cell.
func TestRenderRuneAlignment(t *testing.T) {
	tb := Table{Header: []string{"metric", "value"}}
	tb.AddRow("latency µs", "1.5")
	tb.AddRow("error ±", "123.456")
	tb.AddRow("plain ascii", "7")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, rule, three rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	end := -1
	for _, l := range lines[2:] {
		runes := []rune(l)
		if end == -1 {
			end = len(runes)
		} else if len(runes) != end {
			t.Errorf("row widths differ in runes:\n%q", out)
		}
	}
	// "latency µs" is 10 runes but 11 bytes; byte-width padding would
	// give it zero pad (same as 11-byte "plain ascii") and shift its
	// value column one rune left.
	for _, l := range lines[2:] {
		if strings.HasPrefix(l, "latency µs") && !strings.HasPrefix(l, "latency µs ") {
			t.Errorf("multi-byte cell got no pad: %q", l)
		}
	}
}

func TestRenderNoHeader(t *testing.T) {
	tb := Table{}
	tb.AddRow("x", "y")
	out := tb.Render()
	if strings.Contains(out, "---") {
		t.Error("separator printed without header")
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tb := Table{Header: []string{"a"}}
	tb.AddRow("1", "2", "3")
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Error("extra cells dropped")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.488) != "48.8%" {
		t.Errorf("Pct = %q", Pct(0.488))
	}
	if F3(1.23456) != "1.235" {
		t.Errorf("F3 = %q", F3(1.23456))
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
	if GeoMean([]float64{2, -1}) != 0 {
		t.Error("geomean with non-positive input should be 0")
	}
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("geomean = %v, want 2", got)
	}
}
