// Package stats provides small reporting utilities shared by the
// experiment harness: aligned text tables in the style of the paper's
// tables and figure data series, plus formatting helpers.
package stats

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells rendered as aligned text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as text.
func (t *Table) Render() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	// Column widths count runes, not bytes: a cell like "µs" or "±0.1"
	// is multi-byte UTF-8 and byte-width padding would misalign every
	// column after it.
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			// Pad manually: fmt's %*s width counts bytes and would
			// over-pad multi-byte cells.
			pad := widths[i] - utf8.RuneCountInString(cell)
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F3 formats a float with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs (0 if any are not).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
