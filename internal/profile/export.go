package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"carf/internal/metrics"
	"carf/internal/regfile"
)

// stackRecord is the JSONL shape of the CPI stack summary line.
type stackRecord struct {
	Record string            `json:"record"` // "cpistack"
	Width  int               `json:"width"`
	Cycles uint64            `json:"cycles"`
	CPI    float64           `json:"cpi"`
	Slots  map[string]uint64 `json:"slots"`
}

// pcRecord is the JSONL shape of one per-PC line.
type pcRecord struct {
	Record      string `json:"record"` // "pc"
	PC          string `json:"pc"`
	Instruction string `json:"instruction"`
	Committed   uint64 `json:"committed"`
	Mispredicts uint64 `json:"mispredicts"`
	L2Misses    uint64 `json:"l2_misses"`
	MemMisses   uint64 `json:"mem_misses"`
	IMisses     uint64 `json:"imisses"`
	Simple      uint64 `json:"simple_writes"`
	Short       uint64 `json:"short_writes"`
	Long        uint64 `json:"long_writes"`
	Spills      uint64 `json:"spills"`
}

func (p *Profiler) record(s *PCStats) pcRecord {
	dis := "?"
	if p.PCs != nil {
		if inst, ok := p.PCs.prog.At(s.PC); ok {
			dis = inst.String()
		}
	}
	return pcRecord{
		Record:      "pc",
		PC:          fmt.Sprintf("%#x", s.PC),
		Instruction: dis,
		Committed:   s.Committed,
		Mispredicts: s.Mispredicts,
		L2Misses:    s.L2Misses,
		MemMisses:   s.MemMisses,
		IMisses:     s.IMisses,
		Simple:      s.Writes[regfile.TypeSimple],
		Short:       s.Writes[regfile.TypeShort],
		Long:        s.Writes[regfile.TypeLong],
		Spills:      s.Spills,
	}
}

// WriteJSONL writes the profile as JSON lines: first one "cpistack"
// record, then one "pc" record per static instruction with activity, in
// program order.
func (p *Profiler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	slots := make(map[string]uint64, NumCategories)
	for _, c := range Categories() {
		slots[c.String()] = p.Stack.Slots[c]
	}
	if err := enc.Encode(stackRecord{
		Record: "cpistack",
		Width:  p.Stack.Width,
		Cycles: p.Stack.Cycles,
		CPI:    p.Stack.CPI(),
		Slots:  slots,
	}); err != nil {
		return err
	}
	if p.PCs == nil {
		return nil
	}
	entries := p.PCs.Entries()
	for i := range entries {
		if !entries[i].interesting() {
			continue
		}
		if err := enc.Encode(p.record(&entries[i])); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the profile as CSV: a comment row carrying the CPI
// stack, a header, then one row per static instruction with activity.
func (p *Profiler) WriteCSV(w io.Writer) error {
	var stack string
	for _, c := range Categories() {
		stack += fmt.Sprintf(" %s=%d", c, p.Stack.Slots[c])
	}
	if _, err := fmt.Fprintf(w, "# cpistack width=%d cycles=%d cpi=%.4f%s\n",
		p.Stack.Width, p.Stack.Cycles, p.Stack.CPI(), stack); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "pc,instruction,committed,mispredicts,l2_misses,mem_misses,imisses,simple_writes,short_writes,long_writes,spills"); err != nil {
		return err
	}
	if p.PCs == nil {
		return nil
	}
	entries := p.PCs.Entries()
	for i := range entries {
		if !entries[i].interesting() {
			continue
		}
		r := p.record(&entries[i])
		if _, err := fmt.Fprintf(w, "%s,%q,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.PC, r.Instruction, r.Committed, r.Mispredicts, r.L2Misses,
			r.MemMisses, r.IMisses, r.Simple, r.Short, r.Long, r.Spills); err != nil {
			return err
		}
	}
	return nil
}

// Write dispatches on the metrics export format.
func (p *Profiler) Write(w io.Writer, format metrics.Format) error {
	if format == metrics.FormatCSV {
		return p.WriteCSV(w)
	}
	return p.WriteJSONL(w)
}
