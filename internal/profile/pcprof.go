package profile

import (
	"fmt"
	"sort"

	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/vm"
)

// PCStats aggregates the dynamic behaviour of one static instruction.
type PCStats struct {
	PC        uint64
	Committed uint64
	// Mispredicts counts resolved control-flow mispredictions at this
	// PC: gshare direction mispredicts plus indirect-target mispredicts.
	Mispredicts uint64
	// L2Misses / MemMisses count data accesses that missed the L1D and
	// were served by the L2 / by main memory. IMisses counts instruction
	// fetches for this PC that missed the L1I.
	L2Misses  uint64
	MemMisses uint64
	IMisses   uint64
	// Writes counts register-file write outcomes by value class,
	// indexed by regfile.ValueType (TypeNone for the conventional
	// baseline file, which does not classify).
	Writes [4]uint64
	// Spills counts pseudo-deadlock overflow spills forced at this PC.
	Spills uint64
}

// writes returns the total register writes of any class.
func (p *PCStats) writes() uint64 {
	return p.Writes[0] + p.Writes[1] + p.Writes[2] + p.Writes[3]
}

// interesting reports whether the entry has any activity worth exporting.
func (p *PCStats) interesting() bool {
	return p.Committed != 0 || p.Mispredicts != 0 || p.L2Misses != 0 ||
		p.MemMisses != 0 || p.IMisses != 0 || p.Spills != 0 || p.writes() != 0
}

// PCProfile is a dense per-static-instruction profile over one program.
// All hooks are O(1) map lookups plus counter increments — no
// allocation — so the pipeline can call them on every event. Events at
// addresses outside the program (possible only on wrong paths) are
// dropped.
type PCProfile struct {
	prog *vm.Program
	pcs  []PCStats
}

// NewPCProfile builds an empty profile sized to prog.
func NewPCProfile(prog *vm.Program) *PCProfile {
	p := &PCProfile{prog: prog, pcs: make([]PCStats, len(prog.Code))}
	for i := range p.pcs {
		p.pcs[i].PC = prog.AddrOf(i)
	}
	return p
}

// Program returns the program the profile is indexed by.
func (p *PCProfile) Program() *vm.Program { return p.prog }

func (p *PCProfile) at(pc uint64) *PCStats {
	i := p.prog.IndexOf(pc)
	if i < 0 {
		return nil
	}
	return &p.pcs[i]
}

// OnCommit records one committed instruction at pc.
func (p *PCProfile) OnCommit(pc uint64) {
	if s := p.at(pc); s != nil {
		s.Committed++
	}
}

// OnMispredict records one resolved control-flow misprediction at pc.
func (p *PCProfile) OnMispredict(pc uint64) {
	if s := p.at(pc); s != nil {
		s.Mispredicts++
	}
}

// OnDataMiss records a data access at pc that missed the L1D; mem is
// true when main memory served it, false when the L2 did.
func (p *PCProfile) OnDataMiss(pc uint64, mem bool) {
	if s := p.at(pc); s != nil {
		if mem {
			s.MemMisses++
		} else {
			s.L2Misses++
		}
	}
}

// OnFetchMiss records an instruction fetch of pc that missed the L1I.
func (p *PCProfile) OnFetchMiss(pc uint64) {
	if s := p.at(pc); s != nil {
		s.IMisses++
	}
}

// OnWrite records a register-file write outcome produced at pc.
func (p *PCProfile) OnWrite(pc uint64, typ regfile.ValueType, spilled bool) {
	if s := p.at(pc); s != nil {
		s.Writes[typ]++
		if spilled {
			s.Spills++
		}
	}
}

// Entries returns every per-PC record in program order. The slice
// aliases the profile's storage; treat it as read-only.
func (p *PCProfile) Entries() []PCStats { return p.pcs }

// Totals sums every entry — used to reconcile against pipeline totals.
func (p *PCProfile) Totals() PCStats {
	var t PCStats
	for i := range p.pcs {
		s := &p.pcs[i]
		t.Committed += s.Committed
		t.Mispredicts += s.Mispredicts
		t.L2Misses += s.L2Misses
		t.MemMisses += s.MemMisses
		t.IMisses += s.IMisses
		t.Spills += s.Spills
		for k := range t.Writes {
			t.Writes[k] += s.Writes[k]
		}
	}
	return t
}

// Top returns the n busiest static instructions by committed count
// (ties broken by address), skipping entries with no activity. Sorting
// happens here, at report time — never on the simulation path.
func (p *PCProfile) Top(n int) []PCStats {
	out := make([]PCStats, 0, len(p.pcs))
	for i := range p.pcs {
		if p.pcs[i].interesting() {
			out = append(out, p.pcs[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Committed != out[j].Committed {
			return out[i].Committed > out[j].Committed
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Table renders the top-n hot spots merged with the disassembly.
func (p *PCProfile) Table(title string, n int) stats.Table {
	t := stats.Table{
		Title: title,
		Header: []string{"pc", "instruction", "committed", "%dyn",
			"mispred", "l2miss", "memmiss", "imiss", "simple", "short", "long", "spills"},
	}
	total := p.Totals().Committed
	for _, s := range p.Top(n) {
		dis := "?"
		if inst, ok := p.prog.At(s.PC); ok {
			dis = inst.String()
		}
		share := 0.0
		if total > 0 {
			share = float64(s.Committed) / float64(total)
		}
		t.AddRow(fmt.Sprintf("%#x", s.PC), dis,
			fmt.Sprintf("%d", s.Committed), stats.Pct(share),
			fmt.Sprintf("%d", s.Mispredicts),
			fmt.Sprintf("%d", s.L2Misses),
			fmt.Sprintf("%d", s.MemMisses),
			fmt.Sprintf("%d", s.IMisses),
			fmt.Sprintf("%d", s.Writes[regfile.TypeSimple]),
			fmt.Sprintf("%d", s.Writes[regfile.TypeShort]),
			fmt.Sprintf("%d", s.Writes[regfile.TypeLong]),
			fmt.Sprintf("%d", s.Spills))
	}
	t.AddNote("%s: %d static instructions, %d committed", p.prog.Name, len(p.pcs), total)
	return t
}
