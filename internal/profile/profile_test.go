package profile

import (
	"strings"
	"testing"

	"carf/internal/metrics"
	"carf/internal/regfile"
	"carf/internal/workload"
)

func TestCPIStackIdentity(t *testing.T) {
	s := NewCPIStack(8)
	// A spread of cycles: full commits, partial commits blamed on every
	// category, and empty cycles.
	for i := 0; i < 100; i++ {
		s.Account(8, CatBase)
	}
	for c := CatBase; c < NumCategories; c++ {
		s.Account(3, c)
		s.Account(0, c)
	}
	if err := s.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	wantCycles := uint64(100 + 2*int(NumCategories-CatBase))
	if s.Cycles != wantCycles {
		t.Fatalf("Cycles = %d, want %d", s.Cycles, wantCycles)
	}
	if got, want := s.TotalSlots(), wantCycles*8; got != want {
		t.Fatalf("TotalSlots = %d, want %d", got, want)
	}
	// Components must sum to the CPI.
	var sum float64
	for _, c := range Categories() {
		sum += s.Component(c)
	}
	if cpi := s.CPI(); sum < cpi*0.999999 || sum > cpi*1.000001 {
		t.Fatalf("components sum to %f, CPI is %f", sum, cpi)
	}
}

func TestCPIStackIdentityViolationDetected(t *testing.T) {
	s := NewCPIStack(4)
	s.Account(2, CatBase)
	s.Slots[CatBase]++ // corrupt: double-charge a slot
	if err := s.CheckIdentity(); err == nil {
		t.Fatal("corrupted stack passed CheckIdentity")
	}
}

func TestPCProfileHooksAndTop(t *testing.T) {
	k, err := workload.ByName("histo", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Prog
	p := NewPCProfile(prog)
	pc0 := prog.AddrOf(0)
	pc1 := prog.AddrOf(1)
	for i := 0; i < 5; i++ {
		p.OnCommit(pc0)
	}
	p.OnCommit(pc1)
	p.OnMispredict(pc1)
	p.OnDataMiss(pc0, false)
	p.OnDataMiss(pc0, true)
	p.OnFetchMiss(pc1)
	p.OnWrite(pc0, regfile.TypeSimple, false)
	p.OnWrite(pc0, regfile.TypeLong, true)
	// Events off the program must be dropped, not crash or misattribute.
	p.OnCommit(prog.AddrOf(0) + 1)
	p.OnDataMiss(0xdeadbeef, true)

	tot := p.Totals()
	if tot.Committed != 6 || tot.Mispredicts != 1 || tot.L2Misses != 1 ||
		tot.MemMisses != 1 || tot.IMisses != 1 || tot.Spills != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	top := p.Top(1)
	if len(top) != 1 || top[0].PC != pc0 || top[0].Committed != 5 {
		t.Fatalf("Top(1) = %+v", top)
	}
	if top[0].Writes[regfile.TypeSimple] != 1 || top[0].Writes[regfile.TypeLong] != 1 {
		t.Fatalf("writes = %v", top[0].Writes)
	}
	// Table renders without panicking and mentions the hot PC.
	tab := p.Table("hot", 5)
	text := tab.Render()
	if !strings.Contains(text, "committed") {
		t.Fatalf("table missing header: %s", text)
	}
}

func TestProfilerExport(t *testing.T) {
	k, err := workload.ByName("histo", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	prog := k.Prog
	p := &Profiler{Stack: NewCPIStack(8), PCs: NewPCProfile(prog)}
	p.Stack.Account(8, CatBase)
	p.Stack.Account(2, CatRFLong)
	p.PCs.OnCommit(prog.AddrOf(0))
	p.PCs.OnWrite(prog.AddrOf(0), regfile.TypeShort, false)

	var jb strings.Builder
	if err := p.Write(&jb, metrics.FormatJSONL); err != nil {
		t.Fatal(err)
	}
	j := jb.String()
	if !strings.Contains(j, `"record":"cpistack"`) || !strings.Contains(j, `"rf-long":6`) {
		t.Fatalf("jsonl missing stack: %s", j)
	}
	if !strings.Contains(j, `"record":"pc"`) || !strings.Contains(j, `"short_writes":1`) {
		t.Fatalf("jsonl missing pc record: %s", j)
	}
	if n := strings.Count(j, "\n"); n != 2 {
		t.Fatalf("expected 2 lines (stack + 1 active pc), got %d: %s", n, j)
	}

	var cb strings.Builder
	if err := p.Write(&cb, metrics.FormatCSV); err != nil {
		t.Fatal(err)
	}
	c := cb.String()
	if !strings.HasPrefix(c, "# cpistack width=8 cycles=2") {
		t.Fatalf("csv missing stack comment: %s", c)
	}
	if !strings.Contains(c, "pc,instruction,committed") || strings.Count(c, "\n") != 3 {
		t.Fatalf("csv shape wrong: %s", c)
	}
}

func TestCategoryStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Categories() {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "category(") {
			t.Fatalf("category %d has no label", c)
		}
		if seen[s] {
			t.Fatalf("duplicate label %q", s)
		}
		seen[s] = true
	}
}
