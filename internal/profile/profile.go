// Package profile is the attribution layer of the simulator: it explains
// where cycles go instead of only counting them. It provides two views
// that the pipeline feeds when profiling is enabled:
//
//   - a CPI stack (CPIStack): every cycle the commit stage has
//     CommitWidth slots; slots that retire an instruction are counted as
//     useful, and the whole deficit of a cycle is charged to exactly one
//     blame category chosen by a priority scheme (see the pipeline's
//     blameCategory). Because each cycle contributes exactly Width slots,
//     the categories always sum to Cycles × Width — the slot-accounting
//     identity CheckIdentity asserts.
//
//   - a per-PC profile (PCProfile): per static instruction, committed
//     counts, branch mispredictions, cache misses by the level that
//     served them, register write value-class outcomes
//     (Simple/Short/Long), and overflow spill events, with top-N hot-spot
//     reporting merged with the disassembly.
//
// Both views are allocation-free on the simulation hot path: the CPI
// stack is a fixed array and the per-PC profile is a dense slice indexed
// by static-instruction number.
package profile

import (
	"fmt"

	"carf/internal/stats"
)

// Category is one blame bucket of the CPI stack. Every commit-slot
// deficit is charged to exactly one category.
type Category uint8

const (
	// CatCommit counts the useful slots: each retired an instruction.
	CatCommit Category = iota
	// CatBase is execution and dependency latency with no more specific
	// blamable event: the head is executing, or waiting on operands.
	CatBase
	// CatFrontend is fetch starvation from the front end itself: I-cache
	// misses, decode-redirect bubbles, and decode latency.
	CatFrontend
	// CatBranch is branch misprediction recovery: fetch is blocked on an
	// unresolved mispredicted control transfer, or refilling after one
	// resolved.
	CatBranch
	// CatL2 is a ROB-head load whose data access missed the L1D and was
	// served by the L2.
	CatL2
	// CatMem is a ROB-head load served by main memory (L2 miss).
	CatMem
	// CatRFLong is register file Long-sub-file pressure: write-back
	// Recovery-State retries (TryWrite failed, §3.2) and the
	// pseudo-deadlock-prevention issue stall.
	CatRFLong
	// CatRFSpill is a hard pseudo-deadlock overflow spill event
	// (ForceWrite took the spill path).
	CatRFSpill
	// CatRFFree is rename blocked because the register file has no free
	// rename tag (integer or FP free list empty).
	CatRFFree
	// CatStructural is rename blocked by a full ROB, issue queue, or LSQ.
	CatStructural

	// NumCategories bounds the category space.
	NumCategories
)

// String implements fmt.Stringer with the short labels used in exports.
func (c Category) String() string {
	switch c {
	case CatCommit:
		return "commit"
	case CatBase:
		return "base"
	case CatFrontend:
		return "frontend"
	case CatBranch:
		return "branch"
	case CatL2:
		return "l2"
	case CatMem:
		return "mem"
	case CatRFLong:
		return "rf-long"
	case CatRFSpill:
		return "rf-spill"
	case CatRFFree:
		return "rf-free"
	case CatStructural:
		return "structural"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// Categories lists every category in display order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// CPIStack is the slot-accounting cycle breakdown. Each counted cycle
// contributes exactly Width slots: the committed instructions plus the
// deficit charged to one blame category.
type CPIStack struct {
	Width  int
	Cycles uint64
	Slots  [NumCategories]uint64
}

// NewCPIStack builds a stack for a commit width.
func NewCPIStack(width int) CPIStack { return CPIStack{Width: width} }

// Account records one cycle: committed useful slots plus the deficit
// charged to blame. The pipeline calls it once per counted cycle.
func (s *CPIStack) Account(committed int, blame Category) {
	s.Cycles++
	s.Slots[CatCommit] += uint64(committed)
	if d := s.Width - committed; d > 0 {
		s.Slots[blame] += uint64(d)
	}
}

// TotalSlots returns the sum over all categories.
func (s *CPIStack) TotalSlots() uint64 {
	var sum uint64
	for _, v := range s.Slots {
		sum += v
	}
	return sum
}

// Instructions returns the committed instructions the stack observed
// (the useful slots). The run's final, uncounted halting cycle can
// commit a few more, so this may trail the pipeline's total slightly.
func (s *CPIStack) Instructions() uint64 { return s.Slots[CatCommit] }

// CheckIdentity asserts the conservation law: the categories sum to
// exactly Cycles × Width. Accounting that loses or double-charges a slot
// breaks it.
func (s *CPIStack) CheckIdentity() error {
	want := s.Cycles * uint64(s.Width)
	if got := s.TotalSlots(); got != want {
		return fmt.Errorf("profile: CPI stack not conservative: %d slots across categories, want %d cycles x %d width = %d",
			got, s.Cycles, s.Width, want)
	}
	return nil
}

// Share returns category c's fraction of all slots (0 when empty).
func (s *CPIStack) Share(c Category) float64 {
	total := s.TotalSlots()
	if total == 0 {
		return 0
	}
	return float64(s.Slots[c]) / float64(total)
}

// CPI returns the overall cycles per committed instruction.
func (s *CPIStack) CPI() float64 {
	if n := s.Instructions(); n > 0 {
		return float64(s.Cycles) / float64(n)
	}
	return 0
}

// Component returns category c's additive contribution to the CPI:
// Slots[c] / (Width × Instructions). The components sum to the CPI, and
// the CatCommit component is the ideal 1/Width.
func (s *CPIStack) Component(c Category) float64 {
	n := s.Instructions()
	if n == 0 {
		return 0
	}
	return float64(s.Slots[c]) / float64(s.Width) / float64(n)
}

// RFStallSlots sums the three register-file categories (Long pressure,
// overflow spills, free-list exhaustion).
func (s *CPIStack) RFStallSlots() uint64 {
	return s.Slots[CatRFLong] + s.Slots[CatRFSpill] + s.Slots[CatRFFree]
}

// Table renders the stack as a report table: slots, share, and CPI
// contribution per category.
func (s *CPIStack) Table(title string) stats.Table {
	t := stats.Table{
		Title:  title,
		Header: []string{"category", "slots", "share", "CPI"},
	}
	for _, c := range Categories() {
		t.AddRow(c.String(),
			fmt.Sprintf("%d", s.Slots[c]),
			stats.Pct(s.Share(c)),
			fmt.Sprintf("%.4f", s.Component(c)))
	}
	t.AddNote("%d cycles x %d commit slots; CPI %.3f; contributions sum to the CPI",
		s.Cycles, s.Width, s.CPI())
	return t
}

// Profiler bundles the two attribution views the pipeline feeds.
type Profiler struct {
	Stack CPIStack
	PCs   *PCProfile
}
