package workload

import "carf/internal/isa"

// Second wave of integer kernels: dense linear algebra, shortest paths
// with a binary heap, compression match-finding, and text tokenization.

// MatMulInt multiplies two n×n matrices of 16-bit values and reports
// sum((i+1)*C[i]). Models dense integer kernels: strided addressing and
// multiply-accumulate chains.
func MatMulInt(n int) Kernel {
	rng := NewRNG(1616)
	a := make([]uint64, n*n)
	bm := make([]uint64, n*n)
	for i := range a {
		a[i] = rng.Next() >> 48
		bm[i] = rng.Next() >> 48
	}

	var expected uint64
	{
		c := make([]uint64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s uint64
				for k := 0; k < n; k++ {
					s += a[i*n+k] * bm[k*n+j]
				}
				c[i*n+j] = s
			}
		}
		for i, v := range c {
			expected += uint64(i+1) * v
		}
	}

	aBase := uint64(HeapBase)
	bBase := HeapBase + uint64(8*n*n)
	cBase := bBase + uint64(8*n*n)
	b := NewBuilder("matmul")
	b.Words(aBase, a)
	b.Words(bBase, bm)
	b.La(1, aBase)
	b.La(2, bBase)
	b.La(3, cBase)
	b.Li(4, int64(n))
	b.Slli(15, 4, 3) // row stride bytes
	b.Li(5, 0)       // i
	b.Label("iloop")
	b.Bge(5, 4, "check")
	b.Li(6, 0) // j
	b.Label("jloop")
	b.Bge(6, 4, "inext")
	b.Li(20, 0) // s
	b.Li(7, 0)  // k
	b.Mul(8, 5, 4)
	b.Slli(8, 8, 3)
	b.Add(8, 1, 8) // &A[i*n]
	b.Slli(9, 6, 3)
	b.Add(9, 2, 9) // &B[0*n+j]... advance by stride
	b.Label("kloop")
	b.Bge(7, 4, "store")
	b.Ld(10, 8, 0)
	b.Ld(11, 9, 0)
	b.Mul(12, 10, 11)
	b.Add(20, 20, 12)
	b.Addi(8, 8, 8)
	b.Add(9, 9, 15)
	b.Addi(7, 7, 1)
	b.Jmp("kloop")
	b.Label("store")
	b.Mul(13, 5, 4)
	b.Add(13, 13, 6)
	b.Slli(13, 13, 3)
	b.Add(13, 3, 13)
	b.St(20, 13, 0)
	b.Addi(6, 6, 1)
	b.Jmp("jloop")
	b.Label("inext")
	b.Addi(5, 5, 1)
	b.Jmp("iloop")
	// Checksum C.
	b.Label("check")
	b.Li(20, 0)
	b.Li(5, 0)
	b.Mul(6, 4, 4) // n*n
	b.Label("cloop")
	b.Bge(5, 6, "done")
	b.Slli(7, 5, 3)
	b.Add(7, 3, 7)
	b.Ld(8, 7, 0)
	b.Addi(9, 5, 1)
	b.Mul(9, 9, 8)
	b.Add(20, 20, 9)
	b.Addi(5, 5, 1)
	b.Jmp("cloop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "matmul", Prog: b.MustBuild(), Expected: expected}
}

// Dijkstra computes single-source shortest paths on a random weighted
// graph using an array-backed binary min-heap, and reports the sum of
// finite distances. Models priority-queue codes: data-dependent branches
// in sift operations and irregular memory access.
func Dijkstra(n, degree int) Kernel {
	const inf = uint64(1) << 40
	rng := NewRNG(1717)
	row := make([]uint64, n+1)
	var edges, weights []uint64
	for u := 0; u < n; u++ {
		row[u] = uint64(len(edges))
		for d := 0; d < degree; d++ {
			edges = append(edges, uint64(rng.Intn(n)))
			weights = append(weights, 1+rng.Next()>>54) // 1..1024
		}
	}
	row[n] = uint64(len(edges))

	// Architectural replica: lazy-deletion Dijkstra with a binary heap
	// of (dist<<32 | node) keys, mirroring the assembly exactly.
	expected := func() uint64 {
		dist := make([]uint64, n)
		for i := range dist {
			dist[i] = inf
		}
		heap := make([]uint64, 0, 4*n)
		push := func(key uint64) {
			heap = append(heap, key)
			c := len(heap) - 1
			for c > 0 {
				p := (c - 1) / 2
				if heap[p] <= heap[c] {
					break
				}
				heap[p], heap[c] = heap[c], heap[p]
				c = p
			}
		}
		pop := func() uint64 {
			top := heap[0]
			last := len(heap) - 1
			heap[0] = heap[last]
			heap = heap[:last]
			c := 0
			for {
				l, r := 2*c+1, 2*c+2
				small := c
				if l < last && heap[l] < heap[small] {
					small = l
				}
				if r < last && heap[r] < heap[small] {
					small = r
				}
				if small == c {
					break
				}
				heap[c], heap[small] = heap[small], heap[c]
				c = small
			}
			return top
		}
		dist[0] = 0
		push(0) // dist 0, node 0
		for len(heap) > 0 {
			key := pop()
			d, u := key>>32, key&0xFFFFFFFF
			if d > dist[u] {
				continue
			}
			for e := row[u]; e < row[u+1]; e++ {
				v, w := edges[e], weights[e]
				nd := d + w
				if nd < dist[v] {
					dist[v] = nd
					push(nd<<32 | v)
				}
			}
		}
		var sum uint64
		for _, d := range dist {
			if d < inf {
				sum += d
			}
		}
		return sum
	}()

	edgeBase := GlobalBase + uint64(8*(n+1))
	weightBase := edgeBase + uint64(8*len(edges))
	distBase := uint64(HeapBase)
	heapBase := HeapBase + uint64(8*n) + 4096
	b := NewBuilder("dijkstra")
	b.Words(GlobalBase, row)
	b.Words(edgeBase, edges)
	b.Words(weightBase, weights)
	b.La(1, GlobalBase) // rowstart
	b.La(2, edgeBase)   // edges
	b.La(3, weightBase) // weights
	b.La(4, distBase)   // dist
	b.La(5, heapBase)   // heap storage
	b.Li(6, 0)          // heap size
	b.Li(7, int64(n))   // n
	b.Li(8, int64(inf)) // infinity
	// dist[] = inf; dist[0] = 0.
	b.Li(9, 0)
	b.Label("init")
	b.Bge(9, 7, "initdone")
	b.Slli(10, 9, 3)
	b.Add(10, 4, 10)
	b.St(8, 10, 0)
	b.Addi(9, 9, 1)
	b.Jmp("init")
	b.Label("initdone")
	b.St(isa.Zero, 4, 0)
	// push key 0
	b.Li(21, 0)
	b.Call("push")
	b.Label("mainloop")
	b.Beqz(6, "sum")
	b.Call("pop")      // x21 = min key
	b.Srli(11, 21, 32) // d
	b.Li(12, 0xFFFFFFFF)
	b.And(12, 21, 12) // u
	b.Slli(13, 12, 3)
	b.Add(13, 4, 13)
	b.Ld(14, 13, 0)           // dist[u]
	b.Blt(14, 11, "mainloop") // stale entry
	// edge loop: e in row[u]..row[u+1]
	b.Slli(13, 12, 3)
	b.Add(13, 1, 13)
	b.Ld(15, 13, 0) // e
	b.Ld(16, 13, 8) // end
	b.Label("eloop")
	b.Bge(15, 16, "mainloop")
	b.Slli(13, 15, 3)
	b.Add(17, 2, 13)
	b.Ld(17, 17, 0) // v
	b.Add(18, 3, 13)
	b.Ld(18, 18, 0)   // w
	b.Add(18, 11, 18) // nd = d + w
	b.Slli(19, 17, 3)
	b.Add(19, 4, 19) // &dist[v]
	b.Ld(20, 19, 0)
	b.Bgeu(18, 20, "enext") // nd >= dist[v]
	b.St(18, 19, 0)
	b.Slli(21, 18, 32)
	b.Or(21, 21, 17)
	b.Call("push")
	b.Label("enext")
	b.Addi(15, 15, 1)
	b.Jmp("eloop")
	// Sum finite distances.
	b.Label("sum")
	b.Li(20, 0)
	b.Li(9, 0)
	b.Label("sloop")
	b.Bge(9, 7, "done")
	b.Slli(10, 9, 3)
	b.Add(10, 4, 10)
	b.Ld(11, 10, 0)
	b.Bgeu(11, 8, "snext")
	b.Add(20, 20, 11)
	b.Label("snext")
	b.Addi(9, 9, 1)
	b.Jmp("sloop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	// push(x21): append and sift up. Clobbers x22-x27.
	b.Label("push")
	b.Slli(22, 6, 3)
	b.Add(22, 5, 22)
	b.St(21, 22, 0)
	b.Mv(23, 6) // c
	b.Addi(6, 6, 1)
	b.Label("pup")
	b.Beqz(23, "pdone")
	b.Addi(24, 23, -1)
	b.Srli(24, 24, 1) // parent
	b.Slli(25, 24, 3)
	b.Add(25, 5, 25)
	b.Ld(26, 25, 0) // heap[p]
	b.Slli(27, 23, 3)
	b.Add(27, 5, 27)
	b.Ld(22, 27, 0)         // heap[c]
	b.Bgeu(22, 26, "pdone") // heap[p] <= heap[c]
	b.St(22, 25, 0)
	b.St(26, 27, 0)
	b.Mv(23, 24)
	b.Jmp("pup")
	b.Label("pdone")
	b.Ret()

	// pop() -> x21: take root, move last to root, sift down.
	// Clobbers x22-x27, x10.
	b.Label("pop")
	b.Ld(21, 5, 0) // top
	b.Addi(6, 6, -1)
	b.Slli(22, 6, 3)
	b.Add(22, 5, 22)
	b.Ld(22, 22, 0) // last value
	b.St(22, 5, 0)
	b.Li(23, 0) // c
	b.Label("pdown")
	b.Slli(24, 23, 1)
	b.Addi(24, 24, 1) // l
	b.Bge(24, 6, "popdone")
	b.Mv(25, 23) // small = c
	b.Slli(26, 24, 3)
	b.Add(26, 5, 26)
	b.Ld(26, 26, 0) // heap[l]
	b.Slli(27, 25, 3)
	b.Add(27, 5, 27)
	b.Ld(27, 27, 0)        // heap[small]
	b.Bgeu(26, 27, "tryr") // heap[l] >= heap[small]
	b.Mv(25, 24)
	b.Label("tryr")
	b.Addi(10, 24, 1) // r
	b.Bge(10, 6, "cmps")
	b.Slli(26, 10, 3)
	b.Add(26, 5, 26)
	b.Ld(26, 26, 0) // heap[r]
	b.Slli(27, 25, 3)
	b.Add(27, 5, 27)
	b.Ld(27, 27, 0)
	b.Bgeu(26, 27, "cmps")
	b.Mv(25, 10)
	b.Label("cmps")
	b.Beq(25, 23, "popdone")
	b.Slli(26, 23, 3)
	b.Add(26, 5, 26)
	b.Slli(27, 25, 3)
	b.Add(27, 5, 27)
	b.Ld(22, 26, 0)
	b.Ld(10, 27, 0)
	b.St(10, 26, 0)
	b.St(22, 27, 0)
	b.Mv(23, 25)
	b.Jmp("pdown")
	b.Label("popdone")
	b.Ret()

	return Kernel{Name: "dijkstra", Prog: b.MustBuild(), Expected: expected}
}

// LZMatch scans a byte buffer with an LZSS-style match finder: at each
// position it searches a 256-byte back-window for the longest match (up
// to 15 bytes) and folds (offset, length) pairs into a checksum. Models
// compressor inner loops: short data-dependent compare runs.
func LZMatch(length int) Kernel {
	const window = 256
	const maxMatch = 15
	rng := NewRNG(1818)
	data := make([]byte, length)
	for i := range data {
		if i >= 16 && rng.Intn(3) != 0 {
			// Copy a short earlier chunk to create real matches.
			src := i - 1 - rng.Intn(15)
			data[i] = data[src]
		} else {
			data[i] = byte('a' + rng.Intn(6))
		}
	}

	expected := func() uint64 {
		var cs uint64
		i := 1
		for i < length {
			bestLen, bestOff := uint64(0), uint64(0)
			start := i - window
			if start < 0 {
				start = 0
			}
			for j := i - 1; j >= start; j-- {
				l := 0
				for l < maxMatch && i+l < length && data[j+l] == data[i+l] {
					l++
				}
				if uint64(l) > bestLen {
					bestLen, bestOff = uint64(l), uint64(i-j)
				}
			}
			cs = cs*31 + bestLen*1024 + bestOff
			if bestLen > 1 {
				i += int(bestLen)
			} else {
				i++
			}
		}
		return cs
	}()

	b := NewBuilder("lzmatch")
	b.Data(HeapBase, data)
	b.La(1, HeapBase)
	b.Li(2, int64(length))
	b.Li(3, 1)  // i
	b.Li(20, 0) // cs
	b.Li(15, maxMatch)
	b.Label("outer")
	b.Bge(3, 2, "done")
	b.Li(4, 0)            // bestLen
	b.Li(5, 0)            // bestOff
	b.Addi(6, 3, -window) // start
	b.Bge(6, isa.Zero, "startok")
	b.Li(6, 0)
	b.Label("startok")
	b.Addi(7, 3, -1) // j
	b.Label("jloop")
	b.Blt(7, 6, "emit")
	b.Li(8, 0) // l
	b.Label("mloop")
	b.Bge(8, 15, "mdone")
	b.Add(9, 3, 8)
	b.Bge(9, 2, "mdone") // i+l >= length
	b.Add(10, 1, 9)
	b.Lbu(10, 10, 0) // data[i+l]
	b.Add(11, 7, 8)
	b.Add(11, 1, 11)
	b.Lbu(11, 11, 0) // data[j+l]
	b.Bne(10, 11, "mdone")
	b.Addi(8, 8, 1)
	b.Jmp("mloop")
	b.Label("mdone")
	b.Bge(4, 8, "jnext") // bestLen >= l
	b.Mv(4, 8)
	b.Sub(5, 3, 7) // off = i - j
	b.Label("jnext")
	b.Addi(7, 7, -1)
	b.Jmp("jloop")
	b.Label("emit")
	b.Slli(9, 20, 5)
	b.Sub(9, 9, 20) // cs*31
	b.Slli(10, 4, 10)
	b.Add(10, 10, 5) // len*1024 + off
	b.Add(20, 9, 10)
	b.Li(11, 1)
	b.Blt(11, 4, "skip") // bestLen > 1
	b.Addi(3, 3, 1)
	b.Jmp("outer")
	b.Label("skip")
	b.Add(3, 3, 4)
	b.Jmp("outer")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "lzmatch", Prog: b.MustBuild(), Expected: expected}
}

// Tokenizer scans synthetic program text with a 256-entry character
// class table, FNV-hashing each identifier/number token. Models lexers
// and parsers: table lookups, short loops, frequent branches.
func Tokenizer(length int) Kernel {
	const (
		clsSpace = 0
		clsIdent = 1
		clsDigit = 2
		clsPunct = 3
	)
	rng := NewRNG(1919)
	var text []byte
	for len(text) < length {
		switch rng.Intn(4) {
		case 0, 1: // identifier
			n := 2 + rng.Intn(8)
			for i := 0; i < n; i++ {
				text = append(text, byte('a'+rng.Intn(26)))
			}
		case 2: // number
			n := 1 + rng.Intn(6)
			for i := 0; i < n; i++ {
				text = append(text, byte('0'+rng.Intn(10)))
			}
		default:
			text = append(text, "+-*/(){};,"[rng.Intn(10)])
		}
		text = append(text, ' ')
	}
	text = text[:length]

	classes := make([]byte, 256)
	for c := 'a'; c <= 'z'; c++ {
		classes[c] = clsIdent
	}
	for c := '0'; c <= '9'; c++ {
		classes[c] = clsDigit
	}
	for _, c := range []byte("+-*/(){};,") {
		classes[c] = clsPunct
	}

	expected := func() uint64 {
		var cs uint64
		i := 0
		for i < length {
			c := classes[text[i]]
			switch c {
			case clsIdent, clsDigit:
				h := uint64(14695981039346656037)
				for i < length && classes[text[i]] == c {
					h = (h ^ uint64(text[i])) * 1099511628211
					i++
				}
				cs += h
			case clsPunct:
				cs += uint64(text[i]) * 7
				i++
			default:
				i++
			}
		}
		return cs
	}()

	classBase := uint64(GlobalBase) + 0x8000
	b := NewBuilder("tokenizer")
	b.Data(HeapBase, text)
	b.Data(classBase, classes)
	b.La(1, HeapBase)
	b.Li(2, int64(length))
	b.La(3, classBase)
	b.Li(14, asI64(14695981039346656037))
	b.Li(15, 1099511628211)
	b.Li(20, 0) // cs
	b.Li(4, 0)  // i
	b.Label("loop")
	b.Bge(4, 2, "done")
	b.Add(5, 1, 4)
	b.Lbu(5, 5, 0)
	b.Add(6, 3, 5)
	b.Lbu(6, 6, 0) // class
	b.Li(7, clsPunct)
	b.Beq(6, 7, "punct")
	b.Beqz(6, "space")
	// Ident/digit token: FNV until the class changes.
	b.Mv(8, 14) // h
	b.Label("tok")
	b.Bge(4, 2, "tokdone")
	b.Add(9, 1, 4)
	b.Lbu(9, 9, 0)
	b.Add(10, 3, 9)
	b.Lbu(10, 10, 0)
	b.Bne(10, 6, "tokdone")
	b.Xor(8, 8, 9)
	b.Mul(8, 8, 15)
	b.Addi(4, 4, 1)
	b.Jmp("tok")
	b.Label("tokdone")
	b.Add(20, 20, 8)
	b.Jmp("loop")
	b.Label("punct")
	b.Slli(9, 5, 3)
	b.Sub(9, 9, 5) // c*7
	b.Add(20, 20, 9)
	b.Addi(4, 4, 1)
	b.Jmp("loop")
	b.Label("space")
	b.Addi(4, 4, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "tokenizer", Prog: b.MustBuild(), Expected: expected}
}
