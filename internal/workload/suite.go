package workload

import (
	"fmt"
	"math"
)

// Suite construction. The integer suite stands in for SPECint2000 and
// the FP suite for SPECfp2000 (see DESIGN.md §3). Sizes are chosen so
// each kernel executes a few hundred thousand dynamic instructions at
// scale 1.0; scale multiplies the work (iteration counts / input
// lengths), keeping data-structure shapes intact.

type kernelFactory struct {
	name string
	fp   bool
	make func(scale float64) Kernel
}

// min3 clamps v to [0, hi] (FFT sizes must stay powers of two, so the
// scale knob selects among a few sizes instead of scaling linearly).
func min3(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 1 {
		return 1
	}
	return n
}

var factories = []kernelFactory{
	{"qsort", false, func(s float64) Kernel { return Quicksort(scaled(2000, s)) }},
	{"listchase", false, func(s float64) Kernel { return ListChase(4096, scaled(40000, s)) }},
	{"hashprobe", false, func(s float64) Kernel { return HashProbe(scaled(8192, s), 32768) }},
	{"strsearch", false, func(s float64) Kernel { return StringSearch(scaled(15000, s), 8) }},
	{"rle", false, func(s float64) Kernel { return RLE(scaled(15000, s)) }},
	{"crc64", false, func(s float64) Kernel { return CRC64(scaled(20000, s), 1) }},
	{"treeinsert", false, func(s float64) Kernel { return TreeInsert(scaled(2000, s)) }},
	{"bfs", false, func(s float64) Kernel { return BFS(4096, scaled(6, s)) }},
	{"histo", false, func(s float64) Kernel { return Histogram(scaled(30000, s)) }},
	{"vmloop", false, func(s float64) Kernel { return VMLoop(1024, scaled(25000, s)) }},
	{"matmul", false, func(s float64) Kernel { return MatMulInt(scaled(42, s)) }},
	{"dijkstra", false, func(s float64) Kernel { return Dijkstra(2048, scaled(6, s)) }},
	{"lzmatch", false, func(s float64) Kernel { return LZMatch(scaled(1400, s)) }},
	{"tokenizer", false, func(s float64) Kernel { return Tokenizer(scaled(18000, s)) }},

	{"saxpy", true, func(s float64) Kernel { return Saxpy(2000, scaled(15, s)) }},
	{"stencil", true, func(s float64) Kernel { return Stencil(2000, scaled(10, s)) }},
	{"nbody", true, func(s float64) Kernel { return NBody(24, scaled(25, s)) }},
	{"montecarlo", true, func(s float64) Kernel { return MonteCarlo(scaled(18000, s)) }},
	{"dotprod", true, func(s float64) Kernel { return DotProduct(2000, scaled(20, s)) }},
	{"jacobi", true, func(s float64) Kernel { return Jacobi(48, scaled(6, s)) }},
	{"fft", true, func(s float64) Kernel { return FFT(256 << min3(int(s*2), 2)) }},
	{"conv2d", true, func(s float64) Kernel { return Conv2D(40, scaled(8, s)) }},
}

// IntSuite returns the integer kernels at the given scale (1.0 is the
// standard experiment size).
func IntSuite(scale float64) []Kernel { return bySuite(false, scale) }

// FPSuite returns the floating-point kernels at the given scale.
func FPSuite(scale float64) []Kernel { return bySuite(true, scale) }

// AllKernels returns the full suite, integer kernels first.
func AllKernels(scale float64) []Kernel {
	return append(IntSuite(scale), FPSuite(scale)...)
}

func bySuite(fp bool, scale float64) []Kernel {
	var out []Kernel
	for _, f := range factories {
		if f.fp == fp {
			out = append(out, f.make(scale))
		}
	}
	return out
}

// Names returns all kernel names in suite order.
func Names() []string {
	names := make([]string, len(factories))
	for i, f := range factories {
		names[i] = f.name
	}
	return names
}

// ByName builds the named kernel at the given scale. A panic inside a
// kernel factory (a bug exposed by an extreme scale) is converted into
// an error rather than taking the caller down.
func ByName(name string, scale float64) (k Kernel, err error) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Kernel{}, fmt.Errorf("workload: scale %v must be a positive finite number", scale)
	}
	for _, f := range factories {
		if f.name == name {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("workload: building kernel %q at scale %v panicked: %v", name, scale, r)
				}
			}()
			return f.make(scale), nil
		}
	}
	return Kernel{}, fmt.Errorf("workload: unknown kernel %q (known: %v)", name, Names())
}
