package workload

import (
	"math"

	"carf/internal/isa"
)

// Second wave of FP kernels: an iterative radix-2 FFT (mixing integer
// bit manipulation with FP butterflies) and a 3×3 convolution.

// FFT performs an in-place iterative radix-2 complex FFT over n points
// (n a power of two) and reports the bit pattern of the sum of the real
// parts. The bit-reversal permutation exercises integer shift/mask
// chains; the butterflies exercise FP multiply/add pipelines; per-stage
// twiddle factors come from a precomputed table (the ISA has no
// trigonometry, like real hardware).
func FFT(n int) Kernel {
	rng := NewRNG(2020)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.Float64()*2 - 1
		im[i] = rng.Float64()*2 - 1
	}
	stages := 0
	for 1<<stages < n {
		stages++
	}
	wRe := make([]uint64, stages)
	wIm := make([]uint64, stages)
	for s := 0; s < stages; s++ {
		length := 1 << (s + 1)
		ang := -2 * math.Pi / float64(length)
		wRe[s] = fbits(math.Cos(ang))
		wIm[s] = fbits(math.Sin(ang))
	}

	// Replica mirrors the assembly's operation order; explicit
	// temporaries keep every rounding step identical.
	expected := func() uint64 {
		ar := append([]float64(nil), re...)
		ai := append([]float64(nil), im...)
		j := 0
		for i := 1; i < n; i++ {
			bit := n >> 1
			for j&bit != 0 {
				j ^= bit
				bit >>= 1
			}
			j ^= bit
			if i < j {
				ar[i], ar[j] = ar[j], ar[i]
				ai[i], ai[j] = ai[j], ai[i]
			}
		}
		for s := 0; s < stages; s++ {
			length := 1 << (s + 1)
			half := length >> 1
			wlr := math.Float64frombits(wRe[s])
			wli := math.Float64frombits(wIm[s])
			for i := 0; i < n; i += length {
				cr, ci := 1.0, 0.0
				for k := 0; k < half; k++ {
					ur, ui := ar[i+k], ai[i+k]
					xr, xi := ar[i+k+half], ai[i+k+half]
					t1 := xr * cr
					t2 := xi * ci
					vr := t1 - t2
					t3 := xr * ci
					t4 := xi * cr
					vi := t3 + t4
					ar[i+k] = ur + vr
					ai[i+k] = ui + vi
					ar[i+k+half] = ur - vr
					ai[i+k+half] = ui - vi
					n1 := cr * wlr
					n3 := cr * wli
					n2 := ci * wli
					n4 := ci * wlr
					cr = n1 - n2
					ci = n3 + n4
				}
			}
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += ar[i]
		}
		return fbits(sum)
	}()

	reBase := uint64(HeapBase)
	imBase := HeapBase + uint64(8*n)
	wReBase := uint64(GlobalBase)
	wImBase := GlobalBase + uint64(8*stages)
	b := NewBuilder("fft")
	b.Words(reBase, floatBits(re))
	b.Words(imBase, floatBits(im))
	b.Words(wReBase, wRe)
	b.Words(wImBase, wIm)
	b.La(1, reBase)
	b.La(2, imBase)
	b.Li(3, int64(n))
	fconst(b, 18, 9, 1.0) // constant one (also used to copy-reset w)
	fconst(b, 19, 9, 0.0) // constant zero

	// Bit-reversal permutation: i in x4, j in x5.
	b.Li(5, 0)
	b.Li(4, 1)
	b.Label("brl")
	b.Bge(4, 3, "stages")
	b.Srli(6, 3, 1) // bit = n>>1
	b.Label("bitl")
	b.And(7, 5, 6)
	b.Beqz(7, "bitdone")
	b.Xor(5, 5, 6)
	b.Srli(6, 6, 1)
	b.Jmp("bitl")
	b.Label("bitdone")
	b.Xor(5, 5, 6)
	b.Blt(4, 5, "doswap") // swap only when i < j
	b.Jmp("brnext")
	b.Label("doswap")
	b.Slli(8, 4, 3)
	b.Slli(9, 5, 3)
	b.Add(10, 1, 8)
	b.Add(11, 1, 9)
	b.Fld(1, 10, 0)
	b.Fld(2, 11, 0)
	b.Fsd(1, 11, 0)
	b.Fsd(2, 10, 0)
	b.Add(10, 2, 8)
	b.Add(11, 2, 9)
	b.Fld(1, 10, 0)
	b.Fld(2, 11, 0)
	b.Fsd(1, 11, 0)
	b.Fsd(2, 10, 0)
	b.Label("brnext")
	b.Addi(4, 4, 1)
	b.Jmp("brl")

	// Butterfly stages. Integer: x12 stage, x13 length, x14 half,
	// x15/x16 twiddle table bases, x17 stage count, x4 block, x5 k,
	// x6..x11, x18, x19 addressing. FP: f10/f11 stage twiddle, f12/f13
	// running w, f1..f8 butterfly temps, f18 one, f19 zero.
	b.Label("stages")
	b.La(15, wReBase)
	b.La(16, wImBase)
	b.Li(12, 0)
	b.Li(17, int64(stages))
	b.Label("stage")
	b.Bge(12, 17, "reduce")
	b.Li(13, 2)
	b.Sll(13, 13, 12) // length = 2 << stage
	b.Srli(14, 13, 1) // half
	b.Slli(18, 12, 3)
	b.Add(19, 15, 18)
	b.Fld(10, 19, 0) // wlr
	b.Add(19, 16, 18)
	b.Fld(11, 19, 0) // wli
	b.Li(4, 0)       // i
	b.Label("blk")
	b.Bge(4, 3, "snext")
	b.Fmul(12, 18, 18) // cr = 1
	b.Fmul(13, 19, 18) // ci = 0
	b.Li(5, 0)         // k
	b.Label("bfly")
	b.Bge(5, 14, "blknext")
	b.Add(10, 4, 5)   // i+k
	b.Add(11, 10, 14) // i+k+half
	b.Slli(18, 10, 3)
	b.Slli(19, 11, 3)
	b.Add(6, 1, 18)  // &re[i+k]
	b.Add(7, 1, 19)  // &re[i+k+half]
	b.Add(8, 2, 18)  // &im[i+k]
	b.Add(9, 2, 19)  // &im[i+k+half]
	b.Fld(1, 6, 0)   // ur
	b.Fld(2, 8, 0)   // ui
	b.Fld(3, 7, 0)   // xr
	b.Fld(4, 9, 0)   // xi
	b.Fmul(5, 3, 12) // t1 = xr*cr
	b.Fmul(6, 4, 13) // t2 = xi*ci
	b.Fsub(5, 5, 6)  // vr
	b.Fmul(6, 3, 13) // t3 = xr*ci
	b.Fmul(7, 4, 12) // t4 = xi*cr
	b.Fadd(6, 6, 7)  // vi
	b.Fadd(8, 1, 5)
	b.Fsd(8, 6, 0) // re[i+k] = ur+vr
	b.Fadd(8, 2, 6)
	b.Fsd(8, 8, 0) // im[i+k] = ui+vi
	b.Fsub(8, 1, 5)
	b.Fsd(8, 7, 0) // re[i+k+half] = ur-vr
	b.Fsub(8, 2, 6)
	b.Fsd(8, 9, 0) // im[i+k+half] = ui-vi
	// w *= wlen
	b.Fmul(14, 12, 10) // n1 = cr*wlr
	b.Fmul(15, 12, 11) // n3 = cr*wli
	b.Fmul(7, 13, 11)  // n2 = ci*wli
	b.Fmul(8, 13, 10)  // n4 = ci*wlr
	b.Fsub(12, 14, 7)  // cr'
	b.Fadd(13, 15, 8)  // ci'
	b.Addi(5, 5, 1)
	b.Jmp("bfly")
	b.Label("blknext")
	b.Add(4, 4, 13)
	b.Jmp("blk")
	b.Label("snext")
	b.Addi(12, 12, 1)
	b.Jmp("stage")

	// Reduce real parts.
	b.Label("reduce")
	b.Fmul(10, 19, 18) // sum = 0
	b.Li(4, 0)
	b.Label("red")
	b.Bge(4, 3, "done")
	b.Slli(6, 4, 3)
	b.Add(6, 1, 6)
	b.Fld(3, 6, 0)
	b.Fadd(10, 10, 3)
	b.Addi(4, 4, 1)
	b.Jmp("red")
	b.Label("done")
	b.Fmvxd(ResultReg, 10)
	b.Halt()

	return Kernel{Name: "fft", FP: true, Prog: b.MustBuild(), Expected: expected}
}

// Conv2D applies a 3×3 convolution to a dim×dim image for iters passes
// (ping-pong buffers, borders passed through) and reports the bit
// pattern of the interior sum. Models image/signal filter loops.
func Conv2D(dim, iters int) Kernel {
	rng := NewRNG(2121)
	img := make([]float64, dim*dim)
	for i := range img {
		img[i] = rng.Float64() * 16
	}
	kern := [9]float64{
		0.0625, 0.125, 0.0625,
		0.125, 0.25, 0.125,
		0.0625, 0.125, 0.0625,
	}

	expected := func() uint64 {
		src := append([]float64(nil), img...)
		dst := append([]float64(nil), img...)
		for it := 0; it < iters; it++ {
			for r := 1; r < dim-1; r++ {
				for c := 1; c < dim-1; c++ {
					acc := 0.0
					for kr := 0; kr < 3; kr++ {
						for kc := 0; kc < 3; kc++ {
							t := src[(r+kr-1)*dim+(c+kc-1)] * kern[kr*3+kc]
							acc = acc + t
						}
					}
					dst[r*dim+c] = acc
				}
			}
			src, dst = dst, src
		}
		var sum float64
		for r := 1; r < dim-1; r++ {
			for c := 1; c < dim-1; c++ {
				sum += src[r*dim+c]
			}
		}
		return fbits(sum)
	}()

	aBase := uint64(HeapBase)
	bBase := HeapBase + uint64(8*dim*dim)
	kBase := uint64(GlobalBase)
	b := NewBuilder("conv2d")
	b.Words(aBase, floatBits(img))
	b.Words(bBase, floatBits(img))
	b.Words(kBase, floatBits(kern[:]))
	b.La(1, aBase) // src
	b.La(2, bBase) // dst
	b.La(3, kBase)
	b.Li(4, int64(dim))
	b.Addi(5, 4, -1) // dim-1
	b.Slli(15, 4, 3) // row stride
	fconst(b, 18, 9, 1.0)
	fconst(b, 19, 9, 0.0)
	// Preload the 3x3 kernel into f1..f9.
	for i := 0; i < 9; i++ {
		b.Fld(isa.Reg(1+i), 3, int64(8*i))
	}
	b.Li(6, int64(iters))
	b.Label("iter")
	b.Li(7, 1) // r
	b.Label("rloop")
	b.Bge(7, 5, "iend")
	b.Li(8, 1)     // c
	b.Mul(9, 7, 4) // r*dim
	b.Label("cloop")
	b.Bge(8, 5, "rnext")
	b.Add(10, 9, 8)
	b.Slli(10, 10, 3)
	b.Add(11, 1, 10) // &src[r*dim+c]
	b.Sub(12, 11, 15)
	b.Addi(12, 12, -8) // &src[(r-1)*dim + c-1]
	b.Fmul(10, 19, 18) // acc = 0
	for kr := 0; kr < 3; kr++ {
		for kc := 0; kc < 3; kc++ {
			b.Fld(11, 12, int64(8*kc))
			b.Fmul(11, 11, isa.Reg(1+kr*3+kc))
			b.Fadd(10, 10, 11)
		}
		if kr < 2 {
			b.Add(12, 12, 15) // next source row
		}
	}
	b.Add(13, 2, 10) // &dst[r*dim+c] (x10 holds the byte offset)
	b.Fsd(10, 13, 0)
	b.Addi(8, 8, 1)
	b.Jmp("cloop")
	b.Label("rnext")
	b.Addi(7, 7, 1)
	b.Jmp("rloop")
	b.Label("iend")
	b.Mv(14, 1)
	b.Mv(1, 2)
	b.Mv(2, 14)
	b.Addi(6, 6, -1)
	b.Bnez(6, "iter")
	// Reduce interior of src (x1).
	b.Fmul(10, 19, 18)
	b.Li(7, 1)
	b.Label("sr")
	b.Bge(7, 5, "done")
	b.Li(8, 1)
	b.Mul(9, 7, 4)
	b.Label("sc")
	b.Bge(8, 5, "srnext")
	b.Add(10, 9, 8)
	b.Slli(10, 10, 3)
	b.Add(11, 1, 10)
	b.Fld(11, 11, 0)
	b.Fadd(10, 10, 11)
	b.Addi(8, 8, 1)
	b.Jmp("sc")
	b.Label("srnext")
	b.Addi(7, 7, 1)
	b.Jmp("sr")
	b.Label("done")
	b.Fmvxd(ResultReg, 10)
	b.Halt()

	return Kernel{Name: "conv2d", FP: true, Prog: b.MustBuild(), Expected: expected}
}
