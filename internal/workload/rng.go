package workload

// RNG is a xorshift64* pseudo-random generator. Kernels use it to build
// deterministic data segments, so the same kernel name and scale always
// produce bit-identical programs and data (reproducible experiments).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Next returns the next 64-bit pseudo-random value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
