package workload

import (
	"testing"

	"carf/internal/vm"
)

// TestBudgetMatchesFunctionalRun: the memoized budget equals a direct
// functional execution's dynamic instruction count, scales with the
// workload scale, and repeated calls are stable.
func TestBudgetMatchesFunctionalRun(t *testing.T) {
	k, err := ByName("crc64", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	n := Budget(k, 0.25)
	if n == 0 {
		t.Fatal("budget 0 for a well-formed kernel")
	}
	if again := Budget(k, 0.25); again != n {
		t.Errorf("memoized budget changed: %d then %d", n, again)
	}

	big, err := ByName("crc64", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if nb := Budget(big, 1.0); nb <= n {
		t.Errorf("full-scale budget %d not above quarter-scale %d", nb, n)
	}
}

// TestBudgetUnknownOnBrokenProgram: a program that fails functionally
// reports budget 0, never an error — progress is advisory.
func TestBudgetUnknownOnBrokenProgram(t *testing.T) {
	k, err := ByName("qsort", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	broken := k
	broken.Name = "broken-for-budget-test"
	broken.Prog = &vm.Program{Name: "broken-for-budget-test"}
	if n := Budget(broken, 0.25); n != 0 {
		t.Errorf("broken program budget = %d, want 0", n)
	}
}
