package workload

import (
	"sync"

	"carf/internal/vm"
)

// budgetMemo caches dynamic-instruction budgets per (kernel, scale):
// kernels are deterministic, so one functional execution pins the count
// for every later run at the same scale. The map is tiny (kernels ×
// distinct scales) and lives for the process.
var (
	budgetMu   sync.Mutex
	budgetMemo = map[budgetKey]uint64{}
)

type budgetKey struct {
	name  string
	scale float64
}

// Budget returns kernel k's dynamic-instruction count at the given
// scale — the denominator for progress percentages and ETA estimates.
// The first call per (kernel, scale) executes the program functionally
// on the vm golden model (a few milliseconds, far below one pipeline
// simulation); later calls are a map lookup. A kernel that fails to
// execute reports budget 0 ("unknown"), never an error: progress
// reporting is advisory and must not fail a run.
func Budget(k Kernel, scale float64) uint64 {
	key := budgetKey{k.Name, scale}
	budgetMu.Lock()
	if n, ok := budgetMemo[key]; ok {
		budgetMu.Unlock()
		return n
	}
	budgetMu.Unlock()

	// Execute outside the lock: two racing callers both simulate, both
	// store the same deterministic count.
	n, err := vm.New(k.Prog).Run(0)
	if err != nil {
		return 0
	}
	budgetMu.Lock()
	budgetMemo[key] = n
	budgetMu.Unlock()
	return n
}
