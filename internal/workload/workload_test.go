package workload

import (
	"testing"

	"carf/internal/isa"
	"carf/internal/vm"
)

// TestKernelsComputeExpected is the correctness backbone of the whole
// repository: every kernel, run on the architectural golden model, must
// deposit its precomputed checksum in x28. A failure here means the
// builder, the VM semantics, or a kernel's Go replica disagree.
func TestKernelsComputeExpected(t *testing.T) {
	for _, k := range AllKernels(0.25) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			m := vm.New(k.Prog)
			n, err := m.Run(100_000_000)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if !m.Halted {
				t.Fatalf("%s: did not halt after %d instructions", k.Name, n)
			}
			if got := m.X[ResultReg]; got != k.Expected {
				t.Errorf("%s: x28 = %#x, want %#x", k.Name, got, k.Expected)
			}
		})
	}
}

// TestKernelSizes reports and sanity-bounds dynamic instruction counts at
// scale 1.0: each kernel must be substantial (>50k) but tractable (<5M).
func TestKernelSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale kernels are slow in -short mode")
	}
	for _, k := range AllKernels(1.0) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			m := vm.New(k.Prog)
			n, err := m.Run(20_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Halted {
				t.Fatalf("did not halt after %d instructions", n)
			}
			if got := m.X[ResultReg]; got != k.Expected {
				t.Errorf("x28 = %#x, want %#x", got, k.Expected)
			}
			if n < 50_000 || n > 5_000_000 {
				t.Errorf("dynamic instruction count %d outside [50k, 5M]", n)
			}
			t.Logf("%s: %d dynamic instructions, %d static", k.Name, n, len(k.Prog.Code))
		})
	}
}

func TestSuites(t *testing.T) {
	ints := IntSuite(0.05)
	fps := FPSuite(0.05)
	if len(ints) != 14 {
		t.Errorf("int suite has %d kernels, want 14", len(ints))
	}
	if len(fps) != 8 {
		t.Errorf("fp suite has %d kernels, want 8", len(fps))
	}
	for _, k := range ints {
		if k.FP {
			t.Errorf("%s marked FP in int suite", k.Name)
		}
	}
	for _, k := range fps {
		if !k.FP {
			t.Errorf("%s not marked FP in fp suite", k.Name)
		}
	}
	if got := len(Names()); got != 22 {
		t.Errorf("Names() returned %d, want 22", got)
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("crc64", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "crc64" {
		t.Errorf("got kernel %q", k.Name)
	}
	if _, err := ByName("nosuch", 1); err == nil {
		t.Error("expected error for unknown kernel")
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a, _ := ByName("hashprobe", 0.1)
	b, _ := ByName("hashprobe", 0.1)
	if a.Expected != b.Expected {
		t.Error("same kernel built twice differs")
	}
	if len(a.Prog.Code) != len(b.Prog.Code) {
		t.Error("code length differs between builds")
	}
}

func TestBuilderLabelErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("undefined label should fail Build")
	}

	b2 := NewBuilder("dup")
	b2.Label("x")
	b2.Label("x")
	b2.Halt()
	if _, err := b2.Build(); err == nil {
		t.Error("duplicate label should fail Build")
	}
}

func TestBuilderRejectsX0Dest(t *testing.T) {
	b := NewBuilder("x0")
	b.Add(isa.Zero, 1, 2)
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("ALU write to x0 should fail Build")
	}
}

func TestBuilderBranchResolution(t *testing.T) {
	b := NewBuilder("br")
	b.Li(1, 3)
	b.Label("loop")
	b.Addi(1, 1, -1)
	b.Bnez(1, "loop")
	b.Mv(ResultReg, 1)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.X[ResultReg] != 0 {
		t.Errorf("countdown ended at %d", m.X[ResultReg])
	}
}

func TestBuilderJumpTable(t *testing.T) {
	b := NewBuilder("jt")
	tbl := uint64(GlobalBase)
	b.WordsLabels(tbl, []string{"ha", "hb"})
	b.La(1, tbl)
	b.Ld(2, 1, 8) // address of hb
	b.Jr(2)
	b.Label("ha")
	b.Li(ResultReg, 1)
	b.Halt()
	b.Label("hb")
	b.Li(ResultReg, 2)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.X[ResultReg] != 2 {
		t.Errorf("jump table landed at %d, want handler 2", m.X[ResultReg])
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(0).Next() == 0 {
		t.Error("zero seed should be remapped")
	}
	f := NewRNG(9).Float64()
	if f < 0 || f >= 1 {
		t.Errorf("Float64 out of range: %v", f)
	}
}

func TestMul128MatchesVM(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 1000; i++ {
		a, b := r.Next(), r.Next()
		hi, lo := mul128(a, b)
		if lo != a*b {
			t.Fatalf("lo mismatch for %#x * %#x", a, b)
		}
		// Cross-check hi against the VM's MULHU path.
		k := HashProbe // silence unused warnings in some configs
		_ = k
		hi2 := mulhuRef(a, b)
		if hi != hi2 {
			t.Fatalf("hi mismatch for %#x * %#x: %#x vs %#x", a, b, hi, hi2)
		}
	}
}

// mulhuRef computes the high 64 bits of the product by splitting into
// 32-bit halves (independent re-derivation for the test).
func mulhuRef(a, b uint64) uint64 {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := ah*bl + (al*bl)>>32
	return ah*bh + t>>32 + (al*bh+t&mask)>>32
}
