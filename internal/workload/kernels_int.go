package workload

import (
	"sort"

	"carf/internal/isa"
	"carf/internal/vm"
)

// Kernel is one benchmark program plus the architecturally-expected
// result: when the program halts, integer register x28 must hold
// Expected. Tests and the simulator's self-check use this to verify that
// functional execution (and therefore every timing experiment built on
// it) computed the right answer.
type Kernel struct {
	Name     string
	FP       bool // member of the floating-point suite
	Prog     *vm.Program
	Expected uint64
}

// ResultReg is the register kernels leave their checksum in.
const ResultReg = isa.Reg(28)

const hashConst uint64 = 0x9E3779B97F4A7C15

// asI64 reinterprets a uint64 bit pattern as int64 at runtime (a direct
// constant conversion would not compile for values above MaxInt64).
func asI64(u uint64) int64 { return int64(u) }

// mixedValue produces a data value from the two populations common in
// integer codes: small constants (25%) and 32-bit quantities.
func mixedValue(rng *RNG) uint64 {
	v := rng.Next()
	if v%4 == 0 {
		return v >> 48 // 16-bit
	}
	return v >> 32 // 32-bit
}

// Quicksort sorts n mixed-magnitude keys with an iterative Lomuto
// quicksort using an explicit stack, then reports sum(i*a[i]) over the
// sorted array. Models the compare/swap/pointer behaviour of sorting
// inner loops.
func Quicksort(n int) Kernel {
	rng := NewRNG(101)
	arr := make([]uint64, n)
	for i := range arr {
		arr[i] = mixedValue(rng)
	}

	sorted := append([]uint64(nil), arr...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var expected uint64
	for i, v := range sorted {
		expected += uint64(i) * v
	}

	b := NewBuilder("qsort")
	b.Words(HeapBase, arr)
	b.La(1, HeapBase)
	b.Li(13, StackBase) // empty-stack sentinel
	// push (0, n-1)
	b.Addi(SP, SP, -16)
	b.St(isa.Zero, SP, 0)
	b.Li(14, int64(n-1))
	b.St(14, SP, 8)
	b.Label("main")
	b.Beq(SP, 13, "check")
	b.Ld(3, SP, 0) // lo
	b.Ld(4, SP, 8) // hi
	b.Addi(SP, SP, 16)
	b.Bge(3, 4, "main")
	// Partition: pivot = arr[hi].
	b.Slli(5, 4, 3)
	b.Add(5, 1, 5)
	b.Ld(6, 5, 0)
	b.Addi(7, 3, -1) // i
	b.Mv(8, 3)       // j
	b.Label("ploop")
	b.Bge(8, 4, "pdone")
	b.Slli(9, 8, 3)
	b.Add(9, 1, 9)
	b.Ld(10, 9, 0)
	b.Blt(6, 10, "pskip") // pivot < a[j]
	b.Addi(7, 7, 1)
	b.Slli(11, 7, 3)
	b.Add(11, 1, 11)
	b.Ld(12, 11, 0)
	b.St(10, 11, 0)
	b.St(12, 9, 0)
	b.Label("pskip")
	b.Addi(8, 8, 1)
	b.Jmp("ploop")
	b.Label("pdone")
	b.Addi(7, 7, 1) // p
	b.Slli(11, 7, 3)
	b.Add(11, 1, 11)
	b.Ld(12, 11, 0)
	b.Ld(10, 5, 0)
	b.St(10, 11, 0)
	b.St(12, 5, 0)
	// push (lo, p-1) and (p+1, hi)
	b.Addi(SP, SP, -16)
	b.St(3, SP, 0)
	b.Addi(14, 7, -1)
	b.St(14, SP, 8)
	b.Addi(SP, SP, -16)
	b.Addi(14, 7, 1)
	b.St(14, SP, 0)
	b.St(4, SP, 8)
	b.Jmp("main")
	// Checksum pass.
	b.Label("check")
	b.Li(20, 0)
	b.Li(21, 0)
	b.Li(22, int64(n))
	b.Label("chk")
	b.Bge(21, 22, "done")
	b.Slli(9, 21, 3)
	b.Add(9, 1, 9)
	b.Ld(10, 9, 0)
	b.Mul(11, 21, 10)
	b.Add(20, 20, 11)
	b.Addi(21, 21, 1)
	b.Jmp("chk")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "qsort", Prog: b.MustBuild(), Expected: expected}
}

// ListChase walks a randomly-permuted linked list for steps hops,
// folding each node's key into a running sum and writing the mutated key
// back. Models pointer-chasing codes (mcf, linked data structures):
// nearly every live value is a heap address or a small key.
func ListChase(n, steps int) Kernel {
	const nodeSize = 32
	rng := NewRNG(202)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Next() >> 48
	}
	// Node image: next pointer and key per node.
	words := make([]uint64, 4*n)
	for i := 0; i < n; i++ {
		from, to := perm[i], perm[(i+1)%n]
		words[4*from] = HeapBase + uint64(to*nodeSize)
		words[4*from+1] = keys[from]
	}

	// Architectural replica.
	var sum uint64
	kcopy := append([]uint64(nil), keys...)
	cur := perm[0]
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[perm[i]] = perm[(i+1)%n]
	}
	for s := 0; s < steps; s++ {
		sum += kcopy[cur]
		kcopy[cur] = sum & 0xffff
		cur = next[cur]
	}

	b := NewBuilder("listchase")
	b.Words(HeapBase, words)
	b.La(1, HeapBase+uint64(perm[0]*nodeSize))
	b.Li(2, int64(steps))
	b.Li(20, 0)
	b.Label("loop")
	b.Ld(3, 1, 8)
	b.Add(20, 20, 3)
	b.Andi(4, 20, 0xffff)
	b.St(4, 1, 8)
	b.Ld(1, 1, 0)
	b.Addi(2, 2, -1)
	b.Bnez(2, "loop")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "listchase", Prog: b.MustBuild(), Expected: sum}
}

// HashProbe builds an open-addressing hash table from random 64-bit keys
// (multiplicative hashing, linear probing) and then sums the stored
// values over a lookup pass. The high-entropy keys and hash products are
// the canonical source of long values.
func HashProbe(nkeys, slots int) Kernel {
	rng := NewRNG(303)
	keys := make([]uint64, nkeys)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = rng.Next()
		}
	}
	mask := uint64(slots - 1)

	// Architectural replica.
	tkey := make([]uint64, slots)
	tval := make([]uint64, slots)
	hashHi := func(k uint64) uint64 {
		hi, _ := mul128(k, hashConst)
		return hi
	}
	for i, k := range keys {
		h := hashHi(k) & mask
		for {
			if tkey[h] == 0 {
				tkey[h], tval[h] = k, uint64(i)
				break
			}
			if tkey[h] == k {
				break
			}
			h = (h + 1) & mask
		}
	}
	var expected uint64
	for _, k := range keys {
		h := hashHi(k) & mask
		for {
			if tkey[h] == 0 {
				break
			}
			if tkey[h] == k {
				expected += tval[h]
				break
			}
			h = (h + 1) & mask
		}
	}

	b := NewBuilder("hashprobe")
	b.Words(GlobalBase, keys)
	b.La(1, GlobalBase)        // keys
	b.Li(3, int64(nkeys))      // count
	b.La(4, HeapBase)          // table
	b.Li(5, int64(mask))       // slot mask
	b.Li(12, asI64(hashConst)) // hash multiplier

	insert := func(valueFromIndex bool, doneLabel, prefix string) {
		// Shared probe structure for insert and lookup passes.
		b.Li(2, 0)
		b.Label(prefix + "loop")
		b.Bge(2, 3, doneLabel)
		b.Slli(6, 2, 3)
		b.Add(6, 1, 6)
		b.Ld(7, 6, 0) // key
		b.Mulhu(8, 7, 12)
		b.And(8, 8, 5)
		b.Label(prefix + "probe")
		b.Slli(9, 8, 4)
		b.Add(9, 4, 9)
		b.Ld(10, 9, 0)
		if valueFromIndex {
			b.Beqz(10, prefix+"insert")
			b.Beq(10, 7, prefix+"next")
		} else {
			b.Beqz(10, prefix+"next")
			b.Beq(10, 7, prefix+"hit")
		}
		b.Addi(8, 8, 1)
		b.And(8, 8, 5)
		b.Jmp(prefix + "probe")
		if valueFromIndex {
			b.Label(prefix + "insert")
			b.St(7, 9, 0)
			b.St(2, 9, 8)
		} else {
			b.Label(prefix + "hit")
			b.Ld(11, 9, 8)
			b.Add(20, 20, 11)
		}
		b.Label(prefix + "next")
		b.Addi(2, 2, 1)
		b.Jmp(prefix + "loop")
	}

	insert(true, "lookups", "i")
	b.Label("lookups")
	b.Li(20, 0)
	insert(false, "fin", "l")
	b.Label("fin")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "hashprobe", Prog: b.MustBuild(), Expected: expected}
}

// StringSearch counts occurrences of a pattern in a biased random text
// with the naive algorithm. Byte loads and tiny loop indices make most
// live values simple.
func StringSearch(textLen, patLen int) Kernel {
	rng := NewRNG(404)
	text := make([]byte, textLen)
	for i := range text {
		text[i] = byte('a' + rng.Intn(4))
	}
	patStart := textLen / 3
	pat := append([]byte(nil), text[patStart:patStart+patLen]...)

	var expected uint64
	for i := 0; i+patLen <= textLen; i++ {
		match := true
		for j := 0; j < patLen; j++ {
			if text[i+j] != pat[j] {
				match = false
				break
			}
		}
		if match {
			expected++
		}
	}

	patBase := GlobalBase + uint64(textLen+64)
	b := NewBuilder("strsearch")
	b.Data(GlobalBase, text)
	b.Data(patBase, pat)
	b.La(1, GlobalBase)
	b.La(2, patBase)
	b.Li(3, int64(textLen-patLen)) // last start
	b.Li(6, int64(patLen))
	b.Li(4, 0)  // i
	b.Li(20, 0) // count
	b.Label("outer")
	b.Blt(3, 4, "done")
	b.Li(5, 0) // j
	b.Label("inner")
	b.Bge(5, 6, "match")
	b.Add(7, 1, 4)
	b.Add(7, 7, 5)
	b.Lbu(8, 7, 0)
	b.Add(9, 2, 5)
	b.Lbu(10, 9, 0)
	b.Bne(8, 10, "nomatch")
	b.Addi(5, 5, 1)
	b.Jmp("inner")
	b.Label("match")
	b.Addi(20, 20, 1)
	b.Label("nomatch")
	b.Addi(4, 4, 1)
	b.Jmp("outer")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "strsearch", Prog: b.MustBuild(), Expected: expected}
}

// RLE run-length encodes a bursty byte buffer, decodes it back, and
// reports a polynomial checksum of the decoded bytes (which must equal a
// checksum of the input). Models byte-oriented compression loops.
func RLE(length int) Kernel {
	rng := NewRNG(505)
	in := make([]byte, 0, length)
	for len(in) < length {
		v := byte(rng.Intn(8))
		run := 1 + rng.Intn(8)
		for r := 0; r < run && len(in) < length; r++ {
			in = append(in, v)
		}
	}

	var expected uint64
	for _, c := range in {
		expected = expected*31 + uint64(c)
	}

	encBase := HeapBase + uint64(4*length)
	decBase := encBase + uint64(4*length)
	b := NewBuilder("rle")
	b.Data(HeapBase, in)
	b.La(1, HeapBase)
	b.Li(2, int64(length))
	b.Li(3, 0)
	b.La(4, encBase)
	b.Li(11, 255)
	// Encode.
	b.Label("eloop")
	b.Bge(3, 2, "edone")
	b.Add(5, 1, 3)
	b.Lbu(6, 5, 0)
	b.Addi(7, isa.Zero, 1) // run = 1
	b.Label("erun")
	b.Add(8, 3, 7)
	b.Bge(8, 2, "estop")
	b.Add(9, 1, 8)
	b.Lbu(10, 9, 0)
	b.Bne(10, 6, "estop")
	b.Addi(7, 7, 1)
	b.Blt(7, 11, "erun")
	b.Label("estop")
	b.Sb(7, 4, 0)
	b.Sb(6, 4, 1)
	b.Addi(4, 4, 2)
	b.Add(3, 3, 7)
	b.Jmp("eloop")
	// Decode: enc stream is [encBase, x4).
	b.Label("edone")
	b.La(5, encBase)
	b.La(12, decBase)
	b.Label("dloop")
	b.Bge(5, 4, "ddone")
	b.Lbu(6, 5, 0)
	b.Lbu(7, 5, 1)
	b.Addi(5, 5, 2)
	b.Label("drun")
	b.Beqz(6, "dloop")
	b.Sb(7, 12, 0)
	b.Addi(12, 12, 1)
	b.Addi(6, 6, -1)
	b.Jmp("drun")
	// Checksum decoded bytes.
	b.Label("ddone")
	b.La(13, decBase)
	b.Li(20, 0)
	b.Label("csum")
	b.Bge(13, 12, "done")
	b.Lbu(6, 13, 0)
	b.Slli(7, 20, 5)
	b.Sub(7, 7, 20) // 31*cs
	b.Add(20, 7, 6)
	b.Addi(13, 13, 1)
	b.Jmp("csum")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "rle", Prog: b.MustBuild(), Expected: expected}
}

// crc64Table is the ECMA-182 CRC-64 table used by the CRC64 kernel.
func crc64Table() []uint64 {
	const poly = 0xC96C5795D7870F42
	tab := make([]uint64, 256)
	for i := range tab {
		crc := uint64(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		tab[i] = crc
	}
	return tab
}

// CRC64 computes a table-driven CRC-64 over a random buffer for several
// passes. The rolling CRC register is a continuously-changing
// high-entropy value: the archetypal long value.
func CRC64(length, passes int) Kernel {
	rng := NewRNG(606)
	data := make([]byte, length)
	for i := range data {
		data[i] = byte(rng.Next())
	}
	tab := crc64Table()

	crc := ^uint64(0)
	for p := 0; p < passes; p++ {
		for _, c := range data {
			crc = tab[byte(crc)^c] ^ crc>>8
		}
	}

	b := NewBuilder("crc64")
	b.Data(HeapBase, data)
	b.Words(GlobalBase, tab)
	b.La(1, HeapBase)
	b.Li(2, int64(length))
	b.La(3, GlobalBase)
	b.Li(20, -1) // crc
	b.Li(4, int64(passes))
	b.Label("pass")
	b.Li(5, 0)
	b.Label("byte")
	b.Bge(5, 2, "pend")
	b.Add(6, 1, 5)
	b.Lbu(7, 6, 0)
	b.Xor(8, 20, 7)
	b.Andi(8, 8, 0xff)
	b.Slli(8, 8, 3)
	b.Add(8, 3, 8)
	b.Ld(9, 8, 0)
	b.Srli(10, 20, 8)
	b.Xor(20, 9, 10)
	b.Addi(5, 5, 1)
	b.Jmp("byte")
	b.Label("pend")
	b.Addi(4, 4, -1)
	b.Bnez(4, "pass")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "crc64", Prog: b.MustBuild(), Expected: crc}
}

// TreeInsert builds a binary search tree from random keys with a bump
// allocator, then re-searches every key accumulating the total search
// depth. Models allocation-heavy pointer codes (compilers, interpreters).
func TreeInsert(n int) Kernel {
	const nodeSize = 32
	rng := NewRNG(707)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Next() >> 32
	}

	// Architectural replica with indices as pointers.
	type node struct {
		key         uint64
		left, right int
	}
	nodes := make([]node, 0, n)
	root := -1
	insert := func(k uint64) {
		if root == -1 {
			nodes = append(nodes, node{key: k, left: -1, right: -1})
			root = 0
			return
		}
		cur := root
		for {
			c := &nodes[cur]
			if k == c.key {
				return
			}
			if k < c.key {
				if c.left == -1 {
					nodes = append(nodes, node{key: k, left: -1, right: -1})
					c.left = len(nodes) - 1
					return
				}
				cur = c.left
			} else {
				if c.right == -1 {
					nodes = append(nodes, node{key: k, left: -1, right: -1})
					c.right = len(nodes) - 1
					return
				}
				cur = c.right
			}
		}
	}
	for _, k := range keys {
		insert(k)
	}
	var expected uint64
	for _, k := range keys {
		cur, depth := root, uint64(0)
		for cur != -1 {
			depth++
			c := nodes[cur]
			if k == c.key {
				expected += depth
				break
			}
			if k < c.key {
				cur = c.left
			} else {
				cur = c.right
			}
		}
	}

	b := NewBuilder("treeinsert")
	b.Words(GlobalBase, keys)
	b.La(1, HeapBase) // bump pointer
	b.Li(2, 0)        // root (0 = nil)
	b.La(10, GlobalBase)
	b.Li(3, 0)        // i
	b.Li(4, int64(n)) // n
	b.Label("iloop")
	b.Bge(3, 4, "search")
	b.Slli(5, 3, 3)
	b.Add(5, 10, 5)
	b.Ld(5, 5, 0) // key
	b.St(5, 1, 0) // prepare node at bump ptr
	b.Bnez(2, "walk")
	b.Mv(2, 1) // first node becomes root
	b.Jmp("bump")
	b.Label("walk")
	b.Mv(6, 2) // cur = root
	b.Label("wloop")
	b.Ld(7, 6, 0)
	b.Beq(5, 7, "inext") // duplicate: drop (node slot reused)
	b.Bltu(5, 7, "goleft")
	b.Ld(8, 6, 16)
	b.Beqz(8, "aright")
	b.Mv(6, 8)
	b.Jmp("wloop")
	b.Label("goleft")
	b.Ld(8, 6, 8)
	b.Beqz(8, "aleft")
	b.Mv(6, 8)
	b.Jmp("wloop")
	b.Label("aleft")
	b.St(1, 6, 8)
	b.Jmp("bump")
	b.Label("aright")
	b.St(1, 6, 16)
	b.Label("bump")
	b.Addi(1, 1, nodeSize)
	b.Label("inext")
	b.Addi(3, 3, 1)
	b.Jmp("iloop")
	// Search pass.
	b.Label("search")
	b.Li(20, 0)
	b.Li(3, 0)
	b.Label("sloop")
	b.Bge(3, 4, "done")
	b.Slli(5, 3, 3)
	b.Add(5, 10, 5)
	b.Ld(5, 5, 0)
	b.Mv(6, 2)
	b.Label("swalk")
	b.Beqz(6, "snext")
	b.Addi(20, 20, 1)
	b.Ld(7, 6, 0)
	b.Beq(5, 7, "snext")
	b.Bltu(5, 7, "sleft")
	b.Ld(6, 6, 16)
	b.Jmp("swalk")
	b.Label("sleft")
	b.Ld(6, 6, 8)
	b.Jmp("swalk")
	b.Label("snext")
	b.Addi(3, 3, 1)
	b.Jmp("sloop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "treeinsert", Prog: b.MustBuild(), Expected: expected}
}

// BFS runs breadth-first search over a random graph in CSR form with an
// explicit queue, then sums the (distance+1) labels. Models irregular
// graph traversal with data-dependent loads.
func BFS(n, degree int) Kernel {
	rng := NewRNG(808)
	row := make([]uint64, n+1)
	var edges []uint64
	for u := 0; u < n; u++ {
		row[u] = uint64(len(edges))
		for d := 0; d < degree; d++ {
			edges = append(edges, uint64(rng.Intn(n)))
		}
	}
	row[n] = uint64(len(edges))

	// Architectural replica: dist holds distance+1, 0 = unvisited.
	dist := make([]uint64, n)
	queue := make([]int, 0, n)
	dist[0] = 1
	queue = append(queue, 0)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for e := row[u]; e < row[u+1]; e++ {
			v := edges[e]
			if dist[v] == 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	var expected uint64
	for _, d := range dist {
		expected += d
	}

	edgeBase := GlobalBase + uint64(8*(n+1))
	distBase := uint64(HeapBase)
	queueBase := HeapBase + uint64(8*n) + 4096
	b := NewBuilder("bfs")
	b.Words(GlobalBase, row)
	b.Words(edgeBase, edges)
	b.La(1, GlobalBase) // rowstart
	b.La(2, edgeBase)   // edges
	b.La(3, distBase)   // dist
	b.La(4, queueBase)  // queue
	b.Li(5, 0)          // head
	b.Li(6, 0)          // tail
	// push source 0 with dist 1
	b.Addi(9, isa.Zero, 1)
	b.St(9, 3, 0)
	b.St(isa.Zero, 4, 0)
	b.Addi(6, 6, 1)
	b.Label("loop")
	b.Beq(5, 6, "sum")
	b.Slli(7, 5, 3)
	b.Add(7, 4, 7)
	b.Ld(8, 7, 0) // u
	b.Addi(5, 5, 1)
	b.Slli(9, 8, 3)
	b.Add(9, 3, 9)
	b.Ld(10, 9, 0) // dist[u]
	b.Slli(11, 8, 3)
	b.Add(11, 1, 11)
	b.Ld(12, 11, 0) // rowstart[u]
	b.Ld(13, 11, 8) // rowstart[u+1]
	b.Label("eloop")
	b.Bge(12, 13, "loop")
	b.Slli(14, 12, 3)
	b.Add(14, 2, 14)
	b.Ld(15, 14, 0) // v
	b.Slli(16, 15, 3)
	b.Add(16, 3, 16)
	b.Ld(17, 16, 0)
	b.Bnez(17, "skip")
	b.Addi(18, 10, 1)
	b.St(18, 16, 0)
	b.Slli(19, 6, 3)
	b.Add(19, 4, 19)
	b.St(15, 19, 0)
	b.Addi(6, 6, 1)
	b.Label("skip")
	b.Addi(12, 12, 1)
	b.Jmp("eloop")
	// Sum distance labels.
	b.Label("sum")
	b.Li(20, 0)
	b.Li(7, 0)
	b.Li(8, int64(n))
	b.Label("sloop")
	b.Bge(7, 8, "done")
	b.Slli(9, 7, 3)
	b.Add(9, 3, 9)
	b.Ld(10, 9, 0)
	b.Add(20, 20, 10)
	b.Addi(7, 7, 1)
	b.Jmp("sloop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "bfs", Prog: b.MustBuild(), Expected: expected}
}

// Histogram counts byte frequencies over a random buffer and reports a
// weighted sum. Models table-update loops with read-modify-write
// dependences through memory.
func Histogram(length int) Kernel {
	rng := NewRNG(909)
	data := make([]byte, length)
	for i := range data {
		// Skewed distribution: low bytes dominate.
		v := rng.Next()
		data[i] = byte(v % 61 * uint64(v>>60) % 256)
	}

	hist := make([]uint64, 256)
	for _, c := range data {
		hist[c]++
	}
	var expected uint64
	for v, c := range hist {
		expected += uint64(v) * c
	}

	b := NewBuilder("histo")
	b.Data(HeapBase, data)
	b.La(1, HeapBase)
	b.Li(2, int64(length))
	b.La(3, GlobalBase) // hist[256]
	b.Li(4, 0)
	b.Label("loop")
	b.Bge(4, 2, "scan")
	b.Add(5, 1, 4)
	b.Lbu(6, 5, 0)
	b.Slli(7, 6, 3)
	b.Add(7, 3, 7)
	b.Ld(8, 7, 0)
	b.Addi(8, 8, 1)
	b.St(8, 7, 0)
	b.Addi(4, 4, 1)
	b.Jmp("loop")
	b.Label("scan")
	b.Li(20, 0)
	b.Li(4, 0)
	b.Li(9, 256)
	b.Label("sloop")
	b.Bge(4, 9, "done")
	b.Slli(7, 4, 3)
	b.Add(7, 3, 7)
	b.Ld(8, 7, 0)
	b.Mul(10, 4, 8)
	b.Add(20, 20, 10)
	b.Addi(4, 4, 1)
	b.Jmp("sloop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "histo", Prog: b.MustBuild(), Expected: expected}
}

// VMLoop interprets a random bytecode stream through a computed jump
// table (indirect jumps), updating a two-register virtual machine and a
// small data heap. Models interpreter dispatch loops (perl/gcc-style
// indirect control flow).
func VMLoop(codeLen, steps int) Kernel {
	rng := NewRNG(1010)
	bytecode := make([]byte, codeLen)
	for i := range bytecode {
		bytecode[i] = byte(rng.Intn(8))
	}
	const dataWords = 512 // 4KB scratch
	const dataMask = dataWords*8 - 8
	scratch := make([]uint64, dataWords)
	for i := range scratch {
		scratch[i] = rng.Next()
	}

	// Architectural replica.
	mem := append([]uint64(nil), scratch...)
	var acc, reg uint64
	ip := 0
	for s := 0; s < steps; s++ {
		op := bytecode[ip]
		ip++
		if ip >= codeLen {
			ip = 0
		}
		switch op {
		case 0:
			acc += uint64(ip)
		case 1:
			acc ^= reg
		case 2:
			reg = acc >> 3
		case 3:
			acc += mem[(acc&dataMask)/8]
		case 4:
			reg += 7
		case 5:
			acc = acc*5 + reg
		case 6:
			mem[(reg&dataMask)/8] = acc
		case 7:
			acc -= reg
		}
	}
	expected := acc ^ reg

	tableBase := uint64(GlobalBase) + 0x10000
	b := NewBuilder("vmloop")
	b.Data(GlobalBase, bytecode)
	b.Words(HeapBase, scratch)
	b.WordsLabels(tableBase, []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"})
	b.La(1, GlobalBase) // bytecode
	b.Li(2, int64(codeLen))
	b.La(3, tableBase)
	b.Li(4, int64(steps))
	b.La(9, HeapBase)  // scratch
	b.Li(10, dataMask) // address mask
	b.Li(20, 0)        // acc
	b.Li(21, 0)        // reg
	b.Li(22, 0)        // ip
	b.Label("dispatch")
	b.Beqz(4, "done")
	b.Addi(4, 4, -1)
	b.Add(5, 1, 22)
	b.Lbu(6, 5, 0)
	b.Addi(22, 22, 1)
	b.Blt(22, 2, "nowrap")
	b.Li(22, 0)
	b.Label("nowrap")
	b.Slli(7, 6, 3)
	b.Add(7, 3, 7)
	b.Ld(8, 7, 0)
	b.Jr(8)
	b.Label("h0")
	b.Add(20, 20, 22)
	b.Jmp("dispatch")
	b.Label("h1")
	b.Xor(20, 20, 21)
	b.Jmp("dispatch")
	b.Label("h2")
	b.Srli(21, 20, 3)
	b.Jmp("dispatch")
	b.Label("h3")
	b.And(11, 20, 10)
	b.Add(11, 9, 11)
	b.Ld(12, 11, 0)
	b.Add(20, 20, 12)
	b.Jmp("dispatch")
	b.Label("h4")
	b.Addi(21, 21, 7)
	b.Jmp("dispatch")
	b.Label("h5")
	b.Slli(11, 20, 2)
	b.Add(11, 11, 20) // acc*5
	b.Add(20, 11, 21)
	b.Jmp("dispatch")
	b.Label("h6")
	b.And(11, 21, 10)
	b.Add(11, 9, 11)
	b.St(20, 11, 0)
	b.Jmp("dispatch")
	b.Label("h7")
	b.Sub(20, 20, 21)
	b.Jmp("dispatch")
	b.Label("done")
	b.Xor(ResultReg, 20, 21)
	b.Halt()

	return Kernel{Name: "vmloop", Prog: b.MustBuild(), Expected: expected}
}

// mul128 returns the 128-bit product (hi, lo) of a and b, mirroring the
// MULHU semantics in the VM.
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	lo = a * b
	t := ah*bl + (al*bl)>>32
	hi = ah*bh + t>>32 + (al*bh+t&mask)>>32
	return hi, lo
}
