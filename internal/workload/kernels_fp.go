package workload

import (
	"math"

	"carf/internal/isa"
)

// Floating-point kernels. The integer register file in these codes — the
// one the paper's mechanism reorganizes — mostly carries array addresses
// and induction variables, which is why the paper reports near-zero FP
// IPC loss. Every kernel's Go replica mirrors the assembly's operation
// order exactly so the IEEE-754 result matches bit for bit.

func fbits(f float64) uint64 { return math.Float64bits(f) }

// fconst materializes a float64 constant into FP register fd using an
// integer LIMM of its bit pattern plus an FMVDX, via integer scratch t.
func fconst(b *Builder, fd isa.Reg, t isa.Reg, v float64) {
	b.Li(t, int64(fbits(v)))
	b.Fmvdx(fd, t)
}

// Saxpy computes y += a*x over n elements for iters passes and reports
// the bit pattern of sum(y).
func Saxpy(n, iters int) Kernel {
	rng := NewRNG(1111)
	xv := make([]float64, n)
	yv := make([]float64, n)
	for i := range xv {
		xv[i] = rng.Float64()
		yv[i] = rng.Float64()
	}
	const a = 1.000244140625

	yr := append([]float64(nil), yv...)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			yr[i] = yr[i] + a*xv[i]
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += yr[i]
	}
	expected := fbits(sum)

	xBase := uint64(HeapBase)
	yBase := HeapBase + uint64(8*n)
	b := NewBuilder("saxpy")
	b.Words(xBase, floatBits(xv))
	b.Words(yBase, floatBits(yv))
	b.La(1, xBase)
	b.La(2, yBase)
	b.Li(3, int64(n))
	fconst(b, 1, 9, a)
	b.Li(4, int64(iters))
	b.Label("iter")
	b.Li(5, 0)
	b.Label("loop")
	b.Bge(5, 3, "iend")
	b.Slli(6, 5, 3)
	b.Add(7, 1, 6)
	b.Fld(2, 7, 0)
	b.Add(8, 2, 6)
	b.Fld(3, 8, 0)
	b.Fmadd(3, 1, 2) // y += a*x
	b.Fsd(3, 8, 0)
	b.Addi(5, 5, 1)
	b.Jmp("loop")
	b.Label("iend")
	b.Addi(4, 4, -1)
	b.Bnez(4, "iter")
	// Reduce.
	fconst(b, 10, 9, 0)
	b.Li(5, 0)
	b.Label("red")
	b.Bge(5, 3, "done")
	b.Slli(6, 5, 3)
	b.Add(8, 2, 6)
	b.Fld(3, 8, 0)
	b.Fadd(10, 10, 3)
	b.Addi(5, 5, 1)
	b.Jmp("red")
	b.Label("done")
	b.Fmvxd(ResultReg, 10)
	b.Halt()

	return Kernel{Name: "saxpy", FP: true, Prog: b.MustBuild(), Expected: expected}
}

// Stencil applies a 3-point smoothing stencil (ping-pong buffers) and
// reports the bit pattern of the final buffer's sum.
func Stencil(n, iters int) Kernel {
	rng := NewRNG(1212)
	av := make([]float64, n)
	for i := range av {
		av[i] = rng.Float64() * 100
	}

	src := append([]float64(nil), av...)
	dst := make([]float64, n)
	dst[0], dst[n-1] = src[0], src[n-1]
	for it := 0; it < iters; it++ {
		for i := 1; i < n-1; i++ {
			dst[i] = (src[i-1]+src[i+1])*0.25 + src[i]*0.5
		}
		dst[0], dst[n-1] = src[0], src[n-1]
		src, dst = dst, src
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += src[i]
	}
	expected := fbits(sum)

	aBase := uint64(HeapBase)
	bBase := HeapBase + uint64(8*n)
	b := NewBuilder("stencil")
	b.Words(aBase, floatBits(av))
	// Seed the boundary cells of the second buffer.
	b.Words(bBase, []uint64{fbits(av[0])})
	b.Words(bBase+uint64(8*(n-1)), []uint64{fbits(av[n-1])})
	b.La(1, aBase) // src
	b.La(2, bBase) // dst
	b.Li(3, int64(n))
	fconst(b, 8, 9, 0.25)
	fconst(b, 9, 9, 0.5)
	b.Li(4, int64(iters))
	b.Label("iter")
	b.Li(5, 1)
	b.Addi(6, 3, -1) // n-1
	b.Label("loop")
	b.Bge(5, 6, "iend")
	b.Slli(7, 5, 3)
	b.Add(10, 1, 7)
	b.Fld(1, 10, -8)
	b.Fld(2, 10, 8)
	b.Fld(3, 10, 0)
	b.Fadd(4, 1, 2)
	b.Fmul(4, 4, 8)
	b.Fmul(5, 3, 9)
	b.Fadd(4, 4, 5)
	b.Add(11, 2, 7)
	b.Fsd(4, 11, 0)
	b.Addi(5, 5, 1)
	b.Jmp("loop")
	b.Label("iend")
	// Swap buffers.
	b.Mv(12, 1)
	b.Mv(1, 2)
	b.Mv(2, 12)
	b.Addi(4, 4, -1)
	b.Bnez(4, "iter")
	// Reduce over src (x1).
	fconst(b, 10, 9, 0)
	b.Li(5, 0)
	b.Label("red")
	b.Bge(5, 3, "done")
	b.Slli(7, 5, 3)
	b.Add(11, 1, 7)
	b.Fld(3, 11, 0)
	b.Fadd(10, 10, 3)
	b.Addi(5, 5, 1)
	b.Jmp("red")
	b.Label("done")
	b.Fmvxd(ResultReg, 10)
	b.Halt()

	return Kernel{Name: "stencil", FP: true, Prog: b.MustBuild(), Expected: expected}
}

// NBody integrates a small 2-D gravitational system with an O(n²) force
// loop (sqrt and divide per pair) and reports the bit pattern of the
// final x-position sum.
func NBody(n, steps int) Kernel {
	rng := NewRNG(1313)
	px := make([]float64, n)
	py := make([]float64, n)
	vx := make([]float64, n)
	vy := make([]float64, n)
	for i := 0; i < n; i++ {
		px[i] = rng.Float64()*10 - 5
		py[i] = rng.Float64()*10 - 5
	}
	const dt = 0.001
	const eps = 0.01

	// Replica mirrors the assembly operation order exactly.
	rpx := append([]float64(nil), px...)
	rpy := append([]float64(nil), py...)
	rvx := append([]float64(nil), vx...)
	rvy := append([]float64(nil), vy...)
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			ax, ay := 0.0, 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				dx := rpx[j] - rpx[i]
				dy := rpy[j] - rpy[i]
				d2 := dx*dx + dy*dy + eps
				d := math.Sqrt(d2)
				inv3 := 1.0 / (d2 * d)
				ax = ax + dx*inv3
				ay = ay + dy*inv3
			}
			rvx[i] = rvx[i] + dt*ax
			rvy[i] = rvy[i] + dt*ay
		}
		for i := 0; i < n; i++ {
			rpx[i] = rpx[i] + dt*rvx[i]
			rpy[i] = rpy[i] + dt*rvy[i]
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += rpx[i]
	}
	expected := fbits(sum)

	pxB := uint64(HeapBase)
	pyB := HeapBase + uint64(8*n)
	vxB := HeapBase + uint64(16*n)
	vyB := HeapBase + uint64(24*n)
	b := NewBuilder("nbody")
	b.Words(pxB, floatBits(px))
	b.Words(pyB, floatBits(py))
	b.La(1, pxB)
	b.La(2, pyB)
	b.La(3, vxB)
	b.La(4, vyB)
	b.Li(5, int64(n))
	fconst(b, 14, 9, dt)
	fconst(b, 15, 9, eps)
	fconst(b, 16, 9, 1.0)
	fconst(b, 19, 9, 0) // constant zero, reused every iteration
	b.Li(6, int64(steps))
	b.Label("step")
	b.Li(7, 0) // i
	b.Label("iloop")
	b.Bge(7, 5, "move")
	b.Fadd(10, 19, 19) // ax = 0
	b.Fadd(11, 19, 19) // ay = 0
	b.Slli(12, 7, 3)
	b.Add(17, 1, 12)
	b.Fld(4, 17, 0) // px[i]
	b.Add(17, 2, 12)
	b.Fld(5, 17, 0) // py[i]
	b.Li(8, 0)      // j
	b.Label("jloop")
	b.Bge(8, 5, "jdone")
	b.Beq(8, 7, "jnext")
	b.Slli(13, 8, 3)
	b.Add(17, 1, 13)
	b.Fld(6, 17, 0) // px[j]
	b.Add(17, 2, 13)
	b.Fld(7, 17, 0) // py[j]
	b.Fsub(6, 6, 4) // dx
	b.Fsub(7, 7, 5) // dy
	b.Fmul(8, 6, 6)
	b.Fmul(12, 7, 7)
	b.Fadd(8, 8, 12)
	b.Fadd(8, 8, 15) // d2
	b.Fsqrt(13, 8)   // d
	b.Fmul(8, 8, 13) // d2*d
	b.Fdiv(8, 16, 8) // inv3
	b.Fmul(6, 6, 8)
	b.Fadd(10, 10, 6)
	b.Fmul(7, 7, 8)
	b.Fadd(11, 11, 7)
	b.Label("jnext")
	b.Addi(8, 8, 1)
	b.Jmp("jloop")
	b.Label("jdone")
	// v += dt*a
	b.Add(17, 3, 12)
	b.Fld(6, 17, 0)
	b.Fmadd(6, 14, 10)
	b.Fsd(6, 17, 0)
	b.Add(17, 4, 12)
	b.Fld(7, 17, 0)
	b.Fmadd(7, 14, 11)
	b.Fsd(7, 17, 0)
	b.Addi(7, 7, 1)
	b.Jmp("iloop")
	// p += dt*v
	b.Label("move")
	b.Li(7, 0)
	b.Label("mloop")
	b.Bge(7, 5, "mdone")
	b.Slli(12, 7, 3)
	b.Add(17, 3, 12)
	b.Fld(6, 17, 0)
	b.Add(18, 1, 12)
	b.Fld(4, 18, 0)
	b.Fmadd(4, 14, 6)
	b.Fsd(4, 18, 0)
	b.Add(17, 4, 12)
	b.Fld(7, 17, 0)
	b.Add(18, 2, 12)
	b.Fld(5, 18, 0)
	b.Fmadd(5, 14, 7)
	b.Fsd(5, 18, 0)
	b.Addi(7, 7, 1)
	b.Jmp("mloop")
	b.Label("mdone")
	b.Addi(6, 6, -1)
	b.Bnez(6, "step")
	// Reduce px.
	fconst(b, 10, 9, 0)
	b.Li(7, 0)
	b.Label("red")
	b.Bge(7, 5, "done")
	b.Slli(12, 7, 3)
	b.Add(17, 1, 12)
	b.Fld(3, 17, 0)
	b.Fadd(10, 10, 3)
	b.Addi(7, 7, 1)
	b.Jmp("red")
	b.Label("done")
	b.Fmvxd(ResultReg, 10)
	b.Halt()

	return Kernel{Name: "nbody", FP: true, Prog: b.MustBuild(), Expected: expected}
}

// MonteCarlo estimates π by sampling a 64-bit LCG (high-entropy integer
// live values) and counting points inside the unit circle. The result is
// the integer hit count.
func MonteCarlo(samples int) Kernel {
	const (
		mulC = 6364136223846793005
		addC = 1442695040888963407
	)
	inv53 := 1.0 / float64(1<<53)

	var state uint64 = 0x1234_5678_9ABC_DEF0
	var hits uint64
	for s := 0; s < samples; s++ {
		state = state*mulC + addC
		x := float64(state>>11) * inv53
		state = state*mulC + addC
		y := float64(state>>11) * inv53
		if x*x+y*y <= 1.0 {
			hits++
		}
	}

	b := NewBuilder("montecarlo")
	b.Li(1, int64(uint64(0x1234_5678_9ABC_DEF0))) // state
	b.Li(2, mulC)
	b.Li(3, addC)
	fconst(b, 8, 9, inv53)
	fconst(b, 9, 9, 1.0)
	b.Li(4, int64(samples))
	b.Li(20, 0)
	b.Label("loop")
	b.Beqz(4, "done")
	b.Addi(4, 4, -1)
	b.Mul(1, 1, 2)
	b.Add(1, 1, 3)
	b.Srli(5, 1, 11)
	b.Fcvtdl(1, 5)
	b.Fmul(1, 1, 8) // x
	b.Mul(1, 1, 2)  // integer state reuse: careful — x1 is int, f1 is fp (separate files)
	b.Add(1, 1, 3)
	b.Srli(5, 1, 11)
	b.Fcvtdl(2, 5)
	b.Fmul(2, 2, 8) // y
	b.Fmul(3, 1, 1)
	b.Fmul(4, 2, 2)
	b.Fadd(3, 3, 4)
	b.Fle(6, 3, 9) // x*x+y*y <= 1.0
	b.Add(20, 20, 6)
	b.Jmp("loop")
	b.Label("done")
	b.Mv(ResultReg, 20)
	b.Halt()

	return Kernel{Name: "montecarlo", FP: true, Prog: b.MustBuild(), Expected: hits}
}

// DotProduct computes a two-accumulator dot product over n elements for
// iters passes and reports the bit pattern of the final sum.
func DotProduct(n, iters int) Kernel {
	rng := NewRNG(1414)
	xv := make([]float64, n)
	yv := make([]float64, n)
	for i := range xv {
		xv[i] = rng.Float64()*2 - 1
		yv[i] = rng.Float64()*2 - 1
	}

	var expected uint64
	{
		var total float64
		for it := 0; it < iters; it++ {
			var acc0, acc1 float64
			for i := 0; i+1 < n; i += 2 {
				acc0 = acc0 + xv[i]*yv[i]
				acc1 = acc1 + xv[i+1]*yv[i+1]
			}
			total = total + (acc0 + acc1)
		}
		expected = fbits(total)
	}

	xBase := uint64(HeapBase)
	yBase := HeapBase + uint64(8*n)
	b := NewBuilder("dotprod")
	b.Words(xBase, floatBits(xv))
	b.Words(yBase, floatBits(yv))
	b.La(1, xBase)
	b.La(2, yBase)
	b.Li(3, int64(n-1)) // i+1 < n bound
	b.Li(4, int64(iters))
	fconst(b, 12, 9, 0) // total
	fconst(b, 19, 9, 0) // constant zero, reused every pass
	b.Label("iter")
	b.Fadd(10, 19, 19) // acc0 = 0
	b.Fadd(11, 19, 19) // acc1 = 0
	b.Li(5, 0)
	b.Label("loop")
	b.Bge(5, 3, "iend")
	b.Slli(6, 5, 3)
	b.Add(7, 1, 6)
	b.Fld(1, 7, 0)
	b.Fld(2, 7, 8)
	b.Add(7, 2, 6)
	b.Fld(3, 7, 0)
	b.Fld(4, 7, 8)
	b.Fmadd(10, 1, 3)
	b.Fmadd(11, 2, 4)
	b.Addi(5, 5, 2)
	b.Jmp("loop")
	b.Label("iend")
	b.Fadd(5, 10, 11)
	b.Fadd(12, 12, 5)
	b.Addi(4, 4, -1)
	b.Bnez(4, "iter")
	b.Fmvxd(ResultReg, 12)
	b.Halt()

	return Kernel{Name: "dotprod", FP: true, Prog: b.MustBuild(), Expected: expected}
}

// Jacobi relaxes a square grid with 4-neighbour averaging (ping-pong
// buffers) and reports the bit pattern of the final interior sum.
func Jacobi(dim, iters int) Kernel {
	rng := NewRNG(1515)
	g := make([]float64, dim*dim)
	for i := range g {
		g[i] = rng.Float64() * 4
	}

	src := append([]float64(nil), g...)
	dst := append([]float64(nil), g...)
	for it := 0; it < iters; it++ {
		for r := 1; r < dim-1; r++ {
			for c := 1; c < dim-1; c++ {
				i := r*dim + c
				dst[i] = (src[i-dim] + src[i+dim] + src[i-1] + src[i+1]) * 0.25
			}
		}
		src, dst = dst, src
	}
	var sum float64
	for r := 1; r < dim-1; r++ {
		for c := 1; c < dim-1; c++ {
			sum += src[r*dim+c]
		}
	}
	expected := fbits(sum)

	aBase := uint64(HeapBase)
	bBase := HeapBase + uint64(8*dim*dim)
	b := NewBuilder("jacobi")
	b.Words(aBase, floatBits(g))
	b.Words(bBase, floatBits(g))
	b.La(1, aBase)
	b.La(2, bBase)
	b.Li(3, int64(dim))
	b.Addi(4, 3, -1) // dim-1
	fconst(b, 8, 9, 0.25)
	b.Li(5, int64(iters))
	b.Slli(14, 3, 3) // row stride in bytes
	b.Label("iter")
	b.Li(6, 1) // r
	b.Label("rloop")
	b.Bge(6, 4, "iend")
	b.Li(7, 1) // c
	b.Mul(9, 6, 3)
	b.Label("cloop")
	b.Bge(7, 4, "rnext")
	b.Add(10, 9, 7) // i = r*dim + c
	b.Slli(10, 10, 3)
	b.Add(11, 1, 10) // &src[i]
	b.Sub(12, 11, 14)
	b.Fld(1, 12, 0) // up
	b.Add(12, 11, 14)
	b.Fld(2, 12, 0) // down
	b.Fld(3, 11, -8)
	b.Fld(4, 11, 8)
	b.Fadd(1, 1, 2)
	b.Fadd(1, 1, 3)
	b.Fadd(1, 1, 4)
	b.Fmul(1, 1, 8)
	b.Add(12, 2, 10)
	b.Fsd(1, 12, 0)
	b.Addi(7, 7, 1)
	b.Jmp("cloop")
	b.Label("rnext")
	b.Addi(6, 6, 1)
	b.Jmp("rloop")
	b.Label("iend")
	b.Mv(13, 1)
	b.Mv(1, 2)
	b.Mv(2, 13)
	b.Addi(5, 5, -1)
	b.Bnez(5, "iter")
	// Reduce interior of src (x1).
	fconst(b, 10, 9, 0)
	b.Li(6, 1)
	b.Label("sr")
	b.Bge(6, 4, "done")
	b.Li(7, 1)
	b.Mul(9, 6, 3)
	b.Label("sc")
	b.Bge(7, 4, "srnext")
	b.Add(10, 9, 7)
	b.Slli(10, 10, 3)
	b.Add(11, 1, 10)
	b.Fld(3, 11, 0)
	b.Fadd(10, 10, 3)
	b.Addi(7, 7, 1)
	b.Jmp("sc")
	b.Label("srnext")
	b.Addi(6, 6, 1)
	b.Jmp("sr")
	b.Label("done")
	b.Fmvxd(ResultReg, 10)
	b.Halt()

	return Kernel{Name: "jacobi", FP: true, Prog: b.MustBuild(), Expected: expected}
}

// floatBits converts a float64 slice to its raw bit patterns.
func floatBits(fs []float64) []uint64 {
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}
