// Package workload provides the benchmark programs the simulator runs: a
// small assembler-style program builder and a library of integer and
// floating-point kernels whose live-value behaviour mirrors the three
// populations the paper measures — memory addresses sharing high-order
// bits (short values), small constants and flags (simple values), and
// high-entropy data such as hashes (long values).
//
// Programs use a realistic 64-bit address layout (see the *Base
// constants) so that pointer values carry non-zero upper bits, exactly
// the situation that motivates the content-aware organization.
package workload

import (
	"fmt"

	"carf/internal/isa"
	"carf/internal/vm"
)

// Standard address-space layout. Regions are far apart and have non-zero
// high-order bits, like a Unix process image on a 64-bit machine.
const (
	CodeBase   = 0x0000_0000_0040_0000 // text segment
	GlobalBase = 0x0000_0000_0060_0000 // globals / static data
	HeapBase   = 0x0000_5542_1000_0000 // heap (malloc arena)
	StackBase  = 0x0000_7FFF_F7E0_0000 // stack top (grows down)
)

// Register conventions used by the kernels.
const (
	SP   = isa.Reg(29) // stack pointer
	GP   = isa.Reg(30) // global pointer
	Link = isa.Reg(31) // link register
)

type fixupKind uint8

const (
	fixBranch fixupKind = iota
	fixJump
	fixAbs // LIMM of a label's absolute address
)

type fixup struct {
	instIdx int
	label   string
	kind    fixupKind
}

// Builder assembles an R64 program. Emit instructions with the opcode
// helpers, mark positions with Label, reference labels from branches and
// jumps, then call Build to resolve offsets and produce an immutable
// vm.Program.
type Builder struct {
	name        string
	base        uint64
	insts       []isa.Inst
	offsets     []uint64
	size        uint64
	labels      map[string]uint64 // label -> byte offset from base
	fixups      []fixup
	data        []vm.Segment
	labelTables []labelTable
	regs        map[isa.Reg]uint64
	errs        []error
}

type labelTable struct {
	addr   uint64
	labels []string
}

// NewBuilder returns a builder for a program named name, with code at
// CodeBase and the stack pointer initialized to StackBase.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		base:   CodeBase,
		labels: make(map[string]uint64),
		regs:   map[isa.Reg]uint64{SP: StackBase, GP: GlobalBase},
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("program %s: %s", b.name, fmt.Sprintf(format, args...)))
}

// emit appends one instruction and tracks its offset.
func (b *Builder) emit(inst isa.Inst) {
	if inst.Op.RdClass() == isa.RegInt && inst.Rd == isa.Zero && inst.Op != isa.JALR && inst.Op != isa.JAL {
		b.errf("instruction %d (%s) writes x0", len(b.insts), inst)
	}
	b.insts = append(b.insts, inst)
	b.offsets = append(b.offsets, b.size)
	b.size += uint64(inst.Size())
}

// Label marks the current position. Referencing an already-defined label
// twice is an error.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return
	}
	b.labels[name] = b.size
}

// Raw emits a fully-formed instruction verbatim.
func (b *Builder) Raw(inst isa.Inst) { b.emit(inst) }

// Li loads a 64-bit literal into rd. Small literals still use LIMM: the
// simulator charges one ALU operation either way.
func (b *Builder) Li(rd isa.Reg, v int64) { b.emit(isa.Inst{Op: isa.LIMM, Rd: rd, Imm: v}) }

// La loads the address addr into rd.
func (b *Builder) La(rd isa.Reg, addr uint64) { b.Li(rd, int64(addr)) }

// LiLabel loads the absolute address of a code label into rd (resolved at
// Build time; used for computed jump tables).
func (b *Builder) LiLabel(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label, kind: fixAbs})
	b.emit(isa.Inst{Op: isa.LIMM, Rd: rd})
}

// R-type ALU helpers.

func (b *Builder) op3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) Add(rd, rs1, rs2 isa.Reg)   { b.op3(isa.ADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg)   { b.op3(isa.SUB, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg)   { b.op3(isa.AND, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg)    { b.op3(isa.OR, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg)   { b.op3(isa.XOR, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg)   { b.op3(isa.SLL, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg)   { b.op3(isa.SRL, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 isa.Reg)   { b.op3(isa.SRA, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg)   { b.op3(isa.SLT, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg)  { b.op3(isa.SLTU, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg)   { b.op3(isa.MUL, rd, rs1, rs2) }
func (b *Builder) Mulhu(rd, rs1, rs2 isa.Reg) { b.op3(isa.MULHU, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg)   { b.op3(isa.DIV, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg)   { b.op3(isa.REM, rd, rs1, rs2) }

// Mv copies rs1 into rd.
func (b *Builder) Mv(rd, rs1 isa.Reg) { b.Addi(rd, rs1, 0) }

// I-type ALU helpers.

func (b *Builder) opImm(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.ADDI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.ANDI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64)   { b.opImm(isa.ORI, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.XORI, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.SLLI, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.SRLI, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.SRAI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64)  { b.opImm(isa.SLTI, rd, rs1, imm) }
func (b *Builder) Sltiu(rd, rs1 isa.Reg, imm int64) { b.opImm(isa.SLTIU, rd, rs1, imm) }

// Memory helpers. Loads name the destination first; stores name the data
// register first, matching the disassembly.

func (b *Builder) Ld(rd, base isa.Reg, off int64)  { b.opImm(isa.LD, rd, base, off) }
func (b *Builder) Lw(rd, base isa.Reg, off int64)  { b.opImm(isa.LW, rd, base, off) }
func (b *Builder) Lwu(rd, base isa.Reg, off int64) { b.opImm(isa.LWU, rd, base, off) }
func (b *Builder) Lb(rd, base isa.Reg, off int64)  { b.opImm(isa.LB, rd, base, off) }
func (b *Builder) Lbu(rd, base isa.Reg, off int64) { b.opImm(isa.LBU, rd, base, off) }

func (b *Builder) store(op isa.Op, data, base isa.Reg, off int64) {
	b.emit(isa.Inst{Op: op, Rs1: base, Rs2: data, Imm: off})
}

func (b *Builder) St(data, base isa.Reg, off int64) { b.store(isa.ST, data, base, off) }
func (b *Builder) Sw(data, base isa.Reg, off int64) { b.store(isa.SW, data, base, off) }
func (b *Builder) Sb(data, base isa.Reg, off int64) { b.store(isa.SB, data, base, off) }

// Control-flow helpers. Targets are labels, resolved at Build time.

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label, kind: fixBranch})
	b.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string)  { b.branch(isa.BEQ, rs1, rs2, label) }
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string)  { b.branch(isa.BNE, rs1, rs2, label) }
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string)  { b.branch(isa.BLT, rs1, rs2, label) }
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string)  { b.branch(isa.BGE, rs1, rs2, label) }
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) { b.branch(isa.BLTU, rs1, rs2, label) }
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) { b.branch(isa.BGEU, rs1, rs2, label) }

// Beqz branches to label when rs1 is zero.
func (b *Builder) Beqz(rs1 isa.Reg, label string) { b.Beq(rs1, isa.Zero, label) }

// Bnez branches to label when rs1 is non-zero.
func (b *Builder) Bnez(rs1 isa.Reg, label string) { b.Bne(rs1, isa.Zero, label) }

// Jmp jumps unconditionally to label (JAL with the link discarded).
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label, kind: fixJump})
	b.emit(isa.Inst{Op: isa.JAL, Rd: isa.Zero})
}

// Call jumps to label, saving the return address in Link.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.insts), label: label, kind: fixJump})
	b.emit(isa.Inst{Op: isa.JAL, Rd: Link})
}

// Ret returns through the Link register.
func (b *Builder) Ret() { b.emit(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: Link}) }

// Jr jumps to the address in rs1 (computed/indirect jump).
func (b *Builder) Jr(rs1 isa.Reg) { b.emit(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: rs1}) }

// Jalr jumps to rs1+imm saving the return address in rd.
func (b *Builder) Jalr(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1, Imm: imm})
}

// FP helpers.

func (b *Builder) Fld(rd, base isa.Reg, off int64) { b.opImm(isa.FLD, rd, base, off) }
func (b *Builder) Fsd(data, base isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.FSD, Rs1: base, Rs2: data, Imm: off})
}
func (b *Builder) Fadd(rd, rs1, rs2 isa.Reg)  { b.op3(isa.FADD, rd, rs1, rs2) }
func (b *Builder) Fsub(rd, rs1, rs2 isa.Reg)  { b.op3(isa.FSUB, rd, rs1, rs2) }
func (b *Builder) Fmul(rd, rs1, rs2 isa.Reg)  { b.op3(isa.FMUL, rd, rs1, rs2) }
func (b *Builder) Fdiv(rd, rs1, rs2 isa.Reg)  { b.op3(isa.FDIV, rd, rs1, rs2) }
func (b *Builder) Fmadd(rd, rs1, rs2 isa.Reg) { b.op3(isa.FMADD, rd, rs1, rs2) }
func (b *Builder) Fsqrt(rd, rs1 isa.Reg)      { b.op3(isa.FSQRT, rd, rs1, 0) }
func (b *Builder) Fabs(rd, rs1 isa.Reg)       { b.op3(isa.FABS, rd, rs1, 0) }
func (b *Builder) Fneg(rd, rs1 isa.Reg)       { b.op3(isa.FNEG, rd, rs1, 0) }
func (b *Builder) Fmin(rd, rs1, rs2 isa.Reg)  { b.op3(isa.FMIN, rd, rs1, rs2) }
func (b *Builder) Fmax(rd, rs1, rs2 isa.Reg)  { b.op3(isa.FMAX, rd, rs1, rs2) }
func (b *Builder) Fcvtdl(rd, rs1 isa.Reg)     { b.op3(isa.FCVTDL, rd, rs1, 0) }
func (b *Builder) Fcvtld(rd, rs1 isa.Reg)     { b.op3(isa.FCVTLD, rd, rs1, 0) }
func (b *Builder) Feq(rd, rs1, rs2 isa.Reg)   { b.op3(isa.FEQ, rd, rs1, rs2) }
func (b *Builder) Flt(rd, rs1, rs2 isa.Reg)   { b.op3(isa.FLT, rd, rs1, rs2) }
func (b *Builder) Fle(rd, rs1, rs2 isa.Reg)   { b.op3(isa.FLE, rd, rs1, rs2) }
func (b *Builder) Fmvdx(rd, rs1 isa.Reg)      { b.op3(isa.FMVDX, rd, rs1, 0) }
func (b *Builder) Fmvxd(rd, rs1 isa.Reg)      { b.op3(isa.FMVXD, rd, rs1, 0) }

// Nop emits a no-op; Halt stops the machine.
func (b *Builder) Nop()  { b.emit(isa.Inst{Op: isa.NOP}) }
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.HALT}) }

// Data attaches an initialized byte segment.
func (b *Builder) Data(addr uint64, bytes []byte) {
	b.data = append(b.data, vm.Segment{Addr: addr, Bytes: bytes})
}

// Words attaches an initialized segment of little-endian 64-bit words.
func (b *Builder) Words(addr uint64, words []uint64) {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(w >> (8 * j))
		}
	}
	b.Data(addr, buf)
}

// WordsLabels attaches a data segment of 64-bit words holding the
// absolute addresses of the named code labels (a jump table), resolved at
// Build time.
func (b *Builder) WordsLabels(addr uint64, labels []string) {
	b.labelTables = append(b.labelTables, labelTable{addr: addr, labels: labels})
}

// InitReg seeds an integer register before execution.
func (b *Builder) InitReg(r isa.Reg, v uint64) { b.regs[r] = v }

// Build resolves all label references and returns the finished program.
func (b *Builder) Build() (*vm.Program, error) {
	for _, f := range b.fixups {
		off, ok := b.labels[f.label]
		if !ok {
			b.errf("undefined label %q", f.label)
			continue
		}
		inst := &b.insts[f.instIdx]
		if f.kind == fixAbs {
			inst.Imm = int64(b.base + off)
			continue
		}
		next := b.offsets[f.instIdx] + uint64(inst.Size())
		inst.Imm = int64(off) - int64(next)
	}
	for _, tbl := range b.labelTables {
		words := make([]uint64, len(tbl.labels))
		for i, lbl := range tbl.labels {
			off, ok := b.labels[lbl]
			if !ok {
				b.errf("undefined label %q in jump table", lbl)
				continue
			}
			words[i] = b.base + off
		}
		b.Words(tbl.addr, words)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	prog := vm.NewProgram(b.name, b.base, b.insts, b.data, b.regs)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustBuild is Build that panics on error; kernels are static so a failed
// build is a programming bug, not a runtime condition.
func (b *Builder) MustBuild() *vm.Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workload: MustBuild(%s) failed (invariant: the static kernels are valid at every scale): %v", b.name, err))
	}
	return p
}
