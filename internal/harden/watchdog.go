package harden

// Watchdog detects zero-commit livelock and deadlock: a machine that
// keeps cycling without retiring instructions — a rename stall that
// never clears, a stuck §3.2 Recovery State, a scheduling bug. The
// pipeline feeds it once per cycle; when the commit counter stays flat
// for more than Limit cycles the watchdog trips and the run ends with a
// DeadlockError instead of looping forever.
type Watchdog struct {
	limit       uint64
	lastCommits uint64
	lastChange  uint64
	primed      bool
}

// NewWatchdog builds a watchdog that trips after limit zero-commit
// cycles.
func NewWatchdog(limit uint64) *Watchdog {
	return &Watchdog{limit: limit}
}

// Limit returns the configured zero-commit cycle budget.
func (w *Watchdog) Limit() uint64 { return w.limit }

// Observe feeds one cycle's cumulative commit count. It returns how many
// cycles the machine has gone without a commit and whether that exceeds
// the limit.
func (w *Watchdog) Observe(cycle, commits uint64) (stalledFor uint64, tripped bool) {
	if !w.primed || commits != w.lastCommits {
		w.primed = true
		w.lastCommits = commits
		w.lastChange = cycle
		return 0, false
	}
	stalledFor = cycle - w.lastChange
	return stalledFor, stalledFor > w.limit
}
