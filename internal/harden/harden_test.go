package harden

import (
	"errors"
	"strings"
	"testing"

	"carf/internal/isa"
	"carf/internal/vm"
)

// tinyProgram is x1 = 5; x2 = x1 + 2; store x2; halt.
func tinyProgram() *vm.Program {
	return vm.NewProgram("tiny", 0x400000, []isa.Inst{
		{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: isa.ADDI, Rd: 2, Rs1: 1, Imm: 2},
		{Op: isa.ST, Rs1: 3, Rs2: 2, Imm: 0},
		{Op: isa.HALT},
	}, nil, map[isa.Reg]uint64{3: 0x600000})
}

// goldenRecords executes the program on a reference machine and renders
// each step as the CommitRecord a correct pipeline would report.
func goldenRecords(t *testing.T, prog *vm.Program) []CommitRecord {
	t.Helper()
	m := vm.New(prog)
	var out []CommitRecord
	for seq := uint64(0); !m.Halted; seq++ {
		pc := m.PC
		inst, eff, err := m.Step()
		if err != nil {
			t.Fatalf("step %d: %v", seq, err)
		}
		rec := CommitRecord{Seq: seq, Cycle: seq, PC: pc, Inst: inst}
		if eff.WritesReg && eff.RdClass == isa.RegInt {
			rec.WritesInt = true
			rec.Rd = eff.Rd
			rec.RdValue = eff.RdValue
			rec.ArchValue = eff.RdValue
			rec.ArchOK = true
		}
		if eff.Store {
			rec.Store = true
			rec.Addr = eff.Addr
			rec.Size = eff.Size
			rec.StoreVal = eff.StoreVal
		}
		out = append(out, rec)
	}
	return out
}

func TestLockstepAcceptsGoldenStream(t *testing.T) {
	prog := tinyProgram()
	l := NewLockstep(prog, 4)
	for _, rec := range goldenRecords(t, prog) {
		if d := l.OnCommit(rec); d != nil {
			t.Fatalf("golden stream diverged: %v", d)
		}
	}
	if l.Steps() != 4 {
		t.Errorf("checked %d commits, want 4", l.Steps())
	}
	if regs := l.ArchRegs(); regs[2] != 7 {
		t.Errorf("golden x2 = %d, want 7", regs[2])
	}
	if got := len(l.Ring()); got != 4 {
		t.Errorf("ring holds %d records, want 4", got)
	}
}

func TestLockstepCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CommitRecord)
		field  string
	}{
		{"rd value", func(r *CommitRecord) { r.RdValue ^= 1 << 40 }, "rd value"},
		{"reconstruction", func(r *CommitRecord) { r.ArchValue ^= 1 << 40 }, "register file reconstruction"},
		{"pc", func(r *CommitRecord) { r.PC += 8 }, "pc"},
		{"store value", func(r *CommitRecord) { r.StoreVal ^= 2 }, "store value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := tinyProgram()
			l := NewLockstep(prog, 4)
			var div *DivergenceError
			for _, rec := range goldenRecords(t, prog) {
				// Mutate only records the corruption applies to: stores for
				// the store case, integer writes for the rd cases, any for pc.
				mutated := rec
				switch {
				case tc.name == "store value" && rec.Store,
					tc.name == "pc",
					tc.name != "store value" && tc.name != "pc" && rec.WritesInt:
					tc.mutate(&mutated)
				}
				if div = l.OnCommit(mutated); div != nil {
					break
				}
			}
			if div == nil {
				t.Fatal("corruption went undetected")
			}
			if div.Field != tc.field {
				t.Errorf("detected as %q, want %q (error: %v)", div.Field, tc.field, div)
			}
		})
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog(10)
	commits := uint64(0)
	for cycle := uint64(0); cycle < 100; cycle++ {
		commits++ // steady progress
		if stalled, tripped := w.Observe(cycle, commits); tripped {
			t.Fatalf("tripped at cycle %d (stalled %d) despite per-cycle commits", cycle, stalled)
		}
	}
	var tripCycle uint64
	for cycle := uint64(100); cycle < 200; cycle++ {
		if _, tripped := w.Observe(cycle, commits); tripped {
			tripCycle = cycle
			break
		}
	}
	if tripCycle == 0 {
		t.Fatal("watchdog never tripped on a zero-commit stretch")
	}
	if tripCycle > 115 {
		t.Errorf("tripped at cycle %d, expected within a few cycles of the limit", tripCycle)
	}
	// A single commit resets the countdown.
	w2 := NewWatchdog(10)
	c := uint64(0)
	for cycle := uint64(0); cycle < 500; cycle++ {
		if cycle%8 == 0 {
			c++
		}
		if _, tripped := w2.Observe(cycle, c); tripped {
			t.Fatalf("tripped at cycle %d despite commits every 8 cycles", cycle)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed, different sequence")
		}
	}
	if NewRand(1).Next() == NewRand(2).Next() {
		t.Error("different seeds produced the same first value")
	}
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestFaultClassRoundTrip(t *testing.T) {
	for _, c := range FaultClasses() {
		got, err := ParseFaultClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseFaultClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseFaultClass("no-such-fault"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestOutcomeLatency(t *testing.T) {
	o := Outcome{Injected: true, InjectedAt: 100, Detected: true, DetectedAt: 164}
	if got := o.Latency(); got != 64 {
		t.Errorf("latency %d, want 64", got)
	}
	if (Outcome{Detected: false}).Latency() != 0 {
		t.Error("undetected outcome has non-zero latency")
	}
}

func TestBundleFormat(t *testing.T) {
	b := &Bundle{
		Cycle: 1234, PC: 0x400010, LastCommitCycle: 1200,
		Notes:   []string{"instructions=99"},
		Metrics: []Metric{{Name: "pipeline.ipc", Value: 1.5}},
		Commits: []CommitRecord{{Seq: 9, Cycle: 1200, PC: 0x400008, WritesInt: true, Rd: 2, RdValue: 7}},
		Trace:   []string{"seq=9 pc=0x400008"},
	}
	s := b.Format()
	for _, want := range []string{"cycle 1234", "instructions=99", "pipeline.ipc", "seq=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("bundle missing %q:\n%s", want, s)
		}
	}
	var nilB *Bundle
	if nilB.Format() != "" {
		t.Error("nil bundle formats non-empty")
	}
}

func TestErrorTypes(t *testing.T) {
	var err error = &DivergenceError{Cycle: 5, Field: "rd value", Got: 1, Want: 2}
	var div *DivergenceError
	if !errors.As(err, &div) || !strings.Contains(err.Error(), "rd value") {
		t.Errorf("divergence error: %v", err)
	}
	err = &InvariantError{Cycle: 7, Violations: []Violation{{Check: "freelist", Detail: "tag 3 double free"}}}
	if !strings.Contains(err.Error(), "freelist: tag 3 double free") {
		t.Errorf("invariant error: %v", err)
	}
	err = &DeadlockError{Cycle: 900, LastCommitCycle: 100, StalledFor: 800, PC: 0x400000}
	if !strings.Contains(err.Error(), "no commit for 800 cycles") {
		t.Errorf("deadlock error: %v", err)
	}
}

func TestOptions(t *testing.T) {
	if (Options{}).Enabled() {
		t.Error("zero Options reports enabled")
	}
	for _, o := range []Options{{Lockstep: true}, {SweepEvery: 64}, {WatchdogAfter: 100}} {
		if !o.Enabled() {
			t.Errorf("%+v reports disabled", o)
		}
	}
	if (Options{}).Ring() != DefaultRingSize {
		t.Error("default ring size not applied")
	}
	if (Options{RingSize: 7}).Ring() != 7 {
		t.Error("explicit ring size ignored")
	}
}
