// Package harden is the simulator's runtime verification and fault
// injection layer. It supplies the building blocks the pipeline wires in
// when checking is enabled:
//
//   - a lockstep co-simulator (Lockstep) that steps an independent
//     vm.Machine golden model once per committed instruction and diffs
//     architectural register writes and memory effects, reporting the
//     first divergence as a structured DivergenceError with a ring of
//     recent commits;
//   - invariant vocabulary (Violation, Checker, FaultReporter) used by
//     the pipeline's periodic sweeps and by the register file models'
//     self-checks (free-list accounting, §2 reconstruction identity,
//     Short reference-bit consistency);
//   - a watchdog (Watchdog) that converts zero-commit livelock or
//     deadlock — including a stuck §3.2 Recovery State — into a bounded
//     DeadlockError instead of an infinite loop;
//   - deterministic fault injection (Fault, Injector, Rand) for seeded
//     campaigns that flip bits in the Simple/Short/Long arrays, corrupt
//     free lists, and drop reference-bit clears, so the checkers'
//     detection coverage and latency can be measured.
//
// Every failure carries a diagnostic Bundle: a snapshot of headline
// statistics, the registered metric series, and the most recent commits.
// The package depends only on the ISA and the golden model, so the
// pipeline, core, and regfile packages can all import it.
package harden

import (
	"fmt"
	"strings"

	"carf/internal/isa"
)

// Options selects which checkers a hardened run enables. The zero value
// disables everything (Enabled reports false, the pipeline's fast path).
type Options struct {
	// Lockstep steps the golden model at every commit and diffs
	// architectural effects (Config.Check mode).
	Lockstep bool
	// SweepEvery runs the invariant sweeps each time this many cycles
	// elapse (0 disables sweeps).
	SweepEvery uint64
	// WatchdogAfter trips the watchdog after this many cycles without a
	// commit (0 disables the watchdog).
	WatchdogAfter uint64
	// RingSize bounds the ring of recent commits kept for diagnostics
	// (0 uses DefaultRingSize).
	RingSize int
}

// DefaultRingSize is the commit-ring capacity when Options.RingSize is 0.
const DefaultRingSize = 16

// Enabled reports whether any checker is on.
func (o Options) Enabled() bool {
	return o.Lockstep || o.SweepEvery > 0 || o.WatchdogAfter > 0
}

// Ring returns the configured commit-ring capacity.
func (o Options) Ring() int {
	if o.RingSize > 0 {
		return o.RingSize
	}
	return DefaultRingSize
}

// CommitRecord is the architectural effect of one committed instruction,
// as observed by the timing pipeline.
type CommitRecord struct {
	Seq   uint64
	Cycle uint64
	PC    uint64
	Inst  isa.Inst

	// Integer destination (WritesInt only).
	WritesInt bool
	Rd        isa.Reg
	RdValue   uint64 // the oracle value carried through the pipeline
	ArchValue uint64 // the value reconstructed from the register file
	ArchOK    bool   // ArchValue is meaningful

	// Memory effect.
	Store    bool
	Addr     uint64
	Size     int
	StoreVal uint64
}

// String renders one ring line.
func (r CommitRecord) String() string {
	s := fmt.Sprintf("seq=%d cycle=%d pc=%#x %s", r.Seq, r.Cycle, r.PC, r.Inst)
	if r.WritesInt {
		s += fmt.Sprintf(" x%d=%#x", r.Rd, r.RdValue)
	}
	if r.Store {
		s += fmt.Sprintf(" mem[%#x]<-%#x(%dB)", r.Addr, r.StoreVal, r.Size)
	}
	return s
}

// Violation is one failed invariant check.
type Violation struct {
	// Check names the invariant ("freelist", "reconstruction",
	// "rob-order", "refbits", "fault-log", ...).
	Check string
	// Detail describes what was observed.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Metric is one named series value captured into a Bundle.
type Metric struct {
	Name  string
	Value float64
}

// Bundle is the diagnostic context attached to every hardening failure:
// where the machine was, headline statistics, the registered metric
// series (when metrics are installed), and the most recent commits.
type Bundle struct {
	Cycle           uint64
	PC              uint64
	LastCommitCycle uint64

	Notes   []string // headline statistics, one "name=value" per entry
	Metrics []Metric // metrics registry snapshot (nil when not installed)
	Commits []CommitRecord
	Trace   []string // tail of the pipeline trace (when a tracer is attached)
}

// Format renders the bundle for a report.
func (b *Bundle) Format() string {
	if b == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle %d, pc %#x, last commit at cycle %d\n", b.Cycle, b.PC, b.LastCommitCycle)
	if len(b.Notes) > 0 {
		fmt.Fprintf(&sb, "stats: %s\n", strings.Join(b.Notes, " "))
	}
	for _, m := range b.Metrics {
		fmt.Fprintf(&sb, "metric %-32s %g\n", m.Name, m.Value)
	}
	if len(b.Commits) > 0 {
		fmt.Fprintf(&sb, "last %d commits:\n", len(b.Commits))
		for _, r := range b.Commits {
			fmt.Fprintf(&sb, "  %s\n", r)
		}
	}
	if len(b.Trace) > 0 {
		fmt.Fprintf(&sb, "last %d trace events:\n", len(b.Trace))
		for _, t := range b.Trace {
			fmt.Fprintf(&sb, "  %s\n", t)
		}
	}
	return sb.String()
}

// DivergenceError reports the first disagreement between the pipeline's
// committed architectural effects and the golden model.
type DivergenceError struct {
	Cycle  uint64
	Record CommitRecord // the diverging commit as the pipeline saw it
	Field  string       // which effect disagreed ("pc", "rd value", ...)
	Got    uint64       // pipeline's value
	Want   uint64       // golden model's value
	Detail string       // extra context (golden disassembly, step error)
	Bundle *Bundle
}

// Error implements error.
func (e *DivergenceError) Error() string {
	s := fmt.Sprintf("harden: lockstep divergence at cycle %d, seq %d, pc %#x (%s): %s: got %#x want %#x",
		e.Cycle, e.Record.Seq, e.Record.PC, e.Record.Inst, e.Field, e.Got, e.Want)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// InvariantError reports failed invariant sweeps.
type InvariantError struct {
	Cycle      uint64
	Violations []Violation
	Bundle     *Bundle
}

// Error implements error.
func (e *InvariantError) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("harden: %d invariant violation(s) at cycle %d: %s",
		len(e.Violations), e.Cycle, strings.Join(parts, "; "))
}

// DeadlockError reports a zero-commit livelock or deadlock caught by the
// watchdog.
type DeadlockError struct {
	Cycle           uint64
	LastCommitCycle uint64
	StalledFor      uint64
	PC              uint64
	Bundle          *Bundle
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("harden: watchdog: no commit for %d cycles at cycle %d (last commit at %d, pc %#x)",
		e.StalledFor, e.Cycle, e.LastCommitCycle, e.PC)
}

// Checker is implemented by register file models that can audit their
// own structural invariants (free-list accounting, encoding consistency,
// reference-bit bookkeeping). The pipeline's sweep calls it and folds
// the violations into an InvariantError.
type Checker interface {
	CheckInvariants() []Violation
}

// FaultReporter is implemented by models that record internal faults
// (e.g. a double free) instead of panicking; the sweep surfaces them.
type FaultReporter interface {
	Faults() []string
}
