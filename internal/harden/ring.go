package harden

// CommitRing keeps the most recent CommitRecords in a fixed-capacity
// circular buffer. Push is O(1) — the previous slice-shift retention
// cost O(cap) copies per commit, which dominated hardened-run time once
// the rest of the commit path stopped allocating. Snapshot materializes
// the retained records oldest-first for diagnostics; it allocates and
// belongs on failure paths only.
type CommitRing struct {
	buf  []CommitRecord
	head int // index of the oldest retained record
	n    int // number of retained records
}

// NewCommitRing builds a ring retaining up to capacity records
// (capacity <= 0 uses DefaultRingSize).
func NewCommitRing(capacity int) *CommitRing {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &CommitRing{buf: make([]CommitRecord, capacity)}
}

// Len returns the number of retained records.
func (r *CommitRing) Len() int { return r.n }

// Push retains rec, evicting the oldest record when full.
func (r *CommitRing) Push(rec CommitRecord) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.head] = rec
	r.head = (r.head + 1) % len(r.buf)
}

// Snapshot returns the retained records, oldest first.
func (r *CommitRing) Snapshot() []CommitRecord {
	out := make([]CommitRecord, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}
