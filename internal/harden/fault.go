package harden

import "fmt"

// FaultClass names one injectable hardware fault model.
type FaultClass uint8

const (
	// FaultSimpleBit flips one bit in a written Simple entry's Value
	// field (low bits, short pointer, or long pointer alike).
	FaultSimpleBit FaultClass = iota
	// FaultShortBit flips one bit in a live Short entry's shared
	// high-order bits, corrupting every value in the similarity group.
	FaultShortBit
	// FaultLongBit flips one bit in an allocated Long entry's stored
	// high part.
	FaultLongBit
	// FaultFreeList pushes an in-use rename tag back onto the free
	// list, so a later allocation aliases two logical registers.
	FaultFreeList
	// FaultRefClear makes one Short entry's Tarch reference bit stick:
	// the §3.2 interval clear is dropped, so the entry can never be
	// reclaimed (a slow leak rather than a value corruption).
	FaultRefClear

	numFaultClasses
)

// FaultClasses lists every injectable class.
func FaultClasses() []FaultClass {
	out := make([]FaultClass, numFaultClasses)
	for i := range out {
		out[i] = FaultClass(i)
	}
	return out
}

// String implements fmt.Stringer.
func (c FaultClass) String() string {
	switch c {
	case FaultSimpleBit:
		return "simple-bit"
	case FaultShortBit:
		return "short-bit"
	case FaultLongBit:
		return "long-bit"
	case FaultFreeList:
		return "free-list"
	case FaultRefClear:
		return "ref-clear"
	default:
		return fmt.Sprintf("fault(%d)", uint8(c))
	}
}

// ParseFaultClass resolves a class name (as printed by String).
func ParseFaultClass(s string) (FaultClass, error) {
	for _, c := range FaultClasses() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("harden: unknown fault class %q", s)
}

// Fault is one scheduled injection: at Cycle (or the first later cycle
// where a target exists), corrupt state per Class, choosing the target
// entry and bit deterministically from Seed.
type Fault struct {
	Class FaultClass
	Cycle uint64
	Seed  uint64
}

// Injector is implemented by register file models that support fault
// injection. Inject attempts to apply f now; ok is false when no
// suitable target exists yet (the pipeline retries next cycle), and
// detail describes exactly what was corrupted.
type Injector interface {
	Inject(f Fault) (detail string, ok bool)
}

// Outcome records one campaign run: what was injected and which checker
// (if any) caught it.
type Outcome struct {
	Fault      Fault
	Injected   bool
	InjectedAt uint64 // cycle the corruption landed
	Detail     string // what was corrupted

	Detected   bool
	Detector   string // "lockstep", "invariant", "watchdog", "readcheck", "result", ""
	DetectedAt uint64 // cycle of detection (0 for end-of-run detectors)
	Err        error  // the structured error, when one was raised
}

// Latency returns the detection latency in cycles (0 when undetected or
// caught only by an end-of-run check).
func (o Outcome) Latency() uint64 {
	if !o.Detected || o.DetectedAt < o.InjectedAt {
		return 0
	}
	return o.DetectedAt - o.InjectedAt
}

// Rand is a small deterministic generator (SplitMix64) used to derive
// injection targets from a campaign seed without depending on global
// randomness.
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Intn returns a value in [0, n); n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("harden: Intn on non-positive bound (caller must check candidates first)")
	}
	return int(r.Next() % uint64(n))
}
