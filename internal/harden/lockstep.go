package harden

import (
	"fmt"

	"carf/internal/isa"
	"carf/internal/vm"
)

// Lockstep co-simulates an independent golden vm.Machine, stepping it
// once per committed instruction and diffing every architectural effect
// the pipeline reports. The pipeline's own run-ahead machine executes at
// fetch (including down speculative paths that later squash), so the
// lockstep model is a second, commit-ordered machine: after n commits it
// holds exactly the architectural state of the first n instructions.
type Lockstep struct {
	golden *vm.Machine
	ring   *CommitRing
	steps  uint64
}

// NewLockstep builds a lockstep checker over a fresh machine loaded with
// prog, keeping up to ringSize recent commits for diagnostics.
func NewLockstep(prog *vm.Program, ringSize int) *Lockstep {
	return &Lockstep{golden: vm.New(prog), ring: NewCommitRing(ringSize)}
}

// Steps returns the number of commits checked so far.
func (l *Lockstep) Steps() uint64 { return l.steps }

// Ring returns the most recent commits, oldest first.
func (l *Lockstep) Ring() []CommitRecord { return l.ring.Snapshot() }

// ArchRegs returns the golden model's integer register state — the
// architecturally correct values after every commit checked so far. The
// sweep diffs the pipeline's retirement-map reconstruction against it.
func (l *Lockstep) ArchRegs() [isa.NumRegs]uint64 { return l.golden.X }

// diverge builds the structured error for the first disagreement.
func (l *Lockstep) diverge(rec CommitRecord, field string, got, want uint64, detail string) *DivergenceError {
	return &DivergenceError{
		Cycle:  rec.Cycle,
		Record: rec,
		Field:  field,
		Got:    got,
		Want:   want,
		Detail: detail,
	}
}

// OnCommit steps the golden model once and diffs it against the commit
// the pipeline just retired. It returns nil when the effects agree, or
// the first divergence (the caller attaches the diagnostic bundle and
// stops the run).
func (l *Lockstep) OnCommit(rec CommitRecord) *DivergenceError {
	defer l.ring.Push(rec)

	if pc := l.golden.PC; pc != rec.PC {
		return l.diverge(rec, "pc", rec.PC, pc, "commit stream left the golden path")
	}
	inst, eff, err := l.golden.Step()
	if err != nil {
		return l.diverge(rec, "execute", 0, 0, fmt.Sprintf("golden model: %v", err))
	}
	l.steps++
	if inst != rec.Inst {
		return l.diverge(rec, "instruction", 0, 0,
			fmt.Sprintf("pipeline committed %q, golden fetched %q", rec.Inst, inst))
	}

	goldenWritesInt := eff.WritesReg && eff.RdClass == isa.RegInt
	if goldenWritesInt != rec.WritesInt {
		return l.diverge(rec, "rd class", b2u(rec.WritesInt), b2u(goldenWritesInt),
			"integer destination presence disagrees")
	}
	if goldenWritesInt {
		if rec.Rd != eff.Rd {
			return l.diverge(rec, "rd", uint64(rec.Rd), uint64(eff.Rd), "")
		}
		if rec.RdValue != eff.RdValue {
			return l.diverge(rec, "rd value", rec.RdValue, eff.RdValue,
				"pipeline oracle value disagrees with golden execution")
		}
		if rec.ArchOK && rec.ArchValue != eff.RdValue {
			return l.diverge(rec, "register file reconstruction", rec.ArchValue, eff.RdValue,
				"sub-file reconstruction disagrees with golden execution")
		}
	}

	if rec.Store != eff.Store {
		return l.diverge(rec, "store", b2u(rec.Store), b2u(eff.Store), "memory effect presence disagrees")
	}
	if eff.Store {
		if rec.Addr != eff.Addr {
			return l.diverge(rec, "store address", rec.Addr, eff.Addr, "")
		}
		if uint64(rec.Size) != uint64(eff.Size) {
			return l.diverge(rec, "store size", uint64(rec.Size), uint64(eff.Size), "")
		}
		if rec.StoreVal != eff.StoreVal {
			return l.diverge(rec, "store value", rec.StoreVal, eff.StoreVal, "")
		}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
