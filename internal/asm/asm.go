// Package asm implements a two-pass text assembler for the R64
// instruction set, so workloads can be written as assembly files instead
// of Go builder calls. The syntax follows familiar RISC conventions:
//
//	; crc.s — comments start with ';', '#', or '//'
//	.org 0x400000          ; code base (optional; default 0x400000)
//	        la   x1, table ; pseudo: limm of a label address
//	        li   x2, 256
//	loop:   ld   x3, 0(x1)
//	        add  x4, x4, x3
//	        addi x1, x1, 8
//	        addi x2, x2, -1
//	        bnez x2, loop
//	        mv   x28, x4
//	        halt
//	.data 0x600000
//	table:  .word 1, 2, 3, 0xdeadbeef
//	        .byte 65, 66
//	        .ascii "hi"
//	        .double 3.5, -0.25
//	        .zero 64
//	.reg sp 0x7ffff7e00000  ; seed a register before execution
//
// Registers are x0..x31 and f0..f31, with the aliases zero (x0),
// sp (x29), gp (x30), and ra (x31). Loads and stores use off(base)
// addressing. Branch and jump targets are labels or numeric offsets
// relative to the next instruction. Pseudo-instructions: li, la, mv,
// j, call, ret, jr, beqz, bnez.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"carf/internal/isa"
	"carf/internal/vm"
)

// DefaultCodeBase is where code is placed unless .org overrides it.
const DefaultCodeBase = 0x40_0000

type srcErr struct {
	line int
	msg  string
}

func (e srcErr) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func errf(line int, format string, args ...any) error {
	return srcErr{line: line, msg: fmt.Sprintf(format, args...)}
}

// item is one parsed instruction statement awaiting symbol resolution.
type item struct {
	line   int
	op     isa.Op
	rd     isa.Reg
	rs1    isa.Reg
	rs2    isa.Reg
	imm    int64
	immSym string // unresolved label (branch target or address literal)
	absSym bool   // immSym resolves to an absolute address (la/li)
}

// symbol is a bound label: data symbols hold absolute addresses, code
// symbols hold offsets from the (late-bound) code base.
type symbol struct {
	value uint64
	code  bool
}

// Assembler holds the two-pass state. Zero value is not usable; call
// Assemble.
type assembler struct {
	name     string
	codeBase uint64
	insts    []item
	dataAddr uint64
	inData   bool
	segments []vm.Segment
	curSeg   *vm.Segment
	symbols  map[string]symbol
	initRegs map[isa.Reg]uint64
	codeOff  uint64 // running code offset (first pass)
}

// Assemble translates R64 assembly source into an executable program.
func Assemble(name, src string) (*vm.Program, error) {
	a := &assembler{
		name:     name,
		codeBase: DefaultCodeBase,
		symbols:  make(map[string]symbol),
		initRegs: make(map[isa.Reg]uint64),
	}
	if err := a.firstPass(src); err != nil {
		return nil, fmt.Errorf("asm %s: %w", name, err)
	}
	code, err := a.secondPass()
	if err != nil {
		return nil, fmt.Errorf("asm %s: %w", name, err)
	}
	prog := vm.NewProgram(name, a.codeBase, code, a.segments, a.initRegs)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm %s: %w", name, err)
	}
	return prog, nil
}

// stripComment removes ';', '#', and '//' comments (not inside quotes).
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' {
			inStr = !inStr
			continue
		}
		if inStr {
			continue
		}
		if c == ';' || c == '#' || (c == '/' && i+1 < len(line) && line[i+1] == '/') {
			return line[:i]
		}
	}
	return line
}

func (a *assembler) firstPass(src string) error {
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		// Peel leading labels ("name:").
		for {
			colon := strings.Index(line, ":")
			if colon < 0 || strings.ContainsAny(line[:colon], " \t\",()") {
				break
			}
			label := line[:colon]
			if !validIdent(label) {
				return errf(lineNo+1, "invalid label %q", label)
			}
			if _, dup := a.symbols[label]; dup {
				return errf(lineNo+1, "duplicate label %q", label)
			}
			if a.inData {
				a.symbols[label] = symbol{value: a.dataAddr}
			} else {
				// Code symbols hold offsets; the base binds in the
				// second pass (so .org may appear after labels).
				a.symbols[label] = symbol{value: a.codeOff, code: true}
			}
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.statement(lineNo+1, line); err != nil {
			return err
		}
	}
	return nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) statement(line int, text string) error {
	mnemonic, rest, _ := strings.Cut(text, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(line, mnemonic, rest)
	}
	if a.inData {
		return errf(line, "instruction %q inside a data section", mnemonic)
	}
	it, err := parseInst(line, mnemonic, rest)
	if err != nil {
		return err
	}
	a.insts = append(a.insts, it)
	a.codeOff += uint64(isa.OpSize(it.op))
	return nil
}

func (a *assembler) directive(line int, name, rest string) error {
	switch name {
	case ".text":
		a.inData = false
		a.curSeg = nil
		return nil
	case ".org":
		if len(a.insts) > 0 {
			return errf(line, ".org must precede all instructions")
		}
		v, err := parseInt(rest)
		if err != nil {
			return errf(line, ".org: %v", err)
		}
		a.codeBase = uint64(v)
		return nil
	case ".data":
		v, err := parseInt(rest)
		if err != nil {
			return errf(line, ".data needs an address: %v", err)
		}
		a.inData = true
		a.dataAddr = uint64(v)
		a.segments = append(a.segments, vm.Segment{Addr: a.dataAddr})
		a.curSeg = &a.segments[len(a.segments)-1]
		return nil
	case ".reg":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return errf(line, ".reg needs: .reg <register> <value>")
		}
		r, fp, err := parseReg(parts[0])
		if err != nil || fp {
			return errf(line, ".reg: bad integer register %q", parts[0])
		}
		v, err := parseInt(parts[1])
		if err != nil {
			return errf(line, ".reg: %v", err)
		}
		a.initRegs[r] = uint64(v)
		return nil
	case ".word", ".byte", ".double", ".ascii", ".zero":
		if !a.inData || a.curSeg == nil {
			return errf(line, "%s outside a .data section", name)
		}
		blob, err := parseData(line, name, rest)
		if err != nil {
			return err
		}
		a.curSeg.Bytes = append(a.curSeg.Bytes, blob...)
		a.dataAddr += uint64(len(blob))
		return nil
	default:
		return errf(line, "unknown directive %q", name)
	}
}

func parseData(line int, name, rest string) ([]byte, error) {
	switch name {
	case ".ascii":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return nil, errf(line, ".ascii needs a quoted string: %v", err)
		}
		return []byte(s), nil
	case ".zero":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return nil, errf(line, ".zero needs a byte count")
		}
		return make([]byte, n), nil
	}
	var out []byte
	for _, field := range splitOperands(rest) {
		switch name {
		case ".word":
			v, err := parseInt(field)
			if err != nil {
				return nil, errf(line, ".word %q: %v", field, err)
			}
			for i := 0; i < 8; i++ {
				out = append(out, byte(uint64(v)>>(8*i)))
			}
		case ".byte":
			v, err := parseInt(field)
			if err != nil || v < -128 || v > 255 {
				return nil, errf(line, ".byte %q out of range", field)
			}
			out = append(out, byte(v))
		case ".double":
			f, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, errf(line, ".double %q: %v", field, err)
			}
			bits := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				out = append(out, byte(bits>>(8*i)))
			}
		}
	}
	if len(out) == 0 {
		return nil, errf(line, "%s needs at least one value", name)
	}
	return out, nil
}

func (a *assembler) secondPass() ([]isa.Inst, error) {
	code := make([]isa.Inst, len(a.insts))
	var off uint64
	for i, it := range a.insts {
		inst := isa.Inst{Op: it.op, Rd: it.rd, Rs1: it.rs1, Rs2: it.rs2, Imm: it.imm}
		if it.immSym != "" {
			sym, ok := a.symbols[it.immSym]
			if !ok {
				return nil, errf(it.line, "undefined symbol %q", it.immSym)
			}
			addr := sym.value
			if sym.code {
				addr += a.codeBase
			}
			if it.absSym {
				inst.Imm = int64(addr)
			} else {
				if !sym.code {
					return nil, errf(it.line, "branch target %q is a data symbol", it.immSym)
				}
				next := a.codeBase + off + uint64(isa.OpSize(it.op))
				inst.Imm = int64(addr) - int64(next)
			}
		}
		// Validate encodability early for a good error message.
		if _, err := isa.Encode(nil, inst); err != nil {
			return nil, errf(it.line, "%v", err)
		}
		code[i] = inst
		off += uint64(inst.Size())
	}
	return code, nil
}
