package asm

import (
	"testing"

	"carf/internal/isa"
)

// FuzzAssemble feeds arbitrary text to the assembler: it must either
// produce a valid program or return an error — never panic — and any
// program it accepts must re-encode cleanly.
func FuzzAssemble(f *testing.F) {
	f.Add("\tli x1, 5\n\thalt\n")
	f.Add("loop: addi x1, x1, -1\n\tbnez x1, loop\n\thalt")
	f.Add(".data 0x600000\nbuf: .word 1, 2\n.text\n\tla x1, buf\n\thalt")
	f.Add(".org 0x500000\n\tld x2, 8(x1)\n\tst x2, -8(sp)\n\thalt")
	f.Add("\t.reg sp 0x7000\n\tfadd f1, f2, f3\n\thalt")
	f.Add("a:\nb: j a\n; comment\n# another\n// third")
	f.Add(".data 0x10\n.ascii \"hi\\n\"\n.byte 255\n.double -1.5\n.zero 3")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if _, err := isa.EncodeProgram(prog.Code); err != nil {
			t.Fatalf("accepted program fails to encode: %v", err)
		}
	})
}
