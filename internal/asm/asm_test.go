package asm

import (
	"strings"
	"testing"

	"carf/internal/isa"
	"carf/internal/vm"
	"carf/internal/workload"
)

// run assembles and executes src, returning the machine.
func run(t *testing.T, src string) *vm.Machine {
	t.Helper()
	prog, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(prog)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m
}

func TestSumLoop(t *testing.T) {
	m := run(t, `
; sum 1..10
        li   x1, 10
        li   x2, 0
loop:   add  x2, x2, x1
        addi x1, x1, -1
        bnez x1, loop
        mv   x28, x2
        halt
`)
	if m.X[28] != 55 {
		t.Errorf("x28 = %d, want 55", m.X[28])
	}
}

func TestDataDirectivesAndLoads(t *testing.T) {
	m := run(t, `
        la   x1, table
        ld   x2, 0(x1)
        ld   x3, 8(x1)
        la   x4, msg
        lbu  x5, 0(x4)
        lbu  x6, 1(x4)
        la   x7, pi
        fld  f1, 0(x7)
        fcvt.l.d x8, f1
        la   x9, pad
        ld   x10, 0(x9)
        halt
.data 0x600000
table:  .word 0x1122, 3
msg:    .ascii "Hi"
        .byte 0
pi:     .double 3.5
pad:    .zero 16
`)
	if m.X[2] != 0x1122 || m.X[3] != 3 {
		t.Errorf("words: %#x %#x", m.X[2], m.X[3])
	}
	if m.X[5] != 'H' || m.X[6] != 'i' {
		t.Errorf("ascii: %c %c", m.X[5], m.X[6])
	}
	if m.X[8] != 3 {
		t.Errorf("double truncated = %d", m.X[8])
	}
	if m.X[10] != 0 {
		t.Errorf("zero fill = %#x", m.X[10])
	}
}

func TestCallRetAndAliases(t *testing.T) {
	m := run(t, `
        .reg sp 0x7ffff7e00000
        li   x1, 21
        call double
        mv   x28, x1
        halt
double: add  x1, x1, x1
        ret
`)
	if m.X[28] != 42 {
		t.Errorf("x28 = %d", m.X[28])
	}
	if m.X[29] != 0x7ffff7e00000 {
		t.Errorf("sp seed = %#x", m.X[29])
	}
}

func TestJumpTableViaJr(t *testing.T) {
	// Build a one-entry jump table at runtime (la of a code label),
	// store it to memory, reload, and jump through it.
	m := run(t, `
        la   x1, tbl
        la   x2, target1
        st   x2, 0(x1)
        ld   x3, 0(x1)
        jr   x3
target0: li x28, 1
        halt
target1: li x28, 2
        halt
.data 0x600100
tbl:    .word 0
`)
	if m.X[28] != 2 {
		t.Errorf("x28 = %d, want handler 2", m.X[28])
	}
}

func TestOrgAndNumericBranch(t *testing.T) {
	prog, err := Assemble("t", `
.org 0x500000
        li  x1, 1
        beq x1, x1, 8   ; skip the next 8-byte instruction
        halt
        li  x28, 7
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry() != 0x500000 {
		t.Errorf("entry = %#x", prog.Entry())
	}
	m := vm.New(prog)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.X[28] != 7 {
		t.Errorf("x28 = %d, want 7 (branch should skip the first halt)", m.X[28])
	}
}

func TestFPArithmetic(t *testing.T) {
	m := run(t, `
        la   x1, vals
        fld  f1, 0(x1)
        fld  f2, 8(x1)
        fadd f3, f1, f2
        fmul f4, f3, f3
        fcvt.l.d x28, f4
        halt
.data 0x600000
vals:   .double 1.5, 2.5
`)
	if m.X[28] != 16 {
		t.Errorf("x28 = %d, want 16", m.X[28])
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   "\tfrobnicate x1, x2\n\thalt",
		"bad register":       "\tadd x1, x2, x99\n\thalt",
		"fp/int mismatch":    "\tadd x1, f2, x3\n\thalt",
		"undefined symbol":   "\tj nowhere\n\thalt",
		"duplicate label":    "a:\tnop\na:\thalt",
		"data branch target": "\tj buf\n\thalt\n.data 0x600000\nbuf: .word 1",
		"instr in data":      ".data 0x600000\n\tadd x1, x2, x3",
		"word outside data":  "\t.word 5",
		"operand count":      "\tadd x1, x2\n\thalt",
		"bad mem operand":    "\tld x1, x2\n\thalt",
		"org after code":     "\tnop\n.org 0x100\n\thalt",
		"byte range":         ".data 0x600000\n\t.byte 300",
		"bad directive":      ".bogus 12",
		"imm out of range":   "\taddi x1, x1, 0x4000000000\n\thalt",
	}
	for name, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("t", "\tnop\n\tnop\n\tbogus x1\n\thalt")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
}

func TestCommentStyles(t *testing.T) {
	m := run(t, `
        li x28, 3   ; semicolon
        nop         # hash
        nop         // slashes
        halt
`)
	if m.X[28] != 3 {
		t.Error("comments broke parsing")
	}
}

// TestKernelRoundTrip is the big property: disassemble every benchmark
// kernel's code to text, reassemble it, and require a bit-identical
// instruction image. This exercises every opcode and operand form the
// kernels use, in both directions.
func TestKernelRoundTrip(t *testing.T) {
	for _, k := range workload.AllKernels(0.02) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			src := Source(k.Prog.Code)
			prog2, err := Assemble(k.Name, src)
			if err != nil {
				t.Fatalf("reassembly failed: %v", err)
			}
			img1, err := isa.EncodeProgram(k.Prog.Code)
			if err != nil {
				t.Fatal(err)
			}
			img2, err := isa.EncodeProgram(prog2.Code)
			if err != nil {
				t.Fatal(err)
			}
			if len(img1) != len(img2) {
				t.Fatalf("image sizes differ: %d vs %d", len(img1), len(img2))
			}
			for i := range img1 {
				if img1[i] != img2[i] {
					t.Fatalf("images differ at byte %d", i)
				}
			}
		})
	}
}

func TestListing(t *testing.T) {
	prog, err := Assemble("t", "\tli x1, 5\n\thalt")
	if err != nil {
		t.Fatal(err)
	}
	out := Listing(prog)
	if !strings.Contains(out, "0x400000") || !strings.Contains(out, "limm x1, 0x5") {
		t.Errorf("listing = %q", out)
	}
}
