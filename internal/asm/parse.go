package asm

import (
	"fmt"
	"strconv"
	"strings"

	"carf/internal/isa"
)

// opByName maps mnemonics to opcodes, built from the ISA's own table.
var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		m[op.Name()] = op
	}
	return m
}()

// Register aliases accepted alongside x0..x31 / f0..f31.
var regAliases = map[string]isa.Reg{
	"zero": 0,
	"sp":   29,
	"gp":   30,
	"ra":   31,
}

// parseReg parses a register operand; fp reports the register file.
func parseReg(tok string) (r isa.Reg, fp bool, err error) {
	tok = strings.ToLower(strings.TrimSpace(tok))
	if alias, ok := regAliases[tok]; ok {
		return alias, false, nil
	}
	if len(tok) < 2 || (tok[0] != 'x' && tok[0] != 'f') {
		return 0, false, fmt.Errorf("bad register %q", tok)
	}
	n, convErr := strconv.Atoi(tok[1:])
	if convErr != nil || n < 0 || n >= isa.NumRegs {
		return 0, false, fmt.Errorf("bad register %q", tok)
	}
	return isa.Reg(n), tok[0] == 'f', nil
}

// needReg parses a register and checks it belongs to the required file.
func needReg(line int, tok string, class isa.RegClass) (isa.Reg, error) {
	r, fp, err := parseReg(tok)
	if err != nil {
		return 0, errf(line, "%v", err)
	}
	if fp != (class == isa.RegFP) {
		want := "integer"
		if class == isa.RegFP {
			want = "floating-point"
		}
		return 0, errf(line, "register %q is not a %s register", tok, want)
	}
	return r, nil
}

// parseInt parses decimal or 0x hex integers, allowing '_' separators
// and a leading '-'.
func parseInt(tok string) (int64, error) {
	tok = strings.ReplaceAll(strings.TrimSpace(tok), "_", "")
	if tok == "" {
		return 0, fmt.Errorf("empty integer")
	}
	neg := false
	if tok[0] == '-' {
		neg = true
		tok = tok[1:]
	} else if tok[0] == '+' {
		tok = tok[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(strings.ToLower(tok), "0x") {
		v, err = strconv.ParseUint(tok[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(tok, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", tok)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// splitOperands splits a comma-separated operand list, trimming spaces.
func splitOperands(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseMem parses "off(base)" or "(base)" addressing.
func parseMem(line int, tok string) (base isa.Reg, off int64, err error) {
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, errf(line, "bad memory operand %q (want off(base))", tok)
	}
	if offTok := strings.TrimSpace(tok[:open]); offTok != "" {
		off, err = parseInt(offTok)
		if err != nil {
			return 0, 0, errf(line, "bad displacement in %q", tok)
		}
	}
	base, err = needReg(line, tok[open+1:len(tok)-1], isa.RegInt)
	return base, off, err
}

// target interprets a control-flow target operand: a numeric offset
// (relative to the next instruction) or a label.
func target(it *item, tok string) {
	if v, err := parseInt(tok); err == nil {
		it.imm = v
		return
	}
	it.immSym = tok
}

// wantOps checks the operand count.
func wantOps(line int, mnemonic string, ops []string, n int) error {
	if len(ops) != n {
		return errf(line, "%s takes %d operand(s), got %d", mnemonic, n, len(ops))
	}
	return nil
}

// parseInst translates one instruction statement (including pseudo
// instructions) into an item.
func parseInst(line int, mnemonic, rest string) (item, error) {
	ops := splitOperands(rest)
	it := item{line: line}

	// Pseudo-instructions first.
	switch mnemonic {
	case "li", "la":
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.op, it.rd = isa.LIMM, rd
		if v, err := parseInt(ops[1]); err == nil {
			it.imm = v
		} else {
			it.immSym, it.absSym = ops[1], true
		}
		return it, nil
	case "mv":
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		rs, err := needReg(line, ops[1], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.op, it.rd, it.rs1 = isa.ADDI, rd, rs
		return it, nil
	case "j", "call":
		if err := wantOps(line, mnemonic, ops, 1); err != nil {
			return it, err
		}
		it.op = isa.JAL
		if mnemonic == "call" {
			it.rd = 31
		}
		target(&it, ops[0])
		return it, nil
	case "ret":
		if err := wantOps(line, mnemonic, ops, 0); err != nil {
			return it, err
		}
		it.op, it.rs1 = isa.JALR, 31
		return it, nil
	case "jr":
		if err := wantOps(line, mnemonic, ops, 1); err != nil {
			return it, err
		}
		rs, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.op, it.rs1 = isa.JALR, rs
		return it, nil
	case "beqz", "bnez":
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		rs, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.op, it.rs1 = isa.BEQ, rs
		if mnemonic == "bnez" {
			it.op = isa.BNE
		}
		target(&it, ops[1])
		return it, nil
	}

	op, ok := opByName[mnemonic]
	if !ok {
		return it, errf(line, "unknown instruction %q", mnemonic)
	}
	it.op = op

	switch {
	case op == isa.NOP || op == isa.HALT:
		return it, wantOps(line, mnemonic, ops, 0)

	case op == isa.LIMM:
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.rd = rd
		if v, err := parseInt(ops[1]); err == nil {
			it.imm = v
		} else {
			it.immSym, it.absSym = ops[1], true
		}
		return it, nil

	case op.IsLoad():
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], op.RdClass())
		if err != nil {
			return it, err
		}
		base, off, err := parseMem(line, ops[1])
		if err != nil {
			return it, err
		}
		it.rd, it.rs1, it.imm = rd, base, off
		return it, nil

	case op.IsStore():
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		data, err := needReg(line, ops[0], op.Rs2Class())
		if err != nil {
			return it, err
		}
		base, off, err := parseMem(line, ops[1])
		if err != nil {
			return it, err
		}
		it.rs2, it.rs1, it.imm = data, base, off
		return it, nil

	case op.IsBranch():
		if err := wantOps(line, mnemonic, ops, 3); err != nil {
			return it, err
		}
		rs1, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		rs2, err := needReg(line, ops[1], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.rs1, it.rs2 = rs1, rs2
		target(&it, ops[2])
		return it, nil

	case op == isa.JAL:
		if err := wantOps(line, mnemonic, ops, 2); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.rd = rd
		target(&it, ops[1])
		return it, nil

	case op == isa.JALR:
		if len(ops) != 2 && len(ops) != 3 {
			return it, errf(line, "jalr takes rd, rs1[, imm]")
		}
		rd, err := needReg(line, ops[0], isa.RegInt)
		if err != nil {
			return it, err
		}
		rs1, err := needReg(line, ops[1], isa.RegInt)
		if err != nil {
			return it, err
		}
		it.rd, it.rs1 = rd, rs1
		if len(ops) == 3 {
			v, err := parseInt(ops[2])
			if err != nil {
				return it, errf(line, "jalr immediate: %v", err)
			}
			it.imm = v
		}
		return it, nil

	case op.HasImm(): // register-immediate ALU
		if err := wantOps(line, mnemonic, ops, 3); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], op.RdClass())
		if err != nil {
			return it, err
		}
		rs1, err := needReg(line, ops[1], op.Rs1Class())
		if err != nil {
			return it, err
		}
		v, err := parseInt(ops[2])
		if err != nil {
			return it, errf(line, "%s immediate: %v", mnemonic, err)
		}
		it.rd, it.rs1, it.imm = rd, rs1, v
		return it, nil

	default: // register-form ALU / FP
		n := 1 // rd
		if op.Rs1Class() != isa.RegNone {
			n++
		}
		if op.Rs2Class() != isa.RegNone {
			n++
		}
		if err := wantOps(line, mnemonic, ops, n); err != nil {
			return it, err
		}
		rd, err := needReg(line, ops[0], op.RdClass())
		if err != nil {
			return it, err
		}
		it.rd = rd
		idx := 1
		if op.Rs1Class() != isa.RegNone {
			rs1, err := needReg(line, ops[idx], op.Rs1Class())
			if err != nil {
				return it, err
			}
			it.rs1 = rs1
			idx++
		}
		if op.Rs2Class() != isa.RegNone {
			rs2, err := needReg(line, ops[idx], op.Rs2Class())
			if err != nil {
				return it, err
			}
			it.rs2 = rs2
		}
		return it, nil
	}
}
