package asm

import (
	"fmt"
	"strings"

	"carf/internal/isa"
	"carf/internal/vm"
)

// Source renders an instruction sequence as reassemblable assembly text:
// one instruction per line, with control-flow targets as numeric offsets
// (labels are not reconstructed). Assembling the output at the same code
// base reproduces the identical encoding — the round-trip property the
// tests rely on.
func Source(code []isa.Inst) string {
	var b strings.Builder
	for _, inst := range code {
		fmt.Fprintf(&b, "\t%s\n", inst.String())
	}
	return b.String()
}

// Listing renders a program with addresses, for humans:
//
//	0x400000:  limm x1, 0x5542000000
//	0x400010:  ld x2, 0(x1)
func Listing(prog *vm.Program) string {
	var b strings.Builder
	for i, inst := range prog.Code {
		fmt.Fprintf(&b, "%#8x:  %s\n", prog.AddrOf(i), inst.String())
	}
	return b.String()
}
