// Package batch runs many independent cycle-accurate simulations in
// lockstep on one goroutine. Submitters (scheduler workers) park their
// simulation with Run and block; a single driver goroutine repeatedly
// steps every parked simulation one time slice at a time. Compared to
// running each simulation on its own goroutine, the driver keeps a
// bounded working set of hot simulator state resident and removes the
// scheduler-point churn of many goroutines leapfrogging each other on
// few cores.
//
// Correctness rests entirely on the simulator's RunChunk contract
// (pipeline.CPU.RunChunk): the cycle sequence is identical however it
// is sliced, so every statistic a batched run reports is bit-identical
// to the scalar path. The golden differential suites enforce this.
package batch

import (
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"sync"
)

// Slice is the lockstep round length in cycles. One round steps every
// active lane Slice cycles before returning to the first. The value
// trades locality (longer runs per lane) against batch formation lag
// (a new submission waits at most one round to join); it is at least
// the pipeline's interrupt-poll mask so cancellation latency does not
// regress versus the scalar loop.
const Slice = 4096

// Sim is one resumable simulation. pipeline.CPU implements it.
type Sim interface {
	// RunChunk advances up to budget cycles and reports whether the
	// simulation completed. A non-nil error is terminal.
	RunChunk(budget int64) (done bool, err error)
}

// Executor steps up to width parked simulations in lockstep rounds.
// The zero Executor is not usable; call NewExecutor.
type Executor struct {
	width int

	mu      sync.Mutex
	queue   []*lane
	driving bool
}

type lane struct {
	sim  Sim
	done chan error
}

// NewExecutor returns an executor batching up to width simulations
// (width < 1 is treated as 1).
func NewExecutor(width int) *Executor {
	if width < 1 {
		width = 1
	}
	return &Executor{width: width}
}

// Width reports the executor's lane bound.
func (e *Executor) Width() int { return e.width }

// Label names this executor's engine for provenance ("batch<width>").
func (e *Executor) Label() string { return fmt.Sprintf("batch%d", e.width) }

// Run parks s in the executor and blocks until it completes, returning
// the terminal error from RunChunk (nil on normal completion). The
// caller owns s before Run and again after Run returns; the channel
// handoff orders driver writes before the caller's Finalize, so the
// race detector sees the transfer. Cancellation is the simulation's
// own concern (an interrupt hook returning an error ends the run).
func (e *Executor) Run(s Sim) error {
	ln := &lane{sim: s, done: make(chan error, 1)}
	e.mu.Lock()
	e.queue = append(e.queue, ln)
	if !e.driving {
		// Lazily start a driver; it exits when the queue drains.
		e.driving = true
		go e.drive()
	}
	e.mu.Unlock()
	return <-ln.done
}

// drive is the lockstep loop: refill active lanes from the queue up to
// width, step each one Slice cycles, retire finished lanes, repeat.
func (e *Executor) drive() {
	var active []*lane
	for {
		e.mu.Lock()
		for len(active) < e.width && len(e.queue) > 0 {
			active = append(active, e.queue[0])
			e.queue[0] = nil
			e.queue = e.queue[1:]
		}
		if len(active) == 0 {
			e.driving = false
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()

		kept := active[:0]
		for _, ln := range active {
			done, err := ln.sim.RunChunk(Slice)
			if done {
				ln.done <- err
			} else {
				kept = append(kept, ln)
			}
		}
		for i := len(kept); i < len(active); i++ {
			active[i] = nil
		}
		active = kept
	}
}

// EnvVar selects the process-default batch width for simulation runs:
// unset or <= 1 means the scalar loop, N >= 2 means lockstep batches of
// N. Commands (carfstudy, carfserve, carfbench) inherit it without
// flags of their own.
const EnvVar = "CARF_BATCH"

// MaxEnvWidth caps EnvVar: each lane in a lockstep batch parks a full
// simulation (pipeline state + goroutine), so widths beyond this are a
// typo ("4096" for "4"), not a plan.
const MaxEnvWidth = 1024

// EnvWidth reads EnvVar. Malformed or out-of-range values never
// silently misbehave: they fall back to scalar (1) — or clamp to
// MaxEnvWidth — with a logged warning saying what was rejected.
func EnvWidth() int {
	return envWidth(os.Getenv(EnvVar), slog.Default())
}

// envWidth is EnvWidth with its inputs injected, for tests.
func envWidth(v string, log *slog.Logger) int {
	if v == "" {
		return 1
	}
	n, err := strconv.Atoi(v)
	switch {
	case err != nil:
		log.Warn("batch: ignoring malformed "+EnvVar+" (want an integer width); running scalar",
			"value", v, "err", err)
		return 1
	case n < 1:
		log.Warn("batch: ignoring non-positive "+EnvVar+"; running scalar", "value", v)
		return 1
	case n > MaxEnvWidth:
		log.Warn("batch: clamping oversized "+EnvVar, "value", v, "max", MaxEnvWidth)
		return MaxEnvWidth
	}
	return n
}

var (
	sharedMu sync.Mutex
	shared   = map[int]*Executor{}
)

// Shared returns the process-wide executor for the given width,
// creating it on first use. Sharing one executor per width lets every
// concurrently-running study contribute lanes to the same batches.
func Shared(width int) *Executor {
	if width < 1 {
		width = 1
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if e, ok := shared[width]; ok {
		return e
	}
	e := NewExecutor(width)
	shared[width] = e
	return e
}
