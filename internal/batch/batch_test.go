package batch

import (
	"bytes"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeSim completes after a fixed number of cycles and records how the
// executor sliced it.
type fakeSim struct {
	remaining int64
	chunks    []int64
	fail      error // returned when the sim would complete
}

func (f *fakeSim) RunChunk(budget int64) (bool, error) {
	f.chunks = append(f.chunks, budget)
	if f.remaining > budget {
		f.remaining -= budget
		return false, nil
	}
	f.remaining = 0
	return true, f.fail
}

func TestRunCompletesAllLanes(t *testing.T) {
	e := NewExecutor(4)
	var wg sync.WaitGroup
	sims := make([]*fakeSim, 16)
	for i := range sims {
		sims[i] = &fakeSim{remaining: int64(i+1) * 3000}
		wg.Add(1)
		go func(s *fakeSim) {
			defer wg.Done()
			if err := e.Run(s); err != nil {
				t.Errorf("Run: %v", err)
			}
		}(sims[i])
	}
	wg.Wait()
	for i, s := range sims {
		if s.remaining != 0 {
			t.Errorf("sim %d not drained", i)
		}
		for _, c := range s.chunks {
			if c != Slice {
				t.Errorf("sim %d stepped with budget %d, want %d", i, c, Slice)
			}
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.driving || len(e.queue) != 0 {
		t.Error("driver did not exit after draining")
	}
}

func TestRunPropagatesError(t *testing.T) {
	e := NewExecutor(2)
	want := errors.New("boom")
	if err := e.Run(&fakeSim{remaining: 100, fail: want}); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := e.Run(&fakeSim{remaining: 100}); err != nil {
		t.Fatalf("executor unusable after a lane error: %v", err)
	}
}

// TestSingleDriver pins the lockstep property: RunChunk calls never
// overlap, whatever the submission concurrency.
func TestSingleDriver(t *testing.T) {
	e := NewExecutor(8)
	var inStep atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Run(&guardSim{n: 5, inStep: &inStep, maxSeen: &maxSeen})
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got != 1 {
		t.Fatalf("observed %d concurrent RunChunk calls, want 1", got)
	}
}

type guardSim struct {
	n       int
	inStep  *atomic.Int32
	maxSeen *atomic.Int32
}

func (g *guardSim) RunChunk(int64) (bool, error) {
	cur := g.inStep.Add(1)
	defer g.inStep.Add(-1)
	for {
		seen := g.maxSeen.Load()
		if cur <= seen || g.maxSeen.CompareAndSwap(seen, cur) {
			break
		}
	}
	g.n--
	return g.n <= 0, nil
}

func TestEnvWidth(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want int
		warn bool // a rejected/clamped value must say so
	}{
		{"", 1, false},
		{"1", 1, false},
		{"8", 8, false},
		{"1024", 1024, false},
		{"0", 1, true},
		{"-3", 1, true},
		{"junk", 1, true},
		{"4.5", 1, true},
		{" 8", 1, true},
		{"99999999999999999999", 1, true}, // overflows int: malformed, not huge
		{"4096", MaxEnvWidth, true},       // oversized: clamped, not ignored
	} {
		var buf bytes.Buffer
		log := slog.New(slog.NewTextHandler(&buf, nil))
		if got := envWidth(tc.val, log); got != tc.want {
			t.Errorf("envWidth(%q) = %d, want %d", tc.val, got, tc.want)
		}
		if warned := bytes.Contains(buf.Bytes(), []byte(EnvVar)); warned != tc.warn {
			t.Errorf("envWidth(%q) warned=%v, want %v (log: %s)", tc.val, warned, tc.warn, buf.String())
		}
		// The env-reading wrapper must agree with the injected core.
		t.Setenv(EnvVar, tc.val)
		if got := EnvWidth(); got != tc.want {
			t.Errorf("EnvWidth(%q) = %d, want %d", tc.val, got, tc.want)
		}
	}
}

func TestSharedReuse(t *testing.T) {
	if Shared(3) != Shared(3) {
		t.Error("Shared(3) not a singleton")
	}
	if Shared(3) == Shared(5) {
		t.Error("distinct widths share an executor")
	}
	if Shared(0).Width() != 1 {
		t.Error("width floor not applied")
	}
}
