package isa

import (
	"bytes"
	"testing"
)

// FuzzDecodeEncode feeds arbitrary bytes to the decoder: it must either
// reject them or produce an instruction that re-encodes and re-decodes
// to the same thing — never panic, never lose information. (Exact byte
// round-trips are not required: don't-care bits in the encoding, such as
// the imm field of a register-register op, decode to zero.)
func FuzzDecodeEncode(f *testing.F) {
	seed := []Inst{
		{Op: ADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: LIMM, Rd: 7, Imm: -1},
		{Op: LD, Rd: 2, Rs1: 1, Imm: 8},
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: -16},
		{Op: HALT},
		{Op: ADDI, Rd: 31, Rs1: 31, Imm: immMax},
		{Op: ADDI, Rd: 31, Rs1: 31, Imm: immMin},
	}
	for _, inst := range seed {
		b, err := Encode(nil, inst)
		if err != nil {
			f.Fatalf("seed %v: %v", inst, err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re, err := Encode(nil, inst)
		if err != nil {
			t.Fatalf("decoded instruction %v fails to encode: %v", inst, err)
		}
		if len(re) != n {
			t.Fatalf("re-encoding %v produced %d bytes, decode consumed %d", inst, len(re), n)
		}
		inst2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %v fails to decode: %v", inst, err)
		}
		if inst2 != inst || n2 != n {
			t.Fatalf("round trip changed the instruction: %v (%d bytes) -> %v (%d bytes)", inst, n, inst2, n2)
		}
		// Canonical encodings (where the don't-care bits are zero) must
		// round-trip byte-exactly.
		re2, err := Encode(nil, inst2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("canonical encoding unstable: %x vs %x (%v)", re, re2, err)
		}
	})
}
