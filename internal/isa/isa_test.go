package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op != NOP && opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", op)
		}
		if !op.Valid() {
			t.Errorf("opcode %d (%s) not valid", op, op.Name())
		}
	}
	if Op(NumOps).Valid() {
		t.Errorf("opcode %d past the table reports valid", NumOps)
	}
}

func TestOpClassConsistency(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		info := opTable[op]
		switch info.class {
		case ClassLoad:
			if info.rd == RegNone {
				t.Errorf("%s: load without destination", op)
			}
			if !info.hasImm {
				t.Errorf("%s: load without displacement", op)
			}
			if info.rs1 != RegInt {
				t.Errorf("%s: load base register must be integer", op)
			}
		case ClassStore:
			if info.rd != RegNone {
				t.Errorf("%s: store with destination", op)
			}
			if info.rs1 != RegInt {
				t.Errorf("%s: store base register must be integer", op)
			}
			if info.rs2 == RegNone {
				t.Errorf("%s: store without data source", op)
			}
		case ClassBranch:
			if info.rd != RegNone {
				t.Errorf("%s: conditional branch with destination", op)
			}
			if !info.hasImm {
				t.Errorf("%s: branch without displacement", op)
			}
		}
		if op.IsMem() != (op.IsLoad() || op.IsStore()) {
			t.Errorf("%s: IsMem inconsistent", op)
		}
		if op.IsControl() != (op.IsBranch() || op.IsJump()) {
			t.Errorf("%s: IsControl inconsistent", op)
		}
		if op.WritesInt() && op.WritesFP() {
			t.Errorf("%s: writes both register files", op)
		}
	}
}

func TestOpNamesUnique(t *testing.T) {
	seen := make(map[string]Op)
	for op := Op(0); op < Op(NumOps); op++ {
		name := op.Name()
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share mnemonic %q", prev, op, name)
		}
		seen[name] = op
	}
}

// randInst produces a random, encodable instruction.
func randInst(r *rand.Rand) Inst {
	op := Op(r.Intn(NumOps))
	inst := Inst{Op: op}
	if op.RdClass() != RegNone {
		inst.Rd = Reg(r.Intn(NumRegs))
	}
	if op.Rs1Class() != RegNone {
		inst.Rs1 = Reg(r.Intn(NumRegs))
	}
	if op.Rs2Class() != RegNone {
		inst.Rs2 = Reg(r.Intn(NumRegs))
	}
	if op == LIMM {
		inst.Imm = int64(r.Uint64())
	} else if op.HasImm() {
		inst.Imm = r.Int63n(immMax-immMin) + immMin
	}
	return inst
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randInst(r)
		buf, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		if len(buf) != EncodedLen(in) {
			t.Fatalf("%v: encoded %d bytes, EncodedLen says %d", in, len(buf), EncodedLen(in))
		}
		out, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: decode consumed %d of %d bytes", in, n, len(buf))
		}
		// Normalize: unused fields decode as zero.
		want := in
		if !want.Op.HasImm() {
			want.Imm = 0
		}
		if out != want {
			t.Fatalf("round trip mismatch: in=%+v out=%+v", want, out)
		}
	}
}

func TestEncodeDecodeProgramRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	prog := make([]Inst, 500)
	for i := range prog {
		prog[i] = randInst(r)
		if !prog[i].Op.HasImm() {
			prog[i].Imm = 0
		}
	}
	image, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(image)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("got %d instructions back, want %d", len(back), len(prog))
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Fatalf("instruction %d: got %+v want %+v", i, back[i], prog[i])
		}
	}
}

func TestEncodeImmRange(t *testing.T) {
	if _, err := Encode(nil, Inst{Op: ADDI, Rd: 1, Rs1: 1, Imm: immMax}); err != nil {
		t.Errorf("imm at max should encode: %v", err)
	}
	if _, err := Encode(nil, Inst{Op: ADDI, Rd: 1, Rs1: 1, Imm: immMax + 1}); err == nil {
		t.Error("imm above max should fail")
	}
	if _, err := Encode(nil, Inst{Op: ADDI, Rd: 1, Rs1: 1, Imm: immMin}); err != nil {
		t.Errorf("imm at min should encode: %v", err)
	}
	if _, err := Encode(nil, Inst{Op: ADDI, Rd: 1, Rs1: 1, Imm: immMin - 1}); err == nil {
		t.Error("imm below min should fail")
	}
	// LIMM takes any 64-bit literal.
	if _, err := Encode(nil, Inst{Op: LIMM, Rd: 1, Imm: -1}); err != nil {
		t.Errorf("limm with full-width literal should encode: %v", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(nil, Inst{Op: Op(200)}); err == nil {
		t.Error("invalid opcode should fail to encode")
	}
	if _, err := Encode(nil, Inst{Op: ADD, Rd: NumRegs}); err == nil {
		t.Error("out-of-range register should fail to encode")
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer should fail to decode")
	}
	bad := make([]byte, 8)
	bad[0] = 250 // invalid opcode
	if _, _, err := Decode(bad); err == nil {
		t.Error("invalid opcode should fail to decode")
	}
	// LIMM header with missing literal word.
	buf, err := Encode(nil, Inst{Op: LIMM, Rd: 3, Imm: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(buf[:8]); err == nil {
		t.Error("truncated limm should fail to decode")
	}
}

// Property: the sign-extension performed during decode is the identity on
// the encodable range.
func TestImmSignExtensionProperty(t *testing.T) {
	f := func(raw int64) bool {
		imm := raw % (immMax + 1)
		inst := Inst{Op: ADDI, Rd: 5, Rs1: 6, Imm: imm}
		buf, err := Encode(nil, inst)
		if err != nil {
			return false
		}
		out, _, err := Decode(buf)
		return err == nil && out.Imm == imm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add x1, x2, x3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -4}, "addi x1, x2, -4"},
		{Inst{Op: LIMM, Rd: 7, Imm: 0x10}, "limm x7, 0x10"},
		{Inst{Op: LD, Rd: 4, Rs1: 5, Imm: 16}, "ld x4, 16(x5)"},
		{Inst{Op: ST, Rs1: 5, Rs2: 6, Imm: -8}, "st x6, -8(x5)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 32}, "beq x1, x2, 32"},
		{Inst{Op: JAL, Rd: 31, Imm: 100}, "jal x31, 100"},
		{Inst{Op: JALR, Rd: 0, Rs1: 31}, "jalr x0, x31, 0"},
		{Inst{Op: FADD, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Inst{Op: FLD, Rd: 2, Rs1: 9, Imm: 8}, "fld f2, 8(x9)"},
		{Inst{Op: FSD, Rs1: 9, Rs2: 2, Imm: 8}, "fsd f2, 8(x9)"},
		{Inst{Op: FCVTLD, Rd: 3, Rs1: 4}, "fcvt.l.d x3, f4"},
		{Inst{Op: NOP}, "nop"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.inst, got, c.want)
		}
	}
}

func TestDisassemblyCoversAllOps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for op := Op(0); op < Op(NumOps); op++ {
		inst := randInst(r)
		inst.Op = op
		s := inst.String()
		if s == "" || strings.Contains(s, "op(") {
			t.Errorf("%s: bad disassembly %q", op.Name(), s)
		}
		if !strings.HasPrefix(s, op.Name()) {
			t.Errorf("%s: disassembly %q does not start with mnemonic", op.Name(), s)
		}
	}
}

func TestOpSize(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		want := int64(8)
		if op == LIMM {
			want = 16
		}
		if got := OpSize(op); got != want {
			t.Errorf("OpSize(%s) = %d, want %d", op, got, want)
		}
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// and anything it accepts must re-encode to the same bytes.
func FuzzDecode(f *testing.F) {
	seed, _ := Encode(nil, Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3})
	f.Add(seed)
	limm, _ := Encode(nil, Inst{Op: LIMM, Rd: 7, Imm: -12345})
	f.Add(limm)
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, n, err := Decode(data)
		if err != nil {
			return
		}
		// Unused fields are don't-care bits on decode, so raw bytes need
		// not round-trip; the decoded *instruction* must be a fixed
		// point: Decode(Encode(Decode(x))) == Decode(x).
		back, err := Encode(nil, inst)
		if err != nil {
			t.Fatalf("decoded instruction %v does not re-encode: %v", inst, err)
		}
		if len(back) != n {
			t.Fatalf("decode consumed %d bytes but re-encoding is %d", n, len(back))
		}
		again, n2, err := Decode(back)
		if err != nil {
			t.Fatalf("re-encoded bytes fail to decode: %v", err)
		}
		if n2 != n || again != inst {
			t.Fatalf("not a fixed point: %+v -> %+v", inst, again)
		}
	})
}
