// Package isa defines R64, the 64-bit load/store instruction set executed
// by the simulator. R64 is a small RISC ISA in the Alpha/MIPS64 tradition:
// 32 integer registers (x0 hardwired to zero), 32 floating-point
// registers, register+displacement addressing, and compare-and-branch
// control flow.
//
// Instructions use a fixed 8-byte encoding (16 bytes for LIMM, which
// carries a full 64-bit literal in a trailing word). The wide encoding is
// a simulator convenience — it leaves room for 38-bit displacements and a
// one-word decoder — and is documented in DESIGN.md; none of the paper's
// register-file metrics depend on code density.
package isa

import "fmt"

// Reg names an architectural register. Whether it is an integer or a
// floating-point register is determined by the instruction's operand
// classes, not by the number itself.
type Reg uint8

// NumRegs is the number of architectural registers in each register file
// (integer and floating point).
const NumRegs = 32

// Zero is the hardwired-zero integer register.
const Zero Reg = 0

// RegClass says which register file an operand field addresses.
type RegClass uint8

const (
	RegNone RegClass = iota // field unused
	RegInt
	RegFP
)

// Op is an R64 opcode.
type Op uint8

// Integer ALU, register-register.
const (
	NOP Op = iota
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	MULHU
	DIV
	REM

	// Integer ALU, register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU
	LIMM // load 64-bit literal into rd

	// Memory. Effective address is rs1 + imm.
	LD  // load 64-bit
	LW  // load 32-bit, sign-extended
	LWU // load 32-bit, zero-extended
	LB  // load 8-bit, sign-extended
	LBU // load 8-bit, zero-extended
	ST  // store 64-bit
	SW  // store 32-bit
	SB  // store 8-bit

	// Control transfer. Branch/jump displacements are byte offsets
	// relative to the address of the *next* instruction.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL  // rd <- return address; PC <- PC+size+imm
	JALR // rd <- return address; PC <- rs1+imm

	// Floating point (IEEE-754 binary64).
	FLD // fp load 64-bit
	FSD // fp store 64-bit
	FADD
	FSUB
	FMUL
	FDIV
	FSQRT
	FABS
	FNEG
	FMIN
	FMAX
	FMADD  // rd <- rd + rs1*rs2 (destructive accumulate)
	FCVTDL // fp <- signed int
	FCVTLD // int <- fp (truncated)
	FEQ    // int rd <- (fp rs1 == fp rs2)
	FLT    // int rd <- (fp rs1 < fp rs2)
	FLE    // int rd <- (fp rs1 <= fp rs2)
	FMVXD  // int rd <- raw bits of fp rs1
	FMVDX  // fp rd <- raw bits of int rs1

	HALT // stop the machine

	numOps
)

// NumOps is the number of defined opcodes (useful for table sizing and
// randomized tests).
const NumOps = int(numOps)

// Class is a coarse functional grouping used by the pipeline to steer
// instructions to functional units and queues.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul // multiplier/divider (still latency-1 per Table 1)
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassFPU
	ClassSys
)

type opInfo struct {
	name   string
	class  Class
	rd     RegClass
	rs1    RegClass
	rs2    RegClass
	hasImm bool
}

var opTable = [numOps]opInfo{
	NOP: {"nop", ClassNop, RegNone, RegNone, RegNone, false},

	ADD:   {"add", ClassIntALU, RegInt, RegInt, RegInt, false},
	SUB:   {"sub", ClassIntALU, RegInt, RegInt, RegInt, false},
	AND:   {"and", ClassIntALU, RegInt, RegInt, RegInt, false},
	OR:    {"or", ClassIntALU, RegInt, RegInt, RegInt, false},
	XOR:   {"xor", ClassIntALU, RegInt, RegInt, RegInt, false},
	SLL:   {"sll", ClassIntALU, RegInt, RegInt, RegInt, false},
	SRL:   {"srl", ClassIntALU, RegInt, RegInt, RegInt, false},
	SRA:   {"sra", ClassIntALU, RegInt, RegInt, RegInt, false},
	SLT:   {"slt", ClassIntALU, RegInt, RegInt, RegInt, false},
	SLTU:  {"sltu", ClassIntALU, RegInt, RegInt, RegInt, false},
	MUL:   {"mul", ClassIntMul, RegInt, RegInt, RegInt, false},
	MULHU: {"mulhu", ClassIntMul, RegInt, RegInt, RegInt, false},
	DIV:   {"div", ClassIntMul, RegInt, RegInt, RegInt, false},
	REM:   {"rem", ClassIntMul, RegInt, RegInt, RegInt, false},

	ADDI:  {"addi", ClassIntALU, RegInt, RegInt, RegNone, true},
	ANDI:  {"andi", ClassIntALU, RegInt, RegInt, RegNone, true},
	ORI:   {"ori", ClassIntALU, RegInt, RegInt, RegNone, true},
	XORI:  {"xori", ClassIntALU, RegInt, RegInt, RegNone, true},
	SLLI:  {"slli", ClassIntALU, RegInt, RegInt, RegNone, true},
	SRLI:  {"srli", ClassIntALU, RegInt, RegInt, RegNone, true},
	SRAI:  {"srai", ClassIntALU, RegInt, RegInt, RegNone, true},
	SLTI:  {"slti", ClassIntALU, RegInt, RegInt, RegNone, true},
	SLTIU: {"sltiu", ClassIntALU, RegInt, RegInt, RegNone, true},
	LIMM:  {"limm", ClassIntALU, RegInt, RegNone, RegNone, true},

	LD:  {"ld", ClassLoad, RegInt, RegInt, RegNone, true},
	LW:  {"lw", ClassLoad, RegInt, RegInt, RegNone, true},
	LWU: {"lwu", ClassLoad, RegInt, RegInt, RegNone, true},
	LB:  {"lb", ClassLoad, RegInt, RegInt, RegNone, true},
	LBU: {"lbu", ClassLoad, RegInt, RegInt, RegNone, true},
	ST:  {"st", ClassStore, RegNone, RegInt, RegInt, true},
	SW:  {"sw", ClassStore, RegNone, RegInt, RegInt, true},
	SB:  {"sb", ClassStore, RegNone, RegInt, RegInt, true},

	BEQ:  {"beq", ClassBranch, RegNone, RegInt, RegInt, true},
	BNE:  {"bne", ClassBranch, RegNone, RegInt, RegInt, true},
	BLT:  {"blt", ClassBranch, RegNone, RegInt, RegInt, true},
	BGE:  {"bge", ClassBranch, RegNone, RegInt, RegInt, true},
	BLTU: {"bltu", ClassBranch, RegNone, RegInt, RegInt, true},
	BGEU: {"bgeu", ClassBranch, RegNone, RegInt, RegInt, true},
	JAL:  {"jal", ClassJump, RegInt, RegNone, RegNone, true},
	JALR: {"jalr", ClassJump, RegInt, RegInt, RegNone, true},

	FLD:    {"fld", ClassLoad, RegFP, RegInt, RegNone, true},
	FSD:    {"fsd", ClassStore, RegNone, RegInt, RegFP, true},
	FADD:   {"fadd", ClassFPU, RegFP, RegFP, RegFP, false},
	FSUB:   {"fsub", ClassFPU, RegFP, RegFP, RegFP, false},
	FMUL:   {"fmul", ClassFPU, RegFP, RegFP, RegFP, false},
	FDIV:   {"fdiv", ClassFPU, RegFP, RegFP, RegFP, false},
	FSQRT:  {"fsqrt", ClassFPU, RegFP, RegFP, RegNone, false},
	FABS:   {"fabs", ClassFPU, RegFP, RegFP, RegNone, false},
	FNEG:   {"fneg", ClassFPU, RegFP, RegFP, RegNone, false},
	FMIN:   {"fmin", ClassFPU, RegFP, RegFP, RegFP, false},
	FMAX:   {"fmax", ClassFPU, RegFP, RegFP, RegFP, false},
	FMADD:  {"fmadd", ClassFPU, RegFP, RegFP, RegFP, false},
	FCVTDL: {"fcvt.d.l", ClassFPU, RegFP, RegInt, RegNone, false},
	FCVTLD: {"fcvt.l.d", ClassFPU, RegInt, RegFP, RegNone, false},
	FEQ:    {"feq", ClassFPU, RegInt, RegFP, RegFP, false},
	FLT:    {"flt", ClassFPU, RegInt, RegFP, RegFP, false},
	FLE:    {"fle", ClassFPU, RegInt, RegFP, RegFP, false},
	FMVXD:  {"fmv.x.d", ClassFPU, RegInt, RegFP, RegNone, false},
	FMVDX:  {"fmv.d.x", ClassFPU, RegFP, RegInt, RegNone, false},

	HALT: {"halt", ClassSys, RegNone, RegNone, RegNone, false},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps && (op == NOP || opTable[op].name != "") }

// Name returns the assembler mnemonic.
func (op Op) Name() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the functional class of the opcode.
func (op Op) Class() Class { return opTable[op].class }

// RdClass returns the register class of the destination field.
func (op Op) RdClass() RegClass { return opTable[op].rd }

// Rs1Class returns the register class of the first source field.
func (op Op) Rs1Class() RegClass { return opTable[op].rs1 }

// Rs2Class returns the register class of the second source field.
func (op Op) Rs2Class() RegClass { return opTable[op].rs2 }

// HasImm reports whether the opcode uses the immediate field.
func (op Op) HasImm() bool { return opTable[op].hasImm }

// IsLoad reports whether the opcode reads data memory.
func (op Op) IsLoad() bool { return opTable[op].class == ClassLoad }

// IsStore reports whether the opcode writes data memory.
func (op Op) IsStore() bool { return opTable[op].class == ClassStore }

// IsMem reports whether the opcode accesses data memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether the opcode is a conditional branch.
func (op Op) IsBranch() bool { return opTable[op].class == ClassBranch }

// IsJump reports whether the opcode is an unconditional control transfer.
func (op Op) IsJump() bool { return opTable[op].class == ClassJump }

// IsControl reports whether the opcode can redirect the PC.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// WritesInt reports whether the opcode writes an integer register. Writes
// to x0 are discarded architecturally but still allocate a destination in
// the rename stage, matching hardware that does not special-case x0 until
// retirement; the workload builder never emits x0 destinations.
func (op Op) WritesInt() bool { return opTable[op].rd == RegInt }

// WritesFP reports whether the opcode writes a floating-point register.
func (op Op) WritesFP() bool { return opTable[op].rd == RegFP }

// String implements fmt.Stringer.
func (op Op) String() string { return op.Name() }

// Inst is one decoded R64 instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Size returns the encoded size of the instruction in bytes.
func (i Inst) Size() int64 { return OpSize(i.Op) }

// OpSize returns the encoded size in bytes of an instruction with the
// given opcode.
func OpSize(op Op) int64 {
	if op == LIMM {
		return 16
	}
	return 8
}

// IsAddressProducer reports whether the instruction computes or carries a
// memory address: loads and stores (whose effective address the
// content-aware file may install in the Short file, §3.2 of the paper).
func (i Inst) IsAddressProducer() bool { return i.Op.IsMem() }

// String disassembles the instruction.
func (i Inst) String() string {
	info := opTable[i.Op]
	pr := func(c RegClass, r Reg) string {
		switch c {
		case RegInt:
			return fmt.Sprintf("x%d", r)
		case RegFP:
			return fmt.Sprintf("f%d", r)
		}
		return ""
	}
	switch {
	case i.Op == NOP || i.Op == HALT:
		return info.name
	case i.Op == LIMM:
		return fmt.Sprintf("%s %s, %#x", info.name, pr(info.rd, i.Rd), uint64(i.Imm))
	case i.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", info.name, pr(info.rd, i.Rd), i.Imm, pr(info.rs1, i.Rs1))
	case i.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", info.name, pr(info.rs2, i.Rs2), i.Imm, pr(info.rs1, i.Rs1))
	case i.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", info.name, pr(info.rs1, i.Rs1), pr(info.rs2, i.Rs2), i.Imm)
	case i.Op == JAL:
		return fmt.Sprintf("%s %s, %d", info.name, pr(info.rd, i.Rd), i.Imm)
	case i.Op == JALR:
		return fmt.Sprintf("%s %s, %s, %d", info.name, pr(info.rd, i.Rd), pr(info.rs1, i.Rs1), i.Imm)
	}
	// Register-form and immediate-form ALU/FP operations.
	s := info.name + " "
	first := true
	add := func(tok string) {
		if !first {
			s += ", "
		}
		s += tok
		first = false
	}
	if info.rd != RegNone {
		add(pr(info.rd, i.Rd))
	}
	if info.rs1 != RegNone {
		add(pr(info.rs1, i.Rs1))
	}
	if info.rs2 != RegNone {
		add(pr(info.rs2, i.Rs2))
	}
	if info.hasImm {
		add(fmt.Sprintf("%d", i.Imm))
	}
	return s
}
