package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding. Every instruction occupies one little-endian 64-bit
// word laid out as
//
//	bits  0..7   opcode
//	bits  8..13  rd
//	bits 14..19  rs1
//	bits 20..25  rs2
//	bits 26..63  imm (38 bits, two's complement)
//
// LIMM carries its 64-bit literal in a second word (the imm field of the
// first word is zero), for a total of 16 bytes.

const (
	immBits = 38
	immMax  = int64(1)<<(immBits-1) - 1
	immMin  = -int64(1) << (immBits - 1)
)

// ErrImmRange is returned (wrapped) when an immediate does not fit the
// 38-bit encoded field.
var ErrImmRange = fmt.Errorf("isa: immediate out of 38-bit range")

// EncodedLen returns the number of bytes Encode would emit for inst.
func EncodedLen(inst Inst) int { return int(OpSize(inst.Op)) }

// Encode appends the binary encoding of inst to dst and returns the
// extended slice. It returns an error for invalid opcodes, register
// fields out of range, or immediates that do not fit (except LIMM, whose
// literal is full 64-bit).
func Encode(dst []byte, inst Inst) ([]byte, error) {
	if !inst.Op.Valid() {
		return dst, fmt.Errorf("isa: encode: invalid opcode %d", inst.Op)
	}
	if inst.Rd >= NumRegs || inst.Rs1 >= NumRegs || inst.Rs2 >= NumRegs {
		return dst, fmt.Errorf("isa: encode %s: register out of range", inst.Op)
	}
	imm := inst.Imm
	if inst.Op == LIMM {
		imm = 0
	} else if inst.Op.HasImm() {
		if imm < immMin || imm > immMax {
			return dst, fmt.Errorf("%w: %s imm=%d", ErrImmRange, inst.Op, imm)
		}
	} else {
		imm = 0
	}
	w := uint64(inst.Op) |
		uint64(inst.Rd)<<8 |
		uint64(inst.Rs1)<<14 |
		uint64(inst.Rs2)<<20 |
		(uint64(imm)&(1<<immBits-1))<<26
	dst = binary.LittleEndian.AppendUint64(dst, w)
	if inst.Op == LIMM {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(inst.Imm))
	}
	return dst, nil
}

// Decode decodes one instruction from the front of b, returning the
// instruction and the number of bytes consumed.
func Decode(b []byte) (Inst, int, error) {
	if len(b) < 8 {
		return Inst{}, 0, fmt.Errorf("isa: decode: short buffer (%d bytes)", len(b))
	}
	w := binary.LittleEndian.Uint64(b)
	op := Op(w & 0xff)
	if !op.Valid() {
		return Inst{}, 0, fmt.Errorf("isa: decode: invalid opcode %d", uint8(op))
	}
	inst := Inst{
		Op:  op,
		Rd:  Reg(w >> 8 & 0x3f),
		Rs1: Reg(w >> 14 & 0x3f),
		Rs2: Reg(w >> 20 & 0x3f),
	}
	if inst.Rd >= NumRegs || inst.Rs1 >= NumRegs || inst.Rs2 >= NumRegs {
		return Inst{}, 0, fmt.Errorf("isa: decode %s: register out of range", op)
	}
	if op == LIMM {
		if len(b) < 16 {
			return Inst{}, 0, fmt.Errorf("isa: decode limm: short buffer (%d bytes)", len(b))
		}
		inst.Imm = int64(binary.LittleEndian.Uint64(b[8:]))
		return inst, 16, nil
	}
	if op.HasImm() {
		raw := w >> 26 & (1<<immBits - 1)
		// Sign-extend from 38 bits.
		inst.Imm = int64(raw<<(64-immBits)) >> (64 - immBits)
	}
	return inst, 8, nil
}

// EncodeProgram encodes a sequence of instructions into one contiguous
// image, as laid out in instruction memory.
func EncodeProgram(insts []Inst) ([]byte, error) {
	var out []byte
	for idx, inst := range insts {
		var err error
		out, err = Encode(out, inst)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", idx, err)
		}
	}
	return out, nil
}

// DecodeProgram decodes a contiguous instruction image back into a slice
// of instructions.
func DecodeProgram(image []byte) ([]Inst, error) {
	var out []Inst
	for off := 0; off < len(image); {
		inst, n, err := Decode(image[off:])
		if err != nil {
			return nil, fmt.Errorf("offset %d: %w", off, err)
		}
		out = append(out, inst)
		off += n
	}
	return out, nil
}
