package telemetry

import (
	"encoding/json"

	"carf/internal/sched"
)

// streamFrameCap bounds the replayable progress frames retained per
// run: a late subscriber sees the most recent window, not the whole
// history (the terminal frame is always retained separately).
const streamFrameCap = 64

// streamCap bounds finished streams retained for replay; older ones
// fall off oldest-first. In-flight streams are never evicted.
const streamCap = 256

// StreamFrame is one SSE message on a per-run /runs/{id}/stream:
// "progress" frames while the run executes, then exactly one "done"
// frame. Runs served without simulating (cache hit, disk hit, join)
// stream a single done frame whose Note says so.
type StreamFrame struct {
	Type  string  `json:"type"` // "progress" | "done"
	TMs   float64 `json:"t_ms"` // milliseconds since the hub started
	ID    uint64  `json:"id"`
	Label string  `json:"label,omitempty"`
	Key   string  `json:"key,omitempty"`

	// progress frames only.
	Progress *sched.Progress `json:"progress,omitempty"`

	// done frames only.
	Outcome   string  `json:"outcome,omitempty"`
	SimWallMs float64 `json:"sim_wall_ms,omitempty"`
	Err       string  `json:"error,omitempty"`
	Note      string  `json:"note,omitempty"` // provenance for frame-less runs
}

// runStream is one run's frame history plus its live followers. All
// access goes through the hub's mutex.
type runStream struct {
	frames   [][]byte // recent progress frames, oldest first
	terminal []byte   // the done frame; non-nil once finished
	subs     map[chan []byte]struct{}
}

// streamOpen creates the per-run stream. Callers hold h.mu.
func (h *Hub) streamOpen(id uint64) {
	h.streams[id] = &runStream{subs: map[chan []byte]struct{}{}}
}

// streamPublish appends a progress frame to the run's history and fans
// it out to live followers (non-blocking; slow followers miss frames
// but always receive the terminal frame via the close path).
func (h *Hub) streamPublish(id uint64, f StreamFrame) {
	payload, err := json.Marshal(f)
	if err != nil {
		return
	}
	h.mu.Lock()
	st := h.streams[id]
	if st == nil || st.terminal != nil {
		h.mu.Unlock()
		return
	}
	st.frames = append(st.frames, payload)
	if len(st.frames) > streamFrameCap {
		st.frames = st.frames[len(st.frames)-streamFrameCap:]
	}
	h.events++
	for ch := range st.subs {
		select {
		case ch <- payload:
		default:
			h.dropped++
		}
	}
	h.mu.Unlock()
}

// streamFinish records the run's terminal frame, ends every follower
// (closing their channels; handlers then read the terminal frame via
// RunTerminal), and applies the finished-stream retention bound.
func (h *Hub) streamFinish(id uint64, f StreamFrame) {
	payload, err := json.Marshal(f)
	if err != nil {
		// The stream must still terminate: synthesize a minimal frame.
		payload = []byte(`{"type":"done"}`)
	}
	h.mu.Lock()
	st := h.streams[id]
	if st == nil || st.terminal != nil {
		h.mu.Unlock()
		return
	}
	st.terminal = payload
	h.events++
	for ch := range st.subs {
		close(ch)
	}
	st.subs = map[chan []byte]struct{}{}
	h.streamOrder = append(h.streamOrder, id)
	for len(h.streamOrder) > streamCap {
		delete(h.streams, h.streamOrder[0])
		h.streamOrder = h.streamOrder[1:]
	}
	h.mu.Unlock()
}

// SubscribeRun attaches to one run's frame stream. It returns the
// replayable history (recent progress frames, plus the terminal frame
// when the run has already finished), a channel of live frames, and a
// cancel function. For a finished run the channel is nil — the replay
// is complete and there is nothing to follow. For an in-flight run the
// channel delivers subsequent progress frames and is closed when the
// run finishes; read the terminal frame with RunTerminal then. ok is
// false for an unknown (or evicted) run id.
func (h *Hub) SubscribeRun(id uint64) (replay [][]byte, ch <-chan []byte, cancel func(), ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.streams[id]
	if st == nil {
		return nil, nil, nil, false
	}
	replay = append([][]byte(nil), st.frames...)
	if st.terminal != nil {
		replay = append(replay, st.terminal)
		return replay, nil, func() {}, true
	}
	c := make(chan []byte, 128)
	st.subs[c] = struct{}{}
	cancel = func() {
		h.mu.Lock()
		if cur := h.streams[id]; cur != nil {
			delete(cur.subs, c)
		}
		h.mu.Unlock()
	}
	return replay, c, cancel, true
}

// RunTerminal returns the run's terminal frame, if it has finished.
func (h *Hub) RunTerminal(id uint64) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.streams[id]
	if st == nil || st.terminal == nil {
		return nil, false
	}
	return st.terminal, true
}
