package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carf/internal/sched"
)

// driveScheduler runs a miss, a hit, and an error through a hub-observed
// scheduler so every endpoint has data to serve.
func driveScheduler(t *testing.T, hub *Hub) *sched.Scheduler {
	t.Helper()
	s := sched.New(2)
	s.SetObserver(hub)
	key := sched.KeyOf("telemetry-test", 1)
	for i := 0; i < 2; i++ { // miss, then hit
		if _, _, err := s.Do(key, "sim/gcd/carf", true, func() (any, error) {
			return 42, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := s.Do(sched.KeyOf("telemetry-test", 2), "sim/bad/carf", true, func() (any, error) {
		return nil, errBoom
	})
	if err == nil {
		t.Fatal("expected error run to fail")
	}
	return s
}

type boomError struct{}

func (boomError) Error() string { return "boom" }

var errBoom = boomError{}

func TestServerHealthz(t *testing.T) {
	sv := NewServer(NewHub(), nil)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q, want ok", doc.Status)
	}
	if doc.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", doc.UptimeSeconds)
	}
}

func TestServerRuns(t *testing.T) {
	hub := NewHub()
	s := driveScheduler(t, hub)
	sv := NewServer(hub, s)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc RunsDocument
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.InFlight) != 0 {
		t.Errorf("in_flight = %v, want empty", doc.InFlight)
	}
	if doc.CompletedTotal != 3 || len(doc.Completed) != 3 {
		t.Fatalf("completed = %d rows / total %d, want 3 / 3", len(doc.Completed), doc.CompletedTotal)
	}
	outcomes := map[string]int{}
	for _, r := range doc.Completed {
		outcomes[r.Outcome]++
		if r.State != "done" {
			t.Errorf("run %d state = %q, want done", r.ID, r.State)
		}
		if r.Key == "" || r.Label == "" {
			t.Errorf("run %d missing correlation fields: %+v", r.ID, r)
		}
	}
	if outcomes["miss"] != 2 || outcomes["hit"] != 1 {
		t.Errorf("outcomes = %v, want 2 miss + 1 hit", outcomes)
	}
	var sawErr bool
	for _, r := range doc.Completed {
		if r.Err == "boom" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Errorf("error run's message not surfaced: %+v", doc.Completed)
	}
	if doc.Sched == nil || doc.Sched.Runs != 3 || doc.Sched.Hits != 1 || doc.Sched.Workers != 2 {
		t.Errorf("sched summary = %+v", doc.Sched)
	}
}

func TestServerMetrics(t *testing.T) {
	hub := NewHub()
	s := driveScheduler(t, hub)
	sv := NewServer(hub, s)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteString("\n")
	}
	text := body.String()
	for _, want := range []string{
		"carf_sched_runs 3",
		"carf_sched_hits 1",
		"# TYPE carf_sched_queue_wait_seconds histogram",
		"carf_sched_queue_wait_seconds_count 2", // two misses executed
		"carf_sched_sim_wall_seconds_count 2",
		"carf_telemetry_runs_completed_total 3",
		"carf_go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestServerSSERoundTrip(t *testing.T) {
	hub := NewHub()
	sv := NewServer(hub, nil)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := make(chan Event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				events <- ev
			}
		}
	}()

	next := func(what string) Event {
		t.Helper()
		select {
		case ev := <-events:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s event", what)
			return Event{}
		}
	}

	if ev := next("hello"); ev.Type != "hello" {
		t.Fatalf("first event = %+v, want hello", ev)
	}

	// Drive one run once the stream is subscribed: the start and finish
	// events must arrive in order with matching correlation ids.
	s := sched.New(1)
	s.SetObserver(hub)
	key := sched.KeyOf("sse-test", 1)
	if _, _, err := s.Do(key, "sim/sse/carf", true, func() (any, error) {
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}

	start := next("run-start")
	if start.Type != "run-start" || start.Label != "sim/sse/carf" || start.Key == "" {
		t.Fatalf("run-start = %+v", start)
	}
	finish := next("run-finish")
	if finish.Type != "run-finish" || finish.Outcome != "miss" {
		t.Fatalf("run-finish = %+v", finish)
	}
	if finish.Key != start.Key || finish.ID != start.ID {
		t.Errorf("correlation broken: start %+v vs finish %+v", start, finish)
	}
}
