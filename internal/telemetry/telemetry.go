// Package telemetry is the simulator's live observability plane: where
// the metrics package watches one simulation from the inside (interval
// samples of pipeline counters), telemetry watches the orchestration
// layer from above — every experiment and every scheduler run, while
// they are in flight.
//
// Two halves compose:
//
//   - A span tracer (Tracer/Span) building an orchestration-level
//     timeline: one slice per experiment, per queued request, and per
//     executing simulation, with run-key correlation ids and parent
//     links, exported in Chrome trace format for ui.perfetto.dev.
//   - An embedded HTTP server (Server) over a Hub that observes the
//     simulation scheduler: /metrics in Prometheus text exposition
//     format, /healthz, /runs as a live JSON table of in-flight and
//     completed runs with hit/miss/joined provenance, and /events
//     streaming run lifecycle events over SSE.
//
// The Hub implements sched.Observer; attach it with
// Scheduler.SetObserver and every Do call appears in all four views,
// correlated by the run key's short id. Everything here is passive:
// rendered experiment output is byte-identical with telemetry on or
// off.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"carf/internal/metrics"
	"carf/internal/sched"
)

// completedCap bounds the completed-run table served by /runs; older
// rows fall off (completed_total keeps the true count).
const completedCap = 512

// maxConsecDrops is the slow-subscriber disconnect threshold: an
// /events client that fails to drain its 256-message buffer for this
// many consecutive publishes is forcibly unsubscribed (its channel is
// closed) instead of silently losing events forever. Counted in
// telemetry.sse_slow_disconnects_total.
const maxConsecDrops = 64

// RunRecord is one scheduler run's row in the /runs table. Times are
// milliseconds since the hub started; zero-valued times mean the run
// has not reached that state.
type RunRecord struct {
	ID      uint64 `json:"id"`
	Key     string `json:"key"` // short correlation id (Key.Short)
	Label   string `json:"label"`
	State   string `json:"state"` // queued, running, done
	Outcome string `json:"outcome,omitempty"`

	EnqueuedMs float64 `json:"enqueued_ms"`
	StartedMs  float64 `json:"started_ms,omitempty"`
	FinishedMs float64 `json:"finished_ms,omitempty"`

	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	SimWallMs   float64 `json:"sim_wall_ms,omitempty"`
	Err         string  `json:"error,omitempty"`

	// Live progress (executing progress-reporting runs only): the
	// newest frame's totals, completion against the known instruction
	// budget, interval-window IPC, retirement rate, and ETA.
	Cycles      uint64  `json:"cycles,omitempty"`
	Insts       uint64  `json:"insts,omitempty"`
	Target      uint64  `json:"target,omitempty"`
	Pct         float64 `json:"pct,omitempty"`
	IntervalIPC float64 `json:"interval_ipc,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
	EtaSeconds  float64 `json:"eta_seconds,omitempty"`
}

// Event is one SSE message on /events: run and experiment lifecycle
// transitions — and, for executing runs, throttled progress frames —
// as they happen.
type Event struct {
	Type  string  `json:"type"` // run-start, run-progress, run-finish, experiment-start, experiment-finish
	TMs   float64 `json:"t_ms"` // milliseconds since the hub started
	ID    uint64  `json:"id,omitempty"`
	Label string  `json:"label,omitempty"`
	Key   string  `json:"key,omitempty"`

	// run-progress only: the frame as stamped by the scheduler.
	Progress *sched.Progress `json:"progress,omitempty"`

	// run-finish / experiment-finish only.
	Outcome     string  `json:"outcome,omitempty"`
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	SimWallMs   float64 `json:"sim_wall_ms,omitempty"`
	ElapsedMs   float64 `json:"elapsed_ms,omitempty"`
	Err         string  `json:"error,omitempty"`
}

// runState is the hub's in-flight bookkeeping for one scheduler run.
type runState struct {
	rec  RunRecord
	span *Span // request-side span (queue-wait / hit / joined)
	work *Span // worker-side sim span (misses only)
}

// Hub is the live telemetry nexus: it implements sched.Observer,
// maintains the /runs table, feeds the span tracer, and broadcasts SSE
// events. All methods are safe for concurrent use. Construct with
// NewHub, attach with Scheduler.SetObserver, serve with NewServer.
type Hub struct {
	tracer *Tracer
	t0     time.Time

	mu             sync.Mutex
	inflight       map[uint64]*runState
	completed      []RunRecord // ring, newest appended; bounded by completedCap
	completedTotal uint64

	subs            map[*subscriber]struct{}
	subSeq          uint64
	dropped         uint64 // SSE messages dropped on slow subscribers
	events          uint64 // SSE messages published
	slowDisconnects uint64 // subscribers force-closed after maxConsecDrops

	// Per-run frame streams (/runs/{id}/stream): every enqueued run gets
	// one, so hits and disk hits still stream their terminal frame.
	streams     map[uint64]*runStream
	streamOrder []uint64 // finished stream ids, oldest first (eviction)
}

// subscriber is one /events SSE client: its payload channel plus drop
// accounting for the slow-subscriber disconnect policy.
type subscriber struct {
	id      uint64
	ch      chan []byte
	dropped uint64 // total messages this subscriber missed
	consec  int    // consecutive misses (reset on any delivery)
}

// NewHub returns a hub tracing into a fresh Tracer.
func NewHub() *Hub {
	return &Hub{
		tracer:   NewTracer(),
		t0:       time.Now(),
		inflight: map[uint64]*runState{},
		subs:     map[*subscriber]struct{}{},
		streams:  map[uint64]*runStream{},
	}
}

// Tracer returns the hub's orchestration tracer (write its trace out
// with Tracer.Write once the study finishes). A nil hub returns a nil
// (inert) tracer.
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}

func (h *Hub) sinceMs(t time.Time) float64 {
	return float64(t.Sub(h.t0)) / float64(time.Millisecond)
}

func (h *Hub) nowMs() float64 { return h.sinceMs(time.Now()) }

// RunEnqueued implements sched.Observer: a Do call entered the
// scheduler. The request-side span opens here; its final category
// (queue-wait, hit, joined) is decided when the run resolves.
func (h *Hub) RunEnqueued(id uint64, key sched.Key, label string) {
	sp := h.tracer.StartSpan(TrackRequests, "queue-wait", label).
		Attr("key", key.Short()).Attr("run", id)
	h.mu.Lock()
	h.inflight[id] = &runState{
		rec: RunRecord{
			ID:         id,
			Key:        key.Short(),
			Label:      label,
			State:      "queued",
			EnqueuedMs: h.nowMs(),
		},
		span: sp,
	}
	h.streamOpen(id)
	h.mu.Unlock()
	h.publish(Event{Type: "run-start", TMs: h.nowMs(), ID: id, Label: label, Key: key.Short()})
}

// RunProgressed implements sched.Observer: an executing run reported a
// progress frame (already throttled by the scheduler). The /runs row
// updates in place, the frame lands on the run's own stream, and a
// run-progress event goes out on /events.
func (h *Hub) RunProgressed(id uint64, p sched.Progress) {
	h.mu.Lock()
	st := h.inflight[id]
	if st == nil {
		h.mu.Unlock()
		return
	}
	st.rec.Cycles = p.Cycles
	st.rec.Insts = p.Insts
	st.rec.Target = p.Target
	if pct := p.Pct(); pct >= 0 {
		st.rec.Pct = pct
	}
	st.rec.IntervalIPC = p.IntervalIPC
	st.rec.InstsPerSec = p.InstsPerSec
	st.rec.EtaSeconds = p.ETASeconds
	label, key := st.rec.Label, st.rec.Key
	h.mu.Unlock()

	pp := p
	h.streamPublish(id, StreamFrame{
		Type: "progress", TMs: h.nowMs(), ID: id, Label: label, Key: key,
		Progress: &pp,
	})
	h.publish(Event{Type: "run-progress", TMs: h.nowMs(), ID: id, Label: label, Key: key, Progress: &pp})
}

// RunStarted implements sched.Observer: a miss acquired a worker slot.
// The queue-wait slice ends and the sim slice opens on a worker lane,
// parent-linked to the request span.
func (h *Hub) RunStarted(id uint64) {
	h.mu.Lock()
	st := h.inflight[id]
	if st == nil {
		h.mu.Unlock()
		return
	}
	st.rec.State = "running"
	st.rec.StartedMs = h.nowMs()
	reqSpan := st.span
	h.mu.Unlock()

	reqSpan.End()
	work := h.tracer.StartSpan(TrackWorkers, "sim", st.rec.Label).
		Attr("key", st.rec.Key).Attr("run", id)
	work.SetParent(reqSpan.ID())
	h.mu.Lock()
	st.span = nil
	st.work = work
	h.mu.Unlock()
}

// RunFinished implements sched.Observer: the run resolved (simulated,
// cache hit, or joined an in-flight execution).
func (h *Hub) RunFinished(id uint64, p sched.Provenance, err error) {
	h.mu.Lock()
	st := h.inflight[id]
	if st == nil {
		h.mu.Unlock()
		return
	}
	delete(h.inflight, id)
	st.rec.State = "done"
	st.rec.Outcome = p.Outcome.String()
	st.rec.FinishedMs = h.nowMs()
	st.rec.QueueWaitMs = float64(p.QueueWait) / float64(time.Millisecond)
	st.rec.SimWallMs = float64(p.SimWall) / float64(time.Millisecond)
	if err != nil {
		st.rec.Err = err.Error()
	}
	h.completed = append(h.completed, st.rec)
	if len(h.completed) > completedCap {
		h.completed = h.completed[len(h.completed)-completedCap:]
	}
	h.completedTotal++
	span, work := st.span, st.work
	h.mu.Unlock()

	if work != nil {
		// Miss: the sim slice closes; the queue-wait slice closed at start.
		work.Attr("outcome", p.Outcome.String()).End()
	}
	if span != nil {
		// Hit or joined (or a miss that never reached RunStarted): the
		// request-side slice closes under its resolved category.
		span.SetCategory(p.Outcome.String())
		span.Attr("outcome", p.Outcome.String()).End()
	}
	h.publish(Event{
		Type: "run-finish", TMs: h.nowMs(), ID: id,
		Label: st.rec.Label, Key: st.rec.Key, Outcome: st.rec.Outcome,
		QueueWaitMs: st.rec.QueueWaitMs, SimWallMs: st.rec.SimWallMs,
		Err: st.rec.Err,
	})
	h.streamFinish(id, StreamFrame{
		Type: "done", TMs: h.nowMs(), ID: id,
		Label: st.rec.Label, Key: st.rec.Key, Outcome: st.rec.Outcome,
		SimWallMs: st.rec.SimWallMs, Err: st.rec.Err,
		Note: provenanceNote(p.Outcome),
	})
}

// provenanceNote explains a terminal frame with no preceding progress
// frames: the run was served without (re-)simulating.
func provenanceNote(o sched.Outcome) string {
	switch o {
	case sched.Hit:
		return "served from the in-memory cache; no simulation ran"
	case sched.DiskHit:
		return "served from the persistent disk tier; no simulation ran"
	case sched.Joined:
		return "joined an identical in-flight run; see that run's stream"
	case sched.PeerHit:
		return "served by a peer process sharing the store (lease wait); no simulation ran here"
	}
	return ""
}

// ExperimentStart opens an experiment span and announces it on /events.
// End the returned span (via ExperimentEnd) when the experiment's
// rendering completes. Both methods are no-ops on a nil hub, so CLIs
// instrument unconditionally and pay nothing with telemetry off.
func (h *Hub) ExperimentStart(name string) *Span {
	if h == nil {
		return nil
	}
	h.publish(Event{Type: "experiment-start", TMs: h.nowMs(), Label: name})
	return h.tracer.StartSpan(TrackExperiments, "experiment", name)
}

// ExperimentEnd closes an experiment span with its outcome.
func (h *Hub) ExperimentEnd(name string, sp *Span, elapsed time.Duration, err error) {
	if h == nil {
		return
	}
	ev := Event{
		Type: "experiment-finish", TMs: h.nowMs(), Label: name,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	}
	if err != nil {
		ev.Err = err.Error()
		sp.Attr("error", err.Error())
	}
	sp.End()
	h.publish(ev)
}

// Runs snapshots the /runs tables: in-flight runs in id order, then
// completed runs oldest-first (bounded; total is the unbounded count).
func (h *Hub) Runs() (inflight, completed []RunRecord, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	inflight = make([]RunRecord, 0, len(h.inflight))
	for _, st := range h.inflight {
		inflight = append(inflight, st.rec)
	}
	// Insertion sort by id: the in-flight set is small (≤ pool + queued).
	for i := 1; i < len(inflight); i++ {
		for j := i; j > 0 && inflight[j].ID < inflight[j-1].ID; j-- {
			inflight[j], inflight[j-1] = inflight[j-1], inflight[j]
		}
	}
	return inflight, append([]RunRecord(nil), h.completed...), h.completedTotal
}

// Subscribe registers an SSE subscriber: a channel of pre-marshalled
// event payloads. A slow subscriber drops messages (counted) rather
// than blocking the simulation — and after maxConsecDrops consecutive
// misses it is disconnected outright: removed from the hub and its
// channel closed, so the serving handler ends the stream instead of
// carrying a client that stopped reading. Call the returned cancel to
// unsubscribe (idempotent, safe after a forced disconnect).
func (h *Hub) Subscribe() (<-chan []byte, func()) {
	sub := &subscriber{ch: make(chan []byte, 256)}
	h.mu.Lock()
	h.subSeq++
	sub.id = h.subSeq
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub.ch, func() {
		h.mu.Lock()
		delete(h.subs, sub)
		h.mu.Unlock()
	}
}

// publish fans one event out to every subscriber without blocking,
// enforcing the slow-subscriber disconnect policy.
func (h *Hub) publish(ev Event) {
	h.mu.Lock()
	if len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		h.mu.Unlock()
		return
	}
	h.events++
	for sub := range h.subs {
		select {
		case sub.ch <- payload:
			sub.consec = 0
		default:
			sub.dropped++
			sub.consec++
			h.dropped++
			if sub.consec >= maxConsecDrops {
				delete(h.subs, sub)
				close(sub.ch)
				h.slowDisconnects++
			}
		}
	}
	h.mu.Unlock()
}

// counts reports the hub's own meta-metrics for /metrics.
func (h *Hub) counts() (inflight int, completedTotal, events, dropped uint64, subscribers int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.inflight), h.completedTotal, h.events, h.dropped, len(h.subs)
}

// MetaReadings reports the hub's meta-metrics as readings for the
// /metrics exposition: aggregate counters plus one drop counter per
// live /events subscriber (telemetry.sse.sub<N>.dropped — gone from
// the scrape once the subscriber disconnects; the aggregates keep the
// history).
func (h *Hub) MetaReadings() []metrics.Reading {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := []metrics.Reading{
		{Name: "telemetry.runs_inflight", Kind: metrics.ReadGauge, Value: float64(len(h.inflight))},
		{Name: "telemetry.runs_completed_total", Kind: metrics.ReadCounter, Value: float64(h.completedTotal)},
		{Name: "telemetry.events_published_total", Kind: metrics.ReadCounter, Value: float64(h.events)},
		{Name: "telemetry.events_dropped_total", Kind: metrics.ReadCounter, Value: float64(h.dropped)},
		{Name: "telemetry.sse_slow_disconnects_total", Kind: metrics.ReadCounter, Value: float64(h.slowDisconnects)},
		{Name: "telemetry.sse_subscribers", Kind: metrics.ReadGauge, Value: float64(len(h.subs))},
		{Name: "telemetry.streams_retained", Kind: metrics.ReadGauge, Value: float64(len(h.streams))},
	}
	for sub := range h.subs {
		out = append(out, metrics.Reading{
			Name: fmt.Sprintf("telemetry.sse.sub%d.dropped", sub.id),
			Kind: metrics.ReadCounter, Value: float64(sub.dropped),
		})
	}
	return out
}

// NewLogger returns the telemetry plane's structured logger: slog text
// lines to w with millisecond timestamps. CLIs use it for progress and
// lifecycle lines (stderr), keeping rendered study output (stdout)
// byte-identical; run-key correlation ids travel in the "key" field.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				a.Value = slog.StringValue(a.Value.Time().Format("15:04:05.000"))
			}
			return a
		},
	}))
}

// LogProvenance renders a Provenance as slog fields, correlated by the
// run key's short id.
func LogProvenance(p sched.Provenance) []any {
	return []any{
		"key", p.Key.Short(),
		"outcome", p.Outcome.String(),
		"queue_wait", p.QueueWait.Round(time.Microsecond).String(),
		"sim_wall", p.SimWall.Round(time.Microsecond).String(),
	}
}
