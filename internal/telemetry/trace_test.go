package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"carf/internal/metrics"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()

	exp := tr.StartSpan(TrackExperiments, "experiment", "fig12")
	req := tr.StartSpan(TrackRequests, "queue-wait", "sim/gcd/carf").
		Attr("key", "deadbeef").Attr("run", uint64(1))
	work := tr.StartSpan(TrackWorkers, "sim", "sim/gcd/carf")
	work.SetParent(req.ID())
	req.End()
	work.End()
	exp.End()

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	events := tr.Events()
	// Three metadata events (all three tracks used) + three slices.
	var meta, slices []metrics.ChromeEvent
	for _, ev := range events {
		if ev.Ph == "M" {
			meta = append(meta, ev)
		} else {
			slices = append(slices, ev)
		}
	}
	if len(meta) != 3 || len(slices) != 3 {
		t.Fatalf("got %d metadata + %d slices, want 3 + 3", len(meta), len(slices))
	}
	names := map[int]string{}
	for _, m := range meta {
		names[m.Pid] = m.Args["name"].(string)
	}
	if names[int(TrackExperiments)] != "experiments" ||
		names[int(TrackRequests)] != "scheduler requests" ||
		names[int(TrackWorkers)] != "scheduler workers" {
		t.Errorf("track names wrong: %v", names)
	}

	bySlice := map[string]metrics.ChromeEvent{}
	for _, s := range slices {
		if s.Ph != "X" {
			t.Errorf("slice %q has phase %q, want X", s.Name, s.Ph)
		}
		bySlice[s.Cat] = s
	}
	qw, ok := bySlice["queue-wait"]
	if !ok {
		t.Fatalf("no queue-wait slice in %v", slices)
	}
	if qw.Args["key"] != "deadbeef" {
		t.Errorf("queue-wait key attr = %v", qw.Args["key"])
	}
	sim, ok := bySlice["sim"]
	if !ok {
		t.Fatalf("no sim slice")
	}
	if sim.Pid != int(TrackWorkers) {
		t.Errorf("sim slice on pid %d, want %d", sim.Pid, int(TrackWorkers))
	}
	// The parent link correlates the worker slice to the request slice.
	if sim.Args["parent"] != qw.Args["span"] {
		t.Errorf("sim parent %v != queue-wait span %v", sim.Args["parent"], qw.Args["span"])
	}
}

func TestTracerLaneReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.StartSpan(TrackWorkers, "sim", "a")
	b := tr.StartSpan(TrackWorkers, "sim", "b")
	if a.lane == b.lane {
		t.Fatalf("concurrent spans share lane %d", a.lane)
	}
	aLane := a.lane
	a.End()
	// The freed lane is the lowest free one, so the next span reuses it.
	c := tr.StartSpan(TrackWorkers, "sim", "c")
	if c.lane != aLane {
		t.Errorf("lane not reused: got %d, want %d", c.lane, aLane)
	}
	b.End()
	c.End()
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(TrackWorkers, "sim", "x")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	// All span methods must be no-ops on nil.
	sp.Attr("k", "v").SetParent(7)
	sp.SetCategory("hit")
	sp.End()
	if sp.ID() != 0 {
		t.Errorf("nil span ID = %d", sp.ID())
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Errorf("nil tracer accumulated events")
	}
}

func TestTracerWriteValidJSON(t *testing.T) {
	tr := NewTracer()
	tr.StartSpan(TrackExperiments, "experiment", "smt").End()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != 2 { // metadata + slice
		t.Errorf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
}
