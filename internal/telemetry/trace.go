package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"

	"carf/internal/metrics"
)

// Track is a process row group in the orchestration trace. Perfetto
// renders one named process per track; lanes within a track are its
// threads, allocated to the shallowest free row so concurrent spans
// stack compactly and rows are reused as soon as they free.
type Track int

const (
	// TrackExperiments holds one span per experiment (carfstudy -jobs).
	TrackExperiments Track = 1
	// TrackRequests holds the request-side view of every scheduler Do:
	// queue-wait slices while a miss waits for a worker slot, and
	// hit/joined slices for requests served without simulating.
	TrackRequests Track = 2
	// TrackWorkers holds the sim-wall slices: one row per concurrently
	// executing simulation, bounded by the scheduler pool.
	TrackWorkers Track = 3
)

func (t Track) name() string {
	switch t {
	case TrackExperiments:
		return "experiments"
	case TrackRequests:
		return "scheduler requests"
	case TrackWorkers:
		return "scheduler workers"
	}
	return fmt.Sprintf("track %d", int(t))
}

// SpanID identifies a span within one Tracer (0 = no span / no parent).
type SpanID uint64

// Span is one in-flight slice of the orchestration timeline. Start it
// with Tracer.StartSpan, optionally attach attributes and a parent
// link, then End it exactly once. A nil *Span is inert: every method
// is a no-op, so instrumentation sites need no tracer-enabled check.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	track  Track
	lane   int
	cat    string
	name   string
	start  time.Time
	args   map[string]any
}

// laneAlloc hands out the lowest free lane number within a track.
type laneAlloc struct {
	free []int
	next int
}

func (l *laneAlloc) get() int {
	if n := len(l.free); n > 0 {
		// Take the smallest free lane so rows stay dense.
		min, minI := l.free[0], 0
		for i, v := range l.free[1:] {
			if v < min {
				min, minI = v, i+1
			}
		}
		l.free[minI] = l.free[n-1]
		l.free = l.free[:n-1]
		return min
	}
	l.next++
	return l.next - 1
}

func (l *laneAlloc) put(i int) { l.free = append(l.free, i) }

// Tracer collects orchestration-level spans — experiment lifetimes,
// scheduler queue waits, simulation executions — and exports them as a
// Chrome-trace (Perfetto-loadable) JSON timeline. All methods are safe
// for concurrent use. A nil *Tracer is inert (StartSpan returns a nil
// Span), so callers thread one through unconditionally and pay nothing
// when telemetry is off.
type Tracer struct {
	mu     sync.Mutex
	t0     time.Time
	nextID SpanID
	lanes  map[Track]*laneAlloc
	events []metrics.ChromeEvent
}

// NewTracer returns an empty tracer; span timestamps are relative to
// this call.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now(), lanes: map[Track]*laneAlloc{}}
}

// StartSpan opens a span on track with a Chrome category (the slice
// type: "experiment", "queue-wait", "sim", "hit", "joined") and a
// display name, allocating the track's shallowest free lane.
func (t *Tracer) StartSpan(track Track, cat, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	la := t.lanes[track]
	if la == nil {
		la = &laneAlloc{}
		t.lanes[track] = la
	}
	return &Span{
		tr:    t,
		id:    t.nextID,
		track: track,
		lane:  la.get(),
		cat:   cat,
		name:  name,
		start: time.Now(),
	}
}

// ID returns the span's id for parent links (0 for a nil span).
func (sp *Span) ID() SpanID {
	if sp == nil {
		return 0
	}
	return sp.id
}

// SetParent links this span to a parent span id; the link is exported
// as a "parent" argument on the slice.
func (sp *Span) SetParent(parent SpanID) {
	if sp != nil {
		sp.parent = parent
	}
}

// SetCategory replaces the span's slice type. The scheduler's
// request-side spans use this: a request's final type (queue-wait vs.
// hit vs. joined) is only known when it resolves.
func (sp *Span) SetCategory(cat string) {
	if sp != nil {
		sp.cat = cat
	}
}

// Attr attaches one key/value argument, shown in Perfetto's slice
// details. It returns the span for chaining.
func (sp *Span) Attr(key string, value any) *Span {
	if sp == nil {
		return nil
	}
	if sp.args == nil {
		sp.args = make(map[string]any, 4)
	}
	sp.args[key] = value
	return sp
}

// End closes the span, emitting one complete ("X") slice and freeing
// its lane. End is idempotent via the nil receiver convention only;
// call it exactly once per started span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := time.Now()
	t := sp.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	args := sp.args
	if sp.parent != 0 {
		if args == nil {
			args = make(map[string]any, 1)
		}
		args["parent"] = uint64(sp.parent)
	}
	if args == nil {
		args = map[string]any{}
	}
	args["span"] = uint64(sp.id)
	t.events = append(t.events, metrics.ChromeEvent{
		Name: sp.name,
		Cat:  sp.cat,
		Ph:   "X",
		Ts:   float64(sp.start.Sub(t.t0)) / float64(time.Microsecond),
		Dur:  float64(end.Sub(sp.start)) / float64(time.Microsecond),
		Pid:  int(sp.track),
		Tid:  sp.lane,
		Args: args,
	})
	t.lanes[sp.track].put(sp.lane)
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns the completed slices plus the track-naming metadata
// events, ready for metrics.WriteChromeTrace.
func (t *Tracer) Events() []metrics.ChromeEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]metrics.ChromeEvent, 0, len(t.events)+len(t.lanes))
	for _, track := range []Track{TrackExperiments, TrackRequests, TrackWorkers} {
		if _, used := t.lanes[track]; !used {
			continue
		}
		out = append(out, metrics.ChromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  int(track),
			Args: map[string]any{"name": track.name()},
		})
	}
	return append(out, t.events...)
}

// Write serializes the trace as Chrome trace JSON — load the file in
// https://ui.perfetto.dev to see the per-run timeline across the
// worker pool, with queue-wait, sim, hit, and joined slices as
// distinct categories.
func (t *Tracer) Write(w io.Writer) error {
	return metrics.WriteChromeTrace(w, t.Events())
}
