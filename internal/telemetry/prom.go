package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"carf/internal/metrics"
)

// WritePrometheus renders readings in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed series with _sum and _count.
// Names are prefixed with namespace and sanitized (dots and dashes
// become underscores), so "sched.queue_wait_seconds" under namespace
// "carf" exposes as carf_sched_queue_wait_seconds. Readings come from
// Registry.Read, which never perturbs interval-sampling state, so a
// scrape is safe at any time on a registry whose instruments are
// concurrency-safe (the scheduler's is).
func WritePrometheus(w io.Writer, namespace string, readings []metrics.Reading) error {
	for _, rd := range readings {
		name := promName(namespace, rd.Name)
		var err error
		switch rd.Kind {
		case metrics.ReadCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(rd.Value))
		case metrics.ReadGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(rd.Value))
		case metrics.ReadHistogram:
			err = promHistogram(w, name, rd)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promHistogram renders one histogram: Prometheus buckets are
// cumulative (each le bucket counts all observations at or below its
// bound), where metrics.Histogram buckets are disjoint — the running
// sum converts.
func promHistogram(w io.Writer, name string, rd metrics.Reading) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, bound := range rd.Bounds {
		cum += rd.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, rd.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(rd.Sum), name, rd.Count)
	return err
}

// promName prefixes and sanitizes a series name into the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a value the way Prometheus parsers expect
// (shortest round-trip representation; infinities spelled +Inf/-Inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
