package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"carf/internal/metrics"
	"carf/internal/sched"
)

// Server is the embedded telemetry HTTP server CLIs start behind the
// -telemetry flag. Endpoints:
//
//	/metrics  Prometheus text exposition: the attached scheduler's
//	          registry (run/hit/join counters, queue-wait and sim-wall
//	          histograms) plus hub and process meta-series.
//	/healthz  liveness: {"status":"ok",...}.
//	/runs     live JSON table of in-flight and completed runs with
//	          hit/miss/joined provenance.
//	/events   SSE stream of run and experiment lifecycle events.
//	/         endpoint index.
//
// The scheduler reference is swappable (carfbench rotates through
// study schedulers); the hub is fixed at construction.
type Server struct {
	hub   *Hub
	sch   atomic.Pointer[sched.Scheduler]
	start time.Time

	mu      sync.Mutex
	extra   []func() []metrics.Reading
	healthf func() map[string]any

	ln  net.Listener
	srv *http.Server
}

// NewServer returns a server over hub, scraping s for /metrics (s may
// be nil and set later with SetScheduler).
func NewServer(hub *Hub, s *sched.Scheduler) *Server {
	sv := &Server{hub: hub, start: time.Now()}
	if s != nil {
		sv.sch.Store(s)
	}
	return sv
}

// SetScheduler swaps the scheduler whose registry /metrics exposes and
// whose Stats back the /runs summary.
func (sv *Server) SetScheduler(s *sched.Scheduler) { sv.sch.Store(s) }

// AddMetrics registers an extra readings source appended to every
// /metrics scrape (the store's counters, the daemon's job gauges).
// Sources must be safe to call from any goroutine.
func (sv *Server) AddMetrics(fn func() []metrics.Reading) {
	sv.mu.Lock()
	sv.extra = append(sv.extra, fn)
	sv.mu.Unlock()
}

// SetHealth installs a detail source merged into the /healthz document.
// Reserved keys ("status", "uptime_seconds") are not overridable; a
// "status" from fn is reported as "detail_status" instead, so liveness
// probes keep their contract while degradation stays visible.
func (sv *Server) SetHealth(fn func() map[string]any) {
	sv.mu.Lock()
	sv.healthf = fn
	sv.mu.Unlock()
}

// Handler returns the telemetry mux (exported for httptest).
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", sv.index)
	mux.HandleFunc("/metrics", sv.metrics)
	mux.HandleFunc("/healthz", sv.healthz)
	mux.HandleFunc("/runs", sv.runs)
	mux.HandleFunc("/runs/{id}/stream", sv.runStream)
	mux.HandleFunc("/events", sv.eventsSSE)
	return mux
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// in a background goroutine. It returns the bound address.
func (sv *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	sv.ln = ln
	sv.srv = &http.Server{Handler: sv.Handler()}
	go sv.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close stops the listener and any in-flight handlers (SSE streams end
// when their clients disconnect or the process exits).
func (sv *Server) Close() error {
	if sv.srv != nil {
		return sv.srv.Close()
	}
	return nil
}

func (sv *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "carf telemetry\n\n/metrics            Prometheus text exposition\n/healthz            liveness\n/runs               live run table (JSON)\n/runs/{id}/stream   one run's progress frames (SSE)\n/events             run lifecycle + progress stream (SSE)\n")
}

func (sv *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(sv.start).Seconds(),
	}
	sv.mu.Lock()
	healthf := sv.healthf
	sv.mu.Unlock()
	if healthf != nil {
		for k, v := range healthf() {
			if k == "status" {
				k = "detail_status"
			}
			if k == "uptime_seconds" {
				continue
			}
			doc[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

func (sv *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s := sv.sch.Load(); s != nil {
		if err := WritePrometheus(w, "carf", s.Metrics().Read()); err != nil {
			return
		}
	}
	meta := append(sv.hub.MetaReadings(),
		metrics.Reading{Name: "telemetry.uptime_seconds", Kind: metrics.ReadGauge, Value: time.Since(sv.start).Seconds()},
		metrics.Reading{Name: "go.goroutines", Kind: metrics.ReadGauge, Value: float64(runtime.NumGoroutine())},
	)
	sv.mu.Lock()
	extra := sv.extra
	sv.mu.Unlock()
	for _, fn := range extra {
		meta = append(meta, fn()...)
	}
	WritePrometheus(w, "carf", meta) //nolint:errcheck // best-effort tail
}

// RunsDocument is the /runs JSON document. Exported so clients
// (cmd/carftop) decode the same shape the server encodes.
type RunsDocument struct {
	NowMs          float64       `json:"now_ms"`
	InFlight       []RunRecord   `json:"in_flight"`
	Completed      []RunRecord   `json:"completed"`
	CompletedTotal uint64        `json:"completed_total"`
	Sched          *SchedSummary `json:"sched,omitempty"`
}

// SchedSummary is the scheduler summary embedded in /runs.
type SchedSummary struct {
	Workers          int     `json:"workers"`
	CacheEntries     int     `json:"cache_entries"`
	Runs             uint64  `json:"runs"`
	Misses           uint64  `json:"misses"`
	Hits             uint64  `json:"hits"`
	DiskHits         uint64  `json:"disk_hits"`
	PeerHits         uint64  `json:"peer_hits"`
	Joins            uint64  `json:"joins"`
	Canceled         uint64  `json:"canceled"`
	Errors           uint64  `json:"errors"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	SimWallSeconds   float64 `json:"sim_wall_seconds"`
	LeaseWaitSeconds float64 `json:"lease_wait_seconds"`
}

func (sv *Server) runs(w http.ResponseWriter, _ *http.Request) {
	inflight, completed, total := sv.hub.Runs()
	resp := RunsDocument{
		NowMs:          sv.hub.nowMs(),
		InFlight:       inflight,
		Completed:      completed,
		CompletedTotal: total,
	}
	if s := sv.sch.Load(); s != nil {
		st := s.Stats()
		resp.Sched = &SchedSummary{
			Workers:          st.Workers,
			CacheEntries:     st.CacheEntries,
			Runs:             st.Runs,
			Misses:           st.Misses,
			Hits:             st.Hits,
			DiskHits:         st.DiskHits,
			PeerHits:         st.PeerHits,
			Joins:            st.Joins,
			Canceled:         st.Canceled,
			Errors:           st.Errors,
			QueueWaitSeconds: st.QueueWait.Seconds(),
			SimWallSeconds:   st.SimWall.Seconds(),
			LeaseWaitSeconds: st.LeaseWait.Seconds(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp) //nolint:errcheck // client went away
}

// eventsSSE streams hub events as server-sent events until the client
// disconnects. Each message is one `data:` line holding an Event JSON
// object; a hello event opens the stream so clients can sync clocks.
func (sv *Server) eventsSSE(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	hello, _ := json.Marshal(Event{Type: "hello", TMs: sv.hub.nowMs()})
	fmt.Fprintf(w, "data: %s\n\n", hello)
	fl.Flush()

	ch, cancel := sv.hub.Subscribe()
	defer cancel()
	// Heartbeat comments keep idle connections from timing out.
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case payload, ok := <-ch:
			if !ok {
				// Forcibly disconnected as a slow subscriber: end the
				// stream so the client learns it fell behind.
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", payload)
			fl.Flush()
		}
	}
}

// runStream streams one run's progress frames as SSE: the retained
// history first (so a late subscriber still sees recent interval
// samples), then live frames until the terminal "done" frame, which
// always closes the stream. A run that was served without simulating
// (cache hit, disk hit) replays a single done frame whose note says so.
func (sv *Server) runStream(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	replay, ch, cancel, ok := sv.hub.SubscribeRun(id)
	if !ok {
		http.Error(w, "no such run (or its stream aged out)", http.StatusNotFound)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	for _, payload := range replay {
		fmt.Fprintf(w, "data: %s\n\n", payload)
	}
	fl.Flush()
	if ch == nil {
		// Finished run: the replay ended with the terminal frame.
		return
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case payload, ok := <-ch:
			if !ok {
				// Run finished: the channel closed; emit the terminal frame.
				if t, ok := sv.hub.RunTerminal(id); ok {
					fmt.Fprintf(w, "data: %s\n\n", t)
					fl.Flush()
				}
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", payload)
			fl.Flush()
		}
	}
}
