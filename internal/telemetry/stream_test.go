package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carf/internal/sched"
)

// readSSEFrames decodes data: lines from an SSE body into StreamFrames
// until the stream ends or n frames arrive (n <= 0 reads to EOF).
func readSSEFrames(t *testing.T, r *bufio.Reader, n int) []StreamFrame {
	t.Helper()
	var out []StreamFrame
	for n <= 0 || len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f StreamFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		out = append(out, f)
	}
	return out
}

// TestRunStreamLiveThenTerminal subscribes to an in-flight run's
// stream, sees mid-run progress frames with interval payloads, then the
// terminal done frame when the run completes, after which the stream
// ends.
func TestRunStreamLiveThenTerminal(t *testing.T) {
	hub := NewHub()
	s := sched.New(2)
	s.SetObserver(hub)
	s.SetProgressInterval(0)
	sv := NewServer(hub, s)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	reported := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := s.DoProgress(context.Background(), sched.KeyOf("stream-live"), "sim/qsort/carf", true, 1000, nil,
			func(report sched.ProgressFunc) (any, error) {
				report(sched.Progress{Cycles: 1000, Insts: 250, IntervalCycles: 1000, IntervalInsts: 250, IntervalIPC: 0.25})
				report(sched.Progress{Cycles: 2000, Insts: 500, IntervalCycles: 1000, IntervalInsts: 250, IntervalIPC: 0.25})
				close(reported)
				<-release
				report(sched.Progress{Cycles: 4000, Insts: 1000, Final: true})
				return 42, nil
			})
		done <- err
	}()
	<-reported

	// The in-flight run's id comes from the live run table.
	inflight, _, _ := hub.Runs()
	if len(inflight) != 1 {
		t.Fatalf("in-flight runs = %d, want 1", len(inflight))
	}
	id := inflight[0].ID

	resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/runs/%d/stream", id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)

	replayed := readSSEFrames(t, br, 2)
	if len(replayed) != 2 {
		t.Fatalf("replayed %d frames, want the 2 already-reported ones", len(replayed))
	}
	for i, f := range replayed {
		if f.Type != "progress" || f.ID != id || f.Progress == nil {
			t.Fatalf("replay frame %d = %+v, want a progress frame for run %d", i, f, id)
		}
		if f.Progress.IntervalCycles != 1000 || f.Progress.IntervalIPC != 0.25 {
			t.Errorf("replay frame %d interval payload = %+v", i, f.Progress)
		}
		if f.Progress.Target != 1000 {
			t.Errorf("replay frame %d target = %d, want the stamped 1000", i, f.Progress.Target)
		}
	}
	if replayed[1].Progress.Insts <= replayed[0].Progress.Insts {
		t.Errorf("frames not monotonic: %d then %d", replayed[0].Progress.Insts, replayed[1].Progress.Insts)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Following live: the final progress frame, then the terminal frame.
	rest := readSSEFrames(t, br, 0) // reads until the handler closes the stream
	if len(rest) < 2 {
		t.Fatalf("followed %d frames after release, want final progress + done: %+v", len(rest), rest)
	}
	last := rest[len(rest)-1]
	if last.Type != "done" || last.Outcome != "miss" || last.Note != "" {
		t.Errorf("terminal frame = %+v, want a done frame for a simulated run with no provenance note", last)
	}
	prev := rest[len(rest)-2]
	if prev.Type != "progress" || !prev.Progress.Final {
		t.Errorf("penultimate frame = %+v, want the Final progress frame", prev)
	}
}

// TestRunStreamFinishedReplay: a finished run's stream replays retained
// frames ending with the terminal frame and closes immediately.
func TestRunStreamFinishedReplay(t *testing.T) {
	hub := NewHub()
	s := sched.New(2)
	s.SetObserver(hub)
	s.SetProgressInterval(0)
	sv := NewServer(hub, s)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	if _, _, err := s.DoProgress(context.Background(), sched.KeyOf("stream-done"), "sim/crc64/carf", true, 0, nil,
		func(report sched.ProgressFunc) (any, error) {
			report(sched.Progress{Cycles: 10, Insts: 5})
			report(sched.Progress{Cycles: 20, Insts: 10, Final: true})
			return 1, nil
		}); err != nil {
		t.Fatal(err)
	}
	_, completed, _ := hub.Runs()
	if len(completed) != 1 {
		t.Fatalf("completed = %d, want 1", len(completed))
	}
	id := completed[0].ID

	resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/runs/%d/stream", id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSEFrames(t, bufio.NewReader(resp.Body), 0)
	if len(frames) != 3 {
		t.Fatalf("replayed %d frames, want 2 progress + done: %+v", len(frames), frames)
	}
	if frames[2].Type != "done" || frames[2].Outcome != "miss" {
		t.Errorf("terminal frame = %+v", frames[2])
	}
}

// TestRunStreamHitProvenance: a run served from cache streams exactly
// one done frame whose note explains that no simulation ran.
func TestRunStreamHitProvenance(t *testing.T) {
	hub := NewHub()
	s := sched.New(2)
	s.SetObserver(hub)
	sv := NewServer(hub, s)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	body := func() (any, error) { return 7, nil }
	key := sched.KeyOf("stream-hit")
	for i := 0; i < 2; i++ { // miss, then hit
		if _, _, err := s.Do(key, "sim/bfs/carf", true, body); err != nil {
			t.Fatal(err)
		}
	}
	_, completed, _ := hub.Runs()
	if len(completed) != 2 {
		t.Fatalf("completed = %d, want 2", len(completed))
	}
	var hitID uint64
	found := false
	for _, r := range completed {
		if r.Outcome == "hit" {
			hitID, found = r.ID, true
		}
	}
	if !found {
		t.Fatalf("no hit run in %+v", completed)
	}

	resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/runs/%d/stream", hitID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSEFrames(t, bufio.NewReader(resp.Body), 0)
	if len(frames) != 1 {
		t.Fatalf("hit run streamed %d frames, want exactly 1: %+v", len(frames), frames)
	}
	f := frames[0]
	if f.Type != "done" || f.Outcome != "hit" || !strings.Contains(f.Note, "cache") {
		t.Errorf("hit terminal frame = %+v, want a done frame with a cache provenance note", f)
	}
}

// TestRunStreamUnknownID is a 404, not a hang.
func TestRunStreamUnknownID(t *testing.T) {
	sv := NewServer(NewHub(), nil)
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/runs/999/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestSlowSubscriberDisconnect: a subscriber that stops reading is
// dropped-counted and, after maxConsecDrops consecutive misses,
// force-closed; the aggregate disconnect counter records it.
func TestSlowSubscriberDisconnect(t *testing.T) {
	hub := NewHub()
	ch, cancel := hub.Subscribe()
	defer cancel()

	// Fill the buffer, then keep publishing without draining until the
	// policy trips.
	total := 256 + maxConsecDrops
	for i := 0; i < total; i++ {
		hub.publish(Event{Type: "run-start", ID: uint64(i)})
	}

	closed := false
	deadline := time.After(2 * time.Second)
drain:
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				closed = true
				break drain
			}
		case <-deadline:
			break drain
		}
	}
	if !closed {
		t.Fatal("slow subscriber's channel was never closed")
	}

	var disconnects, dropped, subs float64
	subs = -1
	for _, r := range hub.MetaReadings() {
		switch r.Name {
		case "telemetry.sse_slow_disconnects_total":
			disconnects = r.Value
		case "telemetry.events_dropped_total":
			dropped = r.Value
		case "telemetry.sse_subscribers":
			subs = r.Value
		}
	}
	if disconnects != 1 {
		t.Errorf("slow disconnects = %v, want 1", disconnects)
	}
	if dropped < float64(maxConsecDrops) {
		t.Errorf("dropped = %v, want >= %d", dropped, maxConsecDrops)
	}
	if subs != 0 {
		t.Errorf("subscribers = %v, want 0 after the forced disconnect", subs)
	}

	// A healthy subscriber keeps its per-subscriber drop counter at 0
	// and stays connected.
	ch2, cancel2 := hub.Subscribe()
	defer cancel2()
	hub.publish(Event{Type: "run-start", ID: 1})
	select {
	case <-ch2:
	case <-time.After(time.Second):
		t.Fatal("healthy subscriber did not receive the event")
	}
	persub := -1.0
	for _, r := range hub.MetaReadings() {
		if strings.HasPrefix(r.Name, "telemetry.sse.sub") {
			persub = r.Value
		}
	}
	if persub != 0 {
		t.Errorf("healthy subscriber's drop counter = %v, want 0", persub)
	}
}
