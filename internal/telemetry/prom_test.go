package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carf/internal/metrics"
)

// Regenerate the golden exposition file with:
//
//	go test ./internal/telemetry -run TestPrometheusGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden Prometheus exposition")

// goldenRegistry builds one instrument of every kind with fixed values,
// so the golden file pins the exposition format end to end: type lines,
// name sanitization, cumulative le buckets, +Inf, _sum/_count.
func goldenRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	c := r.Counter("pipeline.commits")
	c.Add(12345)
	g := r.Gauge("rob.occupancy")
	g.Set(42.5)
	r.GaugeFunc("sched.hit_rate", func() float64 { return 0.625 })
	h := r.Histogram("sched.queue-wait_seconds", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.003, 0.05, 0.5, 30} {
		h.Observe(v)
	}
	sh := r.SyncHistogram("sched.sim_wall_seconds", []float64{0.25, 2.5})
	sh.Observe(0.125)
	sh.Observe(1)
	var num, den float64 = 30, 40
	r.RatioRate("pipeline.ipc", func() float64 { return num }, func() float64 { return den })
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "carf", goldenRegistry().Read()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden data (run with -update-golden to record): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, "carf", goldenRegistry().Read()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Names are sanitized into the metric-name alphabet and prefixed.
	for _, want := range []string{
		"carf_pipeline_commits 12345",
		"carf_rob_occupancy 42.5",
		"carf_sched_hit_rate 0.625",
		"# TYPE carf_sched_queue_wait_seconds histogram",
		"carf_sched_queue_wait_seconds_count 6",
		"carf_sched_sim_wall_seconds_count 2",
		"carf_pipeline_ipc 0.75",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Buckets must be cumulative and capped by +Inf = count.
	if !strings.Contains(text, `carf_sched_queue_wait_seconds_bucket{le="0.001"} 1`) ||
		!strings.Contains(text, `carf_sched_queue_wait_seconds_bucket{le="0.01"} 3`) ||
		!strings.Contains(text, `carf_sched_queue_wait_seconds_bucket{le="1"} 5`) ||
		!strings.Contains(text, `carf_sched_queue_wait_seconds_bucket{le="+Inf"} 6`) {
		t.Errorf("cumulative buckets wrong:\n%s", text)
	}
	// No character outside the exposition alphabet sneaks into names.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, " {")]
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				t.Errorf("metric name %q contains invalid byte %q", name, c)
			}
		}
	}
}

func TestPromNameEdgeCases(t *testing.T) {
	for in, want := range map[string]string{
		"sched.runs":     "sched_runs",
		"queue-wait":     "queue_wait",
		"a b":            "a_b",
		"9lives":         "_9lives",
		"ok_name:suffix": "ok_name:suffix",
	} {
		if got := promName("", in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promName("carf", "9x"); got != "carf_9x" {
		t.Errorf("namespaced digit start = %q", got)
	}
}
