package cache

import (
	"testing"
	"testing/quick"
)

func cfg4way() Config {
	return Config{Name: "t", SizeBytes: 4096, LineBytes: 64, Ways: 4, HitLatency: 1}
}

func TestConfigValidation(t *testing.T) {
	good := cfg4way()
	if err := good.Valid(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Name: "line", SizeBytes: 4096, LineBytes: 48, Ways: 4},
		{Name: "ways", SizeBytes: 4096, LineBytes: 64, Ways: 0},
		{Name: "size", SizeBytes: 4000, LineBytes: 64, Ways: 4},
		{Name: "sets", SizeBytes: 64 * 3 * 4, LineBytes: 64, Ways: 4},
	}
	for _, c := range bad {
		if err := c.Valid(); err == nil {
			t.Errorf("config %q should be invalid", c.Name)
		}
	}
}

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, cfg4way())
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Errorf("miss rate %v", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustNew(t, cfg4way()) // 16 sets, 4 ways
	// Five lines mapping to the same set (stride = 16 sets * 64B = 1024).
	addrs := []uint64{0, 1024, 2048, 3072, 4096}
	for _, a := range addrs[:4] {
		c.Access(a)
	}
	c.Access(addrs[0]) // refresh line 0 so line at 1024 is LRU
	c.Access(addrs[4]) // evicts 1024
	if !c.Probe(addrs[0]) {
		t.Error("recently-used line was evicted")
	}
	if c.Probe(addrs[1]) {
		t.Error("LRU line should have been evicted")
	}
	if !c.Probe(addrs[4]) {
		t.Error("filled line not resident")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := mustNew(t, cfg4way())
	c.Access(0x40)
	before := c.Stats()
	c.Probe(0x40)
	c.Probe(0x9999)
	if c.Stats() != before {
		t.Error("Probe changed statistics")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, cfg4way())
	c.Access(0x40)
	c.Reset()
	if c.Probe(0x40) {
		t.Error("line survived reset")
	}
	if c.Stats().Accesses != 0 {
		t.Error("stats survived reset")
	}
}

// Property: a working set no larger than one set's associativity never
// misses after the cold pass, regardless of addresses chosen.
func TestAssociativityProperty(t *testing.T) {
	f := func(lineSeed uint64) bool {
		c, err := New(cfg4way())
		if err != nil {
			return false
		}
		base := (lineSeed % (1 << 20)) * 1024 // all map to set 0 region pattern
		addrs := []uint64{base, base + 1024, base + 2048, base + 3072}
		for _, a := range addrs {
			c.Access(a)
		}
		for _, a := range addrs {
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	// Cold: L1 miss + L2 miss + memory.
	if got := h.DataLatency(0x5000); got != 1+10+100 {
		t.Errorf("cold data access latency %d", got)
	}
	// Warm L1.
	if got := h.DataLatency(0x5000); got != 1 {
		t.Errorf("warm L1 latency %d", got)
	}
	// Evict from L1 but not L2: touch 9 conflicting lines (L1 has 128
	// sets * 4 ways; stride 128*64 = 8192 conflicts in L1; L2 has 4096
	// sets, stride for L2 conflict is 4096*64 = 256KB, so these stay in L2).
	for i := uint64(1); i <= 8; i++ {
		h.DataLatency(0x5000 + i*8192)
	}
	if got := h.DataLatency(0x5000); got != 1+10 {
		t.Errorf("L2 hit latency %d, want 11", got)
	}
	if h.L1I.Stats().Accesses != 0 {
		t.Error("data access touched the I-cache")
	}
	// Instruction path uses L1I + shared L2.
	if got := h.FetchLatency(0x400000); got != 111 {
		t.Errorf("cold fetch latency %d", got)
	}
	if got := h.FetchLatency(0x400000); got != 1 {
		t.Errorf("warm fetch latency %d", got)
	}
}

func TestHierarchyReset(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchy())
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	h.DataLatency(0x100)
	h.FetchLatency(0x100)
	h.Reset()
	if h.L1D.Stats().Accesses != 0 || h.L1I.Stats().Accesses != 0 || h.L2.Stats().Accesses != 0 {
		t.Error("reset did not clear stats")
	}
	if got := h.DataLatency(0x100); got != 111 {
		t.Errorf("post-reset access latency %d, want cold 111", got)
	}
}

func TestTable1Shapes(t *testing.T) {
	cfg := DefaultHierarchy()
	if cfg.L1I.SizeBytes != 32<<10 || cfg.L1I.Ways != 4 {
		t.Error("L1I does not match Table 1")
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1D.Ways != 4 || cfg.L1D.HitLatency != 1 {
		t.Error("L1D does not match Table 1")
	}
	if cfg.L2.SizeBytes != 1<<20 || cfg.L2.Ways != 4 || cfg.L2.HitLatency != 10 {
		t.Error("L2 does not match Table 1")
	}
	if cfg.MemLatency != 100 {
		t.Error("memory latency does not match Table 1")
	}
}
