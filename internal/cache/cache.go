// Package cache models the memory hierarchy of Table 1: set-associative
// L1 instruction and data caches, a unified L2, and a flat-latency main
// memory. The model is a timing model only — data values live in the
// vm.Memory golden model — so caches track tags, LRU state, and
// latencies, which is all the register-file experiments need.
package cache

import (
	"fmt"

	"carf/internal/metrics"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles for a hit in this level
}

// Valid reports whether the configuration is internally consistent
// (power-of-two line size and set count, non-zero ways).
func (c Config) Valid() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d", c.Name, c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type way struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touched stamp; larger = more recent
}

// Stats counts cache events.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses per access (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, LRU, write-allocate cache level.
type Cache struct {
	cfg       Config
	sets      [][]way
	lineShift uint
	setMask   uint64
	stamp     uint64
	stats     Stats
}

// New builds a cache from cfg, rejecting invalid configurations with a
// descriptive error (see Config.Valid).
func New(cfg Config) (*Cache, error) {
	if err := cfg.Valid(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]way, numSets)
	backing := make([]way, numSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, lineShift: shift, setMask: uint64(numSets - 1)}, nil
}

// Access looks up addr, filling the line on a miss (LRU victim), and
// reports whether it hit. Reads and writes behave identically for tag
// state (write-allocate, no write-back traffic modeled).
func (c *Cache) Access(addr uint64) bool {
	c.stamp++
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	t := line // the full line number serves as the tag
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].lru = c.stamp
			return true
		}
		if set[i].lru < set[victim].lru || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	c.stats.Misses++
	set[victim] = way{tag: t, valid: true, lru: c.stamp}
	return false
}

// Probe reports whether addr is resident without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// Stats returns the access counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.stamp = 0
	c.stats = Stats{}
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1I        Config
	L1D        Config
	L2         Config
	MemLatency int // cycles for an L2 miss to reach DRAM
}

// DefaultHierarchy returns the Table 1 memory system: 32KB 4-way L1s
// (1 cycle), 1MB 4-way L2 (10 cycles), 100-cycle memory.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		L1D:        Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4, HitLatency: 1},
		L2:         Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 4, HitLatency: 10},
		MemLatency: 100,
	}
}

// Valid reports whether every level of the hierarchy is internally
// consistent.
func (c HierarchyConfig) Valid() error {
	for _, lvl := range []Config{c.L1I, c.L1D, c.L2} {
		if err := lvl.Valid(); err != nil {
			return err
		}
	}
	if c.MemLatency < 0 {
		return fmt.Errorf("cache: negative memory latency %d", c.MemLatency)
	}
	return nil
}

// MissObserver is notified of every L1 miss with the PC of the
// instruction that caused it: instr distinguishes L1I from L1D misses,
// and mem reports whether main memory (rather than the L2) served the
// fill. Observers must not call back into the hierarchy.
type MissObserver func(pc, addr uint64, instr, mem bool)

// Hierarchy is the assembled memory system.
type Hierarchy struct {
	L1I    *Cache
	L1D    *Cache
	L2     *Cache
	cfg    HierarchyConfig
	onMiss MissObserver
}

// SetMissObserver installs fn to be called on every L1 miss (nil
// removes it). The observer is consulted only on misses, so the hit
// path stays unchanged.
func (h *Hierarchy) SetMissObserver(fn MissObserver) { h.onMiss = fn }

// NewHierarchy builds the memory system from cfg, rejecting invalid
// level configurations with a descriptive error.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.MemLatency < 0 {
		return nil, fmt.Errorf("cache: negative memory latency %d", cfg.MemLatency)
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, cfg: cfg}, nil
}

// FetchLatency returns the latency in cycles to fetch the instruction
// line at addr, updating cache state.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	return h.accessPC(h.L1I, addr, addr, true)
}

// DataLatency returns the latency in cycles for a data access at addr,
// updating cache state. Stores and loads are identical for tag state.
func (h *Hierarchy) DataLatency(addr uint64) int {
	return h.accessPC(h.L1D, addr, 0, false)
}

// DataLatencyPC is DataLatency with the accessing instruction's PC, so
// a miss observer can attribute the miss to its static instruction.
func (h *Hierarchy) DataLatencyPC(addr, pc uint64) int {
	return h.accessPC(h.L1D, addr, pc, false)
}

func (h *Hierarchy) accessPC(l1 *Cache, addr, pc uint64, instr bool) int {
	lat := l1.Config().HitLatency
	if l1.Access(addr) {
		return lat
	}
	lat += h.L2.Config().HitLatency
	l2hit := h.L2.Access(addr)
	if h.onMiss != nil {
		h.onMiss(pc, addr, instr, !l2hit)
	}
	if l2hit {
		return lat
	}
	return lat + h.cfg.MemLatency
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}

// RegisterMetrics registers per-level access, miss, and interval
// miss-rate series ("cache.l1d.miss_rate", ...) on reg.
func (h *Hierarchy) RegisterMetrics(reg *metrics.Registry) {
	for _, lv := range []struct {
		name string
		c    *Cache
	}{{"l1i", h.L1I}, {"l1d", h.L1D}, {"l2", h.L2}} {
		c := lv.c
		accesses := func() float64 { return float64(c.stats.Accesses) }
		misses := func() float64 { return float64(c.stats.Misses) }
		reg.GaugeFunc("cache."+lv.name+".accesses", accesses)
		reg.GaugeFunc("cache."+lv.name+".misses", misses)
		reg.RatioRate("cache."+lv.name+".miss_rate", misses, accesses)
	}
}
