package cache

import (
	"math/rand"
	"testing"
)

// refCache is a deliberately naive set-associative LRU model used as an
// oracle: sets are slices ordered most-recent-first.
type refCache struct {
	lineBytes int
	sets      map[uint64][]uint64 // set index -> line numbers, MRU first
	ways      int
	numSets   uint64
}

func newRef(cfg Config) *refCache {
	return &refCache{
		lineBytes: cfg.LineBytes,
		sets:      make(map[uint64][]uint64),
		ways:      cfg.Ways,
		numSets:   uint64(cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)),
	}
}

func (r *refCache) access(addr uint64) bool {
	line := addr / uint64(r.lineBytes)
	idx := line % r.numSets
	set := r.sets[idx]
	for i, l := range set {
		if l == line {
			// Move to front.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	set = append([]uint64{line}, set...)
	if len(set) > r.ways {
		set = set[:r.ways]
	}
	r.sets[idx] = set
	return false
}

// TestCacheMatchesReferenceModel drives the production cache and the
// naive oracle with identical random access streams (mixes of sequential
// runs, strided sweeps, and random jumps) and requires hit-for-hit
// agreement.
func TestCacheMatchesReferenceModel(t *testing.T) {
	cfg := Config{Name: "ref", SizeBytes: 8192, LineBytes: 64, Ways: 4, HitLatency: 1}
	for seed := int64(0); seed < 10; seed++ {
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ref := newRef(cfg)
		r := rand.New(rand.NewSource(seed))
		addr := uint64(r.Intn(1 << 20))
		for i := 0; i < 20000; i++ {
			switch r.Intn(4) {
			case 0: // sequential
				addr += uint64(r.Intn(16) * 8)
			case 1: // strided (cache-conflict prone)
				addr += 8192
			case 2: // random jump
				addr = uint64(r.Intn(1 << 22))
			default: // revisit nearby
				addr -= uint64(r.Intn(256))
			}
			got := c.Access(addr)
			want := ref.access(addr)
			if got != want {
				t.Fatalf("seed %d access %d addr %#x: cache says hit=%v, reference says %v",
					seed, i, addr, got, want)
			}
		}
		if c.Stats().Accesses != 20000 {
			t.Fatalf("accesses = %d", c.Stats().Accesses)
		}
	}
}
