package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carf/internal/sched"
	"carf/internal/store"
)

// readJobFrames decodes data: lines from a job's SSE stream until it
// ends.
func readJobFrames(t *testing.T, ts *httptest.Server, id string) []JobStreamFrame {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	var out []JobStreamFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f JobStreamFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		out = append(out, f)
		if f.Type == "done" {
			return out
		}
	}
}

// TestJobStreamProgressThenDone runs a real kernel job with the
// scheduler's throttle off and checks its stream: monotonic progress
// frames carrying target/pct payloads, then the terminal done frame.
func TestJobStreamProgressThenDone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	sch := sched.New(2)
	sch.SetProgressInterval(0)
	_, ts := newTestDaemon(t, Options{Scheduler: sch})

	resp := submit(t, ts, "c1", `{"kernel":"crc64","scale":0.1}`)
	acc := decode[map[string]string](t, resp)
	waitStatus(t, ts, acc["id"], StatusDone)

	frames := readJobFrames(t, ts, acc["id"])
	if len(frames) < 3 {
		t.Fatalf("streamed %d frames, want >= 2 progress + done: %+v", len(frames), frames)
	}
	last := frames[len(frames)-1]
	if last.Type != "done" || last.Status != StatusDone || last.Note != "" {
		t.Fatalf("terminal frame = %+v, want done/done without a provenance note", last)
	}
	var prevInsts uint64
	for i, f := range frames[:len(frames)-1] {
		if f.Type != "progress" || f.Progress == nil {
			t.Fatalf("frame %d = %+v, want a progress frame", i, f)
		}
		if f.Progress.Insts < prevInsts {
			t.Fatalf("frame %d not monotonic: %d after %d", i, f.Progress.Insts, prevInsts)
		}
		prevInsts = f.Progress.Insts
		if f.Progress.Target == 0 || f.Progress.Pct < 0 {
			t.Errorf("frame %d missing target/pct: %+v", i, f.Progress)
		}
	}
	if fin := frames[len(frames)-2].Progress; !fin.Final || fin.Pct != 1 {
		t.Errorf("last progress frame = %+v, want Final at pct 1", fin)
	}

	// The job-status document carries the newest snapshot too.
	st, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + acc["id"])
	if err != nil {
		t.Fatal(err)
	}
	j := decode[Job](t, st)
	if j.Progress == nil || j.Progress.Insts == 0 {
		t.Errorf("job status has no progress snapshot: %+v", j.Progress)
	}
}

// TestJobStreamDiskHitNote: a job served entirely from the persistent
// tier streams a single done frame whose note says no simulation ran.
func TestJobStreamDiskHitNote(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	dir := t.TempDir()
	body := `{"kernel":"crc64","scale":0.04}`

	runOnce := func() (string, []JobStreamFrame) {
		st, err := store.Open(store.Options{Dir: dir, Schema: "serve-stream-test/v1", Logger: testLogger()})
		if err != nil {
			t.Fatal(err)
		}
		d := New(Options{Scheduler: sched.New(2), Store: st, Logger: testLogger(), JobTimeout: 2 * time.Minute})
		ts := httptest.NewServer(d.Handler())
		defer ts.Close()
		resp := submit(t, ts, "c1", body)
		acc := decode[map[string]string](t, resp)
		waitStatus(t, ts, acc["id"], StatusDone)
		frames := readJobFrames(t, ts, acc["id"])
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		return acc["id"], frames
	}

	_, first := runOnce()
	if last := first[len(first)-1]; last.Type != "done" || last.Note != "" {
		t.Fatalf("first pass terminal frame = %+v, want unannotated done", last)
	}

	_, second := runOnce()
	if len(second) != 1 {
		t.Fatalf("disk-served job streamed %d frames, want exactly 1: %+v", len(second), second)
	}
	f := second[0]
	if f.Type != "done" || f.Status != StatusDone || !strings.Contains(f.Note, "persistent tier") {
		t.Errorf("disk-hit terminal frame = %+v, want a done frame noting the persistent tier", f)
	}
}

// TestJobStreamUnknownID is a 404.
func TestJobStreamUnknownID(t *testing.T) {
	_, ts := newTestDaemon(t, Options{})
	resp, err := ts.Client().Get(ts.URL + "/api/v1/runs/r-999999/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}
