package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"carf/internal/sched"
)

// JobProgress is a job's most recent live progress snapshot, embedded
// in the job-status document and carried by stream frames. For
// experiment jobs — which run many simulations, possibly in parallel —
// Label names the simulation that produced the snapshot, and Pct is
// that simulation's completion, not the whole experiment's.
type JobProgress struct {
	Label       string  `json:"label,omitempty"`
	Cycles      uint64  `json:"cycles"`
	Insts       uint64  `json:"insts"`
	Target      uint64  `json:"target,omitempty"`
	Pct         float64 `json:"pct"` // [0,1], or -1 when the target is unknown
	IntervalIPC float64 `json:"interval_ipc,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
	EtaSeconds  float64 `json:"eta_seconds,omitempty"`
	Final       bool    `json:"final,omitempty"`
}

func toJobProgress(label string, p sched.Progress) *JobProgress {
	return &JobProgress{
		Label:       label,
		Cycles:      p.Cycles,
		Insts:       p.Insts,
		Target:      p.Target,
		Pct:         p.Pct(),
		IntervalIPC: p.IntervalIPC,
		InstsPerSec: p.InstsPerSec,
		EtaSeconds:  p.ETASeconds,
		Final:       p.Final,
	}
}

// JobStreamFrame is one SSE message on GET /api/v1/runs/{id}/stream:
// "progress" frames while the job's simulations execute, then exactly
// one "done" frame carrying the terminal status. A job served without
// simulating (memo or disk tier) streams a single done frame whose
// Note says so — provenance, not silence.
type JobStreamFrame struct {
	Type     string       `json:"type"` // "progress" | "done"
	ID       string       `json:"id"`
	Progress *JobProgress `json:"progress,omitempty"`

	// done frames only.
	Status string `json:"status,omitempty"`
	Note   string `json:"note,omitempty"`
	Err    string `json:"error,omitempty"`
}

// jobFrameCap bounds the replayable progress frames per job; a late
// subscriber sees the recent window (the done frame is kept separately).
const jobFrameCap = 64

// jobStream is one job's frame history plus live followers. It has its
// own lock so high-rate progress fan-out never contends with the
// daemon's job-table mutex.
type jobStream struct {
	mu       sync.Mutex
	frames   [][]byte
	terminal []byte
	subs     map[chan []byte]struct{}
}

func newJobStream() *jobStream {
	return &jobStream{subs: map[chan []byte]struct{}{}}
}

// publish appends a progress frame and fans it out non-blockingly
// (slow followers miss frames; the done frame always arrives via the
// close path).
func (s *jobStream) publish(payload []byte) {
	s.mu.Lock()
	if s.terminal != nil {
		s.mu.Unlock()
		return
	}
	s.frames = append(s.frames, payload)
	if len(s.frames) > jobFrameCap {
		s.frames = s.frames[len(s.frames)-jobFrameCap:]
	}
	for ch := range s.subs {
		select {
		case ch <- payload:
		default:
		}
	}
	s.mu.Unlock()
}

// finish records the terminal frame and closes every follower; their
// handlers then fetch it with terminalFrame.
func (s *jobStream) finish(payload []byte) {
	s.mu.Lock()
	if s.terminal != nil {
		s.mu.Unlock()
		return
	}
	s.terminal = payload
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan []byte]struct{}{}
	s.mu.Unlock()
}

// subscribe returns the replayable history (ending with the terminal
// frame if the job finished — the channel is then nil), a live channel
// closed when the job finishes, and a cancel function.
func (s *jobStream) subscribe() (replay [][]byte, ch chan []byte, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	replay = append([][]byte(nil), s.frames...)
	if s.terminal != nil {
		replay = append(replay, s.terminal)
		return replay, nil, func() {}
	}
	c := make(chan []byte, 128)
	s.subs[c] = struct{}{}
	return replay, c, func() {
		s.mu.Lock()
		delete(s.subs, c)
		s.mu.Unlock()
	}
}

func (s *jobStream) terminalFrame() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.terminal, s.terminal != nil
}

// stream serves GET /api/v1/runs/{id}/stream: replay the job's recent
// progress frames, then follow live until the terminal done frame.
func (d *Daemon) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	j, ok := d.jobs[id]
	var st *jobStream
	if ok {
		st = j.stream
	}
	d.mu.Unlock()
	if !ok || st == nil {
		writeErr(w, http.StatusNotFound, "no such run %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	replay, ch, cancel := st.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	for _, payload := range replay {
		fmt.Fprintf(w, "data: %s\n\n", payload)
	}
	fl.Flush()
	if ch == nil {
		// Finished job: the replay ended with the done frame.
		return
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case payload, ok := <-ch:
			if !ok {
				if t, ok := st.terminalFrame(); ok {
					fmt.Fprintf(w, "data: %s\n\n", t)
					fl.Flush()
				}
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", payload)
			fl.Flush()
		}
	}
}
