// Package serve is the long-running simulation service behind
// cmd/carfserve: an HTTP/JSON API for submitting kernel simulations and
// paper experiments, grown out of internal/telemetry's embedded server
// (which keeps contributing /metrics, /runs, /events and /healthz).
//
// Every edge is hardened:
//
//   - Admission control: pending+running jobs are bounded globally and
//     per client; a saturated server sheds load with 429 + Retry-After
//     instead of absorbing it, and keeps /healthz and /metrics fast.
//   - Deadlines: every job runs under a context with the configured
//     timeout; cancellation propagates through the scheduler into the
//     simulator's cycle loop (cooperative abort), so an abandoned run
//     frees its worker instead of simulating to completion.
//   - Graceful drain: Shutdown stops admitting (503), lets in-flight
//     jobs finish, and only then returns — SIGTERM never kills a run
//     mid-write.
//   - Persistence: with a store attached, completed runs survive
//     process death and come back as disk-tier hits; the store's
//     degraded/quarantine state is surfaced in /healthz.
package serve

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"carf"
	"carf/internal/experiments"
	"carf/internal/metrics"
	"carf/internal/sched"
	"carf/internal/store"
	"carf/internal/telemetry"
)

// kernelResult is the persisted shape of a daemon kernel run: the
// measurement fields of carf.Result without its instrumentation
// pointers (Series/Trace/Profile), whose types gob cannot encode. The
// API never enables instrumentation, so nothing is lost.
type kernelResult struct {
	Kernel       string
	Organization string

	Cycles       uint64
	Instructions uint64
	IPC          float64

	Branches    uint64
	Mispredicts uint64

	IntOperands      uint64
	BypassedOperands uint64
	BypassRate       float64

	RegFileEnergy     float64
	RegFileArea       float64
	RegFileAccessTime float64

	ReadsByType    [3]uint64
	WritesByType   [3]uint64
	AvgLiveLong    float64
	RecoveryStalls uint64
}

func init() { gob.Register(kernelResult{}) }

func toKernelResult(r carf.Result) kernelResult {
	return kernelResult{
		Kernel:            r.Kernel,
		Organization:      string(r.Organization),
		Cycles:            r.Cycles,
		Instructions:      r.Instructions,
		IPC:               r.IPC,
		Branches:          r.Branches,
		Mispredicts:       r.Mispredicts,
		IntOperands:       r.IntOperands,
		BypassedOperands:  r.BypassedOperands,
		BypassRate:        r.BypassRate,
		RegFileEnergy:     r.RegFileEnergy,
		RegFileArea:       r.RegFileArea,
		RegFileAccessTime: r.RegFileAccessTime,
		ReadsByType:       r.ReadsByType,
		WritesByType:      r.WritesByType,
		AvgLiveLong:       r.AvgLiveLong,
		RecoveryStalls:    r.RecoveryStalls,
	}
}

// Options configures a Daemon.
type Options struct {
	// Scheduler executes and memoizes the simulations (default
	// sched.Global()).
	Scheduler *sched.Scheduler

	// Store, when non-nil, is attached to the scheduler as its
	// persistent tier and reported in health and metrics.
	Store *store.Store

	// MaxJobs bounds jobs admitted but not yet finished, across all
	// clients (default 16). At the bound, submissions get 429.
	MaxJobs int

	// MaxJobsPerClient bounds unfinished jobs per client (default 4).
	MaxJobsPerClient int

	// RunningJobs bounds jobs executing at once (default 2); admitted
	// jobs beyond it wait queued. Simulation parallelism inside a job is
	// separately bounded by the scheduler's worker pool.
	RunningJobs int

	// JobTimeout bounds one job's wall time (default 10m). The deadline
	// cancels queued work and cooperatively aborts running simulations.
	JobTimeout time.Duration

	// Logger receives lifecycle and degradation reports (default
	// slog.Default()).
	Logger *slog.Logger

	// runJob substitutes the job execution body (tests use it to make
	// jobs hang or finish instantly). nil = the real simulator path.
	runJob func(ctx context.Context, j *Job) (string, sched.Stats, error)
}

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// SubmitRequest is the POST /api/v1/runs body. Exactly one of
// Experiment or Kernel must be set.
type SubmitRequest struct {
	// Experiment names a paper exhibit (see carf.Experiments).
	Experiment string `json:"experiment,omitempty"`

	// Kernel names a benchmark kernel for a single simulation.
	Kernel       string  `json:"kernel,omitempty"`
	Organization string  `json:"organization,omitempty"` // default content-aware
	DPlusN       int     `json:"dplusn,omitempty"`
	ShortRegs    int     `json:"short_regs,omitempty"`
	LongRegs     int     `json:"long_regs,omitempty"`
	Scale        float64 `json:"scale,omitempty"` // default 1.0 kernel / 0.25 experiment
}

// Job is one submitted run and its lifecycle.
type Job struct {
	ID        string        `json:"id"`
	Client    string        `json:"client"`
	Kind      string        `json:"kind"` // "experiment" | "kernel"
	Spec      SubmitRequest `json:"spec"`
	Status    string        `json:"status"`
	Error     string        `json:"error,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`

	// Sched is the job's own scheduler activity — DiskHits > 0 with
	// Misses == 0 is the "served from the persistent tier" provenance.
	Sched *jobSched `json:"sched,omitempty"`

	// Progress is the most recent live progress snapshot while the job's
	// simulations execute (absent before the first frame, and for jobs
	// served entirely from caches — they do no simulation work).
	Progress *JobProgress `json:"progress,omitempty"`

	result string             // rendered output, available when done
	cancel context.CancelFunc // cancels this job's context
	stream *jobStream         // per-job progress frame stream
}

// jobSched is the per-job scheduler summary in API responses.
type jobSched struct {
	Runs     uint64 `json:"runs"`
	Misses   uint64 `json:"simulated"`
	Hits     uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	PeerHits uint64 `json:"peer_hits"`
	Joins    uint64 `json:"joins"`
	Canceled uint64 `json:"canceled"`
	Errors   uint64 `json:"errors"`
}

// Daemon is the simulation service. Create with New, serve via Handler
// (or Start), stop with Shutdown.
type Daemon struct {
	opt   Options
	sch   *sched.Scheduler
	st    *store.Store
	hub   *telemetry.Hub
	tsv   *telemetry.Server
	log   *slog.Logger
	base  context.Context // parent of every job context; canceled on forced shutdown
	stop  context.CancelFunc
	slots chan struct{} // RunningJobs execution slots

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listings
	nextID   uint64
	active   int            // jobs not yet finished (admission bound)
	byClient map[string]int // unfinished jobs per client
	draining bool
	wg       sync.WaitGroup

	ln  net.Listener
	srv *http.Server
}

// New builds a Daemon (not yet listening). The store, if any, is wired
// under the scheduler as its persistent tier.
func New(o Options) *Daemon {
	if o.Scheduler == nil {
		o.Scheduler = sched.Global()
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 16
	}
	if o.MaxJobsPerClient <= 0 {
		o.MaxJobsPerClient = 4
	}
	if o.RunningJobs <= 0 {
		o.RunningJobs = 2
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	base, stop := context.WithCancel(context.Background())
	d := &Daemon{
		opt:      o,
		sch:      o.Scheduler,
		st:       o.Store,
		log:      o.Logger,
		base:     base,
		stop:     stop,
		slots:    make(chan struct{}, o.RunningJobs),
		jobs:     make(map[string]*Job),
		byClient: make(map[string]int),
	}
	d.hub = telemetry.NewHub()
	d.sch.SetObserver(d.hub)
	if d.st != nil {
		d.sch.SetTier(d.st)
	}
	d.tsv = telemetry.NewServer(d.hub, d.sch)
	d.tsv.SetHealth(d.healthDetail)
	if d.st != nil {
		d.tsv.AddMetrics(d.st.Readings)
	}
	d.tsv.AddMetrics(d.metricsReadings)
	return d
}

// healthDetail is merged into /healthz: admission state plus the
// store's mode — a degraded disk tier is visible here, loudly.
func (d *Daemon) healthDetail() map[string]any {
	d.mu.Lock()
	doc := map[string]any{
		"draining":    d.draining,
		"jobs_active": d.active,
		"jobs_total":  len(d.jobs),
	}
	d.mu.Unlock()
	if d.st != nil {
		st := d.st.Stats()
		doc["store"] = st
		if st.Degraded {
			doc["status"] = "degraded" // surfaces as detail_status
		}
	} else {
		doc["store"] = map[string]any{"mode": "none"}
	}
	return doc
}

func (d *Daemon) metricsReadings() []metrics.Reading {
	d.mu.Lock()
	active, total := d.active, len(d.jobs)
	draining := 0.0
	if d.draining {
		draining = 1
	}
	d.mu.Unlock()
	return []metrics.Reading{
		{Name: "serve.jobs_active", Kind: metrics.ReadGauge, Value: float64(active)},
		{Name: "serve.jobs_total", Kind: metrics.ReadGauge, Value: float64(total)},
		{Name: "serve.draining", Kind: metrics.ReadGauge, Value: draining},
	}
}

// Handler returns the daemon's full mux: the /api/v1 job API plus the
// telemetry plane (/metrics, /runs, /events, /healthz, /).
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/runs", d.submit)
	mux.HandleFunc("GET /api/v1/runs", d.list)
	mux.HandleFunc("GET /api/v1/runs/{id}", d.status)
	mux.HandleFunc("GET /api/v1/runs/{id}/result", d.result)
	mux.HandleFunc("GET /api/v1/runs/{id}/stream", d.stream)
	mux.HandleFunc("DELETE /api/v1/runs/{id}", d.cancelJob)
	mux.Handle("/", d.tsv.Handler())
	return mux
}

// Start listens on addr (":0" picks a port) and serves in the
// background, returning the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	d.ln = ln
	d.srv = &http.Server{Handler: d.Handler()}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Shutdown/Close
	return ln.Addr().String(), nil
}

// Shutdown drains the daemon: stop admitting (new submissions get 503),
// let in-flight jobs finish, flush the store, stop the HTTP server.
// If ctx expires first, in-flight jobs are canceled (cooperative abort)
// and Shutdown waits for them to acknowledge before returning ctx's
// error. Either way the daemon is fully stopped on return.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	d.log.Info("serve: draining — no longer admitting; waiting for in-flight jobs")

	done := make(chan struct{})
	go func() { d.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain deadline passed, canceling in-flight jobs: %w", ctx.Err())
		d.log.Error("serve: drain deadline passed — canceling in-flight jobs")
		d.stop() // cancels every job context
		<-done   // jobs acknowledge cancellation and finish bookkeeping
	}
	d.stop()
	if d.st != nil {
		if cerr := d.st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if d.srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		d.srv.Shutdown(sctx) //nolint:errcheck // listener is closed either way
	}
	d.tsv.Close() //nolint:errcheck // idempotent with srv shutdown
	d.log.Info("serve: drained and stopped")
	return err
}

// clientID attributes a request for per-client admission bounds.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Carf-Client"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// validate rejects a submission the simulator would reject, before it
// costs a queue slot.
func (r SubmitRequest) validate() (kind string, err error) {
	switch {
	case r.Experiment != "" && r.Kernel != "":
		return "", errors.New("set either experiment or kernel, not both")
	case r.Experiment != "":
		if carf.DescribeExperiment(r.Experiment) == "" {
			return "", fmt.Errorf("unknown experiment %q (known: %v)", r.Experiment, carf.Experiments())
		}
		return "experiment", nil
	case r.Kernel != "":
		cfg := carf.Config{
			Organization: carf.Organization(r.Organization),
			DPlusN:       r.DPlusN,
			ShortRegs:    r.ShortRegs,
			LongRegs:     r.LongRegs,
			Scale:        r.Scale,
		}
		if err := cfg.Validate(); err != nil {
			return "", err
		}
		known := false
		for _, k := range carf.Kernels() {
			if k == r.Kernel {
				known = true
				break
			}
		}
		if !known {
			return "", fmt.Errorf("unknown kernel %q", r.Kernel)
		}
		return "kernel", nil
	default:
		return "", errors.New("set experiment or kernel")
	}
}

func (d *Daemon) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	kind, err := req.validate()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	client := clientID(r)

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "draining: not admitting new runs")
		return
	}
	if d.active >= d.opt.MaxJobs {
		active := d.active
		d.mu.Unlock()
		w.Header().Set("Retry-After", retryAfter(active))
		writeErr(w, http.StatusTooManyRequests,
			"saturated: %d jobs unfinished (global bound %d)", active, d.opt.MaxJobs)
		return
	}
	if d.byClient[client] >= d.opt.MaxJobsPerClient {
		n := d.byClient[client]
		d.mu.Unlock()
		w.Header().Set("Retry-After", retryAfter(n))
		writeErr(w, http.StatusTooManyRequests,
			"client %q has %d jobs unfinished (per-client bound %d)", client, n, d.opt.MaxJobsPerClient)
		return
	}
	d.nextID++
	j := &Job{
		ID:        fmt.Sprintf("r-%06d", d.nextID),
		Client:    client,
		Kind:      kind,
		Spec:      req,
		Status:    StatusQueued,
		Submitted: time.Now(),
		stream:    newJobStream(),
	}
	ctx, cancel := context.WithTimeout(d.base, d.opt.JobTimeout)
	j.cancel = cancel
	d.jobs[j.ID] = j
	d.order = append(d.order, j.ID)
	d.active++
	d.byClient[client]++
	d.wg.Add(1)
	d.mu.Unlock()

	d.log.Info("serve: job admitted", "id", j.ID, "client", client, "kind", kind,
		"experiment", req.Experiment, "kernel", req.Kernel)
	go d.execute(ctx, j)
	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.ID, "status": StatusQueued})
}

// retryAfter estimates seconds until a slot frees: one short job per
// queued unit, floor 1 — honest enough for a backoff hint.
func retryAfter(queued int) string {
	return strconv.Itoa(max(1, queued))
}

// execute runs one job to completion under its context.
func (d *Daemon) execute(ctx context.Context, j *Job) {
	defer d.wg.Done()
	defer j.cancel()

	// Execution slot (RunningJobs bound); cancellation skips the wait.
	select {
	case d.slots <- struct{}{}:
		defer func() { <-d.slots }()
	case <-ctx.Done():
		d.finish(j, "", sched.Stats{}, ctx.Err())
		return
	}

	d.mu.Lock()
	if j.Status == StatusCanceled { // canceled while queued
		d.mu.Unlock()
		return
	}
	now := time.Now()
	j.Status = StatusRunning
	j.Started = &now
	d.mu.Unlock()

	run := d.opt.runJob
	if run == nil {
		run = d.runJob
	}
	text, st, err := run(ctx, j)
	d.finish(j, text, st, err)
}

// finish records a job's terminal state exactly once.
func (d *Daemon) finish(j *Job, text string, st sched.Stats, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.Finished != nil {
		return
	}
	now := time.Now()
	j.Finished = &now
	j.Sched = &jobSched{
		Runs: st.Runs, Misses: st.Misses, Hits: st.Hits,
		DiskHits: st.DiskHits, PeerHits: st.PeerHits, Joins: st.Joins, Canceled: st.Canceled, Errors: st.Errors,
	}
	switch {
	case err == nil:
		j.Status = StatusDone
		j.result = text
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.Status = StatusCanceled
		j.Error = err.Error()
	default:
		j.Status = StatusFailed
		j.Error = err.Error()
	}
	d.active--
	d.byClient[j.Client]--
	if d.byClient[j.Client] <= 0 {
		delete(d.byClient, j.Client)
	}
	d.log.Info("serve: job finished", "id", j.ID, "status", j.Status,
		"disk_hits", j.Sched.DiskHits, "simulated", j.Sched.Misses, "err", j.Error)

	// Terminate the job's progress stream with a done frame. Jobs served
	// entirely without simulating never produced progress frames; their
	// single done frame says why, so a watcher sees provenance, not
	// silence.
	frame := JobStreamFrame{Type: "done", ID: j.ID, Status: j.Status, Err: j.Error}
	if st.Misses == 0 && st.Runs > 0 {
		switch {
		case st.DiskHits > 0:
			frame.Note = "served from the persistent tier (disk hit) — no simulation ran, no progress frames"
		case st.Hits > 0:
			frame.Note = "served from the in-memory cache — no simulation ran, no progress frames"
		case st.PeerHits > 0:
			frame.Note = "served by a peer process sharing the store — it simulated, this daemon waited on its lease"
		case st.Joins > 0:
			frame.Note = "joined an identical in-flight run — progress was reported on the leader's stream"
		}
	}
	if payload, merr := json.Marshal(frame); merr == nil {
		j.stream.finish(payload)
	} else {
		j.stream.finish([]byte(`{"type":"done"}`))
	}
}

// jobProgress records a job's latest progress snapshot and publishes a
// stream frame. Called from simulating goroutines (already throttled by
// the scheduler's reporter).
func (d *Daemon) jobProgress(j *Job, label string, p sched.Progress) {
	jp := toJobProgress(label, p)
	d.mu.Lock()
	if j.Finished == nil {
		j.Progress = jp
	}
	d.mu.Unlock()
	if payload, err := json.Marshal(JobStreamFrame{Type: "progress", ID: j.ID, Progress: jp}); err == nil {
		j.stream.publish(payload)
	}
}

// runJob is the real execution body: experiments through the
// experiments engine, kernels through the scheduler (both memoized and
// disk-tier-backed).
func (d *Daemon) runJob(ctx context.Context, j *Job) (string, sched.Stats, error) {
	tally := new(sched.Tally)
	switch j.Kind {
	case "experiment":
		r, err := experiments.Run(j.Spec.Experiment, experiments.Options{
			Ctx:   ctx,
			Scale: j.Spec.Scale,
			Sched: d.sch,
			Tally: tally,
			OnProgress: func(label string, p sched.Progress) {
				d.jobProgress(j, label, p)
			},
		})
		if err != nil {
			return "", tally.Stats(), err
		}
		return r.Render(), tally.Stats(), nil
	case "kernel":
		cfg := carf.Config{
			Organization: carf.Organization(j.Spec.Organization),
			DPlusN:       j.Spec.DPlusN,
			ShortRegs:    j.Spec.ShortRegs,
			LongRegs:     j.Spec.LongRegs,
			Scale:        j.Spec.Scale,
		}
		// The run goes through the scheduler so it is pooled, deduped
		// against identical submissions, memoized, and persisted. No
		// instrumentation is enabled, so the cached carf.Result is pure
		// data.
		key := sched.KeyOf("serve-kernel", j.Spec.Kernel, cfg)
		label := "serve/" + j.Spec.Kernel
		v, prov, err := d.sch.DoProgress(ctx, key, label, true, 0,
			func(p sched.Progress) { d.jobProgress(j, label, p) },
			func(report sched.ProgressFunc) (any, error) {
				var on func(carf.Progress)
				if report != nil {
					// carf computes the kernel's own target; forward it so
					// the scheduler's reporter keeps it (it only stamps a
					// target when the frame has none).
					on = func(cp carf.Progress) {
						report(sched.Progress{
							Cycles:      cp.Cycles,
							Insts:       cp.Instructions,
							Target:      cp.Target,
							IntervalIPC: cp.IntervalIPC,
							Final:       cp.Final,
						})
					}
				}
				r, err := carf.RunCtxProgress(ctx, j.Spec.Kernel, cfg, on)
				if err != nil {
					return nil, err
				}
				return toKernelResult(r), nil
			})
		tally.Record(prov, err)
		if err != nil {
			return "", tally.Stats(), err
		}
		res := v.(kernelResult)
		b, merr := json.MarshalIndent(res, "", "  ")
		if merr != nil {
			return "", tally.Stats(), merr
		}
		return string(b) + "\n", tally.Stats(), nil
	default:
		return "", sched.Stats{}, fmt.Errorf("serve: unknown job kind %q", j.Kind)
	}
}

// snapshot copies a job for JSON responses (the live object keeps
// changing under d.mu).
func (d *Daemon) snapshot(id string) (Job, string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return Job{}, "", false
	}
	return copyJob(j), j.result, true
}

// copyJob snapshots a job for JSON encoding outside d.mu; Progress is
// deep-copied because jobProgress replaces it concurrently. Callers
// hold d.mu.
func copyJob(j *Job) Job {
	cp := *j
	if j.Progress != nil {
		p := *j.Progress
		cp.Progress = &p
	}
	return cp
}

func (d *Daemon) list(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	out := make([]Job, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, copyJob(d.jobs[id]))
	}
	d.mu.Unlock()
	sort.SliceStable(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func (d *Daemon) status(w http.ResponseWriter, r *http.Request) {
	j, _, ok := d.snapshot(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (d *Daemon) result(w http.ResponseWriter, r *http.Request) {
	j, text, ok := d.snapshot(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	switch j.Status {
	case StatusDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	case StatusFailed, StatusCanceled:
		writeJSON(w, http.StatusConflict, j)
	default:
		// Not finished: tell the client to poll again shortly.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (d *Daemon) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		writeErr(w, http.StatusNotFound, "no such run %q", id)
		return
	}
	cancel := j.cancel
	queued := j.Status == StatusQueued
	d.mu.Unlock()
	cancel()
	if queued {
		// A queued job may be parked before its context wait; mark it
		// terminally now so it never starts.
		d.finish(j, "", sched.Stats{}, context.Canceled)
	}
	jb, _, _ := d.snapshot(id)
	writeJSON(w, http.StatusOK, jb)
}
