package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"carf/internal/sched"
	"carf/internal/store"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// newTestDaemon builds a daemon over an isolated scheduler with a
// controllable job body: jobs block until release is closed.
func newTestDaemon(t *testing.T, o Options) (*Daemon, *httptest.Server) {
	t.Helper()
	if o.Scheduler == nil {
		o.Scheduler = sched.New(2)
	}
	if o.Logger == nil {
		o.Logger = testLogger()
	}
	d := New(o)
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return d, ts
}

// blockingRun returns a runJob body that parks until release closes
// (or the job context dies), plus the release func.
func blockingRun() (func(ctx context.Context, j *Job) (string, sched.Stats, error), func()) {
	release := make(chan struct{})
	var once sync.Once
	fn := func(ctx context.Context, j *Job) (string, sched.Stats, error) {
		select {
		case <-release:
			return "released " + j.ID + "\n", sched.Stats{Runs: 1, Misses: 1}, nil
		case <-ctx.Done():
			return "", sched.Stats{Runs: 1, Canceled: 1}, ctx.Err()
		}
	}
	return fn, func() { once.Do(func() { close(release) }) }
}

func submit(t *testing.T, ts *httptest.Server, client string, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/api/v1/runs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Carf-Client", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

const expBody = `{"experiment":"table2","scale":0.04}`

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestDaemon(t, Options{})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"experiment":"nope"}`, http.StatusBadRequest},
		{`{"kernel":"nope"}`, http.StatusBadRequest},
		{`{"experiment":"table2","kernel":"qsort"}`, http.StatusBadRequest},
		{`{"kernel":"qsort","organization":"bogus"}`, http.StatusBadRequest},
	} {
		resp := submit(t, ts, "c1", tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("submit %s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

func TestPerClientQueueBound(t *testing.T) {
	run, release := blockingRun()
	defer release()
	_, ts := newTestDaemon(t, Options{
		MaxJobs: 100, MaxJobsPerClient: 2, RunningJobs: 1,
		runJob: run,
	})

	// Client A fills its own bound.
	for i := 0; i < 2; i++ {
		resp := submit(t, ts, "client-a", expBody)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Client A's third is shed with 429 + Retry-After.
	resp := submit(t, ts, "client-a", expBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q is not a positive integer", ra)
	}
	resp.Body.Close()

	// Client B is unaffected by A's saturation.
	resp = submit(t, ts, "client-b", expBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("client-b submit: status %d, want 202 (bounds are per client)", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestGlobalBoundAndHealthUnderSaturation(t *testing.T) {
	run, release := blockingRun()
	defer release()
	_, ts := newTestDaemon(t, Options{
		MaxJobs: 3, MaxJobsPerClient: 100, RunningJobs: 1,
		runJob: run,
	})
	for i := 0; i < 3; i++ {
		resp := submit(t, ts, fmt.Sprintf("c%d", i), expBody)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := submit(t, ts, "c-extra", expBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated 429 missing Retry-After")
	}
	resp.Body.Close()

	// A saturated server must still answer /healthz and /metrics
	// promptly — the whole point of shedding instead of absorbing.
	for _, path := range []string{"/healthz", "/metrics", "/runs", "/api/v1/runs"} {
		start := time.Now()
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s while saturated: %v", path, err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while saturated: status %d", path, r.StatusCode)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("GET %s took %v while saturated", path, d)
		}
		if path == "/healthz" {
			var h map[string]any
			if err := json.Unmarshal(body, &h); err != nil {
				t.Fatalf("healthz not JSON: %v", err)
			}
			if h["status"] != "ok" {
				t.Fatalf("healthz status %v under saturation, want ok", h["status"])
			}
			if h["jobs_active"].(float64) != 3 {
				t.Fatalf("healthz jobs_active = %v, want 3", h["jobs_active"])
			}
		}
		if path == "/metrics" && !bytes.Contains(body, []byte("carf_serve_jobs_active 3")) {
			t.Fatalf("/metrics missing carf_serve_jobs_active 3:\n%s", body)
		}
	}

	// Releasing the jobs frees the bound: new submissions are admitted.
	release()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := submit(t, ts, "c-late", expBody)
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission still shed %ds after release (status %d)", 5, code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want string) Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decode[Job](t, resp)
		if j.Status == want {
			return j
		}
		if j.Status == StatusFailed && want != StatusFailed {
			t.Fatalf("job %s failed: %s", id, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, j.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobLifecycleAndResult(t *testing.T) {
	_, ts := newTestDaemon(t, Options{
		runJob: func(ctx context.Context, j *Job) (string, sched.Stats, error) {
			return "rendered output for " + j.Spec.Experiment + "\n", sched.Stats{Runs: 5, Misses: 5}, nil
		},
	})
	resp := submit(t, ts, "c1", expBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	acc := decode[map[string]string](t, resp)
	id := acc["id"]
	j := waitStatus(t, ts, id, StatusDone)
	if j.Sched == nil || j.Sched.Runs != 5 {
		t.Fatalf("job sched summary missing or wrong: %+v", j.Sched)
	}

	r, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", r.StatusCode)
	}
	if string(body) != "rendered output for table2\n" {
		t.Fatalf("result body %q", body)
	}

	// Unknown id paths.
	for _, p := range []string{"/api/v1/runs/r-999999", "/api/v1/runs/r-999999/result"} {
		r, err := ts.Client().Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", p, r.StatusCode)
		}
	}
}

func TestResultBeforeDoneSaysRetry(t *testing.T) {
	run, release := blockingRun()
	defer release()
	_, ts := newTestDaemon(t, Options{runJob: run})
	resp := submit(t, ts, "c1", expBody)
	acc := decode[map[string]string](t, resp)
	r, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + acc["id"] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("result before done: status %d, want 202", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("202 result response missing Retry-After")
	}
}

func TestCancelRun(t *testing.T) {
	run, release := blockingRun()
	defer release()
	_, ts := newTestDaemon(t, Options{runJob: run})
	resp := submit(t, ts, "c1", expBody)
	acc := decode[map[string]string](t, resp)
	id := acc["id"]
	waitStatus(t, ts, id, StatusRunning)

	req, _ := http.NewRequest("DELETE", ts.URL+"/api/v1/runs/"+id, nil)
	r, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", r.StatusCode)
	}
	j := waitStatus(t, ts, id, StatusCanceled)
	if j.Error == "" {
		t.Fatal("canceled job has empty error")
	}
}

func TestShutdownDrains(t *testing.T) {
	run, release := blockingRun()
	sch := sched.New(2)
	d := New(Options{Scheduler: sch, runJob: run, Logger: testLogger()})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	resp := submit(t, ts, "c1", expBody)
	acc := decode[map[string]string](t, resp)
	id := acc["id"]
	waitStatus(t, ts, id, StatusRunning)

	// Shutdown must wait for the in-flight job; release it mid-drain.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- d.Shutdown(ctx)
	}()

	// While draining, new submissions get 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := submit(t, ts, "c2", expBody)
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission during drain: status %d, want 503", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The drained job finished cleanly, not canceled.
	d.mu.Lock()
	j := d.jobs[id]
	status, result := j.Status, j.result
	d.mu.Unlock()
	if status != StatusDone {
		t.Fatalf("drained job status %q, want done", status)
	}
	if result == "" {
		t.Fatal("drained job has no result")
	}
}

func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	run, release := blockingRun()
	defer release()
	sch := sched.New(2)
	d := New(Options{Scheduler: sch, runJob: run, Logger: testLogger()})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	resp := submit(t, ts, "c1", expBody)
	acc := decode[map[string]string](t, resp)
	waitStatus(t, ts, acc["id"], StatusRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := d.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite hung job and expired deadline")
	}
	d.mu.Lock()
	status := d.jobs[acc["id"]].Status
	d.mu.Unlock()
	if status != StatusCanceled {
		t.Fatalf("force-canceled job status %q, want canceled", status)
	}
}

// TestRealExperimentAcrossRestart is the tentpole end-to-end: a real
// (tiny) experiment submitted to a store-backed daemon, the daemon torn
// down, a fresh daemon pointed at the same directory, the same
// experiment resubmitted — and the second pass must be served from the
// disk tier (provenance: disk hits, zero simulations) with byte-
// identical rendered output.
func TestRealExperimentAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	body := `{"experiment":"table2","scale":0.04}`

	runOnce := func() (Job, string) {
		st, err := store.Open(store.Options{Dir: dir, Schema: "serve-test/v1", Logger: testLogger()})
		if err != nil {
			t.Fatal(err)
		}
		d := New(Options{Scheduler: sched.New(2), Store: st, Logger: testLogger(), JobTimeout: 2 * time.Minute})
		ts := httptest.NewServer(d.Handler())
		defer ts.Close()
		resp := submit(t, ts, "c1", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		acc := decode[map[string]string](t, resp)
		j := waitStatus(t, ts, acc["id"], StatusDone)
		r, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + acc["id"] + "/result")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(r.Body)
		r.Body.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		return j, string(text)
	}

	j1, text1 := runOnce()
	if j1.Sched.Misses == 0 {
		t.Fatalf("first pass simulated nothing: %+v", j1.Sched)
	}
	j2, text2 := runOnce()
	if j2.Sched.Misses != 0 {
		t.Fatalf("second pass (fresh process, same store) re-simulated %d runs: %+v", j2.Sched.Misses, j2.Sched)
	}
	if j2.Sched.DiskHits == 0 {
		t.Fatalf("second pass shows no disk-tier hits: %+v", j2.Sched)
	}
	if text1 != text2 {
		t.Fatalf("disk-served output differs from simulated output:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
}

// TestKernelJobAcrossRestart covers the kernel-submission path end to
// end, including persistence of carf.Result.
func TestKernelJobAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	body := `{"kernel":"crc64","scale":0.04}`

	runOnce := func() (Job, string) {
		st, err := store.Open(store.Options{Dir: dir, Schema: "serve-kernel-test/v1", Logger: testLogger()})
		if err != nil {
			t.Fatal(err)
		}
		d := New(Options{Scheduler: sched.New(2), Store: st, Logger: testLogger(), JobTimeout: 2 * time.Minute})
		ts := httptest.NewServer(d.Handler())
		defer ts.Close()
		resp := submit(t, ts, "c1", body)
		acc := decode[map[string]string](t, resp)
		j := waitStatus(t, ts, acc["id"], StatusDone)
		r, err := ts.Client().Get(ts.URL + "/api/v1/runs/" + acc["id"] + "/result")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(r.Body)
		r.Body.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		return j, string(text)
	}

	j1, text1 := runOnce()
	if j1.Sched.Misses != 1 {
		t.Fatalf("first kernel pass: %+v", j1.Sched)
	}
	j2, text2 := runOnce()
	if j2.Sched.DiskHits != 1 || j2.Sched.Misses != 0 {
		t.Fatalf("second kernel pass not a disk hit: %+v", j2.Sched)
	}
	if text1 != text2 {
		t.Fatalf("kernel result differs across restart:\n%s\nvs\n%s", text1, text2)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(text1), &res); err != nil {
		t.Fatalf("kernel result is not JSON: %v", err)
	}
	if res["IPC"].(float64) <= 0 {
		t.Fatalf("kernel result IPC %v", res["IPC"])
	}
}
