package metrics

// Sample is one interval snapshot: the cycle it was taken at and one
// value per registered series, in registry order.
type Sample struct {
	Cycle  uint64
	Values []float64
}

// TimeSeries is an ordered set of samples plus the series names that
// index each sample's Values.
type TimeSeries struct {
	Names   []string
	Samples []Sample
	// Evicted counts samples pushed out of a bounded ring (oldest
	// first); Samples then covers only the tail of the run.
	Evicted uint64
}

// Index returns the Values position of name, or -1.
func (ts TimeSeries) Index(name string) int {
	for i, n := range ts.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Column extracts one series by name across all samples (nil if the
// name is unknown).
func (ts TimeSeries) Column(name string) []float64 {
	idx := ts.Index(name)
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		out[i] = s.Values[idx]
	}
	return out
}

// Last returns the final sample (false when empty).
func (ts TimeSeries) Last() (Sample, bool) {
	if len(ts.Samples) == 0 {
		return Sample{}, false
	}
	return ts.Samples[len(ts.Samples)-1], true
}

// Sampler snapshots a registry every Interval cycles into a time-series
// ring. Tick is cheap on non-sampling cycles (one modulo); sampling
// cycles allocate one Values slice.
type Sampler struct {
	reg      *Registry
	interval uint64

	cap     int // max retained samples; 0 = unbounded
	ring    []Sample
	head    int // oldest element when the ring is full
	full    bool
	evicted uint64

	lastCycle uint64
	sampled   bool
}

// DefaultInterval is the sampling interval used when none is given.
const DefaultInterval = 10_000

// NewSampler builds a sampler over reg that samples every interval
// cycles (<= 0 uses DefaultInterval). The ring is unbounded until
// SetCap.
func NewSampler(reg *Registry, interval uint64) *Sampler {
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Sampler{reg: reg, interval: interval}
}

// Interval returns the sampling interval in cycles.
func (s *Sampler) Interval() uint64 { return s.interval }

// SetCap bounds the ring to the most recent n samples (0 restores
// unbounded growth). It must be called before the first Tick.
func (s *Sampler) SetCap(n int) {
	if len(s.ring) != 0 {
		panic("metrics: SetCap after sampling started")
	}
	s.cap = n
}

// Tick is called once per simulated cycle; it samples when cycle is a
// non-zero multiple of the interval.
func (s *Sampler) Tick(cycle uint64) {
	if cycle == 0 || cycle%s.interval != 0 {
		return
	}
	s.take(cycle)
}

// Final forces a closing sample at cycle (typically end of run) unless
// that cycle was already sampled, so the last sample always reconciles
// with end-of-run totals.
func (s *Sampler) Final(cycle uint64) {
	if s.sampled && s.lastCycle == cycle {
		return
	}
	s.take(cycle)
}

func (s *Sampler) take(cycle uint64) {
	sm := Sample{Cycle: cycle, Values: s.reg.Snapshot(make([]float64, 0, s.reg.Len()))}
	s.lastCycle, s.sampled = cycle, true
	if s.cap <= 0 {
		s.ring = append(s.ring, sm)
		return
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, sm)
		return
	}
	s.ring[s.head] = sm
	s.head = (s.head + 1) % s.cap
	s.full = true
	s.evicted++
}

// Len returns the number of retained samples.
func (s *Sampler) Len() int { return len(s.ring) }

// Latest returns the most recent sample taken (false before the first).
// Progress reporting uses it to attach the newest interval window to a
// live frame without copying the whole series.
func (s *Sampler) Latest() (Sample, bool) {
	if !s.sampled || len(s.ring) == 0 {
		return Sample{}, false
	}
	if s.full {
		idx := s.head - 1
		if idx < 0 {
			idx = len(s.ring) - 1
		}
		return s.ring[idx], true
	}
	return s.ring[len(s.ring)-1], true
}

// Series returns the retained samples oldest-first, with the registry's
// series names.
func (s *Sampler) Series() TimeSeries {
	ts := TimeSeries{Names: s.reg.Names(), Evicted: s.evicted}
	if !s.full {
		ts.Samples = append([]Sample(nil), s.ring...)
		return ts
	}
	ts.Samples = make([]Sample, 0, len(s.ring))
	ts.Samples = append(ts.Samples, s.ring[s.head:]...)
	ts.Samples = append(ts.Samples, s.ring[:s.head]...)
	return ts
}
