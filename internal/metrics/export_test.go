package metrics

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenSeries builds a deterministic two-and-a-half-interval series
// exercising every instrument kind.
func goldenSeries() TimeSeries {
	reg := NewRegistry()
	ops := reg.Counter("ops")
	occ := reg.Gauge("occupancy")
	var num, den float64
	reg.RatioRate("hit.rate", func() float64 { return num }, func() float64 { return den })
	h := reg.Histogram("width", []float64{1, 2, 4})

	s := NewSampler(reg, 10)

	ops.Add(5)
	occ.Set(3.5)
	num, den = 2, 4
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	s.Tick(10)

	ops.Add(7)
	occ.Set(1.25)
	num, den = 5, 8
	h.Observe(8)
	s.Tick(20)

	s.Final(25)
	return s.Series()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, goldenSeries()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "series.jsonl.golden", buf.Bytes())

	// Every line must be a standalone JSON object with a cycle field.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var obj map[string]float64
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %q not valid JSON: %v", line, err)
		}
		if _, ok := obj["cycle"]; !ok {
			t.Fatalf("line %q missing cycle", line)
		}
	}
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenSeries()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "series.csv.golden", buf.Bytes())

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 samples
		t.Fatalf("csv lines = %d, want 4", len(lines))
	}
	cols := len(strings.Split(lines[0], ","))
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != cols {
			t.Fatalf("ragged csv row %q: %d columns, header has %d", l, got, cols)
		}
	}
}

// TestEvictedSurfacedInExports drives a real bounded sampler ring past
// its cap and checks both writers announce the eviction count instead
// of silently exporting a truncated series — and that an unbounded
// sampler's output stays free of the extra row (the goldens above pin
// the exact bytes for that case).
func TestEvictedSurfacedInExports(t *testing.T) {
	reg := NewRegistry()
	ops := reg.Counter("ops")
	s := NewSampler(reg, 10)
	s.SetCap(2)
	for c := uint64(10); c <= 50; c += 10 {
		ops.Add(1)
		s.Tick(c)
	}
	ts := s.Series()
	if ts.Evicted != 3 {
		t.Fatalf("Evicted = %d, want 3 (5 samples, cap 2)", ts.Evicted)
	}

	var jb bytes.Buffer
	if err := WriteJSONL(&jb, ts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if lines[0] != `{"evicted":3}` {
		t.Errorf("jsonl does not lead with the eviction record: %q", lines[0])
	}
	if len(lines) != 3 { // eviction record + 2 retained samples
		t.Errorf("jsonl lines = %d, want 3", len(lines))
	}

	var cb bytes.Buffer
	if err := WriteCSV(&cb, ts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cb.String(), "# evicted=3") {
		t.Errorf("csv does not lead with the eviction comment: %q", cb.String())
	}

	// Zero evictions: no extra row in either format.
	ts.Evicted = 0
	jb.Reset()
	cb.Reset()
	if err := WriteJSONL(&jb, ts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cb, ts); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jb.String(), "evicted") || strings.Contains(cb.String(), "#") {
		t.Error("eviction row emitted for an unevicted series")
	}
}

func TestCSVEscape(t *testing.T) {
	ts := TimeSeries{
		Names:   []string{`odd,"name`},
		Samples: []Sample{{Cycle: 1, Values: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"odd,""name"`) {
		t.Errorf("csv header not escaped: %q", buf.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []ChromeEvent{
		{Name: "execute", Ph: "X", Ts: 10, Dur: 0, Pid: 1, Tid: 2,
			Args: map[string]any{"seq": 7}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	for _, field := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := parsed.TraceEvents[0][field]; !ok {
			t.Errorf("event missing %q (zero values must still serialize)", field)
		}
	}

	// Empty input still produces a loadable trace.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace = %q", buf.String())
	}
}
