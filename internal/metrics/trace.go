package metrics

import (
	"encoding/json"
	"io"
)

// ChromeEvent is one event in the Chrome trace format (the JSON schema
// loaded by Perfetto and chrome://tracing). Simulated cycles map to
// trace microseconds. Dur is always emitted — complete ("X") events
// with zero duration are legal and keep the schema uniform.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope variant of the format, which
// tolerates trailing metadata better than the bare-array variant.
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes events as a Chrome trace JSON object.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	if events == nil {
		events = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
