package metrics

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
)

// formatValue renders a float compactly: integral values without a
// fraction, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSONL exports the time series as JSON lines: one object per
// sample with a leading "cycle" field and one field per series, in
// registry order. A bounded sampler that evicted samples announces the
// loss in a leading {"evicted":N} line so truncation is never silent.
func WriteJSONL(w io.Writer, ts TimeSeries) error {
	bw := bufio.NewWriter(w)
	if ts.Evicted > 0 {
		fmt.Fprintf(bw, "{\"evicted\":%d}\n", ts.Evicted)
	}
	names := make([]string, len(ts.Names))
	for i, n := range ts.Names {
		names[i] = strconv.Quote(n)
	}
	for _, sm := range ts.Samples {
		bw.WriteString(`{"cycle":`)
		bw.WriteString(strconv.FormatUint(sm.Cycle, 10))
		for i, v := range sm.Values {
			bw.WriteByte(',')
			bw.WriteString(names[i])
			bw.WriteByte(':')
			bw.WriteString(formatValue(v))
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV exports the time series as CSV: a header row ("cycle" plus
// the series names) followed by one row per sample. A bounded sampler
// that evicted samples announces the loss in a leading comment row so
// truncation is never silent.
func WriteCSV(w io.Writer, ts TimeSeries) error {
	bw := bufio.NewWriter(w)
	if ts.Evicted > 0 {
		fmt.Fprintf(bw, "# evicted=%d oldest samples dropped by the bounded sampler\n", ts.Evicted)
	}
	bw.WriteString("cycle")
	for _, n := range ts.Names {
		bw.WriteByte(',')
		bw.WriteString(csvEscape(n))
	}
	bw.WriteByte('\n')
	for _, sm := range ts.Samples {
		bw.WriteString(strconv.FormatUint(sm.Cycle, 10))
		for _, v := range sm.Values {
			bw.WriteByte(',')
			bw.WriteString(formatValue(v))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Format names a metrics export encoding.
type Format uint8

const (
	FormatJSONL Format = iota
	FormatCSV
)

// FormatForPath picks an export format from a file extension: .jsonl
// and .json map to JSON lines, .csv to CSV. Anything else is an error
// (callers surface it) rather than a silent JSONL fallback.
func FormatForPath(path string) (Format, error) {
	ext := strings.ToLower(filepath.Ext(path))
	switch ext {
	case ".jsonl", ".json":
		return FormatJSONL, nil
	case ".csv":
		return FormatCSV, nil
	default:
		return FormatJSONL, fmt.Errorf("metrics: cannot infer export format for %q (extension %q; known: .jsonl, .json, .csv)", path, ext)
	}
}

// Write exports ts in the given format.
func Write(w io.Writer, ts TimeSeries, f Format) error {
	switch f {
	case FormatCSV:
		return WriteCSV(w, ts)
	case FormatJSONL:
		return WriteJSONL(w, ts)
	default:
		return fmt.Errorf("metrics: unknown format %d", f)
	}
}
