package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// formatValue renders a float compactly: integral values without a
// fraction, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSONL exports the time series as JSON lines: one object per
// sample with a leading "cycle" field and one field per series, in
// registry order.
func WriteJSONL(w io.Writer, ts TimeSeries) error {
	bw := bufio.NewWriter(w)
	names := make([]string, len(ts.Names))
	for i, n := range ts.Names {
		names[i] = strconv.Quote(n)
	}
	for _, sm := range ts.Samples {
		bw.WriteString(`{"cycle":`)
		bw.WriteString(strconv.FormatUint(sm.Cycle, 10))
		for i, v := range sm.Values {
			bw.WriteByte(',')
			bw.WriteString(names[i])
			bw.WriteByte(':')
			bw.WriteString(formatValue(v))
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV exports the time series as CSV: a header row ("cycle" plus
// the series names) followed by one row per sample.
func WriteCSV(w io.Writer, ts TimeSeries) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("cycle")
	for _, n := range ts.Names {
		bw.WriteByte(',')
		bw.WriteString(csvEscape(n))
	}
	bw.WriteByte('\n')
	for _, sm := range ts.Samples {
		bw.WriteString(strconv.FormatUint(sm.Cycle, 10))
		for _, v := range sm.Values {
			bw.WriteByte(',')
			bw.WriteString(formatValue(v))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Format names a metrics export encoding.
type Format uint8

const (
	FormatJSONL Format = iota
	FormatCSV
)

// FormatForPath picks an export format from a file extension: .csv maps
// to CSV, everything else to JSON lines.
func FormatForPath(path string) Format {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return FormatCSV
	}
	return FormatJSONL
}

// Write exports ts in the given format.
func Write(w io.Writer, ts TimeSeries, f Format) error {
	switch f {
	case FormatCSV:
		return WriteCSV(w, ts)
	case FormatJSONL:
		return WriteJSONL(w, ts)
	default:
		return fmt.Errorf("metrics: unknown format %d", f)
	}
}
