package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	c.Add(3)
	c.Inc()
	g.Set(2.5)
	g.Add(-1)
	vals := reg.Snapshot(nil)
	if len(vals) != 2 || vals[0] != 4 || vals[1] != 1.5 {
		t.Fatalf("snapshot = %v, want [4 1.5]", vals)
	}
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x")
	reg.Gauge("x")
}

func TestGaugeFuncSanitizesNonFinite(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("nan", func() float64 { return math.NaN() })
	reg.GaugeFunc("inf", func() float64 { return math.Inf(1) })
	vals := reg.Snapshot(nil)
	if vals[0] != 0 || vals[1] != 0 {
		t.Fatalf("non-finite values not sanitized: %v", vals)
	}
}

func TestHistogramBucketsAndIntervalMean(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 2, 3, 8} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets: %v %v", bounds, counts)
	}
	want := []uint64{2, 1, 1, 1} // <=1: {0,1}; <=2: {2}; <=4: {3}; over: {8}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
	if h.Mean() != 14.0/5 {
		t.Errorf("mean = %v", h.Mean())
	}
	// First snapshot: interval mean over everything so far.
	if vals := reg.Snapshot(nil); vals[0] != 14.0/5 {
		t.Errorf("interval mean = %v, want %v", vals[0], 14.0/5)
	}
	// New interval: only the new observations count.
	h.Observe(10)
	if vals := reg.Snapshot(nil); vals[0] != 10 {
		t.Errorf("interval mean = %v, want 10", vals[0])
	}
	// Empty interval: 0.
	if vals := reg.Snapshot(nil); vals[0] != 0 {
		t.Errorf("empty interval mean = %v, want 0", vals[0])
	}
}

func TestRatioRate(t *testing.T) {
	reg := NewRegistry()
	var num, den float64
	reg.RatioRate("r", func() float64 { return num }, func() float64 { return den })
	num, den = 2, 4
	if vals := reg.Snapshot(nil); vals[0] != 0.5 {
		t.Fatalf("first sample rate = %v, want 0.5", vals[0])
	}
	num, den = 5, 8
	if vals := reg.Snapshot(nil); vals[0] != 0.75 {
		t.Fatalf("interval rate = %v, want 0.75", vals[0])
	}
	// Denominator stalled: rate is 0, not NaN.
	if vals := reg.Snapshot(nil); vals[0] != 0 {
		t.Fatalf("stalled rate = %v, want 0", vals[0])
	}
}

func TestSamplerIntervalAndFinal(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	s := NewSampler(reg, 10)
	for cycle := uint64(0); cycle <= 35; cycle++ {
		c.Inc()
		s.Tick(cycle)
	}
	s.Final(35)
	s.Final(35) // idempotent at the same cycle
	ts := s.Series()
	cycles := make([]uint64, len(ts.Samples))
	for i, sm := range ts.Samples {
		cycles[i] = sm.Cycle
	}
	want := []uint64{10, 20, 30, 35}
	if len(cycles) != len(want) {
		t.Fatalf("sample cycles = %v, want %v", cycles, want)
	}
	for i := range want {
		if cycles[i] != want[i] {
			t.Fatalf("sample cycles = %v, want %v", cycles, want)
		}
	}
	last, ok := ts.Last()
	if !ok || last.Values[0] != 36 {
		t.Fatalf("final sample = %v, want counter 36", last)
	}
}

func TestSamplerRingEviction(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	s := NewSampler(reg, 1)
	s.SetCap(3)
	for cycle := uint64(1); cycle <= 7; cycle++ {
		c.Inc()
		s.Tick(cycle)
	}
	ts := s.Series()
	if ts.Evicted != 4 {
		t.Errorf("evicted = %d, want 4", ts.Evicted)
	}
	if len(ts.Samples) != 3 {
		t.Fatalf("retained = %d, want 3", len(ts.Samples))
	}
	for i, wantCycle := range []uint64{5, 6, 7} {
		if ts.Samples[i].Cycle != wantCycle {
			t.Fatalf("ring order: got cycles %v", ts.Samples)
		}
	}
}

func TestTimeSeriesColumn(t *testing.T) {
	ts := TimeSeries{
		Names: []string{"a", "b"},
		Samples: []Sample{
			{Cycle: 1, Values: []float64{1, 10}},
			{Cycle: 2, Values: []float64{2, 20}},
		},
	}
	col := ts.Column("b")
	if len(col) != 2 || col[0] != 10 || col[1] != 20 {
		t.Errorf("column b = %v", col)
	}
	if ts.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
	if ts.Index("a") != 0 || ts.Index("zzz") != -1 {
		t.Error("Index misbehaves")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestFormatForPath(t *testing.T) {
	for _, tc := range []struct {
		path string
		want Format
	}{
		{"m.jsonl", FormatJSONL},
		{"m.json", FormatJSONL},
		{"m.CSV", FormatCSV},
		{"out/dir.csv/m.JSONL", FormatJSONL},
	} {
		got, err := FormatForPath(tc.path)
		if err != nil || got != tc.want {
			t.Errorf("FormatForPath(%q) = %v, %v; want %v", tc.path, got, err, tc.want)
		}
	}
	for _, path := range []string{"metrics.txt", "metrics", "m.jsonl.gz", "archive.csv.bak"} {
		if _, err := FormatForPath(path); err == nil {
			t.Errorf("FormatForPath(%q) accepted an unknown extension", path)
		}
	}
}

func TestSyncHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.SyncHistogram("lat", []float64{1, 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(float64(g%3) * 5)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Errorf("count = %d, want 800", h.Count())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("buckets = %v / %v", bounds, counts)
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != 800 {
		t.Errorf("bucket counts sum to %d, want 800", sum)
	}
	// The registry series value is the per-interval mean, like Histogram.
	snap := r.Snapshot(nil)
	if want := h.Sum() / 800; snap[0] != want {
		t.Errorf("first snapshot = %v, want mean %v", snap[0], want)
	}
	if snap := r.Snapshot(nil); snap[0] != 0 {
		t.Errorf("quiet interval mean = %v, want 0", snap[0])
	}
}

func TestRegistryRead(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("commits")
	g := r.Gauge("occupancy")
	r.GaugeFunc("fn", func() float64 { return 7 })
	h := r.Histogram("lat", []float64{1, 10})
	var num, den float64
	r.RatioRate("ipc", func() float64 { return num }, func() float64 { return den })

	c.Add(3)
	g.Set(2.5)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)
	num, den = 30, 10

	// Interleave a Snapshot to prove Read does not perturb (and is not
	// perturbed by) interval state.
	r.Snapshot(nil)
	h.Observe(5)

	reads := r.Read()
	want := map[string]struct {
		kind  ReadingKind
		value float64
	}{
		"commits":   {ReadCounter, 3},
		"occupancy": {ReadGauge, 2.5},
		"fn":        {ReadGauge, 7},
		"ipc":       {ReadGauge, 3},
	}
	byName := map[string]Reading{}
	for _, rd := range reads {
		byName[rd.Name] = rd
	}
	for name, w := range want {
		rd, ok := byName[name]
		if !ok {
			t.Fatalf("missing reading %s", name)
		}
		if rd.Kind != w.kind || rd.Value != w.value {
			t.Errorf("%s = kind %d value %v, want kind %d value %v", name, rd.Kind, rd.Value, w.kind, w.value)
		}
	}
	hr := byName["lat"]
	if hr.Kind != ReadHistogram || hr.Count != 4 || hr.Sum != 110.5 {
		t.Errorf("histogram reading = %+v, want count 4 sum 110.5", hr)
	}
	if len(hr.Bounds) != 2 || len(hr.Counts) != 3 {
		t.Fatalf("histogram reading buckets = %v / %v", hr.Bounds, hr.Counts)
	}
	if hr.Counts[0] != 1 || hr.Counts[1] != 2 || hr.Counts[2] != 1 {
		t.Errorf("histogram reading counts = %v", hr.Counts)
	}
	// Cumulative readings must be identical on a second call.
	again := r.Read()
	for i := range again {
		if again[i].Name == "lat" && again[i].Count != 4 {
			t.Errorf("second read count = %d", again[i].Count)
		}
	}
}

func TestSamplerLatest(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	s := NewSampler(reg, 10)
	if _, ok := s.Latest(); ok {
		t.Fatal("Latest reported a sample before any was taken")
	}
	for cycle := uint64(0); cycle <= 25; cycle++ {
		c.Inc()
		s.Tick(cycle)
	}
	sm, ok := s.Latest()
	if !ok || sm.Cycle != 20 {
		t.Fatalf("latest = %+v ok=%v, want the cycle-20 sample", sm, ok)
	}
	s.Final(25)
	sm, ok = s.Latest()
	if !ok || sm.Cycle != 25 {
		t.Fatalf("latest after Final = %+v ok=%v, want cycle 25", sm, ok)
	}

	// With a bounded ring that has wrapped, Latest must still be the
	// newest sample, not the oldest slot.
	reg2 := NewRegistry()
	c2 := reg2.Counter("c")
	s2 := NewSampler(reg2, 10)
	s2.SetCap(2)
	for cycle := uint64(0); cycle <= 75; cycle++ {
		c2.Inc()
		s2.Tick(cycle)
	}
	sm, ok = s2.Latest()
	if !ok || sm.Cycle != 70 {
		t.Fatalf("latest after wrap = %+v ok=%v, want the cycle-70 sample", sm, ok)
	}
}
