// Package metrics is the simulator's unified observability layer: a
// registry of named counters, gauges, and fixed-bucket histograms with a
// zero-allocation hot path, an interval sampler that snapshots every
// registered series into a time-series ring, and machine-readable
// exporters (JSON lines, CSV, Chrome trace format).
//
// Components register instruments once at construction time and update
// them with plain field arithmetic during simulation; all aggregation,
// derivation (interval rates, ratios), and allocation happens at
// snapshot time, every sampling interval.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; Inc/Add are single-field increments with no allocation.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the cumulative count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Bounds[i]; one implicit overflow bucket counts the
// rest. Observe is a linear scan over a handful of bounds plus two
// field increments — no allocation.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64

	// Interval state, advanced by snapshot.
	prevCount uint64
	prevSum   float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns the bucket upper bounds and their counts; the final
// count (one past the last bound) is the overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// kind discriminates the instrument union inside the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindRatioRate
)

// instrument is one registered series.
type instrument struct {
	name string
	kind kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram

	// RatioRate state: interval delta(num)/delta(den).
	num, den         func() float64
	prevNum, prevDen float64
	ratePrimed       bool
}

// Registry holds named instruments in registration order. It is not
// safe for concurrent use; each simulated core owns its own registry
// (experiment harnesses run one registry per simulation goroutine).
type Registry struct {
	instruments []*instrument
	byName      map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

func (r *Registry) add(in *instrument) {
	if _, dup := r.byName[in.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate instrument %q", in.name))
	}
	r.instruments = append(r.instruments, in)
	r.byName[in.name] = in
}

// Counter registers and returns a counter. Registering a duplicate name
// panics (instrument sets are static configuration).
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(&instrument{name: name, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.add(&instrument{name: name, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the instrument of choice for cumulative totals and occupancies
// already maintained by the component (zero hot-path cost).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.add(&instrument{name: name, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers a fixed-bucket histogram with the given ascending
// upper bounds (an overflow bucket is implicit). Its series value is the
// per-interval mean of new observations.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.add(&instrument{name: name, kind: kindHistogram, hist: h})
	return h
}

// RatioRate registers a derived series sampled as
// delta(num)/delta(den) over each interval (0 when den did not move) —
// interval IPC, miss rates, bypass rates, prediction accuracy.
func (r *Registry) RatioRate(name string, num, den func() float64) {
	r.add(&instrument{name: name, kind: kindRatioRate, num: num, den: den})
}

// Names returns the series names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.instruments))
	for i, in := range r.instruments {
		out[i] = in.name
	}
	return out
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.instruments) }

// Snapshot appends one value per instrument (registration order) to out
// and returns it. It advances interval state (rates, histogram means),
// so exactly one caller — normally a Sampler — should drive it.
// Non-finite values are sanitized to 0 so every export format stays
// valid.
func (r *Registry) Snapshot(out []float64) []float64 {
	for _, in := range r.instruments {
		var v float64
		switch in.kind {
		case kindCounter:
			v = float64(in.counter.v)
		case kindGauge:
			v = in.gauge.v
		case kindGaugeFunc:
			v = in.fn()
		case kindHistogram:
			h := in.hist
			if dc := h.count - h.prevCount; dc > 0 {
				v = (h.sum - h.prevSum) / float64(dc)
			}
			h.prevCount, h.prevSum = h.count, h.sum
		case kindRatioRate:
			num, den := in.num(), in.den()
			if in.ratePrimed {
				if dd := den - in.prevDen; dd != 0 {
					v = (num - in.prevNum) / dd
				}
			} else if den != 0 {
				// First sample: rate over everything so far.
				v = num / den
			}
			in.prevNum, in.prevDen, in.ratePrimed = num, den, true
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out = append(out, v)
	}
	return out
}

// Summary describes one series' distribution across samples.
type Summary struct {
	Mean, Stddev, Min, Max float64
	N                      int
}

// Summarize computes mean/stddev/min/max of xs (zero Summary if empty).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(len(xs)))
	return s
}
