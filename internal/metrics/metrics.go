// Package metrics is the simulator's unified observability layer: a
// registry of named counters, gauges, and fixed-bucket histograms with a
// zero-allocation hot path, an interval sampler that snapshots every
// registered series into a time-series ring, and machine-readable
// exporters (JSON lines, CSV, Chrome trace format).
//
// Components register instruments once at construction time and update
// them with plain field arithmetic during simulation; all aggregation,
// derivation (interval rates, ratios), and allocation happens at
// snapshot time, every sampling interval.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; Inc/Add are single-field increments with no allocation.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the cumulative count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Bounds[i]; one implicit overflow bucket counts the
// rest. Observe is a linear scan over a handful of bounds plus two
// field increments — no allocation.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64

	// Interval state, advanced by snapshot.
	prevCount uint64
	prevSum   float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns the bucket upper bounds and their counts; the final
// count (one past the last bound) is the overflow bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// SyncHistogram is a Histogram whose Observe is safe for concurrent
// use. It exists for series fed from many goroutines at once — the
// simulation scheduler's per-run latencies — where the plain Histogram's
// lock-free hot path would race. Snapshot and Read lock it too, so a
// registry holding only SyncHistograms and self-synchronizing gauge
// funcs may be read while its owners are still updating.
type SyncHistogram struct {
	mu sync.Mutex
	h  Histogram
}

// Observe records one observation.
func (h *SyncHistogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *SyncHistogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.count
}

// Sum returns the sum of all observations.
func (h *SyncHistogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *SyncHistogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Mean()
}

// Buckets returns copies of the bucket upper bounds and counts; the
// final count is the overflow bucket.
func (h *SyncHistogram) Buckets() (bounds []float64, counts []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Buckets()
}

// read returns a consistent (bounds, counts, count, sum) snapshot under
// one lock acquisition.
func (h *SyncHistogram) read() ([]float64, []uint64, uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds, counts := h.h.Buckets()
	return bounds, counts, h.h.count, h.h.sum
}

// intervalMean advances interval state and returns the mean of the
// observations recorded since the previous call (0 if none).
func (h *SyncHistogram) intervalMean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var v float64
	if dc := h.h.count - h.h.prevCount; dc > 0 {
		v = (h.h.sum - h.h.prevSum) / float64(dc)
	}
	h.h.prevCount, h.h.prevSum = h.h.count, h.h.sum
	return v
}

// kind discriminates the instrument union inside the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindSyncHistogram
	kindRatioRate
)

// instrument is one registered series.
type instrument struct {
	name string
	kind kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	shist   *SyncHistogram

	// RatioRate state: interval delta(num)/delta(den).
	num, den         func() float64
	prevNum, prevDen float64
	ratePrimed       bool
}

// Registry holds named instruments in registration order. It is not
// safe for concurrent use; each simulated core owns its own registry
// (experiment harnesses run one registry per simulation goroutine).
type Registry struct {
	instruments []*instrument
	byName      map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

func (r *Registry) add(in *instrument) {
	if _, dup := r.byName[in.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate instrument %q", in.name))
	}
	r.instruments = append(r.instruments, in)
	r.byName[in.name] = in
}

// Counter registers and returns a counter. Registering a duplicate name
// panics (instrument sets are static configuration).
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(&instrument{name: name, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.add(&instrument{name: name, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the instrument of choice for cumulative totals and occupancies
// already maintained by the component (zero hot-path cost).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.add(&instrument{name: name, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers a fixed-bucket histogram with the given ascending
// upper bounds (an overflow bucket is implicit). Its series value is the
// per-interval mean of new observations.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.add(&instrument{name: name, kind: kindHistogram, hist: h})
	return h
}

// SyncHistogram registers a fixed-bucket histogram whose Observe is
// safe for concurrent use (see the type). Its series value is the
// per-interval mean of new observations, like Histogram's.
func (r *Registry) SyncHistogram(name string, bounds []float64) *SyncHistogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	h := &SyncHistogram{h: Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}}
	r.add(&instrument{name: name, kind: kindSyncHistogram, shist: h})
	return h
}

// RatioRate registers a derived series sampled as
// delta(num)/delta(den) over each interval (0 when den did not move) —
// interval IPC, miss rates, bypass rates, prediction accuracy.
func (r *Registry) RatioRate(name string, num, den func() float64) {
	r.add(&instrument{name: name, kind: kindRatioRate, num: num, den: den})
}

// Names returns the series names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.instruments))
	for i, in := range r.instruments {
		out[i] = in.name
	}
	return out
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.instruments) }

// Snapshot appends one value per instrument (registration order) to out
// and returns it. It advances interval state (rates, histogram means),
// so exactly one caller — normally a Sampler — should drive it.
// Non-finite values are sanitized to 0 so every export format stays
// valid.
func (r *Registry) Snapshot(out []float64) []float64 {
	for _, in := range r.instruments {
		var v float64
		switch in.kind {
		case kindCounter:
			v = float64(in.counter.v)
		case kindGauge:
			v = in.gauge.v
		case kindGaugeFunc:
			v = in.fn()
		case kindHistogram:
			h := in.hist
			if dc := h.count - h.prevCount; dc > 0 {
				v = (h.sum - h.prevSum) / float64(dc)
			}
			h.prevCount, h.prevSum = h.count, h.sum
		case kindSyncHistogram:
			v = in.shist.intervalMean()
		case kindRatioRate:
			num, den := in.num(), in.den()
			if in.ratePrimed {
				if dd := den - in.prevDen; dd != 0 {
					v = (num - in.prevNum) / dd
				}
			} else if den != 0 {
				// First sample: rate over everything so far.
				v = num / den
			}
			in.prevNum, in.prevDen, in.ratePrimed = num, den, true
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out = append(out, v)
	}
	return out
}

// ReadingKind classifies an instrument in a Reading: counters and
// gauges carry one cumulative Value, histograms carry their buckets.
type ReadingKind uint8

const (
	ReadCounter ReadingKind = iota
	ReadGauge
	ReadHistogram
)

// Reading is one instrument's cumulative state at read time. Unlike
// Snapshot values (which are per-interval deltas for histograms and
// rates), readings are whole-life totals — the shape Prometheus
// exposition wants.
type Reading struct {
	Name string
	Kind ReadingKind

	// Value is the cumulative count (counters), current value (gauges
	// and gauge funcs), or cumulative ratio num/den (ratio rates; 0 when
	// den is 0).
	Value float64

	// Histograms only: bucket upper bounds, per-bucket counts (one
	// trailing overflow bucket), total count, and sum of observations.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Read returns one cumulative Reading per instrument in registration
// order. It never advances interval state, so it may be called freely
// alongside a Sampler. It is as concurrency-safe as the instruments
// themselves: self-synchronizing gauge funcs and SyncHistograms may be
// read live, plain counters/gauges/histograms only once their owner is
// quiescent.
func (r *Registry) Read() []Reading {
	out := make([]Reading, 0, len(r.instruments))
	for _, in := range r.instruments {
		rd := Reading{Name: in.name}
		switch in.kind {
		case kindCounter:
			rd.Kind = ReadCounter
			rd.Value = float64(in.counter.v)
		case kindGauge:
			rd.Kind = ReadGauge
			rd.Value = in.gauge.v
		case kindGaugeFunc:
			rd.Kind = ReadGauge
			rd.Value = in.fn()
		case kindHistogram:
			rd.Kind = ReadHistogram
			rd.Bounds, rd.Counts = in.hist.Buckets()
			rd.Count, rd.Sum = in.hist.count, in.hist.sum
		case kindSyncHistogram:
			rd.Kind = ReadHistogram
			rd.Bounds, rd.Counts, rd.Count, rd.Sum = in.shist.read()
		case kindRatioRate:
			rd.Kind = ReadGauge
			if den := in.den(); den != 0 {
				rd.Value = in.num() / den
			}
		}
		if math.IsNaN(rd.Value) || math.IsInf(rd.Value, 0) {
			rd.Value = 0
		}
		out = append(out, rd)
	}
	return out
}

// Summary describes one series' distribution across samples.
type Summary struct {
	Mean, Stddev, Min, Max float64
	N                      int
}

// Summarize computes mean/stddev/min/max of xs (zero Summary if empty).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(len(xs)))
	return s
}
