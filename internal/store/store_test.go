package store

import (
	"encoding/gob"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"carf/internal/sched"
)

type payload struct {
	Name  string
	Vals  []float64
	Count uint64
}

func init() { gob.Register(payload{}) }

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

func open(t *testing.T, dir string, opts ...func(*Options)) *Store {
	t.Helper()
	o := Options{Dir: dir, Schema: "test-schema/v1", Logger: testLogger()}
	for _, f := range opts {
		f(&o)
	}
	s, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func key(b byte) sched.Key {
	var k sched.Key
	k[0] = b
	return k
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	want := payload{Name: "fib", Vals: []float64{1, 1, 2, 3}, Count: 42}
	s.Store(key(1), want)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh store (fresh memory tier) must serve the value from disk.
	s2 := open(t, dir)
	v, ok := s2.Load(key(1))
	if !ok {
		t.Fatal("Load after reopen: miss, want disk hit")
	}
	got, ok := v.(payload)
	if !ok {
		t.Fatalf("Load returned %T, want payload", v)
	}
	if got.Name != want.Name || got.Count != want.Count || len(got.Vals) != len(want.Vals) {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, want)
	}
	st := s2.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
	// Second load of the same key is a memory hit (promoted on disk read).
	if _, ok := s2.Load(key(1)); !ok {
		t.Fatal("second Load: miss")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("MemHits = %d, want 1", st.MemHits)
	}
}

func TestMissOnAbsentKey(t *testing.T) {
	s := open(t, t.TempDir())
	if _, ok := s.Load(key(9)); ok {
		t.Fatal("Load of absent key: hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
}

func TestTruncatedBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Store(key(2), payload{Name: "victim", Count: 7})
	path := s.blobPath(key(2))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	// Simulate a crash mid-write that somehow survived as a named blob:
	// chop the payload tail.
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatalf("truncate blob: %v", err)
	}

	s2 := open(t, dir)
	if _, ok := s2.Load(key(2)); ok {
		t.Fatal("Load of truncated blob: hit, want quarantined miss")
	}
	st := s2.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	// The corrupt blob is preserved under quarantine/ and gone from the
	// serving directory.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob still present at %s (err=%v)", path, err)
	}
	q, err := os.ReadDir(filepath.Join(s2.dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir: %v entries, err=%v; want 1", len(q), err)
	}
	// Misses are re-storable: a re-simulated value replaces the blob.
	s2.Store(key(2), payload{Name: "victim", Count: 7})
	s3 := open(t, dir)
	if _, ok := s3.Load(key(2)); !ok {
		t.Fatal("Load after re-store: miss")
	}
}

func TestCorruptPayloadBitsQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Store(key(3), payload{Name: "bits", Count: 1})
	path := s.blobPath(key(3))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip bits in the payload, size stays right
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if _, ok := s2.Load(key(3)); ok {
		t.Fatal("Load of bit-flipped blob: hit, want quarantined miss")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

func TestForeignSchemaNotServed(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Store(key(4), payload{Name: "old"})
	s.Close()

	s2 := open(t, dir, func(o *Options) { o.Schema = "test-schema/v2" })
	if _, ok := s2.Load(key(4)); ok {
		t.Fatal("v2 store served a v1 blob")
	}
	// Different schema hashes to a different namespace directory, so the
	// v1 blob is untouched, not quarantined.
	if st := s2.Stats(); st.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0 (namespaces are separate)", st.Quarantined)
	}
	s3 := open(t, dir)
	if _, ok := s3.Load(key(4)); !ok {
		t.Fatal("v1 blob lost after v2 store opened")
	}
}

func TestTmpSweepAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Store(key(5), payload{Name: "keep"})
	// A crashed writer leaves a temporary behind.
	stray := filepath.Join(s.dir, "deadbeef-12345.tmp")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray .tmp survived Open (err=%v)", err)
	}
	if _, ok := s2.Load(key(5)); !ok {
		t.Fatal("valid blob lost during sweep")
	}
	if st := s2.Stats(); st.DiskBlobs != 1 {
		t.Fatalf("DiskBlobs = %d, want 1", st.DiskBlobs)
	}
}

func TestDegradeWhenDirIsAFile(t *testing.T) {
	// Running as root ignores permission bits, so the reliable way to
	// make the disk tier unavailable is a path that cannot be a
	// directory.
	base := t.TempDir()
	file := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, file)
	st := s.Stats()
	if !st.Degraded || st.Mode != "memory-only" {
		t.Fatalf("store not degraded: %+v", st)
	}
	if st.Reason == "" {
		t.Fatal("degraded store has empty Reason")
	}
	// Still fully functional in memory.
	s.Store(key(6), payload{Name: "mem"})
	if _, ok := s.Load(key(6)); !ok {
		t.Fatal("memory-only store lost a value")
	}
}

func TestMemoryOnlyByChoice(t *testing.T) {
	s := open(t, "")
	st := s.Stats()
	if st.Degraded {
		t.Fatalf("Dir=\"\" should be memory-only by choice, not degraded: %+v", st)
	}
	s.Store(key(7), payload{Name: "m"})
	if _, ok := s.Load(key(7)); !ok {
		t.Fatal("miss in memory-only store")
	}
}

func TestUnencodableValueSkipped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	type unregistered struct{ X chan int } // gob cannot encode chans
	s.Store(key(8), unregistered{})
	st := s.Stats()
	if st.PutSkipped != 1 {
		t.Fatalf("PutSkipped = %d, want 1", st.PutSkipped)
	}
	if st.Degraded {
		t.Fatal("unencodable value degraded the store")
	}
	// The value still serves from the memory tier.
	if _, ok := s.Load(key(8)); !ok {
		t.Fatal("unencodable value not served from memory tier")
	}
}

func TestMemLRUEviction(t *testing.T) {
	s := open(t, t.TempDir(), func(o *Options) { o.MemEntries = 2 })
	s.Store(key(1), payload{Name: "a"})
	s.Store(key(2), payload{Name: "b"})
	s.Store(key(3), payload{Name: "c"}) // evicts key(1) from memory
	st := s.Stats()
	if st.MemEntries != 2 {
		t.Fatalf("MemEntries = %d, want 2", st.MemEntries)
	}
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	// Evicted from memory, but still on disk.
	if _, ok := s.Load(key(1)); !ok {
		t.Fatal("evicted key not recoverable from disk")
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
}

func TestDegradeOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	// Pull the directory out from under the store to force a write error.
	if err := os.RemoveAll(s.dir); err != nil {
		t.Fatal(err)
	}
	s.Store(key(9), payload{Name: "doomed"})
	st := s.Stats()
	if !st.Degraded {
		t.Fatalf("write failure did not degrade the store: %+v", st)
	}
	if st.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want 1", st.PutErrors)
	}
	// The store keeps serving from memory after degradation.
	if _, ok := s.Load(key(9)); !ok {
		t.Fatal("degraded store lost the value")
	}
	s.Store(key(10), payload{Name: "after"})
	if _, ok := s.Load(key(10)); !ok {
		t.Fatal("degraded store cannot store new values in memory")
	}
}

func TestImplementsSchedTier(t *testing.T) {
	var _ sched.Tier = (*Store)(nil)
}

func TestReadingsShape(t *testing.T) {
	s := open(t, t.TempDir())
	s.Store(key(11), payload{Name: "r"})
	rs := s.Readings()
	found := map[string]bool{}
	for _, r := range rs {
		if !strings.HasPrefix(r.Name, "store.") {
			t.Fatalf("reading %q lacks store. prefix", r.Name)
		}
		found[r.Name] = true
	}
	for _, want := range []string{"store.disk_blobs", "store.degraded", "store.puts_total", "store.quarantined_total"} {
		if !found[want] {
			t.Fatalf("Readings missing %s", want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := open(t, t.TempDir(), func(o *Options) { o.MemEntries = 8 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(byte(i % 16))
				if i%3 == 0 {
					s.Store(k, payload{Name: fmt.Sprintf("g%d-i%d", g, i), Count: uint64(i)})
				} else {
					s.Load(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Degraded {
		t.Fatalf("concurrent access degraded the store: %+v", st)
	}
}
