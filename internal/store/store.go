// Package store is the persistent half of the simulation result cache:
// a tiered store — a small in-memory LRU of decoded values over
// on-disk content-addressed blobs — that implements sched.Tier, so a
// scheduler wired to it serves previously computed runs across process
// restarts.
//
// Crash safety is the design center:
//
//   - Blobs are written to a temporary file and renamed into place, so
//     a crash mid-write never leaves a partially-written blob under a
//     valid name. Leftover temporaries are swept on Open.
//   - Every blob carries a header with the run-key schema string and a
//     sha256 checksum of its payload. Both are verified on every read;
//     a blob that fails verification (truncated by a crash, flipped
//     bits, foreign schema) is quarantined — moved aside, never served,
//     never fatal — and the read reports a miss so the scheduler simply
//     re-simulates.
//   - When the blob directory is missing, not creatable, or not
//     writable (read-only volume), the store degrades to memory-only
//     operation: it logs the reason loudly once, keeps serving, and
//     surfaces the degradation in Stats for /healthz.
//
// Blobs are namespaced by a hash of the schema string, so a schema
// bump (a change to the persisted value encoding) starts a fresh
// namespace instead of serving stale bytes; old namespaces are left on
// disk for manual cleanup or rollback.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"carf/internal/metrics"
	"carf/internal/sched"
)

// blobMagic identifies the on-disk blob container format (the header
// layout), independent of the payload schema the header then names.
const blobMagic = "carf-blob/v1"

// Codec converts cached values to and from blob payloads. Encode may
// reject a value it cannot represent (the store then skips persisting
// it — counted, not fatal); Decode must reject payloads it cannot
// faithfully reconstruct.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

// GobCodec encodes values with encoding/gob through an interface
// envelope: any concrete type registered with gob.Register round-trips;
// unregistered types fail Encode (the store counts and skips them).
type GobCodec struct{}

// Encode implements Codec.
func (GobCodec) Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec) Decode(b []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// Options configures Open.
type Options struct {
	// Dir is the blob directory root ("" = memory-only by choice, not
	// degradation). The store manages a schema-named subdirectory.
	Dir string

	// Schema versions the persisted payload encoding; it must change
	// whenever the meaning or encoding of stored values changes.
	// Required.
	Schema string

	// MemEntries bounds the in-memory tier (decoded values, LRU).
	// 0 takes DefaultMemEntries; negative disables the memory tier.
	MemEntries int

	// Codec converts values to blob payloads (default GobCodec).
	Codec Codec

	// Logger receives degradation and quarantine reports (default
	// slog.Default()).
	Logger *slog.Logger

	// LeaseTimeout is how long a cross-process lease may go without a
	// heartbeat before another process may take it over (see TryLock).
	// 0 takes DefaultLeaseTimeout. Lower it only in tests: a takeover of
	// a *live* holder duplicates work (never corrupts — blob writes stay
	// atomic and results are deterministic).
	LeaseTimeout time.Duration
}

// DefaultMemEntries is the in-memory tier bound when Options.MemEntries
// is zero.
const DefaultMemEntries = 256

// Stats is a snapshot of the store's counters and condition, shaped for
// /healthz and logs.
type Stats struct {
	Dir        string `json:"dir,omitempty"`    // schema-namespaced blob directory ("" when memory-only)
	Mode       string `json:"mode"`             // "disk" or "memory-only"
	Reason     string `json:"reason,omitempty"` // why the store is memory-only, when degraded
	Degraded   bool   `json:"degraded"`         // true when disk was requested but is unavailable
	MemEntries int    `json:"mem_entries"`      // decoded values held in the memory tier
	DiskBlobs  int    `json:"disk_blobs"`       // valid blobs believed on disk

	MemHits     uint64 `json:"mem_hits"`
	DiskHits    uint64 `json:"disk_hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	PutSkipped  uint64 `json:"put_skipped"` // values the codec cannot represent
	PutErrors   uint64 `json:"put_errors"`  // disk writes that failed (triggers degradation)
	Quarantined uint64 `json:"quarantined"` // corrupt blobs moved aside
	Evictions   uint64 `json:"evictions"`   // memory-tier LRU evictions

	LeasesAcquired uint64 `json:"leases_acquired,omitempty"` // cross-process leases won (incl. takeovers)
	LeaseLosses    uint64 `json:"lease_losses,omitempty"`    // TryLock calls that found a live peer's lease
	LeaseTakeovers uint64 `json:"lease_takeovers,omitempty"` // stale leases (crashed holder) taken over
}

// Store is the tiered result store. All methods are safe for concurrent
// use. It implements sched.Tier.
type Store struct {
	dir      string // schema-namespaced root; "" when memory-only
	qdir     string // quarantine directory under dir
	leaseDir string // cross-process lease directory under dir
	schema   string
	codec    Codec
	log      *slog.Logger
	memCap   int
	leaseTTL time.Duration

	mu     sync.Mutex
	mem    map[sched.Key]any
	lru    *list.List // front = most recent; values are sched.Key
	lruPos map[sched.Key]*list.Element
	st     Stats
	closed bool
}

// Open opens (creating if needed) the store rooted at o.Dir. Disk
// problems never fail Open: the store degrades to memory-only operation
// and says so loudly — check Stats().Degraded when the distinction
// matters. The only error is a missing schema.
func Open(o Options) (*Store, error) {
	if o.Schema == "" {
		return nil, fmt.Errorf("store: Options.Schema is required (it versions the persisted encoding)")
	}
	if o.Codec == nil {
		o.Codec = GobCodec{}
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	memCap := o.MemEntries
	switch {
	case memCap == 0:
		memCap = DefaultMemEntries
	case memCap < 0:
		memCap = 0 // memory tier disabled
	}
	ttl := o.LeaseTimeout
	if ttl <= 0 {
		ttl = DefaultLeaseTimeout
	}
	s := &Store{
		schema:   o.Schema,
		codec:    o.Codec,
		log:      o.Logger,
		memCap:   memCap,
		leaseTTL: ttl,
		mem:      make(map[sched.Key]any),
		lru:      list.New(),
		lruPos:   make(map[sched.Key]*list.Element),
	}
	s.st.Mode = "memory-only"
	if o.Dir == "" {
		return s, nil
	}

	sum := sha256.Sum256([]byte(o.Schema))
	dir := filepath.Join(o.Dir, "schema-"+hex.EncodeToString(sum[:4]))
	if err := s.initDisk(dir); err != nil {
		s.degradeLocked(fmt.Sprintf("disk tier unavailable: %v", err))
		return s, nil
	}
	s.dir = dir
	s.qdir = filepath.Join(dir, "quarantine")
	s.leaseDir = filepath.Join(dir, "leases")
	s.st.Dir = dir
	s.st.Mode = "disk"
	return s, nil
}

// initDisk creates the schema directory, proves it writable, records
// the schema text for humans, sweeps crash leftovers, and counts blobs.
func (s *Store) initDisk(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dir, "leases"), 0o755); err != nil {
		return err
	}
	// Write-probe: a read-only volume fails here, not on the first Put.
	probe := filepath.Join(dir, ".probe.tmp")
	if err := os.WriteFile(probe, []byte(blobMagic), 0o644); err != nil {
		return fmt.Errorf("directory is not writable: %w", err)
	}
	os.Remove(probe)
	// Best-effort human-readable schema marker.
	os.WriteFile(filepath.Join(dir, "SCHEMA"), []byte(s.schema+"\n"), 0o644) //nolint:errcheck
	// Sweep temporaries a crashed writer left behind and count blobs.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	blobs := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
		case filepath.Ext(name) == ".tmp":
			os.Remove(filepath.Join(dir, name))
			s.log.Info("store: removed interrupted write", "file", name)
		case filepath.Ext(name) == ".blob":
			blobs++
		}
	}
	s.st.DiskBlobs = blobs
	return nil
}

// degradeLocked switches the store to memory-only operation. Callers
// may hold s.mu or not (Open calls it before the store is shared).
func (s *Store) degradeLocked(reason string) {
	s.dir = ""
	s.st.Mode = "memory-only"
	s.st.Degraded = true
	s.st.Reason = reason
	s.st.Dir = ""
	s.log.Error("store: DEGRADED to memory-only operation — results will not survive restarts", "reason", reason)
}

// blobPath returns the blob file for key.
func (s *Store) blobPath(key sched.Key) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+".blob")
}

// header is the JSON first line of every blob.
type header struct {
	Magic  string `json:"magic"`
	Schema string `json:"schema"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Load implements sched.Tier: memory tier first, then disk. A corrupt
// blob is quarantined and reported as a miss.
func (s *Store) Load(key sched.Key) (any, bool) {
	s.mu.Lock()
	if v, ok := s.mem[key]; ok {
		s.st.MemHits++
		if el, ok := s.lruPos[key]; ok {
			s.lru.MoveToFront(el)
		}
		s.mu.Unlock()
		return v, true
	}
	dir := s.dir
	s.mu.Unlock()

	if dir == "" {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	path := s.blobPath(key)
	payload, err := s.readBlob(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.count(func(st *Stats) { st.Misses++ })
		} else {
			s.quarantine(path, err)
			s.count(func(st *Stats) { st.Misses++ })
		}
		return nil, false
	}
	v, err := s.codec.Decode(payload)
	if err != nil {
		// The bytes are intact but no longer decodable (a type fell out
		// of registration): quarantine, same as corruption.
		s.quarantine(path, fmt.Errorf("payload does not decode: %w", err))
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	}
	s.mu.Lock()
	s.st.DiskHits++
	s.memInsert(key, v)
	s.mu.Unlock()
	return v, true
}

// readBlob reads and verifies one blob file, returning its payload.
// Any verification failure is an error distinct from fs.ErrNotExist.
func (s *Store) readBlob(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := newLineReader(f)
	line, err := r.line()
	if err != nil {
		return nil, fmt.Errorf("blob header unreadable: %w", err)
	}
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("blob header is not valid JSON: %w", err)
	}
	if h.Magic != blobMagic {
		return nil, fmt.Errorf("blob magic %q, want %q", h.Magic, blobMagic)
	}
	if h.Schema != s.schema {
		return nil, fmt.Errorf("blob schema %q, store schema %q", h.Schema, s.schema)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("blob payload unreadable: %w", err)
	}
	if int64(len(payload)) != h.Size {
		return nil, fmt.Errorf("blob payload is %d bytes, header says %d (truncated write?)", len(payload), h.Size)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != h.SHA256 {
		return nil, fmt.Errorf("blob checksum mismatch: payload %s, header %s", got[:8], h.SHA256[:min(8, len(h.SHA256))])
	}
	return payload, nil
}

// quarantine moves a bad blob aside so it is never served again and
// never re-verified on every request, preserving it for post-mortems.
func (s *Store) quarantine(path string, cause error) {
	dst := filepath.Join(s.qdir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		// Could not move it (gone already, or read-only disk): removing
		// is the next best containment; failing that, it stays and will
		// fail verification again next time — still never served.
		os.Remove(path) //nolint:errcheck
		dst = "(removed)"
	}
	s.log.Error("store: QUARANTINED corrupt blob — will re-simulate",
		"blob", filepath.Base(path), "moved_to", dst, "cause", cause)
	s.count(func(st *Stats) {
		st.Quarantined++
		if st.DiskBlobs > 0 {
			st.DiskBlobs--
		}
	})
}

// Store implements sched.Tier: persist val under key, best effort.
func (s *Store) Store(key sched.Key, val any) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.st.Puts++
	s.memInsert(key, val)
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return
	}

	payload, err := s.codec.Encode(val)
	if err != nil {
		// The value's type is not persistable (unregistered, contains
		// unexported state). Expected for instrumented run families;
		// count and move on.
		s.count(func(st *Stats) { st.PutSkipped++ })
		return
	}
	if err := s.writeBlob(key, payload); err != nil {
		s.mu.Lock()
		s.st.PutErrors++
		s.degradeLocked(fmt.Sprintf("blob write failed: %v", err))
		s.mu.Unlock()
		return
	}
	s.count(func(st *Stats) { st.DiskBlobs++ })
}

// writeBlob writes header+payload to a temporary and renames it into
// place, so a crash at any point leaves either the old blob or a .tmp
// that Open sweeps — never a truncated blob under a valid name.
func (s *Store) writeBlob(key sched.Key, payload []byte) error {
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{
		Magic:  blobMagic,
		Schema: s.schema,
		SHA256: hex.EncodeToString(sum[:]),
		Size:   int64(len(payload)),
	})
	if err != nil {
		return err
	}
	final := s.blobPath(key)
	f, err := os.CreateTemp(s.dir, hex.EncodeToString(key[:4])+"-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		cleanup()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// memInsert adds v to the memory tier under the LRU bound. Callers hold
// s.mu.
func (s *Store) memInsert(key sched.Key, v any) {
	if s.memCap == 0 {
		return
	}
	if el, ok := s.lruPos[key]; ok {
		s.lru.MoveToFront(el)
		s.mem[key] = v
		return
	}
	s.mem[key] = v
	s.lruPos[key] = s.lru.PushFront(key)
	for len(s.mem) > s.memCap {
		el := s.lru.Back()
		if el == nil {
			break
		}
		k := el.Value.(sched.Key)
		s.lru.Remove(el)
		delete(s.lruPos, k)
		delete(s.mem, k)
		s.st.Evictions++
	}
}

// count applies a stats mutation under the lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.st)
	s.mu.Unlock()
}

// Stats snapshots the store's counters and condition.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.MemEntries = len(s.mem)
	return st
}

// Readings exports the store's counters in the metrics Reading shape
// for Prometheus exposition alongside the scheduler's series.
func (s *Store) Readings() []metrics.Reading {
	st := s.Stats()
	degraded := 0.0
	if st.Degraded {
		degraded = 1
	}
	return []metrics.Reading{
		{Name: "store.mem_entries", Kind: metrics.ReadGauge, Value: float64(st.MemEntries)},
		{Name: "store.disk_blobs", Kind: metrics.ReadGauge, Value: float64(st.DiskBlobs)},
		{Name: "store.degraded", Kind: metrics.ReadGauge, Value: degraded},
		{Name: "store.mem_hits_total", Kind: metrics.ReadCounter, Value: float64(st.MemHits)},
		{Name: "store.disk_hits_total", Kind: metrics.ReadCounter, Value: float64(st.DiskHits)},
		{Name: "store.misses_total", Kind: metrics.ReadCounter, Value: float64(st.Misses)},
		{Name: "store.puts_total", Kind: metrics.ReadCounter, Value: float64(st.Puts)},
		{Name: "store.put_skipped_total", Kind: metrics.ReadCounter, Value: float64(st.PutSkipped)},
		{Name: "store.put_errors_total", Kind: metrics.ReadCounter, Value: float64(st.PutErrors)},
		{Name: "store.quarantined_total", Kind: metrics.ReadCounter, Value: float64(st.Quarantined)},
		{Name: "store.evictions_total", Kind: metrics.ReadCounter, Value: float64(st.Evictions)},
		{Name: "store.leases_acquired_total", Kind: metrics.ReadCounter, Value: float64(st.LeasesAcquired)},
		{Name: "store.lease_losses_total", Kind: metrics.ReadCounter, Value: float64(st.LeaseLosses)},
		{Name: "store.lease_takeovers_total", Kind: metrics.ReadCounter, Value: float64(st.LeaseTakeovers)},
	}
}

// Close flushes and closes the store. Writes are synchronous, so Close
// only fences off further writes; it exists so shutdown paths have an
// explicit "the store is consistent on disk now" point.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// lineReader reads one \n-terminated line, then exposes the rest of the
// stream unread (bufio would buffer past the line).
type lineReader struct {
	r   io.Reader
	buf [1]byte
}

func newLineReader(r io.Reader) *lineReader { return &lineReader{r: r} }

// line reads bytes up to and excluding the first '\n'.
func (lr *lineReader) line() ([]byte, error) {
	var out []byte
	for {
		n, err := lr.r.Read(lr.buf[:])
		if n > 0 {
			if lr.buf[0] == '\n' {
				return out, nil
			}
			out = append(out, lr.buf[0])
			if len(out) > 4096 {
				return nil, fmt.Errorf("header line exceeds 4096 bytes")
			}
		}
		if err != nil {
			return nil, err
		}
	}
}

func (lr *lineReader) Read(p []byte) (int, error) { return lr.r.Read(p) }
