// Cross-process singleflight leases.
//
// N processes sharing one store directory must not duplicate a
// simulation. Blob writes are already atomic (temp + rename), so
// duplication is a waste, never a corruption — but at sweep scale the
// waste is the whole bill. The lease protocol makes simulation
// at-most-once per key per store directory among live processes:
//
//   - Before simulating a memo miss, a process claims
//     leases/<key>.lease with O_CREAT|O_EXCL — the atomic "exactly one
//     winner" primitive every POSIX filesystem provides. The file
//     carries pid/host/token for post-mortems; liveness is its mtime.
//   - While the winner simulates, a heartbeat goroutine rewrites the
//     file through the held descriptor every LeaseTimeout/4, keeping
//     the mtime fresh.
//   - A process that loses the claim checks the holder's mtime. Fresh
//     (< LeaseTimeout old) means a live peer is simulating: report the
//     loss and let the scheduler poll for the peer's blob. Stale means
//     the holder crashed or hung: take the lease over by *renaming* it
//     to a unique name — rename is atomic, so exactly one contender
//     wins the takeover even if many notice staleness at once — and
//     retry the O_EXCL claim.
//   - Release deletes the lease only if it still carries this process's
//     token. A holder that stalled past the timeout and was taken over
//     must not delete its successor's lease.
//
// The scheduler (sched.Locker) calls TryLock before simulating and the
// returned release after offering the result to the tier, so a waiter
// that sees the lease disappear either finds the blob (peer hit) or
// wins the next claim and simulates itself (the holder errored, or the
// value was not persistable). A memory-only store cannot coordinate
// and says so by granting every claim with a no-op release —
// uncoordinated duplicate simulation is safe, just not free.
package store

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"carf/internal/sched"
)

// DefaultLeaseTimeout is how long a lease may go unrefreshed before
// peers may take it over (Options.LeaseTimeout = 0). Heartbeats run at
// a quarter of this, so a live holder is ~4 beats away from ever
// looking stale; a crashed holder delays its key by at most this long.
const DefaultLeaseTimeout = 10 * time.Second

// leaseSeq disambiguates tokens within one process.
var leaseSeq atomic.Uint64

// leaseBody is the JSON content of a lease file — diagnostic identity
// for humans reading a stuck store directory. Liveness is the file's
// mtime, not any field here.
type leaseBody struct {
	PID     int    `json:"pid"`
	Host    string `json:"host"`
	Token   string `json:"token"`
	Created string `json:"created"`
	Beats   uint64 `json:"beats"`
}

// TryLock implements sched.Locker: claim the cross-process lease for
// key, without blocking on a live holder. ok=true grants the exclusive
// right to simulate; the caller must call release exactly once, after
// offering the result to the tier. ok=false means a live peer process
// holds the lease right now. Stale leases (holder crashed or hung past
// the timeout) are taken over internally and count in Stats.
func (s *Store) TryLock(key sched.Key) (release func(), ok bool) {
	s.mu.Lock()
	dir := s.dir
	ldir := s.leaseDir
	s.mu.Unlock()
	if dir == "" || ldir == "" {
		// Memory-only (by choice or degradation): nothing to coordinate
		// through. Grant the claim — duplicate simulation is safe.
		return func() {}, true
	}
	path := filepath.Join(ldir, hex.EncodeToString(key[:])+".lease")

	// A takeover loops back here: between our rename and our re-claim a
	// third process may claim first, so bound the retries.
	for attempt := 0; attempt < 8; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			rel, werr := s.holdLease(f, path)
			if werr != nil {
				// Could not stamp the lease (disk trouble): drop the claim
				// and proceed uncoordinated rather than wedging the run.
				f.Close()
				os.Remove(path)
				s.log.Warn("store: lease write failed; proceeding without cross-process coordination",
					"lease", filepath.Base(path), "err", werr)
				return func() {}, true
			}
			s.count(func(st *Stats) { st.LeasesAcquired++ })
			return rel, true
		}
		if !os.IsExist(err) {
			// The leases directory is gone or unwritable. Same posture as
			// every other disk fault on this path: log once per call and
			// run uncoordinated.
			s.log.Warn("store: lease claim failed; proceeding without cross-process coordination",
				"lease", filepath.Base(path), "err", err)
			return func() {}, true
		}

		fi, serr := os.Stat(path)
		if serr != nil {
			// The holder released between our claim and our stat: retry.
			continue
		}
		if age := time.Since(fi.ModTime()); age < s.leaseTTL {
			// A live peer is simulating this key.
			s.count(func(st *Stats) { st.LeaseLosses++ })
			return nil, false
		}
		// Stale: the holder stopped heartbeating (crashed, hung, or was
		// SIGKILLed). Rename-to-unique is the atomic takeover: exactly
		// one of N contenders succeeds, and a successor's fresh lease
		// (created after the holder released) is never deleted by a slow
		// contender holding an old observation.
		grave := fmt.Sprintf("%s.stale.%d.%d", path, os.Getpid(), leaseSeq.Add(1))
		if rerr := os.Rename(path, grave); rerr == nil {
			os.Remove(grave)
			s.count(func(st *Stats) { st.LeaseTakeovers++ })
			s.log.Warn("store: took over stale lease (holder stopped heartbeating)",
				"lease", filepath.Base(path), "age", time.Since(fi.ModTime()).Round(time.Millisecond))
		}
		// Rename failure means another contender took it over first;
		// either way the next iteration re-attempts the claim.
	}
	// Pathological churn (claims and releases faster than we can
	// follow). Give up on coordination for this one run.
	s.log.Warn("store: lease claim contended past retry budget; proceeding without coordination",
		"lease", filepath.Base(path))
	return func() {}, true
}

// holdLease stamps the freshly created lease file and starts its
// heartbeat, returning the release function.
func (s *Store) holdLease(f *os.File, path string) (func(), error) {
	host, _ := os.Hostname()
	body := leaseBody{
		PID:     os.Getpid(),
		Host:    host,
		Token:   fmt.Sprintf("%d-%s-%d-%d", os.Getpid(), host, leaseSeq.Add(1), time.Now().UnixNano()),
		Created: time.Now().UTC().Format(time.RFC3339Nano),
	}
	if err := writeLeaseBody(f, body); err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	interval := s.leaseTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				body.Beats++
				// Rewrite through the held descriptor: refreshes mtime even
				// under clock weirdness, and keeps working (harmlessly, on
				// an unlinked inode) if the path was renamed from under us.
				if err := writeLeaseBody(f, body); err != nil {
					s.log.Warn("store: lease heartbeat failed — peers may take this lease over",
						"lease", filepath.Base(path), "err", err)
					return
				}
			}
		}
	}()

	var once sync.Once
	release := func() {
		once.Do(func() {
			close(stop)
			<-done
			f.Close()
			// Delete only our own lease: if we stalled past the timeout a
			// peer has taken it over, and the file now at this path is its
			// (or a successor's) lease, not ours.
			if cur, err := os.ReadFile(path); err == nil {
				var got leaseBody
				if json.Unmarshal(cur, &got) == nil && got.Token == body.Token {
					os.Remove(path)
				}
			}
		})
	}
	return release, nil
}

// writeLeaseBody replaces the file's content with the JSON body and
// syncs, refreshing the mtime peers use as the liveness signal.
func writeLeaseBody(f *os.File, body leaseBody) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(append(b, '\n'), 0); err != nil {
		return err
	}
	return f.Sync()
}
