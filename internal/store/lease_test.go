package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// leaseFiles globs the store directory's lease files.
func leaseFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "schema-*", "leases", "*.lease"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestLeaseAcquireAndRelease(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	defer s.Close()

	release, ok := s.TryLock(key(1))
	if !ok {
		t.Fatal("TryLock on a fresh key: denied, want granted")
	}
	if got := leaseFiles(t, dir); len(got) != 1 {
		t.Fatalf("lease files while held = %v, want exactly 1", got)
	}
	release()
	release() // idempotent: callers route through sync.Once anyway, but double-release must be safe
	if got := leaseFiles(t, dir); len(got) != 0 {
		t.Fatalf("lease files after release = %v, want none", got)
	}
	if st := s.Stats(); st.LeasesAcquired != 1 || st.LeaseLosses != 0 || st.LeaseTakeovers != 0 {
		t.Errorf("stats = %+v, want 1 acquired, 0 losses, 0 takeovers", st)
	}
}

func TestLeaseLossWhileHeld(t *testing.T) {
	dir := t.TempDir()
	holder := open(t, dir)
	defer holder.Close()
	peer := open(t, dir)
	defer peer.Close()

	release, ok := holder.TryLock(key(2))
	if !ok {
		t.Fatal("holder TryLock denied")
	}
	defer release()

	if _, ok := peer.TryLock(key(2)); ok {
		t.Fatal("peer TryLock granted while a live holder heartbeats")
	}
	if st := peer.Stats(); st.LeaseLosses != 1 {
		t.Errorf("peer stats = %+v, want 1 lease loss", st)
	}
	// A different key is independent.
	if rel, ok := peer.TryLock(key(3)); !ok {
		t.Error("peer TryLock on an unrelated key denied")
	} else {
		rel()
	}
}

func TestStaleLeaseTakeover(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, func(o *Options) { o.LeaseTimeout = 50 * time.Millisecond })
	defer s.Close()

	// Learn the key's lease path by claiming it once, then plant a
	// "crashed holder" file there: a lease body whose mtime sits long
	// past the timeout — a dead process heartbeats no more.
	release, ok := s.TryLock(key(4))
	if !ok {
		t.Fatal("setup TryLock denied")
	}
	files := leaseFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("lease files = %v, want exactly 1", files)
	}
	path := files[0]
	release()

	if err := os.WriteFile(path, []byte(`{"pid":1,"token":"gone"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	release, ok = s.TryLock(key(4))
	if !ok {
		t.Fatal("TryLock over a stale lease denied, want takeover + grant")
	}
	defer release()
	if st := s.Stats(); st.LeaseTakeovers != 1 || st.LeasesAcquired != 2 {
		t.Errorf("stats = %+v, want 1 takeover, 2 acquired", st)
	}
}

func TestHeartbeatKeepsLeaseFresh(t *testing.T) {
	dir := t.TempDir()
	holder := open(t, dir, func(o *Options) { o.LeaseTimeout = 40 * time.Millisecond })
	defer holder.Close()
	peer := open(t, dir, func(o *Options) { o.LeaseTimeout = 40 * time.Millisecond })
	defer peer.Close()

	release, ok := holder.TryLock(key(5))
	if !ok {
		t.Fatal("holder TryLock denied")
	}
	defer release()

	// Hold well past the timeout: heartbeats (every timeout/4) must keep
	// the lease looking live, so the peer keeps losing rather than
	// taking over.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, ok := peer.TryLock(key(5)); ok {
			t.Fatal("peer took over a lease whose holder was heartbeating")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := peer.Stats(); st.LeaseTakeovers != 0 {
		t.Errorf("peer stats = %+v, want 0 takeovers", st)
	}
}

func TestReleaseAfterTakeoverSparesSuccessor(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, func(o *Options) { o.LeaseTimeout = 50 * time.Millisecond })
	defer s.Close()

	oldRelease, ok := s.TryLock(key(6))
	if !ok {
		t.Fatal("first TryLock denied")
	}
	// Simulate the holder stalling: age the lease past the timeout so a
	// contender takes it over and installs its own lease.
	lp := leaseFiles(t, dir)
	if len(lp) != 1 {
		t.Fatalf("lease files = %v", lp)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lp[0], old, old); err != nil {
		t.Fatal(err)
	}
	newRelease, ok := s.TryLock(key(6))
	if !ok {
		t.Fatal("takeover TryLock denied")
	}
	defer newRelease()

	// The stalled holder's release must not delete the successor's lease
	// (token mismatch).
	oldRelease()
	if got := leaseFiles(t, dir); len(got) != 1 {
		t.Fatalf("lease files after stalled holder's release = %v, want the successor's lease intact", got)
	}
}

func TestMemoryOnlyStoreGrantsUncoordinated(t *testing.T) {
	s := open(t, "") // memory-only by choice
	defer s.Close()
	r1, ok1 := s.TryLock(key(7))
	r2, ok2 := s.TryLock(key(7))
	if !ok1 || !ok2 {
		t.Fatal("memory-only TryLock denied; must grant uncoordinated claims")
	}
	r1()
	r2()
	if st := s.Stats(); st.LeasesAcquired != 0 {
		t.Errorf("stats = %+v, want no coordination counters on a memory-only store", st)
	}
}

func TestLeaseReadingsExported(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	defer s.Close()
	rel, ok := s.TryLock(key(8))
	if !ok {
		t.Fatal("TryLock denied")
	}
	rel()
	want := map[string]float64{
		"store.leases_acquired_total": 1,
		"store.lease_losses_total":    0,
		"store.lease_takeovers_total": 0,
	}
	for _, r := range s.Readings() {
		if v, exists := want[r.Name]; exists {
			if r.Value != v {
				t.Errorf("%s = %v, want %v", r.Name, r.Value, v)
			}
			delete(want, r.Name)
		}
	}
	for name := range want {
		t.Errorf("reading %s not exported", name)
	}
}
