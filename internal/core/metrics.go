package core

import (
	"carf/internal/metrics"
	"carf/internal/regfile"
)

// RegisterMetrics registers the content-aware file's observable series
// on reg: per-sub-file occupancy gauges, (64−d)-similarity hit/miss
// counters with an interval hit rate, Short-file install/reclamation
// and Long-file allocation counters, overflow-stall (Recovery State)
// counters, and per-type read/write traffic. The pipeline calls it from
// InstallMetrics when this model is attached.
func (f *File) RegisterMetrics(reg *metrics.Registry) {
	st := &f.stats
	u := func(p *uint64) func() float64 {
		return func() float64 { return float64(*p) }
	}

	reg.GaugeFunc("core.simple_occupancy", func() float64 {
		return float64(f.p.NumSimple - len(f.freeTags))
	})
	reg.GaugeFunc("core.short_occupancy", func() float64 {
		live := 0
		for i := range f.short {
			if f.short[i].live {
				live++
			}
		}
		return float64(live)
	})
	reg.GaugeFunc("core.long_occupancy", func() float64 {
		return float64(f.p.NumLong - len(f.freeLong))
	})

	hits := u(&st.SimilarityHits)
	misses := u(&st.SimilarityMisses)
	reg.GaugeFunc("core.similarity_hits", hits)
	reg.GaugeFunc("core.similarity_misses", misses)
	reg.RatioRate("core.similarity_hit_rate", hits, func() float64 {
		return float64(st.SimilarityHits + st.SimilarityMisses)
	})
	// A similarity miss is exactly a value promoted from a potential
	// Short classification to the Long file; exported under the
	// paper-facing name as well.
	reg.GaugeFunc("core.short_to_long_promotions", misses)

	reg.GaugeFunc("core.short_installs", u(&st.ShortInstalls))
	reg.GaugeFunc("core.short_install_fails", u(&st.ShortInstallFails))
	reg.GaugeFunc("core.short_frees", u(&st.ShortFrees))
	reg.GaugeFunc("core.long_allocs", u(&st.LongAllocs))
	reg.GaugeFunc("core.long_frees", u(&st.LongFrees))
	reg.GaugeFunc("core.recovery_events", u(&st.RecoveryEvents))
	reg.GaugeFunc("core.overflow_spills", u(&st.OverflowSpills))

	for _, t := range []regfile.ValueType{regfile.TypeSimple, regfile.TypeShort, regfile.TypeLong} {
		t := t
		reg.GaugeFunc("core.reads_"+t.String(), func() float64 {
			return float64(f.stats.ReadsByType[t])
		})
		reg.GaugeFunc("core.writes_"+t.String(), func() float64 {
			return float64(f.stats.WritesByType[t])
		})
	}
}
