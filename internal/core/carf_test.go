package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"carf/internal/regfile"
)

func testParams() Params {
	p := DefaultParams()
	p.NumSimple = 16
	p.NumLong = 8
	return p
}

func TestDerivedParameters(t *testing.T) {
	p := DefaultParams()
	if p.N() != 3 {
		t.Errorf("n = %d, want 3 (M=8)", p.N())
	}
	if p.M() != 6 {
		t.Errorf("m = %d, want 6 (K=48)", p.M())
	}
	if p.D() != 17 {
		t.Errorf("d = %d, want 17 (d+n=20, n=3)", p.D())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{NumSimple: 0, NumShort: 8, NumLong: 48, DPlusN: 20},
		{NumSimple: 112, NumShort: 6, NumLong: 48, DPlusN: 20}, // not 2^n
		{NumSimple: 112, NumShort: 8, NumLong: 1, DPlusN: 20},  // too few long
		{NumSimple: 112, NumShort: 8, NumLong: 48, DPlusN: 3},  // d+n <= n
		{NumSimple: 112, NumShort: 8, NumLong: 48, DPlusN: 63}, // too wide
		{NumSimple: 112, NumShort: 8, NumLong: 256, DPlusN: 8}, // m too big
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, p)
		}
	}
}

// writeRead writes v to a fresh tag and reads it back.
func writeRead(t *testing.T, f *File, v uint64) uint64 {
	t.Helper()
	tag, ok := f.Alloc()
	if !ok {
		t.Fatal("out of tags")
	}
	if !f.TryWrite(tag, v) {
		t.Fatalf("TryWrite(%#x) stalled", v)
	}
	got, ok := f.ReadValue(tag)
	if !ok {
		t.Fatalf("ReadValue after write failed for %#x", v)
	}
	f.Free(tag)
	return got
}

func TestSimpleValueRoundTrip(t *testing.T) {
	f := New(testParams())
	for _, v := range []uint64{0, 1, 5, 0x7ffff, ^uint64(0), ^uint64(0) - 100, 1 << 19 / 2} {
		tag, _ := f.Alloc()
		f.TryWrite(tag, v)
		if typ := f.TypeOf(tag); typ != regfile.TypeSimple {
			t.Errorf("value %#x classified %v, want simple", v, typ)
		}
		got, _ := f.ReadValue(tag)
		if got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
		f.Free(tag)
	}
}

func TestShortValueRoundTrip(t *testing.T) {
	f := New(testParams())
	base := uint64(0x0000_5542_1000_0000)
	f.NoteAddress(base) // installs the similarity group
	for _, off := range []uint64{0, 8, 0x1234, 0xFFFF, 0x1FFF8} {
		v := base + off
		tag, _ := f.Alloc()
		f.TryWrite(tag, v)
		if typ := f.TypeOf(tag); typ != regfile.TypeShort {
			t.Errorf("value %#x classified %v, want short", v, typ)
		}
		got, _ := f.ReadValue(tag)
		if got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
		f.Free(tag)
	}
}

func TestLongValueRoundTrip(t *testing.T) {
	f := New(testParams())
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		v := r.Uint64() | 1<<62 // guaranteed non-simple high bits
		tag, _ := f.Alloc()
		if !f.TryWrite(tag, v) {
			t.Fatal("long write stalled with free entries")
		}
		if typ := f.TypeOf(tag); typ != regfile.TypeLong {
			t.Errorf("value %#x classified %v, want long", v, typ)
		}
		got, _ := f.ReadValue(tag)
		if got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
		f.Free(tag)
	}
}

// TestReadBackIdentityProperty is the paper's core invariant: every
// value accepted by the organization reconstructs exactly, whatever its
// classification. Addresses are pre-installed so all three types occur.
func TestReadBackIdentityProperty(t *testing.T) {
	f := New(testParams())
	f.NoteAddress(0x0000_5542_1000_0000)
	f.NoteAddress(0x0000_7FFF_F7E0_0000)
	check := func(raw uint64, mode uint8) bool {
		var v uint64
		switch mode % 4 {
		case 0: // simple-ish
			v = signExtend(raw&0xFFFFF, 20)
		case 1: // heap-like short
			v = 0x0000_5542_1000_0000 + raw&0xFFFFF
		case 2: // stack-like short
			v = 0x0000_7FFF_F7E0_0000 - raw&0xFFFF
		default: // arbitrary
			v = raw
		}
		tag, ok := f.Alloc()
		if !ok {
			return false
		}
		defer f.Free(tag)
		if !f.TryWrite(tag, v) {
			// Long file exhausted is a legal stall, not a failure; the
			// deferred Free keeps the file draining.
			return true
		}
		got, ok := f.ReadValue(tag)
		return ok && got == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestCAMShortRoundTrip(t *testing.T) {
	p := testParams()
	p.CAMShort = true
	f := New(p)
	// CAM variant: groups land in arbitrary free slots; collisions in
	// the direct-mapped index don't matter.
	bases := []uint64{0x5542_1000_0000, 0x5542_1010_0000, 0x7FFF_F7E0_0000}
	for _, b := range bases {
		f.NoteAddress(b)
	}
	for _, b := range bases {
		v := b + 0x1ABC
		tag, _ := f.Alloc()
		f.TryWrite(tag, v)
		if typ := f.TypeOf(tag); typ != regfile.TypeShort {
			t.Errorf("CAM: value %#x classified %v, want short", v, typ)
		}
		got, _ := f.ReadValue(tag)
		if got != v {
			t.Errorf("CAM round trip %#x -> %#x", v, got)
		}
		f.Free(tag)
	}
	if f.Name() != "content-aware(cam)" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestDirectMappedCollisionFallsToLong(t *testing.T) {
	f := New(testParams())
	d := uint(f.Params().D())
	// Two groups with identical index bits [d, d+n) but different high
	// bits: the second can't install and its values become long.
	a := uint64(0x5542_1000_0000)
	b := a + 1<<uint(f.Params().DPlusN) // same low d+n bits, different hi
	f.NoteAddress(a)
	f.NoteAddress(b)
	_ = d
	st := f.Stats()
	if st.ShortInstalls != 1 || st.ShortInstallFails != 1 {
		t.Errorf("installs=%d fails=%d, want 1/1", st.ShortInstalls, st.ShortInstallFails)
	}
	tag, _ := f.Alloc()
	f.TryWrite(tag, b+4)
	if typ := f.TypeOf(tag); typ != regfile.TypeLong {
		t.Errorf("collided group value classified %v, want long", typ)
	}
	got, _ := f.ReadValue(tag)
	if got != b+4 {
		t.Errorf("round trip %#x -> %#x", b+4, got)
	}
}

func TestLongExhaustionAndRecovery(t *testing.T) {
	f := New(testParams()) // 8 long entries
	r := rand.New(rand.NewSource(7))
	var tags []int
	for i := 0; i < 8; i++ {
		tag, _ := f.Alloc()
		if !f.TryWrite(tag, r.Uint64()|1<<62) {
			t.Fatalf("write %d stalled early", i)
		}
		tags = append(tags, tag)
	}
	if f.FreeLong() != 0 {
		t.Fatalf("free long = %d, want 0", f.FreeLong())
	}
	tag, _ := f.Alloc()
	if f.TryWrite(tag, r.Uint64()|1<<62) {
		t.Fatal("write should stall with no free long entries")
	}
	if f.Stats().RecoveryEvents != 1 {
		t.Errorf("recovery events = %d", f.Stats().RecoveryEvents)
	}
	// A commit frees one; the retried write must now succeed.
	f.Free(tags[0])
	v := r.Uint64() | 1<<62
	if !f.TryWrite(tag, v) {
		t.Fatal("retried write should succeed after a free")
	}
	got, _ := f.ReadValue(tag)
	if got != v {
		t.Errorf("post-recovery round trip %#x -> %#x", v, got)
	}
}

func TestForceWriteOverflow(t *testing.T) {
	f := New(testParams())
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 8; i++ {
		tag, _ := f.Alloc()
		f.TryWrite(tag, r.Uint64()|1<<62)
	}
	tag, _ := f.Alloc()
	v := r.Uint64() | 1<<62
	f.ForceWrite(tag, v)
	if f.Stats().OverflowSpills != 1 {
		t.Errorf("overflow spills = %d", f.Stats().OverflowSpills)
	}
	got, ok := f.ReadValue(tag)
	if !ok || got != v {
		t.Errorf("overflow round trip %#x -> %#x (%v)", v, got, ok)
	}
	f.Free(tag) // must not corrupt the real free list
	if f.FreeLong() != 0 {
		t.Errorf("freeing an overflow entry changed the long free list")
	}
}

func TestLongStallThreshold(t *testing.T) {
	f := New(testParams())
	if f.LongStall(4) {
		t.Error("fresh file should not long-stall below threshold")
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		tag, _ := f.Alloc()
		f.TryWrite(tag, r.Uint64()|1<<62)
	}
	if !f.LongStall(4) {
		t.Error("4 free entries with threshold 4 should stall")
	}
}

func TestRobIntervalReclamation(t *testing.T) {
	f := New(testParams())
	addr := uint64(0x5542_1000_0000)
	f.NoteAddress(addr)

	// Write a short value and keep its tag live and architectural.
	tag, _ := f.Alloc()
	f.TryWrite(tag, addr+8)

	// Intervals pass with the tag architectural: entry must stay.
	for i := 0; i < 4; i++ {
		f.OnRobInterval([]int{tag})
	}
	if got, _ := f.ReadValue(tag); got != addr+8 {
		t.Fatalf("short entry reclaimed while architecturally referenced")
	}
	if f.Stats().ShortFrees != 0 {
		t.Errorf("short frees = %d during live reference", f.Stats().ShortFrees)
	}

	// Free the tag; after two idle intervals the entry is reclaimed.
	f.Free(tag)
	f.OnRobInterval(nil)
	f.OnRobInterval(nil)
	if f.Stats().ShortFrees != 1 {
		t.Errorf("short frees = %d after idle intervals, want 1", f.Stats().ShortFrees)
	}
	// The slot is reusable for a different group now.
	other := addr + 2<<uint(f.Params().DPlusN) // same index, different hi
	f.NoteAddress(other)
	tag2, _ := f.Alloc()
	f.TryWrite(tag2, other+16)
	if got, _ := f.ReadValue(tag2); got != other+16 {
		t.Errorf("reused slot round trip failed: %#x", got)
	}
}

func TestAccessAccounting(t *testing.T) {
	f := New(testParams())
	f.NoteAddress(0x5542_1000_0000)
	tagS, _ := f.Alloc()
	f.TryWrite(tagS, 7) // simple
	tagH, _ := f.Alloc()
	f.TryWrite(tagH, 0x5542_1000_0040) // short
	tagL, _ := f.Alloc()
	f.TryWrite(tagL, 0xDEAD_BEEF_CAFE_F00D) // long

	f.Read(tagS)
	f.Read(tagH)
	f.Read(tagL)

	st := f.Stats()
	if st.ReadsByType != [3]uint64{1, 1, 1} {
		t.Errorf("reads by type = %v", st.ReadsByType)
	}
	if st.WritesByType != [3]uint64{1, 1, 1} {
		t.Errorf("writes by type = %v", st.WritesByType)
	}

	files := f.Files()
	if len(files) != 3 {
		t.Fatalf("files = %d", len(files))
	}
	byName := map[string]regfile.FileActivity{}
	for _, fa := range files {
		byName[fa.Spec.Name] = fa
	}
	// Simple file: read on every operand read, written on every write.
	if byName["simple"].Reads != 3 || byName["simple"].Writes != 3 {
		t.Errorf("simple activity = %+v", byName["simple"])
	}
	// Short file: 1 install + WR1 compare per write (3) + 1 operand read.
	if byName["short"].Writes != 1 {
		t.Errorf("short writes = %d", byName["short"].Writes)
	}
	if byName["short"].Reads != 4 {
		t.Errorf("short reads = %d (3 WR1 compares + 1 operand)", byName["short"].Reads)
	}
	if byName["long"].Reads != 1 || byName["long"].Writes != 1 {
		t.Errorf("long activity = %+v", byName["long"])
	}
}

func TestFileSpecWidths(t *testing.T) {
	f := New(DefaultParams()) // d=17, n=3, m=6
	byName := map[string]regfile.FileSpec{}
	for _, fa := range f.Files() {
		byName[fa.Spec.Name] = fa.Spec
	}
	if w := byName["simple"].WidthBits; w != 22 { // 2 + d+n
		t.Errorf("simple width = %d, want 22", w)
	}
	if w := byName["short"].WidthBits; w != 44 { // 64-d-n
		t.Errorf("short width = %d, want 44", w)
	}
	if w := byName["long"].WidthBits; w != 50 { // 64-(d+n)+m
		t.Errorf("long width = %d, want 50", w)
	}
	if byName["short"].ReadPorts != 8+6 {
		t.Errorf("short read ports = %d, want 14 (8 + 6 WR1 compare)", byName["short"].ReadPorts)
	}
}

func TestAllocExhaustionAndReset(t *testing.T) {
	f := New(testParams())
	for i := 0; i < 16; i++ {
		if _, ok := f.Alloc(); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := f.Alloc(); ok {
		t.Error("alloc past capacity should fail")
	}
	f.Reset()
	if _, ok := f.Alloc(); !ok {
		t.Error("alloc after reset should succeed")
	}
	if f.Stats().RobIntervals != 0 {
		t.Error("stats survived reset")
	}
}

func TestSampleLiveLong(t *testing.T) {
	f := New(testParams())
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 4; i++ {
		tag, _ := f.Alloc()
		f.TryWrite(tag, r.Uint64()|1<<62)
	}
	f.SampleLiveLong()
	f.SampleLiveLong()
	if got := f.Stats().AvgLiveLong(); got != 4 {
		t.Errorf("avg live long = %v, want 4", got)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		w    uint
		want uint64
	}{
		{0xFFFFF, 20, ^uint64(0)},
		{0x7FFFF, 20, 0x7FFFF},
		{0x80000, 20, ^uint64(0) &^ 0x7FFFF},
		{0, 20, 0},
		{1, 1, ^uint64(0)},
	}
	for _, c := range cases {
		if got := signExtend(c.v, c.w); got != c.want {
			t.Errorf("signExtend(%#x, %d) = %#x, want %#x", c.v, c.w, got, c.want)
		}
	}
}

func TestDoubleFreeIsLogged(t *testing.T) {
	f := New(testParams())
	tag, _ := f.Alloc()
	f.Free(tag)
	f.Free(tag)
	faults := f.Faults()
	if len(faults) == 0 {
		t.Fatal("double free left no fault-log entry")
	}
	if !strings.Contains(faults[0], "double free") {
		t.Errorf("fault log = %q, want a double-free report", faults[0])
	}
}
