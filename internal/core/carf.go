// Package core implements the paper's contribution: the content-aware
// integer register file organization (González et al., ISCA 2004).
//
// A conventional N-entry, 64-bit physical register file is replaced by
// three arrays sized around partial value locality:
//
//   - the Simple file: N entries × (2 + d+n) bits. Every rename tag maps
//     to one entry, holding a 2-bit Register Descriptor (value type) and
//     a (d+n)-bit Value field;
//   - the Short file: M entries × (64−d−n) bits, holding the shared
//     high-order bits of (64−d)-similar value groups, indexed by bits
//     [d, d+n) of the value itself;
//   - the Long file: K entries × (64−d−n+m) bits (m = log2 K), holding
//     the high part of values with no partial locality, reached through
//     an m-bit pointer stored in the Value field.
//
// The package implements the full §3 machinery: write-back
// classification (WR1/WR2), Short-file allocation restricted to
// load/store effective addresses, the Tcur/Tarch/Told reference-bit
// reclamation cleared every ROB interval, the Long free list with
// pseudo-deadlock Recovery State, and per-array access accounting for
// the energy model. It satisfies regfile.Model, so the pipeline treats
// it interchangeably with the conventional organizations.
package core

import (
	"fmt"
	"math/bits"

	"carf/internal/regfile"
)

// Params configures the content-aware file. The zero value is not
// usable; start from DefaultParams.
type Params struct {
	NumSimple int // N: number of rename tags (simple entries)
	NumShort  int // M: short-file entries (power of two)
	NumLong   int // K: long-file entries (power of two)
	DPlusN    int // width of the Simple value field (d+n bits)

	// Port counts, used only by the energy/area/time model (the paper
	// keeps the baseline's port counts on every sub-file, §4).
	ReadPorts  int
	WritePorts int

	// CAMShort selects the fully-associative Short file variant
	// discussed in §4 (higher IPC, CAM energy cost). In this variant the
	// Short file stores bits [d, 64) and the Value field holds an
	// explicit n-bit pointer alongside the d low bits.
	CAMShort bool

	// ShortFree selects the Short-entry reclamation policy. The paper
	// uses the reference-bit scheme (FreeRefBits); the alternatives
	// bound it from above and below for the ablation study.
	ShortFree ShortFreePolicy
}

// ShortFreePolicy is a Short-file reclamation strategy.
type ShortFreePolicy uint8

const (
	// FreeRefBits is the paper's §3.2 scheme: Tcur/Tarch/Told bits
	// cleared every ROB interval, virtual-memory style.
	FreeRefBits ShortFreePolicy = iota
	// FreeRefCount is an idealized per-entry reference counter (exact
	// liveness; the paper rejects it as too complex in hardware,
	// especially across branch misprediction — it serves as the upper
	// bound on what reclamation can achieve).
	FreeRefCount
	// FreeNever never reclaims entries: the lower bound. Once the file
	// fills with stale groups, new address regions fall to the Long
	// file.
	FreeNever
)

// String implements fmt.Stringer.
func (p ShortFreePolicy) String() string {
	switch p {
	case FreeRefBits:
		return "refbits"
	case FreeRefCount:
		return "refcount"
	case FreeNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// DefaultParams returns the paper's chosen configuration: 112 simple
// entries, 8 short, 48 long, d+n = 20, baseline port counts.
func DefaultParams() Params {
	return Params{
		NumSimple:  112,
		NumShort:   8,
		NumLong:    48,
		DPlusN:     20,
		ReadPorts:  8,
		WritePorts: 6,
	}
}

// N returns n = log2(M), the short-pointer width (M is a power of two).
func (p Params) N() int { return bits.Len(uint(p.NumShort)) - 1 }

// M returns m = ceil(log2(K)), the long-pointer width. K need not be a
// power of two (the paper uses 48).
func (p Params) M() int { return bits.Len(uint(p.NumLong - 1)) }

// D returns d = (d+n) − n, the low-bits width of the similarity relation.
func (p Params) D() int { return p.DPlusN - p.N() }

// Validate checks structural constraints.
func (p Params) Validate() error {
	switch {
	case p.NumSimple <= 0:
		return fmt.Errorf("core: NumSimple %d", p.NumSimple)
	case p.NumShort <= 1 || p.NumShort&(p.NumShort-1) != 0:
		return fmt.Errorf("core: NumShort %d must be a power of two > 1", p.NumShort)
	case p.NumLong <= 1:
		return fmt.Errorf("core: NumLong %d", p.NumLong)
	case p.DPlusN <= p.N() || p.DPlusN >= 63:
		return fmt.Errorf("core: DPlusN %d out of range (n=%d)", p.DPlusN, p.N())
	case p.DPlusN <= p.M():
		return fmt.Errorf("core: value field too narrow for long pointer (d+n=%d, m=%d)", p.DPlusN, p.M())
	}
	return nil
}

// Stats aggregates the file's dynamic behaviour for the evaluation.
type Stats struct {
	// Per-type operand reads (RF2 classification) and result writes
	// (WR2 classification) — Figure 6.
	ReadsByType  [3]uint64
	WritesByType [3]uint64

	// Short-file behaviour.
	ShortInstalls     uint64 // address values installed in the Short file
	ShortInstallFails uint64 // address offered but indexed slot busy
	ShortFrees        uint64 // entries reclaimed by the reference-bit scheme

	// (64−d)-similarity classification of non-simple values at
	// write-back: a hit finds a live Short group (the value becomes
	// short-typed); a miss demotes the value to the Long file (a
	// Short→Long promotion). Counted per completed write, so
	// SimilarityHits == WritesByType[short] and SimilarityMisses ==
	// WritesByType[long].
	SimilarityHits   uint64
	SimilarityMisses uint64

	// Long-file behaviour.
	LongAllocs      uint64
	LongFrees       uint64
	RecoveryEvents  uint64 // TryWrite failed: Recovery State entries (§3.2)
	OverflowSpills  uint64 // hard pseudo-deadlock resolved via spill path
	LiveLongSamples uint64 // samples accumulated by SampleLiveLong
	LiveLongSum     uint64

	RobIntervals uint64
}

// AvgLiveLong returns the average number of live long registers
// (the paper reports 12.7 for its configuration, §6).
func (s Stats) AvgLiveLong() float64 {
	if s.LiveLongSamples == 0 {
		return 0
	}
	return float64(s.LiveLongSum) / float64(s.LiveLongSamples)
}

type simpleEntry struct {
	typ     regfile.ValueType
	low     uint64 // the (d+n)-bit Value field, semantics depend on typ
	longIdx int    // long pointer (kept unpacked for clarity; -1 if none)
	written bool
	inUse   bool
}

type shortEntry struct {
	hi   uint64 // shared high-order bits
	live bool
	tcur bool // written/used this ROB interval
	tarc bool // referenced by an architectural register
	told bool // used during the previous ROB interval
	refs int  // live Simple entries pointing here (FreeRefCount policy)
}

// File is the content-aware integer register file.
type File struct {
	p       Params
	d, n, m int

	simple []simpleEntry
	short  []shortEntry
	long   []uint64 // stored high parts
	longIn []bool   // long entry in use

	freeTags []int
	freeLong []int

	// overflow holds values that entered the hard pseudo-deadlock spill
	// path: a long value had to be written with zero free long entries
	// and no possible forward progress. Entries are addressed by
	// longIdx >= NumLong. The paper stalls and frees; the spill keeps
	// the simulator total and is counted in Stats.OverflowSpills.
	overflow map[int]uint64
	nextOver int

	// Access counters (per physical array).
	simpleReads, simpleWrites uint64
	shortReads, shortWrites   uint64
	longReads, longWrites     uint64

	// lastArch is the Tarch vector computed at the most recent ROB
	// interval; the invariant checker compares it against the stored
	// reference bits (they only change together inside OnRobInterval).
	// It aliases one half of archBuf — OnRobInterval double-buffers so
	// the retained vector survives while the next one is being built
	// without allocating per interval.
	lastArch []bool
	archBuf  [2][]bool
	// refScratch is OnRobInterval's non-retained scratch vector.
	refScratch []bool
	// stuckTarc indexes a Short entry whose Tarch clear is dropped
	// (harden.FaultRefClear); -1 when no such fault is injected.
	stuckTarc int
	// faults records internal errors (double frees) instead of
	// panicking; the hardening layer surfaces them.
	faults []string

	// report observes write outcomes (regfile.WriteReporter); nil when
	// no profiler is attached. Only successful writes are reported —
	// a failed TryWrite (Recovery State) lands later as a retry.
	report regfile.WriteFunc

	stats Stats
}

// SetWriteReporter implements regfile.WriteReporter (nil removes the
// reporter).
func (f *File) SetWriteReporter(fn regfile.WriteFunc) { f.report = fn }

// New builds a content-aware file from p. Parameters must already have
// passed Params.Validate (every construction path validates first), so
// an invalid p here is a programming bug, not a runtime condition.
func New(p Params) *File {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("core: New called with unvalidated params (invariant: callers run Params.Validate first): %v", err))
	}
	f := &File{p: p}
	f.Reset()
	return f
}

// Params returns the file's configuration.
func (f *File) Params() Params { return f.p }

// Stats returns the dynamic behaviour counters.
func (f *File) Stats() Stats { return f.stats }

// Reset implements regfile.Model.
func (f *File) Reset() {
	f.d, f.n, f.m = f.p.D(), f.p.N(), f.p.M()
	f.simple = make([]simpleEntry, f.p.NumSimple)
	for i := range f.simple {
		f.simple[i].longIdx = -1
	}
	f.short = make([]shortEntry, f.p.NumShort)
	f.long = make([]uint64, f.p.NumLong)
	f.longIn = make([]bool, f.p.NumLong)
	f.freeTags = make([]int, f.p.NumSimple)
	for i := range f.freeTags {
		f.freeTags[i] = f.p.NumSimple - 1 - i
	}
	f.freeLong = make([]int, f.p.NumLong)
	for i := range f.freeLong {
		f.freeLong[i] = f.p.NumLong - 1 - i
	}
	f.overflow = make(map[int]uint64)
	f.nextOver = f.p.NumLong
	f.simpleReads, f.simpleWrites = 0, 0
	f.shortReads, f.shortWrites = 0, 0
	f.longReads, f.longWrites = 0, 0
	f.lastArch = nil
	f.archBuf = [2][]bool{}
	f.refScratch = nil
	f.stuckTarc = -1
	f.faults = nil
	f.stats = Stats{}
}

// Name implements regfile.Model.
func (f *File) Name() string {
	name := "content-aware"
	if f.p.CAMShort {
		name += "(cam)"
	}
	if f.p.ShortFree != FreeRefBits {
		name += "(" + f.p.ShortFree.String() + ")"
	}
	return name
}

// NumTags implements regfile.Model.
func (f *File) NumTags() int { return f.p.NumSimple }

// Alloc implements regfile.Model: renaming assigns a Simple entry to
// every destination; the value type is unknown until write-back.
func (f *File) Alloc() (int, bool) {
	if len(f.freeTags) == 0 {
		return 0, false
	}
	tag := f.freeTags[len(f.freeTags)-1]
	f.freeTags = f.freeTags[:len(f.freeTags)-1]
	f.simple[tag] = simpleEntry{longIdx: -1, inUse: true}
	return tag, true
}

// Free implements regfile.Model: Long and Simple resources return at
// commit of the redefining instruction. A double free is recorded in
// the fault log (surfaced by the hardening layer's invariant sweeps and
// at the end of a run) instead of corrupting the free lists.
func (f *File) Free(tag int) {
	if tag < 0 || tag >= f.p.NumSimple {
		f.faults = append(f.faults, fmt.Sprintf("core: free of out-of-range tag %d", tag))
		return
	}
	e := &f.simple[tag]
	if !e.inUse {
		f.faults = append(f.faults, fmt.Sprintf("core: double free of tag %d", tag))
		return
	}
	f.releaseShort(e)
	f.releaseLong(e)
	*e = simpleEntry{longIdx: -1}
	f.freeTags = append(f.freeTags, tag)
}

// releaseShort drops a short-typed Simple entry's reference to its
// group; under the idealized refcount policy the group is reclaimed the
// moment its last reference dies.
func (f *File) releaseShort(e *simpleEntry) {
	if e.typ != regfile.TypeShort || !e.written {
		return
	}
	sEnt := &f.short[f.shortIndexOf(e)]
	if sEnt.refs > 0 {
		sEnt.refs--
	}
	if f.p.ShortFree == FreeRefCount && sEnt.refs == 0 && sEnt.live {
		sEnt.live = false
		f.stats.ShortFrees++
	}
}

func (f *File) releaseLong(e *simpleEntry) {
	if e.typ != regfile.TypeLong || e.longIdx < 0 {
		return
	}
	if e.longIdx >= f.p.NumLong {
		delete(f.overflow, e.longIdx)
	} else {
		f.longIn[e.longIdx] = false
		f.freeLong = append(f.freeLong, e.longIdx)
		f.stats.LongFrees++
	}
	e.longIdx = -1
}

// ReadStages implements regfile.Model: RF1 (Simple) + RF2 (Short/Long
// and the result multiplexor).
func (f *File) ReadStages() int { return 2 }

// WriteStages implements regfile.Model: WR1 (classify/allocate) + WR2
// (write).
func (f *File) WriteStages() int { return 2 }

// lowMask returns the (d+n)-bit value-field mask.
func (f *File) lowMask() uint64 { return 1<<uint(f.p.DPlusN) - 1 }

// Read implements regfile.Model: one Simple access always, plus a Short
// or Long access depending on the Register Descriptor.
func (f *File) Read(tag int) regfile.ValueType {
	e := &f.simple[tag]
	f.simpleReads++
	switch e.typ {
	case regfile.TypeShort:
		f.shortReads++
		f.stats.ReadsByType[regfile.TypeShort]++
	case regfile.TypeLong:
		f.longReads++
		f.stats.ReadsByType[regfile.TypeLong]++
	default:
		f.stats.ReadsByType[regfile.TypeSimple]++
	}
	return e.typ
}

// TypeOf implements regfile.Model.
func (f *File) TypeOf(tag int) regfile.ValueType {
	e := &f.simple[tag]
	if !e.written {
		return regfile.TypeNone
	}
	return e.typ
}

// Classify determines the value type v would be assigned if written now,
// without touching state. The pipeline uses it for the operand-type
// distribution of Table 4; write-back classification follows the same
// rules inside TryWrite.
func (f *File) Classify(v uint64) regfile.ValueType {
	if signExtend(v&f.lowMask(), uint(f.p.DPlusN)) == v {
		return regfile.TypeSimple
	}
	if _, ok := f.shortLookup(v); ok {
		return regfile.TypeShort
	}
	return regfile.TypeLong
}

// shortLookup finds a live Short entry matching v's high bits. In the
// direct-indexed organization the entry is named by bits [d, d+n) of v;
// in the CAM variant every entry is searched.
func (f *File) shortLookup(v uint64) (int, bool) {
	if f.p.CAMShort {
		hi := v >> uint(f.d)
		for i := range f.short {
			if f.short[i].live && f.short[i].hi == hi {
				return i, true
			}
		}
		return 0, false
	}
	idx := int(v >> uint(f.d) & uint64(f.p.NumShort-1))
	s := &f.short[idx]
	if s.live && s.hi == v>>uint(f.p.DPlusN) {
		return idx, true
	}
	return 0, false
}

// TryWrite implements regfile.Model: the WR1 classification followed by
// the WR2 write. It returns false when the value is long and the Long
// file is exhausted — the pipeline enters the Recovery State and retries
// after commits free entries.
func (f *File) TryWrite(tag int, v uint64) bool {
	e := &f.simple[tag]
	// WR1: classification. The Short comparison costs one Short-file
	// read per write port (the file has dedicated compare ports, §3.2).
	f.shortReads++
	dn := uint(f.p.DPlusN)
	low := v & f.lowMask()

	if signExtend(low, dn) == v {
		f.releaseShort(e)
		f.releaseLong(e)
		e.typ = regfile.TypeSimple
		e.low = low
		e.written = true
		f.simpleWrites++
		f.stats.WritesByType[regfile.TypeSimple]++
		if f.report != nil {
			f.report(regfile.TypeSimple, false)
		}
		return true
	}

	if idx, ok := f.shortLookup(v); ok {
		f.releaseShort(e)
		f.releaseLong(e)
		e.typ = regfile.TypeShort
		if f.p.CAMShort {
			// d low bits plus an explicit n-bit pointer.
			e.low = uint64(idx)<<uint(f.d) | v&(1<<uint(f.d)-1)
		} else {
			e.low = low // pointer bits [d, d+n) are part of the value
		}
		e.written = true
		f.short[idx].tcur = true
		f.short[idx].refs++
		f.simpleWrites++
		f.stats.SimilarityHits++
		f.stats.WritesByType[regfile.TypeShort]++
		if f.report != nil {
			f.report(regfile.TypeShort, false)
		}
		return true
	}

	// Long value: allocate an entry at write-back (§3.2).
	f.releaseShort(e)
	if e.typ == regfile.TypeLong && e.longIdx >= 0 {
		// Retried write after a recovery stall resolved, or a rewrite of
		// the same tag: reuse the held entry.
	} else if len(f.freeLong) > 0 {
		idx := f.freeLong[len(f.freeLong)-1]
		f.freeLong = f.freeLong[:len(f.freeLong)-1]
		f.longIn[idx] = true
		e.longIdx = idx
		f.stats.LongAllocs++
	} else {
		f.stats.RecoveryEvents++
		return false
	}

	shift := uint(f.p.DPlusN - f.m)
	if e.longIdx < f.p.NumLong {
		f.long[e.longIdx] = v >> shift
		e.low = uint64(e.longIdx)<<shift | v&(1<<shift-1)
	} else {
		// Overflow entry: the pointer lives outside the modeled field.
		f.overflow[e.longIdx] = v >> shift
		e.low = v & (1<<shift - 1)
	}
	e.typ = regfile.TypeLong
	e.written = true
	f.simpleWrites++
	f.longWrites++
	f.stats.SimilarityMisses++
	f.stats.WritesByType[regfile.TypeLong]++
	if f.report != nil {
		f.report(regfile.TypeLong, false)
	}
	return true
}

// ForceWrite performs a write that cannot fail: if the Long file is
// exhausted it takes the overflow spill path (hard pseudo-deadlock
// resolution; counted in Stats). The pipeline uses it only when the
// stalled instruction is the oldest in the machine and no commit can
// free a Long entry.
func (f *File) ForceWrite(tag int, v uint64) {
	if f.TryWrite(tag, v) {
		return
	}
	e := &f.simple[tag]
	f.stats.OverflowSpills++
	idx := f.nextOver
	f.nextOver++
	e.longIdx = idx
	shift := uint(f.p.DPlusN - f.m)
	f.overflow[idx] = v >> shift
	e.typ = regfile.TypeLong
	e.low = v & (1<<shift - 1) // pointer lives outside the modeled field
	e.written = true
	f.simpleWrites++
	f.longWrites++
	f.stats.SimilarityMisses++
	f.stats.WritesByType[regfile.TypeLong]++
	if f.report != nil {
		f.report(regfile.TypeLong, true)
	}
}

// ReadValue implements regfile.Model: it reconstructs the full 64-bit
// value from the sub-files — the correctness invariant of the whole
// organization.
func (f *File) ReadValue(tag int) (uint64, bool) {
	e := &f.simple[tag]
	if !e.inUse || !e.written {
		return 0, false
	}
	switch e.typ {
	case regfile.TypeSimple:
		return signExtend(e.low, uint(f.p.DPlusN)), true
	case regfile.TypeShort:
		if f.p.CAMShort {
			idx := int(e.low >> uint(f.d))
			return f.short[idx].hi<<uint(f.d) | e.low&(1<<uint(f.d)-1), true
		}
		idx := int(e.low >> uint(f.d) & uint64(f.p.NumShort-1))
		return f.short[idx].hi<<uint(f.p.DPlusN) | e.low, true
	case regfile.TypeLong:
		var hi uint64
		if e.longIdx >= 0 && e.longIdx < f.p.NumLong {
			hi = f.long[e.longIdx]
		} else {
			hi = f.overflow[e.longIdx]
		}
		shift := uint(f.p.DPlusN - f.m)
		return hi<<shift | e.low&(1<<shift-1), true
	}
	return 0, false
}

// NoteAddress implements regfile.Model: §3.2 restricts Short-file
// allocation to load/store effective addresses, installed in parallel
// with the ALU stage when the indexed slot is free.
func (f *File) NoteAddress(addr uint64) {
	// Addresses that are simple values need no Short entry.
	if signExtend(addr&f.lowMask(), uint(f.p.DPlusN)) == addr {
		return
	}
	if f.p.CAMShort {
		if _, ok := f.shortLookup(addr); ok {
			return
		}
		for i := range f.short {
			if !f.short[i].live {
				f.short[i] = shortEntry{hi: addr >> uint(f.d), live: true, tcur: true}
				f.shortWrites++
				f.stats.ShortInstalls++
				return
			}
		}
		f.stats.ShortInstallFails++
		return
	}
	idx := int(addr >> uint(f.d) & uint64(f.p.NumShort-1))
	s := &f.short[idx]
	if s.live && f.p.ShortFree == FreeRefCount && s.refs == 0 && s.hi != addr>>uint(f.p.DPlusN) {
		// Idealized policy: an unreferenced group can be displaced.
		s.live = false
		f.stats.ShortFrees++
	}
	if s.live {
		if s.hi != addr>>uint(f.p.DPlusN) {
			f.stats.ShortInstallFails++
		}
		return
	}
	*s = shortEntry{hi: addr >> uint(f.p.DPlusN), live: true, tcur: true}
	f.shortWrites++
	f.stats.ShortInstalls++
}

// OnRobInterval implements regfile.Model: the §3.2 reclamation scheme.
// Told captures last-interval usage, Tcur restarts, and Tarch is
// recomputed from the retirement map. An entry whose three bits are all
// clear is freed — but never while a live Simple entry still points at
// it (the architectural guarantee analysed in the paper; enforced here
// as a safety backstop so a modeling bug cannot corrupt values).
func (f *File) OnRobInterval(archTags []int) {
	f.stats.RobIntervals++
	if f.p.ShortFree != FreeRefBits {
		// FreeRefCount reclaims eagerly in releaseShort; FreeNever
		// reclaims nothing.
		return
	}
	if f.refScratch == nil {
		f.refScratch = make([]bool, f.p.NumShort)
		f.archBuf[0] = make([]bool, f.p.NumShort)
		f.archBuf[1] = make([]bool, f.p.NumShort)
	}
	referenced := f.refScratch
	clear(referenced)
	for i := range f.simple {
		e := &f.simple[i]
		if e.inUse && e.written && e.typ == regfile.TypeShort {
			referenced[f.shortIndexOf(e)] = true
		}
	}
	// Build into whichever buffer the checker is not currently reading
	// through f.lastArch, then publish it.
	arch := f.archBuf[0]
	if len(f.lastArch) > 0 && &arch[0] == &f.lastArch[0] {
		arch = f.archBuf[1]
	}
	clear(arch)
	for _, tag := range archTags {
		e := &f.simple[tag]
		if e.inUse && e.written && e.typ == regfile.TypeShort {
			arch[f.shortIndexOf(e)] = true
		}
	}
	f.lastArch = arch
	for i := range f.short {
		s := &f.short[i]
		if !s.live {
			continue
		}
		s.told = s.tcur || s.tarc
		s.tcur = false
		s.tarc = arch[i]
		if i == f.stuckTarc {
			// Injected fault: the interval clear of Tarch is dropped, so
			// the entry looks architecturally referenced forever.
			s.tarc = true
		}
		if !s.told && !s.tcur && !s.tarc && !referenced[i] {
			s.live = false
			f.stats.ShortFrees++
		}
	}
}

// shortIndexOf recovers the Short-file index a short-typed Simple entry
// points at.
func (f *File) shortIndexOf(e *simpleEntry) int {
	if f.p.CAMShort {
		return int(e.low >> uint(f.d))
	}
	return int(e.low >> uint(f.d) & uint64(f.p.NumShort-1))
}

// LongStall implements regfile.Model: issue stalls when the free Long
// count falls to the issue width (§3.2 prevention). The threshold is
// clamped to half the Long file so that pathologically small files
// (sensitivity sweeps) still make forward progress through the Recovery
// State instead of stalling issue permanently.
func (f *File) LongStall(threshold int) bool {
	if threshold > f.p.NumLong/2 {
		threshold = f.p.NumLong / 2
	}
	return len(f.freeLong) <= threshold
}

// FreeLong returns the number of free Long entries.
func (f *File) FreeLong() int { return len(f.freeLong) }

// SampleLiveLong accumulates a sample of the live Long-register count
// (the pipeline calls it periodically; §6 reports the average).
func (f *File) SampleLiveLong() {
	live := f.p.NumLong - len(f.freeLong)
	f.stats.LiveLongSamples++
	f.stats.LiveLongSum += uint64(live)
}

// Files implements regfile.Model: the three arrays with the widths of
// §3.1 and the configured port counts. The Short file carries one extra
// read port per write port for the WR1 comparisons.
func (f *File) Files() []regfile.FileActivity {
	shortWidth := 64 - f.d - f.n
	if f.p.CAMShort {
		shortWidth = 64 - f.d
	}
	return []regfile.FileActivity{
		{
			Spec: regfile.FileSpec{
				Name: "simple", Entries: f.p.NumSimple, WidthBits: 2 + f.p.DPlusN,
				ReadPorts: f.p.ReadPorts, WritePorts: f.p.WritePorts,
			},
			Reads: f.simpleReads, Writes: f.simpleWrites,
		},
		{
			Spec: regfile.FileSpec{
				Name: "short", Entries: f.p.NumShort, WidthBits: shortWidth,
				ReadPorts: f.p.ReadPorts + f.p.WritePorts, WritePorts: f.p.WritePorts,
				CAM: f.p.CAMShort,
			},
			Reads: f.shortReads, Writes: f.shortWrites,
		},
		{
			Spec: regfile.FileSpec{
				Name: "long", Entries: f.p.NumLong, WidthBits: 64 - f.p.DPlusN + f.m,
				ReadPorts: f.p.ReadPorts, WritePorts: f.p.WritePorts,
			},
			Reads: f.longReads, Writes: f.longWrites,
		},
	}
}

// signExtend interprets the low w bits of v as a signed quantity and
// extends it to 64 bits.
func signExtend(v uint64, w uint) uint64 {
	shift := 64 - w
	return uint64(int64(v<<shift) >> shift)
}
