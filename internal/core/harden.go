package core

import (
	"fmt"

	"carf/internal/harden"
	"carf/internal/regfile"
)

// This file implements the hardening hooks of the content-aware file:
// structural invariant self-checks (harden.Checker), the internal fault
// log (harden.FaultReporter), and deterministic fault injection
// (harden.Injector). Value-level corruption — does a flipped bit change
// what ReadValue reconstructs — is detected by the pipeline's sweep,
// which owns the oracle values; the checks here are purely structural.

// Faults implements harden.FaultReporter.
func (f *File) Faults() []string { return f.faults }

// CheckInvariants implements harden.Checker. It audits free-list
// accounting for the Simple and Long files, Long-entry ownership,
// Short-group liveness for every short-typed entry, and — under the
// reference-bit reclamation policy — that the stored Tarch bits match
// the retirement-map scan of the most recent ROB interval (they only
// change together inside OnRobInterval, so a disagreement means a
// dropped or stuck reference-bit update).
func (f *File) CheckInvariants() []harden.Violation {
	var vs []harden.Violation
	add := func(check, format string, args ...any) {
		vs = append(vs, harden.Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}

	// Simple free list: every tag allocated or free, exactly once.
	onFree := make([]bool, f.p.NumSimple)
	for _, tag := range f.freeTags {
		if tag < 0 || tag >= f.p.NumSimple {
			add("freelist", "free-list tag %d out of range", tag)
			continue
		}
		if onFree[tag] {
			add("freelist", "tag %d on the free list twice", tag)
		}
		onFree[tag] = true
		if f.simple[tag].inUse {
			add("freelist", "tag %d both in use and on the free list", tag)
		}
	}
	inUse := 0
	for i := range f.simple {
		if f.simple[i].inUse {
			inUse++
		} else if !onFree[i] {
			add("freelist", "tag %d neither in use nor on the free list", i)
		}
	}
	if inUse+len(f.freeTags) != f.p.NumSimple {
		add("freelist", "%d in use + %d free != %d simple entries", inUse, len(f.freeTags), f.p.NumSimple)
	}

	// Long free list and entry ownership.
	longFree := make([]bool, f.p.NumLong)
	for _, idx := range f.freeLong {
		if idx < 0 || idx >= f.p.NumLong {
			add("longlist", "free long index %d out of range", idx)
			continue
		}
		if longFree[idx] {
			add("longlist", "long entry %d on the free list twice", idx)
		}
		longFree[idx] = true
		if f.longIn[idx] {
			add("longlist", "long entry %d both in use and on the free list", idx)
		}
	}
	longUsed := 0
	for i, used := range f.longIn {
		if used {
			longUsed++
		} else if !longFree[i] {
			add("longlist", "long entry %d neither in use nor on the free list", i)
		}
	}
	if longUsed+len(f.freeLong) != f.p.NumLong {
		add("longlist", "%d in use + %d free != %d long entries", longUsed, len(f.freeLong), f.p.NumLong)
	}
	owner := make([]int, f.p.NumLong)
	for i := range owner {
		owner[i] = -1
	}
	for i := range f.simple {
		e := &f.simple[i]
		if !e.inUse || e.typ != regfile.TypeLong || e.longIdx < 0 {
			continue
		}
		if e.longIdx >= f.p.NumLong {
			if _, ok := f.overflow[e.longIdx]; !ok {
				add("longlist", "tag %d points at missing overflow entry %d", i, e.longIdx)
			}
			continue
		}
		if !f.longIn[e.longIdx] {
			add("longlist", "tag %d points at free long entry %d", i, e.longIdx)
		}
		if o := owner[e.longIdx]; o >= 0 {
			add("longlist", "long entry %d owned by both tag %d and tag %d", e.longIdx, o, i)
		}
		owner[e.longIdx] = i
	}

	// Short-group liveness: a short-typed value must resolve to a live
	// group (the OnRobInterval backstop guarantees this in a correct
	// machine).
	for i := range f.simple {
		e := &f.simple[i]
		if e.inUse && e.written && e.typ == regfile.TypeShort {
			if idx := f.shortIndexOf(e); !f.short[idx].live {
				add("short", "tag %d points at dead short group %d", i, idx)
			}
		}
	}

	// Reference-bit consistency (§3.2 reclamation): Tarch must equal the
	// retirement-map scan recorded at the most recent ROB interval.
	if f.p.ShortFree == FreeRefBits && f.lastArch != nil {
		for i := range f.short {
			s := &f.short[i]
			if s.live && s.tarc != f.lastArch[i] {
				add("refbits", "short group %d Tarch=%v but the retirement map scan says %v (stuck reference bit)",
					i, s.tarc, f.lastArch[i])
			}
		}
	}
	return vs
}

// Inject implements harden.Injector: deterministic, seeded corruption of
// one entry per call. ok is false when no suitable target exists yet
// (the pipeline retries next cycle).
func (f *File) Inject(ft harden.Fault) (string, bool) {
	r := harden.NewRand(ft.Seed)
	switch ft.Class {
	case harden.FaultSimpleBit:
		var cands []int
		for i := range f.simple {
			if f.simple[i].inUse && f.simple[i].written {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return "", false
		}
		tag := cands[r.Intn(len(cands))]
		e := &f.simple[tag]
		// Restrict to bits that reach the reconstructed value: for a
		// long-typed entry only the low (d+n−m) bits are stored data (the
		// pointer is modeled unpacked in longIdx).
		width := f.p.DPlusN
		if e.typ == regfile.TypeLong {
			width = f.p.DPlusN - f.m
		}
		bit := uint(r.Intn(width))
		e.low ^= 1 << bit
		return fmt.Sprintf("flipped bit %d of %s simple entry %d", bit, e.typ, tag), true

	case harden.FaultShortBit:
		var cands []int
		for i := range f.short {
			if f.short[i].live {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return "", false
		}
		idx := cands[r.Intn(len(cands))]
		width := 64 - f.p.DPlusN
		if f.p.CAMShort {
			width = 64 - f.d
		}
		bit := uint(r.Intn(width))
		f.short[idx].hi ^= 1 << bit
		return fmt.Sprintf("flipped bit %d of short group %d", bit, idx), true

	case harden.FaultLongBit:
		var cands []int
		for i, used := range f.longIn {
			if used {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return "", false
		}
		idx := cands[r.Intn(len(cands))]
		bit := uint(r.Intn(64 - f.p.DPlusN + f.m))
		f.long[idx] ^= 1 << bit
		return fmt.Sprintf("flipped bit %d of long entry %d", bit, idx), true

	case harden.FaultFreeList:
		var cands []int
		for i := range f.simple {
			if f.simple[i].inUse {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return "", false
		}
		tag := cands[r.Intn(len(cands))]
		f.freeTags = append(f.freeTags, tag)
		return fmt.Sprintf("pushed in-use tag %d onto the free list", tag), true

	case harden.FaultRefClear:
		// A stuck Tarch bit only misbehaves on a group that is not
		// architecturally referenced (a referenced group legitimately has
		// Tarch set): wait for one to appear.
		if f.lastArch == nil {
			return "", false
		}
		var cands []int
		for i := range f.short {
			if f.short[i].live && !f.lastArch[i] {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return "", false
		}
		idx := cands[r.Intn(len(cands))]
		f.stuckTarc = idx
		f.short[idx].tarc = true
		return fmt.Sprintf("stuck Tarch reference bit of short group %d", idx), true
	}
	return "", false
}
