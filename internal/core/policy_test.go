package core

import (
	"testing"

	"carf/internal/regfile"
)

func policyParams(pol ShortFreePolicy) Params {
	p := DefaultParams()
	p.NumSimple = 16
	p.NumLong = 8
	p.ShortFree = pol
	return p
}

func TestPolicyNames(t *testing.T) {
	if New(policyParams(FreeRefBits)).Name() != "content-aware" {
		t.Error("refbits is the default and should not decorate the name")
	}
	if New(policyParams(FreeRefCount)).Name() != "content-aware(refcount)" {
		t.Error("refcount name")
	}
	if New(policyParams(FreeNever)).Name() != "content-aware(never)" {
		t.Error("never name")
	}
	if FreeRefBits.String() != "refbits" || ShortFreePolicy(9).String() != "policy(9)" {
		t.Error("policy String()")
	}
}

func TestRefCountFreesOnLastRelease(t *testing.T) {
	f := New(policyParams(FreeRefCount))
	addr := uint64(0x5542_1000_0000)
	f.NoteAddress(addr)
	t1, _ := f.Alloc()
	t2, _ := f.Alloc()
	f.TryWrite(t1, addr+8)
	f.TryWrite(t2, addr+16)
	f.Free(t1)
	if f.Stats().ShortFrees != 0 {
		t.Fatal("entry freed while still referenced")
	}
	if got, _ := f.ReadValue(t2); got != addr+16 {
		t.Fatalf("surviving reference corrupted: %#x", got)
	}
	f.Free(t2)
	if f.Stats().ShortFrees != 1 {
		t.Errorf("short frees = %d after last release", f.Stats().ShortFrees)
	}
	// The slot is immediately reusable for a conflicting group.
	other := addr + 2<<uint(f.Params().DPlusN)
	f.NoteAddress(other)
	t3, _ := f.Alloc()
	f.TryWrite(t3, other+24)
	if typ := f.TypeOf(t3); typ != regfile.TypeShort {
		t.Errorf("new group value classified %v after reclamation", typ)
	}
}

func TestRefCountDisplacesUnreferencedGroup(t *testing.T) {
	f := New(policyParams(FreeRefCount))
	a := uint64(0x5542_1000_0000)
	b := a + 4<<uint(f.Params().DPlusN) // same index, different group
	f.NoteAddress(a)                    // installed, never referenced
	f.NoteAddress(b)                    // displaces the idle group
	tag, _ := f.Alloc()
	f.TryWrite(tag, b+8)
	if typ := f.TypeOf(tag); typ != regfile.TypeShort {
		t.Errorf("displaced install failed: %v", typ)
	}
	if got, _ := f.ReadValue(tag); got != b+8 {
		t.Errorf("round trip %#x", got)
	}
}

func TestNeverPolicyKeepsStaleGroups(t *testing.T) {
	f := New(policyParams(FreeNever))
	a := uint64(0x5542_1000_0000)
	f.NoteAddress(a)
	tag, _ := f.Alloc()
	f.TryWrite(tag, a+8)
	f.Free(tag)
	for i := 0; i < 5; i++ {
		f.OnRobInterval(nil)
	}
	if f.Stats().ShortFrees != 0 {
		t.Errorf("never policy freed %d entries", f.Stats().ShortFrees)
	}
	// A conflicting group can no longer install; its values become long.
	b := a + 4<<uint(f.Params().DPlusN)
	f.NoteAddress(b)
	tag2, _ := f.Alloc()
	f.TryWrite(tag2, b+8)
	if typ := f.TypeOf(tag2); typ != regfile.TypeLong {
		t.Errorf("stale-group conflict classified %v, want long", typ)
	}
	if got, _ := f.ReadValue(tag2); got != b+8 {
		t.Errorf("round trip %#x", got)
	}
}

// TestRefCountNeverCorrupts: stress mixed traffic under eager
// reclamation — every read-back must stay exact.
func TestRefCountNeverCorrupts(t *testing.T) {
	f := New(policyParams(FreeRefCount))
	rng := uint64(0x1234_5678)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	bases := []uint64{0x5542_1000_0000, 0x7FFF_F7E0_0000, 0x6000_0000}
	type live struct {
		tag int
		v   uint64
	}
	var tags []live
	for i := 0; i < 5000; i++ {
		if len(tags) > 10 {
			l := tags[0]
			tags = tags[1:]
			if got, _ := f.ReadValue(l.tag); got != l.v {
				t.Fatalf("iteration %d: tag %d read %#x, want %#x", i, l.tag, got, l.v)
			}
			f.Free(l.tag)
		}
		base := bases[next()%3]
		f.NoteAddress(base + next()%(1<<18))
		tag, ok := f.Alloc()
		if !ok {
			continue
		}
		var v uint64
		switch next() % 3 {
		case 0:
			v = next() >> 44 // simple
		case 1:
			v = base + next()%(1<<18) // likely short
		default:
			v = next() | 1<<62 // long
		}
		if !f.TryWrite(tag, v) {
			f.Free(tag)
			continue
		}
		tags = append(tags, live{tag, v})
	}
}
