package pipeline

import (
	"testing"

	"carf/internal/core"
	"carf/internal/workload"
)

// TestProgressFrames runs a kernel with the progress hook installed and
// checks the frame stream's invariants: monotonic totals, interval
// deltas that sum back to the totals, and a single Final frame whose
// totals equal the returned Stats.
func TestProgressFrames(t *testing.T) {
	k, err := workload.ByName("qsort", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(core.DefaultParams())
	cpu := New(DefaultConfig(), k.Prog, model)

	var frames []Progress
	cpu.SetProgress(func(p Progress) { frames = append(frames, p) })
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(frames) < 2 {
		t.Fatalf("only %d progress frames for a %d-cycle run (mask %d)", len(frames), st.Cycles, progressMask)
	}
	var sumIC, sumII uint64
	for i, p := range frames {
		if i > 0 {
			prev := frames[i-1]
			if p.Cycles < prev.Cycles || p.Instructions < prev.Instructions {
				t.Fatalf("frame %d not monotonic: %d/%d cycles, %d/%d insts",
					i, prev.Cycles, p.Cycles, prev.Instructions, p.Instructions)
			}
			if p.IntervalCycles != p.Cycles-prev.Cycles {
				t.Fatalf("frame %d interval cycles %d, want %d", i, p.IntervalCycles, p.Cycles-prev.Cycles)
			}
			if p.IntervalInstructions != p.Instructions-prev.Instructions {
				t.Fatalf("frame %d interval insts %d, want %d", i, p.IntervalInstructions, p.Instructions-prev.Instructions)
			}
		}
		sumIC += p.IntervalCycles
		sumII += p.IntervalInstructions
		if p.Final != (i == len(frames)-1) {
			t.Fatalf("frame %d Final=%v at position %d/%d", i, p.Final, i, len(frames)-1)
		}
		if p.ROB < 0 || p.IntIQ < 0 || p.FPIQ < 0 || p.LSQ < 0 {
			t.Fatalf("frame %d has negative occupancy: %+v", i, p)
		}
	}
	final := frames[len(frames)-1]
	if final.Cycles != st.Cycles || final.Instructions != st.Instructions {
		t.Errorf("final frame %d cycles / %d insts, Stats %d / %d",
			final.Cycles, final.Instructions, st.Cycles, st.Instructions)
	}
	if sumIC != st.Cycles || sumII != st.Instructions {
		t.Errorf("interval deltas sum to %d cycles / %d insts, Stats %d / %d",
			sumIC, sumII, st.Cycles, st.Instructions)
	}
	// The write mix covers the model's sub-files cumulatively; the final
	// frame must match the model's own activity report.
	for i, f := range model.Files() {
		if i >= len(final.Writes) {
			break
		}
		if final.Writes[i] != f.Writes {
			t.Errorf("final frame writes[%d] = %d, model reports %d", i, final.Writes[i], f.Writes)
		}
	}
}

// TestProgressObservationIsFree verifies the key invariant of the
// progress plane: a run's statistics are bit-identical with the hook
// installed or not, so memoized results are safe to share across
// observed and unobserved callers.
func TestProgressObservationIsFree(t *testing.T) {
	k, err := workload.ByName("crc64", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(hook bool) Stats {
		cpu := New(DefaultConfig(), k.Prog, core.New(core.DefaultParams()))
		if hook {
			cpu.SetProgress(func(Progress) {})
		}
		st, err := cpu.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain, observed := run(false), run(true)
	if plain != observed {
		t.Errorf("stats differ with progress hook installed:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}
