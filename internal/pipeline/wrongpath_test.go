package pipeline

import (
	"testing"

	"carf/internal/core"
	"carf/internal/regfile"
	"carf/internal/workload"
)

func wrongPathConfig() Config {
	cfg := DefaultConfig()
	cfg.WrongPath = true
	return cfg
}

// TestWrongPathCorrectness: with phantom execution enabled, every kernel
// must still produce the exact architectural result on both the baseline
// and the content-aware file, with zero reconstruction mismatches — the
// squash path must fully undo speculation.
func TestWrongPathCorrectness(t *testing.T) {
	for _, k := range workload.AllKernels(0.05) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			for _, model := range []regfile.Model{regfile.Baseline(), core.New(core.DefaultParams())} {
				cpu := New(wrongPathConfig(), k.Prog, model)
				st, err := cpu.Run()
				if err != nil {
					t.Fatalf("%s: %v", model.Name(), err)
				}
				if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
					t.Errorf("%s: result %#x, want %#x", model.Name(), got, k.Expected)
				}
				if st.ValueMismatches != 0 {
					t.Errorf("%s: %d reconstruction mismatches", model.Name(), st.ValueMismatches)
				}
				if st.Mispredicts > 0 && st.Squashes == 0 {
					t.Errorf("%s: %d mispredicts but no squashes", model.Name(), st.Mispredicts)
				}
			}
		})
	}
}

// TestWrongPathActivity: on a branchy kernel, phantom instructions are
// fetched and fully squashed, tag accounting balances (the next run
// starts from a clean file), and wrong-path mode costs no correctness.
func TestWrongPathActivity(t *testing.T) {
	k, err := workload.ByName("qsort", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(core.DefaultParams())
	cpu := New(wrongPathConfig(), k.Prog, model)
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.WrongPathFetched == 0 {
		t.Fatal("no wrong-path instructions fetched on a mispredict-heavy kernel")
	}
	if st.WrongPathSquashed != st.WrongPathFetched {
		t.Errorf("fetched %d phantoms but squashed %d", st.WrongPathFetched, st.WrongPathSquashed)
	}
	if st.Squashes == 0 || st.Squashes > st.Mispredicts {
		t.Errorf("squashes %d vs mispredicts %d", st.Squashes, st.Mispredicts)
	}
}

// TestWrongPathCostsEnergyNotCorrectness compares both modes: wrong-path
// execution must add register file traffic (the fidelity gap the mode
// closes) while leaving the architectural result identical. IPC may move
// slightly in either direction (cache pollution vs. warm-up prefetch).
func TestWrongPathCostsEnergyNotCorrectness(t *testing.T) {
	k, err := workload.ByName("treeinsert", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	stall := core.New(core.DefaultParams())
	cpuA := New(DefaultConfig(), k.Prog, stall)
	stA, err := cpuA.Run()
	if err != nil {
		t.Fatal(err)
	}
	spec := core.New(core.DefaultParams())
	cpuB := New(wrongPathConfig(), k.Prog, spec)
	stB, err := cpuB.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stA.Instructions != stB.Instructions {
		t.Errorf("committed counts differ: %d vs %d", stA.Instructions, stB.Instructions)
	}
	var accA, accB uint64
	for _, f := range stall.Files() {
		accA += f.Reads + f.Writes
	}
	for _, f := range spec.Files() {
		accB += f.Reads + f.Writes
	}
	if accB <= accA {
		t.Errorf("wrong-path mode did not add register file accesses (%d vs %d)", accB, accA)
	}
}

// TestWrongPathUnderPressure: tiny long file + wrong-path speculation is
// the nastiest interaction (phantom long writes competing for entries);
// it must stay architecturally exact.
func TestWrongPathUnderPressure(t *testing.T) {
	p := core.DefaultParams()
	p.NumLong = 6
	k, err := workload.ByName("crc64", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(p)
	cpu := New(wrongPathConfig(), k.Prog, model)
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
		t.Errorf("result %#x, want %#x", got, k.Expected)
	}
	if st.ValueMismatches != 0 {
		t.Errorf("%d mismatches", st.ValueMismatches)
	}
}
