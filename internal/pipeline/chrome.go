package pipeline

import (
	"carf/internal/metrics"
)

// chromeStage names one per-instruction duration slice in the exported
// trace, bounded by two of the event's stage cycles.
type chromeStage struct {
	name       string
	begin, end func(TraceEvent) int64
}

var chromeStages = []chromeStage{
	{"fetch", func(e TraceEvent) int64 { return e.Fetch }, func(e TraceEvent) int64 { return e.Rename }},
	{"rename", func(e TraceEvent) int64 { return e.Rename }, func(e TraceEvent) int64 { return e.Issue }},
	{"execute", func(e TraceEvent) int64 { return e.Issue }, func(e TraceEvent) int64 { return e.ExecDone }},
	{"writeback", func(e TraceEvent) int64 { return e.ExecDone }, func(e TraceEvent) int64 { return e.WBDone }},
	{"commit", func(e TraceEvent) int64 { return e.WBDone }, func(e TraceEvent) int64 { return e.Commit }},
}

// ChromeTraceEvents converts a commit-order trace into Chrome trace
// format complete events, one duration slice per pipeline stage per
// instruction, with one simulated cycle mapped to one trace
// microsecond. Instructions are laid out on the smallest set of
// Perfetto tracks (tids) such that lifetimes on a track never overlap,
// so concurrent in-flight instructions render as parallel lanes.
func ChromeTraceEvents(events []TraceEvent) []metrics.ChromeEvent {
	out := make([]metrics.ChromeEvent, 0, len(events)*len(chromeStages))
	var laneEnds []int64 // per-lane cycle at which its last instruction commits
	for _, ev := range events {
		lane := -1
		for i, end := range laneEnds {
			if end <= ev.Fetch {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = ev.Commit
		args := map[string]any{
			"seq":  ev.Seq,
			"pc":   ev.PC,
			"inst": ev.Inst.String(),
		}
		if ev.Mispredicted {
			args["mispredicted"] = true
		}
		for _, st := range chromeStages {
			begin, end := st.begin(ev), st.end(ev)
			if end < begin {
				end = begin
			}
			out = append(out, metrics.ChromeEvent{
				Name: st.name,
				Cat:  "pipeline",
				Ph:   "X",
				Ts:   float64(begin),
				Dur:  float64(end - begin),
				Pid:  1,
				Tid:  lane + 1,
				Args: args,
			})
		}
	}
	return out
}
