package pipeline

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"carf/internal/batch"
	"carf/internal/core"
	"carf/internal/harden"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/workload"
)

// The performance work on the cycle loop (instruction pooling, ring
// buffers, the dense fetch index) must not move a single reported
// statistic. This differential gate pins the complete Stats struct —
// IPC numerator and denominator, operand traffic, stall and squash
// counters, the Table 4 combo histogram — plus the CPI stack and fault
// campaign outcomes, for a grid of kernels, register file models, and
// feature configurations, against golden values recorded before the
// optimization. Regenerate (only when a change is *supposed* to alter
// behaviour) with:
//
//	go test ./internal/pipeline -run TestGoldenStats -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden differential stats")

const goldenScale = 0.05

// goldenRecord is everything one configuration reports.
type goldenRecord struct {
	Name  string
	Stats Stats

	// Profiled runs: CPI stack slot counts per category (they sum to
	// Cycles × CommitWidth) and per-PC profile aggregates.
	CPIStack map[string]uint64 `json:",omitempty"`
	PCTotals map[string]uint64 `json:",omitempty"`

	// Fault campaign runs: injection outcomes and the detection error.
	Injected []string `json:",omitempty"`
	Err      string   `json:",omitempty"`
}

func goldenModels() map[string]func() regfile.Model {
	return map[string]func() regfile.Model{
		"baseline":  func() regfile.Model { return regfile.Baseline() },
		"unlimited": func() regfile.Model { return regfile.Unlimited() },
		"carf":      func() regfile.Model { return core.New(core.DefaultParams()) },
		"carf-cam": func() regfile.Model {
			p := core.DefaultParams()
			p.CAMShort = true
			return core.New(p)
		},
		"carf-long6": func() regfile.Model {
			p := core.DefaultParams()
			p.NumLong = 6
			return core.New(p)
		},
		"carf-refcount": func() regfile.Model {
			p := core.DefaultParams()
			p.ShortFree = core.FreeRefCount
			return core.New(p)
		},
	}
}

func runGolden(t *testing.T) []goldenRecord {
	t.Helper()
	var out []goldenRecord
	add := func(rec goldenRecord) { out = append(out, rec) }

	run := func(name, kernel string, cfg Config, model regfile.Model) *CPU {
		t.Helper()
		k, err := workload.ByName(kernel, goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		cpu := New(cfg, k.Prog, model)
		if _, err := cpu.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
			t.Fatalf("%s: result %#x, want %#x", name, got, k.Expected)
		}
		return cpu
	}

	// Model × kernel grid on the default configuration.
	models := goldenModels()
	for _, mname := range []string{"baseline", "unlimited", "carf", "carf-cam", "carf-long6", "carf-refcount"} {
		for _, kernel := range []string{"histo", "crc64", "qsort", "listchase"} {
			name := kernel + "/" + mname
			cpu := run(name, kernel, DefaultConfig(), models[mname]())
			add(goldenRecord{Name: name, Stats: cpu.Stats()})
		}
	}

	// Feature configurations that exercise the squash, cluster, and
	// port-contention paths.
	wp := DefaultConfig()
	wp.WrongPath = true
	for _, kernel := range []string{"histo", "crc64"} {
		name := kernel + "/carf/wrongpath"
		cpu := run(name, kernel, wp, models["carf"]())
		add(goldenRecord{Name: name, Stats: cpu.Stats()})
	}
	cl := DefaultConfig()
	cl.Clusters = 2
	cpu := run("histo/carf/clusters", "histo", cl, models["carf"]())
	add(goldenRecord{Name: "histo/carf/clusters", Stats: cpu.Stats()})
	pc := DefaultConfig()
	pc.PortContention = true
	cpu = run("histo/baseline/ports", "histo", pc, models["baseline"]())
	add(goldenRecord{Name: "histo/baseline/ports", Stats: cpu.Stats()})

	// Hardened run: lockstep + sweeps + watchdog must stay silent and
	// the statistics must match the unhardened grid entry exactly.
	hc := DefaultConfig()
	hc.Harden = harden.Options{Lockstep: true, SweepEvery: 2048, WatchdogAfter: 50000}
	cpu = run("histo/carf/checked", "histo", hc, models["carf"]())
	add(goldenRecord{Name: "histo/carf/checked", Stats: cpu.Stats()})

	// Profiled run: the CPI stack and per-PC aggregates are reported
	// statistics too.
	k, err := workload.ByName("histo", goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	pcpu := New(DefaultConfig(), k.Prog, models["carf"]())
	prof := pcpu.InstallProfiler()
	if _, err := pcpu.Run(); err != nil {
		t.Fatal(err)
	}
	if err := prof.Stack.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	stack := map[string]uint64{}
	for cat := profile.Category(0); cat < profile.NumCategories; cat++ {
		stack[cat.String()] = prof.Stack.Slots[cat]
	}
	pcTotals := map[string]uint64{}
	for _, e := range prof.PCs.Entries() {
		pcTotals["committed"] += e.Committed
		pcTotals["mispredicts"] += e.Mispredicts
		pcTotals["l2"] += e.L2Misses
		pcTotals["mem"] += e.MemMisses
		pcTotals["imisses"] += e.IMisses
		pcTotals["spills"] += e.Spills
		for _, w := range e.Writes {
			pcTotals["writes"] += w
		}
	}
	add(goldenRecord{Name: "histo/carf/profiled", Stats: pcpu.Stats(), CPIStack: stack, PCTotals: pcTotals})

	// Fault campaign: deterministic injections with lockstep detection;
	// the detection error text (cycle, field, values) is part of the
	// contract.
	fcfg := DefaultConfig()
	fcfg.Harden = harden.Options{Lockstep: true, SweepEvery: 512, WatchdogAfter: 50000}
	fk, err := workload.ByName("crc64", goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	fcpu := New(fcfg, fk.Prog, models["carf"]())
	fcpu.ScheduleFault(harden.Fault{Class: harden.FaultSimpleBit, Cycle: 2000, Seed: 7})
	_, ferr := fcpu.Run()
	rec := goldenRecord{Name: "crc64/carf/fault", Stats: fcpu.Stats()}
	if ferr != nil {
		rec.Err = ferr.Error()
	}
	for _, o := range fcpu.Injections() {
		rec.Injected = append(rec.Injected, goldenOutcome(o))
	}
	add(rec)

	return out
}

func goldenOutcome(o harden.Outcome) string {
	b, _ := json.Marshal(struct {
		Class    string
		Cycle    uint64
		Injected bool
		At       uint64
		Detail   string
	}{o.Fault.Class.String(), o.Fault.Cycle, o.Injected, o.InjectedAt, o.Detail})
	return string(b)
}

// TestGoldenStatsBatchedBitIdentical replays the plain model × kernel
// grid through the lockstep batch executor (width 4, four concurrent
// submitters) and checks every Stats struct against the same golden
// records the scalar grid is pinned to: chunked, interleaved execution
// must not move a single statistic.
func TestGoldenStatsBatchedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is not short")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden_stats.json"))
	if err != nil {
		t.Fatalf("missing golden data (run TestGoldenStatsBitIdentical with -update-golden to record): %v", err)
	}
	var records []goldenRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatal(err)
	}
	want := map[string]Stats{}
	for _, r := range records {
		want[r.Name] = r.Stats
	}
	ex := batch.NewExecutor(4)
	models := goldenModels()
	type job struct {
		name   string
		kernel string
		mname  string
	}
	var jobs []job
	for _, mname := range []string{"baseline", "unlimited", "carf", "carf-cam", "carf-long6", "carf-refcount"} {
		for _, kernel := range []string{"histo", "crc64", "qsort", "listchase"} {
			jobs = append(jobs, job{kernel + "/" + mname, kernel, mname})
		}
	}
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			k, err := workload.ByName(j.kernel, goldenScale)
			if err != nil {
				t.Error(err)
				return
			}
			cpu := New(DefaultConfig(), k.Prog, models[j.mname]())
			if err := ex.Run(cpu); err != nil {
				t.Errorf("%s: %v", j.name, err)
				return
			}
			st, err := cpu.Finalize()
			if err != nil {
				t.Errorf("%s: %v", j.name, err)
				return
			}
			if w, ok := want[j.name]; !ok {
				t.Errorf("%s: no golden record", j.name)
			} else if !reflect.DeepEqual(st, w) {
				t.Errorf("%s: batched stats diverged from golden record:\n got: %+v\nwant: %+v", j.name, st, w)
			}
		}(j)
	}
	wg.Wait()
}

func TestGoldenStatsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is not short")
	}
	path := filepath.Join("testdata", "golden_stats.json")
	got := runGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden records to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden data (run with -update-golden to record): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].Name {
			t.Fatalf("record %d is %q, golden has %q", i, got[i].Name, want[i].Name)
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: statistics diverged from golden record:\n got: %+v\nwant: %+v",
				got[i].Name, got[i], want[i])
		}
	}
}
