package pipeline

import (
	"testing"

	"carf/internal/core"
	"carf/internal/isa"
	"carf/internal/regfile"
	"carf/internal/vm"
	"carf/internal/workload"
)

func carfModel() regfile.Model { return core.New(core.DefaultParams()) }

// runKernel simulates kernel k on model and verifies functional
// correctness plus basic timing sanity.
func runKernel(t *testing.T, k workload.Kernel, model regfile.Model) Stats {
	t.Helper()
	cpu := New(DefaultConfig(), k.Prog, model)
	st, err := cpu.Run()
	if err != nil {
		t.Fatalf("%s on %s: %v", k.Name, model.Name(), err)
	}
	if got := cpu.mach.X[workload.ResultReg]; got != k.Expected {
		t.Errorf("%s on %s: result %#x, want %#x", k.Name, model.Name(), got, k.Expected)
	}
	if st.ValueMismatches != 0 {
		t.Errorf("%s on %s: %d register-file reconstruction mismatches",
			k.Name, model.Name(), st.ValueMismatches)
	}
	if st.IPC() <= 0.05 || st.IPC() > float64(DefaultConfig().IssueWidth) {
		t.Errorf("%s on %s: implausible IPC %.3f", k.Name, model.Name(), st.IPC())
	}
	return st
}

func TestAllKernelsOnAllModels(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.03
	}
	for _, k := range workload.AllKernels(scale) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			base := runKernel(t, k, regfile.Baseline())
			unl := runKernel(t, k, regfile.Unlimited())
			carf := runKernel(t, k, carfModel())

			// The baseline tracks the unlimited file closely (§4; bfs
			// is the one register-pressure-bound outlier), and the
			// content-aware file loses only a little IPC.
			if base.IPC() < 0.80*unl.IPC() {
				t.Errorf("baseline IPC %.3f far below unlimited %.3f", base.IPC(), unl.IPC())
			}
			if carf.IPC() < 0.80*base.IPC() {
				t.Errorf("content-aware IPC %.3f implausibly below baseline %.3f",
					carf.IPC(), base.IPC())
			}
			if carf.IPC() > 1.02*base.IPC() {
				t.Errorf("content-aware IPC %.3f above baseline %.3f", carf.IPC(), base.IPC())
			}
		})
	}
}

func TestBypassRateHigherWithDeeperWriteback(t *testing.T) {
	k, err := workload.ByName("qsort", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base := runKernel(t, k, regfile.Baseline())
	carf := runKernel(t, k, carfModel())
	if carf.BypassRate() <= base.BypassRate() {
		t.Errorf("content-aware bypass rate %.3f not above baseline %.3f (Table 2 direction)",
			carf.BypassRate(), base.BypassRate())
	}
	if base.BypassRate() <= 0.05 || base.BypassRate() >= 0.95 {
		t.Errorf("baseline bypass rate %.3f implausible", base.BypassRate())
	}
}

func TestOperandCombosRecorded(t *testing.T) {
	k, err := workload.ByName("hashprobe", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := runKernel(t, k, carfModel())
	var total uint64
	for i := range st.OperandCombos {
		for j := range st.OperandCombos[i] {
			total += st.OperandCombos[i][j]
		}
	}
	if total == 0 {
		t.Error("no operand combinations recorded on a content-aware run")
	}
	// Conventional runs record nothing (no classifier).
	st2 := runKernel(t, k, regfile.Baseline())
	var total2 uint64
	for i := range st2.OperandCombos {
		for j := range st2.OperandCombos[i] {
			total2 += st2.OperandCombos[i][j]
		}
	}
	if total2 != 0 {
		t.Error("operand combinations recorded on a conventional run")
	}
}

func TestBranchStats(t *testing.T) {
	k, err := workload.ByName("qsort", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := runKernel(t, k, regfile.Baseline())
	if st.Branches == 0 {
		t.Fatal("no branches counted")
	}
	if st.Mispredicts == 0 {
		t.Error("zero mispredicts on data-dependent branches is implausible")
	}
	if st.Mispredicts >= st.Branches/2 {
		t.Errorf("mispredict rate %.2f implausibly high",
			float64(st.Mispredicts)/float64(st.Branches))
	}
}

func TestCARFStatsFlow(t *testing.T) {
	k, err := workload.ByName("listchase", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(core.DefaultParams())
	cpu := New(DefaultConfig(), k.Prog, model)
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	cs := model.Stats()
	var reads uint64
	for _, r := range cs.ReadsByType {
		reads += r
	}
	if reads == 0 {
		t.Error("no typed reads recorded")
	}
	if cs.WritesByType[regfile.TypeShort] == 0 {
		t.Error("pointer-chasing kernel produced no short writes")
	}
	if cs.ShortInstalls == 0 {
		t.Error("no short-file installs from load/store addresses")
	}
	if cs.RobIntervals == 0 {
		t.Error("ROB intervals never ticked")
	}
}

// TestMaxInstructions bounds a run.
func TestMaxInstructions(t *testing.T) {
	k, err := workload.ByName("crc64", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxInstructions = 5000
	cpu := New(cfg, k.Prog, regfile.Baseline())
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions < 5000 || st.Instructions > 5000+uint64(cfg.CommitWidth) {
		t.Errorf("instructions = %d, want ~5000", st.Instructions)
	}
}

// TestSampler exercises the live-value sampling hook.
type countingSampler struct {
	samples int
	values  int
}

func (s *countingSampler) Sample(v []uint64) {
	s.samples++
	s.values += len(v)
}

func TestSampler(t *testing.T) {
	k, err := workload.ByName("histo", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	s := &countingSampler{}
	cpu.SetSampler(s, 64)
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if s.samples == 0 {
		t.Fatal("sampler never invoked")
	}
	if s.values/s.samples < isa.NumRegs/2 {
		t.Errorf("average live values %d implausibly low", s.values/s.samples)
	}
}

// TestTinyProgram checks in-order semantics end to end on a handmade
// program with a RAW chain, a store-load pair, and a call/return.
func TestTinyProgram(t *testing.T) {
	b := workload.NewBuilder("tiny")
	b.Li(1, 10)
	b.Addi(2, 1, 5)     // 15
	b.Add(3, 2, 2)      // 30
	b.La(4, 0x60000000) // scratch well away from other segments
	b.St(3, 4, 0)
	b.Ld(5, 4, 0) // 30, must see the store
	b.Call("double")
	b.Raw(isa.Inst{Op: isa.ADDI, Rd: 28, Rs1: 5, Imm: 0})
	b.Halt()
	b.Label("double")
	b.Add(5, 5, 5) // 60
	b.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, model := range []regfile.Model{regfile.Baseline(), carfModel()} {
		cpu := New(DefaultConfig(), prog, model)
		st, err := cpu.Run()
		if err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		if got := cpu.mach.X[28]; got != 60 {
			t.Errorf("%s: x28 = %d, want 60", model.Name(), got)
		}
		if st.Instructions != 11 {
			t.Errorf("%s: committed %d instructions, want 11", model.Name(), st.Instructions)
		}
	}
}

// TestCARFDeeperPipelineCostsCycles: same program, the content-aware
// configuration should take at least as many cycles as the baseline
// (extra read stage lengthens the branch-resolution loop).
func TestCARFDeeperPipelineCostsCycles(t *testing.T) {
	k, err := workload.ByName("qsort", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base := runKernel(t, k, regfile.Baseline())
	carf := runKernel(t, k, carfModel())
	if carf.Cycles < base.Cycles {
		t.Errorf("content-aware run took fewer cycles (%d) than baseline (%d)",
			carf.Cycles, base.Cycles)
	}
}

// TestRecoveryUnderTinyLongFile: a pathologically small long file must
// still complete correctly, exercising Recovery State and (possibly)
// forced spills.
func TestRecoveryUnderTinyLongFile(t *testing.T) {
	p := core.DefaultParams()
	p.NumLong = 4
	k, err := workload.ByName("crc64", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(p)
	cpu := New(DefaultConfig(), k.Prog, model)
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.mach.X[workload.ResultReg]; got != k.Expected {
		t.Errorf("result %#x, want %#x", got, k.Expected)
	}
	if st.ValueMismatches != 0 {
		t.Errorf("%d reconstruction mismatches under pressure", st.ValueMismatches)
	}
	if model.Stats().RecoveryEvents == 0 {
		t.Error("tiny long file never entered Recovery State on a CRC workload")
	}
}

func TestVMGoldenUnaffectedByTiming(t *testing.T) {
	// The same kernel must produce identical architectural results on
	// the raw VM and under the pipeline.
	k, err := workload.ByName("vmloop", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(k.Prog)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if m.X[workload.ResultReg] != cpu.mach.X[workload.ResultReg] {
		t.Error("pipeline and VM disagree on the architectural result")
	}
}
