package pipeline

import (
	"fmt"

	"carf/internal/cache"
	"carf/internal/regfile"
	"carf/internal/vm"
)

// SMT runs two hardware threads that share one integer register file
// organization and one memory hierarchy (§6 of the paper: the long
// file's average occupancy is far below its peak, so one content-aware
// file can feed more than one thread). Pipeline resources are statically
// partitioned: each thread gets half the widths, queues, and functional
// units — the simple policy of early SMT designs, sufficient to study
// register file sharing.
type SMT struct {
	threads [2]*CPU
	cycles  uint64
	policy  SMTPolicy
}

// SMTPolicy selects the thread-priority policy (§6: "what are the best
// thread priority policies for this kind of simultaneous multithreading
// architecture" — two are implemented).
type SMTPolicy uint8

const (
	// PolicyRoundRobin gives both threads their full static partition
	// every cycle.
	PolicyRoundRobin SMTPolicy = iota
	// PolicyLongAware throttles the thread holding more live Long
	// registers whenever the shared Long file is under pressure,
	// protecting the other thread from pseudo-deadlock stalls.
	PolicyLongAware
)

// String implements fmt.Stringer.
func (p SMTPolicy) String() string {
	if p == PolicyLongAware {
		return "long-aware"
	}
	return "round-robin"
}

// SetPolicy selects the thread-priority policy (before Run).
func (s *SMT) SetPolicy(p SMTPolicy) { s.policy = p }

// NewSMT builds a two-thread machine running progs against a single
// shared register file model. cfg describes the whole core; each thread
// receives half of every partitionable resource.
func NewSMT(cfg Config, progs [2]*vm.Program, model regfile.Model) *SMT {
	half := cfg
	half.FetchWidth = max1(cfg.FetchWidth / 2)
	half.IssueWidth = max1(cfg.IssueWidth / 2)
	half.CommitWidth = max1(cfg.CommitWidth / 2)
	half.ROBSize = max1(cfg.ROBSize / 2)
	half.IntQueue = max1(cfg.IntQueue / 2)
	half.FPQueue = max1(cfg.FPQueue / 2)
	half.LSQSize = max1(cfg.LSQSize / 2)
	half.IntUnits = max1(cfg.IntUnits / 2)
	half.FPUnits = max1(cfg.FPUnits / 2)
	half.DCachePorts = max1(cfg.DCachePorts / 2)
	half.NumFPRegs = max1(cfg.NumFPRegs / 2)

	hier, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		panic(fmt.Sprintf("pipeline: NewSMT called with unvalidated config (invariant: callers run Config.Validate first): %v", err))
	}
	s := &SMT{}
	for i, prog := range progs {
		cpu := New(half, prog, model)
		cpu.hier = hier // share the memory system
		s.threads[i] = cpu
	}
	return s
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Thread returns thread i's CPU (stats, machine inspection).
func (s *SMT) Thread(i int) *CPU { return s.threads[i] }

// Cycles returns the total machine cycles simulated.
func (s *SMT) Cycles() uint64 { return s.cycles }

// Run simulates until both threads halt and returns their statistics.
func (s *SMT) Run() ([2]Stats, error) {
	var out [2]Stats
	const idleLimit = 200000
	idle := 0
	lastTotal := uint64(0)
	for !s.threads[0].done || !s.threads[1].done {
		s.applyPolicy()
		for _, t := range s.threads {
			if !t.done {
				t.cycle()
			}
		}
		s.cycles++
		total := s.threads[0].stats.Instructions + s.threads[1].stats.Instructions
		if total == lastTotal {
			idle++
			if idle > idleLimit {
				return out, fmt.Errorf("smt: no commit progress for %d cycles", idleLimit)
			}
		} else {
			idle = 0
			lastTotal = total
		}
	}
	out[0] = s.threads[0].stats
	out[1] = s.threads[1].stats
	return out, nil
}

// applyPolicy sets each thread's issue-hold flag for the coming cycle.
func (s *SMT) applyPolicy() {
	t0, t1 := s.threads[0], s.threads[1]
	t0.issueHold, t1.issueHold = false, false
	if s.policy != PolicyLongAware {
		return
	}
	// Pressure check against the shared file: hold the hungrier thread.
	if !t0.model.LongStall(t0.cfg.longStallThreshold() * 2) {
		return
	}
	if t0.longOwned >= t1.longOwned {
		t0.issueHold = !t0.done && !t1.done
	} else {
		t1.issueHold = !t0.done && !t1.done
	}
}

// Machine exposes a thread's architectural state for verification.
func (c *CPU) Machine() *vm.Machine { return c.mach }
