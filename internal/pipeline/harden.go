package pipeline

import (
	"fmt"

	"carf/internal/harden"
	"carf/internal/isa"
	"carf/internal/regfile"
	"carf/internal/vm"
)

// This file wires the harden package into the pipeline: lockstep
// co-simulation at commit, periodic invariant sweeps, the zero-commit
// watchdog (see Run), deterministic fault injection into the register
// file model, and the diagnostic bundle attached to every failure. All
// of it is gated on Config.Harden — a zero Options leaves c.hard nil
// and costs one pointer test per cycle.

// hardenState is the per-CPU verification state.
type hardenState struct {
	opts harden.Options
	lock *harden.Lockstep
	wd   *harden.Watchdog

	// ring holds recent commits when lockstep (which keeps its own ring)
	// is off but sweeps or the watchdog still want context.
	ring *harden.CommitRing

	// pending faults scheduled via ScheduleFault; retried each cycle
	// from their target cycle until a suitable target exists.
	pending []*pendingFault
	// injected faults, in injection order.
	injected []harden.Outcome

	// err is the first hardening failure; it ends the run.
	err error
}

type pendingFault struct {
	fault harden.Fault
}

func newHardenState(opts harden.Options, prog *vm.Program) *hardenState {
	h := &hardenState{opts: opts}
	if opts.Lockstep {
		h.lock = harden.NewLockstep(prog, opts.Ring())
	}
	if opts.WatchdogAfter > 0 {
		h.wd = harden.NewWatchdog(opts.WatchdogAfter)
	}
	if h.lock == nil {
		h.ring = harden.NewCommitRing(opts.Ring())
	}
	return h
}

// NewChecked validates cfg and the model's capacity before building the
// CPU, returning descriptive errors instead of panicking — the
// constructor for configurations that arrive from outside the codebase
// (CLI flags, experiment sweeps with computed parameters).
func NewChecked(cfg Config, prog *vm.Program, model regfile.Model) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, fmt.Errorf("pipeline: nil program")
	}
	if model == nil {
		return nil, fmt.Errorf("pipeline: nil register file model")
	}
	if n := model.NumTags(); n <= isa.NumRegs {
		return nil, fmt.Errorf("pipeline: register file %s has %d tags; need more than the %d architectural registers",
			model.Name(), n, isa.NumRegs)
	}
	return New(cfg, prog, model), nil
}

// ScheduleFault schedules a deterministic fault injection: from cycle
// f.Cycle on, each cycle attempts to apply the corruption until the
// model reports a suitable target existed. The model must implement
// harden.Injector (the content-aware file does); faults scheduled on
// other models stay uninjected and are reported as such.
func (c *CPU) ScheduleFault(f harden.Fault) {
	if c.hard == nil {
		c.hard = newHardenState(c.cfg.Harden, c.mach.Prog)
	}
	c.hard.pending = append(c.hard.pending, &pendingFault{fault: f})
}

// Injections reports every scheduled fault's injection status, in
// injection order followed by the still-pending ones. The campaign
// driver fills in detection results from Run's error.
func (c *CPU) Injections() []harden.Outcome {
	if c.hard == nil {
		return nil
	}
	out := append([]harden.Outcome(nil), c.hard.injected...)
	for _, p := range c.hard.pending {
		out = append(out, harden.Outcome{Fault: p.fault})
	}
	return out
}

// tryInjectFaults applies every due pending fault whose target exists.
func (c *CPU) tryInjectFaults() {
	inj, ok := c.model.(harden.Injector)
	kept := c.hard.pending[:0]
	for _, p := range c.hard.pending {
		if uint64(c.now) < p.fault.Cycle {
			kept = append(kept, p)
			continue
		}
		if !ok {
			kept = append(kept, p)
			continue
		}
		detail, applied := inj.Inject(p.fault)
		if !applied {
			kept = append(kept, p) // no target yet; retry next cycle
			continue
		}
		c.hard.injected = append(c.hard.injected, harden.Outcome{
			Fault:      p.fault,
			Injected:   true,
			InjectedAt: uint64(c.now),
			Detail:     detail,
		})
	}
	c.hard.pending = kept
}

// checkCommit runs the lockstep co-simulator against the instruction
// that just committed (and maintains the diagnostic commit ring).
func (c *CPU) checkCommit(in *dynInst) error {
	rec := harden.CommitRecord{
		Seq:   in.seq,
		Cycle: uint64(c.now),
		PC:    in.pc,
		Inst:  in.inst,
	}
	if in.eff.WritesReg && in.eff.RdClass == isa.RegInt {
		rec.WritesInt = true
		rec.Rd = in.eff.Rd
		rec.RdValue = in.eff.RdValue
		if c.hard.lock != nil && in.hasDest && !in.destFP {
			if v, ok := c.model.ReadValue(in.destTag); ok {
				rec.ArchValue, rec.ArchOK = v, true
			}
		}
	}
	if in.eff.Store {
		rec.Store = true
		rec.Addr = in.eff.Addr
		rec.Size = in.eff.Size
		rec.StoreVal = in.eff.StoreVal
	}
	if c.hard.lock == nil {
		c.hard.ring.Push(rec)
		return nil
	}
	if d := c.hard.lock.OnCommit(rec); d != nil {
		d.Bundle = c.buildBundle()
		return d
	}
	return nil
}

// checkInvariants is the periodic sweep: pipeline-level structural
// invariants (ROB ordering, rename-map accounting), the §2
// reconstruction identity for every live written tag, the model's own
// structural self-checks and fault log, and — when lockstep is on — the
// full architectural register diff against the golden model.
func (c *CPU) checkInvariants() []harden.Violation {
	var vs []harden.Violation
	add := func(check, format string, args ...any) {
		vs = append(vs, harden.Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}

	// ROB ordering: strictly increasing sequence numbers.
	for i := 1; i < c.rob.Len(); i++ {
		prev, cur := c.rob.At(i-1), c.rob.At(i)
		if cur.seq <= prev.seq {
			add("rob-order", "entry %d (seq %d) not older than entry %d (seq %d)",
				i-1, prev.seq, i, cur.seq)
		}
	}

	// Rename-map accounting: every mapped tag is in range and live.
	maps := []struct {
		name string
		m    *[isa.NumRegs]int
	}{{"rename", &c.intMap}, {"retire", &c.retireMap}}
	for _, mp := range maps {
		for r := 0; r < isa.NumRegs; r++ {
			tag := mp.m[r]
			if tag < 0 || tag >= len(c.intLive) {
				add("rename-map", "%s map: x%d -> tag %d out of range", mp.name, r, tag)
				continue
			}
			if !c.intLive[tag] {
				add("rename-map", "%s map: x%d -> tag %d which is not live", mp.name, r, tag)
			}
		}
	}

	// §2 reconstruction identity: every live, written, landed tag must
	// reconstruct to the oracle value recorded at rename.
	for tag := range c.intValue {
		if !c.intLive[tag] || !c.intWrote[tag] || c.intWB[tag] > c.now {
			continue
		}
		if v, ok := c.model.ReadValue(tag); ok && v != c.intValue[tag] {
			add("reconstruction", "tag %d reconstructs %#x, oracle has %#x", tag, v, c.intValue[tag])
		}
	}

	// Model-side structural checks and fault log.
	if ch, ok := c.model.(harden.Checker); ok {
		vs = append(vs, ch.CheckInvariants()...)
	}
	if fr, ok := c.model.(harden.FaultReporter); ok {
		for _, s := range fr.Faults() {
			add("fault-log", "%s", s)
		}
	}

	// Architectural cross-check against the golden model.
	if c.hard.lock != nil {
		regs := c.hard.lock.ArchRegs()
		for r := 0; r < isa.NumRegs; r++ {
			tag := c.retireMap[r]
			if tag < 0 || tag >= len(c.intLive) {
				continue // already reported by the rename-map check
			}
			if v, ok := c.model.ReadValue(tag); ok && v != regs[r] {
				add("arch-state", "x%d (tag %d) reconstructs %#x, golden model has %#x", r, tag, v, regs[r])
			}
		}
	}
	return vs
}

// buildBundle captures the diagnostic context for a hardening failure:
// headline statistics, the metrics registry snapshot when installed,
// recent commits, and the tail of the pipeline trace when a TraceBuffer
// is attached.
func (c *CPU) buildBundle() *harden.Bundle {
	b := &harden.Bundle{
		Cycle:           c.stats.Cycles,
		PC:              c.mach.PC,
		LastCommitCycle: uint64(max64(c.lastCommitCycle, 0)),
	}
	st := c.stats
	b.Notes = []string{
		fmt.Sprintf("instructions=%d", st.Instructions),
		fmt.Sprintf("rob=%d/%d", c.rob.Len(), c.cfg.ROBSize),
		fmt.Sprintf("intiq=%d", len(c.intIQ)),
		fmt.Sprintf("lsq=%d", c.lsq.Len()),
		fmt.Sprintf("rename_stalls=%d", st.RenameStallCycles),
		fmt.Sprintf("long_stalls=%d", st.LongStallCycles),
		fmt.Sprintf("recovery_stalls=%d", st.RecoveryStallCycles),
		fmt.Sprintf("forced_spills=%d", st.ForcedSpills),
		fmt.Sprintf("value_mismatches=%d", st.ValueMismatches),
	}
	if c.mreg != nil {
		names := c.mreg.Names()
		vals := c.mreg.Snapshot(make([]float64, 0, len(names)))
		b.Metrics = make([]harden.Metric, len(names))
		for i, name := range names {
			b.Metrics[i] = harden.Metric{Name: name, Value: vals[i]}
		}
	}
	if c.hard != nil {
		if c.hard.lock != nil {
			b.Commits = c.hard.lock.Ring()
		} else if c.hard.ring != nil {
			b.Commits = c.hard.ring.Snapshot()
		}
	}
	if tb, ok := c.tracer.(*TraceBuffer); ok && len(tb.Events) > 0 {
		tail := tb.Events
		if len(tail) > 8 {
			tail = tail[len(tail)-8:]
		}
		for _, ev := range tail {
			b.Trace = append(b.Trace, fmt.Sprintf("seq=%d pc=%#x %s fetch=%d issue=%d wb=%d commit=%d",
				ev.Seq, ev.PC, ev.Inst, ev.Fetch, ev.Issue, ev.WBDone, ev.Commit))
		}
	}
	return b
}
