package pipeline

import (
	"fmt"

	"carf/internal/isa"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/vm"
)

// ---------- Rename / dispatch ----------

func (c *CPU) rename() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.front.Len() == 0 {
			return
		}
		in := c.front.Front()
		if in.fetchC+int64(c.cfg.FrontLatency) > c.now {
			return
		}
		if ok, why := c.dispatchReady(in); !ok {
			c.stats.RenameStallCycles++
			if c.pp != nil {
				c.pp.renameBlock = why
			}
			return
		}
		c.front.PopFront()
		in.renameC = c.now
		c.bindSources(in)
		c.bindDest(in)
		c.assignCluster(in)
		if c.wrong != nil && c.wrong.branch == in {
			// Checkpoint the rename maps at the branch's own rename
			// point: every older instruction has updated them, no
			// phantom has yet (they are younger in the FIFO).
			c.wrong.intMap = c.intMap
			c.wrong.fpMap = c.fpMap
		}
		c.rob.PushBack(in)
		if in.isMem {
			c.lsq.PushBack(in)
		}
		if in.inst.Op.Class() == isa.ClassFPU {
			c.fpIQ = append(c.fpIQ, in)
			c.fpWake = 0 // new entry: the wakeup scan must look again
		} else {
			c.intIQ = append(c.intIQ, in)
			c.intWake = 0
		}
	}
}

// dispatchReady checks every structural resource the instruction needs
// to enter the out-of-order window. On a stall it names the blocking
// resource as a CPI-stack category: queue/window capacity is
// structural, an exhausted rename free list is the register file's.
func (c *CPU) dispatchReady(in *dynInst) (bool, profile.Category) {
	if c.rob.Len() >= c.cfg.ROBSize {
		return false, profile.CatStructural
	}
	if in.isMem && c.lsq.Len() >= c.cfg.LSQSize {
		return false, profile.CatStructural
	}
	if in.inst.Op.Class() == isa.ClassFPU {
		if len(c.fpIQ) >= c.cfg.FPQueue {
			return false, profile.CatStructural
		}
	} else if len(c.intIQ) >= c.cfg.IntQueue {
		return false, profile.CatStructural
	}
	if in.eff.WritesReg && in.eff.RdClass == isa.RegFP && len(c.fpFree) == 0 {
		return false, profile.CatRFFree
	}
	if in.eff.WritesReg && in.eff.RdClass == isa.RegInt && !c.canAllocInt() {
		return false, profile.CatRFFree
	}
	return true, profile.CatCommit
}

// canAllocInt probes the integer tag allocator without consuming a tag.
func (c *CPU) canAllocInt() bool {
	tag, ok := c.model.Alloc()
	if !ok {
		return false
	}
	// Returning the probe tag keeps Alloc/Free balanced; the real
	// allocation happens immediately afterwards in bindDest.
	c.probeTag, c.probeValid = tag, true
	return true
}

func (c *CPU) bindSources(in *dynInst) {
	op := in.inst.Op
	in.srcs[0], in.srcs[1] = srcRef{tag: -1}, srcRef{tag: -1}
	bind := func(idx int, class isa.RegClass, r isa.Reg) {
		switch class {
		case isa.RegInt:
			if r == isa.Zero {
				return
			}
			in.srcs[idx] = srcRef{tag: c.intMap[r]}
		case isa.RegFP:
			in.srcs[idx] = srcRef{tag: c.fpMap[r], fp: true}
		}
	}
	bind(0, op.Rs1Class(), in.inst.Rs1)
	bind(1, op.Rs2Class(), in.inst.Rs2)
}

func (c *CPU) bindDest(in *dynInst) {
	in.oldTag = -1
	if !in.eff.WritesReg {
		return
	}
	in.hasDest = true
	if in.eff.RdClass == isa.RegFP {
		in.destFP = true
		in.destTag = c.allocFP()
		in.oldTag = c.fpMap[in.inst.Rd]
		c.fpMap[in.inst.Rd] = in.destTag
		c.fpDone[in.destTag], c.fpWB[in.destTag] = never, never
		return
	}
	var tag int
	if c.probeValid {
		tag, c.probeValid = c.probeTag, false
	} else {
		var ok bool
		tag, ok = c.model.Alloc()
		if !ok {
			panic("pipeline: integer tag allocation failed after probe")
		}
	}
	in.destTag = tag
	in.oldTag = c.intMap[in.inst.Rd]
	c.intMap[in.inst.Rd] = tag
	c.intDone[tag], c.intWB[tag] = never, never
	c.intLive[tag] = true
	c.intWrote[tag] = false
	c.intValue[tag] = in.eff.RdValue // oracle value, visible at WB
}

// assignCluster steers a renamed instruction to an execution cluster
// (Config.Clusters = 2): by result value type — simple results to the
// narrow fast cluster, everything else to the wide one (§6) — or
// round-robin for the control experiment. Instructions without an
// integer result follow their first integer source.
func (c *CPU) assignCluster(in *dynInst) {
	if c.clusters < 2 {
		return
	}
	if c.cfg.ClusterSteerRoundRobin {
		in.cluster = c.steerNext
		c.steerNext ^= 1
	} else if in.hasDest && !in.destFP {
		if !c.isSimpleValue(in.eff.RdValue) {
			in.cluster = 1
		}
	} else {
		in.cluster = 0
		for _, s := range in.srcs {
			if s.tag >= 0 && !s.fp {
				in.cluster = c.tagCluster[s.tag]
				break
			}
		}
	}
	if in.hasDest && !in.destFP {
		c.tagCluster[in.destTag] = in.cluster
	}
}

// isSimpleValue applies the steering classifier: the content-aware
// file's own classification when available, else the simple-value rule
// at the paper's default width.
func (c *CPU) isSimpleValue(v uint64) bool {
	if c.classifier != nil {
		return c.classifier.Classify(v) == regfile.TypeSimple
	}
	const dn = 20
	low := v & (1<<dn - 1)
	return uint64(int64(low<<(64-dn))>>(64-dn)) == v
}

// ---------- Fetch ----------

func (c *CPU) fetch() {
	if c.haltSeen || c.fetchBlock != nil || c.now < c.fetchResume {
		return
	}
	if c.wrong != nil {
		c.fetchWrongPath()
		return
	}
	lineMask := ^(uint64(c.cfg.Hierarchy.L1I.LineBytes) - 1)
	capacity := 3 * c.cfg.FetchWidth
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.front.Len() >= capacity {
			return
		}
		pc := c.mach.PC
		if line := pc & lineMask; line != c.lastFetchLine {
			lat := c.hier.FetchLatency(pc)
			c.lastFetchLine = line
			if lat > 1 {
				// The line arrives after the miss latency; retry then.
				c.fetchResume = c.now + int64(lat) - 1
				c.lastFetchLine = ^uint64(0) // re-check on resume
				if c.pp != nil {
					c.pp.resume = profile.CatFrontend
				}
				return
			}
		}
		// Superblock fast path: while inside a predecoded straight-line
		// run, step without halt/control/decodability checks. The license
		// persists across cycles — only fetch advances the machine, so a
		// span measured once stays valid until consumed.
		if c.straight == 0 {
			c.straight = c.mach.Span()
		}
		if c.straight > 0 {
			c.straight--
			inst, eff := c.mach.StepStraight()
			c.pushFetched(pc, inst, eff)
			continue
		}

		inst, eff, err := c.mach.Step()
		if err != nil {
			// Programs are validated before simulation; an execution
			// fault here is a simulator bug.
			panic(fmt.Sprintf("pipeline: functional execution failed at %#x: %v", pc, err))
		}
		in := c.pushFetched(pc, inst, eff)

		if inst.Op == isa.HALT {
			c.haltSeen = true
			return
		}
		if !inst.Op.IsControl() {
			continue
		}
		if c.handleControl(in, pc) {
			return // fetch group ends at a taken/blocking transfer
		}
	}
}

// pushFetched fills a pooled dynInst with the result of one functional
// step and appends it to the front-end queue.
func (c *CPU) pushFetched(pc uint64, inst isa.Inst, eff vm.Effect) *dynInst {
	in := c.newDyn()
	in.seq = c.seq
	in.pc = pc
	in.inst = inst
	in.eff = eff
	// The effect already encodes the memory class (eff.Mem is set exactly
	// for loads and stores), sparing two opcode-table lookups per fetch.
	in.isLoad = eff.Mem && !eff.Store
	in.isStore = eff.Store
	in.fetchC = c.now
	in.isMem = eff.Mem
	if in.isMem {
		// Data-cache state evolves in program order (deterministic
		// across register file organizations); the latency recorded
		// here is charged when the access issues.
		in.memLat = c.hier.DataLatencyPC(eff.Addr, pc)
	}
	c.seq++
	c.front.PushBack(in)
	return in
}

// handleControl applies branch prediction to a fetched control
// instruction and reports whether the fetch group must end.
func (c *CPU) handleControl(in *dynInst, pc uint64) bool {
	op, eff := in.inst.Op, in.eff
	switch {
	case op.IsBranch():
		c.stats.Branches++
		pred := c.gshare.Predict(pc)
		c.gshare.Update(pc, eff.Taken)
		if pred != eff.Taken {
			c.stats.Mispredicts++
			in.mispred = true
			if c.cfg.WrongPath && c.startWrongPath(in, pc) {
				return true
			}
			in.blocksFetch = true
			c.fetchBlock = in
			return true
		}
		if !eff.Taken {
			return false // correctly predicted not-taken: keep fetching
		}
		c.redirectDirect(pc, eff.NextPC)
		return true

	case op == isa.JAL:
		if in.inst.Rd == isa.Reg(31) { // call: remember the return point
			c.ras.Push(eff.RdValue)
		}
		c.redirectDirect(pc, eff.NextPC)
		return true

	default: // JALR: indirect
		if in.inst.Rd == isa.Reg(31) {
			c.ras.Push(eff.RdValue)
		}
		isReturn := in.inst.Rd == isa.Zero && in.inst.Rs1 == isa.Reg(31)
		if isReturn {
			if tgt, ok := c.ras.Pop(); ok && tgt == eff.NextPC {
				return true // perfectly predicted return
			}
		} else if tgt, ok := c.btb.Lookup(pc); ok && tgt == eff.NextPC {
			// BTB hit with the correct target: the entry already holds
			// exactly this mapping (direct-mapped, tag-matched), so
			// re-inserting it would be a redundant write.
			return true
		}
		c.btb.Insert(pc, eff.NextPC)
		c.stats.IndirectResolve++
		if c.pp != nil {
			c.pp.prof.PCs.OnMispredict(pc)
		}
		in.mispred = true
		in.blocksFetch = true
		c.fetchBlock = in
		return true
	}
}

// redirectDirect models the front-end redirect for a taken direct
// transfer: free with a BTB hit, a decode-computed one-cycle bubble
// otherwise.
func (c *CPU) redirectDirect(pc, target uint64) {
	if tgt, ok := c.btb.Lookup(pc); ok && tgt == target {
		return
	}
	c.btb.Insert(pc, target)
	c.stats.FetchBubbles++
	c.fetchResume = c.now + 2
	if c.pp != nil {
		c.pp.resume = profile.CatFrontend
	}
}
