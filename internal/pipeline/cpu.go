package pipeline

import (
	"fmt"
	"math"

	"carf/internal/cache"
	"carf/internal/harden"
	"carf/internal/isa"
	"carf/internal/metrics"
	"carf/internal/predictor"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/vm"
)

const never = int64(math.MaxInt64 / 2)

// srcRef names one source operand: a physical tag in the integer or FP
// file. tag < 0 means the operand does not exist (immediate / x0).
type srcRef struct {
	tag int
	fp  bool
}

// dynInst is one in-flight dynamic instruction.
type dynInst struct {
	// Field order is deliberate: the issue-scan working set — readyAt,
	// seq, execDone, the source refs, and the per-entry flag bytes —
	// fills the first 64 bytes, so the wakeup scan and tryIssue touch
	// one cache line per entry instead of three.

	// readyAt is the earliest cycle this entry can possibly issue, set
	// when an issue attempt fails on an operand or a blocking store. The
	// wakeup scan skips the entry until then. It is exact — the proofs
	// live with operandNextTry — so skipping never delays an issue; zero
	// (pool-fresh) means "try immediately".
	readyAt  int64
	seq      uint64
	execDone int64
	srcs     [2]srcRef

	cluster                uint8
	issued                 bool
	isLoad, isStore, isMem bool
	hasDest                bool
	destFP                 bool
	phantom                bool // wrong-path instruction, squashed at resolution

	destTag int
	oldTag  int // previous mapping of the destination logical register
	memLat  int // D-cache latency, recorded in program order at fetch

	fetchC  int64
	renameC int64
	issueC  int64
	wbDone  int64 // valid once wbOK
	wbOK    bool
	wbStall int64 // cycles spent in Recovery State

	blocksFetch bool // mispredicted: fetch waits for resolution
	mispred     bool // mispredicted (either recovery mode)
	committed   bool

	pc   uint64
	inst isa.Inst
	eff  vm.Effect
}

// Classifier is implemented by register file models that can type a
// value (the content-aware file); used for the Table 4 distribution.
type Classifier interface {
	Classify(v uint64) regfile.ValueType
}

// LiveSampler receives periodic snapshots of the live integer register
// values (the Figure 1/2 oracle). The slice is reused between calls;
// implementations must not retain it.
type LiveSampler interface {
	Sample(values []uint64)
}

// CPU is one simulated hardware context bound to a program and an
// integer register file model.
type CPU struct {
	cfg       Config
	mach      *vm.Machine
	model     regfile.Model
	interrupt func() error

	// progress is the live reporting hook (SetProgress; nil when off —
	// the fast path). progLastCycles/progLastInsts delimit the interval
	// window between consecutive reports.
	progress       func(Progress)
	progLastCycles uint64
	progLastInsts  uint64

	hier   *cache.Hierarchy
	gshare *predictor.Gshare
	btb    *predictor.BTB
	ras    *predictor.RAS

	// Rename state.
	intMap    [isa.NumRegs]int
	fpMap     [isa.NumRegs]int
	retireMap [isa.NumRegs]int
	fpFree    []int

	// Per-tag scoreboard (integer file, indexed by tag).
	intDone  []int64 // producer execute-complete cycle (never if unissued)
	intWB    []int64 // cycle after which the RF holds the value
	intLive  []bool
	intValue []uint64
	intWrote []bool

	// RunChunk resume state: the no-progress watchdog counters persist
	// across chunk boundaries so chunked execution behaves exactly like
	// one uninterrupted Run.
	runIdle      int64
	runLastInsts uint64

	// classifier is the model's value classifier when it has one (the
	// content-aware file), cached to avoid a type assertion per use.
	// Classification itself cannot be cached per tag: the content-aware
	// Classify consults the live Short-entry table, so the same value may
	// classify differently at different cycles.
	classifier Classifier

	// Per-tag scoreboard (FP file).
	fpDone []int64
	fpWB   []int64
	fpLive []bool

	// Machine state. The structural queues are ring buffers (O(1) push,
	// pop, and in-order retirement; see instQueue); the issue queues stay
	// index-addressed slices because issue removes from arbitrary
	// positions, compacted in place only on cycles that issue.
	now      int64
	seq      uint64
	rob      instQueue
	intIQ    []*dynInst
	fpIQ     []*dynInst
	// intWake/fpWake are queue-level wakeup bounds: no entry in the
	// queue can issue before that cycle, so the wakeup scan is skipped
	// wholesale until then. Maintained from the per-entry readyAt bounds
	// plus a conservative next-cycle recheck whenever anything issued or
	// was budget-limited; rename resets the bound on every insert.
	intWake int64
	fpWake  int64
	front    instQueue
	lsq      instQueue // in-flight memory operations, program order
	haltSeen bool
	done     bool

	// pool recycles dynInst records between commit/squash and fetch so
	// the steady-state cycle loop performs no heap allocation.
	pool []*dynInst

	// Reusable scratch buffers for per-interval work inside the cycle
	// loop (retirement-map snapshots, live-value sampling).
	archScratch []int
	liveScratch []uint64

	// Functional-unit budget buffers sliced by issue() each cycle.
	intPoolBuf [2]int
	fpPoolBuf  [1]int

	fetchResume   int64    // fetch produces nothing before this cycle
	fetchBlock    *dynInst // unresolved mispredicted control instruction
	lastFetchLine uint64   // I-cache line charged for the current group
	straight      int      // remaining superblock license (vm.Machine.Span)

	// Write-back pending set: the issued-but-unwritten instructions, in
	// seq order — exactly the entries the previous full-ROB scan would
	// act on, in the same order (the ROB is seq-ordered). wbEarliest is
	// the minimum execDone among them; writeback() does nothing when no
	// pending instruction completes before this cycle (such a scan would
	// visit only no-op entries, so skipping changes no statistic).
	wbList     []*dynInst
	wbEarliest int64

	probeTag   int // tag reserved by the dispatch-readiness probe
	probeValid bool

	wrong *wrongState // in-flight wrong-path episode (Config.WrongPath)

	commitsInInterval int
	lastCommitCycle   int64

	readStages  int
	writeStages int
	bypassDepth int

	// Per-cycle register file port budgets (Config.PortContention).
	readPorts  int
	writePorts int
	readsUsed  int
	writesUsed int

	// Value-type clustering (Config.Clusters).
	clusters   int
	tagCluster []uint8
	steerNext  uint8

	sampler      LiveSampler
	samplePeriod int64
	tracer       Tracer

	// Metrics instrumentation (InstallMetrics; all nil when disabled).
	msampler     *metrics.Sampler
	mFetchWidth  *metrics.Histogram
	mIssueWidth  *metrics.Histogram
	mCommitWidth *metrics.Histogram

	// issueHold asks this context to skip issue for the cycle (SMT
	// thread-priority policies).
	issueHold bool
	// longOwned counts this context's live long-typed registers in the
	// (possibly shared) integer file.
	longOwned int

	// mreg is the metrics registry installed by InstallMetrics (nil when
	// metrics are off); hardening failures snapshot it into the bundle.
	mreg *metrics.Registry

	// hard is the hardening state (nil when Config.Harden is all off —
	// the fast path).
	hard *hardenState

	// pp is the attribution state (nil unless InstallProfiler was
	// called — the fast path).
	pp *profState

	stats Stats
}

// Stats aggregates run-level measurements.
type Stats struct {
	Cycles       uint64
	Instructions uint64

	// Integer register file operand traffic (Table 2).
	IntOperands      uint64
	BypassedOperands uint64

	// Source-operand type combinations (Table 4), content-aware runs
	// only. Indexed [simple|short|long][simple|short|long], folded so
	// that [a][b] with a<=b holds the count.
	OperandCombos [3][3]uint64

	// Control flow.
	Branches        uint64
	Mispredicts     uint64
	IndirectResolve uint64 // JALR redirects resolved at execute
	FetchBubbles    uint64 // decode-redirect bubble cycles (BTB misses)

	// Value-type clustering (Config.Clusters = 2).
	CrossClusterOps uint64 // operands forwarded between clusters

	// Wrong-path mode (Config.WrongPath).
	WrongPathFetched  uint64 // phantom instructions fetched
	WrongPathSquashed uint64 // phantom instructions squashed
	Squashes          uint64 // squash events (resolved mispredicts)

	// Structural stalls.
	PortStallCycles     uint64 // register file port contention events
	RenameStallCycles   uint64 // no ROB/IQ/LSQ/tag available
	LongStallCycles     uint64 // issue stalled by long-file pressure
	RecoveryStallCycles uint64 // write-back Recovery State retries
	ForcedSpills        uint64 // hard pseudo-deadlock spills

	// Verification.
	ValueMismatches uint64 // RF reconstruction disagreed with the oracle
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// BypassRate returns the fraction of integer operands served by the
// bypass network instead of a register file read (Table 2).
func (s Stats) BypassRate() float64 {
	if s.IntOperands == 0 {
		return 0
	}
	return float64(s.BypassedOperands) / float64(s.IntOperands)
}

// New builds a CPU running prog with the given integer register file
// organization. The configuration and model must already be valid (see
// Config.Validate and NewChecked, which return errors instead); New
// panics on a config that cannot build a machine.
func New(cfg Config, prog *vm.Program, model regfile.Model) *CPU {
	hier, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		panic(fmt.Sprintf("pipeline: New called with unvalidated config (invariant: callers run Config.Validate first): %v", err))
	}
	c := &CPU{
		cfg:    cfg,
		mach:   vm.New(prog),
		model:  model,
		hier:   hier,
		gshare: predictor.NewGshare(cfg.Gshare),
		btb:    predictor.NewBTB(cfg.BTBEntries),
		ras:    predictor.NewRAS(cfg.RASDepth),
	}
	if cfg.Harden.Enabled() {
		c.hard = newHardenState(cfg.Harden, prog)
	}
	c.lastFetchLine = ^uint64(0)
	c.wbEarliest = never
	c.readStages = model.ReadStages()
	c.writeStages = model.WriteStages()
	c.bypassDepth = cfg.BypassDepth
	if c.bypassDepth == 0 {
		c.bypassDepth = c.writeStages
	}
	c.samplePeriod = int64(cfg.SamplePeriod)
	if cfg.PortContention {
		// Every access goes through the model's first array (the whole
		// file conventionally; the Simple file in the content-aware
		// organization, §3.1), so its ports gate the bandwidth.
		spec := model.Files()[0].Spec
		c.readPorts, c.writePorts = spec.ReadPorts, spec.WritePorts
	}

	c.clusters = cfg.Clusters
	if c.clusters < 1 {
		c.clusters = 1
	}

	c.rob.initQueue(cfg.ROBSize)
	c.front.initQueue(3 * cfg.FetchWidth)
	c.lsq.initQueue(cfg.LSQSize)
	c.wbList = make([]*dynInst, 0, cfg.ROBSize)
	c.intIQ = make([]*dynInst, 0, cfg.IntQueue)
	c.fpIQ = make([]*dynInst, 0, cfg.FPQueue)
	c.archScratch = make([]int, 0, isa.NumRegs)

	n := model.NumTags()
	c.tagCluster = make([]uint8, n)
	c.intDone = make([]int64, n)
	c.intWB = make([]int64, n)
	c.intLive = make([]bool, n)
	c.intValue = make([]uint64, n)
	c.intWrote = make([]bool, n)
	c.classifier, _ = model.(Classifier)

	c.fpDone = make([]int64, cfg.NumFPRegs)
	c.fpWB = make([]int64, cfg.NumFPRegs)
	c.fpLive = make([]bool, cfg.NumFPRegs)
	c.fpFree = make([]int, 0, cfg.NumFPRegs)
	for i := cfg.NumFPRegs - 1; i >= 0; i-- {
		c.fpFree = append(c.fpFree, i)
	}

	// Architectural state occupies physical registers from cycle zero.
	for r := 0; r < isa.NumRegs; r++ {
		tag, ok := model.Alloc()
		if !ok {
			panic(fmt.Sprintf("pipeline: register file %s too small for the %d architectural registers (invariant: NewChecked rejects such models)",
				model.Name(), isa.NumRegs))
		}
		v := c.mach.X[r]
		model.ForceWrite(tag, v)
		c.intMap[r], c.retireMap[r] = tag, tag
		c.intDone[tag], c.intWB[tag] = -1000, -1000
		c.intLive[tag], c.intWrote[tag] = true, true
		c.intValue[tag] = v

		ftag := c.allocFP()
		c.fpMap[r] = ftag
		c.fpDone[ftag], c.fpWB[ftag] = -1000, -1000
	}
	return c
}

// SetSampler installs a live-value sampler invoked every period cycles.
func (c *CPU) SetSampler(s LiveSampler, period int) {
	c.sampler = s
	c.samplePeriod = int64(period)
}

// Model returns the integer register file model in use.
func (c *CPU) Model() regfile.Model { return c.model }

// Hierarchy exposes the memory system (stats).
func (c *CPU) Hierarchy() *cache.Hierarchy { return c.hier }

// Gshare exposes the branch predictor (stats).
func (c *CPU) Gshare() *predictor.Gshare { return c.gshare }

func (c *CPU) allocFP() int {
	if len(c.fpFree) == 0 {
		return -1
	}
	t := c.fpFree[len(c.fpFree)-1]
	c.fpFree = c.fpFree[:len(c.fpFree)-1]
	c.fpLive[t] = true
	return t
}

func (c *CPU) freeFP(tag int) {
	c.fpLive[tag] = false
	c.fpDone[tag], c.fpWB[tag] = never, never
	c.fpFree = append(c.fpFree, tag)
}

// SetInterrupt installs a cooperative-abort hook polled periodically
// from the cycle loop: when fn returns a non-nil error the run stops
// and reports it. It exists so callers can wire ctx.Err without
// context appearing anywhere in Config — Config is digested by value
// into scheduler cache keys, and a func field would poison key
// stability. Pass nil to clear. Not safe to call while Run is active.
func (c *CPU) SetInterrupt(fn func() error) { c.interrupt = fn }

// interruptMask spaces interrupt polls: every 4096 cycles keeps the
// check off the hot path (sub-microsecond granularity is pointless for
// multi-second sims) without perturbing any statistic.
const interruptMask = 1<<12 - 1

// Run simulates until the program's HALT commits (or the instruction
// budget is exhausted) and returns the statistics. With hardening
// enabled, the first lockstep divergence or invariant violation ends
// the run with its structured error, and the watchdog converts a
// zero-commit hang into a harden.DeadlockError; without it, a blunt
// idle limit still bounds a hung machine.
func (c *CPU) Run() (Stats, error) {
	if _, err := c.RunChunk(0); err != nil {
		return c.stats, err
	}
	return c.Finalize()
}

// RunChunk simulates up to budget cycles (budget <= 0 means until the
// program finishes) and reports whether the simulation is complete. It
// is the resumable core of Run: callers that interleave many machines —
// the batched lockstep executor — alternate RunChunk calls across
// simulations and call Finalize on each once it reports done. The
// sequence of cycles executed is identical to a single Run call, so
// every statistic is bit-identical regardless of chunking.
//
// A non-nil error means the run failed (hardening divergence, deadlock,
// interrupt); the simulation must not be resumed afterwards.
func (c *CPU) RunChunk(budget int64) (bool, error) {
	const idleLimit = 100000
	watchdog := c.hard != nil && c.hard.wd != nil
	for spent := int64(0); !c.done; spent++ {
		if budget > 0 && spent >= budget {
			return false, nil
		}
		c.cycle()
		if c.hard != nil && c.hard.err != nil {
			return true, c.hard.err
		}
		if c.interrupt != nil && c.stats.Cycles&interruptMask == 0 {
			if err := c.interrupt(); err != nil {
				return true, fmt.Errorf("pipeline: run interrupted at cycle %d: %w", c.stats.Cycles, err)
			}
		}
		if c.progress != nil && c.stats.Cycles&progressMask == 0 {
			c.reportProgress(false)
		}
		if watchdog {
			if stalled, tripped := c.hard.wd.Observe(c.stats.Cycles, c.stats.Instructions); tripped {
				return true, &harden.DeadlockError{
					Cycle:           c.stats.Cycles,
					LastCommitCycle: uint64(max64(c.lastCommitCycle, 0)),
					StalledFor:      stalled,
					PC:              c.mach.PC,
					Bundle:          c.buildBundle(),
				}
			}
		} else if c.stats.Instructions == c.runLastInsts {
			c.runIdle++
			if c.runIdle > idleLimit {
				return true, fmt.Errorf("pipeline: no commit progress for %d cycles at cycle %d (pc %#x)", idleLimit, c.now, c.mach.PC)
			}
		} else {
			c.runIdle = 0
			c.runLastInsts = c.stats.Instructions
		}
		if c.cfg.MaxInstructions > 0 && c.stats.Instructions >= c.cfg.MaxInstructions {
			break
		}
	}
	return true, nil
}

// Finalize flushes end-of-run samplers and surfaces accumulated model
// faults. Call exactly once, after RunChunk reports done without error.
func (c *CPU) Finalize() (Stats, error) {
	if c.msampler != nil {
		c.msampler.Final(c.stats.Cycles)
	}
	if c.progress != nil {
		c.reportProgress(true)
	}
	// Internal faults (double frees) are recorded instead of panicking;
	// a run that accumulated any did not execute correctly.
	if fr, ok := c.model.(harden.FaultReporter); ok {
		if faults := fr.Faults(); len(faults) > 0 {
			return c.stats, fmt.Errorf("pipeline: %d register file fault(s), first: %s", len(faults), faults[0])
		}
	}
	return c.stats, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Stats returns the statistics accumulated so far.
func (c *CPU) Stats() Stats { return c.stats }

// cycle advances the machine one clock. Stages run in reverse pipeline
// order so same-cycle structural hazards resolve like hardware.
func (c *CPU) cycle() {
	c.readsUsed, c.writesUsed = 0, 0
	instr0, seq0 := c.stats.Instructions, c.seq
	if c.hard != nil && len(c.hard.pending) > 0 {
		c.tryInjectFaults()
	}
	c.commit()
	if c.done {
		return
	}
	c.writeback()
	c.maybeSquash()
	c.issue()
	c.rename()
	c.fetch()
	if c.mCommitWidth != nil {
		c.mCommitWidth.Observe(float64(c.stats.Instructions - instr0))
		c.mFetchWidth.Observe(float64(c.seq - seq0))
	}
	if c.sampler != nil && c.samplePeriod > 0 && c.now%c.samplePeriod == 0 {
		c.sampleLive()
	}
	if f, ok := c.model.(liveLongSampler); ok && c.now%128 == 0 {
		f.SampleLiveLong()
	}
	if c.hard != nil && c.hard.err == nil {
		if n := c.hard.opts.SweepEvery; n > 0 && c.now > 0 && uint64(c.now)%n == 0 {
			if vs := c.checkInvariants(); len(vs) > 0 {
				c.hard.err = &harden.InvariantError{Cycle: uint64(c.now), Violations: vs, Bundle: c.buildBundle()}
				c.done = true
			}
		}
	}
	if c.pp != nil {
		c.profCycle(int(c.stats.Instructions - instr0))
	}
	c.now++
	c.stats.Cycles++
	if c.msampler != nil {
		c.msampler.Tick(c.stats.Cycles)
	}
}

type liveLongSampler interface{ SampleLiveLong() }

func (c *CPU) sampleLive() {
	if c.liveScratch == nil {
		c.liveScratch = make([]uint64, 0, len(c.intValue))
	}
	values := c.liveScratch[:0]
	for tag := range c.intValue {
		if c.intLive[tag] && c.intWrote[tag] && c.intWB[tag] <= c.now {
			values = append(values, c.intValue[tag])
		}
	}
	c.liveScratch = values[:0]
	c.sampler.Sample(values)
}

// ---------- Commit ----------

func (c *CPU) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.rob.Len() > 0; n++ {
		in := c.rob.Front()
		if !in.wbOK || in.wbDone >= c.now {
			return
		}
		c.assertNoPhantomCommit(in)
		c.rob.PopFront()
		in.committed = true
		c.stats.Instructions++
		c.lastCommitCycle = c.now
		if c.pp != nil {
			c.pp.prof.PCs.OnCommit(in.pc)
		}
		if c.hard != nil {
			if err := c.checkCommit(in); err != nil {
				c.hard.err = err
				c.done = true
				return
			}
		}
		if c.tracer != nil {
			c.tracer.Trace(TraceEvent{
				Seq: in.seq, PC: in.pc, Inst: in.inst,
				Fetch: in.fetchC, Rename: in.renameC, Issue: in.issueC,
				ExecDone: in.execDone, WBDone: in.wbDone, Commit: c.now,
				Mispredicted: in.mispred,
			})
		}

		if in.isMem {
			c.removeLSQ(in)
		}

		if in.hasDest {
			if in.destFP {
				if in.oldTag >= 0 {
					c.freeFP(in.oldTag)
				}
			} else {
				c.retireMap[in.inst.Rd] = in.destTag
				if in.oldTag >= 0 {
					if c.model.TypeOf(in.oldTag) == regfile.TypeLong {
						c.longOwned--
					}
					c.model.Free(in.oldTag)
					c.intLive[in.oldTag] = false
					c.intWrote[in.oldTag] = false
					c.intDone[in.oldTag], c.intWB[in.oldTag] = never, never
				}
			}
		}

		c.commitsInInterval++
		if c.commitsInInterval >= c.cfg.ROBSize {
			c.commitsInInterval = 0
			arch := c.archScratch[:0]
			for _, t := range c.retireMap {
				arch = append(arch, t)
			}
			c.model.OnRobInterval(arch)
		}

		halt := in.eff.Halt
		c.freeDyn(in)
		if halt {
			c.done = true
			return
		}
	}
}

// removeLSQ retires the committing memory operation. Commit is in
// program order and the LSQ is seq-ordered, so the op is the LSQ head;
// the scan is a defensive fallback only.
func (c *CPU) removeLSQ(in *dynInst) {
	if c.lsq.Len() > 0 && c.lsq.Front() == in {
		c.lsq.PopFront()
		return
	}
	for i, n := 0, c.lsq.Len(); i < n; i++ {
		if c.lsq.At(i) == in {
			c.lsq.RemoveAt(i)
			return
		}
	}
}

// ---------- Write-back ----------

func (c *CPU) writeback() {
	// Attempt write-back for every executed, un-written instruction.
	// The pending set holds exactly those instructions in seq order —
	// the order the previous full-ROB scan visited them — so the whole
	// ROB never needs walking. Nothing at all happens on cycles where no
	// pending instruction has completed yet.
	if len(c.wbList) == 0 || c.wbEarliest >= c.now {
		return
	}
	earliest := never
	kept := c.wbList[:0]
	for _, in := range c.wbList {
		if in.execDone >= c.now {
			kept = append(kept, in)
			if in.execDone < earliest {
				earliest = in.execDone
			}
			continue
		}
		if !in.hasDest {
			in.wbOK = true
			in.wbDone = in.execDone // control/store: complete at execute
			continue
		}
		if in.destFP {
			in.wbOK = true
			in.wbDone = in.execDone + int64(1) // single-stage FP write-back
			c.fpWB[in.destTag] = in.wbDone
			continue
		}
		if c.writePorts > 0 && c.writesUsed >= c.writePorts {
			// Out of write ports this cycle; the result retries.
			c.stats.PortStallCycles++
			kept = append(kept, in)
			if in.execDone < earliest {
				earliest = in.execDone
			}
			continue
		}
		if c.pp != nil {
			c.pp.writePC = in.pc
		}
		if c.model.TryWrite(in.destTag, in.eff.RdValue) {
			c.writesUsed++
			if c.model.TypeOf(in.destTag) == regfile.TypeLong {
				c.longOwned++
			}
			in.wbOK = true
			in.wbDone = in.execDone + int64(c.writeStages)
			if in.wbDone < c.now {
				in.wbDone = c.now // recovery-delayed writes land late
			}
			c.intWB[in.destTag] = in.wbDone
			c.intWrote[in.destTag] = true
			continue
		}
		// Recovery State: no free long register. Retry every cycle;
		// after DeadlockSpillAfter cycles at the ROB head, spill.
		in.wbStall++
		c.stats.RecoveryStallCycles++
		if c.rob.Front() == in && in.wbStall > int64(c.cfg.DeadlockSpillAfter) {
			c.model.ForceWrite(in.destTag, in.eff.RdValue)
			c.stats.ForcedSpills++
			if c.pp != nil {
				c.pp.spilled = true
			}
			in.wbOK = true
			in.wbDone = c.now + int64(c.writeStages)
			c.intWB[in.destTag] = in.wbDone
			c.intWrote[in.destTag] = true
			continue
		}
		kept = append(kept, in)
		if in.execDone < earliest {
			earliest = in.execDone
		}
	}
	c.wbList, c.wbEarliest = kept, earliest
}

// ---------- Issue / execute ----------

// operandStatus reports whether a source is available to an instruction
// issuing this cycle, and whether it arrives through the bypass network.
// The register file supports write-then-read within a cycle (standard
// internal forwarding), so readiness is gated by the expected write
// completion (execDone + write stages); a Recovery-State-delayed write
// is at most optimistic by the stall length, which the issue stall of
// §3.2 makes rare.
func (c *CPU) operandStatus(s srcRef, cluster uint8) (ready, viaBypass, crossed bool) {
	var done, wb int64
	if s.fp {
		done = c.fpDone[s.tag]
		wb = done + 1
		if w := c.fpWB[s.tag]; w < wb {
			wb = w
		}
	} else {
		done = c.intDone[s.tag]
		wb = done + int64(c.writeStages)
		if w := c.intWB[s.tag]; w < wb {
			wb = w
		}
		if c.clusters > 1 && c.tagCluster[s.tag] != cluster {
			// Inter-cluster forwarding adds one cycle (§6).
			done++
			wb++
			crossed = true
		}
	}
	r := int64(c.readStages)
	if done > c.now+r {
		return false, false, crossed // producer result not catchable yet
	}
	gap := c.now + r + 1 - done
	if wb <= c.now+r {
		// In the register file by the time the read stages complete.
		// The most recent results still ride the bypass in hardware.
		if gap <= int64(c.bypassDepth) {
			return true, true, crossed
		}
		return true, false, crossed
	}
	if gap <= int64(c.bypassDepth) {
		return true, true, crossed
	}
	return false, false, crossed // bypass window missed, RF not yet written
}

// operandNextTry computes the earliest cycle the given not-ready source
// can satisfy operandStatus — the issue-queue wakeup time. It is exact,
// mirroring operandStatus case by case:
//
//   - Producer unissued (done == never): it can issue next cycle at the
//     soonest, so recheck every cycle until it does.
//   - Result not yet catchable (done > now + readStages): first ready at
//     done - readStages, where the bypass gap is 1 <= bypassDepth. The
//     gap only grows with time, so it cannot have been ready earlier.
//   - Bypass window missed with the register file write still pending:
//     ready again exactly when the write lands. The effective write
//     cycle is done + writeStages (FP: done + 1) — writeback may clamp
//     the architectural wbDone later under Recovery-State delay, but
//     operandStatus reads min(done + stages, recorded WB), which the
//     clamp can only leave at done + stages.
//
// Cross-cluster sources see done shifted by the forwarding cycle before
// any of the cases, exactly as operandStatus applies it.
func (c *CPU) operandNextTry(s srcRef, cluster uint8) int64 {
	var done, stages int64
	if s.fp {
		done = c.fpDone[s.tag]
		stages = 1
	} else {
		done = c.intDone[s.tag]
		stages = int64(c.writeStages)
		if c.clusters > 1 && c.tagCluster[s.tag] != cluster {
			done++
		}
	}
	if done >= never {
		return c.now + 1
	}
	r := int64(c.readStages)
	if done > c.now+r {
		return done - r
	}
	return done + stages - r
}

// loadBlocked reports whether an older overlapping store delays the
// load. forwarded is true when the value comes from the store queue.
// When blocked, retryAt is the earliest cycle the blocking store stops
// blocking: stores not yet issued force a next-cycle recheck; issued
// ones unblock exactly when their data is catchable by the load's read
// stages (execDone <= now + readStages).
func (c *CPU) loadBlocked(ld *dynInst) (blocked, forwarded bool, retryAt int64) {
	lo, hi := ld.eff.Addr, ld.eff.Addr+uint64(ld.eff.Size)
	// The LSQ is seq-ordered, so binary-search the load's own position
	// and walk backwards from there: same visit order over the older
	// entries as the full scan, without stepping over the younger suffix.
	i, j := 0, c.lsq.Len()
	for i < j {
		mid := int(uint(i+j) >> 1)
		if c.lsq.At(mid).seq < ld.seq {
			i = mid + 1
		} else {
			j = mid
		}
	}
	for i--; i >= 0; i-- {
		st := c.lsq.At(i)
		if !st.isStore {
			continue
		}
		sLo, sHi := st.eff.Addr, st.eff.Addr+uint64(st.eff.Size)
		if lo < sHi && sLo < hi {
			// Youngest older overlapping store.
			if !st.issued {
				return true, false, c.now + 1
			}
			if st.execDone > c.now+int64(c.readStages) {
				return true, false, st.execDone - int64(c.readStages)
			}
			return false, true, 0
		}
	}
	return false, false, 0
}

func (c *CPU) issue() {
	// §3.2 pseudo-deadlock prevention: stall issue while the Long file
	// is nearly exhausted. The oldest instruction still issues so that
	// commits keep draining and freeing Long entries (otherwise the
	// prevention itself could deadlock the machine).
	onlyHead := false
	if c.issueHold {
		c.stats.LongStallCycles++
		onlyHead = true
	}
	if c.model.LongStall(c.cfg.longStallThreshold()) {
		c.stats.LongStallCycles++
		onlyHead = true
	}
	if onlyHead && c.pp != nil {
		c.pp.longIssue = true
	}
	issued := 0
	intFU := c.cfg.IntUnits
	fpFU := c.cfg.FPUnits
	dports := c.cfg.DCachePorts

	// The per-cluster budgets live in fixed CPU-owned buffers so slicing
	// them allocates nothing.
	intPool := c.intPoolBuf[:1]
	intPool[0] = intFU
	if c.clusters == 2 {
		intPool = c.intPoolBuf[:2]
		intPool[0], intPool[1] = intFU/2, intFU-intFU/2
	}
	fpPool := c.fpPoolBuf[:1]
	fpPool[0] = fpFU
	c.issueQueue(&c.intIQ, &c.intWake, &issued, intPool, &dports, onlyHead)
	c.issueQueue(&c.fpIQ, &c.fpWake, &issued, fpPool, &dports, onlyHead)
	if c.mIssueWidth != nil {
		c.mIssueWidth.Observe(float64(issued))
	}
}

// issueQueue wakes up ready instructions in age order. Entries that
// issue are nilled out and the queue is compacted in one pass — but
// only on cycles where something actually issued, so a stalled queue
// costs a read-only scan instead of rewriting (and write-barriering)
// every element every cycle. The scan itself is skipped while the
// queue-level wake bound proves no entry can issue yet: every entry
// either carries an exact readyAt in the future, or failed for a
// budget/structural reason that is rechecked the next cycle. A skipped
// scan performs no tool calls into the model and touches no statistic,
// so skipping is invisible; PortContention retries keep the bound at
// next-cycle because a port-limited attempt leaves readyAt in the past.
func (c *CPU) issueQueue(queue *[]*dynInst, wake *int64, issued *int, fuPool []int, dports *int, onlyHead bool) {
	if *wake > c.now {
		return
	}
	q := *queue
	removed := 0
	minNext := never
	for i, in := range q {
		if in.issued {
			// Issued entries are compacted out below; a stray one (can
			// only appear through a future bug) is dropped, matching the
			// pre-ring behaviour.
			q[i] = nil
			removed++
			continue
		}
		if onlyHead && (c.rob.Len() == 0 || c.rob.Front() != in) {
			// Eligible again as soon as the long-pressure hold clears.
			minNext = c.now + 1
			continue
		}
		if in.readyAt > c.now {
			// A prior attempt proved this entry cannot issue before
			// readyAt; an attempt now would fail on the same operand or
			// store with no side effects, so skipping is invisible.
			if in.readyAt < minNext {
				minNext = in.readyAt
			}
			continue
		}
		// cluster is 0 or 1 and the pool length 1 or 2, so masking
		// replaces the general modulo.
		fu := &fuPool[int(in.cluster)&(len(fuPool)-1)]
		if *issued >= c.cfg.IssueWidth || *fu <= 0 {
			minNext = c.now + 1 // budget renews next cycle
			continue
		}
		if !c.tryIssue(in, dports) {
			// Operand/store failures recorded an exact future readyAt;
			// cache-port and read-port failures leave it in the past and
			// must recheck next cycle.
			next := in.readyAt
			if next <= c.now {
				next = c.now + 1
			}
			if next < minNext {
				minNext = next
			}
			continue
		}
		*issued++
		*fu--
		q[i] = nil
		removed++
		// Issuing consumes shared budgets and can unblock loads; the
		// queue must be rescanned next cycle.
		minNext = c.now + 1
	}
	*wake = minNext
	if removed == 0 {
		return
	}
	kept := q[:0]
	for _, in := range q {
		if in != nil {
			kept = append(kept, in)
		}
	}
	*queue = kept
}

// tryIssue issues in if all its operands and structural resources are
// available this cycle.
func (c *CPU) tryIssue(in *dynInst, dports *int) bool {
	if in.isMem && *dports <= 0 {
		return false
	}
	type opRead struct {
		s      srcRef
		bypass bool
	}
	var reads [2]opRead
	nReads := 0
	rfReads := 0
	crossings := 0
	for _, s := range in.srcs {
		if s.tag < 0 {
			continue
		}
		ready, bypass, crossed := c.operandStatus(s, in.cluster)
		if !ready {
			in.readyAt = c.operandNextTry(s, in.cluster)
			return false
		}
		if !bypass && !s.fp {
			rfReads++
		}
		if crossed {
			crossings++
		}
		reads[nReads] = opRead{s, bypass}
		nReads++
	}
	// Memory-order check after operand readiness: both predicates are
	// side-effect-free, so the order only decides which one prices the
	// retry hint.
	var forwarded bool
	if in.isLoad {
		blocked, fwd, retryAt := c.loadBlocked(in)
		if blocked {
			in.readyAt = retryAt
			return false
		}
		forwarded = fwd
	}
	if c.readPorts > 0 && c.readsUsed+rfReads > c.readPorts {
		// Not enough read ports left this cycle.
		c.stats.PortStallCycles++
		return false
	}
	c.readsUsed += rfReads
	c.stats.CrossClusterOps += uint64(crossings)

	// Issue accepted: account operand reads and schedule execution.
	for i := 0; i < nReads; i++ {
		rd := reads[i]
		if rd.s.fp {
			continue // FP file traffic is outside the evaluation
		}
		c.stats.IntOperands++
		if rd.bypass {
			c.stats.BypassedOperands++
		} else {
			c.model.Read(rd.s.tag)
			c.verifyRead(rd.s.tag)
		}
	}
	c.recordOperandCombo(in)

	lat := int64(c.cfg.IntLatency)
	if in.inst.Op.Class() == isa.ClassFPU {
		lat = int64(c.cfg.FPLatency)
	}
	if in.isLoad {
		*dports--
		mem := int64(1)
		if !forwarded {
			mem = int64(in.memLat)
		}
		lat = 1 + mem // AGU + memory
	}
	if in.isStore {
		// Address generation; the write drains through the store
		// buffer, so a (fetch-time recorded) miss does not stall the
		// pipeline, but the store still claims a cache port.
		*dports--
		lat = 1
	}

	in.issued = true
	in.issueC = c.now
	in.execDone = c.now + int64(c.readStages) + lat
	// Enter the write-back pending set, kept seq-sorted (issue order is
	// age order within a queue but not across the int/FP queues or
	// across cycles; the set is small, so the backward ripple is cheap).
	c.wbList = append(c.wbList, in)
	for i := len(c.wbList) - 1; i > 0 && c.wbList[i-1].seq > in.seq; i-- {
		c.wbList[i], c.wbList[i-1] = c.wbList[i-1], c.wbList[i]
	}
	if in.execDone < c.wbEarliest {
		c.wbEarliest = in.execDone
	}
	if in.hasDest {
		if in.destFP {
			c.fpDone[in.destTag] = in.execDone
		} else {
			c.intDone[in.destTag] = in.execDone
		}
	}
	if in.isMem {
		// §3.2: load/store effective addresses may be installed in the
		// Short file, in parallel with the ALU/AGU stage.
		c.model.NoteAddress(in.eff.Addr)
	}
	if in.blocksFetch {
		// Fetch restarts once the branch resolves in execute.
		resume := in.execDone + 1
		if resume > c.fetchResume {
			c.fetchResume = resume
		}
		c.fetchBlock = nil
		if c.pp != nil {
			c.pp.resume = profile.CatBranch
		}
	}
	return true
}

// verifyRead checks the register file reconstruction against the
// functional oracle (a safety net over the content-aware encodings).
func (c *CPU) verifyRead(tag int) {
	v, ok := c.model.ReadValue(tag)
	if !ok {
		return // conventional files may not retain values pre-write
	}
	if c.intWrote[tag] && v != c.intValue[tag] {
		c.stats.ValueMismatches++
	}
}

// recordOperandCombo folds the instruction's integer source value types
// into the Table 4 histogram (content-aware runs only).
func (c *CPU) recordOperandCombo(in *dynInst) {
	if c.classifier == nil {
		return
	}
	var types [2]regfile.ValueType
	n := 0
	for _, s := range in.srcs {
		if s.tag < 0 || s.fp {
			continue
		}
		types[n] = c.classifier.Classify(c.intValue[s.tag])
		n++
	}
	switch n {
	case 1:
		c.stats.OperandCombos[types[0]][types[0]]++
	case 2:
		a, b := types[0], types[1]
		if a > b {
			a, b = b, a
		}
		c.stats.OperandCombos[a][b]++
	}
}
