// Package pipeline implements the cycle-level out-of-order superscalar
// core of Table 1: 8-wide fetch/issue/commit, a 128-entry reorder
// buffer, 32-entry integer and floating-point issue queues, a 64-entry
// load/store queue, gshare branch prediction, and the Table 1 memory
// hierarchy. The integer register file organization is pluggable
// (regfile.Model): the baseline and unlimited conventional files, or the
// content-aware file from internal/core with its two-stage register read
// (RF1/RF2), two-stage write-back (WR1/WR2), extra bypass level, and
// issue-stall pseudo-deadlock prevention.
//
// Functional execution happens in program order at fetch against the
// vm.Machine golden model (sim-outorder style); the timing model replays
// structural and data dependences on top. Branch mispredictions stall
// fetch until the branch resolves in execute — wrong-path instructions
// are not injected (see DESIGN.md §6 for the implications).
package pipeline

import (
	"fmt"

	"carf/internal/cache"
	"carf/internal/harden"
	"carf/internal/isa"
	"carf/internal/predictor"
)

// Config collects every architectural parameter of the simulated core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	ROBSize  int
	IntQueue int
	FPQueue  int
	LSQSize  int

	IntUnits    int // integer functional units (latency IntLatency)
	FPUnits     int // floating-point units (latency FPLatency)
	IntLatency  int
	FPLatency   int
	DCachePorts int // concurrent loads per cycle

	NumFPRegs int // conventional FP physical register file size

	// FrontLatency is the number of cycles between fetch and rename
	// (decode stages).
	FrontLatency int

	// BypassDepth is how many cycles after execute a result remains
	// catchable in the bypass network. 0 means "match the register
	// file's write-back depth" (one level per write stage: the paper's
	// baseline has one level, the content-aware file adds one more).
	BypassDepth int

	// LongStallThreshold stalls issue when the content-aware file's
	// free long-register count falls to this value (§3.2 prevention).
	// 0 means "use IssueWidth".
	LongStallThreshold int

	// DeadlockSpillAfter force-writes a blocked result through the
	// overflow path after this many stalled cycles at the ROB head
	// (hard pseudo-deadlock resolution).
	DeadlockSpillAfter int

	// SamplePeriod invokes the live-value sampler every this many
	// cycles (0 disables sampling).
	SamplePeriod int

	Hierarchy  cache.HierarchyConfig
	Gshare     predictor.GshareConfig
	BTBEntries int
	RASDepth   int

	// Clusters splits the integer execution core into value-type
	// clusters (§6's first direction): 0 or 1 is the unified machine;
	// 2 gives each cluster half the integer units, with a one-cycle
	// penalty for operands produced in the other cluster.
	Clusters int
	// ClusterSteerRoundRobin steers instructions to clusters
	// alternately instead of by result value type (the control
	// experiment showing why type steering matters).
	ClusterSteerRoundRobin bool

	// PortContention enforces the register file's read/write port
	// counts as per-cycle bandwidth limits: operand reads that miss the
	// bypass network compete for read ports at issue, and results
	// compete for write ports at write-back. Off by default — the paper
	// treats port reduction as orthogonal (§3, §7) — and enabled by the
	// port-sweep experiment to measure the §4 claims (8R costs ~0.17%
	// IPC, 6W ~0.21%).
	PortContention bool

	// WrongPath enables speculative wrong-path execution after
	// mispredicted conditional branches: phantom instructions consume
	// rename tags, queue slots, cache bandwidth, and register file
	// energy until the branch resolves and squashes them. Off by
	// default (the paper-aligned configuration); the "wrongpath"
	// experiment quantifies the difference.
	WrongPath bool

	// MaxInstructions bounds a run (0 = run to HALT).
	MaxInstructions uint64

	// Harden enables the runtime verification layer: lockstep
	// co-simulation at commit, periodic invariant sweeps, and the
	// zero-commit watchdog. The zero value (all checkers off) is the
	// fast path and adds no per-cycle work.
	Harden harden.Options
}

// DefaultConfig returns the Table 1 processor.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,

		ROBSize:  128,
		IntQueue: 32,
		FPQueue:  32,
		LSQSize:  64,

		IntUnits:    8,
		FPUnits:     8,
		IntLatency:  1,
		FPLatency:   2,
		DCachePorts: 2,

		NumFPRegs: 128,

		FrontLatency:       2,
		DeadlockSpillAfter: 200,

		Hierarchy:  cache.DefaultHierarchy(),
		Gshare:     predictor.GshareConfig{HistoryBits: 14},
		BTBEntries: 2048,
		RASDepth:   16,
	}
}

func (c Config) longStallThreshold() int {
	if c.LongStallThreshold > 0 {
		return c.LongStallThreshold
	}
	return c.IssueWidth
}

// Validate checks the configuration for values that would build a
// non-functional machine: zero widths, queues, units, or ports,
// an FP file too small for the architectural registers, out-of-range
// cluster counts, and inconsistent cache geometry. NewChecked and the
// CLIs call it before a run starts; New assumes it has been run.
func (c Config) Validate() error {
	positive := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth},
		{"IssueWidth", c.IssueWidth},
		{"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize},
		{"IntQueue", c.IntQueue},
		{"FPQueue", c.FPQueue},
		{"LSQSize", c.LSQSize},
		{"IntUnits", c.IntUnits},
		{"FPUnits", c.FPUnits},
		{"IntLatency", c.IntLatency},
		{"FPLatency", c.FPLatency},
		{"DCachePorts", c.DCachePorts},
		{"BTBEntries", c.BTBEntries},
	}
	for _, p := range positive {
		if p.v <= 0 {
			return fmt.Errorf("pipeline: %s %d must be positive", p.name, p.v)
		}
	}
	nonNegative := []struct {
		name string
		v    int
	}{
		{"FrontLatency", c.FrontLatency},
		{"BypassDepth", c.BypassDepth},
		{"LongStallThreshold", c.LongStallThreshold},
		{"DeadlockSpillAfter", c.DeadlockSpillAfter},
		{"SamplePeriod", c.SamplePeriod},
		{"RASDepth", c.RASDepth},
	}
	for _, p := range nonNegative {
		if p.v < 0 {
			return fmt.Errorf("pipeline: %s %d must not be negative", p.name, p.v)
		}
	}
	if c.NumFPRegs <= isa.NumRegs {
		return fmt.Errorf("pipeline: NumFPRegs %d must exceed the %d architectural registers (renaming needs headroom)",
			c.NumFPRegs, isa.NumRegs)
	}
	if c.Clusters < 0 || c.Clusters > 2 {
		return fmt.Errorf("pipeline: Clusters %d must be 0, 1, or 2", c.Clusters)
	}
	if err := c.Hierarchy.Valid(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	return nil
}
