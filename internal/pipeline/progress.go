package pipeline

// Progress is one live snapshot of an executing simulation, handed to
// the hook installed with SetProgress: cumulative totals, the delta
// since the previous report (the "interval window"), the structural
// queue occupancies at the report cycle, and the register file write
// mix. Reports are advisory — producing them never changes a single
// statistic, so a run's results are bit-identical with the hook on or
// off.
type Progress struct {
	Cycles       uint64
	Instructions uint64

	// Interval window: deltas since the previous report (or since cycle
	// zero for the first). IntervalIPC is the window's throughput —
	// phase behaviour that the cumulative IPC smooths away.
	IntervalCycles       uint64
	IntervalInstructions uint64
	IntervalIPC          float64

	// Structure occupancies at the report cycle.
	ROB   int
	IntIQ int
	FPIQ  int
	LSQ   int

	// Writes is the cumulative per-array register file write traffic in
	// Model.Files() order: the whole file for conventional organizations
	// (index 0), and the Simple/Short/Long sub-files for the
	// content-aware one — the live write-class mix.
	Writes [3]uint64

	// SampleCycle is the cycle of the interval sampler's newest sample
	// (InstallMetrics runs only; 0 before the first sample or without a
	// sampler), correlating this frame with the exported series.
	SampleCycle uint64

	// Final marks the closing report Run emits after the last cycle; its
	// totals equal the returned Stats.
	Final bool
}

// SetProgress installs a live progress hook invoked periodically from
// the cycle loop (every progressMask+1 cycles) and once more when Run
// completes (Final). Like SetInterrupt, the hook is installed
// out-of-band rather than through Config: Config is digested by value
// into scheduler cache keys, and a func field would poison key
// stability (DESIGN.md §12). The hook runs on the simulating goroutine
// and must return quickly; pass nil to clear. Not safe to call while
// Run is active.
func (c *CPU) SetProgress(fn func(Progress)) { c.progress = fn }

// progressMask spaces progress reports the same way interruptMask
// spaces interrupt polls: every 4096 cycles, a few hundred reports per
// wall-clock second at typical simulation speed — callers needing less
// throttle downstream (the scheduler's reporter does).
const progressMask = 1<<12 - 1

// reportProgress builds and delivers one Progress snapshot. Called only
// when c.progress != nil, off the per-cycle hot path.
func (c *CPU) reportProgress(final bool) {
	p := Progress{
		Cycles:       c.stats.Cycles,
		Instructions: c.stats.Instructions,
		ROB:          c.rob.Len(),
		IntIQ:        len(c.intIQ),
		FPIQ:         len(c.fpIQ),
		LSQ:          c.lsq.Len(),
		Final:        final,
	}
	p.IntervalCycles = c.stats.Cycles - c.progLastCycles
	p.IntervalInstructions = c.stats.Instructions - c.progLastInsts
	if p.IntervalCycles > 0 {
		p.IntervalIPC = float64(p.IntervalInstructions) / float64(p.IntervalCycles)
	}
	c.progLastCycles, c.progLastInsts = c.stats.Cycles, c.stats.Instructions
	for i, f := range c.model.Files() {
		if i >= len(p.Writes) {
			break
		}
		p.Writes[i] = f.Writes
	}
	if c.msampler != nil {
		if sm, ok := c.msampler.Latest(); ok {
			p.SampleCycle = sm.Cycle
		}
	}
	c.progress(p)
}
