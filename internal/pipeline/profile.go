package pipeline

import (
	"carf/internal/profile"
	"carf/internal/regfile"
)

// profState is the per-CPU attribution state (InstallProfiler; nil when
// profiling is off — the fast path pays one nil check per cycle).
//
// The stages run each cycle leave small breadcrumbs here (why rename
// stalled, whether a spill fired, what the current fetch bubble is
// for); profCycle turns them into one CPI-stack charge at the end of
// the cycle and clears the per-cycle ones.
type profState struct {
	prof *profile.Profiler

	// D-cache latency thresholds derived from the hierarchy config: a
	// recorded load latency above l1dHit was served past the L1D, above
	// l2Hit by main memory.
	l1dHit int
	l2Hit  int

	// Per-cycle breadcrumbs, reset by profCycle.
	renameBlock profile.Category // why rename stalled; CatCommit = it didn't
	spilled     bool             // a forced overflow spill fired this cycle
	longIssue   bool             // issue was throttled by Long-file pressure

	// resume is what the current fetch bubble (now < fetchResume) is
	// charged to — CatBranch after a misprediction redirect, CatFrontend
	// after an I-cache miss or decode redirect. Sticky until the next
	// bubble starts.
	resume profile.Category

	// writePC is the PC of the instruction currently writing back, so
	// the register file's write reporter can attribute the outcome.
	writePC uint64
}

// InstallProfiler attaches CPI-stack and per-PC attribution to this
// core and returns the profiler the run will fill. It hooks the cache
// hierarchy's miss observer, the gshare mispredict observer, and (when
// the model supports it) the register file's write reporter. Call it
// once, before Run; with it never called the simulation path is
// unchanged apart from one nil check per cycle.
func (c *CPU) InstallProfiler() *profile.Profiler {
	p := &profile.Profiler{
		Stack: profile.NewCPIStack(c.cfg.CommitWidth),
		PCs:   profile.NewPCProfile(c.mach.Prog),
	}
	pp := &profState{
		prof:        p,
		l1dHit:      c.cfg.Hierarchy.L1D.HitLatency,
		l2Hit:       c.cfg.Hierarchy.L1D.HitLatency + c.cfg.Hierarchy.L2.HitLatency,
		renameBlock: profile.CatCommit,
		resume:      profile.CatFrontend,
	}
	c.pp = pp
	c.hier.SetMissObserver(func(pc, addr uint64, instr, mem bool) {
		if instr {
			p.PCs.OnFetchMiss(pc)
		} else {
			p.PCs.OnDataMiss(pc, mem)
		}
	})
	c.gshare.SetMispredictObserver(p.PCs.OnMispredict)
	if wr, ok := c.model.(regfile.WriteReporter); ok {
		wr.SetWriteReporter(func(typ regfile.ValueType, spilled bool) {
			p.PCs.OnWrite(pp.writePC, typ, spilled)
		})
	}
	return p
}

// profCycle closes out one counted cycle: the commit-slot deficit is
// charged to exactly one category and the per-cycle breadcrumbs reset.
// cycle() calls it iff it also counts the cycle (now++/Cycles++), which
// is what makes the stack's slot identity hold exactly.
func (c *CPU) profCycle(committed int) {
	pp := c.pp
	blame := profile.CatBase
	if committed < c.cfg.CommitWidth {
		blame = c.blameCategory()
	}
	pp.prof.Stack.Account(committed, blame)
	pp.renameBlock = profile.CatCommit
	pp.spilled = false
	pp.longIssue = false
}

// blameCategory picks the single category charged for this cycle's
// commit-slot deficit, in priority order:
//
//  1. a forced overflow spill (rarest, most specific RF event);
//  2. the ROB head executed but cannot write back: Recovery-State
//     retries blame the Long file, otherwise a pending load miss blames
//     the level that served it;
//  3. the head issued and is executing (or waiting out write-back
//     latency): a recorded rename-stall reason wins, else base —
//     execution/dependency latency;
//  4. the head has not issued: Long-pressure issue throttling, then the
//     rename-stall reason, then base (operands not ready);
//  5. an empty ROB is fetch starvation: an unresolved mispredict blames
//     branch recovery, an active fetch bubble blames whoever started it
//     (branch redirect or frontend), anything else (decode latency) the
//     frontend.
func (c *CPU) blameCategory() profile.Category {
	pp := c.pp
	if pp.spilled {
		return profile.CatRFSpill
	}
	if c.rob.Len() > 0 {
		head := c.rob.Front()
		if head.issued {
			if !head.wbOK && head.execDone < c.now {
				if head.wbStall > 0 {
					return profile.CatRFLong
				}
			}
			if !head.wbOK && head.isLoad && head.memLat > pp.l1dHit {
				if head.memLat > pp.l2Hit {
					return profile.CatMem
				}
				return profile.CatL2
			}
			if pp.renameBlock != profile.CatCommit {
				return pp.renameBlock
			}
			return profile.CatBase
		}
		if pp.longIssue {
			return profile.CatRFLong
		}
		if pp.renameBlock != profile.CatCommit {
			return pp.renameBlock
		}
		return profile.CatBase
	}
	if c.fetchBlock != nil {
		return profile.CatBranch
	}
	if c.now < c.fetchResume {
		return pp.resume
	}
	return profile.CatFrontend
}
