package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"carf/internal/metrics"
	"carf/internal/regfile"
	"carf/internal/workload"
)

// TestChromeTraceSchema converts a real pipeline trace to Chrome trace
// format and validates the schema end to end: the JSON parses, and
// every event carries ph, ts, dur, pid, tid, and name.
func TestChromeTraceSchema(t *testing.T) {
	k, err := workload.ByName("crc64", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	buf := &TraceBuffer{Cap: 200}
	cpu.SetTracer(buf)
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}

	events := ChromeTraceEvents(buf.Events)
	if want := 5 * len(buf.Events); len(events) != want {
		t.Fatalf("chrome events = %d, want %d (5 stages x %d instructions)",
			len(events), want, len(buf.Events))
	}

	var out bytes.Buffer
	if err := metrics.WriteChromeTrace(&out, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(events) {
		t.Fatalf("round trip lost events: %d of %d", len(parsed.TraceEvents), len(events))
	}
	for i, ev := range parsed.TraceEvents {
		for _, field := range []string{"ph", "ts", "dur", "pid", "tid", "name"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
	}

	// Duration events only, non-negative durations, and no overlapping
	// lifetimes within a lane (tid): Perfetto renders lanes as tracks.
	laneEnd := map[int]float64{}
	for i, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event %d phase %q, want X", i, ev.Ph)
		}
		if ev.Dur < 0 {
			t.Fatalf("event %d negative duration %v", i, ev.Dur)
		}
		if ev.Name == "fetch" { // first slice of an instruction's lifetime
			if ev.Ts < laneEnd[ev.Tid] {
				t.Fatalf("lane %d overlap: lifetime starting %v before previous end %v",
					ev.Tid, ev.Ts, laneEnd[ev.Tid])
			}
		}
		if end := ev.Ts + ev.Dur; end > laneEnd[ev.Tid] {
			laneEnd[ev.Tid] = end
		}
	}
}
