package pipeline

import (
	"math"
	"testing"

	"carf/internal/core"
	"carf/internal/metrics"
	"carf/internal/workload"
)

// TestMetricsReconcile runs a kernel with the interval sampler attached
// and checks that the sampled series reconcile with the end-of-run
// Stats totals: cumulative series end at the totals, and integrating
// the interval IPC over the cycle deltas reproduces the committed
// instruction count.
func TestMetricsReconcile(t *testing.T) {
	k, err := workload.ByName("qsort", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	model := core.New(core.DefaultParams())
	cpu := New(DefaultConfig(), k.Prog, model)
	reg := metrics.NewRegistry()
	sampler := cpu.InstallMetrics(reg, 1000)
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}

	ts := sampler.Series()
	if len(ts.Samples) < 3 {
		t.Fatalf("only %d samples for a %d-cycle run at interval 1000", len(ts.Samples), st.Cycles)
	}
	for i := 1; i < len(ts.Samples); i++ {
		if ts.Samples[i].Cycle <= ts.Samples[i-1].Cycle {
			t.Fatalf("sample cycles not increasing: %d after %d",
				ts.Samples[i].Cycle, ts.Samples[i-1].Cycle)
		}
	}
	last, _ := ts.Last()
	if last.Cycle != st.Cycles {
		t.Errorf("final sample at cycle %d, run ended at %d", last.Cycle, st.Cycles)
	}

	wantTotal := map[string]float64{
		"pipeline.cycles":           float64(st.Cycles),
		"pipeline.instructions":     float64(st.Instructions),
		"pipeline.branches":         float64(st.Branches),
		"pipeline.mispredicts":      float64(st.Mispredicts),
		"pipeline.int_operands":     float64(st.IntOperands),
		"core.similarity_hits":      float64(model.Stats().SimilarityHits),
		"core.similarity_misses":    float64(model.Stats().SimilarityMisses),
		"cache.l1d.accesses":        float64(cpu.Hierarchy().L1D.Stats().Accesses),
		"predictor.gshare.predicts": float64(st.Branches),
	}
	for name, want := range wantTotal {
		idx := ts.Index(name)
		if idx < 0 {
			t.Fatalf("series %q not registered", name)
		}
		if got := last.Values[idx]; got != want {
			t.Errorf("%s final sample = %v, want %v", name, got, want)
		}
	}

	// The similarity counters mirror the per-type write counts exactly.
	cs := model.Stats()
	if cs.SimilarityHits != cs.WritesByType[1] || cs.SimilarityMisses != cs.WritesByType[2] {
		t.Errorf("similarity hit/miss (%d/%d) do not match short/long writes (%d/%d)",
			cs.SimilarityHits, cs.SimilarityMisses, cs.WritesByType[1], cs.WritesByType[2])
	}

	// Integrate interval IPC over cycle deltas: must reproduce the
	// committed instruction total (floating-point tolerance only).
	ipcIdx := ts.Index("pipeline.ipc")
	if ipcIdx < 0 {
		t.Fatal("pipeline.ipc not registered")
	}
	var rebuilt, prevCycle float64
	for _, sm := range ts.Samples {
		rebuilt += sm.Values[ipcIdx] * (float64(sm.Cycle) - prevCycle)
		prevCycle = float64(sm.Cycle)
	}
	if math.Abs(rebuilt-float64(st.Instructions)) > 1e-6*float64(st.Instructions)+1e-3 {
		t.Errorf("interval IPC integrates to %.3f instructions, want %d", rebuilt, st.Instructions)
	}

	// Occupancy gauges stay within their structural bounds.
	p := core.DefaultParams()
	for name, bound := range map[string]float64{
		"core.short_occupancy":   float64(p.NumShort),
		"core.long_occupancy":    float64(p.NumLong),
		"core.simple_occupancy":  float64(p.NumSimple),
		"pipeline.rob_occupancy": float64(DefaultConfig().ROBSize),
	} {
		for _, v := range ts.Column(name) {
			if v < 0 || v > bound {
				t.Errorf("%s sample %v outside [0, %v]", name, v, bound)
			}
		}
	}
}

// TestMetricsRequiredSeries pins the acceptance-level series names the
// tooling documents: interval IPC, Short/Long occupancy, and cache
// miss rate must exist for both organizations that expose them.
func TestMetricsRequiredSeries(t *testing.T) {
	k, err := workload.ByName("histo", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, core.New(core.DefaultParams()))
	reg := metrics.NewRegistry()
	sampler := cpu.InstallMetrics(reg, 500)
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	ts := sampler.Series()
	for _, name := range []string{
		"pipeline.ipc",
		"core.short_occupancy",
		"core.long_occupancy",
		"cache.l1d.miss_rate",
		"pipeline.commit_width",
	} {
		if ts.Index(name) < 0 {
			t.Errorf("required series %q missing (have %v)", name, ts.Names)
		}
	}
}
