package pipeline

import (
	"testing"

	"carf/internal/cache"
	"carf/internal/core"
	"carf/internal/regfile"
	"carf/internal/workload"
)

// TestExtremeConfigurations squeezes every structural resource to (or
// near) its minimum and requires the machine to stay correct — the
// structural-hazard paths (ROB full, IQ full, LSQ full, tag starvation,
// single-issue, tiny caches) must only ever cost time.
func TestExtremeConfigurations(t *testing.T) {
	k, err := workload.ByName("rle", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	kfp, err := workload.ByName("nbody", 0.04)
	if err != nil {
		t.Fatal(err)
	}

	configs := map[string]func(*Config){
		"tiny-rob": func(c *Config) { c.ROBSize = 8 },
		"tiny-iq":  func(c *Config) { c.IntQueue, c.FPQueue = 2, 2 },
		"tiny-lsq": func(c *Config) { c.LSQSize = 2 },
		"width-1": func(c *Config) {
			c.FetchWidth, c.IssueWidth, c.CommitWidth = 1, 1, 1
			c.IntUnits, c.FPUnits, c.DCachePorts = 1, 1, 1
		},
		"deep-front": func(c *Config) { c.FrontLatency = 6 },
		"tiny-caches": func(c *Config) {
			c.Hierarchy.L1I = cache.Config{Name: "L1I", SizeBytes: 1024, LineBytes: 64, Ways: 1, HitLatency: 1}
			c.Hierarchy.L1D = cache.Config{Name: "L1D", SizeBytes: 1024, LineBytes: 64, Ways: 1, HitLatency: 1}
			c.Hierarchy.L2 = cache.Config{Name: "L2", SizeBytes: 8192, LineBytes: 64, Ways: 2, HitLatency: 10}
		},
		"few-fp-regs": func(c *Config) { c.NumFPRegs = 40 }, // 32 arch + 8 in flight
		"no-btb":      func(c *Config) { c.BTBEntries = 1; c.RASDepth = 1 },
	}

	for name, tweak := range configs {
		name, tweak := name, tweak
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, kern := range []workload.Kernel{k, kfp} {
				for _, model := range []regfile.Model{regfile.Baseline(), core.New(core.DefaultParams())} {
					cfg := DefaultConfig()
					tweak(&cfg)
					cpu := New(cfg, kern.Prog, model)
					st, err := cpu.Run()
					if err != nil {
						t.Fatalf("%s on %s: %v", kern.Name, model.Name(), err)
					}
					if got := cpu.Machine().X[workload.ResultReg]; got != kern.Expected {
						t.Errorf("%s on %s: result %#x, want %#x", kern.Name, model.Name(), got, kern.Expected)
					}
					if st.ValueMismatches != 0 {
						t.Errorf("%s on %s: reconstruction mismatches", kern.Name, model.Name())
					}
					// Constrained machines must be slower than (or equal
					// to) the committed-instruction count allows.
					if st.IPC() > float64(cfg.IssueWidth) {
						t.Errorf("%s: IPC %.2f exceeds issue width %d", name, st.IPC(), cfg.IssueWidth)
					}
				}
			}
		})
	}
}

// TestTinyCARFConfigs sweeps pathologically small content-aware files;
// every combination must stay architecturally exact.
func TestTinyCARFConfigs(t *testing.T) {
	k, err := workload.ByName("hashprobe", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, short := range []int{2, 4} {
		for _, long := range []int{4, 12} {
			for _, dn := range []int{10, 20, 30} {
				p := core.DefaultParams()
				p.NumShort, p.NumLong, p.DPlusN = short, long, dn
				if err := p.Validate(); err != nil {
					continue
				}
				cpu := New(DefaultConfig(), k.Prog, core.New(p))
				st, err := cpu.Run()
				if err != nil {
					t.Fatalf("M=%d K=%d dn=%d: %v", short, long, dn, err)
				}
				if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
					t.Errorf("M=%d K=%d dn=%d: result %#x, want %#x", short, long, dn, got, k.Expected)
				}
				if st.ValueMismatches != 0 {
					t.Errorf("M=%d K=%d dn=%d: mismatches", short, long, dn)
				}
			}
		}
	}
}
