package pipeline

import (
	"fmt"

	"carf/internal/isa"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/vm"
)

// Wrong-path execution mode (Config.WrongPath). By default the simulator
// stalls fetch at a mispredicted branch until it resolves, which leaves
// wrong-path register file traffic out of the energy accounting (noted
// in EXPERIMENTS.md). With WrongPath enabled, fetch instead continues
// down the mispredicted direction of conditional branches: phantom
// instructions are fetched, renamed, issued, and written back like real
// ones — consuming tags, queue slots, cache bandwidth, and register file
// energy — and are squashed when the branch resolves, restoring the
// rename maps from a checkpoint.
//
// Phantom values are synthesized with the pure evaluator (vm.Eval) over
// the current rename-map values, and phantom loads read the
// architectural memory image; phantom stores never write. Wrong-path
// fetch ends at the first control transfer (no nested speculation), a
// bounded simplification documented in DESIGN.md.

// wrongState tracks one in-flight wrong-path episode.
type wrongState struct {
	branch  *dynInst
	pc      uint64
	stalled bool
	intMap  [isa.NumRegs]int
	fpMap   [isa.NumRegs]int
}

// startWrongPath begins fetching down the mispredicted direction of a
// conditional branch. Returns false when no wrong-path target exists
// (indirect mispredicts keep the stall behaviour).
func (c *CPU) startWrongPath(in *dynInst, pc uint64) bool {
	if !in.inst.Op.IsBranch() {
		return false
	}
	var target uint64
	if in.eff.Taken {
		// Predicted not-taken: the wrong path is the fall-through.
		target = pc + uint64(in.inst.Size())
	} else {
		// Predicted taken: the wrong path is the branch target.
		target = pc + uint64(in.inst.Size()) + uint64(in.inst.Imm)
	}
	// The rename-map checkpoint is taken when the branch itself renames
	// (older in-flight instructions must update the map first); see
	// CPU.rename.
	c.wrong = &wrongState{branch: in, pc: target}
	return true
}

// fetchWrongPath fetches up to FetchWidth phantom instructions.
func (c *CPU) fetchWrongPath() {
	w := c.wrong
	if w.stalled {
		return
	}
	lineMask := ^(uint64(c.cfg.Hierarchy.L1I.LineBytes) - 1)
	capacity := 3 * c.cfg.FetchWidth
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.front.Len() >= capacity {
			return
		}
		inst, ok := c.mach.Prog.At(w.pc)
		if !ok || inst.Op.IsControl() || inst.Op == isa.HALT {
			// Ran off the instruction stream or hit a control
			// transfer: stop speculating until the squash.
			w.stalled = true
			return
		}
		if line := w.pc & lineMask; line != c.lastFetchLine {
			lat := c.hier.FetchLatency(w.pc)
			c.lastFetchLine = line
			if lat > 1 {
				c.fetchResume = c.now + int64(lat) - 1
				c.lastFetchLine = ^uint64(0)
				if c.pp != nil {
					c.pp.resume = profile.CatFrontend
				}
				return
			}
		}
		in := c.newDyn()
		in.seq = c.seq
		in.pc = w.pc
		in.inst = inst
		in.phantom = true
		in.isLoad = inst.Op.IsLoad()
		in.isStore = inst.Op.IsStore()
		in.fetchC = c.now
		in.isMem = in.isLoad || in.isStore
		in.eff = c.phantomEffect(inst, w.pc)
		if in.isMem {
			in.memLat = c.hier.DataLatencyPC(in.eff.Addr, w.pc)
		}
		c.seq++
		c.stats.WrongPathFetched++
		c.front.PushBack(in)
		w.pc += uint64(inst.Size())
	}
}

// phantomEffect synthesizes the effect of a wrong-path instruction from
// the fetch-time rename-map values — approximate by construction, but
// self-consistent (reads of phantom results reconstruct what was
// written).
func (c *CPU) phantomEffect(inst isa.Inst, pc uint64) vm.Effect {
	eff := vm.Effect{NextPC: pc + uint64(inst.Size())}
	srcVal := func(class isa.RegClass, r isa.Reg) uint64 {
		switch class {
		case isa.RegInt:
			if r == isa.Zero {
				return 0
			}
			return c.intValue[c.intMap[r]]
		default:
			return 0 // FP values are not tracked; immaterial downstream
		}
	}
	a := srcVal(inst.Op.Rs1Class(), inst.Rs1)
	b := srcVal(inst.Op.Rs2Class(), inst.Rs2)

	switch {
	case inst.Op.IsLoad():
		addr := a + uint64(inst.Imm)
		size := loadSize(inst.Op)
		eff.Mem, eff.Addr, eff.Size = true, addr, size
		eff.WritesReg = true
		eff.RdClass = inst.Op.RdClass()
		eff.Rd = inst.Rd
		eff.RdValue = c.mach.Mem.Read(addr, size)
	case inst.Op.IsStore():
		addr := a + uint64(inst.Imm)
		eff.Mem, eff.Store = true, true
		eff.Addr, eff.Size = addr, storeSize(inst.Op)
		eff.StoreVal = b
	default:
		if v, ok := vm.Eval(inst, a, b); ok {
			eff.WritesReg = inst.Op.RdClass() != isa.RegNone &&
				!(inst.Op.RdClass() == isa.RegInt && inst.Rd == isa.Zero)
			eff.RdClass = inst.Op.RdClass()
			eff.Rd = inst.Rd
			eff.RdValue = v
		}
	}
	return eff
}

func loadSize(op isa.Op) int {
	switch op {
	case isa.LW, isa.LWU:
		return 4
	case isa.LB, isa.LBU:
		return 1
	default:
		return 8
	}
}

func storeSize(op isa.Op) int {
	switch op {
	case isa.SW:
		return 4
	case isa.SB:
		return 1
	default:
		return 8
	}
}

// squashWrongPath removes every instruction younger than the resolved
// branch, frees their resources, and restores the rename maps.
func (c *CPU) squashWrongPath() {
	w := c.wrong
	bseq := w.branch.seq

	// Free the squashed destinations oldest-first (the order the
	// pre-ring implementation used, which the models' free lists
	// observe); the ROB entries themselves are popped below.
	for i, n := 0, c.rob.Len(); i < n; i++ {
		in := c.rob.At(i)
		if in.seq <= bseq || !in.hasDest {
			continue
		}
		if in.destFP {
			c.freeFP(in.destTag)
		} else {
			if c.model.TypeOf(in.destTag) == regfile.TypeLong {
				c.longOwned--
			}
			c.model.Free(in.destTag)
			c.intLive[in.destTag] = false
			c.intWrote[in.destTag] = false
			c.intDone[in.destTag], c.intWB[in.destTag] = never, never
		}
	}
	// Every queue is seq-ordered (rename inserts in program order and
	// removals preserve order), so the squashed phantoms are a suffix.
	// The issue queues and LSQ drop their references first; the ROB pops
	// recycle each phantom exactly once, after no queue can reach it.
	keepSlice := func(list []*dynInst) []*dynInst {
		for len(list) > 0 && list[len(list)-1].seq > bseq {
			list = list[:len(list)-1]
		}
		return list
	}
	c.intIQ = keepSlice(c.intIQ)
	c.fpIQ = keepSlice(c.fpIQ)
	for c.lsq.Len() > 0 && c.lsq.Back().seq > bseq {
		c.lsq.PopBack()
	}
	// Count each phantom once: renamed phantoms live in the ROB (and
	// possibly an issue queue and the LSQ); unrenamed ones in front.
	// Squashed phantoms must leave the write-back pending set before
	// their records are recycled. (wbEarliest may stay stale-low, which
	// only costs one no-op pass.)
	keptWB := c.wbList[:0]
	for _, in := range c.wbList {
		if in.seq <= bseq {
			keptWB = append(keptWB, in)
		}
	}
	c.wbList = keptWB
	for c.rob.Len() > 0 && c.rob.Back().seq > bseq {
		c.stats.WrongPathSquashed++
		c.freeDyn(c.rob.PopBack())
	}
	// Everything still in the front queue is younger than the branch.
	for c.front.Len() > 0 {
		c.stats.WrongPathSquashed++
		c.freeDyn(c.front.PopFront())
	}

	c.intMap = w.intMap
	c.fpMap = w.fpMap
	c.wrong = nil
	c.lastFetchLine = ^uint64(0)
	c.stats.Squashes++
}

// maybeSquash fires the squash once the mispredicted branch has
// executed; called each cycle from the write-back phase.
func (c *CPU) maybeSquash() {
	if c.wrong != nil && c.wrong.branch.issued && c.wrong.branch.execDone < c.now {
		c.squashWrongPath()
	}
}

// assertNoPhantomCommit is the safety net commit consults: a phantom
// reaching the ROB head means the squash logic is broken.
func (c *CPU) assertNoPhantomCommit(in *dynInst) {
	if in.phantom {
		panic(fmt.Sprintf("pipeline: phantom instruction %d (pc %#x) reached commit", in.seq, in.pc))
	}
}
