package pipeline

import (
	"carf/internal/metrics"
)

// metricsRegistrar is implemented by register file models that export
// their own instrument series (the content-aware file, the conventional
// files).
type metricsRegistrar interface {
	RegisterMetrics(reg *metrics.Registry)
}

// widthBounds builds histogram bucket bounds 0..n for a per-cycle
// bandwidth histogram of a width-n stage.
func widthBounds(n int) []float64 {
	out := make([]float64, n+1)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// InstallMetrics registers this core's observable series on reg —
// pipeline throughput, stage-width histograms, queue occupancies, stall
// and control-flow counters, plus the register file model's, cache
// hierarchy's, and predictors' own series — and attaches an interval
// sampler driven by the simulated clock (interval 0 uses
// metrics.DefaultInterval). Run takes a closing sample when the
// simulation ends, so the final sample always matches the end-of-run
// Stats totals. Call it once, before Run.
func (c *CPU) InstallMetrics(reg *metrics.Registry, interval uint64) *metrics.Sampler {
	st := &c.stats
	u := func(p *uint64) func() float64 {
		return func() float64 { return float64(*p) }
	}

	reg.GaugeFunc("pipeline.cycles", u(&st.Cycles))
	reg.GaugeFunc("pipeline.instructions", u(&st.Instructions))
	reg.RatioRate("pipeline.ipc", u(&st.Instructions), u(&st.Cycles))
	reg.GaugeFunc("pipeline.ipc_cum", func() float64 { return st.IPC() })

	reg.GaugeFunc("pipeline.branches", u(&st.Branches))
	reg.GaugeFunc("pipeline.mispredicts", u(&st.Mispredicts))
	reg.RatioRate("pipeline.mispredict_rate", u(&st.Mispredicts), u(&st.Branches))
	reg.GaugeFunc("pipeline.fetch_bubbles", u(&st.FetchBubbles))

	reg.GaugeFunc("pipeline.int_operands", u(&st.IntOperands))
	reg.GaugeFunc("pipeline.bypassed_operands", u(&st.BypassedOperands))
	reg.RatioRate("pipeline.bypass_rate", u(&st.BypassedOperands), u(&st.IntOperands))

	reg.GaugeFunc("pipeline.rob_occupancy", func() float64 { return float64(c.rob.Len()) })
	reg.GaugeFunc("pipeline.intiq_occupancy", func() float64 { return float64(len(c.intIQ)) })
	reg.GaugeFunc("pipeline.fpiq_occupancy", func() float64 { return float64(len(c.fpIQ)) })
	reg.GaugeFunc("pipeline.lsq_occupancy", func() float64 { return float64(c.lsq.Len()) })

	reg.GaugeFunc("pipeline.rename_stall_cycles", u(&st.RenameStallCycles))
	reg.GaugeFunc("pipeline.long_stall_cycles", u(&st.LongStallCycles))
	reg.GaugeFunc("pipeline.recovery_stall_cycles", u(&st.RecoveryStallCycles))
	reg.GaugeFunc("pipeline.port_stall_cycles", u(&st.PortStallCycles))
	reg.GaugeFunc("pipeline.forced_spills", u(&st.ForcedSpills))

	if c.cfg.WrongPath {
		reg.GaugeFunc("pipeline.wrongpath_fetched", u(&st.WrongPathFetched))
		reg.GaugeFunc("pipeline.wrongpath_squashed", u(&st.WrongPathSquashed))
		reg.GaugeFunc("pipeline.squashes", u(&st.Squashes))
	}

	c.mFetchWidth = reg.Histogram("pipeline.fetch_width", widthBounds(c.cfg.FetchWidth))
	c.mIssueWidth = reg.Histogram("pipeline.issue_width", widthBounds(c.cfg.IssueWidth))
	c.mCommitWidth = reg.Histogram("pipeline.commit_width", widthBounds(c.cfg.CommitWidth))

	if m, ok := c.model.(metricsRegistrar); ok {
		m.RegisterMetrics(reg)
	}
	c.hier.RegisterMetrics(reg)
	c.gshare.RegisterMetrics(reg)
	c.btb.RegisterMetrics(reg)

	c.mreg = reg
	c.msampler = metrics.NewSampler(reg, interval)
	return c.msampler
}
