package pipeline

import (
	"errors"
	"strings"
	"testing"

	"carf/internal/core"
	"carf/internal/harden"
	"carf/internal/isa"
	"carf/internal/regfile"
	"carf/internal/vm"
	"carf/internal/workload"
)

// hardenedConfig is DefaultConfig with every checker on, at a sweep
// period tight enough for the tests to measure detection latency.
func hardenedConfig() Config {
	cfg := DefaultConfig()
	cfg.Harden = harden.Options{Lockstep: true, SweepEvery: 64, WatchdogAfter: 20000}
	return cfg
}

// TestHardenedRunClean: a healthy machine must pass lockstep, sweeps,
// and the watchdog on every register file organization — no false
// positives.
func TestHardenedRunClean(t *testing.T) {
	for _, spec := range []struct {
		name  string
		model regfile.Model
	}{
		{"content-aware", carfModel()},
		{"baseline", regfile.Baseline()},
		{"unlimited", regfile.Unlimited()},
	} {
		k, err := workload.ByName("hashprobe", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := NewChecked(hardenedConfig(), k.Prog, spec.model)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		st, err := cpu.Run()
		if err != nil {
			t.Fatalf("%s: hardened run failed: %v", spec.name, err)
		}
		if got := cpu.mach.X[workload.ResultReg]; got != k.Expected {
			t.Errorf("%s: result %#x, want %#x", spec.name, got, k.Expected)
		}
		if st.Instructions == 0 {
			t.Errorf("%s: no instructions committed", spec.name)
		}
	}
}

// TestWatchdogConvertsDeadlock: with the Long file too small and the
// forced-spill escape hatch disabled, write-back sticks in Recovery
// State forever; the watchdog must convert the hang into a structured
// DeadlockError carrying a diagnostic bundle.
func TestWatchdogConvertsDeadlock(t *testing.T) {
	p := core.DefaultParams()
	p.NumLong = 2
	k, err := workload.ByName("crc64", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DeadlockSpillAfter = 1 << 30 // never spill: the hang is permanent
	cfg.Harden = harden.Options{WatchdogAfter: 2000}
	cpu, err := NewChecked(cfg, k.Prog, core.New(p))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cpu.Run()
	var dead *harden.DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("got %v, want a DeadlockError", err)
	}
	if dead.StalledFor < 2000 {
		t.Errorf("reported stall of %d cycles, watchdog limit is 2000", dead.StalledFor)
	}
	if dead.Bundle == nil {
		t.Fatal("deadlock error carries no diagnostic bundle")
	}
	if fm := dead.Bundle.Format(); !strings.Contains(fm, "recovery_stalls") {
		t.Errorf("bundle lacks recovery-stall statistics:\n%s", fm)
	}
}

// TestForcedSpillUnderPseudoDeadlock: with a 2-entry Long file and an
// aggressive spill threshold, forced spills must fire — and the full
// hardening layer must agree that the architectural results still match
// the golden model exactly.
func TestForcedSpillUnderPseudoDeadlock(t *testing.T) {
	p := core.DefaultParams()
	p.NumLong = 2
	k, err := workload.ByName("crc64", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hardenedConfig()
	cfg.DeadlockSpillAfter = 3
	model := core.New(p)
	cpu, err := NewChecked(cfg, k.Prog, model)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cpu.Run()
	if err != nil {
		t.Fatalf("hardened run with forced spills failed: %v", err)
	}
	if st.ForcedSpills == 0 {
		t.Fatal("a 2-entry long file with spill-after-3 never forced a spill")
	}
	// The VM golden model run standalone must agree with the pipeline's
	// final architectural state, spills and all.
	golden := goldenRun(t, k)
	for r, want := range golden {
		if got := cpu.mach.X[r]; got != want {
			t.Errorf("x%d = %#x after forced spills, golden model has %#x", r, got, want)
		}
	}
	if got := cpu.mach.X[workload.ResultReg]; got != k.Expected {
		t.Errorf("result %#x, want %#x", got, k.Expected)
	}
}

// TestScheduledFaultIsDetected: a corrupted Short group must be caught
// by one of the checkers, with a bounded detection latency.
func TestScheduledFaultIsDetected(t *testing.T) {
	k, err := workload.ByName("hashprobe", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewChecked(hardenedConfig(), k.Prog, carfModel())
	if err != nil {
		t.Fatal(err)
	}
	cpu.ScheduleFault(harden.Fault{Class: harden.FaultShortBit, Cycle: 2000, Seed: 1})
	_, err = cpu.Run()
	if err == nil {
		t.Fatal("short-file corruption went undetected")
	}
	var div *harden.DivergenceError
	var inv *harden.InvariantError
	if !errors.As(err, &div) && !errors.As(err, &inv) {
		t.Fatalf("detected by an unexpected path: %v", err)
	}
	outs := cpu.Injections()
	if len(outs) != 1 || !outs[0].Injected {
		t.Fatalf("injection bookkeeping: %+v", outs)
	}
}

// TestUninjectableFaultStaysPending: conventional files do not implement
// the injector; the fault must stay pending, not crash or vanish.
func TestUninjectableFaultStaysPending(t *testing.T) {
	k, err := workload.ByName("qsort", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewChecked(hardenedConfig(), k.Prog, regfile.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	cpu.ScheduleFault(harden.Fault{Class: harden.FaultSimpleBit, Cycle: 100, Seed: 1})
	if _, err := cpu.Run(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	outs := cpu.Injections()
	if len(outs) != 1 || outs[0].Injected {
		t.Fatalf("fault against a conventional file should stay uninjected: %+v", outs)
	}
}

func TestNewCheckedRejects(t *testing.T) {
	k, err := workload.ByName("qsort", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.FetchWidth = 0
	if _, err := NewChecked(bad, k.Prog, carfModel()); err == nil {
		t.Error("zero FetchWidth accepted")
	}
	if _, err := NewChecked(DefaultConfig(), nil, carfModel()); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := NewChecked(DefaultConfig(), k.Prog, nil); err == nil {
		t.Error("nil model accepted")
	}
	small := regfile.NewConventional("tiny", 16, 8, 6)
	if _, err := NewChecked(DefaultConfig(), k.Prog, small); err == nil {
		t.Error("model smaller than the architectural register count accepted")
	}
	if _, err := NewChecked(DefaultConfig(), k.Prog, carfModel()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"zero ROB", mut(func(c *Config) { c.ROBSize = 0 })},
		{"negative front latency", mut(func(c *Config) { c.FrontLatency = -1 })},
		{"FP file too small", mut(func(c *Config) { c.NumFPRegs = 32 })},
		{"three clusters", mut(func(c *Config) { c.Clusters = 3 })},
		{"zero cache ways", mut(func(c *Config) { c.Hierarchy.L1D.Ways = 0 })},
		{"negative spill threshold", mut(func(c *Config) { c.DeadlockSpillAfter = -1 })},
	}
	for _, tc := range bad {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The stress-test configurations must stay valid.
	ok := mut(func(c *Config) { c.BTBEntries = 1; c.RASDepth = 1; c.NumFPRegs = 40 })
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal stress config rejected: %v", err)
	}
}

// goldenRun executes the kernel on the raw VM and returns the final
// integer register file.
func goldenRun(t *testing.T, k workload.Kernel) [isa.NumRegs]uint64 {
	t.Helper()
	m := vm.New(k.Prog)
	if _, err := m.Run(0); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return m.X
}
