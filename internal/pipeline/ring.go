package pipeline

// instQueue is a growable power-of-two ring buffer of in-flight
// instructions. The cycle loop's structural queues (front, ROB, LSQ)
// push at the tail and pop at the head every cycle; a slice-backed
// queue would either shift on every pop (`q = q[1:]` leaks the prefix
// and re-allocates on wrap) or compact on every delete (O(n) per
// commit). The ring makes all of those O(1) and allocation-free in
// steady state: the buffer grows at most a few times at warm-up and is
// then reused for the rest of the run.
//
// Slots behind the head are left dirty on pop — every *dynInst is owned
// by the CPU's pool, which keeps it reachable regardless, and skipping
// the clearing store keeps PopFront to two integer writes.
type instQueue struct {
	buf  []*dynInst // len(buf) is a power of two; index mask is len-1
	head int        // position of the oldest element
	n    int        // live elements
}

// initQueue sizes the buffer for capacity elements (rounded up to a
// power of two) so steady-state operation never grows.
func (q *instQueue) initQueue(capacity int) {
	size := 1
	for size < capacity {
		size <<= 1
	}
	q.buf = make([]*dynInst, size)
	q.head = 0
	q.n = 0
}

// Len returns the number of queued instructions.
func (q *instQueue) Len() int { return q.n }

// Front returns the oldest instruction; the caller checks Len first.
func (q *instQueue) Front() *dynInst { return q.buf[q.head] }

// At returns the i-th oldest instruction, 0 <= i < Len.
func (q *instQueue) At(i int) *dynInst {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// Back returns the youngest instruction; the caller checks Len first.
func (q *instQueue) Back() *dynInst {
	return q.buf[(q.head+q.n-1)&(len(q.buf)-1)]
}

// PushBack appends in as the youngest instruction.
func (q *instQueue) PushBack(in *dynInst) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = in
	q.n++
}

// PopFront removes and returns the oldest instruction.
func (q *instQueue) PopFront() *dynInst {
	in := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return in
}

// PopBack removes and returns the youngest instruction (squash path).
func (q *instQueue) PopBack() *dynInst {
	q.n--
	return q.buf[(q.head+q.n)&(len(q.buf)-1)]
}

// RemoveAt deletes the i-th oldest element, preserving order. It shifts
// the shorter side of the ring; the queues this backs only need it on
// defensive fallback paths (ordered pops cover the steady state).
func (q *instQueue) RemoveAt(i int) {
	mask := len(q.buf) - 1
	if i <= q.n-1-i {
		// Shift the front half forward.
		for j := i; j > 0; j-- {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j-1)&mask]
		}
		q.head = (q.head + 1) & mask
	} else {
		// Shift the back half backward.
		for j := i; j < q.n-1; j++ {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
		}
	}
	q.n--
}

// grow doubles the buffer, unrolling the ring into index order.
func (q *instQueue) grow() {
	old := q.buf
	size := len(old) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*dynInst, size)
	mask := len(old) - 1
	for i := 0; i < q.n; i++ {
		buf[i] = old[(q.head+i)&mask]
	}
	q.buf = buf
	q.head = 0
}

// ---------- dynInst pool ----------

// newDyn hands out a zeroed dynInst, recycling pooled ones. Fetch calls
// it once per instruction; without the pool that is one heap allocation
// (plus eventual GC scan work) per simulated instruction, the single
// largest cost in the cycle loop.
func (c *CPU) newDyn() *dynInst {
	if n := len(c.pool); n > 0 {
		in := c.pool[n-1]
		c.pool = c.pool[:n-1]
		return in
	}
	return new(dynInst)
}

// freeDyn returns an instruction to the pool once no structure can
// reach it: at commit (after the ROB pop, LSQ retirement, trace and
// lockstep hooks), and at squash for both renamed phantoms (removed
// from the ROB after the issue queues and LSQ drop them) and phantoms
// still waiting in the front queue. The instruction is zeroed here so
// every pool entry is indistinguishable from a fresh allocation.
func (c *CPU) freeDyn(in *dynInst) {
	*in = dynInst{}
	c.pool = append(c.pool, in)
}
