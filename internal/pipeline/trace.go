package pipeline

import (
	"fmt"
	"strings"

	"carf/internal/isa"
)

// TraceEvent records one committed instruction's journey through the
// pipeline (cycle numbers per stage). Events are emitted in commit
// order, which is program order.
type TraceEvent struct {
	Seq  uint64
	PC   uint64
	Inst isa.Inst

	Fetch    int64
	Rename   int64
	Issue    int64
	ExecDone int64
	WBDone   int64
	Commit   int64

	Mispredicted bool
}

// Tracer receives commit-time trace events.
type Tracer interface {
	Trace(TraceEvent)
}

// SetTracer installs a commit-order pipeline tracer.
func (c *CPU) SetTracer(t Tracer) { c.tracer = t }

// TraceBuffer is a Tracer that retains up to Cap events (0 = unbounded).
// Events arriving after the buffer is full are counted in Dropped, never
// lost silently.
type TraceBuffer struct {
	Cap     int
	Events  []TraceEvent
	Dropped uint64
}

// Trace implements Tracer.
func (b *TraceBuffer) Trace(ev TraceEvent) {
	if b.Cap > 0 && len(b.Events) >= b.Cap {
		b.Dropped++
		return
	}
	b.Events = append(b.Events, ev)
}

// Format renders the retained events as a pipeview table and, when the
// buffer overflowed, reports how many events were dropped.
func (b *TraceBuffer) Format() string {
	out := FormatTrace(b.Events)
	if b.Dropped > 0 {
		out += fmt.Sprintf("... %d events dropped (buffer cap %d reached)\n", b.Dropped, b.Cap)
	}
	return out
}

// FormatTrace renders events as a pipeview table.
func FormatTrace(events []TraceEvent) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-10s %-28s %7s %7s %7s %7s %7s %7s\n",
		"seq", "pc", "instruction", "fetch", "rename", "issue", "exec", "wb", "commit")
	for _, ev := range events {
		mark := ""
		if ev.Mispredicted {
			mark = " !mispredict"
		}
		fmt.Fprintf(&sb, "%-6d %#-10x %-28s %7d %7d %7d %7d %7d %7d%s\n",
			ev.Seq, ev.PC, ev.Inst.String(),
			ev.Fetch, ev.Rename, ev.Issue, ev.ExecDone, ev.WBDone, ev.Commit, mark)
	}
	return sb.String()
}
