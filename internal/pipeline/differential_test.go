package pipeline

import (
	"math/rand"
	"testing"

	"carf/internal/core"
	"carf/internal/isa"
	"carf/internal/regfile"
	"carf/internal/vm"
	"carf/internal/workload"
)

// genProgram builds a random but architecturally well-formed program:
// straight-line blocks of ALU/memory traffic linked by bounded countdown
// loops, over a scratch heap region. The generator never reads
// uninitialized FP state into control flow, never writes x0, and always
// terminates.
func genProgram(seed int64, blocks int) *vm.Program {
	r := rand.New(rand.NewSource(seed))
	b := workload.NewBuilder("fuzz")
	scratch := uint64(workload.HeapBase)
	b.La(1, scratch)
	b.Li(2, int64(r.Uint64()>>32))
	b.Li(3, int64(r.Uint64()>>40))
	b.Fcvtdl(1, 2)
	b.Fcvtdl(2, 3)

	// Registers x4..x20 hold random-but-defined values.
	for rreg := 4; rreg <= 20; rreg++ {
		b.Li(isa.Reg(rreg), int64(r.Uint64()>>uint(r.Intn(48))))
	}

	aluOps := []func(rd, a, c isa.Reg){
		b.Add, b.Sub, b.And, b.Or, b.Xor, b.Mul, b.Slt, b.Sltu,
	}
	fpOps := []func(rd, a, c isa.Reg){b.Fadd, b.Fsub, b.Fmul, b.Fmin, b.Fmax}

	for blk := 0; blk < blocks; blk++ {
		label := "blk" + string(rune('a'+blk%26)) + string(rune('a'+blk/26))
		iters := 2 + r.Intn(6)
		b.Li(21, int64(iters))
		b.Label(label)
		for n := 0; n < 4+r.Intn(10); n++ {
			rd := isa.Reg(4 + r.Intn(17))
			a := isa.Reg(4 + r.Intn(17))
			c := isa.Reg(4 + r.Intn(17))
			switch r.Intn(10) {
			case 0: // store to scratch
				off := int64(r.Intn(64) * 8)
				b.St(a, 1, off)
			case 1: // load from scratch
				off := int64(r.Intn(64) * 8)
				b.Ld(rd, 1, off)
			case 2: // shift by bounded immediate
				b.Slli(rd, a, int64(r.Intn(32)))
			case 3:
				b.Srli(rd, a, int64(r.Intn(32)))
			case 4: // immediate ALU
				b.Addi(rd, a, int64(r.Intn(1<<12)-1<<11))
			case 5: // FP traffic (independent of control flow)
				f1 := isa.Reg(1 + r.Intn(6))
				f2 := isa.Reg(1 + r.Intn(6))
				f3 := isa.Reg(1 + r.Intn(6))
				fpOps[r.Intn(len(fpOps))](f1, f2, f3)
			case 6: // fp<->int moves keep both files busy
				b.Fmvxd(rd, isa.Reg(1+r.Intn(6)))
			default:
				aluOps[r.Intn(len(aluOps))](rd, a, c)
			}
		}
		b.Addi(21, 21, -1)
		b.Bnez(21, label)
	}
	// Fold the register state into x28.
	b.Li(28, 0)
	for rreg := 4; rreg <= 20; rreg++ {
		b.Xor(28, 28, isa.Reg(rreg))
	}
	b.Halt()
	return b.MustBuild()
}

// TestDifferentialRandomPrograms runs random programs on the golden VM
// and on the pipeline with every register file organization; the
// architectural results must agree exactly, and the content-aware
// reconstruction check must stay clean.
func TestDifferentialRandomPrograms(t *testing.T) {
	models := []func() regfile.Model{
		func() regfile.Model { return regfile.Baseline() },
		func() regfile.Model { return regfile.Unlimited() },
		func() regfile.Model { return core.New(core.DefaultParams()) },
		func() regfile.Model {
			p := core.DefaultParams()
			p.CAMShort = true
			return core.New(p)
		},
		func() regfile.Model {
			p := core.DefaultParams()
			p.NumLong = 6 // savage long pressure: recovery + spills
			return core.New(p)
		},
		func() regfile.Model {
			p := core.DefaultParams()
			p.ShortFree = core.FreeRefCount
			return core.New(p)
		},
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		prog := genProgram(seed, 6)
		ref := vm.New(prog)
		if _, err := ref.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: vm: %v", seed, err)
		}
		if !ref.Halted {
			t.Fatalf("seed %d: vm did not halt", seed)
		}
		for mi, mk := range models {
			cpu := New(DefaultConfig(), prog, mk())
			st, err := cpu.Run()
			if err != nil {
				t.Fatalf("seed %d model %d: %v", seed, mi, err)
			}
			if st.ValueMismatches != 0 {
				t.Errorf("seed %d model %d: %d reconstruction mismatches", seed, mi, st.ValueMismatches)
			}
			for rreg := 0; rreg < isa.NumRegs; rreg++ {
				if cpu.mach.X[rreg] != ref.X[rreg] {
					t.Fatalf("seed %d model %d: x%d = %#x, vm has %#x",
						seed, mi, rreg, cpu.mach.X[rreg], ref.X[rreg])
				}
				if cpu.mach.F[rreg] != ref.F[rreg] {
					t.Fatalf("seed %d model %d: f%d differs", seed, mi, rreg)
				}
			}
		}
	}
}

// TestSMTBothThreadsCorrect runs the two-thread machine on kernel pairs
// and verifies both architectural results plus basic fairness.
func TestSMTBothThreadsCorrect(t *testing.T) {
	pairs := [][2]string{{"histo", "crc64"}, {"qsort", "saxpy"}}
	for _, pair := range pairs {
		ka, err := workload.ByName(pair[0], 0.05)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := workload.ByName(pair[1], 0.05)
		if err != nil {
			t.Fatal(err)
		}
		model := core.New(core.DefaultParams())
		smt := NewSMT(DefaultConfig(), [2]*vm.Program{ka.Prog, kb.Prog}, model)
		sts, err := smt.Run()
		if err != nil {
			t.Fatalf("%v: %v", pair, err)
		}
		for i, k := range []workload.Kernel{ka, kb} {
			if got := smt.Thread(i).Machine().X[workload.ResultReg]; got != k.Expected {
				t.Errorf("%v thread %d (%s): result %#x, want %#x", pair, i, k.Name, got, k.Expected)
			}
			if sts[i].ValueMismatches != 0 {
				t.Errorf("%v thread %d: %d reconstruction mismatches", pair, i, sts[i].ValueMismatches)
			}
			if sts[i].IPC() <= 0 {
				t.Errorf("%v thread %d: IPC %.3f", pair, i, sts[i].IPC())
			}
		}
		if smt.Cycles() == 0 {
			t.Error("SMT cycle counter idle")
		}
	}
}

// TestSMTPolicies: both priority policies must preserve architectural
// results; under a small shared Long file, the long-aware policy should
// not be slower than round-robin on a long-heavy pairing.
func TestSMTPolicies(t *testing.T) {
	ka, err := workload.ByName("crc64", 0.08)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := workload.ByName("hashprobe", 0.08)
	if err != nil {
		t.Fatal(err)
	}
	results := map[SMTPolicy]float64{}
	for _, pol := range []SMTPolicy{PolicyRoundRobin, PolicyLongAware} {
		p := core.DefaultParams()
		p.NumLong = 24
		model := core.New(p)
		smt := NewSMT(DefaultConfig(), [2]*vm.Program{ka.Prog, kb.Prog}, model)
		smt.SetPolicy(pol)
		sts, err := smt.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for i, k := range []workload.Kernel{ka, kb} {
			if got := smt.Thread(i).Machine().X[workload.ResultReg]; got != k.Expected {
				t.Errorf("%s thread %d: result %#x, want %#x", pol, i, got, k.Expected)
			}
		}
		results[pol] = sts[0].IPC() + sts[1].IPC()
	}
	if results[PolicyLongAware] < 0.85*results[PolicyRoundRobin] {
		t.Errorf("long-aware policy collapsed throughput: %.3f vs %.3f",
			results[PolicyLongAware], results[PolicyRoundRobin])
	}
	if PolicyRoundRobin.String() != "round-robin" || PolicyLongAware.String() != "long-aware" {
		t.Error("policy names")
	}
}
