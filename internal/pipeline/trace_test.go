package pipeline

import (
	"strings"
	"testing"

	"carf/internal/core"
	"carf/internal/regfile"
	"carf/internal/workload"
)

// TestTraceInvariants commits a full kernel under tracing and checks the
// pipeline-order invariants that must hold for every single instruction
// on every organization:
//
//	fetch ≤ rename < issue, issue < execDone, execDone ≤ wbDone < commit,
//	commits in program order with nondecreasing commit cycles.
func TestTraceInvariants(t *testing.T) {
	for _, model := range []regfile.Model{regfile.Baseline(), core.New(core.DefaultParams())} {
		model := model
		t.Run(model.Name(), func(t *testing.T) {
			k, err := workload.ByName("treeinsert", 0.05)
			if err != nil {
				t.Fatal(err)
			}
			cpu := New(DefaultConfig(), k.Prog, model)
			buf := &TraceBuffer{}
			cpu.SetTracer(buf)
			if _, err := cpu.Run(); err != nil {
				t.Fatal(err)
			}
			if len(buf.Events) == 0 {
				t.Fatal("no trace events")
			}
			readStages := int64(model.ReadStages())
			var prev TraceEvent
			for i, ev := range buf.Events {
				if ev.Fetch > ev.Rename {
					t.Fatalf("seq %d: rename %d before fetch %d", ev.Seq, ev.Rename, ev.Fetch)
				}
				if ev.Rename > ev.Issue {
					t.Fatalf("seq %d: issue %d before rename %d", ev.Seq, ev.Issue, ev.Rename)
				}
				if ev.ExecDone < ev.Issue+readStages+1 {
					t.Fatalf("seq %d: exec %d too early for issue %d (read stages %d)",
						ev.Seq, ev.ExecDone, ev.Issue, readStages)
				}
				if ev.WBDone < ev.ExecDone {
					t.Fatalf("seq %d: wb %d before exec %d", ev.Seq, ev.WBDone, ev.ExecDone)
				}
				if ev.Commit <= ev.WBDone {
					t.Fatalf("seq %d: commit %d not after wb %d", ev.Seq, ev.Commit, ev.WBDone)
				}
				if i > 0 {
					if ev.Seq != prev.Seq+1 {
						t.Fatalf("commit order broke: seq %d after %d", ev.Seq, prev.Seq)
					}
					if ev.Commit < prev.Commit {
						t.Fatalf("commit cycles went backwards: %d after %d", ev.Commit, prev.Commit)
					}
				}
				prev = ev
			}
		})
	}
}

func TestTraceBufferCap(t *testing.T) {
	k, err := workload.ByName("histo", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	buf := &TraceBuffer{Cap: 10}
	cpu.SetTracer(buf)
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Events) != 10 {
		t.Errorf("buffer holds %d events, want 10", len(buf.Events))
	}
	if want := st.Instructions - 10; buf.Dropped != want {
		t.Errorf("dropped = %d, want %d (no silent event loss)", buf.Dropped, want)
	}
	out := buf.Format()
	if !strings.Contains(out, "events dropped") {
		t.Errorf("Format does not report dropped events:\n%s", out)
	}
}

func TestTraceBufferUnboundedNeverDrops(t *testing.T) {
	k, err := workload.ByName("histo", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	buf := &TraceBuffer{}
	cpu.SetTracer(buf)
	st, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if buf.Dropped != 0 || uint64(len(buf.Events)) != st.Instructions {
		t.Errorf("unbounded buffer: %d events, %d dropped, want %d events, 0 dropped",
			len(buf.Events), buf.Dropped, st.Instructions)
	}
	if out := buf.Format(); strings.Contains(out, "events dropped") {
		t.Error("Format reports drops for an unbounded buffer")
	}
}

func TestFormatTrace(t *testing.T) {
	k, err := workload.ByName("crc64", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	buf := &TraceBuffer{Cap: 5}
	cpu.SetTracer(buf)
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	out := FormatTrace(buf.Events)
	if !strings.Contains(out, "commit") || !strings.Contains(out, "limm") {
		t.Errorf("trace output missing expected content:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 6 {
		t.Errorf("trace lines = %d, want header + 5", got)
	}
}
