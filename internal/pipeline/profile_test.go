package pipeline

import (
	"testing"

	"carf/internal/core"
	"carf/internal/profile"
	"carf/internal/regfile"
	"carf/internal/workload"
)

// runProfiled simulates kernel name on model with the profiler attached
// and cross-checks the profile against the run's own statistics.
func runProfiled(t *testing.T, name string, model regfile.Model, cfg Config) (Stats, *profile.Profiler) {
	t.Helper()
	k, err := workload.ByName(name, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(cfg, k.Prog, model)
	prof := cpu.InstallProfiler()
	st, err := cpu.Run()
	if err != nil {
		t.Fatalf("%s on %s: %v", name, model.Name(), err)
	}
	return st, prof
}

// TestProfilerSlotIdentity asserts the acceptance-criteria conservation
// law: the CPI-stack categories sum to exactly cycles × commit width,
// and the stack's cycle count matches the pipeline's.
func TestProfilerSlotIdentity(t *testing.T) {
	for _, name := range []string{"histo", "qsort", "hashprobe"} {
		for _, mk := range []struct {
			org   string
			model func() regfile.Model
		}{
			{"baseline", func() regfile.Model { return regfile.Baseline() }},
			{"content-aware", carfModel},
		} {
			st, prof := runProfiled(t, name, mk.model(), DefaultConfig())
			if err := prof.Stack.CheckIdentity(); err != nil {
				t.Errorf("%s/%s: %v", name, mk.org, err)
			}
			if prof.Stack.Cycles != st.Cycles {
				t.Errorf("%s/%s: stack counted %d cycles, pipeline %d",
					name, mk.org, prof.Stack.Cycles, st.Cycles)
			}
			if prof.Stack.Width != DefaultConfig().CommitWidth {
				t.Errorf("%s/%s: stack width %d", name, mk.org, prof.Stack.Width)
			}
			// The final halting cycle commits but is not counted (the
			// pipeline returns before now++), so the stack's useful
			// slots may trail total instructions by at most one commit
			// group.
			if got := prof.Stack.Instructions(); got > st.Instructions ||
				got+uint64(prof.Stack.Width) < st.Instructions {
				t.Errorf("%s/%s: stack saw %d committed slots, run committed %d",
					name, mk.org, got, st.Instructions)
			}
		}
	}
}

// TestProfilerPerPCReconciles cross-checks the per-PC aggregates
// against the pipeline's global counters.
func TestProfilerPerPCReconciles(t *testing.T) {
	st, prof := runProfiled(t, "qsort", regfile.Baseline(), DefaultConfig())
	tot := prof.PCs.Totals()
	if tot.Committed != st.Instructions {
		t.Errorf("per-PC commits %d, pipeline %d", tot.Committed, st.Instructions)
	}
	want := st.Mispredicts + st.IndirectResolve
	if tot.Mispredicts != want {
		t.Errorf("per-PC mispredicts %d, pipeline %d+%d", tot.Mispredicts, st.Mispredicts, st.IndirectResolve)
	}
	if tot.Committed == 0 || tot.Mispredicts == 0 {
		t.Fatalf("degenerate run: %+v", tot)
	}
	// Every instruction in the top list must have really committed.
	for _, s := range prof.PCs.Top(10) {
		if s.Committed == 0 {
			t.Errorf("inactive pc %#x in Top", s.PC)
		}
	}
}

// TestProfilerDataMissAttribution ties the per-PC data-miss counts to
// the cache hierarchy's own L1D miss counter. Without wrong-path mode
// every data access carries a real PC, so the counts match exactly.
func TestProfilerDataMissAttribution(t *testing.T) {
	k, err := workload.ByName("listchase", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, regfile.Baseline())
	prof := cpu.InstallProfiler()
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	tot := prof.PCs.Totals()
	l1d := cpu.Hierarchy().L1D.Stats()
	if got := tot.L2Misses + tot.MemMisses; got != l1d.Misses {
		t.Errorf("per-PC data misses %d, L1D counted %d", got, l1d.Misses)
	}
	if tot.L2Misses+tot.MemMisses == 0 {
		t.Fatal("listchase produced no data misses")
	}
}

// TestProfilerWriteAttribution checks that the content-aware file's
// write outcomes land in the per-PC profile: every class observed by
// the profiler is bounded by the model's own per-class totals (the
// architectural-setup writes in New predate the profiler).
func TestProfilerWriteAttribution(t *testing.T) {
	model := core.New(core.DefaultParams())
	k, err := workload.ByName("hashprobe", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(DefaultConfig(), k.Prog, model)
	prof := cpu.InstallProfiler()
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	tot := prof.PCs.Totals()
	var seen uint64
	for typ := regfile.TypeSimple; typ <= regfile.TypeLong; typ++ {
		n := tot.Writes[typ]
		seen += n
		if max := model.Stats().WritesByType[typ]; n > max {
			t.Errorf("profiled %d %s writes, model performed only %d", n, typ, max)
		}
	}
	if seen == 0 {
		t.Fatal("no register writes attributed")
	}
	if tot.Writes[regfile.TypeNone] != 0 {
		t.Errorf("content-aware run attributed %d unclassified writes", tot.Writes[regfile.TypeNone])
	}
}

// TestProfilerRegisterFilePressure forces Long-file pressure with a
// small K and checks the stack charges register-file categories.
func TestProfilerRegisterFilePressure(t *testing.T) {
	p := core.DefaultParams()
	p.NumLong = 16
	model := core.New(p)
	st, prof := runProfiled(t, "hashprobe", model, DefaultConfig())
	if err := prof.Stack.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	if st.LongStallCycles == 0 && st.RecoveryStallCycles == 0 {
		t.Skip("K=16 produced no register file pressure at this scale")
	}
	if prof.Stack.RFStallSlots() == 0 {
		t.Errorf("pipeline reported %d long-stall and %d recovery-stall cycles but the stack charged no RF slots",
			st.LongStallCycles, st.RecoveryStallCycles)
	}
}

// TestProfilerOffUnchanged guards the opt-in contract: two identical
// runs, one profiled and one not, retire the same instruction count in
// the same number of cycles.
func TestProfilerOffUnchanged(t *testing.T) {
	k, err := workload.ByName("crc64", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	plain := New(DefaultConfig(), k.Prog, carfModel())
	stPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	profiled := New(DefaultConfig(), k.Prog, carfModel())
	profiled.InstallProfiler()
	stProf, err := profiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.Cycles != stProf.Cycles || stPlain.Instructions != stProf.Instructions {
		t.Errorf("profiling changed timing: %d/%d cycles, %d/%d instructions",
			stPlain.Cycles, stProf.Cycles, stPlain.Instructions, stProf.Instructions)
	}
}

// TestProfilerWithWrongPath keeps the identity under wrong-path
// speculation, where phantom fetch and squashes stress the blame paths.
func TestProfilerWithWrongPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WrongPath = true
	st, prof := runProfiled(t, "qsort", carfModel(), cfg)
	if err := prof.Stack.CheckIdentity(); err != nil {
		t.Fatal(err)
	}
	if prof.Stack.Cycles != st.Cycles {
		t.Errorf("stack counted %d cycles, pipeline %d", prof.Stack.Cycles, st.Cycles)
	}
	// Phantoms never commit, so per-PC commits still reconcile.
	if tot := prof.PCs.Totals(); tot.Committed != st.Instructions {
		t.Errorf("per-PC commits %d, pipeline %d", tot.Committed, st.Instructions)
	}
}
