package pipeline

import (
	"reflect"
	"testing"

	"carf/internal/core"
	"carf/internal/regfile"
	"carf/internal/workload"
)

// TestRunChunkMatchesRun pins the resumable-execution contract: slicing
// a simulation into RunChunk calls of any size, then Finalize, must
// reproduce every statistic of a single Run call bit-for-bit. The
// batched lockstep executor depends on this.
func TestRunChunkMatchesRun(t *testing.T) {
	models := map[string]func() regfile.Model{
		"baseline": func() regfile.Model { return regfile.Baseline() },
		"carf":     func() regfile.Model { return core.New(core.DefaultParams()) },
	}
	for _, kernel := range []string{"histo", "qsort"} {
		k, err := workload.ByName(kernel, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for mname, mk := range models {
			ref := New(DefaultConfig(), k.Prog, mk())
			want, err := ref.Run()
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", kernel, mname, err)
			}
			for _, chunk := range []int64{1, 7, 4096} {
				cpu := New(DefaultConfig(), k.Prog, mk())
				steps := 0
				for {
					done, err := cpu.RunChunk(chunk)
					if err != nil {
						t.Fatalf("%s/%s chunk %d: RunChunk: %v", kernel, mname, chunk, err)
					}
					if done {
						break
					}
					if steps++; steps > 10_000_000 {
						t.Fatalf("%s/%s chunk %d: no termination", kernel, mname, chunk)
					}
				}
				got, err := cpu.Finalize()
				if err != nil {
					t.Fatalf("%s/%s chunk %d: Finalize: %v", kernel, mname, chunk, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s chunk %d: stats diverge\n got: %+v\nwant: %+v",
						kernel, mname, chunk, got, want)
				}
				if got := cpu.Machine().X[workload.ResultReg]; got != k.Expected {
					t.Errorf("%s/%s chunk %d: result %#x, want %#x", kernel, mname, chunk, got, k.Expected)
				}
			}
		}
	}
}
