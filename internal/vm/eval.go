package vm

import (
	"math"

	"carf/internal/isa"
)

// Eval computes the destination value of a register-writing instruction
// from its source operand raw values (integer values, or IEEE-754 bits
// for FP operands), without touching any machine state. It exists so the
// pipeline can produce values for speculatively-fetched wrong-path
// instructions, which must never execute against the architectural
// machine. ok is false for loads, stores, control transfers, and
// instructions without a register result — the caller models those
// separately.
//
// TestEvalMatchesExecute cross-checks every covered opcode against
// Machine.Execute on random operands.
func Eval(inst isa.Inst, a, b uint64) (value uint64, ok bool) {
	fa, fb := f64(a), f64(b)
	switch inst.Op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.SLL:
		return a << (b & 63), true
	case isa.SRL:
		return a >> (b & 63), true
	case isa.SRA:
		return uint64(int64(a) >> (b & 63)), true
	case isa.SLT:
		return b2u(int64(a) < int64(b)), true
	case isa.SLTU:
		return b2u(a < b), true
	case isa.MUL:
		return a * b, true
	case isa.MULHU:
		hi, _ := mul64(a, b)
		return hi, true
	case isa.DIV:
		return divs(a, b), true
	case isa.REM:
		return rems(a, b), true

	case isa.ADDI:
		return a + uint64(inst.Imm), true
	case isa.ANDI:
		return a & uint64(inst.Imm), true
	case isa.ORI:
		return a | uint64(inst.Imm), true
	case isa.XORI:
		return a ^ uint64(inst.Imm), true
	case isa.SLLI:
		return a << (uint64(inst.Imm) & 63), true
	case isa.SRLI:
		return a >> (uint64(inst.Imm) & 63), true
	case isa.SRAI:
		return uint64(int64(a) >> (uint64(inst.Imm) & 63)), true
	case isa.SLTI:
		return b2u(int64(a) < inst.Imm), true
	case isa.SLTIU:
		return b2u(a < uint64(inst.Imm)), true
	case isa.LIMM:
		return uint64(inst.Imm), true

	case isa.FADD:
		return bits(fa + fb), true
	case isa.FSUB:
		return bits(fa - fb), true
	case isa.FMUL:
		return bits(fa * fb), true
	case isa.FDIV:
		return bits(fa / fb), true
	case isa.FSQRT:
		return bits(math.Sqrt(fa)), true
	case isa.FABS:
		return bits(math.Abs(fa)), true
	case isa.FNEG:
		return bits(-fa), true
	case isa.FMIN:
		return bits(math.Min(fa, fb)), true
	case isa.FMAX:
		return bits(math.Max(fa, fb)), true
	case isa.FCVTDL:
		return bits(float64(int64(a))), true
	case isa.FCVTLD:
		return uint64(toInt64(fa)), true
	case isa.FEQ:
		return b2u(fa == fb), true
	case isa.FLT:
		return b2u(fa < fb), true
	case isa.FLE:
		return b2u(fa <= fb), true
	case isa.FMVXD:
		return a, true
	case isa.FMVDX:
		return a, true
	}
	// FMADD reads its destination; loads, stores, control transfers,
	// NOP, and HALT have no pure register result.
	return 0, false
}
