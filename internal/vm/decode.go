package vm

import "carf/internal/isa"

// Predecoded superblock cache. NewProgram classifies every instruction
// once into a decOp — an execution category plus the handful of facts
// (encoded size, memory access width, sign extension) that Execute's
// switch re-derives on every step. Machine.Step then dispatches on the
// category through stepDecoded, which reuses Eval for all arithmetic so
// the decoded path and Execute share one source of semantic truth.
// Programs are immutable once built, so the cache is never invalidated.
//
// The same pass computes runEnd: for each instruction index, the index
// of the next superblock terminator (control transfer, HALT, or
// undecodable op) at or after it. Straight-line runs between terminators
// are the superblocks; Machine.Span exposes the remaining run length so
// callers (Machine.Run, the pipeline fetch stage) can replay a whole
// span without per-instruction control checks or PC→index lookups.
//
// TestDecodedMatchesExecute cross-checks stepDecoded against Execute for
// every opcode on random state; the golden differential suites gate the
// pipeline end-to-end.
type decOp struct {
	cat  uint8
	size uint8 // encoded instruction bytes (8, or 16 for LIMM)
	ms   uint8 // memory access size in bytes (loads/stores)
	sx   bool  // sign-extend the loaded value
}

const (
	// decCtl marks superblock terminators: control transfers, HALT, and
	// anything the decoded path does not handle. Step falls back to the
	// generic Execute switch for these.
	decCtl uint8 = iota
	decNOP
	decIntOp   // integer sources → integer destination, via Eval
	decIntOpFP // FP-register sources → integer destination, via Eval
	decFPOp    // FP-register sources → FP destination, via Eval
	decFPOpInt // integer source → FP destination, via Eval
	decFMADD   // reads its own destination; not expressible through Eval
	decLoad
	decLoadFP
	decStore
	decStoreFP
)

// classify builds the decOp for one instruction. Unknown opcodes get
// decCtl so they reach Execute's default case and its error.
func classify(inst isa.Inst) decOp {
	d := decOp{size: uint8(inst.Size())}
	switch inst.Op {
	case isa.NOP:
		d.cat = decNOP
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL,
		isa.SRA, isa.SLT, isa.SLTU, isa.MUL, isa.MULHU, isa.DIV, isa.REM,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI,
		isa.SRAI, isa.SLTI, isa.SLTIU, isa.LIMM:
		d.cat = decIntOp
	case isa.FCVTLD, isa.FEQ, isa.FLT, isa.FLE, isa.FMVXD:
		d.cat = decIntOpFP
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FSQRT, isa.FABS,
		isa.FNEG, isa.FMIN, isa.FMAX:
		d.cat = decFPOp
	case isa.FCVTDL, isa.FMVDX:
		d.cat = decFPOpInt
	case isa.FMADD:
		d.cat = decFMADD
	case isa.LD:
		d.cat, d.ms = decLoad, 8
	case isa.LW:
		d.cat, d.ms, d.sx = decLoad, 4, true
	case isa.LWU:
		d.cat, d.ms = decLoad, 4
	case isa.LB:
		d.cat, d.ms, d.sx = decLoad, 1, true
	case isa.LBU:
		d.cat, d.ms = decLoad, 1
	case isa.FLD:
		d.cat, d.ms = decLoadFP, 8
	case isa.ST:
		d.cat, d.ms = decStore, 8
	case isa.SW:
		d.cat, d.ms = decStore, 4
	case isa.SB:
		d.cat, d.ms = decStore, 1
	case isa.FSD:
		d.cat, d.ms = decStoreFP, 8
	default:
		d.cat = decCtl
	}
	return d
}

// predecode fills p.dec and p.runEnd. Called once from NewProgram.
func (p *Program) predecode() {
	n := len(p.Code)
	p.dec = make([]decOp, n)
	p.runEnd = make([]int32, n)
	end := int32(n)
	for i := n - 1; i >= 0; i-- {
		p.dec[i] = classify(p.Code[i])
		if p.dec[i].cat == decCtl {
			end = int32(i)
		}
		p.runEnd[i] = end
	}
}

// stepDecoded executes the predecoded instruction at index i. The caller
// guarantees d.cat != decCtl, so no error is possible: the instruction
// is a known, non-control op. Semantics mirror Execute exactly,
// including the x0-destination convention (the Effect still records
// RdClass/Rd/RdValue with the value forced to zero, WritesReg false).
func (m *Machine) stepDecoded(d *decOp, inst isa.Inst) Effect {
	next := m.PC + uint64(d.size)
	eff := Effect{NextPC: next}

	switch d.cat {
	case decNOP:
	case decIntOp:
		v, _ := Eval(inst, m.X[inst.Rs1], m.X[inst.Rs2])
		m.setIntEff(&eff, inst.Rd, v)
	case decIntOpFP:
		v, _ := Eval(inst, m.F[inst.Rs1], m.F[inst.Rs2])
		m.setIntEff(&eff, inst.Rd, v)
	case decFPOp:
		v, _ := Eval(inst, m.F[inst.Rs1], m.F[inst.Rs2])
		m.setFPEff(&eff, inst.Rd, v)
	case decFPOpInt:
		v, _ := Eval(inst, m.X[inst.Rs1], m.X[inst.Rs2])
		m.setFPEff(&eff, inst.Rd, v)
	case decFMADD:
		v := bits(f64(m.F[inst.Rd]) + f64(m.F[inst.Rs1])*f64(m.F[inst.Rs2]))
		m.setFPEff(&eff, inst.Rd, v)
	case decLoad:
		addr := m.X[inst.Rs1] + uint64(inst.Imm)
		v := m.Mem.Read(addr, int(d.ms))
		if d.sx {
			shift := uint(64 - 8*int(d.ms))
			v = uint64(int64(v<<shift) >> shift)
		}
		eff.Mem, eff.Addr, eff.Size = true, addr, int(d.ms)
		m.setIntEff(&eff, inst.Rd, v)
	case decLoadFP:
		addr := m.X[inst.Rs1] + uint64(inst.Imm)
		v := m.Mem.Read(addr, int(d.ms))
		eff.Mem, eff.Addr, eff.Size = true, addr, int(d.ms)
		m.setFPEff(&eff, inst.Rd, v)
	case decStore:
		addr := m.X[inst.Rs1] + uint64(inst.Imm)
		val := m.X[inst.Rs2]
		m.Mem.Write(addr, int(d.ms), val)
		eff.Mem, eff.Store, eff.Addr, eff.Size, eff.StoreVal = true, true, addr, int(d.ms), val
	case decStoreFP:
		addr := m.X[inst.Rs1] + uint64(inst.Imm)
		val := m.F[inst.Rs2]
		m.Mem.Write(addr, int(d.ms), val)
		eff.Mem, eff.Store, eff.Addr, eff.Size, eff.StoreVal = true, true, addr, int(d.ms), val
	}

	m.PC = next
	m.InstCount++
	return eff
}

// setIntEff is Execute's setInt closure, hoisted: x0 destinations force
// the recorded value to zero and never touch X (X[0] stays zero by
// construction, so the decoded path needs no trailing X[0] reset).
func (m *Machine) setIntEff(eff *Effect, r isa.Reg, v uint64) {
	if r == isa.Zero {
		v = 0
	} else {
		m.X[r] = v
	}
	eff.WritesReg = r != isa.Zero
	eff.RdClass = isa.RegInt
	eff.Rd = r
	eff.RdValue = v
}

// setFPEff is Execute's setFP closure, hoisted (F[0] is a real register).
func (m *Machine) setFPEff(eff *Effect, r isa.Reg, v uint64) {
	m.F[r] = v
	eff.WritesReg = true
	eff.RdClass = isa.RegFP
	eff.Rd = r
	eff.RdValue = v
}
