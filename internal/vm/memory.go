// Package vm implements the R64 architectural machine: a sparse 64-bit
// byte-addressed memory and the functional semantics of every opcode. It
// is the golden model the pipeline's timing simulation executes against,
// and it is usable on its own for trace generation and testing.
package vm

import "encoding/binary"

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is a sparse, paged, little-endian 64-bit address space. The zero
// value is an empty memory ready to use; reads of unmapped addresses
// return zero without allocating.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

func (m *Memory) page(addr uint64, allocate bool) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && allocate {
		if m.pages == nil {
			m.pages = make(map[uint64]*[pageSize]byte)
		}
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns size bytes starting at addr as a little-endian,
// zero-extended value. size must be 1, 2, 4, or 8. Accesses may be
// unaligned and may span pages.
func (m *Memory) Read(addr uint64, size int) uint64 {
	if p := m.page(addr, false); p != nil && addr&pageMask+uint64(size) <= pageSize {
		off := addr & pageMask
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 1:
			return uint64(p[off])
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.LoadByte(addr+uint64(i)))
	}
	return v
}

// Write stores the low size bytes of val at addr, little-endian. size
// must be 1, 2, 4, or 8.
func (m *Memory) Write(addr uint64, size int, val uint64) {
	if addr&pageMask+uint64(size) <= pageSize {
		p := m.page(addr, true)
		off := addr & pageMask
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
			return
		case 1:
			p[off] = byte(val)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.StoreByte(addr+uint64(i), c)
	}
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// MappedPages returns the number of resident pages (for tests and memory
// footprint reporting).
func (m *Memory) MappedPages() int { return len(m.pages) }
