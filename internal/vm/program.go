package vm

import (
	"fmt"

	"carf/internal/isa"
)

// Program is an executable R64 image: a list of instructions laid out
// contiguously from Base, plus initial data segments. Programs are
// immutable once built; the same Program can back any number of Machines
// or pipeline simulations.
type Program struct {
	Name string
	Base uint64 // address of the first instruction
	Code []isa.Inst

	// Data segments copied into memory before execution.
	Data []Segment

	// InitRegs seeds integer architectural registers before execution
	// (e.g. the stack pointer). Keys are register numbers.
	InitRegs map[isa.Reg]uint64

	offsets []uint64 // offsets[i] = byte offset of Code[i] from Base
	size    uint64   // total code bytes

	// denseIdx maps a byte offset from Base to the instruction index
	// starting there, or -1 for non-boundary offsets. One array load
	// replaces the map lookup the fetch stage would otherwise pay per
	// instruction; code images are a few KB, so the table stays small.
	denseIdx []int32

	// Predecoded superblock cache (see decode.go). dec[i] is the decoded
	// form of Code[i]; runEnd[i] is the index of the first superblock
	// terminator (control transfer, HALT, undecodable op) at or after i.
	// Built once in NewProgram; programs are immutable, so never
	// invalidated.
	dec    []decOp
	runEnd []int32
}

// Segment is an initialized span of data memory.
type Segment struct {
	Addr  uint64
	Bytes []byte
}

// NewProgram finalizes a program: it computes instruction addresses and
// the dense address→index table used by instruction fetch.
func NewProgram(name string, base uint64, code []isa.Inst, data []Segment, initRegs map[isa.Reg]uint64) *Program {
	p := &Program{
		Name:     name,
		Base:     base,
		Code:     code,
		Data:     data,
		InitRegs: initRegs,
		offsets:  make([]uint64, len(code)),
	}
	var off uint64
	for i, inst := range code {
		p.offsets[i] = off
		off += uint64(inst.Size())
	}
	p.size = off
	p.denseIdx = make([]int32, off)
	for i := range p.denseIdx {
		p.denseIdx[i] = -1
	}
	for i := range code {
		p.denseIdx[p.offsets[i]] = int32(i)
	}
	p.predecode()
	return p
}

// StraightLen returns the number of consecutive decoded straight-line
// instructions starting at index i — zero when Code[i] itself terminates
// a superblock. It is zero for indexes outside the predecoded range
// (programs constructed without NewProgram have no cache).
func (p *Program) StraightLen(i int) int {
	if i < 0 || i >= len(p.runEnd) {
		return 0
	}
	return int(p.runEnd[i]) - i
}

// Entry returns the address of the first instruction.
func (p *Program) Entry() uint64 { return p.Base }

// CodeSize returns the total encoded code size in bytes.
func (p *Program) CodeSize() uint64 { return p.size }

// AddrOf returns the address of instruction index i.
func (p *Program) AddrOf(i int) uint64 { return p.Base + p.offsets[i] }

// At returns the instruction at address addr. ok is false when addr is
// not the start of an instruction.
func (p *Program) At(addr uint64) (inst isa.Inst, ok bool) {
	i := p.IndexOf(addr)
	if i < 0 {
		return isa.Inst{}, false
	}
	return p.Code[i], true
}

// IndexOf returns the instruction index at address addr, or -1. It is
// O(1): one bounds check and one dense-table load (addresses below Base
// wrap to huge offsets and fail the bounds check).
func (p *Program) IndexOf(addr uint64) int {
	off := addr - p.Base
	if off >= p.size {
		return -1
	}
	return int(p.denseIdx[off])
}

// Validate checks that every control-transfer target lands on an
// instruction boundary inside the program. JALR targets are dynamic and
// cannot be checked statically.
func (p *Program) Validate() error {
	for i, inst := range p.Code {
		if !inst.Op.IsBranch() && inst.Op != isa.JAL {
			continue
		}
		next := p.AddrOf(i) + uint64(inst.Size())
		target := next + uint64(inst.Imm)
		if p.IndexOf(target) < 0 {
			return fmt.Errorf("program %s: instruction %d (%s) targets %#x, not an instruction boundary",
				p.Name, i, inst, target)
		}
	}
	return nil
}

// LoadInto copies the program's data segments into mem.
func (p *Program) LoadInto(mem *Memory) {
	for _, seg := range p.Data {
		mem.StoreBytes(seg.Addr, seg.Bytes)
	}
}
