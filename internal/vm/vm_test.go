package vm

import (
	"math"
	"testing"
	"testing/quick"

	"carf/internal/isa"
)

func TestMemoryReadWrite(t *testing.T) {
	var m Memory
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Fatalf("read back %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Errorf("low word %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Errorf("high word %#x", got)
	}
	if got := m.Read(0x1003, 1); got != 0x55 {
		t.Errorf("byte 3 %#x", got)
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	var m Memory
	if got := m.Read(0xdeadbeef000, 8); got != 0 {
		t.Errorf("unmapped read = %#x, want 0", got)
	}
	if m.MappedPages() != 0 {
		t.Errorf("read allocated %d pages", m.MappedPages())
	}
}

func TestMemoryCrossPage(t *testing.T) {
	var m Memory
	addr := uint64(pageSize - 3) // spans a page boundary
	m.Write(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Read(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Fatalf("cross-page read back %#x", got)
	}
	if m.MappedPages() != 2 {
		t.Errorf("expected 2 pages, got %d", m.MappedPages())
	}
}

// Property: read-after-write returns the written value (masked to size)
// at arbitrary addresses and sizes.
func TestMemoryReadAfterWriteProperty(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	f := func(addr uint64, val uint64, sizeIdx uint8) bool {
		var m Memory
		size := sizes[int(sizeIdx)%len(sizes)]
		addr &= 1<<40 - 1 // keep the page map small
		m.Write(addr, size, val)
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// buildAndRun assembles a tiny program, runs it to HALT, and returns the
// machine for inspection.
func buildAndRun(t *testing.T, code []isa.Inst) *Machine {
	t.Helper()
	code = append(code, isa.Inst{Op: isa.HALT})
	prog := NewProgram("t", 0x4000, code, nil, nil)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m
}

func li(rd isa.Reg, v int64) isa.Inst { return isa.Inst{Op: isa.LIMM, Rd: rd, Imm: v} }

func TestIntALUOps(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want uint64
	}{
		{isa.ADD, 5, 7, 12},
		{isa.SUB, 5, 7, ^uint64(1)},
		{isa.AND, 0b1100, 0b1010, 0b1000},
		{isa.OR, 0b1100, 0b1010, 0b1110},
		{isa.XOR, 0b1100, 0b1010, 0b0110},
		{isa.SLL, 1, 12, 4096},
		{isa.SRL, -8, 1, ^uint64(7) >> 1},
		{isa.SRA, -8, 1, ^uint64(3)},
		{isa.SLT, -1, 0, 1},
		{isa.SLT, 1, 0, 0},
		{isa.SLTU, 1, 0, 0},
		{isa.SLTU, 0, 1, 1},
		{isa.MUL, -3, 7, ^uint64(20)},
		{isa.DIV, -21, 7, ^uint64(2)},
		{isa.DIV, 21, 0, ^uint64(0)},
		{isa.REM, -22, 7, ^uint64(0)},
		{isa.REM, 22, 0, 22},
		{isa.DIV, math.MinInt64, -1, 1 << 63},
		{isa.REM, math.MinInt64, -1, 0},
	}
	for _, c := range cases {
		m := buildAndRun(t, []isa.Inst{
			li(1, c.a),
			li(2, c.b),
			{Op: c.op, Rd: 3, Rs1: 1, Rs2: 2},
		})
		if m.X[3] != c.want {
			t.Errorf("%s %d,%d = %#x, want %#x", c.op, c.a, c.b, m.X[3], c.want)
		}
	}
}

func TestMULHU(t *testing.T) {
	m := buildAndRun(t, []isa.Inst{
		li(1, -1), // 0xffff...
		li(2, -1),
		{Op: isa.MULHU, Rd: 3, Rs1: 1, Rs2: 2},
	})
	if m.X[3] != ^uint64(0)-1 { // (2^64-1)^2 >> 64 = 2^64-2
		t.Errorf("mulhu = %#x, want %#x", m.X[3], ^uint64(0)-1)
	}
}

func TestImmediateOps(t *testing.T) {
	m := buildAndRun(t, []isa.Inst{
		li(1, 100),
		{Op: isa.ADDI, Rd: 2, Rs1: 1, Imm: -30},
		{Op: isa.ANDI, Rd: 3, Rs1: 1, Imm: 0x6c},
		{Op: isa.ORI, Rd: 4, Rs1: 1, Imm: 3},
		{Op: isa.XORI, Rd: 5, Rs1: 1, Imm: 0xff},
		{Op: isa.SLLI, Rd: 6, Rs1: 1, Imm: 4},
		{Op: isa.SRLI, Rd: 7, Rs1: 1, Imm: 2},
		{Op: isa.SRAI, Rd: 8, Rs1: 1, Imm: 2},
		{Op: isa.SLTI, Rd: 9, Rs1: 1, Imm: 200},
		{Op: isa.SLTIU, Rd: 10, Rs1: 1, Imm: 5},
	})
	want := map[isa.Reg]uint64{
		2: 70, 3: 100 & 0x6c, 4: 100 | 3, 5: 100 ^ 0xff,
		6: 1600, 7: 25, 8: 25, 9: 1, 10: 0,
	}
	for r, w := range want {
		if m.X[r] != w {
			t.Errorf("x%d = %d, want %d", r, m.X[r], w)
		}
	}
}

func TestZeroRegisterStaysZero(t *testing.T) {
	m := buildAndRun(t, []isa.Inst{
		li(1, 55),
		{Op: isa.ADD, Rd: 0, Rs1: 1, Rs2: 1},
		{Op: isa.ADD, Rd: 2, Rs1: 0, Rs2: 1},
	})
	if m.X[0] != 0 {
		t.Errorf("x0 = %d", m.X[0])
	}
	if m.X[2] != 55 {
		t.Errorf("x2 = %d, want 55", m.X[2])
	}
}

func TestLoadsAndStores(t *testing.T) {
	m := buildAndRun(t, []isa.Inst{
		li(1, 0x2000),
		li(2, -2), // 0xfffffffffffffffe
		{Op: isa.ST, Rs1: 1, Rs2: 2, Imm: 0},
		{Op: isa.LD, Rd: 3, Rs1: 1, Imm: 0},
		{Op: isa.LW, Rd: 4, Rs1: 1, Imm: 0},
		{Op: isa.LWU, Rd: 5, Rs1: 1, Imm: 0},
		{Op: isa.LB, Rd: 6, Rs1: 1, Imm: 0},
		{Op: isa.LBU, Rd: 7, Rs1: 1, Imm: 0},
		{Op: isa.SW, Rs1: 1, Rs2: 2, Imm: 16},
		{Op: isa.LD, Rd: 8, Rs1: 1, Imm: 16},
		{Op: isa.SB, Rs1: 1, Rs2: 2, Imm: 32},
		{Op: isa.LD, Rd: 9, Rs1: 1, Imm: 32},
	})
	checks := map[isa.Reg]uint64{
		3: ^uint64(1),
		4: ^uint64(1), // sign-extended
		5: 0xfffffffe,
		6: ^uint64(1),
		7: 0xfe,
		8: 0xfffffffe,
		9: 0xfe,
	}
	for r, w := range checks {
		if m.X[r] != w {
			t.Errorf("x%d = %#x, want %#x", r, m.X[r], w)
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// sum = 0; for i = 0; i != 10; i++ { sum += i }
	loopBody := []isa.Inst{
		li(1, 0),                                // i
		li(2, 0),                                // sum
		li(3, 10),                               // limit
		{Op: isa.ADD, Rd: 2, Rs1: 2, Rs2: 1},    // sum += i
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},   // i++
		{Op: isa.BNE, Rs1: 1, Rs2: 3, Imm: -24}, // back to sum += i
	}
	m := buildAndRun(t, loopBody)
	if m.X[2] != 45 {
		t.Errorf("sum = %d, want 45", m.X[2])
	}
}

func TestJALAndJALR(t *testing.T) {
	// call a function that doubles x1; return; halt.
	code := []isa.Inst{
		li(1, 21),
		{Op: isa.JAL, Rd: 31, Imm: 8},          // call: skip the halt
		{Op: isa.HALT},                         // return lands here
		{Op: isa.ADD, Rd: 1, Rs1: 1, Rs2: 1},   // function body
		{Op: isa.JALR, Rd: 0, Rs1: 31, Imm: 0}, // return
	}
	prog := NewProgram("t", 0x4000, code, nil, nil)
	m := New(prog)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("did not halt")
	}
	if m.X[1] != 42 {
		t.Errorf("x1 = %d, want 42", m.X[1])
	}
	if m.X[31] == 0 {
		t.Error("link register not written")
	}
}

func TestFPOps(t *testing.T) {
	fbits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	m := buildAndRun(t, []isa.Inst{
		li(1, fbits(3.5)),
		li(2, fbits(-2.0)),
		{Op: isa.FMVDX, Rd: 1, Rs1: 1},
		{Op: isa.FMVDX, Rd: 2, Rs1: 2},
		{Op: isa.FADD, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.FSUB, Rd: 4, Rs1: 1, Rs2: 2},
		{Op: isa.FMUL, Rd: 5, Rs1: 1, Rs2: 2},
		{Op: isa.FDIV, Rd: 6, Rs1: 1, Rs2: 2},
		{Op: isa.FABS, Rd: 7, Rs1: 2},
		{Op: isa.FNEG, Rd: 8, Rs1: 1},
		{Op: isa.FMIN, Rd: 9, Rs1: 1, Rs2: 2},
		{Op: isa.FMAX, Rd: 10, Rs1: 1, Rs2: 2},
		{Op: isa.FLT, Rd: 11, Rs1: 2, Rs2: 1},
		{Op: isa.FLE, Rd: 12, Rs1: 1, Rs2: 1},
		{Op: isa.FEQ, Rd: 13, Rs1: 1, Rs2: 2},
	})
	fp := func(r isa.Reg) float64 { return math.Float64frombits(m.F[r]) }
	if fp(3) != 1.5 || fp(4) != 5.5 || fp(5) != -7.0 || fp(6) != -1.75 {
		t.Errorf("arith: %v %v %v %v", fp(3), fp(4), fp(5), fp(6))
	}
	if fp(7) != 2.0 || fp(8) != -3.5 || fp(9) != -2.0 || fp(10) != 3.5 {
		t.Errorf("unary/minmax: %v %v %v %v", fp(7), fp(8), fp(9), fp(10))
	}
	if m.X[11] != 1 || m.X[12] != 1 || m.X[13] != 0 {
		t.Errorf("compares: %d %d %d", m.X[11], m.X[12], m.X[13])
	}
}

func TestFPConversionsAndMem(t *testing.T) {
	m := buildAndRun(t, []isa.Inst{
		li(1, -9),
		{Op: isa.FCVTDL, Rd: 1, Rs1: 1}, // f1 = -9.0
		{Op: isa.FCVTLD, Rd: 2, Rs1: 1}, // x2 = -9
		li(3, 0x3000),
		{Op: isa.FSD, Rs1: 3, Rs2: 1, Imm: 0},
		{Op: isa.FLD, Rd: 4, Rs1: 3, Imm: 0},
		{Op: isa.FMVXD, Rd: 5, Rs1: 4},
	})
	if int64(m.X[2]) != -9 {
		t.Errorf("fcvt.l.d = %d", int64(m.X[2]))
	}
	if m.X[5] != math.Float64bits(-9.0) {
		t.Errorf("fp round trip through memory = %#x", m.X[5])
	}
	m2 := buildAndRun(t, []isa.Inst{
		li(1, 2),
		{Op: isa.FCVTDL, Rd: 1, Rs1: 1},
		{Op: isa.FSQRT, Rd: 2, Rs1: 1},
		{Op: isa.FCVTDL, Rd: 3, Rs1: 1},        // f3 = 2.0
		{Op: isa.FMADD, Rd: 3, Rs1: 2, Rs2: 2}, // f3 += sqrt2*sqrt2
		{Op: isa.FCVTLD, Rd: 4, Rs1: 3},
	})
	if got := int64(m2.X[4]); got != 4 {
		t.Errorf("2 + sqrt2^2 truncated = %d, want 4", got)
	}
}

func TestFCVTLDEdgeCases(t *testing.T) {
	if toInt64(math.NaN()) != 0 {
		t.Error("NaN should convert to 0")
	}
	if toInt64(math.Inf(1)) != math.MaxInt64 {
		t.Error("+inf should saturate")
	}
	if toInt64(math.Inf(-1)) != math.MinInt64 {
		t.Error("-inf should saturate")
	}
	if toInt64(-3.99) != -3 {
		t.Error("conversion should truncate toward zero")
	}
}

func TestProgramValidateCatchesBadTarget(t *testing.T) {
	code := []isa.Inst{
		{Op: isa.BEQ, Rs1: 0, Rs2: 0, Imm: 3}, // lands mid-instruction
		{Op: isa.HALT},
	}
	prog := NewProgram("bad", 0x4000, code, nil, nil)
	if err := prog.Validate(); err == nil {
		t.Error("expected validation error for misaligned branch target")
	}
}

func TestProgramDataSegments(t *testing.T) {
	prog := NewProgram("d", 0x4000,
		[]isa.Inst{
			li(1, 0x9000),
			{Op: isa.LD, Rd: 2, Rs1: 1, Imm: 0},
			{Op: isa.HALT},
		},
		[]Segment{{Addr: 0x9000, Bytes: []byte{1, 2, 3, 4, 5, 6, 7, 8}}},
		nil)
	m := New(prog)
	if _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.X[2] != 0x0807060504030201 {
		t.Errorf("x2 = %#x", m.X[2])
	}
}

func TestProgramInitRegs(t *testing.T) {
	prog := NewProgram("r", 0x4000,
		[]isa.Inst{{Op: isa.HALT}},
		nil, map[isa.Reg]uint64{29: 0x7fff0000, 0: 99})
	m := New(prog)
	if m.X[29] != 0x7fff0000 {
		t.Errorf("init reg x29 = %#x", m.X[29])
	}
	if m.X[0] != 0 {
		t.Error("x0 must not be seeded")
	}
}

func TestRunLimit(t *testing.T) {
	// Infinite loop: JAL back to itself.
	code := []isa.Inst{{Op: isa.JAL, Rd: 0, Imm: -8}}
	prog := NewProgram("loop", 0x4000, code, nil, nil)
	m := New(prog)
	n, err := m.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("ran %d instructions, want 500", n)
	}
	if m.Halted {
		t.Error("should not have halted")
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := buildAndRun(t, nil)
	if _, _, err := m.Step(); err == nil {
		t.Error("step after halt should error")
	}
}

func TestEffectReporting(t *testing.T) {
	prog := NewProgram("e", 0x4000, []isa.Inst{
		li(1, 0x2000),
		li(2, 77),
		{Op: isa.ST, Rs1: 1, Rs2: 2, Imm: 8},
		{Op: isa.LD, Rd: 3, Rs1: 1, Imm: 8},
		{Op: isa.BEQ, Rs1: 2, Rs2: 3, Imm: 0},
		{Op: isa.HALT},
	}, nil, nil)
	m := New(prog)

	_, eff, _ := m.Step() // limm
	if !eff.WritesReg || eff.Rd != 1 || eff.RdValue != 0x2000 {
		t.Errorf("limm effect: %+v", eff)
	}
	m.Step()
	_, eff, _ = m.Step() // st
	if !eff.Mem || !eff.Store || eff.Addr != 0x2008 || eff.StoreVal != 77 || eff.Size != 8 {
		t.Errorf("store effect: %+v", eff)
	}
	_, eff, _ = m.Step() // ld
	if !eff.Mem || eff.Store || eff.Addr != 0x2008 || eff.RdValue != 77 {
		t.Errorf("load effect: %+v", eff)
	}
	_, eff, _ = m.Step() // beq (taken, offset 0 → falls through to next)
	if !eff.Branch || !eff.Taken {
		t.Errorf("branch effect: %+v", eff)
	}
	_, eff, _ = m.Step() // halt
	if !eff.Halt {
		t.Errorf("halt effect: %+v", eff)
	}
}

// TestEvalMatchesExecute cross-checks the pure evaluator against the
// architectural machine for every opcode it covers, on random operands.
func TestEvalMatchesExecute(t *testing.T) {
	rng := uint64(0xABCD)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	prog := NewProgram("eval", 0x4000, []isa.Inst{{Op: isa.HALT}}, nil, nil)
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		for trial := 0; trial < 50; trial++ {
			a, b := next(), next()
			inst := isa.Inst{Op: op, Rd: 3, Rs1: 1, Rs2: 2}
			if op.HasImm() {
				inst.Imm = int64(a>>30) - (1 << 33)
			}
			got, ok := Eval(inst, a, b)
			if op.IsMem() || op.IsControl() || op == isa.NOP || op == isa.HALT || op == isa.FMADD {
				if ok {
					t.Fatalf("%s: Eval claimed to cover an uncovered opcode", op)
				}
				break
			}
			if !ok {
				t.Fatalf("%s: Eval does not cover a register-writing ALU/FP opcode", op)
			}
			m := New(prog)
			m.X[1], m.X[2] = a, b
			m.F[1], m.F[2] = a, b
			eff, err := m.Execute(inst)
			if err != nil {
				t.Fatalf("%s: %v", op, err)
			}
			if !eff.WritesReg {
				t.Fatalf("%s: machine wrote no register", op)
			}
			if got != eff.RdValue {
				// NaN payloads may differ legally only if we computed
				// differently — require exact equality.
				t.Fatalf("%s(a=%#x, b=%#x, imm=%d): Eval %#x, Execute %#x",
					op, a, b, inst.Imm, got, eff.RdValue)
			}
		}
	}
}
