package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"carf/internal/isa"
)

// randState seeds two machines with identical random register and memory
// state. Addresses computed by memory ops land in a seeded window so
// loads observe non-zero data.
func randState(rng *rand.Rand) (*Machine, *Machine) {
	prog := NewProgram("rand", 0x4000, []isa.Inst{{Op: isa.HALT}}, nil, nil)
	a, b := New(prog), New(prog)
	for r := 1; r < isa.NumRegs; r++ {
		// Small values keep rs1+imm inside the seeded memory window for
		// some ops while still exercising full-width arithmetic on others.
		var v uint64
		if rng.Intn(2) == 0 {
			v = uint64(rng.Intn(1 << 12))
		} else {
			v = rng.Uint64()
		}
		a.X[r], b.X[r] = v, v
	}
	for r := 0; r < isa.NumRegs; r++ {
		v := rng.Uint64()
		a.F[r], b.F[r] = v, v
	}
	for addr := uint64(0); addr < 1<<13; addr += 8 {
		v := rng.Uint64()
		a.Mem.Write(addr, 8, v)
		b.Mem.Write(addr, 8, v)
	}
	return a, b
}

// TestDecodedMatchesExecute cross-checks stepDecoded against Execute for
// every opcode on random state: identical Effect, identical register
// file, PC, InstCount, and memory. It also pins the classification
// boundary: only control transfers, HALT, and invalid opcodes may fall
// back to the generic path.
func TestDecodedMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for opi := 0; opi < isa.NumOps; opi++ {
		op := isa.Op(opi)
		d := classify(isa.Inst{Op: op})
		wantGeneric := !op.Valid() || op.IsControl() || op == isa.HALT
		if (d.cat == decCtl) != wantGeneric {
			t.Errorf("%v: classified cat=%d, want generic=%v", op, d.cat, wantGeneric)
		}
		if d.cat == decCtl {
			continue
		}
		for trial := 0; trial < 64; trial++ {
			inst := isa.Inst{
				Op:  op,
				Rd:  isa.Reg(rng.Intn(isa.NumRegs)),
				Rs1: isa.Reg(rng.Intn(isa.NumRegs)),
				Rs2: isa.Reg(rng.Intn(isa.NumRegs)),
				Imm: int64(rng.Intn(1<<11)) - 1<<10,
			}
			ma, mb := randState(rng)
			dd := classify(inst)
			if dd.cat != d.cat {
				t.Fatalf("%v: classification depends on operands", op)
			}
			effA, err := ma.Execute(inst)
			if err != nil {
				t.Fatalf("%v: Execute: %v", op, err)
			}
			effB := mb.stepDecoded(&dd, inst)
			if effA != effB {
				t.Fatalf("%v %v: effect mismatch\nexecute: %+v\ndecoded: %+v", op, inst, effA, effB)
			}
			if ma.X != mb.X {
				t.Fatalf("%v %v: integer register mismatch", op, inst)
			}
			if ma.F != mb.F {
				t.Fatalf("%v %v: FP register mismatch", op, inst)
			}
			if ma.PC != mb.PC || ma.InstCount != mb.InstCount || ma.Halted != mb.Halted {
				t.Fatalf("%v %v: control state mismatch", op, inst)
			}
			if effA.Store {
				if got, want := mb.Mem.Read(effA.Addr, effA.Size), ma.Mem.Read(effA.Addr, effA.Size); got != want {
					t.Fatalf("%v %v: memory mismatch at %#x: %#x != %#x", op, inst, effA.Addr, got, want)
				}
			}
		}
	}
}

// refStep executes one instruction the pre-superblock way: dense index
// lookup plus the generic Execute switch. It is the reference the
// decoded fast path is differenced against.
func refStep(m *Machine) (isa.Inst, Effect, error) {
	i := m.Prog.IndexOf(m.PC)
	if i < 0 {
		return isa.Inst{}, Effect{}, fmt.Errorf("refStep: PC %#x not an instruction", m.PC)
	}
	inst := m.Prog.Code[i]
	eff, err := m.Execute(inst)
	return inst, eff, err
}

// branchy builds a program mixing straight-line runs, taken and
// not-taken branches, calls, memory traffic, and FP work, so Step's
// decoded fast path and the superblock replay in Run both get exercised
// against the reference executor over thousands of dynamic instructions.
func branchy() *Program {
	code := []isa.Inst{
		{Op: isa.LIMM, Rd: 1, Imm: 0},      // i = 0
		{Op: isa.LIMM, Rd: 2, Imm: 200},    // n
		{Op: isa.LIMM, Rd: 3, Imm: 0x8000}, // buf
		{Op: isa.LIMM, Rd: 4, Imm: 0},      // acc
		// loop:
		{Op: isa.SLLI, Rd: 5, Rs1: 1, Imm: 3},
		{Op: isa.ADD, Rd: 5, Rs1: 3, Rs2: 5},
		{Op: isa.MUL, Rd: 6, Rs1: 1, Rs2: 1},
		{Op: isa.ST, Rs1: 5, Rs2: 6},
		{Op: isa.LD, Rd: 7, Rs1: 5},
		{Op: isa.ADD, Rd: 4, Rs1: 4, Rs2: 7},
		{Op: isa.ANDI, Rd: 8, Rs1: 1, Imm: 3},
		{Op: isa.BNE, Rs1: 8, Rs2: 0, Imm: 3 * 8}, // skip FP block 3/4 of the time
		{Op: isa.FCVTDL, Rd: 9, Rs1: 4},
		{Op: isa.FMUL, Rd: 10, Rs1: 9, Rs2: 9},
		{Op: isa.FMADD, Rd: 11, Rs1: 10, Rs2: 9},
		// join:
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},
		{Op: isa.BLT, Rs1: 1, Rs2: 2, Imm: -13 * 8}, // back to loop
		{Op: isa.FCVTLD, Rd: 12, Rs1: 11},
		{Op: isa.HALT},
	}
	return NewProgram("branchy", 0x4000, code, nil, nil)
}

func TestStepMatchesReferenceOnBranchyProgram(t *testing.T) {
	prog := branchy()
	fast, ref := New(prog), New(prog)
	for steps := 0; !ref.Halted; steps++ {
		if steps > 100000 {
			t.Fatal("runaway program")
		}
		wi, we, werr := refStep(ref)
		gi, ge, gerr := fast.Step()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("step %d: err %v vs %v", steps, werr, gerr)
		}
		if wi != gi || we != ge {
			t.Fatalf("step %d: inst/effect mismatch\nref:  %v %+v\nfast: %v %+v", steps, wi, we, gi, ge)
		}
	}
	if !fast.Halted || fast.PC != ref.PC || fast.InstCount != ref.InstCount || fast.X != ref.X || fast.F != ref.F {
		t.Fatal("final state mismatch")
	}
}

func TestRunMatchesStepLoop(t *testing.T) {
	for _, limit := range []uint64{0, 1, 7, 100, 1000} {
		run, ref := New(branchy()), New(branchy())
		n, err := run.Run(limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		var rn uint64
		for !ref.Halted && (limit == 0 || rn < limit) {
			if _, _, err := ref.Step(); err != nil {
				t.Fatalf("limit %d: ref step: %v", limit, err)
			}
			rn++
		}
		if n != rn {
			t.Fatalf("limit %d: executed %d, ref %d", limit, n, rn)
		}
		if run.PC != ref.PC || run.InstCount != ref.InstCount || run.X != ref.X || run.F != ref.F || run.Halted != ref.Halted {
			t.Fatalf("limit %d: state mismatch", limit)
		}
	}
}

// TestSpanLicense pins the Span/StepStraight contract: a span of k
// permits exactly k unchecked steps, matching k checked Steps.
func TestSpanLicense(t *testing.T) {
	a, b := New(branchy()), New(branchy())
	for !b.Halted {
		span := a.Span()
		if span > 0 {
			for k := 0; k < span; k++ {
				ai, ae := a.StepStraight()
				bi, be, err := b.Step()
				if err != nil {
					t.Fatalf("ref step inside span: %v", err)
				}
				if ai != bi || ae != be {
					t.Fatalf("straight step mismatch at pc %#x", bi.Imm)
				}
			}
			continue
		}
		if _, _, err := a.Step(); err != nil {
			t.Fatalf("terminator step: %v", err)
		}
		if _, _, err := b.Step(); err != nil {
			t.Fatalf("ref terminator step: %v", err)
		}
	}
	if !a.Halted || a.X != b.X || a.PC != b.PC {
		t.Fatal("final state mismatch")
	}
}

// TestSpanZeroCases: halted machines, control instructions, and invalid
// PCs all yield a zero span.
func TestSpanZeroCases(t *testing.T) {
	prog := NewProgram("z", 0x4000, []isa.Inst{
		{Op: isa.JAL, Imm: -8},
		{Op: isa.HALT},
	}, nil, nil)
	m := New(prog)
	if got := m.Span(); got != 0 {
		t.Errorf("span at JAL = %d, want 0", got)
	}
	m.PC = 0x1234
	if got := m.Span(); got != 0 {
		t.Errorf("span at bad PC = %d, want 0", got)
	}
	m.PC = prog.Entry()
	m.Halted = true
	if got := m.Span(); got != 0 {
		t.Errorf("span when halted = %d, want 0", got)
	}
}

func TestStraightLenRuns(t *testing.T) {
	prog := branchy()
	if got := prog.StraightLen(0); got != 11 {
		t.Errorf("StraightLen(0) = %d, want 11 (run ends at BNE)", got)
	}
	if got := prog.StraightLen(11); got != 0 {
		t.Errorf("StraightLen(BNE) = %d, want 0", got)
	}
	if got := prog.StraightLen(12); got != 4 {
		t.Errorf("StraightLen(12) = %d, want 4 (FP block + join to BLT)", got)
	}
	if got := prog.StraightLen(len(prog.Code)); got != 0 {
		t.Errorf("StraightLen(out of range) = %d, want 0", got)
	}
	bare := &Program{Name: "bare"}
	if got := bare.StraightLen(0); got != 0 {
		t.Errorf("StraightLen on unpredecoded program = %d, want 0", got)
	}
}
