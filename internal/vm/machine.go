package vm

import (
	"fmt"
	"math"
	mathbits "math/bits"

	"carf/internal/isa"
)

// Machine is the architectural state of one R64 hardware thread plus its
// memory. Step executes one instruction at PC; Execute applies the
// semantics of an arbitrary instruction (used by the pipeline, which
// executes functionally in program order at dispatch).
type Machine struct {
	X   [isa.NumRegs]uint64 // integer registers; X[0] reads as zero
	F   [isa.NumRegs]uint64 // floating-point registers, raw IEEE-754 bits
	PC  uint64
	Mem *Memory

	Prog      *Program
	Halted    bool
	InstCount uint64

	// nextIdx is the sequential-fetch hint: the index the next Step is
	// expected to execute (the instruction after the last one, in layout
	// order). Straight-line code hits the hint and skips even the dense
	// table lookup; taken branches miss and fall back to IndexOf.
	nextIdx int
}

// New creates a machine loaded with prog: memory holds the data segments,
// PC is at the entry point, and initial registers are seeded.
func New(prog *Program) *Machine {
	m := &Machine{Mem: new(Memory), Prog: prog, PC: prog.Entry()}
	prog.LoadInto(m.Mem)
	for r, v := range prog.InitRegs {
		if r != isa.Zero {
			m.X[r] = v
		}
	}
	return m
}

// Effect describes everything one executed instruction did: the next PC,
// the register it wrote (if any), and its memory access (if any). The
// pipeline records Effects at dispatch and replays their timing.
type Effect struct {
	NextPC uint64

	WritesReg bool
	RdClass   isa.RegClass
	Rd        isa.Reg
	RdValue   uint64 // integer value or raw FP bits

	Mem      bool
	Store    bool
	Addr     uint64
	Size     int
	StoreVal uint64

	Branch bool // conditional branch
	Taken  bool // branch outcome (always true for jumps)
	Halt   bool
}

// Step fetches the instruction at PC from the loaded program and executes
// it. It returns the instruction and its effect. Straight-line
// instructions dispatch through the predecoded superblock cache
// (decode.go), skipping Execute's full decode switch; control transfers
// and anything undecodable take the generic path.
func (m *Machine) Step() (isa.Inst, Effect, error) {
	if m.Halted {
		return isa.Inst{}, Effect{}, fmt.Errorf("vm: step after halt")
	}
	i := m.nextIdx
	if i >= len(m.Prog.Code) || m.Prog.AddrOf(i) != m.PC {
		if i = m.Prog.IndexOf(m.PC); i < 0 {
			return isa.Inst{}, Effect{}, fmt.Errorf("vm: PC %#x is not an instruction", m.PC)
		}
	}
	inst := m.Prog.Code[i]
	m.nextIdx = i + 1
	if i < len(m.Prog.dec) {
		if d := &m.Prog.dec[i]; d.cat != decCtl {
			return inst, m.stepDecoded(d, inst), nil
		}
	}
	eff, err := m.Execute(inst)
	return inst, eff, err
}

// Span returns the number of predecoded straight-line instructions
// starting at the current PC — the remaining length of the current
// superblock. Zero when the next instruction terminates a superblock
// (control transfer, HALT, undecodable), when the machine is halted, or
// when PC is not an instruction boundary. A span of k licenses exactly k
// consecutive StepStraight calls.
func (m *Machine) Span() int {
	if m.Halted {
		return 0
	}
	i := m.nextIdx
	if i >= len(m.Prog.Code) || m.Prog.AddrOf(i) != m.PC {
		if i = m.Prog.IndexOf(m.PC); i < 0 {
			return 0
		}
		m.nextIdx = i
	}
	return m.Prog.StraightLen(i)
}

// StepStraight executes the next instruction with no halt, bounds, or
// decodability checks, and therefore cannot fail. Callers must hold a
// straight-line license from Span: after Span returns ≥ k, exactly k
// StepStraight calls are valid with no other machine mutation between
// them.
func (m *Machine) StepStraight() (isa.Inst, Effect) {
	i := m.nextIdx
	inst := m.Prog.Code[i]
	m.nextIdx = i + 1
	return inst, m.stepDecoded(&m.Prog.dec[i], inst)
}

// Run executes until HALT or until limit instructions have run (0 means
// no limit). It returns the number of instructions executed. Whole
// superblocks replay through the decoded fast path; only terminators go
// through the generic Step.
func (m *Machine) Run(limit uint64) (uint64, error) {
	var n uint64
	for !m.Halted {
		if limit != 0 && n >= limit {
			return n, nil
		}
		span := m.Span()
		if limit != 0 {
			if left := limit - n; uint64(span) > left {
				span = int(left)
			}
		}
		for k := 0; k < span; k++ {
			m.StepStraight()
		}
		n += uint64(span)
		if limit != 0 && n >= limit {
			return n, nil
		}
		if _, _, err := m.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func bits(f float64) uint64   { return math.Float64bits(f) }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Execute applies inst to the architectural state and returns its effect.
// The PC advances to the effect's NextPC.
func (m *Machine) Execute(inst isa.Inst) (Effect, error) {
	op := inst.Op
	next := m.PC + uint64(inst.Size())
	eff := Effect{NextPC: next}

	x := func(r isa.Reg) uint64 { return m.X[r] } // X[0] kept zero below
	setInt := func(r isa.Reg, v uint64) {
		if r == isa.Zero {
			v = 0
		} else {
			m.X[r] = v
		}
		eff.WritesReg = r != isa.Zero
		eff.RdClass = isa.RegInt
		eff.Rd = r
		eff.RdValue = v
	}
	setFP := func(r isa.Reg, v uint64) {
		m.F[r] = v
		eff.WritesReg = true
		eff.RdClass = isa.RegFP
		eff.Rd = r
		eff.RdValue = v
	}
	load := func(r isa.Reg, size int, signed bool, fp bool) {
		addr := x(inst.Rs1) + uint64(inst.Imm)
		v := m.Mem.Read(addr, size)
		if signed {
			shift := uint(64 - 8*size)
			v = uint64(int64(v<<shift) >> shift)
		}
		eff.Mem, eff.Addr, eff.Size = true, addr, size
		if fp {
			setFP(r, v)
		} else {
			setInt(r, v)
		}
	}
	store := func(size int, val uint64) {
		addr := x(inst.Rs1) + uint64(inst.Imm)
		m.Mem.Write(addr, size, val)
		eff.Mem, eff.Store, eff.Addr, eff.Size, eff.StoreVal = true, true, addr, size, val
	}
	branch := func(taken bool) {
		eff.Branch = true
		eff.Taken = taken
		if taken {
			eff.NextPC = next + uint64(inst.Imm)
		}
	}

	a, b := x(inst.Rs1), x(inst.Rs2)
	fa, fb := f64(m.F[inst.Rs1]), f64(m.F[inst.Rs2])

	switch op {
	case isa.NOP:
	case isa.HALT:
		m.Halted = true
		eff.Halt = true

	case isa.ADD:
		setInt(inst.Rd, a+b)
	case isa.SUB:
		setInt(inst.Rd, a-b)
	case isa.AND:
		setInt(inst.Rd, a&b)
	case isa.OR:
		setInt(inst.Rd, a|b)
	case isa.XOR:
		setInt(inst.Rd, a^b)
	case isa.SLL:
		setInt(inst.Rd, a<<(b&63))
	case isa.SRL:
		setInt(inst.Rd, a>>(b&63))
	case isa.SRA:
		setInt(inst.Rd, uint64(int64(a)>>(b&63)))
	case isa.SLT:
		setInt(inst.Rd, b2u(int64(a) < int64(b)))
	case isa.SLTU:
		setInt(inst.Rd, b2u(a < b))
	case isa.MUL:
		setInt(inst.Rd, a*b)
	case isa.MULHU:
		hi, _ := mul64(a, b)
		setInt(inst.Rd, hi)
	case isa.DIV:
		setInt(inst.Rd, divs(a, b))
	case isa.REM:
		setInt(inst.Rd, rems(a, b))

	case isa.ADDI:
		setInt(inst.Rd, a+uint64(inst.Imm))
	case isa.ANDI:
		setInt(inst.Rd, a&uint64(inst.Imm))
	case isa.ORI:
		setInt(inst.Rd, a|uint64(inst.Imm))
	case isa.XORI:
		setInt(inst.Rd, a^uint64(inst.Imm))
	case isa.SLLI:
		setInt(inst.Rd, a<<(uint64(inst.Imm)&63))
	case isa.SRLI:
		setInt(inst.Rd, a>>(uint64(inst.Imm)&63))
	case isa.SRAI:
		setInt(inst.Rd, uint64(int64(a)>>(uint64(inst.Imm)&63)))
	case isa.SLTI:
		setInt(inst.Rd, b2u(int64(a) < inst.Imm))
	case isa.SLTIU:
		setInt(inst.Rd, b2u(a < uint64(inst.Imm)))
	case isa.LIMM:
		setInt(inst.Rd, uint64(inst.Imm))

	case isa.LD:
		load(inst.Rd, 8, false, false)
	case isa.LW:
		load(inst.Rd, 4, true, false)
	case isa.LWU:
		load(inst.Rd, 4, false, false)
	case isa.LB:
		load(inst.Rd, 1, true, false)
	case isa.LBU:
		load(inst.Rd, 1, false, false)
	case isa.ST:
		store(8, b)
	case isa.SW:
		store(4, b)
	case isa.SB:
		store(1, b)
	case isa.FLD:
		load(inst.Rd, 8, false, true)
	case isa.FSD:
		store(8, m.F[inst.Rs2])

	case isa.BEQ:
		branch(a == b)
	case isa.BNE:
		branch(a != b)
	case isa.BLT:
		branch(int64(a) < int64(b))
	case isa.BGE:
		branch(int64(a) >= int64(b))
	case isa.BLTU:
		branch(a < b)
	case isa.BGEU:
		branch(a >= b)
	case isa.JAL:
		setInt(inst.Rd, next)
		eff.Taken = true
		eff.NextPC = next + uint64(inst.Imm)
	case isa.JALR:
		target := a + uint64(inst.Imm)
		setInt(inst.Rd, next)
		eff.Taken = true
		eff.NextPC = target

	case isa.FADD:
		setFP(inst.Rd, bits(fa+fb))
	case isa.FSUB:
		setFP(inst.Rd, bits(fa-fb))
	case isa.FMUL:
		setFP(inst.Rd, bits(fa*fb))
	case isa.FDIV:
		setFP(inst.Rd, bits(fa/fb))
	case isa.FSQRT:
		setFP(inst.Rd, bits(math.Sqrt(fa)))
	case isa.FABS:
		setFP(inst.Rd, bits(math.Abs(fa)))
	case isa.FNEG:
		setFP(inst.Rd, bits(-fa))
	case isa.FMIN:
		setFP(inst.Rd, bits(math.Min(fa, fb)))
	case isa.FMAX:
		setFP(inst.Rd, bits(math.Max(fa, fb)))
	case isa.FMADD:
		setFP(inst.Rd, bits(f64(m.F[inst.Rd])+fa*fb))
	case isa.FCVTDL:
		setFP(inst.Rd, bits(float64(int64(a))))
	case isa.FCVTLD:
		setInt(inst.Rd, uint64(toInt64(fa)))
	case isa.FEQ:
		setInt(inst.Rd, b2u(fa == fb))
	case isa.FLT:
		setInt(inst.Rd, b2u(fa < fb))
	case isa.FLE:
		setInt(inst.Rd, b2u(fa <= fb))
	case isa.FMVXD:
		setInt(inst.Rd, m.F[inst.Rs1])
	case isa.FMVDX:
		setFP(inst.Rd, a)

	default:
		return Effect{}, fmt.Errorf("vm: unimplemented opcode %v", op)
	}

	m.X[isa.Zero] = 0
	m.PC = eff.NextPC
	m.InstCount++
	return eff, nil
}

// divs implements signed division with RISC-V edge-case semantics:
// division by zero yields -1, and the most-negative-by-minus-one overflow
// yields the dividend.
func divs(a, b uint64) uint64 {
	sa, sb := int64(a), int64(b)
	switch {
	case sb == 0:
		return ^uint64(0)
	case sa == math.MinInt64 && sb == -1:
		return a
	default:
		return uint64(sa / sb)
	}
}

// rems implements signed remainder with RISC-V edge-case semantics.
func rems(a, b uint64) uint64 {
	sa, sb := int64(a), int64(b)
	switch {
	case sb == 0:
		return a
	case sa == math.MinInt64 && sb == -1:
		return 0
	default:
		return uint64(sa % sb)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) { return mathbits.Mul64(a, b) }

// toInt64 converts a float64 to int64 with saturation, NaN mapping to 0.
func toInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(f)
	}
}
