package sched

import (
	"time"
)

// Progress is one live snapshot of an executing run, produced by the
// run's own body (the simulator's progress hook) and enriched by the
// scheduler before fan-out: the body fills the simulation-domain fields
// (cycles, instructions, interval window, occupancies, write mix), the
// scheduler's reporter stamps Target, the wall-clock fields, and the
// ETA. Frames for one run are monotonic in Cycles and Insts.
type Progress struct {
	// Simulation-domain fields (set by the run's body).
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`

	// Interval window: deltas between consecutive hook reports, and the
	// window's IPC — the live phase behaviour.
	IntervalCycles uint64  `json:"interval_cycles,omitempty"`
	IntervalInsts  uint64  `json:"interval_insts,omitempty"`
	IntervalIPC    float64 `json:"interval_ipc,omitempty"`

	// Structure occupancies at the report cycle.
	ROB   int `json:"rob,omitempty"`
	IntIQ int `json:"int_iq,omitempty"`
	FPIQ  int `json:"fp_iq,omitempty"`
	LSQ   int `json:"lsq,omitempty"`

	// Writes is the cumulative per-array register file write mix
	// (whole file, or Simple/Short/Long for the content-aware
	// organization).
	Writes [3]uint64 `json:"writes,omitempty"`

	// Final marks the run's closing frame (totals equal the final
	// statistics). Final frames bypass the throttle — every watcher
	// sees the run reach its end state.
	Final bool `json:"final,omitempty"`

	// Scheduler-stamped fields.
	Target         uint64  `json:"target,omitempty"`          // known instruction budget (0 = unknown)
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"` // wall time since the sim started
	InstsPerSec    float64 `json:"insts_per_sec,omitempty"`   // retirement rate over the whole run
	ETASeconds     float64 `json:"eta_seconds,omitempty"`     // (target-insts)/rate; 0 when unknowable
}

// Pct returns completion in [0,1], or -1 when the target is unknown.
func (p Progress) Pct() float64 {
	if p.Target == 0 {
		return -1
	}
	if p.Insts >= p.Target {
		return 1
	}
	return float64(p.Insts) / float64(p.Target)
}

// ProgressFunc receives progress frames. The scheduler hands one to a
// DoProgress body (the "report" function) and accepts one from callers
// wanting per-run frames (the "onProgress" callback).
type ProgressFunc func(Progress)

// DefaultProgressInterval is the minimum wall-clock gap between
// forwarded non-final progress frames per run. The simulator's hook
// fires every few thousand cycles (hundreds of times per second);
// forwarding each would flood the SSE plane, so the reporter thins them
// to a human-readable rate.
const DefaultProgressInterval = 100 * time.Millisecond

// SetProgressInterval sets the per-run minimum gap between forwarded
// non-final progress frames (0 forwards every frame — tests use this
// for determinism). Safe to call at any time; in-flight runs pick the
// new value up on their next frame.
func (s *Scheduler) SetProgressInterval(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.progressEvery.Store(int64(d))
}

// reporter builds the per-run report function handed to a DoProgress
// body. It is called from the simulating goroutine only (the leader),
// so its throttle state needs no lock; the observer and onProgress
// callbacks must themselves be safe for concurrent use across runs.
func (s *Scheduler) reporter(id uint64, target uint64, obs Observer, on ProgressFunc, simStart time.Time) ProgressFunc {
	var last time.Time
	return func(p Progress) {
		now := time.Now()
		if !p.Final {
			if gap := time.Duration(s.progressEvery.Load()); gap > 0 && !last.IsZero() && now.Sub(last) < gap {
				return
			}
		}
		last = now
		if p.Target == 0 {
			p.Target = target
		}
		p.ElapsedSeconds = now.Sub(simStart).Seconds()
		if p.ElapsedSeconds > 0 {
			p.InstsPerSec = float64(p.Insts) / p.ElapsedSeconds
		}
		if p.Target > p.Insts && p.InstsPerSec > 0 {
			p.ETASeconds = float64(p.Target-p.Insts) / p.InstsPerSec
		}
		if obs != nil {
			obs.RunProgressed(id, p)
		}
		if on != nil {
			on(p)
		}
	}
}
