// Package sched is the process-global simulation scheduler: every
// experiment submits its simulations to one bounded worker pool instead
// of running a private semaphore, and completed runs are memoized in a
// content-addressed cache so two experiments requesting the same
// (kernel, model, configuration) combination share one execution.
//
// Three mechanisms compose:
//
//   - A resizable bounded pool. Do blocks until a worker slot is free,
//     so the total simulation concurrency stays bounded no matter how
//     many experiments fan out at once.
//   - Content-keyed memoization. Cacheable runs are stored by a digest
//     of everything that determines their result (see KeyOf); a later
//     request with the same key returns the stored value without
//     simulating. Cached values are immutable snapshots — callers must
//     not mutate anything reachable from a returned value.
//   - Singleflight deduplication. A request whose key matches a run
//     already in flight joins it (waits for the one execution) instead
//     of starting a second simulation.
//
// Every Do call returns a Provenance (hit / miss / joined, queue wait,
// simulation wall time); cumulative counters are available through
// Stats and, for interval sampling and export, through the scheduler's
// metrics.Registry.
package sched

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"carf/internal/metrics"
)

// Key is a content digest identifying one simulation request. Two
// requests with equal keys must be guaranteed to produce identical
// results (the simulator is deterministic, so a key covering every
// result-affecting input is sufficient).
type Key [sha256.Size]byte

// Short returns the first 8 hex digits of the key — the correlation id
// used in telemetry output (span attributes, /runs rows, log fields).
// Short ids are for humans; full keys stay the cache identity.
func (k Key) Short() string { return hex.EncodeToString(k[:4]) }

// KeyOf digests the given parts into a Key. Parts are rendered with
// %#v, which spells out field names and values of nested structs, so
// any config difference — and any field added to a config struct later
// — changes the digest. Callers must include everything the run's
// result depends on: kernel name, workload scale, model spec identity,
// pipeline configuration, and any sampler/checker/injection knobs.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x1f", p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Outcome classifies how a Do call was served.
type Outcome uint8

const (
	// Miss: the run was simulated by this call.
	Miss Outcome = iota
	// Hit: the result came from the in-memory completed-run cache.
	Hit
	// Joined: an identical run was already in flight; this call waited
	// for it and shared its result.
	Joined
	// DiskHit: the result came from the persistent tier (see SetTier) —
	// computed by an earlier process or evicted from memory since.
	DiskHit
	// Canceled: the request's context expired before a result was
	// available (while queued for a worker slot, or while joined to an
	// in-flight run that had not finished yet).
	Canceled
	// PeerHit: another *process* sharing the persistent tier held the
	// cross-process lease for this key (see Locker); this call waited
	// for the peer's blob to land instead of simulating. The
	// cross-process analogue of Joined.
	PeerHit
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Joined:
		return "joined"
	case DiskHit:
		return "disk-hit"
	case Canceled:
		return "canceled"
	case PeerHit:
		return "peer-hit"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Provenance describes how one Do call was served. QueueWait and
// SimWall are nonzero only for misses (the call that actually ran the
// simulation). Key is the request's content digest — the correlation id
// that ties this run to its telemetry spans, /runs row, and log lines.
type Provenance struct {
	Outcome   Outcome
	Key       Key           // content digest of the request (correlation id)
	QueueWait time.Duration // Do entry until a worker slot was acquired
	SimWall   time.Duration // wall time inside the simulation function

	// LeaseWait is the time spent waiting on another process's
	// cross-process lease for this key: the full wait for PeerHit
	// outcomes (the peer's result landed), or the wait before a stale
	// lease was taken over for misses that had to contend. Zero when no
	// Locker is attached or the lease was free.
	LeaseWait time.Duration

	// Exec names the execution engine that served a miss ("" = the
	// default scalar loop, "batch<N>" = the lockstep batch executor).
	// Like QueueWait/SimWall it is only set on misses — cached results
	// carry no engine: they did no work.
	Exec string
}

// Stats is a snapshot of a scheduler's cumulative counters.
type Stats struct {
	Workers      int    // current pool bound
	CacheEntries int    // completed runs held in the memo cache
	Runs         uint64 // total Do calls
	Misses       uint64 // runs simulated
	Hits         uint64 // runs served from the in-memory cache
	Joins        uint64 // runs that joined an in-flight execution
	DiskHits     uint64 // runs served from the persistent tier
	PeerHits     uint64 // runs served by a peer process via the shared tier
	Canceled     uint64 // runs abandoned by their context before a result
	Evictions    uint64 // memory-cache entries evicted by the LRU bound
	Errors       uint64 // simulations that returned an error (never cached)

	QueueWait time.Duration // cumulative worker-slot wait over misses
	SimWall   time.Duration // cumulative simulation wall time over misses
	LeaseWait time.Duration // cumulative cross-process lease wait (peer hits + contended misses)
}

// Delta returns st minus prev, for measuring one phase of a scheduler's
// life (cumulative counters only; Workers and CacheEntries are kept
// from st).
func (st Stats) Delta(prev Stats) Stats {
	st.Runs -= prev.Runs
	st.Misses -= prev.Misses
	st.Hits -= prev.Hits
	st.Joins -= prev.Joins
	st.DiskHits -= prev.DiskHits
	st.PeerHits -= prev.PeerHits
	st.Canceled -= prev.Canceled
	st.Evictions -= prev.Evictions
	st.Errors -= prev.Errors
	st.QueueWait -= prev.QueueWait
	st.SimWall -= prev.SimWall
	st.LeaseWait -= prev.LeaseWait
	return st
}

// Observer receives run lifecycle callbacks from a scheduler: every Do
// call announces itself once on entry (RunEnqueued), misses additionally
// report worker-slot acquisition (RunStarted), and every call reports
// its outcome on exit (RunFinished). Executing DoProgress runs
// additionally stream RunProgressed frames between RunStarted and
// RunFinished (throttled; see SetProgressInterval). Callbacks run on
// the requesting goroutine, outside the scheduler lock, so an observer
// may call Stats or Metrics — but must return quickly and must not call
// Do. The id is unique per scheduler and strictly increasing in enqueue
// order; for one id the callbacks are ordered (enqueued happens-before
// started happens-before each progressed happens-before finished),
// while callbacks for different ids interleave arbitrarily. The
// telemetry hub is the canonical implementation.
type Observer interface {
	RunEnqueued(id uint64, key Key, label string)
	RunStarted(id uint64)
	RunProgressed(id uint64, p Progress)
	RunFinished(id uint64, p Provenance, err error)
}

// Tally accumulates per-caller provenance counts: a harness that wants
// to know how *its* requests were served — while sharing a scheduler
// with everyone else — records each Do's Provenance into its own Tally.
// All methods are safe for concurrent use; a nil *Tally ignores Record,
// so threading one through is optional at every level.
type Tally struct {
	runs, hits, misses, joins           atomic.Uint64
	diskHits, peerHits, canceled, errs  atomic.Uint64
	queueWaitNs, simWallNs, leaseWaitNs atomic.Int64
}

// Record counts one served request.
func (t *Tally) Record(p Provenance, err error) {
	if t == nil {
		return
	}
	t.runs.Add(1)
	t.leaseWaitNs.Add(int64(p.LeaseWait))
	switch p.Outcome {
	case Hit:
		t.hits.Add(1)
	case Joined:
		t.joins.Add(1)
	case DiskHit:
		t.diskHits.Add(1)
	case PeerHit:
		t.peerHits.Add(1)
	case Canceled:
		t.canceled.Add(1)
	case Miss:
		t.misses.Add(1)
		t.queueWaitNs.Add(int64(p.QueueWait))
		t.simWallNs.Add(int64(p.SimWall))
	}
	if err != nil {
		t.errs.Add(1)
	}
}

// Stats snapshots the tally in the Stats shape (Workers and
// CacheEntries are zero: a tally sees one caller's slice of the
// scheduler, not the pool).
func (t *Tally) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Runs:      t.runs.Load(),
		Misses:    t.misses.Load(),
		Hits:      t.hits.Load(),
		Joins:     t.joins.Load(),
		DiskHits:  t.diskHits.Load(),
		PeerHits:  t.peerHits.Load(),
		Canceled:  t.canceled.Load(),
		Errors:    t.errs.Load(),
		QueueWait: time.Duration(t.queueWaitNs.Load()),
		SimWall:   time.Duration(t.simWallNs.Load()),
		LeaseWait: time.Duration(t.leaseWaitNs.Load()),
	}
}

// Tier is a persistent second-level result cache underneath the
// in-memory memo cache: Load is consulted on a memory miss before the
// run is queued for a worker, and Store is offered every successful
// cacheable result. Implementations must be safe for concurrent use,
// must treat stored values as immutable, and must never fail a run —
// a Tier that cannot serve or persist a value reports a miss / drops
// the write (and accounts for it itself). The store package's tiered
// blob store is the canonical implementation.
type Tier interface {
	// Load returns the value persisted under key, if a valid one exists.
	Load(key Key) (val any, ok bool)
	// Store persists a successful run's value under key (best effort).
	Store(key Key, val any)
}

// Locker coordinates cross-process singleflight over a shared persistent
// tier: before simulating a memory-and-disk miss, the scheduler claims
// the key's cross-process lease; losers poll the tier for the winner's
// result (Outcome PeerHit) instead of duplicating the simulation.
//
// TryLock must be non-blocking apart from local filesystem operations:
// ok=true hands the caller the exclusive right to simulate key (release
// MUST then be called exactly once, after the result has been offered to
// the tier); ok=false means another live process holds the lease right
// now. Staleness is the implementation's concern — TryLock takes over a
// crashed peer's lease internally and then reports ok=true. An
// implementation that cannot coordinate (no shared directory, degraded
// disk) must return a no-op release and ok=true: uncoordinated
// duplicate simulation is always safe, only wasteful, because tier blob
// writes are atomic and results are deterministic. The store package's
// blob store is the canonical implementation.
type Locker interface {
	TryLock(key Key) (release func(), ok bool)
}

// entry is one execution: in flight until done is closed, then an
// immutable (val, err) pair.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Scheduler runs simulation closures through a bounded worker pool with
// content-keyed memoization and in-flight deduplication. All methods
// are safe for concurrent use.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when a slot frees or the pool resizes

	workers int
	busy    int
	memo    bool

	cache    map[Key]*entry // completed, error-free runs
	inflight map[Key]*entry

	// LRU bookkeeping over cache: front = most recently used. cacheCap
	// 0 means unbounded (the pre-eviction behaviour).
	lru      *list.List
	lruPos   map[Key]*list.Element
	cacheCap int

	tier   Tier   // persistent second-level cache; nil when not attached
	locker Locker // cross-process singleflight; nil when not attached

	stats Stats
	seq   uint64 // next run id handed to the observer

	obs Observer // nil when no telemetry is attached

	// progressEvery is the minimum wall-clock gap between forwarded
	// progress frames per run, in nanoseconds (SetProgressInterval).
	progressEvery atomic.Int64

	// peerPoll is the interval, in nanoseconds, at which a run that lost
	// the cross-process lease re-probes the tier for the winner's result
	// (SetPeerPollInterval).
	peerPoll atomic.Int64

	// execLabel names the execution engine misses run under; stamped
	// into Provenance.Exec (SetExecLabel).
	execLabel string

	reg       *metrics.Registry
	queueHist *metrics.SyncHistogram // per-miss queue wait, seconds
	simHist   *metrics.SyncHistogram // per-miss simulation wall, seconds
}

// latencyBounds are the queue-wait/sim-wall histogram bucket upper
// bounds in seconds: sub-millisecond dispatch up through multi-second
// full-scale simulations, so /metrics exposes tail latency rather than
// only the cumulative totals the gauges carry.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// New returns a scheduler bounding concurrent simulations to workers
// (<= 0 means GOMAXPROCS), with memoization enabled.
func New(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		workers:  workers,
		memo:     true,
		cache:    make(map[Key]*entry),
		inflight: make(map[Key]*entry),
		lru:      list.New(),
		lruPos:   make(map[Key]*list.Element),
	}
	s.cond = sync.NewCond(&s.mu)
	s.progressEvery.Store(int64(DefaultProgressInterval))
	s.peerPoll.Store(int64(DefaultPeerPollInterval))
	s.reg = metrics.NewRegistry()
	snap := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(s.Stats()) }
	}
	s.reg.GaugeFunc("sched.workers", snap(func(st Stats) float64 { return float64(st.Workers) }))
	s.reg.GaugeFunc("sched.cache_entries", snap(func(st Stats) float64 { return float64(st.CacheEntries) }))
	s.reg.GaugeFunc("sched.runs", snap(func(st Stats) float64 { return float64(st.Runs) }))
	s.reg.GaugeFunc("sched.misses", snap(func(st Stats) float64 { return float64(st.Misses) }))
	s.reg.GaugeFunc("sched.hits", snap(func(st Stats) float64 { return float64(st.Hits) }))
	s.reg.GaugeFunc("sched.joins", snap(func(st Stats) float64 { return float64(st.Joins) }))
	s.reg.GaugeFunc("sched.disk_hits", snap(func(st Stats) float64 { return float64(st.DiskHits) }))
	s.reg.GaugeFunc("sched.peer_hits", snap(func(st Stats) float64 { return float64(st.PeerHits) }))
	s.reg.GaugeFunc("sched.canceled", snap(func(st Stats) float64 { return float64(st.Canceled) }))
	s.reg.GaugeFunc("sched.evictions", snap(func(st Stats) float64 { return float64(st.Evictions) }))
	s.reg.GaugeFunc("sched.errors", snap(func(st Stats) float64 { return float64(st.Errors) }))
	s.reg.GaugeFunc("sched.queue_wait_ms", snap(func(st Stats) float64 { return float64(st.QueueWait) / float64(time.Millisecond) }))
	s.reg.GaugeFunc("sched.sim_wall_ms", snap(func(st Stats) float64 { return float64(st.SimWall) / float64(time.Millisecond) }))
	s.reg.GaugeFunc("sched.lease_wait_ms", snap(func(st Stats) float64 { return float64(st.LeaseWait) / float64(time.Millisecond) }))
	s.reg.GaugeFunc("sched.hit_rate", snap(func(st Stats) float64 {
		if st.Runs == 0 {
			return 0
		}
		return float64(st.Hits+st.Joins+st.DiskHits+st.PeerHits) / float64(st.Runs)
	}))
	s.queueHist = s.reg.SyncHistogram("sched.queue_wait_seconds", latencyBounds)
	s.simHist = s.reg.SyncHistogram("sched.sim_wall_seconds", latencyBounds)
	return s
}

// SetObserver attaches (or, with nil, detaches) a run lifecycle
// observer. Attach before submitting work: runs already in flight do
// not retroactively announce themselves.
func (s *Scheduler) SetObserver(o Observer) {
	s.mu.Lock()
	s.obs = o
	s.mu.Unlock()
}

// Observed reports whether a lifecycle observer is attached. Callers
// use it to skip progress-only work (instruction-budget computation,
// hook installation) when nobody is watching.
func (s *Scheduler) Observed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs != nil
}

// SetExecLabel records the name of the execution engine this
// scheduler's misses run under (e.g. "batch8" for the lockstep batch
// executor); it is stamped into each miss's Provenance.Exec. Purely
// observational: labels never participate in memoization keys.
func (s *Scheduler) SetExecLabel(label string) {
	s.mu.Lock()
	s.execLabel = label
	s.mu.Unlock()
}

// SetTier attaches (or, with nil, detaches) the persistent result tier.
// Attach before submitting work; values already cached in memory are
// not retroactively persisted. A tier that also implements Locker is
// attached as the cross-process lease coordinator in the same call, so
// N processes sharing one store directory never duplicate a simulation
// — SetLocker afterwards overrides that default.
func (s *Scheduler) SetTier(t Tier) {
	s.mu.Lock()
	s.tier = t
	if l, ok := t.(Locker); ok {
		s.locker = l
	} else {
		s.locker = nil
	}
	s.mu.Unlock()
}

// SetLocker attaches (or, with nil, detaches) the cross-process lease
// coordinator, overriding the one SetTier derived from the tier.
func (s *Scheduler) SetLocker(l Locker) {
	s.mu.Lock()
	s.locker = l
	s.mu.Unlock()
}

// DefaultPeerPollInterval is how often a run that lost the
// cross-process lease re-probes the tier for the winner's result. Short
// enough that a peer hit adds little latency over the peer's own
// simulation wall; long enough that a fleet of waiters does not hammer
// the shared directory.
const DefaultPeerPollInterval = 25 * time.Millisecond

// SetPeerPollInterval tunes the lease-wait re-probe period (d <= 0
// restores the default). Tests shorten it.
func (s *Scheduler) SetPeerPollInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultPeerPollInterval
	}
	s.peerPoll.Store(int64(d))
}

// SetCacheCap bounds the in-memory memo cache to n completed runs,
// evicting least-recently-used entries beyond it (they remain
// retrievable from the persistent tier, if one is attached). n <= 0
// removes the bound.
func (s *Scheduler) SetCacheCap(n int) {
	s.mu.Lock()
	s.cacheCap = n
	s.evictOver()
	s.mu.Unlock()
}

// cacheInsert stores a completed entry and applies the LRU bound.
// Callers hold s.mu.
func (s *Scheduler) cacheInsert(key Key, e *entry) {
	if el, ok := s.lruPos[key]; ok {
		s.lru.MoveToFront(el)
		s.cache[key] = e
		return
	}
	s.cache[key] = e
	s.lruPos[key] = s.lru.PushFront(key)
	s.evictOver()
}

// cacheTouch marks key most recently used. Callers hold s.mu.
func (s *Scheduler) cacheTouch(key Key) {
	if el, ok := s.lruPos[key]; ok {
		s.lru.MoveToFront(el)
	}
}

// evictOver drops least-recently-used cache entries beyond cacheCap.
// Callers hold s.mu.
func (s *Scheduler) evictOver() {
	if s.cacheCap <= 0 {
		return
	}
	for len(s.cache) > s.cacheCap {
		el := s.lru.Back()
		if el == nil {
			return
		}
		key := el.Value.(Key)
		s.lru.Remove(el)
		delete(s.lruPos, key)
		delete(s.cache, key)
		s.stats.Evictions++
	}
}

var (
	globalOnce sync.Once
	global     *Scheduler
)

// Global returns the process-global scheduler shared by every
// experiment (created on first use, sized to GOMAXPROCS).
func Global() *Scheduler {
	globalOnce.Do(func() { global = New(0) })
	return global
}

// SetWorkers resizes the pool bound (<= 0 means GOMAXPROCS). Shrinking
// does not interrupt running simulations; the pool drains down to the
// new bound as they finish.
func (s *Scheduler) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.mu.Lock()
	s.workers = n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Workers returns the current pool bound.
func (s *Scheduler) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// DisableMemo turns off the completed-run cache and in-flight
// deduplication: every Do executes its function (still through the
// bounded pool). Benchmarks use this to measure the unmemoized
// baseline.
func (s *Scheduler) DisableMemo() {
	s.mu.Lock()
	s.memo = false
	s.mu.Unlock()
}

// Stats snapshots the cumulative counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Workers = s.workers
	st.CacheEntries = len(s.cache)
	return st
}

// Metrics returns the scheduler's registry (sched.runs, sched.hits,
// sched.misses, sched.joins, sched.queue_wait_ms, the per-run
// sched.queue_wait_seconds / sched.sim_wall_seconds histograms, ...)
// for interval sampling and export alongside the simulator's other
// series. Every instrument in it is safe to read while runs are in
// flight — the gauges snapshot under the scheduler lock and the
// histograms are SyncHistograms — so Read (Prometheus exposition) may
// be called from a serving goroutine at any time; Snapshot advances
// interval state and should keep a single driver.
func (s *Scheduler) Metrics() *metrics.Registry { return s.reg }

// Do runs fn through the worker pool, deduplicating and memoizing by
// key when cacheable is true. It is DoCtx without a deadline: the call
// blocks until a result is available.
func (s *Scheduler) Do(key Key, label string, cacheable bool, fn func() (any, error)) (any, Provenance, error) {
	return s.DoCtx(context.Background(), key, label, cacheable, fn)
}

// DoCtx runs fn through the worker pool, deduplicating and memoizing by
// key when cacheable is true. The returned value is shared by every
// caller with the same key and must be treated as immutable. Errors
// propagate to all joined callers but are never cached — a later
// request with the same key retries. label is a short human-readable
// description ("sim/qsort/baseline") carried to the observer and shown
// in telemetry; it has no effect on scheduling or caching.
//
// ctx carries the request's deadline and cancellation: a request whose
// context expires while it waits for a worker slot, or while it is
// joined to an in-flight execution, returns ctx's error with Outcome
// Canceled instead of blocking forever. Cancellation of a joiner never
// disturbs the leader — the one execution keeps running and its result
// still lands in the cache. A leader canceled while queued resolves its
// entry with the cancellation error, which propagates to any joiners
// (a later request with the same key retries). fn itself is not
// interrupted once running; closures wanting cooperative abort capture
// ctx themselves (the pipeline's SetInterrupt hook is the simulator's
// path).
//
// fn must not call Do on the same scheduler (a saturated pool of
// parent runs waiting on child runs would deadlock).
func (s *Scheduler) DoCtx(ctx context.Context, key Key, label string, cacheable bool, fn func() (any, error)) (any, Provenance, error) {
	return s.DoProgress(ctx, key, label, cacheable, 0, nil, func(ProgressFunc) (any, error) { return fn() })
}

// DoProgress is DoCtx for runs that can report live progress. fn
// receives a report function to call with in-flight Progress snapshots;
// the scheduler stamps each forwarded frame with the wall-clock rate
// and an ETA derived from target (the run's known dynamic-instruction
// budget; 0 = unknown, frames then carry no ETA), throttles non-final
// frames to one per SetProgressInterval, and fans the result out to the
// attached Observer (RunProgressed) and to onProgress. Both are
// optional; when neither is attached fn receives a nil report and the
// call is exactly DoCtx — callers guard their hook installation on
// report != nil, so a silent run pays nothing.
//
// Progress frames are leader-only: hits, disk hits, and joiners resolve
// without frames (their provenance says why). onProgress runs on the
// simulating goroutine and must return quickly.
func (s *Scheduler) DoProgress(ctx context.Context, key Key, label string, cacheable bool, target uint64, onProgress ProgressFunc, fn func(report ProgressFunc) (any, error)) (any, Provenance, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		// Dead on arrival: account for the request, touch nothing else.
		s.mu.Lock()
		s.stats.Runs++
		s.stats.Canceled++
		s.seq++
		id := s.seq
		obs := s.obs
		s.mu.Unlock()
		p := Provenance{Outcome: Canceled, Key: key}
		if obs != nil {
			obs.RunEnqueued(id, key, label)
			obs.RunFinished(id, p, err)
		}
		return nil, p, err
	}
	s.mu.Lock()
	s.stats.Runs++
	s.seq++
	id := s.seq
	obs := s.obs
	cacheable = cacheable && s.memo
	if cacheable {
		if e, ok := s.cache[key]; ok {
			s.stats.Hits++
			s.cacheTouch(key)
			s.mu.Unlock()
			p := Provenance{Outcome: Hit, Key: key}
			if obs != nil {
				obs.RunEnqueued(id, key, label)
				obs.RunFinished(id, p, nil)
			}
			return e.val, p, nil
		}
		if e, ok := s.inflight[key]; ok {
			s.stats.Joins++
			s.mu.Unlock()
			if obs != nil {
				obs.RunEnqueued(id, key, label)
			}
			select {
			case <-e.done:
				p := Provenance{Outcome: Joined, Key: key}
				if obs != nil {
					obs.RunFinished(id, p, e.err)
				}
				return e.val, p, e.err
			case <-ctx.Done():
				// Detach: the leader keeps running and will still
				// populate the cache; only this caller gives up.
				err := fmt.Errorf("sched: abandoned joined run %s: %w", key.Short(), ctx.Err())
				s.mu.Lock()
				s.stats.Canceled++
				s.mu.Unlock()
				p := Provenance{Outcome: Canceled, Key: key}
				if obs != nil {
					obs.RunFinished(id, p, err)
				}
				return nil, p, err
			}
		}
	}
	e := &entry{done: make(chan struct{})}
	if cacheable {
		s.inflight[key] = e
	}
	tier := s.tier
	locker := s.locker
	// Announce before the tier probe and the slot wait so telemetry sees
	// the run queued, not just running. The in-flight entry is already
	// registered, so dedup keeps working while the lock is dropped.
	s.mu.Unlock()
	if obs != nil {
		obs.RunEnqueued(id, key, label)
	}

	// Persistent-tier probe: serving a previously computed run needs no
	// worker slot. A hit is promoted into the memory cache so repeats
	// stay cheap even after the blob ages out of the tier's own memory.
	if cacheable && tier != nil {
		if v, ok := tier.Load(key); ok {
			e.val = v
			s.mu.Lock()
			delete(s.inflight, key)
			s.cacheInsert(key, e)
			s.stats.DiskHits++
			s.mu.Unlock()
			close(e.done)
			p := Provenance{Outcome: DiskHit, Key: key}
			if obs != nil {
				obs.RunFinished(id, p, nil)
			}
			return v, p, nil
		}
	}

	// Cross-process singleflight: claim the key's lease before taking a
	// worker slot. Losing means a live peer process is simulating this
	// key right now — wait for its blob to land in the shared tier (the
	// cross-process analogue of joining an in-flight run) instead of
	// duplicating the work. A peer that crashes mid-simulation stops
	// heartbeating; TryLock takes its stale lease over internally and
	// this call proceeds as an ordinary miss.
	var release func() // non-nil once the lease is held
	var leaseWait time.Duration
	if cacheable && locker != nil {
		leaseStart := time.Now()
		poll := time.Duration(s.peerPoll.Load())
		for {
			if r, ok := locker.TryLock(key); ok {
				release = r
				leaseWait = time.Since(leaseStart)
				break
			}
			select {
			case <-ctx.Done():
				// Same contract as cancellation while queued: resolve the
				// entry with the error so in-process joiners unblock and a
				// later request retries.
				err := fmt.Errorf("sched: run %s canceled waiting on a peer's lease: %w", key.Short(), ctx.Err())
				s.mu.Lock()
				s.stats.Canceled++
				s.stats.LeaseWait += time.Since(leaseStart)
				delete(s.inflight, key)
				e.err = err
				s.mu.Unlock()
				close(e.done)
				p := Provenance{Outcome: Canceled, Key: key, LeaseWait: time.Since(leaseStart)}
				if obs != nil {
					obs.RunFinished(id, p, err)
				}
				return nil, p, err
			case <-time.After(poll):
			}
			if tier != nil {
				if v, ok := tier.Load(key); ok {
					// The peer finished and its blob verified: serve it.
					leaseWait = time.Since(leaseStart)
					e.val = v
					s.mu.Lock()
					delete(s.inflight, key)
					s.cacheInsert(key, e)
					s.stats.PeerHits++
					s.stats.LeaseWait += leaseWait
					s.mu.Unlock()
					close(e.done)
					p := Provenance{Outcome: PeerHit, Key: key, LeaseWait: leaseWait}
					if obs != nil {
						obs.RunFinished(id, p, nil)
					}
					return v, p, nil
				}
			}
			// No blob yet: either the peer is still simulating (its lease
			// is fresh — TryLock keeps failing) or it died or errored
			// (lease gone or stale — TryLock succeeds and this process
			// simulates).
		}
	}

	if done := ctx.Done(); done != nil {
		// The pool wait below sleeps on a sync.Cond; wake it when the
		// context expires so the cancellation check runs.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}
	s.mu.Lock()
	for s.busy >= s.workers && ctx.Err() == nil {
		s.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Canceled while queued: resolve the entry with the error so
		// joiners unblock (they see the error and may retry later).
		s.stats.Canceled++
		if cacheable {
			delete(s.inflight, key)
		}
		e.err = fmt.Errorf("sched: run %s canceled while queued: %w", key.Short(), err)
		s.mu.Unlock()
		close(e.done)
		if release != nil {
			// Nothing was stored; dropping the lease lets a peer (or a
			// retry here) claim the key and simulate it.
			release()
		}
		p := Provenance{Outcome: Canceled, Key: key, LeaseWait: leaseWait}
		if obs != nil {
			obs.RunFinished(id, p, e.err)
		}
		return nil, p, e.err
	}
	s.busy++
	s.stats.Misses++
	s.stats.LeaseWait += leaseWait
	queueWait := time.Since(start)
	s.stats.QueueWait += queueWait
	s.mu.Unlock()
	s.queueHist.Observe(queueWait.Seconds())
	if obs != nil {
		obs.RunStarted(id)
	}

	simStart := time.Now()
	var report ProgressFunc
	if obs != nil || onProgress != nil {
		report = s.reporter(id, target, obs, onProgress, simStart)
	}
	e.val, e.err = fn(report)
	simWall := time.Since(simStart)
	s.simHist.Observe(simWall.Seconds())

	s.mu.Lock()
	s.busy--
	s.stats.SimWall += simWall
	if e.err != nil {
		s.stats.Errors++
	}
	if cacheable {
		delete(s.inflight, key)
		if e.err == nil {
			s.cacheInsert(key, e)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	close(e.done)
	if cacheable && e.err == nil && tier != nil {
		// Persist outside the lock; the tier absorbs its own failures.
		tier.Store(key, e.val)
	}
	if release != nil {
		// Release only after the result was offered to the tier: a lease
		// waiter that sees the lease vanish must find the blob (or learn,
		// by winning the lease, that it has to simulate — the store path
		// failed or the run errored).
		release()
	}
	s.mu.Lock()
	execLabel := s.execLabel
	s.mu.Unlock()
	p := Provenance{Outcome: Miss, Key: key, QueueWait: queueWait, SimWall: simWall, LeaseWait: leaseWait, Exec: execLabel}
	if obs != nil {
		obs.RunFinished(id, p, e.err)
	}
	return e.val, p, e.err
}

// ForEach invokes fn(i) for every i in [0, n) on its own goroutine and
// returns the lowest-index error, if any. It imposes no concurrency
// bound of its own — callbacks submit their work through a scheduler,
// whose pool is the bound. This is the experiments' fan-out primitive;
// results land in caller-owned slices indexed by i, so output order is
// deterministic regardless of completion order.
func ForEach(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
