// Package sched is the process-global simulation scheduler: every
// experiment submits its simulations to one bounded worker pool instead
// of running a private semaphore, and completed runs are memoized in a
// content-addressed cache so two experiments requesting the same
// (kernel, model, configuration) combination share one execution.
//
// Three mechanisms compose:
//
//   - A resizable bounded pool. Do blocks until a worker slot is free,
//     so the total simulation concurrency stays bounded no matter how
//     many experiments fan out at once.
//   - Content-keyed memoization. Cacheable runs are stored by a digest
//     of everything that determines their result (see KeyOf); a later
//     request with the same key returns the stored value without
//     simulating. Cached values are immutable snapshots — callers must
//     not mutate anything reachable from a returned value.
//   - Singleflight deduplication. A request whose key matches a run
//     already in flight joins it (waits for the one execution) instead
//     of starting a second simulation.
//
// Every Do call returns a Provenance (hit / miss / joined, queue wait,
// simulation wall time); cumulative counters are available through
// Stats and, for interval sampling and export, through the scheduler's
// metrics.Registry.
package sched

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"time"

	"carf/internal/metrics"
)

// Key is a content digest identifying one simulation request. Two
// requests with equal keys must be guaranteed to produce identical
// results (the simulator is deterministic, so a key covering every
// result-affecting input is sufficient).
type Key [sha256.Size]byte

// KeyOf digests the given parts into a Key. Parts are rendered with
// %#v, which spells out field names and values of nested structs, so
// any config difference — and any field added to a config struct later
// — changes the digest. Callers must include everything the run's
// result depends on: kernel name, workload scale, model spec identity,
// pipeline configuration, and any sampler/checker/injection knobs.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x1f", p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Outcome classifies how a Do call was served.
type Outcome uint8

const (
	// Miss: the run was simulated by this call.
	Miss Outcome = iota
	// Hit: the result came from the completed-run cache.
	Hit
	// Joined: an identical run was already in flight; this call waited
	// for it and shared its result.
	Joined
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Joined:
		return "joined"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Provenance describes how one Do call was served. QueueWait and
// SimWall are nonzero only for misses (the call that actually ran the
// simulation).
type Provenance struct {
	Outcome   Outcome
	QueueWait time.Duration // Do entry until a worker slot was acquired
	SimWall   time.Duration // wall time inside the simulation function
}

// Stats is a snapshot of a scheduler's cumulative counters.
type Stats struct {
	Workers      int    // current pool bound
	CacheEntries int    // completed runs held in the memo cache
	Runs         uint64 // total Do calls
	Misses       uint64 // runs simulated
	Hits         uint64 // runs served from the cache
	Joins        uint64 // runs that joined an in-flight execution
	Errors       uint64 // simulations that returned an error (never cached)

	QueueWait time.Duration // cumulative worker-slot wait over misses
	SimWall   time.Duration // cumulative simulation wall time over misses
}

// Delta returns st minus prev, for measuring one phase of a scheduler's
// life (cumulative counters only; Workers and CacheEntries are kept
// from st).
func (st Stats) Delta(prev Stats) Stats {
	st.Runs -= prev.Runs
	st.Misses -= prev.Misses
	st.Hits -= prev.Hits
	st.Joins -= prev.Joins
	st.Errors -= prev.Errors
	st.QueueWait -= prev.QueueWait
	st.SimWall -= prev.SimWall
	return st
}

// entry is one execution: in flight until done is closed, then an
// immutable (val, err) pair.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Scheduler runs simulation closures through a bounded worker pool with
// content-keyed memoization and in-flight deduplication. All methods
// are safe for concurrent use.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when a slot frees or the pool resizes

	workers int
	busy    int
	memo    bool

	cache    map[Key]*entry // completed, error-free runs
	inflight map[Key]*entry

	stats Stats

	reg *metrics.Registry
}

// New returns a scheduler bounding concurrent simulations to workers
// (<= 0 means GOMAXPROCS), with memoization enabled.
func New(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		workers:  workers,
		memo:     true,
		cache:    make(map[Key]*entry),
		inflight: make(map[Key]*entry),
	}
	s.cond = sync.NewCond(&s.mu)
	s.reg = metrics.NewRegistry()
	snap := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(s.Stats()) }
	}
	s.reg.GaugeFunc("sched.workers", snap(func(st Stats) float64 { return float64(st.Workers) }))
	s.reg.GaugeFunc("sched.cache_entries", snap(func(st Stats) float64 { return float64(st.CacheEntries) }))
	s.reg.GaugeFunc("sched.runs", snap(func(st Stats) float64 { return float64(st.Runs) }))
	s.reg.GaugeFunc("sched.misses", snap(func(st Stats) float64 { return float64(st.Misses) }))
	s.reg.GaugeFunc("sched.hits", snap(func(st Stats) float64 { return float64(st.Hits) }))
	s.reg.GaugeFunc("sched.joins", snap(func(st Stats) float64 { return float64(st.Joins) }))
	s.reg.GaugeFunc("sched.errors", snap(func(st Stats) float64 { return float64(st.Errors) }))
	s.reg.GaugeFunc("sched.queue_wait_ms", snap(func(st Stats) float64 { return float64(st.QueueWait) / float64(time.Millisecond) }))
	s.reg.GaugeFunc("sched.sim_wall_ms", snap(func(st Stats) float64 { return float64(st.SimWall) / float64(time.Millisecond) }))
	s.reg.GaugeFunc("sched.hit_rate", snap(func(st Stats) float64 {
		if st.Runs == 0 {
			return 0
		}
		return float64(st.Hits+st.Joins) / float64(st.Runs)
	}))
	return s
}

var (
	globalOnce sync.Once
	global     *Scheduler
)

// Global returns the process-global scheduler shared by every
// experiment (created on first use, sized to GOMAXPROCS).
func Global() *Scheduler {
	globalOnce.Do(func() { global = New(0) })
	return global
}

// SetWorkers resizes the pool bound (<= 0 means GOMAXPROCS). Shrinking
// does not interrupt running simulations; the pool drains down to the
// new bound as they finish.
func (s *Scheduler) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.mu.Lock()
	s.workers = n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Workers returns the current pool bound.
func (s *Scheduler) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// DisableMemo turns off the completed-run cache and in-flight
// deduplication: every Do executes its function (still through the
// bounded pool). Benchmarks use this to measure the unmemoized
// baseline.
func (s *Scheduler) DisableMemo() {
	s.mu.Lock()
	s.memo = false
	s.mu.Unlock()
}

// Stats snapshots the cumulative counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Workers = s.workers
	st.CacheEntries = len(s.cache)
	return st
}

// Metrics returns the scheduler's registry (sched.runs, sched.hits,
// sched.misses, sched.joins, sched.queue_wait_ms, ...) for interval
// sampling and export alongside the simulator's other series.
func (s *Scheduler) Metrics() *metrics.Registry { return s.reg }

// Do runs fn through the worker pool, deduplicating and memoizing by
// key when cacheable is true. The returned value is shared by every
// caller with the same key and must be treated as immutable. Errors
// propagate to all joined callers but are never cached — a later
// request with the same key retries.
//
// fn must not call Do on the same scheduler (a saturated pool of
// parent runs waiting on child runs would deadlock).
func (s *Scheduler) Do(key Key, cacheable bool, fn func() (any, error)) (any, Provenance, error) {
	start := time.Now()
	s.mu.Lock()
	s.stats.Runs++
	cacheable = cacheable && s.memo
	if cacheable {
		if e, ok := s.cache[key]; ok {
			s.stats.Hits++
			s.mu.Unlock()
			return e.val, Provenance{Outcome: Hit}, nil
		}
		if e, ok := s.inflight[key]; ok {
			s.stats.Joins++
			s.mu.Unlock()
			<-e.done
			return e.val, Provenance{Outcome: Joined}, e.err
		}
	}
	e := &entry{done: make(chan struct{})}
	if cacheable {
		s.inflight[key] = e
	}
	s.stats.Misses++
	for s.busy >= s.workers {
		s.cond.Wait()
	}
	s.busy++
	queueWait := time.Since(start)
	s.stats.QueueWait += queueWait
	s.mu.Unlock()

	simStart := time.Now()
	e.val, e.err = fn()
	simWall := time.Since(simStart)

	s.mu.Lock()
	s.busy--
	s.stats.SimWall += simWall
	if e.err != nil {
		s.stats.Errors++
	}
	if cacheable {
		delete(s.inflight, key)
		if e.err == nil {
			s.cache[key] = e
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	close(e.done)
	return e.val, Provenance{Outcome: Miss, QueueWait: queueWait, SimWall: simWall}, e.err
}

// ForEach invokes fn(i) for every i in [0, n) on its own goroutine and
// returns the lowest-index error, if any. It imposes no concurrency
// bound of its own — callbacks submit their work through a scheduler,
// whose pool is the bound. This is the experiments' fan-out primitive;
// results land in caller-owned slices indexed by i, so output order is
// deterministic regardless of completion order.
func ForEach(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
