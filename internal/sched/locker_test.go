package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeLocker scripts the cross-process lease: deny the first `denials`
// TryLock calls (a live peer holds the lease), then grant, recording
// every event into an optional shared log.
type fakeLocker struct {
	mu       sync.Mutex
	denials  int
	tries    int
	released atomic.Int32
	events   []string
}

func (l *fakeLocker) TryLock(key Key) (func(), bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tries++
	if l.tries <= l.denials {
		return nil, false
	}
	l.events = append(l.events, "acquire")
	return func() {
		l.released.Add(1)
		l.mu.Lock()
		l.events = append(l.events, "release")
		l.mu.Unlock()
	}, true
}

// lockingTier is a Tier that also coordinates cross-process leases —
// the shape store.Store has — logging Store calls into the locker's
// event stream so ordering is checkable.
type lockingTier struct {
	*fakeTier
	*fakeLocker
}

func (lt *lockingTier) Store(key Key, val any) {
	lt.fakeLocker.mu.Lock()
	lt.fakeLocker.events = append(lt.fakeLocker.events, "store")
	lt.fakeLocker.mu.Unlock()
	lt.fakeTier.Store(key, val)
}

func newLockingTier(denials int) *lockingTier {
	return &lockingTier{fakeTier: newFakeTier(), fakeLocker: &fakeLocker{denials: denials}}
}

func TestSetTierAutoDetectsLockerAndPeerHit(t *testing.T) {
	// The tier implements Locker, so SetTier alone must wire the
	// cross-process path: with the lease denied (live peer), the blob
	// landing in the tier must be served as a PeerHit without simulating.
	lt := newLockingTier(1 << 30) // never grant
	key := KeyOf("peer-owned")

	s := New(2)
	s.SetTier(lt)
	s.SetPeerPollInterval(time.Millisecond)

	go func() {
		time.Sleep(10 * time.Millisecond)
		lt.fakeTier.Store(key, "peer-result") // the peer finishes: blob lands
	}()
	v, prov, err := s.Do(key, "", true, func() (any, error) {
		t.Error("simulated despite a live peer's lease")
		return nil, nil
	})
	if err != nil || v.(string) != "peer-result" || prov.Outcome != PeerHit {
		t.Fatalf("peer hit: v=%v prov=%+v err=%v", v, prov, err)
	}
	if prov.LeaseWait <= 0 {
		t.Errorf("PeerHit LeaseWait = %v, want > 0", prov.LeaseWait)
	}
	st := s.Stats()
	if st.PeerHits != 1 || st.Misses != 0 || st.LeaseWait <= 0 {
		t.Errorf("stats = %+v, want 1 peer hit, 0 misses, LeaseWait > 0", st)
	}
	// Promoted into the memory cache: a repeat is a plain hit.
	if _, prov, _ := s.Do(key, "", true, func() (any, error) { return nil, nil }); prov.Outcome != Hit {
		t.Errorf("repeat after peer hit: outcome %v, want Hit", prov.Outcome)
	}
}

func TestLockerTakeoverBecomesMissWithLeaseWait(t *testing.T) {
	// The holder dies: TryLock denies a few times (fresh lease), then
	// grants (stale takeover). No blob ever lands, so this process must
	// simulate — an ordinary miss that carries the pre-takeover wait.
	lt := newLockingTier(3)
	s := New(2)
	s.SetTier(lt)
	s.SetPeerPollInterval(time.Millisecond)

	ran := 0
	v, prov, err := s.Do(KeyOf("orphaned"), "", true, func() (any, error) {
		ran++
		return "simulated-here", nil
	})
	if err != nil || v.(string) != "simulated-here" || prov.Outcome != Miss || ran != 1 {
		t.Fatalf("takeover miss: v=%v prov=%+v err=%v ran=%d", v, prov, err, ran)
	}
	if prov.LeaseWait <= 0 {
		t.Errorf("contended miss LeaseWait = %v, want > 0", prov.LeaseWait)
	}
	if st := s.Stats(); st.Misses != 1 || st.LeaseWait <= 0 {
		t.Errorf("stats = %+v, want 1 miss with LeaseWait > 0", st)
	}
	if got := lt.released.Load(); got != 1 {
		t.Errorf("release called %d times, want exactly 1", got)
	}
}

func TestLockerReleaseAfterTierStore(t *testing.T) {
	// The lease must outlive the blob write: a waiter that sees the
	// lease vanish has to find the result. Event order is therefore
	// acquire → store → release.
	lt := newLockingTier(0)
	s := New(2)
	s.SetTier(lt)

	if _, _, err := s.Do(KeyOf("ordered"), "", true, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	lt.fakeLocker.mu.Lock()
	events := append([]string(nil), lt.fakeLocker.events...)
	lt.fakeLocker.mu.Unlock()
	want := []string{"acquire", "store", "release"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestLockerReleasedOnSimulationError(t *testing.T) {
	// An errored run stores nothing but must still drop the lease so a
	// waiting peer can take over and retry.
	lt := newLockingTier(0)
	s := New(2)
	s.SetTier(lt)

	if _, _, err := s.Do(KeyOf("failing"), "", true, func() (any, error) {
		return nil, context.DeadlineExceeded
	}); err == nil {
		t.Fatal("want simulation error")
	}
	if got := lt.released.Load(); got != 1 {
		t.Errorf("release called %d times, want exactly 1", got)
	}
	if lt.fakeTier.stores != 0 {
		t.Errorf("errored run stored %d blobs, want 0", lt.fakeTier.stores)
	}
}

func TestLockerCancelWhileWaitingOnPeer(t *testing.T) {
	lt := newLockingTier(1 << 30) // never grant, no blob ever lands
	s := New(2)
	s.SetTier(lt)
	s.SetPeerPollInterval(time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	key := KeyOf("abandoned")

	// A joiner on the same key must be resolved by the leader's
	// cancellation, not hang.
	var wg sync.WaitGroup
	leaderIn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderIn)
		_, prov, err := s.DoCtx(ctx, key, "", true, func() (any, error) {
			t.Error("simulated while a peer held the lease")
			return nil, nil
		})
		if err == nil || prov.Outcome != Canceled {
			t.Errorf("leader: prov=%+v err=%v, want Canceled", prov, err)
		}
		if prov.LeaseWait <= 0 {
			t.Errorf("canceled lease wait = %v, want > 0", prov.LeaseWait)
		}
	}()
	<-leaderIn
	time.Sleep(5 * time.Millisecond) // let the leader enter the lease wait
	cancel()
	wg.Wait()

	if st := s.Stats(); st.Canceled == 0 {
		t.Errorf("stats = %+v, want Canceled > 0", st)
	}
}

func TestUncacheableRunSkipsLocker(t *testing.T) {
	lt := newLockingTier(0)
	s := New(2)
	s.SetTier(lt)
	if _, _, err := s.Do(KeyOf("raw"), "", false, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	lt.fakeLocker.mu.Lock()
	tries := lt.fakeLocker.tries
	lt.fakeLocker.mu.Unlock()
	if tries != 0 {
		t.Errorf("uncacheable run tried the lease %d times, want 0", tries)
	}
}

func TestSetLockerOverridesAndClears(t *testing.T) {
	// A plain tier (no Locker) must leave the lease path disengaged even
	// after a locking tier was attached before it.
	lt := newLockingTier(0)
	s := New(2)
	s.SetTier(lt)
	plain := newFakeTier()
	s.SetTier(plain)
	if _, _, err := s.Do(KeyOf("plain"), "", true, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	lt.fakeLocker.mu.Lock()
	tries := lt.fakeLocker.tries
	lt.fakeLocker.mu.Unlock()
	if tries != 0 {
		t.Errorf("lease consulted %d times after a plain tier replaced the locking one", tries)
	}

	// And SetLocker wires coordination separate from the tier.
	s.SetLocker(lt.fakeLocker)
	if _, _, err := s.Do(KeyOf("separate"), "", true, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if lt.released.Load() != 1 {
		t.Error("explicit SetLocker did not engage the lease path")
	}
}
