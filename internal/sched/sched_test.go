package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyOfDistinguishesParts(t *testing.T) {
	type cfg struct {
		A int
		B bool
	}
	base := KeyOf("sim", "qsort", 0.25, cfg{A: 1})
	cases := map[string]Key{
		"kind":        KeyOf("oracle", "qsort", 0.25, cfg{A: 1}),
		"kernel":      KeyOf("sim", "crc64", 0.25, cfg{A: 1}),
		"scale":       KeyOf("sim", "qsort", 0.5, cfg{A: 1}),
		"config":      KeyOf("sim", "qsort", 0.25, cfg{A: 2}),
		"config bool": KeyOf("sim", "qsort", 0.25, cfg{A: 1, B: true}),
		"extra part":  KeyOf("sim", "qsort", 0.25, cfg{A: 1}, 128),
	}
	for name, k := range cases {
		if k == base {
			t.Errorf("%s variation collides with the base key", name)
		}
	}
	if again := KeyOf("sim", "qsort", 0.25, cfg{A: 1}); again != base {
		t.Error("identical parts produced different keys")
	}
}

func TestDoMissHitJoin(t *testing.T) {
	s := New(4)
	key := KeyOf("t", 1)
	var execs atomic.Int64
	run := func() (any, Provenance, error) {
		return s.Do(key, true, func() (any, error) {
			execs.Add(1)
			time.Sleep(10 * time.Millisecond)
			return 42, nil
		})
	}

	v, prov, err := run()
	if err != nil || v.(int) != 42 || prov.Outcome != Miss {
		t.Fatalf("first call: v=%v prov=%+v err=%v", v, prov, err)
	}
	v, prov, err = run()
	if err != nil || v.(int) != 42 || prov.Outcome != Hit {
		t.Fatalf("second call: v=%v prov=%+v err=%v", v, prov, err)
	}

	// Concurrent requests for a fresh key share one execution.
	key2 := KeyOf("t", 2)
	var wg sync.WaitGroup
	var joined atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, prov, err := s.Do(key2, true, func() (any, error) {
				execs.Add(1)
				time.Sleep(20 * time.Millisecond)
				return "shared", nil
			})
			if err != nil || v.(string) != "shared" {
				t.Errorf("join: v=%v err=%v", v, err)
			}
			if prov.Outcome == Joined {
				joined.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := execs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (one per unique key)", got)
	}
	st := s.Stats()
	if st.Joins != uint64(joined.Load()) || st.Joins == 0 {
		t.Errorf("stats joins = %d, observed %d", st.Joins, joined.Load())
	}
	if st.Hits != 1 || st.Misses != 2 || st.Runs != 10 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 10 runs", st)
	}
	if st.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2", st.CacheEntries)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := New(2)
	key := KeyOf("fails")
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, prov, err := s.Do(key, true, func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) || prov.Outcome != Miss {
			t.Fatalf("call %d: prov=%+v err=%v", i, prov, err)
		}
	}
	if calls != 2 {
		t.Errorf("failing function ran %d times, want 2 (errors must not be memoized)", calls)
	}
	if st := s.Stats(); st.Errors != 2 || st.CacheEntries != 0 {
		t.Errorf("stats = %+v, want 2 errors and an empty cache", st)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	s := New(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.Do(KeyOf("job", i), true, func() (any, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				cur.Add(-1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent simulations, pool bound is %d", p, workers)
	}
}

func TestSetWorkersUnblocksWaiters(t *testing.T) {
	s := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(KeyOf("hold"), false, func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	done := make(chan struct{})
	go func() {
		s.Do(KeyOf("waits"), false, func() (any, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second job ran despite a full 1-worker pool")
	case <-time.After(20 * time.Millisecond):
	}
	s.SetWorkers(2)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("growing the pool did not unblock the queued job")
	}
	close(release)
	if got := s.Workers(); got != 2 {
		t.Errorf("Workers() = %d, want 2", got)
	}
}

func TestDisableMemo(t *testing.T) {
	s := New(2)
	s.DisableMemo()
	key := KeyOf("same")
	calls := 0
	for i := 0; i < 3; i++ {
		_, prov, err := s.Do(key, true, func() (any, error) {
			calls++
			return i, nil
		})
		if err != nil || prov.Outcome != Miss {
			t.Fatalf("call %d: prov=%+v err=%v", i, prov, err)
		}
	}
	if calls != 3 {
		t.Errorf("memo-disabled scheduler ran %d executions, want 3", calls)
	}
	if st := s.Stats(); st.Hits != 0 || st.Joins != 0 || st.CacheEntries != 0 {
		t.Errorf("memo-disabled stats = %+v, want no hits/joins/cache", st)
	}
}

func TestForEachOrderAndErrors(t *testing.T) {
	out := make([]int, 8)
	if err := ForEach(8, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}

	first := errors.New("first")
	err := ForEach(4, func(i int) error {
		if i >= 2 {
			return errors.New("later")
		}
		if i == 1 {
			return first
		}
		return nil
	})
	if !errors.Is(err, first) {
		t.Errorf("ForEach error = %v, want the lowest-index error", err)
	}
}

func TestMetricsRegistryExposesCounters(t *testing.T) {
	s := New(2)
	key := KeyOf("m")
	for i := 0; i < 3; i++ {
		s.Do(key, true, func() (any, error) { return nil, nil })
	}
	names := s.Metrics().Names()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	snap := s.Metrics().Snapshot(nil)
	want := map[string]float64{
		"sched.runs":   3,
		"sched.misses": 1,
		"sched.hits":   2,
	}
	for name, v := range want {
		i, ok := idx[name]
		if !ok {
			t.Fatalf("series %s not registered (have %v)", name, names)
		}
		if snap[i] != v {
			t.Errorf("%s = %v, want %v", name, snap[i], v)
		}
	}
	if i, ok := idx["sched.hit_rate"]; !ok || snap[i] < 0.6 || snap[i] > 0.7 {
		t.Errorf("sched.hit_rate = %v, want 2/3", snap[idx["sched.hit_rate"]])
	}
}

func TestGlobalIsSingleton(t *testing.T) {
	if Global() != Global() {
		t.Error("Global returned distinct schedulers")
	}
	if Global().Workers() < 1 {
		t.Error("global scheduler has no workers")
	}
}
