package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carf/internal/metrics"
)

func TestKeyOfDistinguishesParts(t *testing.T) {
	type cfg struct {
		A int
		B bool
	}
	base := KeyOf("sim", "qsort", 0.25, cfg{A: 1})
	cases := map[string]Key{
		"kind":        KeyOf("oracle", "qsort", 0.25, cfg{A: 1}),
		"kernel":      KeyOf("sim", "crc64", 0.25, cfg{A: 1}),
		"scale":       KeyOf("sim", "qsort", 0.5, cfg{A: 1}),
		"config":      KeyOf("sim", "qsort", 0.25, cfg{A: 2}),
		"config bool": KeyOf("sim", "qsort", 0.25, cfg{A: 1, B: true}),
		"extra part":  KeyOf("sim", "qsort", 0.25, cfg{A: 1}, 128),
	}
	for name, k := range cases {
		if k == base {
			t.Errorf("%s variation collides with the base key", name)
		}
	}
	if again := KeyOf("sim", "qsort", 0.25, cfg{A: 1}); again != base {
		t.Error("identical parts produced different keys")
	}
}

func TestDoMissHitJoin(t *testing.T) {
	s := New(4)
	key := KeyOf("t", 1)
	var execs atomic.Int64
	run := func() (any, Provenance, error) {
		return s.Do(key, "", true, func() (any, error) {
			execs.Add(1)
			time.Sleep(10 * time.Millisecond)
			return 42, nil
		})
	}

	v, prov, err := run()
	if err != nil || v.(int) != 42 || prov.Outcome != Miss {
		t.Fatalf("first call: v=%v prov=%+v err=%v", v, prov, err)
	}
	v, prov, err = run()
	if err != nil || v.(int) != 42 || prov.Outcome != Hit {
		t.Fatalf("second call: v=%v prov=%+v err=%v", v, prov, err)
	}

	// Concurrent requests for a fresh key share one execution.
	key2 := KeyOf("t", 2)
	var wg sync.WaitGroup
	var joined atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, prov, err := s.Do(key2, "", true, func() (any, error) {
				execs.Add(1)
				time.Sleep(20 * time.Millisecond)
				return "shared", nil
			})
			if err != nil || v.(string) != "shared" {
				t.Errorf("join: v=%v err=%v", v, err)
			}
			if prov.Outcome == Joined {
				joined.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := execs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (one per unique key)", got)
	}
	st := s.Stats()
	if st.Joins != uint64(joined.Load()) || st.Joins == 0 {
		t.Errorf("stats joins = %d, observed %d", st.Joins, joined.Load())
	}
	if st.Hits != 1 || st.Misses != 2 || st.Runs != 10 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 10 runs", st)
	}
	if st.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2", st.CacheEntries)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := New(2)
	key := KeyOf("fails")
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, prov, err := s.Do(key, "", true, func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) || prov.Outcome != Miss {
			t.Fatalf("call %d: prov=%+v err=%v", i, prov, err)
		}
	}
	if calls != 2 {
		t.Errorf("failing function ran %d times, want 2 (errors must not be memoized)", calls)
	}
	if st := s.Stats(); st.Errors != 2 || st.CacheEntries != 0 {
		t.Errorf("stats = %+v, want 2 errors and an empty cache", st)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	s := New(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.Do(KeyOf("job", i), "", true, func() (any, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				cur.Add(-1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent simulations, pool bound is %d", p, workers)
	}
}

func TestSetWorkersUnblocksWaiters(t *testing.T) {
	s := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(KeyOf("hold"), "", false, func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	done := make(chan struct{})
	go func() {
		s.Do(KeyOf("waits"), "", false, func() (any, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second job ran despite a full 1-worker pool")
	case <-time.After(20 * time.Millisecond):
	}
	s.SetWorkers(2)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("growing the pool did not unblock the queued job")
	}
	close(release)
	if got := s.Workers(); got != 2 {
		t.Errorf("Workers() = %d, want 2", got)
	}
}

func TestDisableMemo(t *testing.T) {
	s := New(2)
	s.DisableMemo()
	key := KeyOf("same")
	calls := 0
	for i := 0; i < 3; i++ {
		_, prov, err := s.Do(key, "", true, func() (any, error) {
			calls++
			return i, nil
		})
		if err != nil || prov.Outcome != Miss {
			t.Fatalf("call %d: prov=%+v err=%v", i, prov, err)
		}
	}
	if calls != 3 {
		t.Errorf("memo-disabled scheduler ran %d executions, want 3", calls)
	}
	if st := s.Stats(); st.Hits != 0 || st.Joins != 0 || st.CacheEntries != 0 {
		t.Errorf("memo-disabled stats = %+v, want no hits/joins/cache", st)
	}
}

func TestForEachOrderAndErrors(t *testing.T) {
	out := make([]int, 8)
	if err := ForEach(8, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}

	first := errors.New("first")
	err := ForEach(4, func(i int) error {
		if i >= 2 {
			return errors.New("later")
		}
		if i == 1 {
			return first
		}
		return nil
	})
	if !errors.Is(err, first) {
		t.Errorf("ForEach error = %v, want the lowest-index error", err)
	}
}

func TestMetricsRegistryExposesCounters(t *testing.T) {
	s := New(2)
	key := KeyOf("m")
	for i := 0; i < 3; i++ {
		s.Do(key, "", true, func() (any, error) { return nil, nil })
	}
	names := s.Metrics().Names()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	snap := s.Metrics().Snapshot(nil)
	want := map[string]float64{
		"sched.runs":   3,
		"sched.misses": 1,
		"sched.hits":   2,
	}
	for name, v := range want {
		i, ok := idx[name]
		if !ok {
			t.Fatalf("series %s not registered (have %v)", name, names)
		}
		if snap[i] != v {
			t.Errorf("%s = %v, want %v", name, snap[i], v)
		}
	}
	if i, ok := idx["sched.hit_rate"]; !ok || snap[i] < 0.6 || snap[i] > 0.7 {
		t.Errorf("sched.hit_rate = %v, want 2/3", snap[idx["sched.hit_rate"]])
	}
}

func TestGlobalIsSingleton(t *testing.T) {
	if Global() != Global() {
		t.Error("Global returned distinct schedulers")
	}
	if Global().Workers() < 1 {
		t.Error("global scheduler has no workers")
	}
}

// recObserver records lifecycle callbacks for assertions.
type recObserver struct {
	mu         sync.Mutex
	enqueued   []string // "id:label"
	started    []uint64
	progressed map[uint64][]Progress
	finished   map[uint64]Provenance
}

func newRecObserver() *recObserver {
	return &recObserver{
		progressed: map[uint64][]Progress{},
		finished:   map[uint64]Provenance{},
	}
}

func (o *recObserver) RunEnqueued(id uint64, key Key, label string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.enqueued = append(o.enqueued, fmt.Sprintf("%d:%s", id, label))
}

func (o *recObserver) RunStarted(id uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started = append(o.started, id)
}

func (o *recObserver) RunProgressed(id uint64, p Progress) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.progressed[id] = append(o.progressed[id], p)
}

func (o *recObserver) RunFinished(id uint64, p Provenance, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished[id] = p
}

func TestObserverLifecycle(t *testing.T) {
	s := New(2)
	obs := newRecObserver()
	s.SetObserver(obs)
	key := KeyOf("obs", 1)

	_, p1, err := s.Do(key, "sim/a/base", true, func() (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := s.Do(key, "sim/a/base", true, func() (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if p1.Outcome != Miss || p2.Outcome != Hit {
		t.Fatalf("outcomes = %v, %v", p1.Outcome, p2.Outcome)
	}
	if p1.Key != key || p2.Key != key {
		t.Error("Provenance.Key not threaded through")
	}
	if key.Short() == "" || key.Short() != p1.Key.Short() {
		t.Errorf("Short() = %q", key.Short())
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.enqueued) != 2 || obs.enqueued[0] != "1:sim/a/base" || obs.enqueued[1] != "2:sim/a/base" {
		t.Errorf("enqueued = %v", obs.enqueued)
	}
	if len(obs.started) != 1 || obs.started[0] != 1 {
		t.Errorf("started = %v, want only the miss", obs.started)
	}
	if len(obs.finished) != 2 {
		t.Fatalf("finished = %v", obs.finished)
	}
	if obs.finished[1].Outcome != Miss || obs.finished[2].Outcome != Hit {
		t.Errorf("finished outcomes = %v / %v", obs.finished[1].Outcome, obs.finished[2].Outcome)
	}
	if obs.finished[1].SimWall < 0 {
		t.Error("miss finished without sim wall")
	}
}

func TestObserverSeesJoins(t *testing.T) {
	s := New(4)
	obs := newRecObserver()
	s.SetObserver(obs)
	key := KeyOf("obs-join")
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(key, "join-me", true, func() (any, error) {
				time.Sleep(20 * time.Millisecond)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	obs.mu.Lock()
	defer obs.mu.Unlock()
	var miss, joined, hit int
	for _, p := range obs.finished {
		switch p.Outcome {
		case Miss:
			miss++
		case Joined:
			joined++
		case Hit:
			hit++
		}
	}
	if miss != 1 || miss+joined+hit != 6 {
		t.Errorf("finished outcomes: %d miss / %d joined / %d hit, want 1 miss of 6", miss, joined, hit)
	}
	if len(obs.enqueued) != 6 {
		t.Errorf("enqueued %d, want 6", len(obs.enqueued))
	}
}

func TestLatencyHistograms(t *testing.T) {
	s := New(2)
	key := KeyOf("hist")
	for i := 0; i < 3; i++ {
		s.Do(key, "", true, func() (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		})
	}
	var qw, sw metrics.Reading
	for _, rd := range s.Metrics().Read() {
		switch rd.Name {
		case "sched.queue_wait_seconds":
			qw = rd
		case "sched.sim_wall_seconds":
			sw = rd
		}
	}
	if qw.Kind != metrics.ReadHistogram || sw.Kind != metrics.ReadHistogram {
		t.Fatal("latency histograms not registered")
	}
	// Only the single miss observes; hits bypass the worker pool.
	if qw.Count != 1 || sw.Count != 1 {
		t.Errorf("histogram counts = %d / %d, want 1 / 1 (misses only)", qw.Count, sw.Count)
	}
	if sw.Sum < 0.001 {
		t.Errorf("sim wall sum = %v, want >= 1ms", sw.Sum)
	}
}

func TestTally(t *testing.T) {
	s := New(4)
	var tl Tally
	key := KeyOf("tally")
	for i := 0; i < 3; i++ {
		_, p, err := s.Do(key, "", true, func() (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		})
		tl.Record(p, err)
	}
	_, p, err := s.Do(KeyOf("tally-err"), "", true, func() (any, error) { return nil, errors.New("boom") })
	tl.Record(p, err)

	st := tl.Stats()
	if st.Runs != 4 || st.Misses != 2 || st.Hits != 2 || st.Errors != 1 {
		t.Errorf("tally stats = %+v, want 4 runs / 2 misses / 2 hits / 1 error", st)
	}
	if st.SimWall < time.Millisecond {
		t.Errorf("tally sim wall = %v", st.SimWall)
	}
	var nilTally *Tally
	nilTally.Record(p, nil) // must not panic
	if nilTally.Stats() != (Stats{}) {
		t.Error("nil tally stats not zero")
	}
}

// fakeTier is an in-memory Tier for provenance tests.
type fakeTier struct {
	mu     sync.Mutex
	m      map[Key]any
	loads  int
	stores int
}

func newFakeTier() *fakeTier { return &fakeTier{m: make(map[Key]any)} }

func (f *fakeTier) Load(key Key) (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	v, ok := f.m[key]
	return v, ok
}

func (f *fakeTier) Store(key Key, val any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.m[key] = val
}

func TestDoCtxCanceledWhileQueued(t *testing.T) {
	s := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(KeyOf("hog"), "", false, func() (any, error) { //nolint:errcheck
		close(started)
		<-release
		return nil, nil
	})
	<-started

	// The pool is saturated, so this request waits for a slot; cancel it
	// there and it must return promptly with Outcome Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	ran := false
	_, prov, err := s.DoCtx(ctx, KeyOf("queued"), "", true, func() (any, error) {
		ran = true
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || prov.Outcome != Canceled {
		t.Fatalf("queued cancel: prov=%+v err=%v", prov, err)
	}
	if ran {
		t.Error("canceled request still executed its function")
	}
	close(release)
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("stats = %+v, want 1 canceled", st)
	}

	// Dead on arrival: an already-expired context never queues at all.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, prov, err = s.DoCtx(dead, KeyOf("doa"), "", true, func() (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) || prov.Outcome != Canceled {
		t.Fatalf("DOA: prov=%+v err=%v", prov, err)
	}
}

func TestJoinerDetachesOnOwnCancel(t *testing.T) {
	s := New(2)
	key := KeyOf("shared-run")
	inFn := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan Provenance, 1)
	go func() {
		_, prov, _ := s.Do(key, "", true, func() (any, error) {
			close(inFn)
			<-release
			return "value", nil
		})
		leaderDone <- prov
	}()
	<-inFn

	// A joiner whose own context expires detaches; the leader keeps
	// running and still populates the cache.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, prov, err := s.DoCtx(ctx, key, "", true, func() (any, error) {
		t.Error("joiner ran the function")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || prov.Outcome != Canceled {
		t.Fatalf("joiner cancel: prov=%+v err=%v", prov, err)
	}

	close(release)
	if p := <-leaderDone; p.Outcome != Miss {
		t.Fatalf("leader outcome = %v, want miss (undisturbed by joiner cancel)", p.Outcome)
	}
	v, prov, err := s.Do(key, "", true, func() (any, error) { return nil, errors.New("must not run") })
	if err != nil || v.(string) != "value" || prov.Outcome != Hit {
		t.Errorf("post-detach request: v=%v prov=%+v err=%v (leader's result should be cached)", v, prov, err)
	}
}

func TestTierDiskHitProvenance(t *testing.T) {
	tier := newFakeTier()
	key := KeyOf("persisted")
	tier.m[key] = "from-disk"

	s := New(2)
	s.SetTier(tier)
	v, prov, err := s.Do(key, "", true, func() (any, error) {
		t.Error("tier-resident run was re-simulated")
		return nil, nil
	})
	if err != nil || v.(string) != "from-disk" || prov.Outcome != DiskHit {
		t.Fatalf("tier load: v=%v prov=%+v err=%v", v, prov, err)
	}
	// The disk hit was promoted into the memory cache: a repeat is a
	// plain hit and does not touch the tier again.
	loadsBefore := tier.loads
	v, prov, err = s.Do(key, "", true, func() (any, error) { return nil, nil })
	if err != nil || v.(string) != "from-disk" || prov.Outcome != Hit {
		t.Fatalf("promoted hit: v=%v prov=%+v err=%v", v, prov, err)
	}
	if tier.loads != loadsBefore {
		t.Error("memory hit consulted the tier")
	}
	// Fresh misses are offered to the tier.
	if _, _, err := s.Do(KeyOf("fresh"), "", true, func() (any, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if tier.stores != 1 {
		t.Errorf("tier stores = %d, want 1", tier.stores)
	}
	if st := s.Stats(); st.DiskHits != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 disk hit / 1 hit / 1 miss", st)
	}
}

func TestCacheCapEvictsLRUIntoTier(t *testing.T) {
	tier := newFakeTier()
	s := New(2)
	s.SetTier(tier)
	s.SetCacheCap(2)
	for i := 0; i < 3; i++ {
		if _, _, err := s.Do(KeyOf("evict", i), "", true, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheEntries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 cache entries and 1 eviction", st)
	}
	// The evicted (least recently used) entry comes back from the tier,
	// not a re-simulation.
	v, prov, err := s.Do(KeyOf("evict", 0), "", true, func() (any, error) {
		t.Error("evicted run was re-simulated despite the tier holding it")
		return nil, nil
	})
	if err != nil || v.(int) != 0 || prov.Outcome != DiskHit {
		t.Fatalf("evicted reload: v=%v prov=%+v err=%v", v, prov, err)
	}
}
