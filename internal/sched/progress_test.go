package sched

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestDoProgressNilReportWhenUnobserved: with no observer and no
// onProgress callback, the body must receive a nil report function —
// silent runs pay nothing for the progress plane.
func TestDoProgressNilReportWhenUnobserved(t *testing.T) {
	s := New(2)
	var gotReport ProgressFunc
	_, prov, err := s.DoProgress(context.Background(), KeyOf("silent"), "", true, 100, nil,
		func(report ProgressFunc) (any, error) {
			gotReport = report
			return 1, nil
		})
	if err != nil || prov.Outcome != Miss {
		t.Fatalf("prov=%+v err=%v", prov, err)
	}
	if gotReport != nil {
		t.Error("body received a non-nil report with nobody watching")
	}
}

// TestDoProgressStamping: the reporter stamps Target, ElapsedSeconds,
// InstsPerSec and ETASeconds onto body frames, forwards them to both
// the observer and the caller's onProgress, and keeps a body-provided
// Target.
func TestDoProgressStamping(t *testing.T) {
	s := New(2)
	s.SetProgressInterval(0) // forward every frame

	var mu sync.Mutex
	var got []Progress
	on := func(p Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}
	_, prov, err := s.DoProgress(context.Background(), KeyOf("stamped"), "", true, 1000, on,
		func(report ProgressFunc) (any, error) {
			if report == nil {
				t.Error("body received a nil report with an onProgress caller")
				return nil, nil
			}
			report(Progress{Cycles: 100, Insts: 250})
			time.Sleep(5 * time.Millisecond) // a nonzero elapsed for the rate
			report(Progress{Cycles: 200, Insts: 500})
			report(Progress{Cycles: 400, Insts: 1000, Final: true})
			return 1, nil
		})
	if err != nil || prov.Outcome != Miss {
		t.Fatalf("prov=%+v err=%v", prov, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("forwarded %d frames, want 3 (interval 0 forwards all)", len(got))
	}
	for i, p := range got {
		if p.Target != 1000 {
			t.Errorf("frame %d target %d, want the stamped 1000", i, p.Target)
		}
		if i > 0 && (p.Insts < got[i-1].Insts || p.Cycles < got[i-1].Cycles) {
			t.Errorf("frame %d not monotonic after %d", i, i-1)
		}
	}
	mid := got[1]
	if mid.ElapsedSeconds <= 0 || mid.InstsPerSec <= 0 {
		t.Errorf("mid frame not stamped: elapsed=%v rate=%v", mid.ElapsedSeconds, mid.InstsPerSec)
	}
	// ETA sanity: remaining work over the observed rate, and consistent
	// with the frame's own fields.
	wantETA := float64(mid.Target-mid.Insts) / mid.InstsPerSec
	if diff := mid.ETASeconds - wantETA; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mid frame ETA %v, want (target-insts)/rate = %v", mid.ETASeconds, wantETA)
	}
	if p := mid.Pct(); p <= 0 || p >= 1 {
		t.Errorf("mid frame pct %v, want within (0,1)", p)
	}
	final := got[2]
	if !final.Final {
		t.Error("last frame not Final")
	}
	if final.ETASeconds != 0 {
		t.Errorf("final frame ETA %v, want 0 (nothing remains)", final.ETASeconds)
	}
	if final.Pct() != 1 {
		t.Errorf("final frame pct %v, want 1", final.Pct())
	}
}

// TestDoProgressBodyTargetWins: a Target the body already stamped (carf
// computes its own budget) survives the reporter.
func TestDoProgressBodyTargetWins(t *testing.T) {
	s := New(2)
	s.SetProgressInterval(0)
	var got []Progress
	_, _, err := s.DoProgress(context.Background(), KeyOf("bodytarget"), "", true, 1000,
		func(p Progress) { got = append(got, p) },
		func(report ProgressFunc) (any, error) {
			report(Progress{Insts: 10, Target: 777})
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Target != 777 {
		t.Fatalf("frames %+v, want one frame keeping the body's target 777", got)
	}
}

// TestDoProgressThrottle: at a long interval only the first frame and
// Final frames pass; the flood in between is thinned.
func TestDoProgressThrottle(t *testing.T) {
	s := New(2)
	s.SetProgressInterval(time.Hour)
	var got []Progress
	_, _, err := s.DoProgress(context.Background(), KeyOf("throttled"), "", true, 0,
		func(p Progress) { got = append(got, p) },
		func(report ProgressFunc) (any, error) {
			for i := 1; i <= 100; i++ {
				report(Progress{Insts: uint64(i)})
			}
			report(Progress{Insts: 101, Final: true})
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("forwarded %d frames, want 2 (first + final)", len(got))
	}
	if got[0].Insts != 1 || !got[1].Final {
		t.Errorf("frames %+v, want the first flood frame then the final", got)
	}
}

// TestDoProgressObserverReceives: an attached Observer gets frames for
// the run id even without a caller onProgress — and hits produce none.
func TestDoProgressObserverReceives(t *testing.T) {
	s := New(2)
	s.SetProgressInterval(0)
	obs := newRecObserver()
	s.SetObserver(obs)
	if !s.Observed() {
		t.Fatal("Observed() false with an observer attached")
	}
	body := func(report ProgressFunc) (any, error) {
		if report != nil {
			report(Progress{Insts: 5})
			report(Progress{Insts: 10, Final: true})
		}
		return 1, nil
	}
	_, prov, err := s.DoProgress(context.Background(), KeyOf("observed"), "lbl", true, 10, nil, body)
	if err != nil || prov.Outcome != Miss {
		t.Fatalf("prov=%+v err=%v", prov, err)
	}
	countFrames := func() (ids, frames int, lastFinal bool) {
		obs.mu.Lock()
		defer obs.mu.Unlock()
		for _, ps := range obs.progressed {
			ids++
			frames += len(ps)
			lastFinal = ps[len(ps)-1].Final
		}
		return
	}
	ids, frames, lastFinal := countFrames()
	if ids != 1 || frames != 2 || !lastFinal {
		t.Fatalf("observer saw %d frames across %d runs (final=%v), want 2 on 1 run ending Final",
			frames, ids, lastFinal)
	}

	// A cache hit does no work: no new frames appear anywhere.
	_, prov2, err := s.DoProgress(context.Background(), KeyOf("observed"), "lbl", true, 10, nil, body)
	if err != nil || prov2.Outcome != Hit {
		t.Fatalf("second call prov=%+v err=%v", prov2, err)
	}
	if ids, frames, _ := countFrames(); ids != 1 || frames != 2 {
		t.Errorf("cache hit changed the frame record: %d frames across %d runs, want 2 on 1", frames, ids)
	}
}
