package energy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"carf/internal/core"
	"carf/internal/regfile"
)

func spec(entries, width, rd, wr int) regfile.FileSpec {
	return regfile.FileSpec{Name: "t", Entries: entries, WidthBits: width, ReadPorts: rd, WritePorts: wr}
}

func TestBaselineAnchor(t *testing.T) {
	// The paper reports the baseline file at 48.8% of the unlimited
	// file's per-access energy; the calibrated model must land close.
	tech := DefaultTech()
	ratio := tech.BaselineReference().PerAccess / tech.UnlimitedReference().PerAccess
	if ratio < 0.40 || ratio > 0.55 {
		t.Errorf("baseline/unlimited per-access energy = %.3f, want ~0.49", ratio)
	}
}

func TestTable3SubFileEnergies(t *testing.T) {
	// Per-access energies of the content-aware sub-files relative to
	// the unlimited file, compared against the shape of Table 3 at the
	// paper's configuration (d+n=20): simple ~8-16%, short ~2-4%,
	// long ~13-18%.
	tech := DefaultTech()
	unl := tech.UnlimitedReference().PerAccess
	f := core.New(core.DefaultParams())
	for _, fa := range f.Files() {
		r := tech.Estimate(fa.Spec).PerAccess / unl
		var lo, hi float64
		switch fa.Spec.Name {
		case "simple":
			lo, hi = 0.05, 0.20
		case "short":
			lo, hi = 0.01, 0.06
		case "long":
			lo, hi = 0.10, 0.20
		}
		if r < lo || r > hi {
			t.Errorf("%s per-access = %.3f of unlimited, want in [%.2f, %.2f]",
				fa.Spec.Name, r, lo, hi)
		}
	}
}

func TestAccessTimesBelowBaseline(t *testing.T) {
	// Figure 9: every content-aware sub-file is faster than the
	// baseline file.
	tech := DefaultTech()
	base := tech.BaselineReference().AccessTime
	f := core.New(core.DefaultParams())
	for _, fa := range f.Files() {
		at := tech.Estimate(fa.Spec).AccessTime
		if at >= base {
			t.Errorf("%s access time %.0f not below baseline %.0f", fa.Spec.Name, at, base)
		}
	}
	// And the paper claims up to ~15% reduction for the critical
	// (slowest) sub-file.
	var worst float64
	for _, fa := range f.Files() {
		if at := tech.Estimate(fa.Spec).AccessTime; at > worst {
			worst = at
		}
	}
	if r := worst / base; r > 0.95 {
		t.Errorf("critical sub-file at %.3f of baseline access time; expected a clear reduction", r)
	}
}

func TestAreaBelowBaseline(t *testing.T) {
	// Figure 8: the three sub-files together are ~82% of the baseline
	// file's area.
	tech := DefaultTech()
	f := core.New(core.DefaultParams())
	var act []regfile.FileActivity
	act = append(act, f.Files()...)
	org := tech.Organization(act)
	r := org.TotalArea / tech.BaselineReference().Area
	if r < 0.5 || r > 1.0 {
		t.Errorf("content-aware/baseline area = %.3f, want < 1 (paper: 0.82)", r)
	}
}

func TestMonotonicityProperties(t *testing.T) {
	tech := DefaultTech()
	r := rand.New(rand.NewSource(4))
	grow := func() bool {
		entries := 8 + r.Intn(256)
		width := 8 + r.Intn(64)
		rd := 1 + r.Intn(16)
		wr := 1 + r.Intn(8)
		base := tech.Estimate(spec(entries, width, rd, wr))
		more := []regfile.FileSpec{
			spec(entries*2, width, rd, wr),
			spec(entries, width*2, rd, wr),
			spec(entries, width, rd+4, wr),
			spec(entries, width, rd, wr+4),
		}
		for _, m := range more {
			e := tech.Estimate(m)
			if e.Area <= base.Area || e.PerAccess <= base.PerAccess {
				return false
			}
			if e.AccessTime < base.AccessTime {
				return false
			}
		}
		return true
	}
	for i := 0; i < 500; i++ {
		if !grow() {
			t.Fatal("estimate not monotonic in entries/width/ports")
		}
	}
}

func TestCAMPenalty(t *testing.T) {
	tech := DefaultTech()
	s := spec(8, 44, 14, 6)
	plain := tech.Estimate(s)
	s.CAM = true
	cam := tech.Estimate(s)
	if cam.PerAccess <= plain.PerAccess {
		t.Error("CAM search should cost more energy than a decoded access")
	}
	if cam.AccessTime <= plain.AccessTime {
		t.Error("CAM search should be slower than a decoded access")
	}
}

func TestOrganizationAggregation(t *testing.T) {
	tech := DefaultTech()
	act := []regfile.FileActivity{
		{Spec: spec(112, 22, 8, 6), Reads: 100, Writes: 50},
		{Spec: spec(8, 44, 14, 6), Reads: 10, Writes: 5},
	}
	org := tech.Organization(act)
	if len(org.Files) != 2 {
		t.Fatalf("files = %d", len(org.Files))
	}
	if org.TotalAccesses != 165 {
		t.Errorf("total accesses = %d", org.TotalAccesses)
	}
	wantEnergy := org.Files[0].PerAccess*150 + org.Files[1].PerAccess*15
	if diff := org.TotalEnergy - wantEnergy; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("total energy %.3f != %.3f", org.TotalEnergy, wantEnergy)
	}
	if org.WorstTime != org.Files[0].AccessTime && org.WorstTime != org.Files[1].AccessTime {
		t.Error("worst time not taken from a member file")
	}
}

func TestRelativeHelpers(t *testing.T) {
	tech := DefaultTech()
	act := []regfile.FileActivity{{Spec: spec(112, 64, 8, 6), Reads: 10, Writes: 10}}
	ref := []regfile.FileActivity{{Spec: spec(160, 64, 16, 8), Reads: 10, Writes: 10}}
	org, rorg := tech.Organization(act), tech.Organization(ref)
	if r := RelativeEnergy(org, rorg); r <= 0 || r >= 1 {
		t.Errorf("relative energy %.3f out of (0,1)", r)
	}
	if r := RelativeArea(org, tech.UnlimitedReference()); r <= 0 || r >= 1 {
		t.Errorf("relative area %.3f out of (0,1)", r)
	}
	if r := RelativeTime(org, tech.UnlimitedReference()); r <= 0 || r >= 1 {
		t.Errorf("relative time %.3f out of (0,1)", r)
	}
	if RelativeEnergy(org, OrgReport{}) != 0 {
		t.Error("zero reference should yield 0")
	}
}

// TestEnergySweepShape reproduces the d+n trends of Table 3: simple
// grows with d+n, short and long shrink.
func TestEnergySweepShape(t *testing.T) {
	tech := DefaultTech()
	var prevSimple, prevShort, prevLong float64
	for i, dn := range []int{8, 12, 16, 20, 24, 28, 32} {
		p := core.DefaultParams()
		p.DPlusN = dn
		f := core.New(p)
		var simple, short, long float64
		for _, fa := range f.Files() {
			e := tech.Estimate(fa.Spec).PerAccess
			switch fa.Spec.Name {
			case "simple":
				simple = e
			case "short":
				short = e
			case "long":
				long = e
			}
		}
		if i > 0 {
			if simple <= prevSimple {
				t.Errorf("d+n=%d: simple energy did not grow", dn)
			}
			if short >= prevShort {
				t.Errorf("d+n=%d: short energy did not shrink", dn)
			}
			if long >= prevLong {
				t.Errorf("d+n=%d: long energy did not shrink", dn)
			}
		}
		prevSimple, prevShort, prevLong = simple, short, long
	}
}

func TestEstimateQuickProperties(t *testing.T) {
	tech := DefaultTech()
	f := func(e, w, rp, wp uint8) bool {
		s := spec(2+int(e)%200, 1+int(w)%64, 1+int(rp)%16, 1+int(wp)%8)
		est := tech.Estimate(s)
		return est.Area > 0 && est.AccessTime > 0 && est.PerAccess > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
