// Package energy estimates the area, access time, and per-access energy
// of multiported register file arrays, in the style of Rixner et al.
// (HPCA 2000), which the paper uses for its §5 evaluation.
//
// The model is analytical and normalized (no absolute technology units):
// a storage cell grows linearly with the port count in each dimension,
// so cell area is quadratic in ports; wordline length scales with the
// array width and bitline length with the entry count; access time is
// decoder depth plus repeated-wire delay along wordline and bitline; and
// per-access energy is dominated by the switched bitline capacitance.
// Only relative comparisons between organizations are meaningful, which
// is exactly how the paper reports results (everything is normalized to
// the unlimited-resource file).
package energy

import (
	"math"

	"carf/internal/regfile"
)

// Tech holds the model's technology constants, in normalized units.
type Tech struct {
	// CellBase and CellPerPort define the storage cell dimensions:
	// each side measures CellBase + CellPerPort × ports.
	CellBase    float64
	CellPerPort float64

	// Delay coefficients.
	DecodeDelayPerLevel float64 // per decoder level (log2 entries)
	WireDelayPerUnit    float64 // per unit of repeated wordline/bitline

	// Energy coefficients.
	BitlineEnergyPerUnit  float64 // per unit of bitline length, per column
	WordlineEnergyPerUnit float64 // per unit of wordline length
	DecodeEnergyPerLevel  float64
	CAMComparePerBit      float64 // per entry-bit searched in a CAM array
}

// DefaultTech returns the constants calibrated in DESIGN.md §3: the
// baseline file (112×64b, 8R/6W) lands near the paper's anchor of 48.8%
// of the unlimited file's (160×64b, 16R/8W) per-access energy, and the
// sub-file energies of Table 3 fall out within a point or two.
func DefaultTech() Tech {
	return Tech{
		CellBase:              4,
		CellPerPort:           1,
		DecodeDelayPerLevel:   50,
		WireDelayPerUnit:      1,
		BitlineEnergyPerUnit:  1,
		WordlineEnergyPerUnit: 1,
		DecodeEnergyPerLevel:  10,
		CAMComparePerBit:      0.5,
	}
}

// Estimate is the static physical characterization of one array.
type Estimate struct {
	Spec       regfile.FileSpec
	Area       float64
	AccessTime float64
	PerAccess  float64 // energy of one read or write access
}

// Estimate characterizes a register array.
func (t Tech) Estimate(spec regfile.FileSpec) Estimate {
	ports := float64(spec.ReadPorts + spec.WritePorts)
	cell := t.CellBase + t.CellPerPort*ports
	entries := float64(spec.Entries)
	width := float64(spec.WidthBits)

	wordline := width * cell
	bitline := entries * cell
	levels := math.Log2(math.Max(entries, 2))

	// Storage dominates; decoders and sense amps are folded into the
	// cell constants.
	area := entries * width * cell * cell

	delay := t.DecodeDelayPerLevel*levels +
		t.WireDelayPerUnit*(wordline+bitline)

	access := t.BitlineEnergyPerUnit*width*bitline +
		t.WordlineEnergyPerUnit*wordline +
		t.DecodeEnergyPerLevel*levels
	if spec.CAM {
		// An associative search switches every entry's comparators
		// instead of a single decoded wordline.
		access += t.CAMComparePerBit * entries * width * cell
		delay += t.WireDelayPerUnit * bitline // match-line settle
	}

	return Estimate{Spec: spec, Area: area, AccessTime: delay, PerAccess: access}
}

// FileReport pairs an array's static estimate with its dynamic energy.
type FileReport struct {
	Estimate
	Reads       uint64
	Writes      uint64
	TotalEnergy float64
}

// OrgReport characterizes a whole register file organization: the sum of
// its arrays plus total energy for the recorded activity.
type OrgReport struct {
	Files         []FileReport
	TotalArea     float64
	WorstTime     float64 // slowest array bounds the organization
	TotalEnergy   float64
	TotalAccesses uint64
}

// Organization characterizes a register file organization from its
// per-array activity (regfile.Model.Files()).
func (t Tech) Organization(files []regfile.FileActivity) OrgReport {
	var rep OrgReport
	for _, fa := range files {
		est := t.Estimate(fa.Spec)
		accesses := fa.Reads + fa.Writes
		fr := FileReport{
			Estimate:    est,
			Reads:       fa.Reads,
			Writes:      fa.Writes,
			TotalEnergy: est.PerAccess * float64(accesses),
		}
		rep.Files = append(rep.Files, fr)
		rep.TotalArea += est.Area
		rep.TotalEnergy += fr.TotalEnergy
		rep.TotalAccesses += accesses
		if est.AccessTime > rep.WorstTime {
			rep.WorstTime = est.AccessTime
		}
	}
	return rep
}

// UnlimitedReference returns the static estimate of the paper's
// unlimited-resource integer file (160 entries, 64 bits, 16R/8W): the
// normalization anchor for Figures 7–9 and Table 3.
func (t Tech) UnlimitedReference() Estimate {
	return t.Estimate(regfile.FileSpec{
		Name: "unlimited", Entries: 160, WidthBits: 64, ReadPorts: 16, WritePorts: 8,
	})
}

// BaselineReference returns the static estimate of the paper's baseline
// integer file (112 entries, 64 bits, 8R/6W).
func (t Tech) BaselineReference() Estimate {
	return t.Estimate(regfile.FileSpec{
		Name: "baseline", Entries: 112, WidthBits: 64, ReadPorts: 8, WritePorts: 6,
	})
}

// RelativeEnergy normalizes an organization's total energy against a
// reference organization processing the same instruction stream.
func RelativeEnergy(org, ref OrgReport) float64 {
	if ref.TotalEnergy == 0 {
		return 0
	}
	return org.TotalEnergy / ref.TotalEnergy
}

// RelativeArea normalizes total area against a reference estimate.
func RelativeArea(org OrgReport, ref Estimate) float64 {
	if ref.Area == 0 {
		return 0
	}
	return org.TotalArea / ref.Area
}

// RelativeTime normalizes the worst access time against a reference.
func RelativeTime(org OrgReport, ref Estimate) float64 {
	if ref.AccessTime == 0 {
		return 0
	}
	return org.WorstTime / ref.AccessTime
}
