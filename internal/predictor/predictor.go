// Package predictor implements the front-end predictors of Table 1: a
// gshare conditional branch predictor with 14 bits of global history, a
// branch target buffer for taken-branch and jump targets, and a return
// address stack for call/return pairs.
package predictor

import "carf/internal/metrics"

// GshareConfig sizes the conditional predictor.
type GshareConfig struct {
	HistoryBits int // global history length; table has 2^HistoryBits counters
}

// Gshare is a global-history, XOR-indexed array of 2-bit saturating
// counters.
type Gshare struct {
	history uint64
	mask    uint64
	table   []uint8

	predicts uint64
	correct  uint64

	onMispredict func(pc uint64)
}

// SetMispredictObserver installs fn to be called with the branch PC on
// every direction misprediction observed at Update (nil removes it).
func (g *Gshare) SetMispredictObserver(fn func(pc uint64)) { g.onMispredict = fn }

// NewGshare builds a gshare predictor with the given history length.
func NewGshare(cfg GshareConfig) *Gshare {
	if cfg.HistoryBits <= 0 || cfg.HistoryBits > 24 {
		cfg.HistoryBits = 14
	}
	size := 1 << cfg.HistoryBits
	t := make([]uint8, size)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Gshare{mask: uint64(size - 1), table: t}
}

func (g *Gshare) index(pc uint64) uint64 {
	return (pc>>3 ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update records the actual outcome of the branch at pc: it trains the
// counter, shifts the outcome into the global history, and keeps
// accuracy statistics. Callers invoke Predict before Update for each
// dynamic branch.
func (g *Gshare) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	pred := g.table[idx] >= 2
	g.predicts++
	if pred == taken {
		g.correct++
	} else if g.onMispredict != nil {
		g.onMispredict(pc)
	}
	if taken {
		if g.table[idx] < 3 {
			g.table[idx]++
		}
	} else if g.table[idx] > 0 {
		g.table[idx]--
	}
	g.history = g.history<<1 | b2u(taken)
}

// RegisterMetrics registers prediction volume and interval accuracy
// series on reg.
func (g *Gshare) RegisterMetrics(reg *metrics.Registry) {
	predicts := func() float64 { return float64(g.predicts) }
	correct := func() float64 { return float64(g.correct) }
	reg.GaugeFunc("predictor.gshare.predicts", predicts)
	reg.GaugeFunc("predictor.gshare.correct", correct)
	reg.RatioRate("predictor.gshare.accuracy", correct, predicts)
}

// Accuracy returns the fraction of correct direction predictions.
func (g *Gshare) Accuracy() float64 {
	if g.predicts == 0 {
		return 0
	}
	return float64(g.correct) / float64(g.predicts)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	entries []btbEntry
	mask    uint64
	hits    uint64
	lookups uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// NewBTB builds a BTB with the given number of entries (rounded up to a
// power of two).
func NewBTB(entries int) *BTB {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &BTB{entries: make([]btbEntry, n), mask: uint64(n - 1)}
}

// Lookup returns the predicted target for the control instruction at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.lookups++
	e := b.entries[pc>>3&b.mask]
	if e.valid && e.tag == pc {
		b.hits++
		return e.target, true
	}
	return 0, false
}

// Insert records the actual target of the control instruction at pc.
func (b *BTB) Insert(pc, target uint64) {
	b.entries[pc>>3&b.mask] = btbEntry{tag: pc, target: target, valid: true}
}

// RegisterMetrics registers lookup volume and interval hit-rate series
// on reg.
func (b *BTB) RegisterMetrics(reg *metrics.Registry) {
	lookups := func() float64 { return float64(b.lookups) }
	hits := func() float64 { return float64(b.hits) }
	reg.GaugeFunc("predictor.btb.lookups", lookups)
	reg.GaugeFunc("predictor.btb.hits", hits)
	reg.RatioRate("predictor.btb.hit_rate", hits, lookups)
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// RAS is a fixed-depth return address stack. Overflow wraps (oldest
// entries are lost), underflow returns no prediction.
type RAS struct {
	stack []uint64
	top   int // number of live entries, up to cap
}

// NewRAS builds a return address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		depth = 16
	}
	return &RAS{stack: make([]uint64, 0, depth)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	if len(r.stack) == cap(r.stack) {
		copy(r.stack, r.stack[1:])
		r.stack[len(r.stack)-1] = addr
		return
	}
	r.stack = append(r.stack, addr)
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	addr = r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return addr, true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return len(r.stack) }
