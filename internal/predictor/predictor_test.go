package predictor

import "testing"

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	g := NewGshare(GshareConfig{HistoryBits: 14})
	pc := uint64(0x400100)
	// The first ~14 iterations walk new history patterns (each index
	// starts at weakly-not-taken), so measure a long stream.
	for i := 0; i < 500; i++ {
		g.Predict(pc)
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("did not learn an always-taken branch")
	}
	if g.Accuracy() < 0.95 {
		t.Errorf("accuracy %v on trivial stream", g.Accuracy())
	}
}

func TestGshareLearnsAlternatingWithHistory(t *testing.T) {
	g := NewGshare(GshareConfig{HistoryBits: 14})
	pc := uint64(0x400200)
	// T,N,T,N... is perfectly predictable with one bit of history once
	// the counters warm up.
	taken := true
	var correctTail int
	for i := 0; i < 400; i++ {
		pred := g.Predict(pc)
		if i >= 200 && pred == taken {
			correctTail++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correctTail < 190 {
		t.Errorf("alternating branch: %d/200 correct in tail", correctTail)
	}
}

func TestGshareDefaultConfig(t *testing.T) {
	g := NewGshare(GshareConfig{})
	if len(g.table) != 1<<14 {
		t.Errorf("default table size %d, want 2^14", len(g.table))
	}
	if g.Accuracy() != 0 {
		t.Error("idle accuracy should be 0")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(2048)
	if _, ok := b.Lookup(0x400000); ok {
		t.Error("cold BTB lookup should miss")
	}
	b.Insert(0x400000, 0x400100)
	tgt, ok := b.Lookup(0x400000)
	if !ok || tgt != 0x400100 {
		t.Errorf("lookup = %#x,%v", tgt, ok)
	}
	// Aliasing entry evicts (direct-mapped): same index, different tag.
	alias := uint64(0x400000) + 2048*8
	b.Insert(alias, 0x1234)
	if _, ok := b.Lookup(0x400000); ok {
		t.Error("aliased entry should have been displaced")
	}
	if b.HitRate() <= 0 {
		t.Error("hit rate should be positive")
	}
}

func TestBTBRoundsToPowerOfTwo(t *testing.T) {
	b := NewBTB(1000)
	if len(b.entries) != 1024 {
		t.Errorf("entries = %d, want 1024", len(b.entries))
	}
}

func TestRASLifo(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should not predict")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // drops 1
	if r.Depth() != 2 {
		t.Fatalf("depth %d", r.Depth())
	}
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("top = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("next = %d, want 2", v)
	}
}

func TestRASDefaultDepth(t *testing.T) {
	r := NewRAS(0)
	for i := 0; i < 16; i++ {
		r.Push(uint64(i))
	}
	if r.Depth() != 16 {
		t.Errorf("default depth = %d, want 16", r.Depth())
	}
}
