// Package fleet is the multi-process sweep driver: it divides one
// study's experiment list among N worker processes sharing a single
// store directory, and merges their results back in suite order so the
// rendered output is byte-identical with a serial run.
//
// Coordination is file-based and lives inside the store directory the
// workers already share — no sockets, no coordinator service:
//
//   - The parent creates a shard directory (sweeps/<id> under the store
//     root) and re-executes its own binary N times in worker mode.
//   - Workers walk the experiment list in suite order and claim work
//     with <name>.claim files (O_CREAT|O_EXCL — the same exactly-one-
//     winner primitive the store's cross-process leases use, one level
//     up: leases dedup *simulations*, claims shard *experiments*).
//   - A worker that wins a claim runs the experiment and writes
//     <name>.json (rendered text + per-experiment scheduler counters)
//     or <name>.err; either way the claim stays on disk, so no other
//     worker re-runs it.
//   - After all workers exit, the parent sweeps the list once more: an
//     experiment with no result (its worker crashed after claiming, or
//     no worker reached it) is run in-process. This is crash recovery
//     at the experiment level; the store's lease takeover handles it at
//     the simulation level below.
//   - Below the claims, every simulation still goes through the shared
//     scheduler + store, so two workers whose experiments overlap (the
//     suite's configs do) share results via disk hits and peer-lease
//     waits instead of duplicating them.
//
// The package is mechanism only: it never imports the experiment
// runner. The command supplies a run callback and whatever argv its
// worker mode needs.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Result is one experiment's outcome as recorded by the worker that ran
// it — everything the parent needs to render the suite block and the
// per-experiment activity trailer.
type Result struct {
	Name           string  `json:"name"`
	Text           string  `json:"text"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	// Sched carries the experiment's own scheduler counters (the
	// command's stats type, round-tripped as JSON so fleet stays
	// independent of it).
	Sched json.RawMessage `json:"sched,omitempty"`
}

// Summary is one worker's whole-process accounting, written as
// worker-<k>.json when the worker exits cleanly. The parent sums these
// (plus its own in-process stats) into the combined trailer, which is
// how "zero duplicate simulations" becomes checkable from the outside.
type Summary struct {
	Worker      int             `json:"worker"`
	PID         int             `json:"pid"`
	Experiments []string        `json:"experiments"` // claims this worker won, in order
	WallSeconds float64         `json:"wall_seconds"`
	Sched       json.RawMessage `json:"sched,omitempty"`
	Store       json.RawMessage `json:"store,omitempty"`
}

// Shard is one sweep's coordination directory.
type Shard struct {
	Dir string
}

// NewShard creates a fresh shard directory under root (the store
// directory, conventionally root/sweeps/<unique>). The parent removes
// it with Cleanup after a successful merge; a failed sweep leaves it
// behind for post-mortems.
func NewShard(root string) (*Shard, error) {
	base := filepath.Join(root, "sweeps")
	if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: cannot create sweep root: %w", err)
	}
	dir, err := os.MkdirTemp(base, "sweep-")
	if err != nil {
		return nil, fmt.Errorf("fleet: cannot create shard dir: %w", err)
	}
	return &Shard{Dir: dir}, nil
}

// OpenShard wraps an existing shard directory (worker side).
func OpenShard(dir string) *Shard { return &Shard{Dir: dir} }

// Cleanup removes the shard directory.
func (sh *Shard) Cleanup() { os.RemoveAll(sh.Dir) }

// safeName guards against experiment names escaping the shard dir.
func safeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}

func (sh *Shard) claimPath(name string) string {
	return filepath.Join(sh.Dir, safeName(name)+".claim")
}
func (sh *Shard) resultPath(name string) string {
	return filepath.Join(sh.Dir, safeName(name)+".json")
}
func (sh *Shard) errPath(name string) string {
	return filepath.Join(sh.Dir, safeName(name)+".err")
}

// Claim attempts to take ownership of one experiment. Exactly one
// caller across all processes sharing the shard wins each name.
func (sh *Shard) Claim(name string) bool {
	f, err := os.OpenFile(sh.claimPath(name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	f.Close()
	return true
}

// WriteResult records a claimed experiment's outcome (atomically:
// temp + rename, so the parent never reads a half-written result).
func (sh *Shard) WriteResult(r Result) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return atomicWrite(sh.resultPath(r.Name), b)
}

// WriteError records a claimed experiment's failure. The claim is left
// in place: a deterministic failure re-run N times is N failures.
func (sh *Shard) WriteError(name string, runErr error) error {
	return atomicWrite(sh.errPath(name), []byte(runErr.Error()+"\n"))
}

// Load retrieves one experiment's recorded outcome: (result, ok),
// or an error if the worker recorded a failure.
func (sh *Shard) Load(name string) (Result, bool, error) {
	if b, err := os.ReadFile(sh.errPath(name)); err == nil {
		return Result{}, false, fmt.Errorf("fleet: worker reported: %s", strings.TrimSpace(string(b)))
	}
	b, err := os.ReadFile(sh.resultPath(name))
	if err != nil {
		return Result{}, false, nil // not run (claim orphaned by a crash, or never claimed)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return Result{}, false, nil // torn/foreign file: treat as not run
	}
	return r, true, nil
}

// WriteSummary records a worker's whole-process accounting.
func (sh *Shard) WriteSummary(s Summary) error {
	b, err := json.Marshal(s)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(sh.Dir, fmt.Sprintf("worker-%d.json", s.Worker)), b)
}

// Summaries loads every worker summary present, by worker index.
func (sh *Shard) Summaries() ([]Summary, error) {
	matches, err := filepath.Glob(filepath.Join(sh.Dir, "worker-*.json"))
	if err != nil {
		return nil, err
	}
	var out []Summary
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		var s Summary
		if json.Unmarshal(b, &s) == nil {
			out = append(out, s)
		}
	}
	return out, nil
}

// Work is the worker-side loop: walk names in suite order, claim what
// is unclaimed, run it, record the outcome. Returns the names this
// worker ran. A failed experiment is recorded and does not stop the
// worker — the parent decides what a failure means for the sweep.
func (sh *Shard) Work(ctx context.Context, names []string, run func(name string) (Result, error)) ([]string, error) {
	var ran []string
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return ran, err
		}
		if !sh.Claim(name) {
			continue
		}
		ran = append(ran, name)
		r, err := run(name)
		if err != nil {
			if werr := sh.WriteError(name, err); werr != nil {
				return ran, werr
			}
			continue
		}
		r.Name = name
		if err := sh.WriteResult(r); err != nil {
			return ran, err
		}
	}
	return ran, nil
}

// Spawn re-executes this binary n times with the given argv (one worker
// per process, worker index appended by indexFlag when non-empty) and
// waits for all of them. Worker stderr is forwarded to stderr with a
// per-worker prefix handled by the workers' own log labels; stdout is
// discarded (workers render nothing — results travel through the
// shard). Returns per-worker errors (nil entries for clean exits).
func Spawn(ctx context.Context, n int, args []string, indexFlag string, env []string, stderr io.Writer) []error {
	self, err := os.Executable()
	if err != nil {
		errs := make([]error, n)
		for i := range errs {
			errs[i] = fmt.Errorf("fleet: cannot locate own executable: %w", err)
		}
		return errs
	}
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			argv := args
			if indexFlag != "" {
				argv = append(append([]string{}, args...), indexFlag, fmt.Sprint(i))
			}
			cmd := exec.CommandContext(ctx, self, argv...)
			cmd.Stdout = io.Discard
			cmd.Stderr = stderr
			cmd.Env = append(os.Environ(), env...)
			errs[i] = cmd.Run()
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return errs
}

// atomicWrite writes b to path via a temporary in the same directory
// and rename, mirroring the store's blob discipline.
func atomicWrite(path string, b []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
