package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestClaimIsExclusive(t *testing.T) {
	sh, err := NewShard(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Cleanup()

	// Many concurrent claimants, one winner per name — the property the
	// whole sharding scheme rests on.
	const claimants = 16
	var wins sync.Map
	var wg sync.WaitGroup
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sh.Claim("table2") {
				wins.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	n := 0
	wins.Range(func(any, any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("%d claimants won %q, want exactly 1", n, "table2")
	}
	if sh.Claim("table3") != true {
		t.Error("claim on an unrelated name denied")
	}
}

func TestWorkShardsInSuiteOrder(t *testing.T) {
	root := t.TempDir()
	sh, err := NewShard(root)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d"}

	// Pre-claim "b" as a peer worker would; this worker must skip it.
	peer := OpenShard(sh.Dir)
	if !peer.Claim("b") {
		t.Fatal("peer pre-claim failed")
	}

	ran, err := sh.Work(context.Background(), names, func(name string) (Result, error) {
		if name == "c" {
			return Result{}, errors.New("boom")
		}
		return Result{Text: "out:" + name, ElapsedSeconds: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "c", "d"}
	if fmt.Sprint(ran) != fmt.Sprint(want) {
		t.Fatalf("ran = %v, want %v (suite order, skipping the peer's claim)", ran, want)
	}

	// "a" and "d" have results; "c" is a recorded failure; "b" has
	// neither (its worker never finished) — Load's three outcomes.
	if r, ok, err := sh.Load("a"); !ok || err != nil || r.Text != "out:a" {
		t.Errorf("Load(a) = %+v, %v, %v", r, ok, err)
	}
	if _, ok, err := sh.Load("c"); ok || err == nil {
		t.Errorf("Load(c): ok=%v err=%v, want recorded failure", ok, err)
	}
	if _, ok, err := sh.Load("b"); ok || err != nil {
		t.Errorf("Load(b): ok=%v err=%v, want not-run (orphaned claim)", ok, err)
	}
}

func TestLoadToleratesTornResult(t *testing.T) {
	sh, err := NewShard(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A torn/foreign result file must read as "not run", so the parent's
	// recovery sweep re-runs the experiment instead of crashing the merge.
	if err := os.WriteFile(filepath.Join(sh.Dir, "x.json"), []byte(`{"name":"x","te`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sh.Load("x"); ok || err != nil {
		t.Errorf("Load on torn file: ok=%v err=%v, want not-run", ok, err)
	}
}

func TestWriteResultIsAtomic(t *testing.T) {
	sh, err := NewShard(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.WriteResult(Result{Name: "r", Text: "body"}); err != nil {
		t.Fatal(err)
	}
	// No temp files may survive the write.
	tmps, _ := filepath.Glob(filepath.Join(sh.Dir, "*.tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("leftover temp files: %v", tmps)
	}
	if r, ok, err := sh.Load("r"); !ok || err != nil || r.Text != "body" {
		t.Errorf("Load(r) = %+v, %v, %v", r, ok, err)
	}
}

func TestSafeNameCannotEscapeShard(t *testing.T) {
	sh, err := NewShard(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hostile := "../../etc/passwd"
	if !sh.Claim(hostile) {
		t.Fatal("claim failed")
	}
	matches, _ := filepath.Glob(filepath.Join(sh.Dir, "*.claim"))
	if len(matches) != 1 {
		t.Fatalf("claim landed outside the shard dir: %v", matches)
	}
}

func TestSummariesRoundTrip(t *testing.T) {
	sh, err := NewShard(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sh.WriteSummary(Summary{Worker: i, PID: 100 + i, Experiments: []string{fmt.Sprint(i)}, WallSeconds: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sh.Summaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Summaries = %d entries, want 3", len(got))
	}
}

func TestWorkStopsOnCanceledContext(t *testing.T) {
	sh, err := NewShard(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran, err := sh.Work(ctx, []string{"a", "b"}, func(string) (Result, error) {
		t.Error("ran an experiment under a canceled context")
		return Result{}, nil
	})
	if err == nil || len(ran) != 0 {
		t.Errorf("Work under canceled ctx: ran=%v err=%v, want none + ctx error", ran, err)
	}
}
