package regfile

import (
	"strings"
	"testing"
)

func TestAllocFreeCycle(t *testing.T) {
	c := NewConventional("t", 4, 2, 2)
	tags := map[int]bool{}
	for i := 0; i < 4; i++ {
		tag, ok := c.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if tags[tag] {
			t.Fatalf("tag %d allocated twice", tag)
		}
		tags[tag] = true
	}
	if _, ok := c.Alloc(); ok {
		t.Error("alloc from empty free list should fail")
	}
	for tag := range tags {
		c.Free(tag)
	}
	if c.FreeTags() != 4 {
		t.Errorf("free tags = %d, want 4", c.FreeTags())
	}
}

func TestDoubleFreeIsLogged(t *testing.T) {
	c := NewConventional("t", 2, 1, 1)
	tag, _ := c.Alloc()
	c.Free(tag)
	c.Free(tag)
	faults := c.Faults()
	if len(faults) == 0 {
		t.Fatal("double free left no fault-log entry")
	}
	if !strings.Contains(faults[0], "double free") {
		t.Errorf("fault log = %q, want a double-free report", faults[0])
	}
}

func TestReadWriteAccounting(t *testing.T) {
	c := NewConventional("t", 8, 3, 2)
	tag, _ := c.Alloc()
	if !c.TryWrite(tag, 42) {
		t.Fatal("conventional write should never stall")
	}
	if typ := c.Read(tag); typ != TypeNone {
		t.Errorf("conventional read type = %v", typ)
	}
	v, ok := c.ReadValue(tag)
	if !ok || v != 42 {
		t.Errorf("ReadValue = %d,%v", v, ok)
	}
	files := c.Files()
	if len(files) != 1 {
		t.Fatalf("files = %d", len(files))
	}
	if files[0].Reads != 1 || files[0].Writes != 1 {
		t.Errorf("activity = %+v", files[0])
	}
	if files[0].Spec.WidthBits != 64 || files[0].Spec.ReadPorts != 3 || files[0].Spec.WritePorts != 2 {
		t.Errorf("spec = %+v", files[0].Spec)
	}
}

func TestReadValueUnwritten(t *testing.T) {
	c := NewConventional("t", 2, 1, 1)
	tag, _ := c.Alloc()
	if _, ok := c.ReadValue(tag); ok {
		t.Error("unwritten tag should not return a value")
	}
	c.Free(tag)
	if _, ok := c.ReadValue(tag); ok {
		t.Error("freed tag should not return a value")
	}
}

func TestPaperConfigurations(t *testing.T) {
	b := Baseline()
	if b.NumTags() != 112 {
		t.Errorf("baseline entries = %d, want 112", b.NumTags())
	}
	spec := b.Files()[0].Spec
	if spec.ReadPorts != 8 || spec.WritePorts != 6 {
		t.Errorf("baseline ports = %d/%d, want 8/6", spec.ReadPorts, spec.WritePorts)
	}
	u := Unlimited()
	if u.NumTags() != 160 {
		t.Errorf("unlimited entries = %d, want 160", u.NumTags())
	}
	uspec := u.Files()[0].Spec
	if uspec.ReadPorts != 16 || uspec.WritePorts != 8 {
		t.Errorf("unlimited ports = %d/%d, want 16/8", uspec.ReadPorts, uspec.WritePorts)
	}
}

func TestConventionalStages(t *testing.T) {
	c := Baseline()
	if c.ReadStages() != 1 || c.WriteStages() != 1 {
		t.Error("conventional file must have single-stage read and write")
	}
	if c.LongStall(8) {
		t.Error("conventional file must never long-stall")
	}
}

func TestResetRestoresCapacity(t *testing.T) {
	c := NewConventional("t", 3, 1, 1)
	c.Alloc()
	c.Alloc()
	c.Read(0)
	c.Reset()
	if c.FreeTags() != 3 {
		t.Errorf("post-reset free tags = %d", c.FreeTags())
	}
	if c.Files()[0].Reads != 0 {
		t.Error("post-reset stats not cleared")
	}
}

func TestValueTypeStrings(t *testing.T) {
	for typ, want := range map[ValueType]string{
		TypeSimple: "simple", TypeShort: "short", TypeLong: "long", TypeNone: "none",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
}
