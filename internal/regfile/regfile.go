// Package regfile defines the integer physical register file abstraction
// the pipeline renames into, plus the two conventional organizations the
// paper compares against: the baseline file (112 entries, 8R/6W ports)
// and the unlimited-resource file (160 entries, 16R/8W ports).
//
// The content-aware organization — the paper's contribution — implements
// the same Model interface in internal/core.
package regfile

import (
	"fmt"

	"carf/internal/harden"
	"carf/internal/metrics"
)

// ValueType classifies a stored value per the paper's taxonomy (§2):
// simple values sign-extend from the low d+n bits, short values share
// their high-order bits with a similarity group, and long values have no
// exploitable partial locality.
type ValueType uint8

const (
	TypeSimple ValueType = iota
	TypeShort
	TypeLong
	TypeNone // unwritten / conventional file (no classification)
)

// String implements fmt.Stringer.
func (t ValueType) String() string {
	switch t {
	case TypeSimple:
		return "simple"
	case TypeShort:
		return "short"
	case TypeLong:
		return "long"
	default:
		return "none"
	}
}

// WriteFunc observes one completed register-file write: the value class
// the write was stored as (TypeNone for files that do not classify) and
// whether it was a pseudo-deadlock overflow spill. Failed TryWrite
// attempts (Recovery State) are not reported — only writes that landed.
type WriteFunc func(typ ValueType, spilled bool)

// WriteReporter is implemented by register file models that can report
// write outcomes to a profiler.
type WriteReporter interface {
	SetWriteReporter(fn WriteFunc)
}

// FileSpec describes one physical register array for the area/delay/
// energy model.
type FileSpec struct {
	Name       string
	Entries    int
	WidthBits  int
	ReadPorts  int
	WritePorts int
	CAM        bool // fully-associative lookup (CAM short-file variant)
}

// FileActivity pairs a register array with its access counts.
type FileActivity struct {
	Spec   FileSpec
	Reads  uint64
	Writes uint64
}

// Model is an integer physical register file organization as seen by the
// pipeline: a tag allocator plus timing (extra read/write stages) and
// access accounting. Writes carry the 64-bit result value so that
// content-aware organizations can classify it.
type Model interface {
	// Name identifies the organization in reports.
	Name() string
	// NumTags returns the number of rename tags (physical registers).
	NumTags() int
	// Alloc claims a destination tag at rename; ok is false when the
	// file is out of tags (rename stalls).
	Alloc() (tag int, ok bool)
	// Free releases a tag when the redefining instruction commits.
	Free(tag int)
	// ReadStages is the number of operand-read pipeline stages (1 for
	// conventional files, 2 for the content-aware file: RF1+RF2).
	ReadStages() int
	// WriteStages is the number of write-back stages (1 conventional,
	// 2 content-aware: WR1 classify + WR2 write).
	WriteStages() int
	// Read performs one operand read of tag for accounting and returns
	// the stored value's type.
	Read(tag int) ValueType
	// TryWrite performs write-back of value to tag. It returns false on
	// a structural hazard (no free long register: the paper's Recovery
	// State); the pipeline retries next cycle.
	TryWrite(tag int, value uint64) bool
	// ForceWrite performs a write that cannot fail (hard pseudo-deadlock
	// resolution). Conventional files never fail, so it equals TryWrite.
	ForceWrite(tag int, value uint64)
	// TypeOf reports the current value type of tag without accounting.
	TypeOf(tag int) ValueType
	// ReadValue reconstructs the stored 64-bit value of tag (used by
	// verification and the oracle; not an energy-counted access).
	ReadValue(tag int) (uint64, bool)
	// NoteAddress offers a load/store effective address computed in the
	// AGU stage; the content-aware file may install it in the Short file.
	NoteAddress(addr uint64)
	// OnRobInterval is called each time a full ROB's worth of
	// instructions has committed, with the retirement-map tags
	// (architecturally live registers). Drives Short-file reclamation.
	OnRobInterval(archTags []int)
	// LongStall reports whether issue must stall because the number of
	// free long registers has fallen to the threshold (pseudo-deadlock
	// prevention, §3.2).
	LongStall(threshold int) bool
	// Files returns per-array access activity for the energy model.
	Files() []FileActivity
	// Reset clears all state and statistics.
	Reset()
}

// Conventional is a flat, full-width physical register file. It backs
// both the baseline and unlimited configurations.
type Conventional struct {
	name    string
	spec    FileSpec
	free    []int
	inUse   []bool
	values  []uint64
	wrote   []bool
	reads   uint64
	writes  uint64
	faults  []string
	writeFn WriteFunc
}

// SetWriteReporter implements WriteReporter (nil removes the reporter).
func (c *Conventional) SetWriteReporter(fn WriteFunc) { c.writeFn = fn }

// NewConventional builds a flat 64-bit physical register file.
func NewConventional(name string, entries, readPorts, writePorts int) *Conventional {
	c := &Conventional{
		name: name,
		spec: FileSpec{
			Name: name, Entries: entries, WidthBits: 64,
			ReadPorts: readPorts, WritePorts: writePorts,
		},
	}
	c.Reset()
	return c
}

// Baseline returns the paper's baseline integer file: 112 registers with
// 8 read and 6 write ports (§4).
func Baseline() *Conventional { return NewConventional("baseline", 112, 8, 6) }

// Unlimited returns the unlimited-resource reference file: ROB size plus
// the 32 architectural registers = 160 entries, 2x8 read and 8 write
// ports (§4).
func Unlimited() *Conventional { return NewConventional("unlimited", 160, 16, 8) }

// Name implements Model.
func (c *Conventional) Name() string { return c.name }

// NumTags implements Model.
func (c *Conventional) NumTags() int { return c.spec.Entries }

// Alloc implements Model.
func (c *Conventional) Alloc() (int, bool) {
	if len(c.free) == 0 {
		return 0, false
	}
	tag := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.inUse[tag] = true
	return tag, true
}

// Free implements Model. A double free is recorded in the fault log
// (surfaced by the hardening layer's invariant sweeps and at the end of
// a run) instead of corrupting the free list.
func (c *Conventional) Free(tag int) {
	if tag < 0 || tag >= c.spec.Entries || !c.inUse[tag] {
		c.faults = append(c.faults, fmt.Sprintf("regfile %s: double free of tag %d", c.name, tag))
		return
	}
	c.inUse[tag] = false
	c.wrote[tag] = false
	c.free = append(c.free, tag)
}

// ReadStages implements Model.
func (c *Conventional) ReadStages() int { return 1 }

// WriteStages implements Model.
func (c *Conventional) WriteStages() int { return 1 }

// Read implements Model.
func (c *Conventional) Read(tag int) ValueType {
	c.reads++
	return TypeNone
}

// TryWrite implements Model.
func (c *Conventional) TryWrite(tag int, value uint64) bool {
	c.writes++
	c.values[tag] = value
	c.wrote[tag] = true
	if c.writeFn != nil {
		c.writeFn(TypeNone, false)
	}
	return true
}

// ForceWrite implements Model (conventional writes never fail).
func (c *Conventional) ForceWrite(tag int, value uint64) { c.TryWrite(tag, value) }

// TypeOf implements Model.
func (c *Conventional) TypeOf(tag int) ValueType { return TypeNone }

// ReadValue implements Model.
func (c *Conventional) ReadValue(tag int) (uint64, bool) {
	if !c.inUse[tag] || !c.wrote[tag] {
		return 0, false
	}
	return c.values[tag], true
}

// NoteAddress implements Model (no-op for conventional files).
func (c *Conventional) NoteAddress(addr uint64) {}

// OnRobInterval implements Model (no-op for conventional files).
func (c *Conventional) OnRobInterval(archTags []int) {}

// LongStall implements Model (conventional files never long-stall).
func (c *Conventional) LongStall(threshold int) bool { return false }

// Files implements Model.
func (c *Conventional) Files() []FileActivity {
	return []FileActivity{{Spec: c.spec, Reads: c.reads, Writes: c.writes}}
}

// FreeTags returns the number of unallocated tags (tests, stats).
func (c *Conventional) FreeTags() int { return len(c.free) }

// Faults implements harden.FaultReporter: internal faults recorded
// instead of panicking (double frees).
func (c *Conventional) Faults() []string { return c.faults }

// CheckInvariants implements harden.Checker: free-list accounting for
// the flat file. Every tag is either allocated or on the free list,
// exactly once.
func (c *Conventional) CheckInvariants() []harden.Violation {
	var vs []harden.Violation
	seen := make([]bool, c.spec.Entries)
	for _, tag := range c.free {
		if tag < 0 || tag >= c.spec.Entries {
			vs = append(vs, harden.Violation{Check: "freelist",
				Detail: fmt.Sprintf("%s: free-list tag %d out of range", c.name, tag)})
			continue
		}
		if seen[tag] {
			vs = append(vs, harden.Violation{Check: "freelist",
				Detail: fmt.Sprintf("%s: tag %d on the free list twice", c.name, tag)})
		}
		seen[tag] = true
		if c.inUse[tag] {
			vs = append(vs, harden.Violation{Check: "freelist",
				Detail: fmt.Sprintf("%s: tag %d both in use and on the free list", c.name, tag)})
		}
	}
	inUse := 0
	for _, u := range c.inUse {
		if u {
			inUse++
		}
	}
	if inUse+len(c.free) != c.spec.Entries {
		vs = append(vs, harden.Violation{Check: "freelist",
			Detail: fmt.Sprintf("%s: %d in use + %d free != %d entries", c.name, inUse, len(c.free), c.spec.Entries)})
	}
	return vs
}

// RegisterMetrics registers the file's occupancy and access-traffic
// series on reg.
func (c *Conventional) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("regfile.occupancy", func() float64 { return float64(c.spec.Entries - len(c.free)) })
	reg.GaugeFunc("regfile.reads", func() float64 { return float64(c.reads) })
	reg.GaugeFunc("regfile.writes", func() float64 { return float64(c.writes) })
}

// Reset implements Model.
func (c *Conventional) Reset() {
	n := c.spec.Entries
	c.free = make([]int, n)
	for i := range c.free {
		c.free[i] = n - 1 - i // pop order: 0, 1, 2, ...
	}
	c.inUse = make([]bool, n)
	c.values = make([]uint64, n)
	c.wrote = make([]bool, n)
	c.reads, c.writes = 0, 0
	c.faults = nil
}
