package experiments

import (
	"sync"
	"testing"

	"carf/internal/harden"
	"carf/internal/pipeline"
	"carf/internal/sched"
)

// determinismExperiments cover the distinct harvesting paths at a scale
// small enough to run many configurations: plain suite runs (table2),
// oracle-sampled runs (fig2), and the profiled CPI grid (cpistack).
var determinismExperiments = []string{"table2", "fig2", "cpistack"}

const determinismScale = 0.04

// render runs the experiment on an isolated scheduler under opt and
// returns the rendered text.
func render(t *testing.T, name string, opt Options) string {
	t.Helper()
	r, err := Run(name, opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return r.Render()
}

// TestRenderDeterminism is the PR's correctness gate: the rendered
// output of an experiment must not depend on the worker-pool size, on
// whether results come from fresh simulations or the memo cache, or on
// memoization being enabled at all.
func TestRenderDeterminism(t *testing.T) {
	for _, name := range determinismExperiments {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := sched.New(1)
			serial.DisableMemo()
			want := render(t, name, Options{Scale: determinismScale, Sched: serial})

			wide := sched.New(8)
			cold := render(t, name, Options{Scale: determinismScale, Sched: wide})
			if cold != want {
				t.Errorf("cold run at pool 8 differs from memo-off serial run:\n--- serial ---\n%s\n--- pool 8 ---\n%s", want, cold)
			}
			warm := render(t, name, Options{Scale: determinismScale, Sched: wide})
			if warm != want {
				t.Errorf("warm (all-hit) run differs from memo-off serial run:\n--- serial ---\n%s\n--- warm ---\n%s", want, warm)
			}
			if st := wide.Stats(); st.Misses == 0 || st.Hits == 0 {
				t.Errorf("cold+warm pair exercised misses=%d hits=%d; want both nonzero", st.Misses, st.Hits)
			}
		})
	}
}

// TestConcurrentExperimentsShareScheduler runs two experiments with an
// overlapping simulation set concurrently on one scheduler and checks
// both that outputs match their isolated runs and that sharing happened
// (the overlap was served by the cache or by joining in-flight runs).
func TestConcurrentExperimentsShareScheduler(t *testing.T) {
	names := []string{"table2", "fig5"} // both simulate the suites on baseline
	want := make([]string, len(names))
	for i, name := range names {
		want[i] = render(t, name, Options{Scale: determinismScale, Sched: sched.New(1)})
	}

	shared := sched.New(4)
	got := make([]string, len(names))
	err := sched.ForEach(len(names), func(i int) error {
		r, err := Run(names[i], Options{Scale: determinismScale, Sched: shared})
		if err != nil {
			return err
		}
		got[i] = r.Render()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if got[i] != want[i] {
			t.Errorf("%s: concurrent shared-scheduler output differs from isolated run", name)
		}
	}
	if st := shared.Stats(); st.Hits+st.Joins == 0 {
		t.Errorf("experiments with overlapping runs shared nothing (stats %+v)", st)
	}
}

// TestRunKeySeparation checks that every input that changes a run's
// result changes its memoization key — the cache must never serve a run
// from a different configuration.
func TestRunKeySeparation(t *testing.T) {
	base := Options{Scale: 0.25, SamplePeriod: 128}
	cfg := pipeline.DefaultConfig()
	keys := map[sched.Key]string{}
	add := func(label string, k sched.Key) {
		t.Helper()
		if prev, ok := keys[k]; ok {
			t.Errorf("key collision: %q and %q digest identically", prev, label)
		}
		keys[k] = label
	}

	add("base", runKey("sim", base, "qsort", "baseline", cfg))
	add("kind", runKey("oracle", base, "qsort", "baseline", cfg))
	add("kernel", runKey("sim", base, "crc64", "baseline", cfg))
	add("spec", runKey("sim", base, "qsort", "unlimited", cfg))

	scaled := base
	scaled.Scale = 0.5
	add("scale", runKey("sim", scaled, "qsort", "baseline", cfg))

	ported := cfg
	ported.PortContention = true
	add("config", runKey("sim", base, "qsort", "baseline", ported))

	hardened := cfg
	hardened.Harden = harden.Options{Lockstep: true, SweepEvery: 64, WatchdogAfter: 20000}
	add("harden", runKey("sim", base, "qsort", "baseline", hardened))

	add("sampler 128", runKey("oracle", base, "qsort", "baseline", cfg, []int{8}, 128))
	add("sampler 64", runKey("oracle", base, "qsort", "baseline", cfg, []int{8}, 64))
	add("sampler ds", runKey("oracle", base, "qsort", "baseline", cfg, []int{8, 12}, 128))

	add("fault seed 1", sched.KeyOf("fault", "hashprobe", 0.25, "carf", hardened, harden.Fault{Cycle: 2000, Seed: 1}))
	add("fault seed 2", sched.KeyOf("fault", "hashprobe", 0.25, "carf", hardened, harden.Fault{Cycle: 2000, Seed: 2}))

	// Parallel and Sched are execution knobs, not result inputs: they
	// must NOT change the key, or identical runs would stop sharing.
	par := base
	par.Parallel = 8
	par.Sched = sched.New(2)
	if runKey("sim", par, "qsort", "baseline", cfg) != runKey("sim", base, "qsort", "baseline", cfg) {
		t.Error("Parallel/Sched changed the memoization key; identical runs would not share")
	}
}

// TestProgressObservationDeterminism extends the correctness gate to
// the progress plane: rendered output must be byte-identical with a
// progress callback attached or not, frames must be monotonic per run,
// and memo-off/memo-on observation must agree. Run keys digest the same
// inputs either way (the hook is installed out-of-band), so a cache
// populated by an unobserved run serves an observed one.
func TestProgressObservationDeterminism(t *testing.T) {
	const name = "table2"
	want := render(t, name, Options{Scale: determinismScale, Sched: sched.New(4)})

	s := sched.New(4)
	s.SetProgressInterval(0)
	var mu sync.Mutex
	frames := map[string][]sched.Progress{}
	got := render(t, name, Options{Scale: determinismScale, Sched: s,
		OnProgress: func(label string, p sched.Progress) {
			mu.Lock()
			frames[label] = append(frames[label], p)
			mu.Unlock()
		}})
	if got != want {
		t.Errorf("observed run differs from unobserved run:\n--- unobserved ---\n%s\n--- observed ---\n%s", want, got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(frames) == 0 {
		t.Fatal("no progress frames from a cold observed run")
	}
	for label, ps := range frames {
		if !ps[len(ps)-1].Final {
			t.Errorf("%s: last frame not Final", label)
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Insts < ps[i-1].Insts || ps[i].Cycles < ps[i-1].Cycles {
				t.Errorf("%s: frame %d not monotonic", label, i)
				break
			}
		}
		for i, p := range ps {
			if p.Target == 0 {
				t.Errorf("%s: frame %d missing target (budget pre-run not engaged)", label, i)
				break
			}
		}
	}

	// Warm pass: everything is memoized, so observation produces no
	// frames — and the rendered output still matches.
	var warmFrames int
	warm := render(t, name, Options{Scale: determinismScale, Sched: s,
		OnProgress: func(string, sched.Progress) { mu.Lock(); warmFrames++; mu.Unlock() }})
	if warm != want {
		t.Errorf("warm observed run differs from unobserved run")
	}
	if warmFrames != 0 {
		t.Errorf("warm (all-hit) run produced %d progress frames, want 0", warmFrames)
	}
}
