package experiments

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"carf/internal/sched"
	"carf/internal/store"
)

// quietLogger suppresses the store's (expected) quarantine and
// degradation reports so test output stays readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// renderWithStore runs name on a fresh scheduler backed by a fresh
// store over dir and returns the rendered text plus both stat
// snapshots.
func renderWithStore(t *testing.T, name, dir string) (string, sched.Stats, store.Stats) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Schema: StoreSchema, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	s := sched.New(4)
	s.SetTier(st)
	text := render(t, name, Options{Scale: determinismScale, Sched: s})
	return text, s.Stats(), st.Stats()
}

// TestCrashRecovery is the crash-safety gate: a blob torn by a
// simulated crash (truncated payload, stray temp file) must be
// detected by its checksum, quarantined — never served — and the run
// transparently re-simulated, with the rendered exhibit byte-identical
// to an undamaged store's.
func TestCrashRecovery(t *testing.T) {
	const exp = "table2"
	want := render(t, exp, Options{Scale: determinismScale, Sched: sched.New(1)})
	dir := t.TempDir()

	// Round 1: populate the store.
	text, _, sst := renderWithStore(t, exp, dir)
	if text != want {
		t.Fatalf("store-backed render differs from plain render:\n--- want ---\n%s\n--- got ---\n%s", want, text)
	}
	if sst.Puts == 0 {
		t.Fatalf("round 1 persisted nothing (store stats %+v)", sst)
	}

	// Simulate a crash mid-write: truncate one blob's payload and plant
	// a stray temp file like an interrupted writeBlob would leave.
	blobs, err := filepath.Glob(filepath.Join(dir, "schema-*", "*.blob"))
	if err != nil || len(blobs) < 2 {
		t.Fatalf("expected >= 2 blobs on disk, found %d (err %v)", len(blobs), err)
	}
	victim := blobs[0]
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(filepath.Dir(victim), "deadbeef-crash.tmp")
	if err := os.WriteFile(stray, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Round 2: a fresh store over the damaged directory must sweep the
	// temp file, quarantine the truncated blob, serve the intact ones
	// from disk, and re-simulate the lost run — byte-identically.
	text2, schedStats, sst2 := renderWithStore(t, exp, dir)
	if text2 != want {
		t.Errorf("recovered render differs from pristine render:\n--- want ---\n%s\n--- got ---\n%s", want, text2)
	}
	if sst2.Quarantined == 0 {
		t.Errorf("truncated blob was not quarantined (store stats %+v)", sst2)
	}
	if schedStats.DiskHits == 0 {
		t.Errorf("intact blobs were not served from the disk tier (sched stats %+v)", schedStats)
	}
	if schedStats.Misses == 0 {
		t.Errorf("quarantined run was not re-simulated (sched stats %+v)", schedStats)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray temp file survived reopen: %v", err)
	}
	// The victim path exists again — re-persisted by the re-simulation —
	// but it must now be a full-size valid blob, not the torn one.
	if ni, err := os.Stat(victim); err != nil || ni.Size() != info.Size() {
		t.Errorf("re-persisted blob at %s: size %v want %d (err %v)", victim, ni, info.Size(), err)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "schema-*", "quarantine", "*"))
	if len(quarantined) == 0 {
		t.Error("quarantine directory is empty; corrupt blob was deleted, not preserved for inspection")
	}

	// Round 3: the re-simulated run was re-persisted, so a third fresh
	// store serves everything from disk.
	text3, schedStats3, _ := renderWithStore(t, exp, dir)
	if text3 != want {
		t.Error("round 3 render differs")
	}
	if schedStats3.Misses != 0 {
		t.Errorf("round 3 re-simulated %d runs; want all served from disk", schedStats3.Misses)
	}
}
