package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/energy"
	"carf/internal/pipeline"
	"carf/internal/stats"
	"carf/internal/workload"
)

// WrongPath quantifies the modeling delta the default configuration
// documents in EXPERIMENTS.md: with speculative wrong-path execution
// enabled, mispredicted conditional branches fetch, rename, issue, and
// write back phantom instructions until resolution, adding register
// file traffic (and energy) that the fetch-stall model omits. The
// experiment reports both modes for the baseline and content-aware
// organizations over the integer suite.
func WrongPath(opt Options) (Result, error) {
	ints := workload.IntSuite(opt.Scale)

	type row struct {
		label string
		spec  modelSpec
	}
	rows := []row{
		{"baseline", baselineSpec()},
		{"content-aware", carfSpec(core.DefaultParams())},
	}

	tech := energy.DefaultTech()
	tb := stats.Table{
		Title: "Wrong-path execution ablation (INT suite)",
		Header: []string{"organization", "mode", "IPC", "RF energy (rel stall mode)",
			"bypassed ops", "phantoms/mispredict"},
	}
	for _, r := range rows {
		stallCfg := pipeline.DefaultConfig()
		specCfg := pipeline.DefaultConfig()
		specCfg.WrongPath = true

		stall, err := runSuiteCfg(ints, r.spec, stallCfg, opt)
		if err != nil {
			return Result{}, err
		}
		spec, err := runSuiteCfg(ints, r.spec, specCfg, opt)
		if err != nil {
			return Result{}, err
		}

		stallEnergy := suiteEnergy(tech, stall)
		specEnergy := suiteEnergy(tech, spec)
		ipc := func(outs []runOut) float64 {
			var vals []float64
			for _, o := range outs {
				vals = append(vals, o.Pstats.IPC())
			}
			return stats.Mean(vals)
		}
		var phantoms, mispredicts uint64
		for _, o := range spec {
			phantoms += o.Pstats.WrongPathFetched
			mispredicts += o.Pstats.Mispredicts
		}
		perMp := 0.0
		if mispredicts > 0 {
			perMp = float64(phantoms) / float64(mispredicts)
		}

		tb.AddRow(r.label, "fetch stall", stats.F3(ipc(stall)), stats.Pct(1), stats.Pct(suiteBypass(stall)), "-")
		tb.AddRow(r.label, "wrong-path exec", stats.F3(ipc(spec)),
			stats.Pct(specEnergy/stallEnergy), stats.Pct(suiteBypass(spec)), fmt.Sprintf("%.1f", perMp))
	}
	tb.AddNote("phantom traffic raises register file energy in both organizations; the relative")
	tb.AddNote("baseline-vs-content-aware comparison (Fig. 7) is insensitive to the recovery model")
	return Result{Name: "wrongpath", Tables: []stats.Table{tb}}, nil
}
