package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Fig5 reproduces Figure 5: the average IPC of the content-aware
// organization relative to the unlimited-resource file, as a function of
// d+n, for the integer and FP suites, with the baseline as reference
// lines. Configuration: 112 simple, 8 short, 48 long (§4).
func Fig5(opt Options) (Result, error) {
	ints := workload.IntSuite(opt.Scale)
	fps := workload.FPSuite(opt.Scale)

	unlInt, err := runSuite(ints, unlimitedSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	unlFP, err := runSuite(fps, unlimitedSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	baseInt, err := runSuite(ints, baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}
	baseFP, err := runSuite(fps, baselineSpec(), opt)
	if err != nil {
		return Result{}, err
	}

	tb := stats.Table{
		Title:  "Figure 5: Average relative IPC (vs unlimited) as a function of d+n",
		Header: []string{"d+n", "INT", "FP"},
	}
	for _, dn := range dnSweep {
		p := core.DefaultParams()
		p.DPlusN = dn
		carfInt, err := runSuite(ints, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		carfFP, err := runSuite(fps, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(fmt.Sprintf("%d", dn),
			stats.Pct(meanRelIPC(carfInt, unlInt)),
			stats.Pct(meanRelIPC(carfFP, unlFP)))
	}
	tb.AddRow("baseline", stats.Pct(meanRelIPC(baseInt, unlInt)), stats.Pct(meanRelIPC(baseFP, unlFP)))
	tb.AddNote("paper: INT reaches a near-optimum at d+n=20 (~98.3%%); FP stays ~99.7%%; baseline ~99%%")
	return Result{Name: "fig5", Tables: []stats.Table{tb}}, nil
}
