package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/metrics"
	"carf/internal/pipeline"
	"carf/internal/sched"
	"carf/internal/stats"
	"carf/internal/workload"
)

// phasesInterval is the sampling period for the phase-variance study:
// fine enough to resolve kernel phases at the experiments' default
// 0.25 scale (tens of thousands of cycles per kernel), coarse enough
// that each interval spans many instructions.
const phasesInterval = 1000

// Phases runs the integer suite on the content-aware organization with
// the interval metric sampler attached and reports phase variance —
// the spread of interval IPC and of Short/Long sub-file occupancy over
// time — instead of the end-of-run means the paper's exhibits use. A
// kernel whose interval IPC swings widely has distinct phases that a
// mean conceals; high Short-occupancy variance marks phases where the
// d-bit similarity test changes its hit rate.
func Phases(opt Options) (Result, error) {
	kernels := workload.IntSuite(opt.Scale)
	type out struct {
		kernel string
		series metrics.TimeSeries
		ipc    float64
	}
	// Metric-sampled runs are memoized like plain ones; the sampling
	// interval is part of the key, and the cached series is read-only
	// (Column and Summarize never mutate it).
	spec := carfSpec(core.DefaultParams())
	cfg := pipeline.DefaultConfig()
	outs := make([]out, len(kernels))
	err := sched.ForEach(len(kernels), func(i int) error {
		k := kernels[i]
		key := runKey("phases", opt, k.Name, spec.id, cfg, phasesInterval)
		v, prov, err := opt.Sched.DoCtx(opt.Ctx, key, runLabel("phases", k.Name, spec.id), true, func() (any, error) {
			cpu := pipeline.New(cfg, k.Prog, spec.new())
			if opt.Ctx.Done() != nil {
				cpu.SetInterrupt(opt.Ctx.Err)
			}
			sampler := cpu.InstallMetrics(metrics.NewRegistry(), phasesInterval)
			st, err := cpu.Run()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", k.Name, err)
			}
			return out{kernel: k.Name, series: sampler.Series(), ipc: st.IPC()}, nil
		})
		opt.Tally.Record(prov, err)
		if err != nil {
			return err
		}
		outs[i] = v.(out)
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	ipcT := stats.Table{
		Title: fmt.Sprintf("Interval IPC phase variance (content-aware, %d-cycle intervals)", phasesInterval),
		Header: []string{"kernel", "samples", "mean IPC", "stddev", "min", "max",
			"cv", "run IPC"},
	}
	occT := stats.Table{
		Title:  "Sub-file occupancy over time (content-aware)",
		Header: []string{"kernel", "short mean", "short max", "long mean", "long stddev", "long max"},
	}
	for _, o := range outs {
		ipc := metrics.Summarize(o.series.Column("pipeline.ipc"))
		cv := 0.0
		if ipc.Mean != 0 {
			cv = ipc.Stddev / ipc.Mean
		}
		ipcT.AddRow(o.kernel,
			fmt.Sprintf("%d", ipc.N),
			stats.F3(ipc.Mean), stats.F3(ipc.Stddev),
			stats.F3(ipc.Min), stats.F3(ipc.Max),
			stats.Pct(cv), stats.F3(o.ipc))

		short := metrics.Summarize(o.series.Column("core.short_occupancy"))
		long := metrics.Summarize(o.series.Column("core.long_occupancy"))
		occT.AddRow(o.kernel,
			stats.F3(short.Mean), fmt.Sprintf("%.0f", short.Max),
			stats.F3(long.Mean), stats.F3(long.Stddev), fmt.Sprintf("%.0f", long.Max))
	}
	p := core.DefaultParams()
	occT.AddNote("structural bounds: %d short, %d long registers", p.NumShort, p.NumLong)
	ipcT.AddNote("cv = stddev/mean; a high cv marks kernels with distinct execution phases")
	return Result{Name: "phases", Tables: []stats.Table{ipcT, occT}}, nil
}
