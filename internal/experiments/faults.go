package experiments

import (
	"context"
	"errors"
	"fmt"

	"carf/internal/core"
	"carf/internal/harden"
	"carf/internal/pipeline"
	"carf/internal/sched"
	"carf/internal/stats"
	"carf/internal/workload"
)

// The fault-injection campaign measures the hardening layer's detection
// coverage: for every fault class, seeded corruptions are injected into
// a running content-aware file and the run is watched for which checker
// (lockstep co-simulation, invariant sweep, watchdog, per-read
// reconstruction check, or the end-of-run result check) reports first,
// and after how many cycles.

// faultKernel is the campaign workload: hashprobe keeps all three value
// populations live (hash values are long, bucket pointers short, probe
// counters simple) and cycles through many Short similarity groups, so
// every fault class — including the reference-bit leak, which needs a
// live-but-unreferenced group — finds targets.
const faultKernel = "hashprobe"

// faultHardenOptions is the checker configuration campaigns run under: a
// tight sweep period so invariant detection latency is meaningful, and a
// watchdog bounding any induced hang.
func faultHardenOptions() harden.Options {
	return harden.Options{
		Lockstep:      true,
		SweepEvery:    64,
		WatchdogAfter: 20000,
	}
}

// faultParams is the campaign register file: the paper configuration
// with a doubled Short file, so groups outside the retirement map's
// working set exist and ref-clear faults have injectable targets.
func faultParams() core.Params {
	p := core.DefaultParams()
	p.NumShort = 16
	return p
}

// RunFaultInjection runs one seeded injection against kernel (at the
// given scale) and classifies the outcome. The returned error reports
// infrastructure failures (unknown kernel, invalid config) — a detected
// fault is a success and lands in Outcome.Err instead. The run goes
// through the global scheduler; the fault descriptor and every checker
// knob are part of the memoization key, so a checked/injected run can
// never be served the result of a clean one (or vice versa).
func RunFaultInjection(kernel string, scale float64, f harden.Fault) (harden.Outcome, error) {
	return runFaultInjection(context.Background(), sched.Global(), nil, kernel, scale, f)
}

func runFaultInjection(ctx context.Context, s *sched.Scheduler, tally *sched.Tally, kernel string, scale float64, f harden.Fault) (harden.Outcome, error) {
	cfg := pipeline.DefaultConfig()
	cfg.Harden = faultHardenOptions()
	p := faultParams()
	key := sched.KeyOf("fault", kernel, scale, fmt.Sprintf("carf%+v", p), cfg, f)
	label := runLabel("fault", kernel, fmt.Sprintf("%v#%d", f.Class, f.Seed))
	v, prov, err := s.DoCtx(ctx, key, label, true, func() (any, error) {
		return injectOnce(kernel, scale, cfg, p, f)
	})
	tally.Record(prov, err)
	if err != nil {
		return harden.Outcome{}, err
	}
	return v.(harden.Outcome), nil
}

// injectOnce is the scheduler-job body of one seeded campaign run.
func injectOnce(kernel string, scale float64, cfg pipeline.Config, p core.Params, f harden.Fault) (harden.Outcome, error) {
	k, err := workload.ByName(kernel, scale)
	if err != nil {
		return harden.Outcome{}, err
	}
	cpu, err := pipeline.NewChecked(cfg, k.Prog, core.New(p))
	if err != nil {
		return harden.Outcome{}, err
	}
	cpu.ScheduleFault(f)
	st, runErr := cpu.Run()

	outs := cpu.Injections()
	if len(outs) == 0 {
		return harden.Outcome{}, fmt.Errorf("experiments: scheduled fault vanished (%v)", f)
	}
	out := outs[0]
	out.Err = runErr

	var div *harden.DivergenceError
	var inv *harden.InvariantError
	var dead *harden.DeadlockError
	switch {
	case errors.As(runErr, &div):
		out.Detected, out.Detector, out.DetectedAt = true, "lockstep", div.Cycle
	case errors.As(runErr, &inv):
		out.Detected, out.Detector, out.DetectedAt = true, "invariant", inv.Cycle
	case errors.As(runErr, &dead):
		out.Detected, out.Detector, out.DetectedAt = true, "watchdog", dead.Cycle
	case runErr != nil:
		// The end-of-run fault log or another structured failure.
		out.Detected, out.Detector = true, "fault-log"
	case st.ValueMismatches > 0:
		out.Detected, out.Detector = true, "readcheck"
	case cpu.Machine().X[workload.ResultReg] != k.Expected:
		out.Detected, out.Detector = true, "result"
	}
	return out, nil
}

// faultSeeds are the campaign seeds per class; the simulator is
// deterministic, so each (class, seed) pair is exactly reproducible.
var faultSeeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}

// faultInjectCycle is when the corruption lands: past warm-up, well
// before the smallest campaign run retires.
const faultInjectCycle = 2000

// Faults is the hardening coverage experiment: a seeded campaign over
// every fault class, reporting per-class detection counts by detector
// and mean detection latency.
func Faults(opt Options) (Result, error) {
	classes := harden.FaultClasses()
	type job struct {
		class int
		seed  int
	}
	var jobs []job
	for ci := range classes {
		for si := range faultSeeds {
			jobs = append(jobs, job{ci, si})
		}
	}
	outs := make([]harden.Outcome, len(jobs))
	if err := sched.ForEach(len(jobs), func(i int) error {
		var err error
		outs[i], err = runFaultInjection(opt.Ctx, opt.Sched, opt.Tally, faultKernel, opt.Scale, harden.Fault{
			Class: classes[jobs[i].class],
			Cycle: faultInjectCycle,
			Seed:  faultSeeds[jobs[i].seed],
		})
		return err
	}); err != nil {
		return Result{}, err
	}

	t := stats.Table{
		Title:  "Fault-injection detection coverage",
		Header: []string{"class", "runs", "injected", "detected", "lockstep", "invariant", "readcheck", "other", "mean latency"},
	}
	for ci, class := range classes {
		var injected, detected, lockstep, invariant, readcheck, other int
		var latSum, latN float64
		for si := range faultSeeds {
			o := outs[ci*len(faultSeeds)+si]
			if o.Injected {
				injected++
			}
			if !o.Detected {
				continue
			}
			detected++
			switch o.Detector {
			case "lockstep":
				lockstep++
			case "invariant":
				invariant++
			case "readcheck":
				readcheck++
			default:
				other++
			}
			if l := o.Latency(); l > 0 {
				latSum += float64(l)
				latN++
			}
		}
		lat := "-"
		if latN > 0 {
			lat = fmt.Sprintf("%.0f", latSum/latN)
		}
		t.AddRow(class.String(),
			fmt.Sprint(len(faultSeeds)), fmt.Sprint(injected), fmt.Sprint(detected),
			fmt.Sprint(lockstep), fmt.Sprint(invariant), fmt.Sprint(readcheck), fmt.Sprint(other), lat)
	}
	t.AddNote(fmt.Sprintf("kernel %s, scale %.2g, injection at cycle %d, sweep every %d cycles",
		faultKernel, opt.Scale, faultInjectCycle, faultHardenOptions().SweepEvery))
	t.AddNote("detected = any checker reported; latency averaged over detections with a known detection cycle")
	return Result{Name: "faults", Tables: []stats.Table{t}}, nil
}
