// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–§5), plus the sensitivity sweeps discussed in the text
// and the §6 extension studies. Each experiment runs the benchmark
// suites on the relevant register file organizations and renders the
// same rows/series the paper reports; DESIGN.md §4 maps experiment ids
// to paper exhibits, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"encoding/gob"
	"fmt"

	"carf/internal/batch"
	"carf/internal/core"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/sched"
	"carf/internal/stats"
	"carf/internal/workload"
)

// StoreSchema versions the persisted encoding of cached run results
// for the on-disk tier (internal/store). Bump it whenever runOut's
// shape, the statistics it carries, or the simulation's observable
// behaviour changes — a stale blob under the old schema is then simply
// never found, rather than wrongly served.
const StoreSchema = "carf-run/v1"

func init() {
	// runOut crosses the store's any-envelope, so its concrete type must
	// be registered for gob. Named here once; values containing only
	// exported scalar/slice fields round-trip exactly.
	gob.Register(runOut{})
}

// Options configures an experiment run.
type Options struct {
	// Ctx carries cancellation and deadlines into every simulation this
	// experiment schedules: queued runs abort before starting, running
	// sims poll it cooperatively, and joiners detach. nil means
	// context.Background() (never canceled).
	Ctx context.Context
	// Scale multiplies benchmark work (1.0 = the standard ~200–400k
	// dynamic instructions per kernel; experiments default to 0.25).
	Scale float64
	// SamplePeriod is the live-value oracle sampling period in cycles.
	SamplePeriod int
	// Parallel bounds concurrent simulations. The bound applies to the
	// scheduler's *global* worker pool, which is shared by every
	// concurrently-executing experiment — it is not a per-experiment
	// limit. 0 leaves the pool at its current size (GOMAXPROCS unless
	// resized earlier).
	Parallel int
	// Sched routes this run's simulations through a specific scheduler
	// (nil = the process-global sched.Global()). Tests and benchmarks
	// use isolated schedulers to measure cold/warm/serial cache states.
	Sched *sched.Scheduler
	// Tally, when non-nil, accumulates this experiment's own scheduler
	// provenance (runs/hits/misses/joins), attributing shared-pool work
	// per experiment even when many run concurrently. Run installs one
	// automatically and reports it in Result.Sched.
	Tally *sched.Tally
	// Batch selects the execution engine for plain simulation runs:
	// 0 defers to the CARF_BATCH environment variable (its default is
	// scalar), 1 forces the scalar cycle loop, N >= 2 routes runs
	// through the shared lockstep batch executor with N lanes. Purely
	// an engine choice: results are bit-identical (the golden suites
	// pin this), so Batch never participates in memoization keys.
	// Lanes fill only up to the scheduler's worker bound — widths
	// beyond Parallel add nothing.
	Batch int
	// OnProgress, when non-nil, receives live progress frames from every
	// simulation this experiment actually executes (cache hits and joins
	// produce none — they do no work). label identifies the run the same
	// way the telemetry run table does. The callback must be safe for
	// concurrent use: parallel simulations report concurrently. Progress
	// is strictly observational — it never participates in run keys and
	// never changes rendered output.
	OnProgress func(label string, p sched.Progress)
}

func (o Options) withDefaults() Options {
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 128
	}
	if o.Sched == nil {
		o.Sched = sched.Global()
	}
	if o.Parallel > 0 {
		o.Sched.SetWorkers(o.Parallel)
	}
	if o.Batch == 0 {
		o.Batch = batch.EnvWidth()
	}
	if o.Batch > 1 {
		o.Sched.SetExecLabel(batch.Shared(o.Batch).Label())
	}
	return o
}

// executor returns the batch executor simulation runs go through, or
// nil for the scalar loop.
func (o Options) executor() *batch.Executor {
	if o.Batch > 1 {
		return batch.Shared(o.Batch)
	}
	return nil
}

// Result is one experiment's rendered output.
type Result struct {
	Name   string
	Tables []stats.Table

	// Sched is this experiment's own slice of scheduler activity: how
	// many simulations it requested and how they were served (simulated
	// / cache hit / joined an in-flight run). Unlike Scheduler.Stats,
	// which is process-wide, this is attributable per experiment even
	// under concurrent studies. Rendering does not include it.
	Sched sched.Stats
}

// Render formats all tables.
func (r Result) Render() string {
	out := ""
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	return out
}

type experiment struct {
	name string
	desc string
	run  func(Options) (Result, error)
}

var registry = []experiment{
	{"fig1", "Figure 1: distribution of live integer register values by frequency group", Fig1},
	{"fig2", "Figure 2: distribution of (64-d)-similar live values, d = 8/12/16", Fig2},
	{"fig5", "Figure 5: relative IPC vs d+n (8 short, 48 long registers)", Fig5},
	{"fig6", "Figure 6: register file read/write access distribution by value type vs d+n", Fig6},
	{"fig7", "Figure 7: register file energy vs d+n, relative to the unlimited file", Fig7},
	{"fig8", "Figure 8: register file area relative to the unlimited file", Fig8},
	{"fig9", "Figure 9: register file access time relative to the unlimited file", Fig9},
	{"table2", "Table 2: percentage of bypassed operands", Table2},
	{"table3", "Table 3: single-access energy per sub-file, normalized to unlimited", Table3},
	{"table4", "Table 4: source-operand type distribution (d+n = 20)", Table4},
	{"sweeps", "§4 sensitivity: short/long file sizes, live-long occupancy, pseudo-deadlock", Sweeps},
	{"ext", "§6 extensions: CAM short file, SMT sharing, clustering affinity, reclamation/bypass ablations", Extensions},
	{"memloc", "§6 memory direction: partial value locality in addresses and data traffic", Memloc},
	{"wrongpath", "fidelity ablation: speculative wrong-path execution vs fetch stall", WrongPath},
	{"cluster", "§6 clustering: value-type-steered half-width clusters vs unified", Cluster},
	{"kernels", "per-kernel transparency: IPC on all organizations, mispredicts, write mix", Kernels},
	{"phases", "phase variance: interval IPC and sub-file occupancy time series per kernel", Phases},
	{"calibration", "energy-model robustness: conclusions across technology constants", Calibration},
	{"faults", "hardening: fault-injection detection coverage and latency per fault class", Faults},
	{"cpistack", "attribution: CPI-stack slot accounting per organization, baseline->carf delta decomposition", CPIStackStudy},
}

// Names lists experiment ids in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes one experiment by id. Each call gets its own provenance
// tally (unless the caller supplies one), reported in Result.Sched.
func Run(name string, opt Options) (Result, error) {
	for _, e := range registry {
		if e.name == name {
			opt = opt.withDefaults()
			if opt.Tally == nil {
				opt.Tally = new(sched.Tally)
			}
			r, err := e.run(opt)
			r.Sched = opt.Tally.Stats()
			return r, err
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
}

// RunAll executes every experiment in paper order.
func RunAll(opt Options) ([]Result, error) {
	var out []Result
	for _, e := range registry {
		r, err := Run(e.name, opt)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// modelSpec builds a fresh register file model per simulation (models
// are stateful and single-run). The id is the spec's contribution to
// the scheduler's memoization key: two specs with equal ids must build
// behaviourally identical models.
type modelSpec struct {
	id  string
	new func() regfile.Model
}

func baselineSpec() modelSpec {
	return modelSpec{"baseline", func() regfile.Model { return regfile.Baseline() }}
}

func unlimitedSpec() modelSpec {
	return modelSpec{"unlimited", func() regfile.Model { return regfile.Unlimited() }}
}

func carfSpec(p core.Params) modelSpec {
	return modelSpec{fmt.Sprintf("carf%+v", p), func() regfile.Model { return core.New(p) }}
}

// runOut is one simulation's harvest. Cached runOuts are shared across
// experiments: everything reachable from one (Pstats, Files, Carf) is
// an immutable snapshot and must only be read. Fields are exported
// because runOut is also the unit of persistence — the disk tier
// gob-encodes it, and unexported fields would be silently dropped.
// Kernel is the kernel's *name*, not the workload.Kernel itself:
// vm.Program carries unexported derived state that gob cannot carry,
// and the scheduler key already pins the exact program content.
type runOut struct {
	Kernel string
	Pstats pipeline.Stats
	Files  []regfile.FileActivity
	Carf   *core.Stats
}

// runKey digests everything a plain simulation's result depends on.
// kind separates request families that run different harnesses on the
// same inputs (plain sim, oracle-sampled, profiled, ...); extras carry
// family-specific knobs (sampler periods, fault descriptors).
func runKey(kind string, opt Options, kernel string, specID string, cfg pipeline.Config, extra ...any) sched.Key {
	parts := append([]any{kind, kernel, opt.Scale, specID, cfg}, extra...)
	return sched.KeyOf(parts...)
}

// simulate runs kernel k on a fresh model, optionally with a live-value
// sampler attached. It is the scheduler-job body shared by every
// harvesting path; callers go through runOneCfg (or a sibling wrapper)
// so the run is pooled and memoized.
func simulate(ctx context.Context, k workload.Kernel, spec modelSpec, cfg pipeline.Config, sampler pipeline.LiveSampler, period int, report sched.ProgressFunc, ex *batch.Executor) (runOut, error) {
	model := spec.new()
	cpu := pipeline.New(cfg, k.Prog, model)
	if sampler != nil {
		cpu.SetSampler(sampler, period)
	}
	if ctx.Done() != nil {
		// Cooperative abort: the cycle loop polls ctx.Err periodically.
		// Installed out-of-band (not via Config) so cache keys, which
		// digest Config by value, stay context-free.
		cpu.SetInterrupt(ctx.Err)
	}
	if report != nil {
		// Live progress, also out-of-band for the same reason: the hook
		// never appears in Config, so run keys are byte-identical with
		// observation on or off.
		cpu.SetProgress(func(pp pipeline.Progress) { report(toSchedProgress(pp)) })
	}
	var st pipeline.Stats
	var err error
	if ex != nil {
		// Lockstep engine: the executor interleaves this run with its
		// other lanes; chunking is invisible to every statistic.
		if err = ex.Run(cpu); err == nil {
			st, err = cpu.Finalize()
		}
	} else {
		st, err = cpu.Run()
	}
	if err != nil {
		return runOut{}, fmt.Errorf("%s on %s: %w", k.Name, model.Name(), err)
	}
	if st.ValueMismatches != 0 {
		return runOut{}, fmt.Errorf("%s on %s: %d register reconstruction mismatches",
			k.Name, model.Name(), st.ValueMismatches)
	}
	out := runOut{Kernel: k.Name, Pstats: st, Files: model.Files()}
	if f, ok := model.(*core.File); ok {
		cs := f.Stats()
		out.Carf = &cs
	}
	return out, nil
}

// runOne simulates kernel k on a fresh model through the scheduler.
func runOne(k workload.Kernel, spec modelSpec, opt Options) (runOut, error) {
	return runOneCfg(k, spec, pipeline.DefaultConfig(), opt)
}

// toSchedProgress converts the simulator's progress snapshot to the
// scheduler's frame shape (the scheduler stamps the wall-clock fields).
func toSchedProgress(p pipeline.Progress) sched.Progress {
	return sched.Progress{
		Cycles:         p.Cycles,
		Insts:          p.Instructions,
		IntervalCycles: p.IntervalCycles,
		IntervalInsts:  p.IntervalInstructions,
		IntervalIPC:    p.IntervalIPC,
		ROB:            p.ROB,
		IntIQ:          p.IntIQ,
		FPIQ:           p.FPIQ,
		LSQ:            p.LSQ,
		Writes:         p.Writes,
		Final:          p.Final,
	}
}

// progressTarget returns the kernel's dynamic instruction budget for
// ETA math, or 0 when nobody is watching — the budget comes from a
// (memoized) functional pre-run, a cost worth paying only when an
// observer or progress callback will consume the ETA.
func progressTarget(opt Options, k workload.Kernel) uint64 {
	if !opt.Sched.Observed() && opt.OnProgress == nil {
		return 0
	}
	return workload.Budget(k, opt.Scale)
}

// runLabel renders the human-readable run description carried to the
// telemetry plane (span names, /runs rows, log lines). Labels are
// display-only: the content Key remains the scheduling identity.
func runLabel(kind, kernel, specID string) string {
	return kind + "/" + kernel + "/" + specID
}

// runOneCfg is runOne with an explicit pipeline configuration
// (ablations: bypass depth, widths). The run is submitted to the
// scheduler: concurrency is bounded by the shared worker pool and the
// result is memoized by (kernel, scale, model spec, config).
func runOneCfg(k workload.Kernel, spec modelSpec, cfg pipeline.Config, opt Options) (runOut, error) {
	label := runLabel("sim", k.Name, spec.id)
	var onProgress sched.ProgressFunc
	if opt.OnProgress != nil {
		onProgress = func(p sched.Progress) { opt.OnProgress(label, p) }
	}
	v, prov, err := opt.Sched.DoProgress(opt.Ctx, runKey("sim", opt, k.Name, spec.id, cfg),
		label, true, progressTarget(opt, k), onProgress,
		func(report sched.ProgressFunc) (any, error) {
			return simulate(opt.Ctx, k, spec, cfg, nil, 0, report, opt.executor())
		})
	opt.Tally.Record(prov, err)
	if err != nil {
		return runOut{}, err
	}
	return v.(runOut), nil
}

// runSuite simulates every kernel of a suite on fresh models through
// the scheduler, returning results in suite order.
func runSuite(kernels []workload.Kernel, spec modelSpec, opt Options) ([]runOut, error) {
	return runSuiteCfg(kernels, spec, pipeline.DefaultConfig(), opt)
}

// runSuiteCfg is runSuite with an explicit pipeline configuration.
func runSuiteCfg(kernels []workload.Kernel, spec modelSpec, cfg pipeline.Config, opt Options) ([]runOut, error) {
	outs := make([]runOut, len(kernels))
	err := sched.ForEach(len(kernels), func(i int) error {
		var err error
		outs[i], err = runOneCfg(kernels[i], spec, cfg, opt)
		return err
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// meanRelIPC returns mean(IPC_a / IPC_b) across paired runs.
func meanRelIPC(a, b []runOut) float64 {
	ratios := make([]float64, len(a))
	for i := range a {
		ratios[i] = a[i].Pstats.IPC() / b[i].Pstats.IPC()
	}
	return stats.Mean(ratios)
}

// dnSweep is the d+n design space of Figures 5–7 and Table 3.
var dnSweep = []int{8, 12, 16, 20, 24, 28, 32}
