// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–§5), plus the sensitivity sweeps discussed in the text
// and the §6 extension studies. Each experiment runs the benchmark
// suites on the relevant register file organizations and renders the
// same rows/series the paper reports; DESIGN.md §4 maps experiment ids
// to paper exhibits, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"carf/internal/core"
	"carf/internal/pipeline"
	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies benchmark work (1.0 = the standard ~200–400k
	// dynamic instructions per kernel; experiments default to 0.25).
	Scale float64
	// SamplePeriod is the live-value oracle sampling period in cycles.
	SamplePeriod int
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.SamplePeriod <= 0 {
		o.SamplePeriod = 128
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is one experiment's rendered output.
type Result struct {
	Name   string
	Tables []stats.Table
}

// Render formats all tables.
func (r Result) Render() string {
	out := ""
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	return out
}

type experiment struct {
	name string
	desc string
	run  func(Options) (Result, error)
}

var registry = []experiment{
	{"fig1", "Figure 1: distribution of live integer register values by frequency group", Fig1},
	{"fig2", "Figure 2: distribution of (64-d)-similar live values, d = 8/12/16", Fig2},
	{"fig5", "Figure 5: relative IPC vs d+n (8 short, 48 long registers)", Fig5},
	{"fig6", "Figure 6: register file read/write access distribution by value type vs d+n", Fig6},
	{"fig7", "Figure 7: register file energy vs d+n, relative to the unlimited file", Fig7},
	{"fig8", "Figure 8: register file area relative to the unlimited file", Fig8},
	{"fig9", "Figure 9: register file access time relative to the unlimited file", Fig9},
	{"table2", "Table 2: percentage of bypassed operands", Table2},
	{"table3", "Table 3: single-access energy per sub-file, normalized to unlimited", Table3},
	{"table4", "Table 4: source-operand type distribution (d+n = 20)", Table4},
	{"sweeps", "§4 sensitivity: short/long file sizes, live-long occupancy, pseudo-deadlock", Sweeps},
	{"ext", "§6 extensions: CAM short file, SMT sharing, clustering affinity, reclamation/bypass ablations", Extensions},
	{"memloc", "§6 memory direction: partial value locality in addresses and data traffic", Memloc},
	{"wrongpath", "fidelity ablation: speculative wrong-path execution vs fetch stall", WrongPath},
	{"cluster", "§6 clustering: value-type-steered half-width clusters vs unified", Cluster},
	{"kernels", "per-kernel transparency: IPC on all organizations, mispredicts, write mix", Kernels},
	{"phases", "phase variance: interval IPC and sub-file occupancy time series per kernel", Phases},
	{"calibration", "energy-model robustness: conclusions across technology constants", Calibration},
	{"faults", "hardening: fault-injection detection coverage and latency per fault class", Faults},
	{"cpistack", "attribution: CPI-stack slot accounting per organization, baseline->carf delta decomposition", CPIStackStudy},
}

// Names lists experiment ids in paper order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes one experiment by id.
func Run(name string, opt Options) (Result, error) {
	for _, e := range registry {
		if e.name == name {
			return e.run(opt.withDefaults())
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
}

// RunAll executes every experiment in paper order.
func RunAll(opt Options) ([]Result, error) {
	var out []Result
	for _, e := range registry {
		r, err := e.run(opt.withDefaults())
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// modelSpec builds a fresh register file model per simulation (models
// are stateful and single-run).
type modelSpec func() regfile.Model

func baselineSpec() modelSpec  { return func() regfile.Model { return regfile.Baseline() } }
func unlimitedSpec() modelSpec { return func() regfile.Model { return regfile.Unlimited() } }

func carfSpec(p core.Params) modelSpec {
	return func() regfile.Model { return core.New(p) }
}

// runOut is one simulation's harvest.
type runOut struct {
	kernel workload.Kernel
	pstats pipeline.Stats
	files  []regfile.FileActivity
	carf   *core.Stats
}

// runOne simulates kernel k on a fresh model.
func runOne(k workload.Kernel, spec modelSpec, sampler pipeline.LiveSampler, period int) (runOut, error) {
	return runOneCfg(k, spec, pipeline.DefaultConfig(), sampler, period)
}

// runOneCfg simulates kernel k with an explicit pipeline configuration
// (ablations: bypass depth, widths).
func runOneCfg(k workload.Kernel, spec modelSpec, cfg pipeline.Config, sampler pipeline.LiveSampler, period int) (runOut, error) {
	model := spec()
	cpu := pipeline.New(cfg, k.Prog, model)
	if sampler != nil {
		cpu.SetSampler(sampler, period)
	}
	st, err := cpu.Run()
	if err != nil {
		return runOut{}, fmt.Errorf("%s on %s: %w", k.Name, model.Name(), err)
	}
	if st.ValueMismatches != 0 {
		return runOut{}, fmt.Errorf("%s on %s: %d register reconstruction mismatches",
			k.Name, model.Name(), st.ValueMismatches)
	}
	out := runOut{kernel: k, pstats: st, files: model.Files()}
	if f, ok := model.(*core.File); ok {
		cs := f.Stats()
		out.carf = &cs
	}
	return out, nil
}

// runSuite simulates every kernel of a suite on fresh models, in
// parallel, returning results in suite order.
func runSuite(kernels []workload.Kernel, spec modelSpec, opt Options) ([]runOut, error) {
	return runSuiteCfg(kernels, spec, pipeline.DefaultConfig(), opt)
}

// runSuiteCfg is runSuite with an explicit pipeline configuration.
func runSuiteCfg(kernels []workload.Kernel, spec modelSpec, cfg pipeline.Config, opt Options) ([]runOut, error) {
	outs := make([]runOut, len(kernels))
	errs := make([]error, len(kernels))
	sem := make(chan struct{}, opt.Parallel)
	var wg sync.WaitGroup
	for i, k := range kernels {
		wg.Add(1)
		go func(i int, k workload.Kernel) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i], errs[i] = runOneCfg(k, spec, cfg, nil, 0)
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// meanRelIPC returns mean(IPC_a / IPC_b) across paired runs.
func meanRelIPC(a, b []runOut) float64 {
	ratios := make([]float64, len(a))
	for i := range a {
		ratios[i] = a[i].pstats.IPC() / b[i].pstats.IPC()
	}
	return stats.Mean(ratios)
}

// dnSweep is the d+n design space of Figures 5–7 and Table 3.
var dnSweep = []int{8, 12, 16, 20, 24, 28, 32}
