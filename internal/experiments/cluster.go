package experiments

import (
	"carf/internal/core"
	"carf/internal/pipeline"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Cluster evaluates §6's first direction: a clustered machine whose
// clusters are defined by value type. Each cluster gets half the integer
// units and inter-cluster operands pay one forwarding cycle; steering by
// result value type is compared against round-robin steering (which
// ignores types) and the unified machine. The paper's preliminary claim
// is "little inter-cluster communication" under type steering.
func Cluster(opt Options) (Result, error) {
	ints := workload.IntSuite(opt.Scale)
	spec := carfSpec(core.DefaultParams())

	unifiedCfg := pipeline.DefaultConfig()
	typeCfg := pipeline.DefaultConfig()
	typeCfg.Clusters = 2
	rrCfg := pipeline.DefaultConfig()
	rrCfg.Clusters = 2
	rrCfg.ClusterSteerRoundRobin = true

	unified, err := runSuiteCfg(ints, spec, unifiedCfg, opt)
	if err != nil {
		return Result{}, err
	}

	tb := stats.Table{
		Title:  "Value-type clustering (§6): two half-width clusters, 1-cycle crossing",
		Header: []string{"machine", "IPC vs unified", "cross-cluster operands"},
	}
	tb.AddRow("unified (8 int units)", stats.Pct(1), "-")
	for _, row := range []struct {
		label string
		cfg   pipeline.Config
	}{
		{"clustered, type-steered", typeCfg},
		{"clustered, round-robin", rrCfg},
	} {
		outs, err := runSuiteCfg(ints, spec, row.cfg, opt)
		if err != nil {
			return Result{}, err
		}
		var ops, crossings uint64
		for _, o := range outs {
			ops += o.Pstats.IntOperands
			crossings += o.Pstats.CrossClusterOps
		}
		crossRate := 0.0
		if ops > 0 {
			crossRate = float64(crossings) / float64(ops)
		}
		tb.AddRow(row.label, stats.Pct(meanRelIPC(outs, unified)), stats.Pct(crossRate))
	}
	tb.AddNote("paper (preliminary): type-based clusters see little inter-cluster communication;")
	tb.AddNote("round-robin steering is the control showing the traffic a type-blind split pays")
	return Result{Name: "cluster", Tables: []stats.Table{tb}}, nil
}
