package experiments

import (
	"fmt"

	"carf/internal/core"
	"carf/internal/regfile"
	"carf/internal/stats"
	"carf/internal/workload"
)

// Fig6 reproduces Figure 6: the distribution of register file read and
// write accesses by value type (simple/short/long) as a function of d+n,
// with n fixed at 3 (8 short registers) and 48 long registers.
func Fig6(opt Options) (Result, error) {
	kernels := workload.AllKernels(opt.Scale)
	read := stats.Table{
		Title:  "Figure 6 (READ): access distribution by value type",
		Header: []string{"d+n", "simple", "short", "long"},
	}
	write := stats.Table{
		Title:  "Figure 6 (WRITE): access distribution by value type",
		Header: []string{"d+n", "simple", "short", "long"},
	}
	for _, dn := range dnSweep {
		p := core.DefaultParams()
		p.DPlusN = dn
		outs, err := runSuite(kernels, carfSpec(p), opt)
		if err != nil {
			return Result{}, err
		}
		var reads, writes [3]uint64
		for _, o := range outs {
			for t := 0; t < 3; t++ {
				reads[t] += o.Carf.ReadsByType[t]
				writes[t] += o.Carf.WritesByType[t]
			}
		}
		read.Rows = append(read.Rows, shareRow(dn, reads))
		write.Rows = append(write.Rows, shareRow(dn, writes))
	}
	read.AddNote("paper: at d+n=24 over 50%% of accesses are short and under 20%% long")
	return Result{Name: "fig6", Tables: []stats.Table{read, write}}, nil
}

func shareRow(dn int, counts [3]uint64) []string {
	var total uint64
	for _, c := range counts {
		total += c
	}
	row := []string{fmt.Sprintf("%d", dn)}
	for t := regfile.TypeSimple; t <= regfile.TypeLong; t++ {
		frac := 0.0
		if total > 0 {
			frac = float64(counts[t]) / float64(total)
		}
		row = append(row, stats.Pct(frac))
	}
	return row
}
