package experiments

import (
	"fmt"

	"carf/internal/oracle"
	"carf/internal/sched"
	"carf/internal/stats"
	"carf/internal/vm"
	"carf/internal/workload"
)

// memWindow is the recent-access window used for the stream study.
const memWindow = 64

// Memloc quantifies the §6 memory-hierarchy direction: how much partial
// value locality exists in the *memory traffic* — effective addresses
// and transferred data — measured as the fraction of accesses whose high
// 64−d bits match one of the previous 64 accesses. This study needs only
// functional execution, so it runs on the golden-model VM.
func Memloc(opt Options) (Result, error) {
	ds := []int{8, 16, 24}
	type streams struct {
		addr []*oracle.StreamAnalyzer
		data []*oracle.StreamAnalyzer
	}
	newStreams := func() streams {
		var s streams
		for _, d := range ds {
			s.addr = append(s.addr, oracle.NewStreamAnalyzer(d, memWindow))
			s.data = append(s.data, oracle.NewStreamAnalyzer(d, memWindow))
		}
		return s
	}

	suites := []struct {
		label   string
		kernels []workload.Kernel
	}{
		{"SPECint-like", workload.IntSuite(opt.Scale)},
		{"SPECfp-like", workload.FPSuite(opt.Scale)},
	}

	tb := stats.Table{
		Title:  "Partial value locality in memory traffic (§6; 64-access window)",
		Header: []string{"suite", "stream", "d=8", "d=16", "d=24"},
	}
	for _, suite := range suites {
		// One scheduler job per kernel, keyed on the analysis inputs
		// (functional execution only — no pipeline configuration). The
		// cached streams are read-only; Merge copies their sums out.
		perKernel := make([]streams, len(suite.kernels))
		err := sched.ForEach(len(suite.kernels), func(i int) error {
			k := suite.kernels[i]
			key := sched.KeyOf("memloc", k.Name, opt.Scale, ds, memWindow)
			v, prov, err := opt.Sched.DoCtx(opt.Ctx, key, runLabel("memloc", k.Name, "vm"), true, func() (any, error) {
				local := newStreams()
				m := vm.New(k.Prog)
				for !m.Halted {
					_, eff, err := m.Step()
					if err != nil {
						return nil, fmt.Errorf("%s: %w", k.Name, err)
					}
					if !eff.Mem {
						continue
					}
					value := eff.RdValue
					if eff.Store {
						value = eff.StoreVal
					}
					for j := range ds {
						local.addr[j].Note(eff.Addr)
						local.data[j].Note(value)
					}
				}
				return local, nil
			})
			opt.Tally.Record(prov, err)
			if err != nil {
				return err
			}
			perKernel[i] = v.(streams)
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		merged := newStreams()
		for i := range suite.kernels {
			for j := range ds {
				merged.addr[j].Merge(perKernel[i].addr[j])
				merged.data[j].Merge(perKernel[i].data[j])
			}
		}
		addrRow := []string{suite.label, "addresses"}
		dataRow := []string{suite.label, "data"}
		for j := range ds {
			addrRow = append(addrRow, stats.Pct(merged.addr[j].Coverage()))
			dataRow = append(dataRow, stats.Pct(merged.data[j].Coverage()))
		}
		tb.Rows = append(tb.Rows, addrRow, dataRow)
	}
	tb.AddNote("high address coverage is expected (spatial locality); substantial data coverage is the §6 claim")
	return Result{Name: "memloc", Tables: []stats.Table{tb}}, nil
}
