package experiments

import (
	"fmt"
	"sync"

	"carf/internal/oracle"
	"carf/internal/stats"
	"carf/internal/vm"
	"carf/internal/workload"
)

// memWindow is the recent-access window used for the stream study.
const memWindow = 64

// Memloc quantifies the §6 memory-hierarchy direction: how much partial
// value locality exists in the *memory traffic* — effective addresses
// and transferred data — measured as the fraction of accesses whose high
// 64−d bits match one of the previous 64 accesses. This study needs only
// functional execution, so it runs on the golden-model VM.
func Memloc(opt Options) (Result, error) {
	ds := []int{8, 16, 24}
	type streams struct {
		addr []*oracle.StreamAnalyzer
		data []*oracle.StreamAnalyzer
	}
	newStreams := func() streams {
		var s streams
		for _, d := range ds {
			s.addr = append(s.addr, oracle.NewStreamAnalyzer(d, memWindow))
			s.data = append(s.data, oracle.NewStreamAnalyzer(d, memWindow))
		}
		return s
	}

	suites := []struct {
		label   string
		kernels []workload.Kernel
	}{
		{"SPECint-like", workload.IntSuite(opt.Scale)},
		{"SPECfp-like", workload.FPSuite(opt.Scale)},
	}

	tb := stats.Table{
		Title:  "Partial value locality in memory traffic (§6; 64-access window)",
		Header: []string{"suite", "stream", "d=8", "d=16", "d=24"},
	}
	for _, suite := range suites {
		merged := newStreams()
		var mu sync.Mutex
		errs := make([]error, len(suite.kernels))
		sem := make(chan struct{}, opt.Parallel)
		var wg sync.WaitGroup
		for i, k := range suite.kernels {
			wg.Add(1)
			go func(i int, k workload.Kernel) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				local := newStreams()
				m := vm.New(k.Prog)
				for !m.Halted {
					_, eff, err := m.Step()
					if err != nil {
						errs[i] = fmt.Errorf("%s: %w", k.Name, err)
						return
					}
					if !eff.Mem {
						continue
					}
					value := eff.RdValue
					if eff.Store {
						value = eff.StoreVal
					}
					for j := range ds {
						local.addr[j].Note(eff.Addr)
						local.data[j].Note(value)
					}
				}
				mu.Lock()
				for j := range ds {
					merged.addr[j].Merge(local.addr[j])
					merged.data[j].Merge(local.data[j])
				}
				mu.Unlock()
			}(i, k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return Result{}, err
			}
		}
		addrRow := []string{suite.label, "addresses"}
		dataRow := []string{suite.label, "data"}
		for j := range ds {
			addrRow = append(addrRow, stats.Pct(merged.addr[j].Coverage()))
			dataRow = append(dataRow, stats.Pct(merged.data[j].Coverage()))
		}
		tb.Rows = append(tb.Rows, addrRow, dataRow)
	}
	tb.AddNote("high address coverage is expected (spatial locality); substantial data coverage is the §6 claim")
	return Result{Name: "memloc", Tables: []stats.Table{tb}}, nil
}
